(* Ingest-query interleave replay: the analyst keeps querying while the
   backend seals freshly ingested batches.

   The base database is the first ~2/3 of a Quest workload; the remainder
   arrives in three sealed batches.  A warm service answers a refinement
   script once before the first seal (cold mining — the only mining it
   ever pays), then again after every seal: maintenance promotes the
   cached collections by delta-counting only the appended transactions, so
   the post-seal re-runs are answer-cache hits with zero scan charges.
   The cold baseline re-mines the whole script at every epoch, which is
   what a service without live maintenance would do after each seal.

   Asserted, and summarised in BENCH_live.json:
   - answers byte-identical to the cold remine at every epoch;
   - post-seal serving pays zero scans (answers come from the promoted
     cache, not a remine);
   - maintenance I/O is delta-sized: every maintenance scan except the
     at-most-one-per-side old-database candidate count is bounded by the
     sealed batch's pages;
   - warm support counting across all epochs ≪ the cold baseline's. *)

open Cfq_itembase
open Cfq_quest
open Cfq_core
open Cfq_service

let sorted_pairs l =
  List.sort
    (fun (a1, b1) (a2, b2) ->
      match Itemset.compare a1 a2 with 0 -> Itemset.compare b1 b2 | c -> c)
    (List.map
       (fun (s, t) -> (s.Cfq_mining.Frequent.set, t.Cfq_mining.Frequent.set))
       l)

(* three rounds of narrowing an S-side price band, each closed by
   re-issuing the round's first query — enough shape to exercise the
   answer cache, subsumption, and several distinct side collections *)
let session_queries () =
  let queries = ref [] in
  let push fmt = Printf.ksprintf (fun s -> queries := s :: !queries) fmt in
  for round = 0 to 2 do
    let minsup = 0.015 +. (0.003 *. float_of_int round) in
    let lo0 = 300. +. (60. *. float_of_int round) in
    for step = 0 to 3 do
      let lo = lo0 +. (30. *. float_of_int step) in
      let t_hi = 700. -. (40. *. float_of_int step) in
      push
        "{(S,T) | freq(S) >= %g & freq(T) >= %g & S.Price >= %g & T.Price <= %g \
         & S.Type = T.Type}"
        minsup minsup lo t_hi
    done;
    push
      "{(S,T) | freq(S) >= %g & freq(T) >= %g & S.Price >= %g & T.Price <= 700 \
       & S.Type = T.Type}"
      minsup minsup lo0
  done;
  List.rev !queries

let run (scale : Workloads.scale) =
  let scale =
    { scale with Workloads.n_tx = max 1200 (scale.Workloads.n_tx / 8) }
  in
  let full_db = Workloads.quest_db scale in
  let sets =
    Array.init (Cfq_txdb.Tx_db.size full_db) (fun i ->
        (Cfq_txdb.Tx_db.get full_db i).Cfq_txdb.Transaction.items)
  in
  let n_total = Array.length sets in
  let base_n = n_total * 2 / 3 in
  let seals = 3 in
  let rest = n_total - base_n in
  let cut e = base_n + (rest * e / seals) in
  let chunk i = Array.sub sets (cut i) (cut (i + 1) - cut i) in
  let rng = Splitmix.create ~seed:(Int64.add scale.Workloads.seed 7L) in
  let n = scale.Workloads.n_items in
  let prices = Item_gen.uniform_prices rng ~n ~lo:0. ~hi:1000. in
  let types = Array.init n (fun _ -> float_of_int (Splitmix.int rng 20)) in
  let info = Item_gen.item_info ~prices ~types () in
  let texts = session_queries () in
  let queries = List.map Parser.parse texts in
  Printf.printf
    "live session: %d queries, %d base transactions + %d sealed in %d batches\n%!"
    (List.length queries) base_n rest seals;

  (* cold baseline: a service without maintenance re-mines the whole
     script at every epoch *)
  let t0 = Unix.gettimeofday () in
  let cold_at_epoch =
    Array.init (seals + 1) (fun e ->
        let db = Cfq_txdb.Tx_db.create (Array.sub sets 0 (cut e)) in
        let ctx = Exec.context db info in
        List.map
          (fun q -> Exec.run ~strategy:Plan.Cap_one_var ~collect_pairs:true ctx q)
          queries)
  in
  let cold_seconds = Unix.gettimeofday () -. t0 in
  let fold f =
    Array.fold_left
      (fun acc rs -> List.fold_left (fun acc r -> acc + f r) acc rs)
      0 cold_at_epoch
  in
  let cold_counted = fold Exec.total_counted in
  let cold_scans = fold (fun r -> Cfq_txdb.Io_stats.scans r.Exec.io) in

  (* warm: one live service across every seal *)
  let base = Array.sub sets 0 base_n in
  let service =
    Service.create
      ~config:{ Service.default_config with domains = 2 }
      (Exec.context (Cfq_txdb.Tx_db.create base) info)
  in
  Service.attach_source service (Cfq_live.Source.of_mem base);
  let mismatches = ref 0 in
  let post_seal_scans = ref 0 in
  let io_violations = ref 0 in
  let seal_rows = ref [] in
  let check_epoch e served =
    List.iteri
      (fun i (cold_r, served_r) ->
        match served_r with
        | Error err ->
            incr mismatches;
            Printf.printf "epoch %d query %d failed: %s\n" e i
              (Service.error_to_string err)
        | Ok a ->
            if sorted_pairs cold_r.Exec.pairs <> sorted_pairs a.Service.pairs
            then begin
              incr mismatches;
              Printf.printf "epoch %d query %d: answer mismatch (%d vs %d pairs)\n"
                e i
                (List.length cold_r.Exec.pairs)
                (List.length a.Service.pairs)
            end;
            if e > 0 && a.Service.scans > 0 then begin
              incr post_seal_scans;
              Printf.printf "epoch %d query %d: paid %d scans post-seal (%s)\n" e
                i a.Service.scans
                (Service.served_from_name a.Service.served_from)
            end)
      (List.combine cold_at_epoch.(e) served)
  in
  let t1 = Unix.gettimeofday () in
  check_epoch 0 (Service.run_many service queries);
  for s = 1 to seals do
    let src =
      match Service.live_source service with
      | Some src -> src
      | None -> assert false
    in
    let old_pages = Cfq_txdb.Tx_db.pages (Cfq_live.Source.db src) in
    let delta = chunk (s - 1) in
    Array.iter (Service.ingest service) delta;
    (match Service.seal_live service with
    | None ->
        incr mismatches;
        Printf.printf "seal %d sealed nothing\n" s
    | Some lv ->
        (* delta-only I/O: apart from the at-most-one-per-side candidate
           count against the old database, every maintenance scan touches
           at most the sealed batch (twin pages <= one page per appended
           transaction, plus the extraction scan's partial page) *)
        let delta_pages_bound = Array.length delta + 1 in
        let bound =
          (lv.Service.lv_old_scans * old_pages)
          + (lv.Service.lv_scans - lv.Service.lv_old_scans) * delta_pages_bound
        in
        if lv.Service.lv_pages_read > bound then begin
          incr io_violations;
          Printf.printf
            "seal %d: maintenance charged %d pages, above the delta-sized \
             bound %d\n"
            s lv.Service.lv_pages_read bound
        end;
        if
          lv.Service.lv_old_scans
          > lv.Service.lv_sides_promoted + lv.Service.lv_sides_evicted
        then begin
          incr io_violations;
          Printf.printf "seal %d: %d old-db scans for %d side entries\n" s
            lv.Service.lv_old_scans
            (lv.Service.lv_sides_promoted + lv.Service.lv_sides_evicted)
        end;
        seal_rows := lv :: !seal_rows;
        Printf.printf
          "seal %d -> epoch %d: +%d tx; %d sides + %d answers promoted, %d + \
           %d evicted; %d recounted (%d old-db scans, %d pages)\n%!"
          s lv.Service.lv_epoch lv.Service.lv_sealed
          lv.Service.lv_sides_promoted lv.Service.lv_answers_promoted
          lv.Service.lv_sides_evicted lv.Service.lv_answers_evicted
          lv.Service.lv_recounted lv.Service.lv_old_scans
          lv.Service.lv_pages_read);
    check_epoch s (Service.run_many service queries)
  done;
  let warm_seconds = Unix.gettimeofday () -. t1 in
  let m = Service.metrics service in
  Service.shutdown service;
  let seal_rows = List.rev !seal_rows in
  let warm_counted = m.Metrics.support_counted + m.Metrics.maint_recounted in
  let warm_scans = m.Metrics.scans + m.Metrics.maint_scans in

  let tbl = Cfq_report.Table.create [ "metric"; "cold remine"; "live service" ] in
  let row name a b = Cfq_report.Table.add_row tbl [ name; a; b ] in
  row "support counted (ccc)" (string_of_int cold_counted)
    (string_of_int warm_counted);
  row "db scans" (string_of_int cold_scans) (string_of_int warm_scans);
  row "pages read (maintenance)" "-" (string_of_int m.Metrics.maint_pages_read);
  row "total seconds" (Cfq_report.Table.fcell cold_seconds)
    (Cfq_report.Table.fcell warm_seconds);
  row "answer-cache hits" "-" (string_of_int m.Metrics.answer_hits);
  row "sides promoted" "-" (string_of_int m.Metrics.sides_promoted);
  row "answers promoted" "-" (string_of_int m.Metrics.answers_promoted);
  row "final epoch" "-" (string_of_int m.Metrics.live_epoch);
  Cfq_report.Table.print tbl;

  if !mismatches > 0 then begin
    Printf.printf "\nFAIL: %d answers disagreed with the cold remine\n" !mismatches;
    exit 1
  end;
  if !post_seal_scans > 0 then begin
    Printf.printf "\nFAIL: %d post-seal answers paid scan charges\n"
      !post_seal_scans;
    exit 1
  end;
  if !io_violations > 0 then begin
    Printf.printf "\nFAIL: %d maintenance passes exceeded delta-sized I/O\n"
      !io_violations;
    exit 1
  end;
  if warm_counted >= cold_counted then begin
    Printf.printf
      "\nFAIL: live service counted %d sets, not fewer than the %d a cold \
       remine at every epoch pays\n"
      warm_counted cold_counted;
    exit 1
  end;
  Printf.printf
    "\nOK: identical answers at every epoch; live maintenance counted %.1fx \
     fewer sets (%d vs %d) with delta-only I/O\n"
    (float_of_int cold_counted /. float_of_int (max 1 warm_counted))
    warm_counted cold_counted;

  let seal_json lv =
    String.concat ""
      [
        "    { \"epoch\": ";
        string_of_int lv.Service.lv_epoch;
        ", \"sealed\": ";
        string_of_int lv.Service.lv_sealed;
        ", \"sides_promoted\": ";
        string_of_int lv.Service.lv_sides_promoted;
        ", \"sides_evicted\": ";
        string_of_int lv.Service.lv_sides_evicted;
        ", \"answers_promoted\": ";
        string_of_int lv.Service.lv_answers_promoted;
        ", \"answers_evicted\": ";
        string_of_int lv.Service.lv_answers_evicted;
        ", \"recounted\": ";
        string_of_int lv.Service.lv_recounted;
        ", \"old_scans\": ";
        string_of_int lv.Service.lv_old_scans;
        ", \"scans\": ";
        string_of_int lv.Service.lv_scans;
        ", \"pages_read\": ";
        string_of_int lv.Service.lv_pages_read;
        " }";
      ]
  in
  let json =
    String.concat "\n"
      [
        "{";
        "  \"bench\": \"live\",";
        Printf.sprintf "  \"queries\": %d," (List.length queries);
        Printf.sprintf "  \"base_transactions\": %d," base_n;
        Printf.sprintf "  \"sealed_transactions\": %d," rest;
        Printf.sprintf "  \"seals\": %d," seals;
        "  \"cold\": {";
        Printf.sprintf "    \"seconds\": %.6f," cold_seconds;
        Printf.sprintf "    \"support_counted\": %d," cold_counted;
        Printf.sprintf "    \"scans\": %d" cold_scans;
        "  },";
        "  \"live\": {";
        Printf.sprintf "    \"seconds\": %.6f," warm_seconds;
        Printf.sprintf "    \"support_counted\": %d," warm_counted;
        Printf.sprintf "    \"scans\": %d," warm_scans;
        Printf.sprintf "    \"maintenance_pages\": %d," m.Metrics.maint_pages_read;
        Printf.sprintf "    \"answer_hits\": %d," m.Metrics.answer_hits;
        Printf.sprintf "    \"final_epoch\": %d," m.Metrics.live_epoch;
        "    \"seals\": [";
        String.concat ",\n" (List.map seal_json seal_rows);
        "    ]";
        "  },";
        Printf.sprintf "  \"counted_ratio\": %.3f,"
          (float_of_int cold_counted /. float_of_int (max 1 warm_counted));
        Printf.sprintf "  \"mismatches\": %d" !mismatches;
        "}";
      ]
  in
  let oc = open_out "BENCH_live.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_live.json"
