(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 7) and runs the Bechamel microbenchmarks.

   Usage:  dune exec bench/main.exe            (scaled-down workloads)
           FULL=1 dune exec bench/main.exe     (paper scale: 100k transactions)
           dune exec bench/main.exe -- micro   (microbenchmarks only)
           dune exec bench/main.exe -- fig8a   (one experiment)
           dune exec bench/main.exe -- session (service cache vs cold replay)
           dune exec bench/main.exe -- chaos   (session under injected faults)
           dune exec bench/main.exe -- store   (persistent backend: buffer pool)
           dune exec bench/main.exe -- shard   (sharded stores: count distribution)
           dune exec bench/main.exe -- live    (ingest-query interleave across seals) *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let scale () = Workloads.default_scale () in
  match args with
  | [] ->
      Micro.run ();
      Experiments.run_all ()
  | [ "micro" ] -> Micro.run ()
  | [ "fig8a" ] -> ignore (Experiments.fig8a (scale ()))
  | [ "tab71_levels" ] -> Experiments.tab71_levels (scale ())
  | [ "tab71_ranges" ] -> Experiments.tab71_ranges (scale ())
  | [ "fig8b" ] -> ignore (Experiments.fig8b (scale ()))
  | [ "tab72_ranges" ] -> Experiments.tab72_ranges (scale ())
  | [ "tab73_jmax" ] -> ignore (Experiments.tab73_jmax (scale ()))
  | [ "ablation" ] -> Experiments.ablation_dovetail (scale ())
  | [ "miners" ] -> Experiments.miners (scale ())
  | [ "cap_1var" ] -> Experiments.cap_1var (scale ())
  | [ "maintenance" ] -> Experiments.maintenance (scale ())
  | [ "parallel" ] -> Experiments.parallel (scale ())
  | [ "counting" ] -> Counting_bench.run (scale ())
  | [ "session" ] -> Session.run (scale ())
  | [ "chaos" ] -> Chaos.run (scale ())
  | [ "store" ] -> Store_bench.run (scale ())
  | [ "shard" ] -> Shard_bench.run (scale ())
  | [ "live" ] -> Live.run (scale ())
  | _ ->
      prerr_endline
        "usage: main.exe \
         [micro|fig8a|tab71_levels|tab71_ranges|fig8b|tab72_ranges|tab73_jmax|ablation|miners|cap_1var|maintenance|parallel|counting|session|chaos|store|shard|live]";
      exit 2
