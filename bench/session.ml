(* Replay of an exploratory refinement session through the query service.

   A 50-query script models the paper's intended workload (Section 1): an
   analyst starts broad, tightens price bands and support step by step, and
   re-issues earlier queries while comparing.  Every query is run twice —
   cold (a fresh Exec.run per query, the pre-service behaviour) and through
   one warm Cfq_service instance — asserting identical answer pairs and
   comparing the total ccc cost. *)

open Cfq_itembase
open Cfq_quest
open Cfq_core
open Cfq_service

let sorted_pairs l =
  List.sort
    (fun (a1, b1) (a2, b2) ->
      match Itemset.compare a1 a2 with 0 -> Itemset.compare b1 b2 | c -> c)
    (List.map
       (fun (s, t) -> (s.Cfq_mining.Frequent.set, t.Cfq_mining.Frequent.set))
       l)

(* fifty queries: five rounds over a sliding S-side price band, tightening
   within each round (subsumption reuse), each round closing by re-issuing
   its first query (answer-cache reuse); the type-equality join keeps the
   answers selective so pair formation stays small next to mining *)
let session_queries () =
  let queries = ref [] in
  let push fmt = Printf.ksprintf (fun s -> queries := s :: !queries) fmt in
  for round = 0 to 4 do
    let minsup = 0.008 +. (0.002 *. float_of_int round) in
    let lo0 = 300. +. (40. *. float_of_int round) in
    for step = 0 to 8 do
      (* the analyst narrows the S price band and trims the T budget *)
      let lo = lo0 +. (15. *. float_of_int step) in
      let t_hi = 700. -. (25. *. float_of_int step) in
      push
        "{(S,T) | freq(S) >= %g & freq(T) >= %g & S.Price >= %g & T.Price <= %g & \
         S.Type = T.Type}"
        minsup minsup lo t_hi
    done;
    (* ...and goes back to the round's starting point to compare *)
    push
      "{(S,T) | freq(S) >= %g & freq(T) >= %g & S.Price >= %g & T.Price <= %g & \
       S.Type = T.Type}"
      minsup minsup lo0 700.
  done;
  List.rev !queries

let run (scale : Workloads.scale) =
  (* a session-sized database: a fraction of the harness scale keeps the
     2x50 executions in benchmark territory *)
  let scale = { scale with Workloads.n_tx = max 1000 (scale.Workloads.n_tx / 8) } in
  let db = Workloads.quest_db scale in
  let rng = Splitmix.create ~seed:(Int64.add scale.Workloads.seed 7L) in
  let n = scale.Workloads.n_items in
  let prices = Item_gen.uniform_prices rng ~n ~lo:0. ~hi:1000. in
  let types = Array.init n (fun _ -> float_of_int (Splitmix.int rng 20)) in
  let info = Item_gen.item_info ~prices ~types () in
  let ctx = Exec.context db info in
  let texts = session_queries () in
  let queries = List.map Parser.parse texts in
  Printf.printf "refinement session: %d queries over %d transactions\n%!"
    (List.length queries) (Cfq_txdb.Tx_db.size db);

  (* cold: every query pays for its own mining (1-var CAP + pair formation,
     the same discipline the service uses, so the comparison is fair) *)
  let t0 = Unix.gettimeofday () in
  let cold =
    List.map
      (fun q -> Exec.run ~strategy:Plan.Cap_one_var ~collect_pairs:true ctx q)
      queries
  in
  let cold_seconds = Unix.gettimeofday () -. t0 in
  let cold_counted = List.fold_left (fun acc r -> acc + Exec.total_counted r) 0 cold in
  let cold_checks = List.fold_left (fun acc r -> acc + Exec.total_checks r) 0 cold in
  let cold_scans =
    List.fold_left (fun acc r -> acc + Cfq_txdb.Io_stats.scans r.Exec.io) 0 cold
  in

  (* the parallel counting engine must be byte-identical to sequential cold
     execution: same pairs, same ccc counters, same scan charges, per query *)
  let par = Cfq_mining.Counting.par ~min_rows_per_domain:1 3 in
  let par_mismatches = ref 0 in
  List.iteri
    (fun i (q, cold_r) ->
      let par_r = Exec.run ~strategy:Plan.Cap_one_var ~collect_pairs:true ~par ctx q in
      if
        sorted_pairs cold_r.Exec.pairs <> sorted_pairs par_r.Exec.pairs
        || Exec.total_counted cold_r <> Exec.total_counted par_r
        || Exec.total_checks cold_r <> Exec.total_checks par_r
        || Cfq_txdb.Io_stats.scans cold_r.Exec.io
           <> Cfq_txdb.Io_stats.scans par_r.Exec.io
      then begin
        incr par_mismatches;
        Printf.printf "query %d: parallel counting diverged from sequential\n" i
      end)
    (List.combine queries cold);
  if !par_mismatches > 0 then begin
    Printf.printf "\nFAIL: parallel counting diverged on %d of %d queries\n"
      !par_mismatches (List.length queries);
    exit 1
  end;
  Printf.printf "parallel counting (3 domains): identical pairs/ccc/scans on all %d queries\n%!"
    (List.length queries);

  (* warm: one service, cross-query reuse *)
  let service = Service.create ~config:{ Service.default_config with domains = 2 } ctx in
  let t1 = Unix.gettimeofday () in
  let served = Service.run_many service queries in
  let warm_seconds = Unix.gettimeofday () -. t1 in
  let m = Service.metrics service in
  Service.shutdown service;

  (* identical answers, query by query *)
  let mismatches = ref 0 in
  List.iteri
    (fun i (cold_r, served_r) ->
      match served_r with
      | Error e ->
          incr mismatches;
          Printf.printf "query %d failed in the service: %s\n" i (Service.error_to_string e)
      | Ok a ->
          if sorted_pairs cold_r.Exec.pairs <> sorted_pairs a.Service.pairs then begin
            incr mismatches;
            Printf.printf "query %d: answer mismatch (%d cold pairs vs %d served)\n" i
              (List.length cold_r.Exec.pairs)
              (List.length a.Service.pairs)
          end)
    (List.combine cold served);

  let tbl = Cfq_report.Table.create [ "metric"; "cold"; "service (warm)" ] in
  let row name a b = Cfq_report.Table.add_row tbl [ name; a; b ] in
  row "support counted (ccc)" (string_of_int cold_counted)
    (string_of_int m.Metrics.support_counted);
  row "constraint checks (ccc)" (string_of_int cold_checks)
    (string_of_int m.Metrics.constraint_checks);
  row "db scans" (string_of_int cold_scans) (string_of_int m.Metrics.scans);
  row "total seconds" (Cfq_report.Table.fcell cold_seconds)
    (Cfq_report.Table.fcell warm_seconds);
  row "answer-cache hits" "-" (string_of_int m.Metrics.answer_hits);
  row "subsumption hits (sides)" "-" (string_of_int m.Metrics.subsumption_hits);
  row "sides mined" "-" (string_of_int m.Metrics.sides_mined);
  Cfq_report.Table.print tbl;

  if !mismatches > 0 then begin
    Printf.printf "\nFAIL: %d of %d queries disagreed with cold execution\n" !mismatches
      (List.length queries);
    exit 1
  end;
  if m.Metrics.support_counted >= cold_counted then begin
    Printf.printf
      "\nFAIL: warm service counted %d sets, not fewer than cold execution's %d\n"
      m.Metrics.support_counted cold_counted;
    exit 1
  end;
  Printf.printf
    "\nOK: identical answers; warm service counted %.1fx fewer sets (%d vs %d)\n"
    (float_of_int cold_counted /. float_of_int (max 1 m.Metrics.support_counted))
    m.Metrics.support_counted cold_counted;

  (* --- condensed answer cache: fixed-budget hit-rate comparison ---

     A correlated workload where condensation bites: planted patterns on
     items 0..39 (prices >= 300) with noise confined to items 40..79
     (prices <= 250), so every subset of a pattern has exactly the
     pattern's support — a handful of closed sets stand in for the whole
     collection.  A price-floor constraint keeps mining on the pattern
     items and the collections downward closed.  Both services replay the
     same two-pass script (pass 2 re-issues pass 1) under one cache budget
     fixed between the condensed and raw space needs: the condensed cache
     retains everything, the raw cache must evict, and the warm hit rates
     diverge while the answers stay identical. *)
  let cond_rng = Splitmix.create ~seed:(Int64.add scale.Workloads.seed 23L) in
  let pattern_of lo len prob =
    Planted.pattern ~partial_prob:0. ~prob
      (Itemset.of_list (List.init len (fun i -> lo + i)))
  in
  let corr_db =
    Planted.generate cond_rng ~n_transactions:2000 ~universe:(40, 80)
      ~noise_len:4.
      [ pattern_of 0 5 0.5; pattern_of 6 5 0.45; pattern_of 12 5 0.4 ]
  in
  let corr_prices =
    Array.init 80 (fun i ->
        if i < 40 then 300. +. (2. *. float_of_int i)
        else 100. +. (2. *. float_of_int (i - 40)))
  in
  let corr_types = Array.init 80 (fun i -> float_of_int (i mod 4)) in
  let corr_info = Item_gen.item_info ~prices:corr_prices ~types:corr_types () in
  let corr_ctx = Exec.context corr_db corr_info in
  let corr_queries =
    List.concat_map
      (fun minsup ->
        List.map
          (fun lo ->
            Parser.parse
              (Printf.sprintf
                 "{(S,T) | freq(S) >= %g & freq(T) >= %g & S.Price >= %g & \
                  T.Price >= %g & S.Type = T.Type}"
                 minsup minsup lo lo))
          [ 300.; 308.; 316.; 324. ])
      [ 0.3; 0.33 ]
  in
  let exact_pairs a =
    List.map
      (fun (s, t) ->
        ( s.Cfq_mining.Frequent.set,
          s.Cfq_mining.Frequent.support,
          t.Cfq_mining.Frequent.set,
          t.Cfq_mining.Frequent.support ))
      a.Service.pairs
  in
  (* probe both representations under an unconstrained budget to measure
     the space each needs for the full pass-1 working set *)
  let probe condense =
    let service =
      Service.create
        ~config:
          {
            Service.default_config with
            domains = 1;
            cache_budget = 1 lsl 28;
            condense;
          }
        corr_ctx
    in
    let answers =
      List.map (fun q -> Service.run service q |> Result.get_ok) corr_queries
    in
    let m = Service.metrics service in
    Service.shutdown service;
    (m, answers)
  in
  let m_raw_probe, probe_raw_answers = probe false in
  let m_cond_probe, probe_cond_answers = probe true in
  List.iteri
    (fun i (ar, ac) ->
      if exact_pairs ar <> exact_pairs ac then begin
        Printf.printf "FAIL: condensed probe diverged on correlated query %d\n" i;
        exit 1
      end)
    (List.combine probe_raw_answers probe_cond_answers);
  let raw_need = m_raw_probe.Metrics.side_bytes + m_raw_probe.Metrics.answer_bytes in
  let cond_need =
    m_cond_probe.Metrics.side_bytes + m_cond_probe.Metrics.answer_bytes
  in
  (* the budget splits 3/4 sides : 1/4 answers; fix it so the condensed
     working set fits each sub-budget and the raw one overflows at least
     one of them *)
  let fits_at need_sides need_answers =
    max ((need_sides * 4 / 3) + 1) ((need_answers * 4) + 1)
  in
  let b_low =
    fits_at m_cond_probe.Metrics.side_bytes m_cond_probe.Metrics.answer_bytes
  in
  let b_high =
    fits_at m_raw_probe.Metrics.side_bytes m_raw_probe.Metrics.answer_bytes
  in
  if b_low >= b_high then begin
    Printf.printf
      "FAIL: condensation saved nothing on the correlated workload (fit points \
       %d >= %d)\n"
      b_low b_high;
    exit 1
  end;
  (* the smallest budget the condensed working set fits: the condensed
     cache retains everything, the raw cache is maximally pressured *)
  let budget = b_low in
  let replay condense =
    let service =
      Service.create
        ~config:
          { Service.default_config with domains = 1; cache_budget = budget; condense }
        corr_ctx
    in
    let pass () =
      List.map (fun q -> Service.run service q |> Result.get_ok) corr_queries
    in
    let a1 = pass () in
    let hits_before = (Service.metrics service).Metrics.answer_hits in
    let a2 = pass () in
    let m = Service.metrics service in
    Service.shutdown service;
    let warm =
      List.length
        (List.filter (fun a -> a.Service.served_from <> Service.Cold) a2)
    in
    (m, a1 @ a2, m.Metrics.answer_hits - hits_before, warm)
  in
  let m_raw, raw_answers, raw_hits, raw_warm = replay false in
  let m_cond, cond_answers, cond_hits, cond_warm = replay true in
  List.iteri
    (fun i (ar, ac) ->
      if exact_pairs ar <> exact_pairs ac then begin
        Printf.printf "FAIL: condensed replay diverged on correlated query %d\n" i;
        exit 1
      end)
    (List.combine raw_answers cond_answers);
  let n_corr = List.length corr_queries in
  let ratio =
    float_of_int m_cond.Metrics.cond_raw_bytes
    /. float_of_int (max 1 m_cond.Metrics.cond_bytes)
  in
  let ctbl = Cfq_report.Table.create [ "metric"; "raw"; "condensed" ] in
  let crow name a b = Cfq_report.Table.add_row ctbl [ name; a; b ] in
  crow "working set (probe bytes)" (string_of_int raw_need) (string_of_int cond_need);
  crow "cache budget (fixed)" (string_of_int budget) (string_of_int budget);
  crow
    (Printf.sprintf "pass-2 answer hits (of %d)" n_corr)
    (string_of_int raw_hits) (string_of_int cond_hits);
  crow
    (Printf.sprintf "pass-2 warm serves (of %d)" n_corr)
    (string_of_int raw_warm) (string_of_int cond_warm);
  crow "evictions" (string_of_int m_raw.Metrics.evictions)
    (string_of_int m_cond.Metrics.evictions);
  crow "reconstructions" (string_of_int m_raw.Metrics.reconstructions)
    (string_of_int m_cond.Metrics.reconstructions);
  crow "condensation ratio" "-" (Printf.sprintf "%.2f" ratio);
  print_newline ();
  Printf.printf "condensed cache at a fixed %d-byte budget (%d-query script, 2 passes):\n"
    budget n_corr;
  Cfq_report.Table.print ctbl;
  if cond_hits <= raw_hits then begin
    Printf.printf
      "\nFAIL: condensed cache hit %d of %d pass-2 queries, raw hit %d — expected \
       strictly more\n"
      cond_hits n_corr raw_hits;
    exit 1
  end;
  Printf.printf
    "\nOK: identical answers; condensed cache hit %d/%d warm re-issues vs raw's %d \
     (%.2fx less cache space)\n"
    cond_hits n_corr raw_hits ratio;

  (* hit rate vs budget: the same two-pass replay at a sweep of budgets
     bracketing both working sets *)
  let stbl = Cfq_report.Table.create [ "budget"; "raw hits"; "condensed hits" ] in
  List.iter
    (fun (label, b) ->
      let sweep_replay condense =
        let service =
          Service.create
            ~config:
              { Service.default_config with domains = 1; cache_budget = b; condense }
            corr_ctx
        in
        let pass () =
          List.iter
            (fun q -> ignore (Service.run service q |> Result.get_ok : Service.answer))
            corr_queries
        in
        pass ();
        let before = (Service.metrics service).Metrics.answer_hits in
        pass ();
        let hits = (Service.metrics service).Metrics.answer_hits - before in
        Service.shutdown service;
        hits
      in
      Cfq_report.Table.add_row stbl
        [
          Printf.sprintf "%d (%s)" b label;
          Printf.sprintf "%d/%d" (sweep_replay false) n_corr;
          Printf.sprintf "%d/%d" (sweep_replay true) n_corr;
        ])
    [
      ("1/2 condensed fit", b_low / 2);
      ("condensed fit", b_low);
      ("2x condensed fit", 2 * b_low);
      ("raw fit", b_high);
    ];
  print_newline ();
  print_endline "pass-2 answer-cache hits vs budget:";
  Cfq_report.Table.print stbl;

  let json =
    String.concat "\n"
      [
        "{";
        "  \"bench\": \"session\",";
        Printf.sprintf "  \"queries\": %d," (List.length queries);
        Printf.sprintf "  \"transactions\": %d," (Cfq_txdb.Tx_db.size db);
        "  \"cold\": {";
        Printf.sprintf "    \"seconds\": %.6f," cold_seconds;
        Printf.sprintf "    \"support_counted\": %d," cold_counted;
        Printf.sprintf "    \"constraint_checks\": %d," cold_checks;
        Printf.sprintf "    \"scans\": %d" cold_scans;
        "  },";
        "  \"warm\": {";
        Printf.sprintf "    \"seconds\": %.6f," warm_seconds;
        Printf.sprintf "    \"support_counted\": %d," m.Metrics.support_counted;
        Printf.sprintf "    \"constraint_checks\": %d," m.Metrics.constraint_checks;
        Printf.sprintf "    \"scans\": %d," m.Metrics.scans;
        Printf.sprintf "    \"answer_hits\": %d," m.Metrics.answer_hits;
        Printf.sprintf "    \"subsumption_hits\": %d," m.Metrics.subsumption_hits;
        Printf.sprintf "    \"sides_mined\": %d" m.Metrics.sides_mined;
        "  },";
        Printf.sprintf "  \"counted_ratio\": %.3f,"
          (float_of_int cold_counted /. float_of_int (max 1 m.Metrics.support_counted));
        "  \"condensed\": {";
        Printf.sprintf "    \"queries\": %d," n_corr;
        Printf.sprintf "    \"budget\": %d," budget;
        Printf.sprintf "    \"raw_need_bytes\": %d," raw_need;
        Printf.sprintf "    \"condensed_need_bytes\": %d," cond_need;
        Printf.sprintf "    \"raw_hits\": %d," raw_hits;
        Printf.sprintf "    \"condensed_hits\": %d," cond_hits;
        Printf.sprintf "    \"raw_warm\": %d," raw_warm;
        Printf.sprintf "    \"condensed_warm\": %d," cond_warm;
        Printf.sprintf "    \"reconstructions\": %d," m_cond.Metrics.reconstructions;
        Printf.sprintf "    \"ratio\": %.3f," ratio;
        "    \"identical\": true";
        "  }";
        "}";
      ]
  in
  let oc = open_out "BENCH_session.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_session.json"
