(* Replay of an exploratory refinement session through the query service.

   A 50-query script models the paper's intended workload (Section 1): an
   analyst starts broad, tightens price bands and support step by step, and
   re-issues earlier queries while comparing.  Every query is run twice —
   cold (a fresh Exec.run per query, the pre-service behaviour) and through
   one warm Cfq_service instance — asserting identical answer pairs and
   comparing the total ccc cost. *)

open Cfq_itembase
open Cfq_quest
open Cfq_core
open Cfq_service

let sorted_pairs l =
  List.sort
    (fun (a1, b1) (a2, b2) ->
      match Itemset.compare a1 a2 with 0 -> Itemset.compare b1 b2 | c -> c)
    (List.map
       (fun (s, t) -> (s.Cfq_mining.Frequent.set, t.Cfq_mining.Frequent.set))
       l)

(* fifty queries: five rounds over a sliding S-side price band, tightening
   within each round (subsumption reuse), each round closing by re-issuing
   its first query (answer-cache reuse); the type-equality join keeps the
   answers selective so pair formation stays small next to mining *)
let session_queries () =
  let queries = ref [] in
  let push fmt = Printf.ksprintf (fun s -> queries := s :: !queries) fmt in
  for round = 0 to 4 do
    let minsup = 0.008 +. (0.002 *. float_of_int round) in
    let lo0 = 300. +. (40. *. float_of_int round) in
    for step = 0 to 8 do
      (* the analyst narrows the S price band and trims the T budget *)
      let lo = lo0 +. (15. *. float_of_int step) in
      let t_hi = 700. -. (25. *. float_of_int step) in
      push
        "{(S,T) | freq(S) >= %g & freq(T) >= %g & S.Price >= %g & T.Price <= %g & \
         S.Type = T.Type}"
        minsup minsup lo t_hi
    done;
    (* ...and goes back to the round's starting point to compare *)
    push
      "{(S,T) | freq(S) >= %g & freq(T) >= %g & S.Price >= %g & T.Price <= %g & \
       S.Type = T.Type}"
      minsup minsup lo0 700.
  done;
  List.rev !queries

let run (scale : Workloads.scale) =
  (* a session-sized database: a fraction of the harness scale keeps the
     2x50 executions in benchmark territory *)
  let scale = { scale with Workloads.n_tx = max 1000 (scale.Workloads.n_tx / 8) } in
  let db = Workloads.quest_db scale in
  let rng = Splitmix.create ~seed:(Int64.add scale.Workloads.seed 7L) in
  let n = scale.Workloads.n_items in
  let prices = Item_gen.uniform_prices rng ~n ~lo:0. ~hi:1000. in
  let types = Array.init n (fun _ -> float_of_int (Splitmix.int rng 20)) in
  let info = Item_gen.item_info ~prices ~types () in
  let ctx = Exec.context db info in
  let texts = session_queries () in
  let queries = List.map Parser.parse texts in
  Printf.printf "refinement session: %d queries over %d transactions\n%!"
    (List.length queries) (Cfq_txdb.Tx_db.size db);

  (* cold: every query pays for its own mining (1-var CAP + pair formation,
     the same discipline the service uses, so the comparison is fair) *)
  let t0 = Unix.gettimeofday () in
  let cold =
    List.map
      (fun q -> Exec.run ~strategy:Plan.Cap_one_var ~collect_pairs:true ctx q)
      queries
  in
  let cold_seconds = Unix.gettimeofday () -. t0 in
  let cold_counted = List.fold_left (fun acc r -> acc + Exec.total_counted r) 0 cold in
  let cold_checks = List.fold_left (fun acc r -> acc + Exec.total_checks r) 0 cold in
  let cold_scans =
    List.fold_left (fun acc r -> acc + Cfq_txdb.Io_stats.scans r.Exec.io) 0 cold
  in

  (* the parallel counting engine must be byte-identical to sequential cold
     execution: same pairs, same ccc counters, same scan charges, per query *)
  let par = Cfq_mining.Counting.par ~min_rows_per_domain:1 3 in
  let par_mismatches = ref 0 in
  List.iteri
    (fun i (q, cold_r) ->
      let par_r = Exec.run ~strategy:Plan.Cap_one_var ~collect_pairs:true ~par ctx q in
      if
        sorted_pairs cold_r.Exec.pairs <> sorted_pairs par_r.Exec.pairs
        || Exec.total_counted cold_r <> Exec.total_counted par_r
        || Exec.total_checks cold_r <> Exec.total_checks par_r
        || Cfq_txdb.Io_stats.scans cold_r.Exec.io
           <> Cfq_txdb.Io_stats.scans par_r.Exec.io
      then begin
        incr par_mismatches;
        Printf.printf "query %d: parallel counting diverged from sequential\n" i
      end)
    (List.combine queries cold);
  if !par_mismatches > 0 then begin
    Printf.printf "\nFAIL: parallel counting diverged on %d of %d queries\n"
      !par_mismatches (List.length queries);
    exit 1
  end;
  Printf.printf "parallel counting (3 domains): identical pairs/ccc/scans on all %d queries\n%!"
    (List.length queries);

  (* warm: one service, cross-query reuse *)
  let service = Service.create ~config:{ Service.default_config with domains = 2 } ctx in
  let t1 = Unix.gettimeofday () in
  let served = Service.run_many service queries in
  let warm_seconds = Unix.gettimeofday () -. t1 in
  let m = Service.metrics service in
  Service.shutdown service;

  (* identical answers, query by query *)
  let mismatches = ref 0 in
  List.iteri
    (fun i (cold_r, served_r) ->
      match served_r with
      | Error e ->
          incr mismatches;
          Printf.printf "query %d failed in the service: %s\n" i (Service.error_to_string e)
      | Ok a ->
          if sorted_pairs cold_r.Exec.pairs <> sorted_pairs a.Service.pairs then begin
            incr mismatches;
            Printf.printf "query %d: answer mismatch (%d cold pairs vs %d served)\n" i
              (List.length cold_r.Exec.pairs)
              (List.length a.Service.pairs)
          end)
    (List.combine cold served);

  let tbl = Cfq_report.Table.create [ "metric"; "cold"; "service (warm)" ] in
  let row name a b = Cfq_report.Table.add_row tbl [ name; a; b ] in
  row "support counted (ccc)" (string_of_int cold_counted)
    (string_of_int m.Metrics.support_counted);
  row "constraint checks (ccc)" (string_of_int cold_checks)
    (string_of_int m.Metrics.constraint_checks);
  row "db scans" (string_of_int cold_scans) (string_of_int m.Metrics.scans);
  row "total seconds" (Cfq_report.Table.fcell cold_seconds)
    (Cfq_report.Table.fcell warm_seconds);
  row "answer-cache hits" "-" (string_of_int m.Metrics.answer_hits);
  row "subsumption hits (sides)" "-" (string_of_int m.Metrics.subsumption_hits);
  row "sides mined" "-" (string_of_int m.Metrics.sides_mined);
  Cfq_report.Table.print tbl;

  if !mismatches > 0 then begin
    Printf.printf "\nFAIL: %d of %d queries disagreed with cold execution\n" !mismatches
      (List.length queries);
    exit 1
  end;
  if m.Metrics.support_counted >= cold_counted then begin
    Printf.printf
      "\nFAIL: warm service counted %d sets, not fewer than cold execution's %d\n"
      m.Metrics.support_counted cold_counted;
    exit 1
  end;
  Printf.printf
    "\nOK: identical answers; warm service counted %.1fx fewer sets (%d vs %d)\n"
    (float_of_int cold_counted /. float_of_int (max 1 m.Metrics.support_counted))
    m.Metrics.support_counted cold_counted;

  let json =
    String.concat "\n"
      [
        "{";
        "  \"bench\": \"session\",";
        Printf.sprintf "  \"queries\": %d," (List.length queries);
        Printf.sprintf "  \"transactions\": %d," (Cfq_txdb.Tx_db.size db);
        "  \"cold\": {";
        Printf.sprintf "    \"seconds\": %.6f," cold_seconds;
        Printf.sprintf "    \"support_counted\": %d," cold_counted;
        Printf.sprintf "    \"constraint_checks\": %d," cold_checks;
        Printf.sprintf "    \"scans\": %d" cold_scans;
        "  },";
        "  \"warm\": {";
        Printf.sprintf "    \"seconds\": %.6f," warm_seconds;
        Printf.sprintf "    \"support_counted\": %d," m.Metrics.support_counted;
        Printf.sprintf "    \"constraint_checks\": %d," m.Metrics.constraint_checks;
        Printf.sprintf "    \"scans\": %d," m.Metrics.scans;
        Printf.sprintf "    \"answer_hits\": %d," m.Metrics.answer_hits;
        Printf.sprintf "    \"subsumption_hits\": %d," m.Metrics.subsumption_hits;
        Printf.sprintf "    \"sides_mined\": %d" m.Metrics.sides_mined;
        "  },";
        Printf.sprintf "  \"counted_ratio\": %.3f"
          (float_of_int cold_counted /. float_of_int (max 1 m.Metrics.support_counted));
        "}";
      ]
  in
  let oc = open_out "BENCH_session.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_session.json"
