(* Chaos replay: the refinement session of [Session] served under
   deterministic fault injection, in two phases.

   Phase A replays the 50-query session while the store fails the first two
   page reads unconditionally ([fail_first]) and sleeps on a fraction of
   scans: the cold query is retried past the transients and every answer
   must equal the fault-free reference.

   Phase B is a fault storm: the mined side collections are dropped
   ([cache_drop_sides]), the injector is swapped for one that tampers pages
   (bounded, detected by the per-page checksums), crashes scans, and fails
   page reads — then ten fresh refinements of the broadest cached query are
   issued.  Each must mine cold, so each runs into the storm; the service
   must serve every one of them anyway — retried, or degraded from an
   entailed cached superset answer (exact pairs, since the store is
   immutable and cached pairs carry absolute supports), with the circuit
   breaker tripping on the consecutive failures.

   Phase C is a replica kill: the same transactions are written to two
   on-disk sharded stores — one unreplicated, one with two replicas per
   shard — and replica 0 of {e every} shard of the replicated store is
   permanently faulted.  The replica layer must fail every read over to
   the healthy siblings: all answers equal the fault-free reference with
   zero degraded answers and zero breaker trips, and the ccc counters and
   logical page charges equal the unreplicated run's.  Afterwards a data
   page of one replica is rotted on disk and the scrubber must quarantine
   it, rebuild it from its sibling, and leave every replica
   checksum-clean.

   The whole run is deterministic: one worker domain, sequential
   submission, fixed fault seeds, and no wall-clock-dependent output, so
   two invocations print byte-identical reports (CI diffs them). *)

open Cfq_itembase
open Cfq_quest
open Cfq_core
open Cfq_service

let sorted_pairs l =
  List.sort
    (fun (a1, b1) (a2, b2) ->
      match Itemset.compare a1 a2 with 0 -> Itemset.compare b1 b2 | c -> c)
    (List.map
       (fun (s, t) -> (s.Cfq_mining.Frequent.set, t.Cfq_mining.Frequent.set))
       l)

(* phase A: deterministic transients (the first two page reads fail, so the
   cold query retries exactly twice) plus latency spikes *)
let calm_faults =
  {
    Cfq_txdb.Fault.default_config with
    Cfq_txdb.Fault.seed = 0xC4A05L;
    fail_first = 2;
    spike_p = 0.05;
    spike_seconds = 0.0005;
  }

(* phase B: the storm — bounded page corruption, scan crashes, transient
   page-read errors *)
let storm_faults =
  {
    Cfq_txdb.Fault.default_config with
    Cfq_txdb.Fault.seed = 0x57042L;
    transient_p = 0.01;
    corrupt_p = 0.3;
    max_corrupt = 2;
    crash_p = 0.1;
  }

(* ten refinements never issued in phase A, all inside the coverage of the
   session's broadest query (minsup 0.008, S.Price >= 300, T.Price <= 700),
   so a cached superset answer exists for every one of them *)
let storm_queries () =
  List.init 10 (fun k ->
      Printf.sprintf
        "{(S,T) | freq(S) >= 0.009 & freq(T) >= 0.009 & S.Price >= %g & T.Price <= %g \
         & S.Type = T.Type}"
        (305. +. (10. *. float_of_int k))
        (690. -. (20. *. float_of_int k)))

(* phase C: every read of the preferred replica fails — the pure
   replica-kill, no corruption, no crashes *)
let kill_faults =
  { Cfq_txdb.Fault.default_config with Cfq_txdb.Fault.seed = 0x5EFA11L; transient_p = 1.0 }

(* the full injector configuration, so a replay can reconstruct each
   phase's fault stream exactly *)
let fault_config_json indent (c : Cfq_txdb.Fault.config) =
  let f = Printf.sprintf in
  String.concat "\n"
    (List.map
       (fun s -> indent ^ s)
       [
         f "\"seed\": %Ld," c.Cfq_txdb.Fault.seed;
         f "\"transient_p\": %g," c.Cfq_txdb.Fault.transient_p;
         f "\"fail_first\": %d," c.Cfq_txdb.Fault.fail_first;
         f "\"spike_p\": %g," c.Cfq_txdb.Fault.spike_p;
         f "\"spike_seconds\": %g," c.Cfq_txdb.Fault.spike_seconds;
         f "\"corrupt_p\": %g," c.Cfq_txdb.Fault.corrupt_p;
         f "\"max_corrupt\": %d," c.Cfq_txdb.Fault.max_corrupt;
         f "\"crash_p\": %g" c.Cfq_txdb.Fault.crash_p;
       ])

let pct n total = 100. *. float_of_int n /. float_of_int (max 1 total)

let run (scale : Workloads.scale) =
  (* same session-sized database as the [Session] bench *)
  let scale = { scale with Workloads.n_tx = max 1000 (scale.Workloads.n_tx / 8) } in
  let db = Workloads.quest_db scale in
  let rng = Splitmix.create ~seed:(Int64.add scale.Workloads.seed 7L) in
  let n = scale.Workloads.n_items in
  let prices = Item_gen.uniform_prices rng ~n ~lo:0. ~hi:1000. in
  let types = Array.init n (fun _ -> float_of_int (Splitmix.int rng 20)) in
  let info = Item_gen.item_info ~prices ~types () in
  let ctx = Exec.context db info in
  let session = List.map Parser.parse (Session.session_queries ()) in
  let storm = List.map Parser.parse (storm_queries ()) in
  Printf.printf "chaos replay: %d + %d queries over %d transactions (%d pages)\n%!"
    (List.length session) (List.length storm) (Cfq_txdb.Tx_db.size db)
    (Cfq_txdb.Tx_db.pages db);

  (* fault-free reference for both phases, the same mining discipline the
     service uses *)
  let reference qs =
    List.map
      (fun q ->
        sorted_pairs
          (Exec.run ~strategy:Plan.Cap_one_var ~collect_pairs:true ctx q).Exec.pairs)
      qs
  in
  let session_ref = reference session in
  let storm_ref = reference storm in
  print_endline "fault-free reference computed";

  let config =
    {
      Service.default_config with
      Service.domains = 1;
      (* chunked parallel counting under faults: the single worker is busy
         with the query itself, so helper jobs are withdrawn unrun and the
         replay stays deterministic — but every scan still takes the
         begin_scan/chunk path this PR adds *)
      mine_domains = 3;
      retries = 3;
      backoff_base = 0.0005;
      breaker_threshold = 3;
      breaker_cooldown = 2;
      degrade = true;
    }
  in
  let service = Service.create ~config ctx in

  let aborted = ref 0 and degraded = ref 0 and mismatches = ref 0 in
  let check phase i expected = function
    | Error e ->
        incr aborted;
        Printf.printf "%s query %d ABORTED: %s\n" phase i (Service.error_to_string e)
    | Ok a ->
        if a.Service.served_from = Service.Degraded then incr degraded;
        if sorted_pairs a.Service.pairs <> expected then begin
          incr mismatches;
          Printf.printf "%s query %d MISMATCH (%s): %d pairs vs %d in the reference\n"
            phase i
            (Service.served_from_name a.Service.served_from)
            (List.length a.Service.pairs) (List.length expected)
        end
  in

  (* ---- phase A ---- *)
  let calm = Cfq_txdb.Fault.create calm_faults in
  Cfq_txdb.Tx_db.set_faults db (Some calm);
  let served = List.map (fun q -> Service.run service q) session in
  List.iteri
    (fun i (expected, r) -> check "session" i expected r)
    (List.combine session_ref served);
  let cs = Cfq_txdb.Fault.stats calm in
  Printf.printf
    "phase A (calm): injected transient=%d spikes=%d; %d degraded so far\n%!"
    cs.Cfq_txdb.Fault.transient cs.Cfq_txdb.Fault.spikes !degraded;

  (* ---- phase B ---- *)
  Service.cache_drop_sides service;
  let injector = Cfq_txdb.Fault.create storm_faults in
  Cfq_txdb.Tx_db.set_faults db (Some injector);
  let served = List.map (fun q -> Service.run service q) storm in
  List.iteri
    (fun i (expected, r) -> check "storm" i expected r)
    (List.combine storm_ref served);
  let ss = Cfq_txdb.Fault.stats injector in
  Printf.printf
    "phase B (storm): injected transient=%d crashes=%d tampered=%d \
     checksum_failures=%d\n"
    ss.Cfq_txdb.Fault.transient ss.Cfq_txdb.Fault.crashes ss.Cfq_txdb.Fault.tampered
    ss.Cfq_txdb.Fault.checksum_failures;
  (match Cfq_txdb.Tx_db.verify db with
  | Error e -> Printf.printf "verify under storm faults: %s\n" (Cfq_txdb.Cfq_error.to_string e)
  | Ok () -> Printf.printf "verify under storm faults: ok (no page tampered)\n");
  Cfq_txdb.Tx_db.set_faults db None;
  (match Cfq_txdb.Tx_db.verify db with
  | Ok () -> Printf.printf "verify after clearing faults: ok\n"
  | Error e ->
      Printf.printf "verify after clearing faults: %s\n" (Cfq_txdb.Cfq_error.to_string e));

  let m = Service.metrics service in
  Service.shutdown service;
  let total = List.length session + List.length storm in
  Printf.printf
    "\nservice: retries=%d degraded=%d breaker_trips=%d shed=%d failures=%d \
     deadline_expired=%d\n"
    m.Metrics.retries m.Metrics.degraded m.Metrics.breaker_trips m.Metrics.shed
    m.Metrics.failures m.Metrics.deadline_expired;
  Printf.printf "reuse: answer_hits=%d subsumption_hits=%d sides_mined=%d\n"
    m.Metrics.answer_hits m.Metrics.subsumption_hits m.Metrics.sides_mined;
  Printf.printf "aborted: %d / %d   degraded: %d (%.0f%%)   mismatches: %d\n" !aborted
    total !degraded (pct !degraded total) !mismatches;

  if !aborted > 0 || !mismatches > 0 then begin
    Printf.printf "\nFAIL: chaos replay aborted %d queries, %d answers diverged\n"
      !aborted !mismatches;
    exit 1
  end;
  if m.Metrics.retries = 0 || m.Metrics.degraded = 0 || m.Metrics.breaker_trips = 0
  then begin
    Printf.printf
      "\nFAIL: the fault machinery was not exercised (retries=%d degraded=%d trips=%d)\n"
      m.Metrics.retries m.Metrics.degraded m.Metrics.breaker_trips;
    exit 1
  end;

  (* ---- phase C: replica kill ---- *)
  let sets =
    Array.init (Cfq_txdb.Tx_db.size db) (fun i ->
        (Cfq_txdb.Tx_db.get db i).Cfq_txdb.Transaction.items)
  in
  let base = Filename.temp_file "cfq_chaos" ".cfqdb" in
  let path_r1 = base ^ ".r1" and path_r2 = base ^ ".r2" in
  Cfq_shard.Sharded.build ~shards:3 ~replicas:1 path_r1 sets;
  Cfq_shard.Sharded.build ~shards:3 ~replicas:2 path_r2 sets;
  let serve_store path ~kill =
    let sh = Cfq_shard.Sharded.open_ path in
    if kill then
      (* permanently fault the preferred replica of EVERY shard *)
      for k = 0 to Cfq_shard.Sharded.shard_count sh - 1 do
        Cfq_shard.Sharded.set_replica_fault sh ~shard:k ~replica:0
          (Some (Cfq_txdb.Fault.create kill_faults))
      done;
    let svc =
      Service.create ~config (Exec.context (Cfq_shard.Sharded.db sh) info)
    in
    let served = List.map (fun q -> Service.run svc q) storm in
    let m = Service.metrics svc in
    Service.shutdown svc;
    (sh, served, m)
  in
  let sh1, served1, m1 = serve_store path_r1 ~kill:false in
  Cfq_shard.Sharded.close sh1;
  let sh2, served2, m2 = serve_store path_r2 ~kill:true in
  let kill_aborted = ref 0
  and kill_degraded = ref 0
  and kill_mismatches = ref 0 in
  List.iter
    (fun (expected, r) ->
      match r with
      | Error e ->
          incr kill_aborted;
          Printf.printf "replica-kill ABORTED: %s\n" (Service.error_to_string e)
      | Ok a ->
          if a.Service.served_from = Service.Degraded then incr kill_degraded;
          if sorted_pairs a.Service.pairs <> expected then incr kill_mismatches)
    (List.combine storm_ref served2);
  (* the unreplicated twin is the baseline for answers AND charges *)
  List.iter
    (fun (expected, r) ->
      match r with
      | Ok a when sorted_pairs a.Service.pairs = expected -> ()
      | _ -> incr kill_mismatches)
    (List.combine storm_ref served1);
  let ccc_equal =
    m1.Metrics.support_counted = m2.Metrics.support_counted
    && m1.Metrics.constraint_checks = m2.Metrics.constraint_checks
    && m1.Metrics.scans = m2.Metrics.scans
    && m1.Metrics.pages_read = m2.Metrics.pages_read
  in
  Printf.printf
    "phase C (replica kill): failovers=%d degraded=%d breaker_trips=%d \
     failures=%d mismatches=%d ccc+pages identical to unreplicated=%b\n"
    m2.Metrics.failovers !kill_degraded m2.Metrics.breaker_trips
    m2.Metrics.failures !kill_mismatches ccc_equal;

  (* clear the injectors, rot a data page of one replica on disk, and let
     the scrubber quarantine + rebuild it from its sibling *)
  for k = 0 to Cfq_shard.Sharded.shard_count sh2 - 1 do
    Cfq_shard.Sharded.set_replica_fault sh2 ~shard:k ~replica:0 None
  done;
  let victim = Cfq_shard.Replica.replica_path path_r2 ~shard:0 ~replica:0 in
  let fd = Unix.openfile victim [ Unix.O_RDWR ] 0 in
  let ps =
    (Cfq_store.Store.page_model (Cfq_shard.Sharded.stores sh2).(0))
      .Cfq_txdb.Page_model.page_size_bytes
  in
  ignore (Unix.lseek fd (ps + 3) Unix.SEEK_SET);
  let b = Bytes.create 1 in
  ignore (Unix.read fd b 0 1);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x40));
  ignore (Unix.lseek fd (ps + 3) Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd;
  let scrub = Cfq_shard.Scrub.run sh2 in
  let clean =
    Cfq_shard.Scrub.healthy_report (Cfq_shard.Scrub.health_report sh2)
  in
  Cfq_shard.Sharded.close sh2;
  Cfq_shard.Sharded.remove_files path_r1;
  Cfq_shard.Sharded.remove_files path_r2;
  (try Sys.remove base with Sys_error _ -> ());
  Printf.printf
    "phase C scrub: faults_found=%d repairs=%d repair_failures=%d \
     checksum_clean=%b\n"
    scrub.Cfq_shard.Scrub.faults_found scrub.Cfq_shard.Scrub.repairs
    scrub.Cfq_shard.Scrub.repair_failures clean;

  if
    !kill_aborted > 0 || !kill_mismatches > 0 || !kill_degraded > 0
    || m2.Metrics.breaker_trips > 0
    || m2.Metrics.failures > 0
    || (not ccc_equal)
    || m2.Metrics.failovers = 0
  then begin
    Printf.printf
      "\nFAIL: replica kill was not transparent (aborted=%d mismatches=%d \
       degraded=%d trips=%d failures=%d ccc_equal=%b failovers=%d)\n"
      !kill_aborted !kill_mismatches !kill_degraded m2.Metrics.breaker_trips
      m2.Metrics.failures ccc_equal m2.Metrics.failovers;
    exit 1
  end;
  if scrub.Cfq_shard.Scrub.repairs <> 1 || scrub.Cfq_shard.Scrub.repair_failures > 0 || not clean
  then begin
    Printf.printf
      "\nFAIL: scrub did not repair the rotted replica (repairs=%d failures=%d clean=%b)\n"
      scrub.Cfq_shard.Scrub.repairs scrub.Cfq_shard.Scrub.repair_failures clean;
    exit 1
  end;

  let total = total + (2 * List.length storm) in
  Printf.printf
    "\nOK: all %d queries answered under faults; every answer equals the fault-free run\n"
    total;

  (* every field below is a deterministic counter, so the file (like the
     stdout report CI diffs) is byte-identical across runs *)
  let json =
    String.concat "\n"
      [
        "{";
        "  \"bench\": \"chaos\",";
        Printf.sprintf "  \"queries\": %d," total;
        Printf.sprintf "  \"transactions\": %d," (Cfq_txdb.Tx_db.size db);
        "  \"calm\": {";
        Printf.sprintf "    \"transient\": %d," cs.Cfq_txdb.Fault.transient;
        Printf.sprintf "    \"spikes\": %d," cs.Cfq_txdb.Fault.spikes;
        "    \"config\": {";
        fault_config_json "      " calm_faults;
        "    }";
        "  },";
        "  \"storm\": {";
        Printf.sprintf "    \"transient\": %d," ss.Cfq_txdb.Fault.transient;
        Printf.sprintf "    \"crashes\": %d," ss.Cfq_txdb.Fault.crashes;
        Printf.sprintf "    \"tampered\": %d," ss.Cfq_txdb.Fault.tampered;
        Printf.sprintf "    \"checksum_failures\": %d," ss.Cfq_txdb.Fault.checksum_failures;
        "    \"config\": {";
        fault_config_json "      " storm_faults;
        "    }";
        "  },";
        "  \"replica_kill\": {";
        Printf.sprintf "    \"queries\": %d," (List.length storm);
        "    \"shards\": 3,";
        "    \"replicas\": 2,";
        Printf.sprintf "    \"failovers\": %d," m2.Metrics.failovers;
        Printf.sprintf "    \"degraded\": %d," !kill_degraded;
        Printf.sprintf "    \"breaker_trips\": %d," m2.Metrics.breaker_trips;
        Printf.sprintf "    \"failures\": %d," m2.Metrics.failures;
        Printf.sprintf "    \"mismatches\": %d," !kill_mismatches;
        Printf.sprintf "    \"ccc_and_pages_identical\": %b," ccc_equal;
        Printf.sprintf "    \"scrub_faults_found\": %d," scrub.Cfq_shard.Scrub.faults_found;
        Printf.sprintf "    \"scrub_repairs\": %d," scrub.Cfq_shard.Scrub.repairs;
        Printf.sprintf "    \"scrub_repair_failures\": %d," scrub.Cfq_shard.Scrub.repair_failures;
        Printf.sprintf "    \"checksum_clean\": %b," clean;
        "    \"config\": {";
        fault_config_json "      " kill_faults;
        "    }";
        "  },";
        "  \"service\": {";
        Printf.sprintf "    \"retries\": %d," m.Metrics.retries;
        Printf.sprintf "    \"degraded\": %d," m.Metrics.degraded;
        Printf.sprintf "    \"breaker_trips\": %d," m.Metrics.breaker_trips;
        Printf.sprintf "    \"shed\": %d," m.Metrics.shed;
        Printf.sprintf "    \"failures\": %d," m.Metrics.failures;
        Printf.sprintf "    \"deadline_expired\": %d," m.Metrics.deadline_expired;
        Printf.sprintf "    \"answer_hits\": %d," m.Metrics.answer_hits;
        Printf.sprintf "    \"subsumption_hits\": %d," m.Metrics.subsumption_hits;
        Printf.sprintf "    \"sides_mined\": %d" m.Metrics.sides_mined;
        "  },";
        Printf.sprintf "  \"aborted\": %d," !aborted;
        Printf.sprintf "  \"degraded\": %d," !degraded;
        Printf.sprintf "  \"mismatches\": %d" !mismatches;
        "}";
      ]
  in
  let oc = open_out "BENCH_chaos.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_chaos.json"
