(* Counting speedup bench: wall-clock of the parallel counting engine at
   1/2/4 domains, on (a) one heavy level-2 counting pass (the pair-candidate
   explosion that dominates early levels) and (b) a full [Exec.run] of a
   2-var query through the fused parallel Auto path.  Prints a table and
   writes the same rows machine-readably to BENCH_counting.json so the perf
   trajectory is diffable across PRs.

   Every parallel pass is checked against the sequential counts/answers
   before its timing is reported — a speedup over a wrong answer is not a
   speedup.

   The bench exits non-zero when auto falls below 0.9x the best fixed
   kernel, and — only on a machine with at least as many cores as the
   widest row — when Exec.run misses 1.8x at the widest row or any
   multi-domain row regresses below sequential.  On narrower machines the
   speedup assertions are SKIPPED visibly (stdout + [speedup_valid] and
   per-row [valid] flags in the JSON), never silently passed. *)

open Cfq_itembase
open Cfq_quest
open Cfq_mining
open Cfq_core
open Cfq_report

let domain_grid = [ 1; 2; 4 ]

let cores = Domain.recommended_domain_count ()

type row = {
  r_domains : int;
  r_seconds : float;
  r_speedup : float;
  r_valid : bool;  (* oversubscribed rows carry timings, not conclusions *)
}

let time_best ~repeats f =
  let best = ref infinity in
  for _ = 1 to repeats do
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best

let rows_of ~repeats run =
  (* sequential first: it is both the baseline timing and the reference
     output every parallel run is compared against *)
  let base = time_best ~repeats (fun () -> run 1) in
  List.map
    (fun d ->
      let dt = if d = 1 then base else time_best ~repeats (fun () -> run d) in
      { r_domains = d; r_seconds = dt; r_speedup = base /. dt;
        r_valid = d <= cores })
    domain_grid

let print_rows title rows =
  let tbl = Table.create [ "domains"; "wall(s)"; "speedup" ] in
  List.iter
    (fun r ->
      Table.add_row tbl
        [ string_of_int r.r_domains; Table.fcell r.r_seconds;
          Table.speedup_cell r.r_speedup ])
    rows;
  Printf.printf "\n%s\n" title;
  Table.print tbl

let json_rows rows =
  String.concat ",\n"
    (List.map
       (fun r ->
         Printf.sprintf
           "      {\"domains\": %d, \"cores\": %d, \"seconds\": %.6f, \"speedup\": %.3f, \"valid\": %b}"
           r.r_domains cores r.r_seconds r.r_speedup r.r_valid)
       rows)

let run (scale : Workloads.scale) =
  Printf.printf
    "counting bench: %d transactions, %d items, %d core(s) available\n%!"
    scale.Workloads.n_tx scale.Workloads.n_items
    (Domain.recommended_domain_count ());

  (* ---- (a) one heavy level-2 pass: all pairs of frequent items ---- *)
  let db = Workloads.quest_db scale in
  let io = Cfq_txdb.Io_stats.create () in
  let minsup = max 1 (Cfq_txdb.Tx_db.size db / 200) in
  let freqs =
    Cfq_txdb.Tx_db.item_frequencies db io ~universe_size:scale.Workloads.n_items
  in
  let frequent_items = ref [] in
  Array.iteri (fun i f -> if f >= minsup then frequent_items := i :: !frequent_items) freqs;
  let cands = Candidate.pairs_all (Array.of_list !frequent_items) in
  Printf.printf "level-2 pass: %d pair candidates over %d transactions\n%!"
    (Array.length cands) (Cfq_txdb.Tx_db.size db);
  let reference = ref [||] in
  let level2_run d =
    let counts =
      Counting.count_level
        ~par:(Counting.par ~min_rows_per_domain:1 d)
        db io (Counters.create ()) cands
    in
    if d = 1 then reference := counts
    else if counts <> !reference then begin
      Printf.printf "FAIL: level-2 counts at %d domains differ from sequential\n" d;
      exit 1
    end
  in
  let level2_rows = rows_of ~repeats:3 level2_run in
  print_rows "heavy level-2 counting pass" level2_rows;

  (* ---- (a') kernel comparison on the same level-2 pass ----
     trie vs direct2 vs vertical (cold = build + answer, warm = answer
     from already-materialised bitmaps) vs auto, all sequential so the
     comparison isolates the kernel.  Every kernel's counts are checked
     against the trie reference before its timing is reported. *)
  let count_with session =
    Counting.count_level ?session db io (Counters.create ()) cands
  in
  let check_kernel name counts =
    if counts <> !reference then begin
      Printf.printf "FAIL: %s kernel counts differ from the trie reference\n" name;
      exit 1
    end
  in
  let session_of kernel =
    Counting.create_session ~plan:(Counting.plan_of_kernel kernel) ()
  in
  let trie_s = time_best ~repeats:3 (fun () -> check_kernel "trie" (count_with None)) in
  let kernel_row name time =
    (name, time, trie_s /. time)
  in
  let fresh_session_time kernel name =
    time_best ~repeats:3 (fun () ->
        check_kernel name (count_with (Some (session_of kernel))))
  in
  let direct2_s = fresh_session_time Counting.Direct2 "direct2" in
  let vertical_cold_s = fresh_session_time Counting.Vertical "vertical-cold" in
  let warm_session = session_of Counting.Vertical in
  check_kernel "vertical-warm(prime)" (count_with (Some warm_session));
  let vertical_warm_s =
    time_best ~repeats:3 (fun () ->
        check_kernel "vertical-warm" (count_with (Some warm_session)))
  in
  let auto_s = fresh_session_time Counting.Auto "auto" in
  let kernel_rows =
    [
      kernel_row "trie" trie_s;
      kernel_row "direct2" direct2_s;
      kernel_row "vertical-cold" vertical_cold_s;
      kernel_row "vertical-warm" vertical_warm_s;
      kernel_row "auto" auto_s;
    ]
  in
  let tbl = Table.create [ "kernel"; "wall(s)"; "vs trie" ] in
  List.iter
    (fun (name, s, sp) ->
      Table.add_row tbl [ name; Table.fcell s; Table.speedup_cell sp ])
    kernel_rows;
  Printf.printf "\nlevel-2 kernel comparison (sequential)\n";
  Table.print tbl;
  if direct2_s > trie_s /. 2. then
    Printf.eprintf
      "warning: direct2 below the 2x target on this pass (%.4fs vs trie %.4fs)\n%!"
      direct2_s trie_s;

  (* ---- (b) a full Exec.run of a 2-var query ---- *)
  let rng = Splitmix.create ~seed:(Int64.add scale.Workloads.seed 7L) in
  let n = scale.Workloads.n_items in
  let prices = Item_gen.uniform_prices rng ~n ~lo:0. ~hi:1000. in
  let types = Array.init n (fun _ -> float_of_int (Splitmix.int rng 20)) in
  let info = Item_gen.item_info ~prices ~types () in
  let ctx = Exec.context db info in
  let query_text =
    "{(S,T) | freq(S) >= 0.005 & freq(T) >= 0.005 & S.Price >= 300 & T.Price <= 700 \
     & S.Type = T.Type}"
  in
  let q = Parser.parse query_text in
  let ref_pairs = ref [] and ref_counted = ref 0 in
  let sorted_pairs l =
    List.sort
      (fun (a1, b1) (a2, b2) ->
        match Itemset.compare a1 a2 with 0 -> Itemset.compare b1 b2 | c -> c)
      (List.map
         (fun (s, t) -> (s.Cfq_mining.Frequent.set, t.Cfq_mining.Frequent.set))
         l)
  in
  (* the fused path under test: adaptive kernels AND chunked parallelism in
     the same run.  [calibrate:false] pins every domain count to the same
     prior-driven plan, so the rows time identical work *)
  let exec_run d =
    let r =
      Exec.run ~collect_pairs:true
        ~par:(Counting.par ~min_rows_per_domain:1 d)
        ~kernel:Counting.Auto ~calibrate:false ctx q
    in
    let pairs = sorted_pairs r.Exec.pairs in
    if d = 1 then begin
      ref_pairs := pairs;
      ref_counted := Exec.total_counted r
    end
    else if pairs <> !ref_pairs || Exec.total_counted r <> !ref_counted then begin
      Printf.printf "FAIL: Exec.run at %d domains diverged from sequential\n" d;
      exit 1
    end
  in
  let exec_rows = rows_of ~repeats:2 exec_run in
  print_rows
    (Printf.sprintf "full Exec.run (kernel=auto): %s" query_text)
    exec_rows;
  Printf.printf "\nanswers and counters identical across all domain counts\n";

  (* ---- (b') auto vs the best fixed kernel on the same exec workload ---- *)
  let exec_with kernel =
    let r = Exec.run ~collect_pairs:true ?kernel ctx q in
    if sorted_pairs r.Exec.pairs <> !ref_pairs
       || Exec.total_counted r <> !ref_counted
    then begin
      Printf.printf "FAIL: Exec.run with kernel %s diverged from the trie answer\n"
        (match kernel with
        | Some k -> Counting.kernel_name k
        | None -> "none");
      exit 1
    end
  in
  let time_kernel k = time_best ~repeats:2 (fun () -> exec_with (Some k)) in
  let fixed =
    List.map
      (fun k -> (Counting.kernel_name k, time_kernel k))
      [ Counting.Trie; Counting.Direct2; Counting.Vertical ]
  in
  let auto_exec_s = time_kernel Counting.Auto in
  let best_name, best_s =
    List.fold_left
      (fun (bn, bs) (n2, s2) -> if s2 < bs then (n2, s2) else (bn, bs))
      (List.hd fixed) (List.tl fixed)
  in
  (* >= 0.9 means auto lands within 10% of the best fixed kernel (and > 1
     means it beats it — projections and amortized bitmap builds are only
     available to auto) *)
  let auto_ratio = best_s /. auto_exec_s in
  let tbl = Table.create [ "kernel"; "wall(s)"; "vs best fixed" ] in
  List.iter
    (fun (n2, s2) -> Table.add_row tbl [ n2; Table.fcell s2; Table.speedup_cell (best_s /. s2) ])
    (fixed @ [ ("auto", auto_exec_s) ]);
  Printf.printf "\nexec kernel comparison (best fixed: %s)\n" best_name;
  Table.print tbl;

  (* ---- machine-readable record ---- *)
  let max_domains = List.fold_left max 1 domain_grid in
  let speedup_valid = max_domains <= cores in
  let kernel_json =
    String.concat ",\n"
      (List.map
         (fun (name, s, sp) ->
           Printf.sprintf
             "      {\"kernel\": %S, \"seconds\": %.6f, \"speedup_vs_trie\": %.3f}"
             name s sp)
         kernel_rows)
  in
  let json =
    String.concat "\n"
      [
        "{";
        "  \"bench\": \"counting\",";
        Printf.sprintf "  \"cores\": %d," cores;
        Printf.sprintf "  \"speedup_valid\": %b," speedup_valid;
        Printf.sprintf "  \"transactions\": %d," (Cfq_txdb.Tx_db.size db);
        Printf.sprintf "  \"level2\": {";
        Printf.sprintf "    \"candidates\": %d," (Array.length cands);
        "    \"rows\": [";
        json_rows level2_rows;
        "    ]";
        "  },";
        "  \"kernels\": {";
        "    \"rows\": [";
        kernel_json;
        "    ]";
        "  },";
        "  \"exec_run\": {";
        "    \"kernel\": \"auto\",";
        Printf.sprintf "    \"query\": %S," query_text;
        "    \"rows\": [";
        json_rows exec_rows;
        "    ]";
        "  },";
        "  \"auto_vs_best\": {";
        Printf.sprintf "    \"best_fixed\": %S," best_name;
        Printf.sprintf "    \"best_seconds\": %.6f," best_s;
        Printf.sprintf "    \"auto_seconds\": %.6f," auto_exec_s;
        Printf.sprintf "    \"auto_ratio\": %.3f" auto_ratio;
        "  }";
        "}";
      ]
  in
  let oc = open_out "BENCH_counting.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_counting.json";

  (* ---- assertions: fail loudly, skip visibly ---- *)
  let failed = ref false in
  if auto_ratio < 0.9 then begin
    Printf.printf
      "FAIL: auto reaches only %.2fx of the best fixed kernel (%s); target \
       >= 0.9x\n"
      auto_ratio best_name;
    failed := true
  end
  else
    Printf.printf "PASS: auto at %.2fx of the best fixed kernel (%s)\n"
      auto_ratio best_name;
  if speedup_valid then begin
    List.iter
      (fun r ->
        if r.r_domains = max_domains && r.r_speedup < 1.8 then begin
          Printf.printf
            "FAIL: Exec.run at %d domains reaches %.2fx; target >= 1.8x\n"
            r.r_domains r.r_speedup;
          failed := true
        end
        else if r.r_domains > 1 && r.r_speedup < 0.95 then begin
          Printf.printf
            "FAIL: Exec.run at %d domains regresses to %.2fx of sequential\n"
            r.r_domains r.r_speedup;
          failed := true
        end)
      exec_rows;
    if not !failed then
      Printf.printf "PASS: Exec.run speedups hold on %d cores\n" cores
  end
  else
    (* the skip is part of the record: CI greps for it instead of treating
       an oversubscribed run as a pass *)
    Printf.printf
      "SKIP: speedup assertions skipped (%d core(s) < %d domains); rows \
       recorded with valid:false\n"
      cores max_domains;
  if !failed then exit 1
