(* Counting speedup bench: wall-clock of the parallel counting engine at
   1/2/4 domains, on (a) one heavy level-2 counting pass (the pair-candidate
   explosion that dominates early levels) and (b) a full [Exec.run] of a
   2-var query.  Prints a table and writes the same rows machine-readably to
   BENCH_counting.json so the perf trajectory is diffable across PRs.

   Every parallel pass is checked against the sequential counts/answers
   before its timing is reported — a speedup over a wrong answer is not a
   speedup. *)

open Cfq_itembase
open Cfq_quest
open Cfq_mining
open Cfq_core
open Cfq_report

let domain_grid = [ 1; 2; 4 ]

type row = {
  r_domains : int;
  r_seconds : float;
  r_speedup : float;
}

let time_best ~repeats f =
  let best = ref infinity in
  for _ = 1 to repeats do
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best

let rows_of ~repeats run =
  (* sequential first: it is both the baseline timing and the reference
     output every parallel run is compared against *)
  let base = time_best ~repeats (fun () -> run 1) in
  List.map
    (fun d ->
      let dt = if d = 1 then base else time_best ~repeats (fun () -> run d) in
      { r_domains = d; r_seconds = dt; r_speedup = base /. dt })
    domain_grid

let print_rows title rows =
  let tbl = Table.create [ "domains"; "wall(s)"; "speedup" ] in
  List.iter
    (fun r ->
      Table.add_row tbl
        [ string_of_int r.r_domains; Table.fcell r.r_seconds;
          Table.speedup_cell r.r_speedup ])
    rows;
  Printf.printf "\n%s\n" title;
  Table.print tbl

let json_rows rows =
  String.concat ",\n"
    (List.map
       (fun r ->
         Printf.sprintf "      {\"domains\": %d, \"seconds\": %.6f, \"speedup\": %.3f}"
           r.r_domains r.r_seconds r.r_speedup)
       rows)

let run (scale : Workloads.scale) =
  Printf.printf
    "counting bench: %d transactions, %d items, %d core(s) available\n%!"
    scale.Workloads.n_tx scale.Workloads.n_items
    (Domain.recommended_domain_count ());

  (* ---- (a) one heavy level-2 pass: all pairs of frequent items ---- *)
  let db = Workloads.quest_db scale in
  let io = Cfq_txdb.Io_stats.create () in
  let minsup = max 1 (Cfq_txdb.Tx_db.size db / 200) in
  let freqs =
    Cfq_txdb.Tx_db.item_frequencies db io ~universe_size:scale.Workloads.n_items
  in
  let frequent_items = ref [] in
  Array.iteri (fun i f -> if f >= minsup then frequent_items := i :: !frequent_items) freqs;
  let cands = Candidate.pairs_all (Array.of_list !frequent_items) in
  Printf.printf "level-2 pass: %d pair candidates over %d transactions\n%!"
    (Array.length cands) (Cfq_txdb.Tx_db.size db);
  let reference = ref [||] in
  let level2_run d =
    let counts =
      Counting.count_level
        ~par:{ Counting.domains = d; pool = None }
        db io (Counters.create ()) cands
    in
    if d = 1 then reference := counts
    else if counts <> !reference then begin
      Printf.printf "FAIL: level-2 counts at %d domains differ from sequential\n" d;
      exit 1
    end
  in
  let level2_rows = rows_of ~repeats:3 level2_run in
  print_rows "heavy level-2 counting pass" level2_rows;

  (* ---- (b) a full Exec.run of a 2-var query ---- *)
  let rng = Splitmix.create ~seed:(Int64.add scale.Workloads.seed 7L) in
  let n = scale.Workloads.n_items in
  let prices = Item_gen.uniform_prices rng ~n ~lo:0. ~hi:1000. in
  let types = Array.init n (fun _ -> float_of_int (Splitmix.int rng 20)) in
  let info = Item_gen.item_info ~prices ~types () in
  let ctx = Exec.context db info in
  let query_text =
    "{(S,T) | freq(S) >= 0.005 & freq(T) >= 0.005 & S.Price >= 300 & T.Price <= 700 \
     & S.Type = T.Type}"
  in
  let q = Parser.parse query_text in
  let ref_pairs = ref [] and ref_counted = ref 0 in
  let sorted_pairs l =
    List.sort
      (fun (a1, b1) (a2, b2) ->
        match Itemset.compare a1 a2 with 0 -> Itemset.compare b1 b2 | c -> c)
      (List.map
         (fun (s, t) -> (s.Cfq_mining.Frequent.set, t.Cfq_mining.Frequent.set))
         l)
  in
  let exec_run d =
    let r =
      Exec.run ~collect_pairs:true
        ~par:{ Counting.domains = d; pool = None }
        ctx q
    in
    let pairs = sorted_pairs r.Exec.pairs in
    if d = 1 then begin
      ref_pairs := pairs;
      ref_counted := Exec.total_counted r
    end
    else if pairs <> !ref_pairs || Exec.total_counted r <> !ref_counted then begin
      Printf.printf "FAIL: Exec.run at %d domains diverged from sequential\n" d;
      exit 1
    end
  in
  let exec_rows = rows_of ~repeats:2 exec_run in
  print_rows (Printf.sprintf "full Exec.run: %s" query_text) exec_rows;
  Printf.printf "\nanswers and counters identical across all domain counts\n";

  (* ---- machine-readable record ---- *)
  let json =
    String.concat "\n"
      [
        "{";
        "  \"bench\": \"counting\",";
        Printf.sprintf "  \"cores\": %d," (Domain.recommended_domain_count ());
        Printf.sprintf "  \"transactions\": %d," (Cfq_txdb.Tx_db.size db);
        Printf.sprintf "  \"level2\": {";
        Printf.sprintf "    \"candidates\": %d," (Array.length cands);
        "    \"rows\": [";
        json_rows level2_rows;
        "    ]";
        "  },";
        "  \"exec_run\": {";
        Printf.sprintf "    \"query\": %S," query_text;
        "    \"rows\": [";
        json_rows exec_rows;
        "    ]";
        "  }";
        "}";
      ]
  in
  let oc = open_out "BENCH_counting.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_counting.json"
