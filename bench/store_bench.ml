(* Store bench: physical I/O of the persistent backend.

   Builds the harness database into an on-disk store, then measures (a)
   cold vs. warm full scans through the buffer pool at a cache that holds
   the whole database, (b) a cache-pressure sweep shrinking the pool down
   to one frame — every configuration must deliver the same tuples, and
   any pool smaller than the database must evict — and (c) a full
   [Exec.run] of a 2-var query on the disk backend, asserting answers and
   ccc counters identical to the in-memory backend.  Writes the rows to
   BENCH_store.json like the other benches. *)

open Cfq_itembase
open Cfq_quest
open Cfq_core

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let scan_total db =
  let io = Cfq_txdb.Io_stats.create () in
  let n = ref 0 and items = ref 0 in
  Cfq_txdb.Tx_db.iter_scan db io (fun tx ->
      incr n;
      items := !items + Cfq_txdb.Transaction.cardinal tx);
  (!n, !items)

type sweep_row = {
  w_cache : int;
  w_cold : float;
  w_warm : float;
  w_misses : int;
  w_evictions : int;
}

let sorted_pairs l =
  List.sort
    (fun (a1, b1) (a2, b2) ->
      match Itemset.compare a1 a2 with 0 -> Itemset.compare b1 b2 | c -> c)
    (List.map
       (fun (s, t) -> (s.Cfq_mining.Frequent.set, t.Cfq_mining.Frequent.set))
       l)

let run (scale : Workloads.scale) =
  let mem = Workloads.quest_db scale in
  let path = Filename.temp_file "cfq_bench_store" ".cfqdb" in
  let (), build_s = time (fun () -> Cfq_store.Store.save_db path mem) in
  let pages = Cfq_txdb.Tx_db.pages mem in
  Printf.printf "store bench: %d transactions, %d pages (built in %.3fs)\n%!"
    (Cfq_txdb.Tx_db.size mem) pages build_s;

  let mem_total, mem_scan_s = time (fun () -> scan_total mem) in

  (* ---- cold vs. warm at a pool that holds the whole database ---- *)
  let store = Cfq_store.Store.open_ ~cache_pages:(pages + 1) path in
  let disk = Cfq_store.Store.db store in
  let cold_total, cold_s = time (fun () -> scan_total disk) in
  let warm_total, warm_s = time (fun () -> scan_total disk) in
  let io = Cfq_store.Store.io store in
  if cold_total <> mem_total || warm_total <> mem_total then begin
    print_endline "FAIL: disk scans delivered different tuples than memory";
    exit 1
  end;
  Printf.printf
    "full cache (%d pages): cold %.4fs, warm %.4fs, memory %.4fs (pool: %d \
     hits, %d misses)\n%!"
    (pages + 1) cold_s warm_s mem_scan_s
    (Cfq_txdb.Io_stats.pool_hits io)
    (Cfq_txdb.Io_stats.pool_misses io);
  if Cfq_txdb.Io_stats.pool_misses io > pages then begin
    print_endline "FAIL: warm scan re-read pages despite a full-size cache";
    exit 1
  end;
  Cfq_store.Store.close store;

  (* ---- cache-pressure sweep ---- *)
  let caps =
    List.sort_uniq compare [ 1; max 1 (pages / 16); max 1 (pages / 4); pages ]
    |> List.rev
  in
  let sweep =
    List.map
      (fun cache ->
        let store = Cfq_store.Store.open_ ~cache_pages:cache path in
        let disk = Cfq_store.Store.db store in
        let total, cold = time (fun () -> scan_total disk) in
        let _, warm = time (fun () -> scan_total disk) in
        let io = Cfq_store.Store.io store in
        let misses = Cfq_txdb.Io_stats.pool_misses io in
        let evictions = Cfq_txdb.Io_stats.pool_evictions io in
        if total <> mem_total then begin
          Printf.printf "FAIL: scan at cache=%d delivered different tuples\n" cache;
          exit 1
        end;
        if cache < pages && evictions = 0 then begin
          Printf.printf "FAIL: cache=%d < %d pages but nothing was evicted\n"
            cache pages;
          exit 1
        end;
        Cfq_store.Store.close store;
        { w_cache = cache; w_cold = cold; w_warm = warm; w_misses = misses;
          w_evictions = evictions })
      caps
  in
  let tbl =
    Cfq_report.Table.create
      [ "cache(pages)"; "cold(s)"; "warm(s)"; "misses"; "evictions" ]
  in
  List.iter
    (fun r ->
      Cfq_report.Table.add_row tbl
        [
          string_of_int r.w_cache;
          Cfq_report.Table.fcell r.w_cold;
          Cfq_report.Table.fcell r.w_warm;
          string_of_int r.w_misses;
          string_of_int r.w_evictions;
        ])
    sweep;
  print_newline ();
  Cfq_report.Table.print tbl;

  (* ---- a full query: answers and counters must match memory ---- *)
  let rng = Splitmix.create ~seed:(Int64.add scale.Workloads.seed 7L) in
  let n = scale.Workloads.n_items in
  let prices = Item_gen.uniform_prices rng ~n ~lo:0. ~hi:1000. in
  let types = Array.init n (fun _ -> float_of_int (Splitmix.int rng 20)) in
  let info = Item_gen.item_info ~prices ~types () in
  let query_text =
    "{(S,T) | freq(S) >= 0.005 & freq(T) >= 0.005 & S.Price >= 300 & T.Price <= 700 \
     & S.Type = T.Type}"
  in
  let q = Parser.parse query_text in
  let run_on db = Exec.run ~collect_pairs:true (Exec.context db info) q in
  let mem_r, mem_q_s = time (fun () -> run_on mem) in
  let store = Cfq_store.Store.open_ ~cache_pages:(max 1 (pages / 4)) path in
  let disk_r, disk_q_s = time (fun () -> run_on (Cfq_store.Store.db store)) in
  let pool_evictions = Cfq_txdb.Io_stats.pool_evictions (Cfq_store.Store.io store) in
  Cfq_store.Store.close store;
  if
    sorted_pairs mem_r.Exec.pairs <> sorted_pairs disk_r.Exec.pairs
    || Exec.total_counted mem_r <> Exec.total_counted disk_r
    || Exec.total_checks mem_r <> Exec.total_checks disk_r
    || Cfq_txdb.Io_stats.pages_read mem_r.Exec.io
       <> Cfq_txdb.Io_stats.pages_read disk_r.Exec.io
  then begin
    print_endline "FAIL: Exec.run on the disk backend diverged from memory";
    exit 1
  end;
  Printf.printf
    "\nExec.run at cache=%d: %.3fs on disk vs %.3fs in memory (%d pairs, %d \
     pool evictions); answers and counters identical\n"
    (max 1 (pages / 4)) disk_q_s mem_q_s
    (List.length disk_r.Exec.pairs)
    pool_evictions;

  (* ---- machine-readable record ---- *)
  let json =
    String.concat "\n"
      [
        "{";
        "  \"bench\": \"store\",";
        Printf.sprintf "  \"transactions\": %d," (Cfq_txdb.Tx_db.size mem);
        Printf.sprintf "  \"pages\": %d," pages;
        Printf.sprintf "  \"build_seconds\": %.6f," build_s;
        Printf.sprintf "  \"memory_scan_seconds\": %.6f," mem_scan_s;
        Printf.sprintf "  \"cold_scan_seconds\": %.6f," cold_s;
        Printf.sprintf "  \"warm_scan_seconds\": %.6f," warm_s;
        "  \"sweep\": [";
        String.concat ",\n"
          (List.map
             (fun r ->
               Printf.sprintf
                 "      {\"cache_pages\": %d, \"cold_seconds\": %.6f, \
                  \"warm_seconds\": %.6f, \"misses\": %d, \"evictions\": %d}"
                 r.w_cache r.w_cold r.w_warm r.w_misses r.w_evictions)
             sweep);
        "  ],";
        "  \"exec_run\": {";
        Printf.sprintf "    \"query\": %S," query_text;
        Printf.sprintf "    \"pairs\": %d," (List.length disk_r.Exec.pairs);
        Printf.sprintf "    \"disk_seconds\": %.6f," disk_q_s;
        Printf.sprintf "    \"memory_seconds\": %.6f" mem_q_s;
        "  }";
        "}";
      ]
  in
  let oc = open_out "BENCH_store.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_store.json";
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    [ path; path ^ ".wal" ]
