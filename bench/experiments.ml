(* Reproduction of every table and figure of the paper's Section 7.  Each
   experiment prints the same rows/series the paper reports; speedups are
   CPU + simulated I/O, relative to the Apriori+ baseline (and, where the
   paper isolates an effect, relative to CAP with 1-var pushing only). *)

open Cfq_mining
open Cfq_core
open Cfq_report

let cm = Cost_model.default

(* best of three runs with a compacted heap: CPU timings at this scale are
   noisy enough to distort ratios otherwise *)
let run ctx q strategy =
  let best = ref None in
  for _ = 1 to 3 do
    Gc.compact ();
    let r = Exec.run ~strategy ctx q in
    match !best with
    | Some b when b.Exec.mining_seconds <= r.Exec.mining_seconds -> ()
    | Some _ | None -> best := Some r
  done;
  Option.get !best

(* the paper's speedups time step 1 (lattice computation); pair formation is
   identical across strategies and excluded (Section 6.2) *)
let cost r = Cost_model.mining_cost cm r

let speedup ~baseline r = cost baseline /. cost r

let header title =
  Printf.printf "\n=== %s ===\n%!" title

(* ------------------------------------------------------------------ *)

let fig8a scale =
  header
    "Figure 8(a): quasi-succinctness, single 2-var constraint max(S.Price) <= \
     min(T.Price)";
  let w = Workloads.fig8a_workload scale in
  let s_lo = 400. in
  let t = Table.create [ "% overlap"; "v"; "A+ cost(s)"; "OPT cost(s)"; "speedup"; "pairs" ] in
  let series = ref [] in
  List.iter
    (fun overlap ->
      let v = Workloads.fig8a_v_for_overlap ~s_lo ~overlap_pct:overlap in
      let q = w.Workloads.query s_lo v in
      let a = run w.Workloads.ctx q Plan.Apriori_plus in
      let o = run w.Workloads.ctx q Plan.Optimized in
      assert (a.Exec.pair_stats.Pairs.n_pairs = o.Exec.pair_stats.Pairs.n_pairs);
      let sp = speedup ~baseline:a o in
      series := (overlap, sp) :: !series;
      Table.add_row t
        [
          Printf.sprintf "%.1f" overlap;
          Printf.sprintf "%.0f" v;
          Table.fcell (cost a);
          Table.fcell (cost o);
          Table.speedup_cell sp;
          string_of_int o.Exec.pair_stats.Pairs.n_pairs;
        ])
    [ 16.6; 33.3; 50.0; 66.7; 83.4 ];
  Table.print t;
  List.rev !series

(* the §7.1 per-level a/b table at 16.6% overlap: a = frequent sets computed
   when quasi-succinctness is exploited, b = frequent sets of the lattice
   with only the 1-var domain restriction *)
let tab71_levels scale =
  header "Section 7.1 per-level table (16.6% overlap): a/b per level and side";
  let w = Workloads.fig8a_workload scale in
  let s_lo = 400. in
  let v = Workloads.fig8a_v_for_overlap ~s_lo ~overlap_pct:16.6 in
  let q = w.Workloads.query s_lo v in
  let c = run w.Workloads.ctx q Plan.Cap_one_var in
  let o = run w.Workloads.ctx q Plan.Optimized in
  let max_level side_b side_a =
    max
      (List.fold_left (fun acc r -> max acc r.Level_stats.level) 0 side_b)
      (List.fold_left (fun acc r -> max acc r.Level_stats.level) 0 side_a)
  in
  let levels =
    max
      (max_level c.Exec.s.Exec.levels o.Exec.s.Exec.levels)
      (max_level c.Exec.t.Exec.levels o.Exec.t.Exec.levels)
  in
  let freq_at rows k =
    match List.find_opt (fun r -> r.Level_stats.level = k) rows with
    | Some r -> r.Level_stats.frequent
    | None -> 0
  in
  let t =
    Table.create
      ("side" :: List.init levels (fun i -> Printf.sprintf "L%d" (i + 1)))
  in
  let row name a_rows b_rows =
    Table.add_row t
      (name
      :: List.init levels (fun i ->
             Printf.sprintf "%d/%d" (freq_at a_rows (i + 1)) (freq_at b_rows (i + 1))))
  in
  row "S" o.Exec.s.Exec.levels c.Exec.s.Exec.levels;
  row "T" o.Exec.t.Exec.levels c.Exec.t.Exec.levels;
  Table.print t

let tab71_ranges scale =
  header "Section 7.1 range table: speedup at 50% overlap vs S.Price range";
  let w = Workloads.fig8a_workload scale in
  let t = Table.create [ "S.Price range"; "speedup (50% overlap)" ] in
  List.iter
    (fun s_lo ->
      let v = Workloads.fig8a_v_for_overlap ~s_lo ~overlap_pct:50. in
      let q = w.Workloads.query s_lo v in
      let a = run w.Workloads.ctx q Plan.Apriori_plus in
      let o = run w.Workloads.ctx q Plan.Optimized in
      Table.add_row t
        [
          Printf.sprintf "[%.0f,1000]" s_lo;
          Table.speedup_cell (speedup ~baseline:a o);
        ])
    [ 300.; 400.; 500. ];
  Table.print t

(* ------------------------------------------------------------------ *)

let fig8b scale =
  header
    "Figure 8(b): S.Price >= 400 & T.Price <= 600 & S.Type = T.Type — 1-var \
     only vs 1-var + 2-var";
  let t =
    Table.create
      [ "% type overlap"; "speedup CAP (1-var)"; "speedup OPT (1+2-var)"; "pairs" ]
  in
  let series = ref [] in
  List.iter
    (fun overlap ->
      let w =
        Workloads.fig8b_workload scale ~s_lo:400. ~t_hi:600.
          ~type_overlap:(overlap /. 100.)
      in
      let a = run w.Workloads.ctx w.Workloads.query Plan.Apriori_plus in
      let c = run w.Workloads.ctx w.Workloads.query Plan.Cap_one_var in
      let o = run w.Workloads.ctx w.Workloads.query Plan.Optimized in
      assert (a.Exec.pair_stats.Pairs.n_pairs = o.Exec.pair_stats.Pairs.n_pairs);
      let sp_c = speedup ~baseline:a c and sp_o = speedup ~baseline:a o in
      series := (overlap, sp_c, sp_o) :: !series;
      Table.add_row t
        [
          Printf.sprintf "%.0f" overlap;
          Table.speedup_cell sp_c;
          Table.speedup_cell sp_o;
          string_of_int o.Exec.pair_stats.Pairs.n_pairs;
        ])
    [ 20.; 40.; 60.; 80. ];
  Table.print t;
  List.rev !series

let tab72_ranges scale =
  header "Section 7.2 range table (40% type overlap): effect of wider ranges";
  let t =
    Table.create
      [ "S.Price"; "T.Price"; "1-var only"; "1- and 2-var"; "ratio" ]
  in
  List.iter
    (fun (s_lo, t_hi) ->
      let w =
        Workloads.fig8b_workload scale ~s_lo ~t_hi ~type_overlap:0.4
      in
      let a = run w.Workloads.ctx w.Workloads.query Plan.Apriori_plus in
      let c = run w.Workloads.ctx w.Workloads.query Plan.Cap_one_var in
      let o = run w.Workloads.ctx w.Workloads.query Plan.Optimized in
      let sp_c = speedup ~baseline:a c and sp_o = speedup ~baseline:a o in
      Table.add_row t
        [
          Printf.sprintf "[%.0f,1000]" s_lo;
          Printf.sprintf "[0,%.0f]" t_hi;
          Table.speedup_cell sp_c;
          Table.speedup_cell sp_o;
          Table.fcell (sp_o /. sp_c);
        ])
    [ (100., 900.); (400., 600.); (800., 200.) ];
  Table.print t

(* ------------------------------------------------------------------ *)

let tab73_jmax scale =
  header
    "Section 7.3: sum(S.Price) <= sum(T.Price) with iterative Jmax/V^k pruning \
     (speedup vs CAP without it; normal prices, S mean 1000)";
  let t =
    Table.create
      [
        "mean T.Price";
        "CAP counted";
        "OPT counted";
        "speedup (OPT vs CAP)";
        "speedup vs A+";
        "max |S|";
      ]
  in
  let series = ref [] in
  List.iter
    (fun t_mean ->
      let w = Workloads.fig73_workload scale ~t_mean in
      let a = run w.Workloads.ctx w.Workloads.query Plan.Apriori_plus in
      let c = run w.Workloads.ctx w.Workloads.query Plan.Cap_one_var in
      let o = run w.Workloads.ctx w.Workloads.query Plan.Optimized in
      assert (a.Exec.pair_stats.Pairs.n_pairs = o.Exec.pair_stats.Pairs.n_pairs);
      let sp = speedup ~baseline:c o in
      series := (t_mean, sp) :: !series;
      Table.add_row t
        [
          Printf.sprintf "%.0f" t_mean;
          string_of_int (Exec.total_counted c);
          string_of_int (Exec.total_counted o);
          Table.speedup_cell sp;
          Table.speedup_cell (speedup ~baseline:a o);
          string_of_int (Frequent.max_level c.Exec.s.Exec.frequent);
        ])
    [ 400.; 600.; 800.; 1000. ];
  Table.print t;
  List.rev !series

(* ------------------------------------------------------------------ *)
(* Ablation: dovetailed V^k pruning vs the sequential "global maximum M"
   strategy (the trade-off discussed at the end of Section 5.2 — the exact
   bound prunes harder, but scans are paid serially instead of shared). *)

let ablation_dovetail scale =
  header
    "Ablation (Section 5.2 discussion): dovetailed V^k vs sequential exact-M \
     on sum(S.Price) <= sum(T.Price)";
  let t =
    Table.create
      [ "mean T.Price"; "strategy"; "sets counted"; "scans"; "pages"; "cost(s)" ]
  in
  List.iter
    (fun t_mean ->
      let w = Workloads.fig73_workload scale ~t_mean in
      List.iter
        (fun (name, strategy) ->
          let r = run w.Workloads.ctx w.Workloads.query strategy in
          Table.add_row t
            [
              Printf.sprintf "%.0f" t_mean;
              name;
              string_of_int (Exec.total_counted r);
              string_of_int (Cfq_txdb.Io_stats.scans r.Exec.io);
              string_of_int (Cfq_txdb.Io_stats.pages_read r.Exec.io);
              Table.fcell (cost r);
            ])
        [ ("dovetail V^k", Plan.Optimized); ("sequential M", Plan.Sequential_t_first) ])
    [ 400.; 1000. ];
  Table.print t

(* Companion validation: the CAP algorithm's four 1-var constraint classes
   (SIGMOD'98, [15]), which the 2-var optimizations are built on.  Same
   constraint on both sides, no 2-var constraint: the speedup shown is pure
   1-var pushing. *)
let cap_1var scale =
  header "CAP ([15]): speedup per 1-var constraint class (constraint on both sides)";
  let w = Workloads.fig8a_workload scale in
  let t =
    Table.create
      [ "class"; "constraint"; "A+ counted"; "CAP counted"; "speedup" ]
  in
  List.iter
    (fun (cls, s_text, t_text) ->
      let q =
        Parser.parse
          (Printf.sprintf "{(S,T) | freq(S) >= 0.005 & freq(T) >= 0.005 & %s & %s}"
             s_text t_text)
      in
      let a = run w.Workloads.ctx q Plan.Apriori_plus in
      let c = run w.Workloads.ctx q Plan.Cap_one_var in
      assert (a.Exec.pair_stats.Pairs.n_pairs = c.Exec.pair_stats.Pairs.n_pairs);
      Table.add_row t
        [
          cls;
          s_text;
          string_of_int (Exec.total_counted a);
          string_of_int (Exec.total_counted c);
          Table.speedup_cell (speedup ~baseline:a c);
        ])
    [
      ("anti-monotone + succinct", "S.Price <= 300", "T.Price <= 300");
      ("succinct only", "min(S.Price) <= 100", "min(T.Price) <= 100");
      ("anti-monotone only", "sum(S.Price) <= 900", "sum(T.Price) <= 900");
      ("neither", "avg(S.Price) <= 300", "avg(T.Price) <= 300");
    ];
  Table.print t

(* Not a paper artifact: the frequent-set mining substrates head to head on
   the same Quest database (the CFQ engines are built on the levelwise one;
   the others serve as oracles and baselines). *)
let miners scale =
  header "Mining substrates on one Quest database (unconstrained)";
  let db = Workloads.quest_db { scale with Workloads.n_tx = scale.Workloads.n_tx / 2 } in
  let n = scale.Workloads.n_items in
  let minsup = max 1 (Cfq_txdb.Tx_db.size db / 200) in
  let info =
    Cfq_quest.Item_gen.item_info
      ~prices:
        (Cfq_quest.Item_gen.uniform_prices
           (Cfq_quest.Splitmix.create ~seed:5L)
           ~n ~lo:0. ~hi:1000.)
      ()
  in
  let t = Table.create [ "algorithm"; "frequent sets"; "scans"; "cpu(s)" ] in
  let timed name f =
    Gc.compact ();
    let io = Cfq_txdb.Io_stats.create () in
    let t0 = Sys.time () in
    let frequent = f io in
    let dt = Sys.time () -. t0 in
    Table.add_row t
      [
        name;
        string_of_int (Frequent.n_sets frequent);
        string_of_int (Cfq_txdb.Io_stats.scans io);
        Table.fcell dt;
      ]
  in
  timed "apriori (levelwise/trie)" (fun io ->
      (Apriori.mine db info io ~minsup ()).Apriori.frequent);
  timed "fp-growth" (fun io -> Fp_growth.mine db io ~minsup ~universe_size:n);
  timed "eclat (vertical)" (fun io ->
      Vertical.mine (Vertical.build db io ~universe_size:n) ~minsup);
  timed "partition (2 scans)" (fun io ->
      Partition.mine db io ~minsup ~n_partitions:4 ~universe_size:n);
  timed "dhp (hash filter)" (fun io ->
      (Dhp.mine db io ~minsup ~universe_size:n ~n_buckets:5003).Dhp.frequent);
  timed "apriori-tid" (fun io ->
      (Apriori_tid.mine db io ~minsup ~universe_size:n).Apriori_tid.frequent);
  timed "sampling (Toivonen)" (fun io ->
      (Sampling.mine db io ~minsup ~universe_size:n ~sample_frac:0.2 ()).Sampling.frequent);
  Table.print t

(* Engineering benches: FUP incremental maintenance vs re-mining, and
   parallel counting scalability. *)
let maintenance scale =
  header "Incremental maintenance (FUP, [6]): 5% insertion batch vs re-mining";
  let scale = { scale with Workloads.n_tx = scale.Workloads.n_tx / 2 } in
  let rng = Cfq_quest.Splitmix.create ~seed:77L in
  let params =
    { (Cfq_quest.Quest_gen.scaled (scale.Workloads.n_tx + (scale.Workloads.n_tx / 20))) with
      Cfq_quest.Quest_gen.n_items = scale.Workloads.n_items }
  in
  let all = Cfq_quest.Quest_gen.generate_itemsets rng params in
  let n_old = scale.Workloads.n_tx in
  let old_db = Cfq_txdb.Tx_db.create (Array.sub all 0 n_old) in
  let delta = Cfq_txdb.Tx_db.create (Array.sub all n_old (Array.length all - n_old)) in
  let union = Cfq_txdb.Tx_db.create all in
  let frac = 0.005 in
  let info =
    Cfq_quest.Item_gen.item_info
      ~prices:
        (Cfq_quest.Item_gen.uniform_prices
           (Cfq_quest.Splitmix.create ~seed:78L)
           ~n:scale.Workloads.n_items ~lo:0. ~hi:1000.)
      ()
  in
  let io0 = Cfq_txdb.Io_stats.create () in
  let old_frequent =
    (Apriori.mine old_db info io0 ~minsup:(Cfq_txdb.Tx_db.absolute_support old_db frac) ())
      .Apriori.frequent
  in
  let t = Table.create [ "approach"; "frequent sets"; "pages read"; "cpu(s)" ] in
  let timed name f =
    Gc.compact ();
    let io = Cfq_txdb.Io_stats.create () in
    let t0 = Sys.time () in
    let frequent = f io in
    Table.add_row t
      [
        name;
        string_of_int (Frequent.n_sets frequent);
        string_of_int (Cfq_txdb.Io_stats.pages_read io);
        Table.fcell (Sys.time () -. t0);
      ]
  in
  timed "re-mine the union" (fun io ->
      (Apriori.mine union info io ~minsup:(Cfq_txdb.Tx_db.absolute_support union frac) ())
        .Apriori.frequent);
  timed "FUP update" (fun io ->
      (Incremental.update ~old_db ~old_frequent ~delta io ~minsup_frac:frac
         ~universe_size:scale.Workloads.n_items)
        .Incremental.frequent);
  Table.print t

let parallel scale =
  header "Parallel trie counting (OCaml 5 domains), one heavy level-2 pass";
  let db = Workloads.quest_db scale in
  let io = Cfq_txdb.Io_stats.create () in
  let minsup = max 1 (Cfq_txdb.Tx_db.size db / 200) in
  let freqs =
    Cfq_txdb.Tx_db.item_frequencies db io ~universe_size:scale.Workloads.n_items
  in
  let frequent_items = ref [] in
  Array.iteri (fun i f -> if f >= minsup then frequent_items := i :: !frequent_items) freqs;
  let cands = Candidate.pairs_all (Array.of_list !frequent_items) in
  Printf.printf
    "counting %d pair candidates over %d transactions (%d core(s) available; \
     speedup needs more than one)\n%!"
    (Array.length cands) (Cfq_txdb.Tx_db.size db)
    (Domain.recommended_domain_count ());
  let t = Table.create [ "domains"; "cpu+wall(s)"; "speedup" ] in
  let time domains =
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    let counts =
      Counting.count_level
        ~par:(Counting.par domains)
        db io (Counters.create ()) cands
    in
    ignore counts;
    Unix.gettimeofday () -. t0
  in
  let base = time 1 in
  List.iter
    (fun d ->
      let dt = time d in
      Table.add_row t
        [ string_of_int d; Table.fcell dt; Table.speedup_cell (base /. dt) ])
    [ 1; 2; 4 ];
  Table.print t

let shapes_ok fig8a_series fig8b_series fig73_series =
  (* the qualitative claims of Section 7 *)
  let decreasing l = List.for_all2 (fun a b -> a >= b -. 1e-9)
      (List.filteri (fun i _ -> i < List.length l - 1) l)
      (List.tl l)
  in
  let f8a = List.map snd fig8a_series in
  let f8b_opt = List.map (fun (_, _, o) -> o) fig8b_series in
  let f73 = List.map snd fig73_series in
  Printf.printf "\n=== Shape checks (paper's qualitative claims) ===\n";
  let check name ok = Printf.printf "%-60s %s\n" name (if ok then "OK" else "MISMATCH") in
  check "fig8a: speedup decreases with range overlap" (decreasing f8a);
  check "fig8a: speedup > 1.5x at lowest overlap"
    (match f8a with s :: _ -> s > 1.5 | [] -> false);
  check "fig8b: optimized beats 1-var-only at every overlap"
    (List.for_all (fun (_, c, o) -> o > c) fig8b_series);
  check "fig8b: 2-var speedup decreases with type overlap" (decreasing f8b_opt);
  check "fig73: Jmax speedup decreases with mean T price" (decreasing f73);
  check "fig73: Jmax speedup > 1x at mean 400"
    (match f73 with s :: _ -> s > 1. | [] -> false)

let run_all () =
  let scale = Workloads.default_scale () in
  Printf.printf "workload scale: %d transactions, %d items (set FULL=1 for paper scale)\n"
    scale.Workloads.n_tx scale.Workloads.n_items;
  let s8a = fig8a scale in
  tab71_levels scale;
  tab71_ranges scale;
  let s8b = fig8b scale in
  tab72_ranges scale;
  let s73 = tab73_jmax scale in
  ablation_dovetail scale;
  cap_1var scale;
  miners scale;
  maintenance scale;
  parallel scale;
  shapes_ok s8a s8b s73
