(* Shard bench: count-distribution mining over partitioned stores.

   Builds the harness database into sharded on-disk stores at a sweep of
   shard counts, runs the same 2-var query against every configuration,
   and asserts that answers, ccc counters and logical page charges are
   identical to the single in-memory backend — the count-distribution
   merge is exact, not approximate.  Per-shard counters must reconcile:
   shard transaction/page totals sum to the global figures, and the
   per-shard I/O sinks sum to the query's logical reads.  Writes the rows
   to BENCH_shard.json like the other benches. *)

open Cfq_itembase
open Cfq_quest
open Cfq_core
module Tx_db = Cfq_txdb.Tx_db
module Io_stats = Cfq_txdb.Io_stats

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let sorted_pairs l =
  List.sort
    (fun (a1, b1) (a2, b2) ->
      match Itemset.compare a1 a2 with 0 -> Itemset.compare b1 b2 | c -> c)
    (List.map
       (fun (s, t) -> (s.Cfq_mining.Frequent.set, t.Cfq_mining.Frequent.set))
       l)

type row = {
  r_shards : int;
  r_build_s : float;
  r_query_s : float;
  r_shard_pages : int list;
  r_pages_read : int;
  r_pool_misses : int;
}

let run (scale : Workloads.scale) =
  let mem = Workloads.quest_db scale in
  let n_tx = Tx_db.size mem in
  let pages = Tx_db.pages mem in
  let sets =
    Array.init n_tx (fun i -> (Tx_db.get mem i).Cfq_txdb.Transaction.items)
  in
  let rng = Splitmix.create ~seed:(Int64.add scale.Workloads.seed 11L) in
  let n = scale.Workloads.n_items in
  let prices = Item_gen.uniform_prices rng ~n ~lo:0. ~hi:1000. in
  let types = Array.init n (fun _ -> float_of_int (Splitmix.int rng 20)) in
  let info = Item_gen.item_info ~prices ~types () in
  let query_text =
    "{(S,T) | freq(S) >= 0.005 & freq(T) >= 0.005 & S.Price >= 300 & T.Price <= 700 \
     & S.Type = T.Type}"
  in
  let q = Parser.parse query_text in
  let run_on db = Exec.run ~collect_pairs:true (Exec.context db info) q in
  Printf.printf "shard bench: %d transactions, %d pages\n%!" n_tx pages;
  let mem_r, mem_q_s = time (fun () -> run_on mem) in
  let baseline = sorted_pairs mem_r.Exec.pairs in

  let bench_one shards =
    let path = Filename.temp_file "cfq_bench_shard" ".cfqdb" in
    Sys.remove path;
    let (), build_s =
      time (fun () -> Cfq_shard.Sharded.build ~shards path sets)
    in
    let sh =
      Cfq_shard.Sharded.open_ ~cache_pages:(max 1 (pages / max 1 shards)) path
    in
    Fun.protect
      ~finally:(fun () ->
        Cfq_shard.Sharded.close sh;
        Cfq_shard.Sharded.remove_files path)
      (fun () ->
        let db = Cfq_shard.Sharded.db sh in
        let r, q_s = time (fun () -> run_on db) in
        if sorted_pairs r.Exec.pairs <> baseline then begin
          Printf.printf "FAIL: shards=%d returned different answers\n" shards;
          exit 1
        end;
        if
          Exec.total_counted r <> Exec.total_counted mem_r
          || Exec.total_checks r <> Exec.total_checks mem_r
        then begin
          Printf.printf "FAIL: shards=%d diverged on ccc counters\n" shards;
          exit 1
        end;
        if
          Io_stats.pages_read r.Exec.io <> Io_stats.pages_read mem_r.Exec.io
        then begin
          Printf.printf
            "FAIL: shards=%d charged %d pages, memory charged %d\n" shards
            (Io_stats.pages_read r.Exec.io)
            (Io_stats.pages_read mem_r.Exec.io);
          exit 1
        end;
        (* per-shard counters must reconcile with the global figures *)
        let stores = Cfq_shard.Sharded.stores sh in
        let shard_pages =
          Array.to_list (Array.map Cfq_store.Store.pages stores)
        in
        let sum f = Array.fold_left (fun a st -> a + f st) 0 stores in
        if sum Cfq_store.Store.size <> n_tx || sum Cfq_store.Store.pages <> pages
        then begin
          Printf.printf "FAIL: shards=%d totals do not sum to the global db\n"
            shards;
          exit 1
        end;
        let shard_reads =
          Array.fold_left
            (fun a io -> a + Io_stats.pages_read io)
            0 (Tx_db.shard_io db)
        in
        (* a single shard is counted directly on the composite — the
           distributed path (and its per-shard sinks) only engages past 1 *)
        if shards > 1 && shard_reads <> Io_stats.pages_read r.Exec.io then begin
          Printf.printf
            "FAIL: shards=%d per-shard sinks read %d pages, query charged %d\n"
            shards shard_reads
            (Io_stats.pages_read r.Exec.io);
          exit 1
        end;
        let pool_misses =
          Array.fold_left
            (fun a st -> a + Io_stats.pool_misses (Cfq_store.Store.io st))
            0 stores
        in
        {
          r_shards = shards;
          r_build_s = build_s;
          r_query_s = q_s;
          r_shard_pages = shard_pages;
          r_pages_read = Io_stats.pages_read r.Exec.io;
          r_pool_misses = pool_misses;
        })
  in
  let rows = List.map bench_one [ 1; 2; 4; 8 ] in

  let tbl =
    Cfq_report.Table.create
      [ "shards"; "build(s)"; "query(s)"; "pages/shard"; "pages read"; "misses" ]
  in
  List.iter
    (fun r ->
      Cfq_report.Table.add_row tbl
        [
          string_of_int r.r_shards;
          Cfq_report.Table.fcell r.r_build_s;
          Cfq_report.Table.fcell r.r_query_s;
          String.concat "+" (List.map string_of_int r.r_shard_pages);
          string_of_int r.r_pages_read;
          string_of_int r.r_pool_misses;
        ])
    rows;
  print_newline ();
  Cfq_report.Table.print tbl;
  Printf.printf
    "\nall shard counts returned identical answers, ccc counters and page \
     charges (memory query: %.3fs)\n"
    mem_q_s;

  let json =
    String.concat "\n"
      [
        "{";
        "  \"bench\": \"shard\",";
        Printf.sprintf "  \"transactions\": %d," n_tx;
        Printf.sprintf "  \"pages\": %d," pages;
        Printf.sprintf "  \"query\": %S," query_text;
        Printf.sprintf "  \"memory_query_seconds\": %.6f," mem_q_s;
        Printf.sprintf "  \"answers\": %d," (List.length baseline);
        "  \"sweep\": [";
        String.concat ",\n"
          (List.map
             (fun r ->
               Printf.sprintf
                 "      {\"shards\": %d, \"build_seconds\": %.6f, \
                  \"query_seconds\": %.6f, \"shard_pages\": [%s], \
                  \"pages_read\": %d, \"pool_misses\": %d}"
                 r.r_shards r.r_build_s r.r_query_s
                 (String.concat ", " (List.map string_of_int r.r_shard_pages))
                 r.r_pages_read r.r_pool_misses)
             rows);
        "  ]";
        "}";
      ]
  in
  let oc = open_out "BENCH_shard.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_shard.json"
