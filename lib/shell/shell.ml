open Cfq_itembase
open Cfq_txdb
open Cfq_quest
open Cfq_core

type t = {
  mutable ctx : Exec.ctx option;
  mutable strategy : Plan.strategy;
  mutable min_conf : float;
  mutable mine_domains : int;
  mutable kernel : Cfq_mining.Counting.kernel;
  mutable calibrate : bool;
  mutable condense : bool;
  mutable last : Exec.result option;
  mutable last_rules : Cfq_rules.Rule.t list;
  mutable service : Cfq_service.Service.t option;
  mutable store : Cfq_store.Store.t option;
  mutable shard : Cfq_shard.Sharded.t option;
  mutable replicas : int;
  mutable last_live : Cfq_service.Service.live option;
}

type response = {
  output : string;
  quit : bool;
}

let create ?ctx () =
  {
    ctx;
    strategy = Plan.Optimized;
    min_conf = 0.5;
    mine_domains = 1;
    kernel = Cfq_mining.Counting.Trie;
    calibrate = true;
    condense = true;
    last = None;
    last_rules = [];
    service = None;
    store = None;
    shard = None;
    replicas = 1;
    last_live = None;
  }

let par_of t = Cfq_mining.Counting.par (max 1 t.mine_domains)

(* the trie default stays the plain legacy path (no session, no note) *)
let kernel_of t =
  if t.kernel = Cfq_mining.Counting.Trie then None else Some t.kernel

(* the serving layer is bound to one database: (re)create it lazily and
   retire it when the session attaches a different context *)
let drop_service t =
  match t.service with
  | None -> ()
  | Some s ->
      Cfq_service.Service.shutdown s;
      t.service <- None

(* a persistent store backs the current ctx's database: close it only
   after the session has moved to a different context *)
let drop_store t =
  (match t.store with
  | None -> ()
  | Some s ->
      (try Cfq_store.Store.close s with _ -> ());
      t.store <- None);
  match t.shard with
  | None -> ()
  | Some s ->
      (try Cfq_shard.Sharded.close s with _ -> ());
      t.shard <- None

let service_for t ctx =
  match t.service with
  | Some s when Cfq_service.Service.ctx s == ctx -> s
  | _ ->
      drop_service t;
      let s =
        Cfq_service.Service.create
          ~config:
            {
              Cfq_service.Service.default_config with
              kernel = t.kernel;
              calibrate = t.calibrate;
              condense = t.condense;
            }
          ctx
      in
      t.service <- Some s;
      s

let say fmt = Format.kasprintf (fun output -> { output; quit = false }) fmt

let help_text =
  String.concat "\n"
    [
      "commands:";
      "  load <tx.fimi> [<items.csv>]   attach a database (and itemInfo table)";
      "  gen <n_tx> <n_items> [seed]    generate a synthetic Quest database";
      "  open <store> [<cache_pages>] [shards=N]";
      "                                 attach a persistent store (buffer-pooled);";
      "                                 a manifest opens sharded, shards=N splits a";
      "                                 plain segment into a sharded twin first";
      "  save <store>                   write the attached database to a store";
      "  ingest <store> <tx.fimi>       append transactions to a store and seal;";
      "                                 a running service over that store is kept";
      "                                 live (caches promoted, not cold-started)";
      "  live                           live-ingestion status: epoch, pending";
      "                                 appends, last seal's maintenance summary";
      "  verify                         re-read the attached store from disk and";
      "                                 report per-replica page health";
      "  scrub                          verify + quarantine bad replicas, rebuild";
      "                                 them from healthy siblings, re-admit";
      "  set strategy <name>            apriori+ | cap | optimized | sequential | fm";
      "  set minconf <float>            rule confidence threshold";
      "  set domains <n>                counting domains per scan (1 = sequential)";
      "  set kernel <name>              counting kernel: auto | trie | direct2 | vertical";
      "  set calibrate <on|off>         feed measured pass timings into the Auto";
      "                                 planner's cost model (on; off = fixed priors)";
      "  set condense <on|off>          store the service's cached collections and";
      "                                 answers closed-set condensed (on); answers";
      "                                 are byte-identical either way";
      "  set replicas <r>               replicas per shard for the next sharded split";
      "  set fault <p> [<cp> [<seed>]] [shard=K [replica=J]]";
      "                                 inject faults: transient-p, corrupt-p, seed;";
      "                                 shard=K pins the injector to one shard,";
      "                                 replica=J to one physical replica of it";
      "  set fault off [shard=K [replica=J]]";
      "                                 remove fault injection";
      "  explain <query>                show the optimizer's plan, run nothing";
      "  advise <query>                 probe the data, recommend a strategy";
      "  run <query>                    execute and summarise";
      "  pairs <n>                      show n answer pairs of the last run";
      "  rules <query>                  two-phase run: rules with metrics";
      "  export pairs <file.csv>        write the last run's pairs to CSV";
      "  export rules <file.csv>        write the last rules to CSV";
      "  profile                        lattice profile of the last run";
      "  serve <queries.txt>            run a batch file through the caching service";
      "  cachestats                     service cache / queue / ccc metrics";
      "  stats                          database statistics";
      "  help | quit";
    ]

let strategies =
  [
    ("apriori+", Plan.Apriori_plus);
    ("cap", Plan.Cap_one_var);
    ("optimized", Plan.Optimized);
    ("sequential", Plan.Sequential_t_first);
    ("fm", Plan.Full_materialize);
  ]

let with_ctx t f =
  match t.ctx with
  | Some ctx -> f ctx
  | None -> say "no database attached; use 'load' or 'gen' first"

let parse_query t ctx text f =
  match Parser.parse_result text with
  | Error msg -> say "parse error: %s" msg
  | Ok q -> (
      match Validate.check ~s_info:ctx.Exec.s_info ~t_info:ctx.Exec.t_info q with
      | Error errors ->
          say "%s"
            (String.concat "\n"
               (List.map (Format.asprintf "error: %a" Validate.pp_error) errors))
      | Ok () -> f (t, q))

let do_load t path info_path =
  match Cfq_data.Fimi.read path with
  | exception Cfq_data.Fimi.Bad_format msg -> say "load failed: %s" msg
  | exception Sys_error msg -> say "load failed: %s" msg
  | db -> (
      let universe_size =
        match Cfq_data.Fimi.max_item db with Some m -> m + 1 | None -> 1
      in
      let info_result =
        match info_path with
        | None -> Ok (Item_info.create ~universe_size)
        | Some p -> (
            match Cfq_data.Item_csv.read p ~universe_size with
            | info -> Ok info
            | exception Cfq_data.Item_csv.Bad_format msg -> Error msg
            | exception Sys_error msg -> Error msg)
      in
      match info_result with
      | Error msg -> say "load failed: %s" msg
      | Ok info ->
          t.ctx <- Some (Exec.context db info);
          t.last <- None;
          drop_service t;
          drop_store t;
          say "loaded %d transactions over %d items" (Tx_db.size db) universe_size)

let do_gen t n_tx n_items seed =
  let rng = Splitmix.create ~seed:(Int64.of_int seed) in
  let params = { (Quest_gen.scaled n_tx) with Quest_gen.n_items = n_items } in
  let db = Quest_gen.generate rng params in
  let prices = Item_gen.uniform_prices rng ~n:n_items ~lo:0. ~hi:1000. in
  let types = Array.init n_items (fun _ -> float_of_int (Splitmix.int rng 20)) in
  t.ctx <- Some (Exec.context db (Item_gen.item_info ~prices ~types ()));
  t.last <- None;
  drop_service t;
  drop_store t;
  say "generated %d transactions over %d items (avg length %.1f; Price, Type attributes)"
    (Tx_db.size db) n_items (Tx_db.avg_tx_len db)

let info_csv_path store_path = store_path ^ ".info.csv"

(* attach an already-built sharded store: the manifest lives at [mpath],
   the itemInfo table beside it or beside the original plain segment the
   shards were split from *)
let do_open_sharded t mpath cache_pages ~info_candidates =
  match Cfq_shard.Sharded.open_ ?cache_pages mpath with
  | exception Cfq_shard.Manifest.Bad_manifest msg -> say "open failed: %s" msg
  | exception Cfq_store.Segment.Bad_segment msg -> say "open failed: %s" msg
  | exception Unix.Unix_error (e, _, _) ->
      say "open failed: %s: %s" mpath (Unix.error_message e)
  | exception Sys_error msg -> say "open failed: %s" msg
  | sh -> (
      let universe_size = max 1 (Cfq_shard.Sharded.universe_size sh) in
      let info_result =
        match List.find_opt Sys.file_exists info_candidates with
        | None -> Ok (Item_info.create ~universe_size)
        | Some p -> (
            match Cfq_data.Item_csv.read p ~universe_size with
            | info -> Ok info
            | exception Cfq_data.Item_csv.Bad_format msg -> Error msg
            | exception Sys_error msg -> Error msg)
      in
      match info_result with
      | Error msg ->
          Cfq_shard.Sharded.close sh;
          say "open failed: %s" msg
      | Ok info ->
          t.ctx <- Some (Exec.context (Cfq_shard.Sharded.db sh) info);
          t.last <- None;
          drop_service t;
          drop_store t;
          t.shard <- Some sh;
          let m = Cfq_shard.Sharded.manifest sh in
          let r = Cfq_shard.Sharded.replicas sh in
          say "opened %s: %d shards (%s)%s, %d transactions, %d pages, generation %d"
            mpath
            (Cfq_shard.Sharded.shard_count sh)
            (Cfq_shard.Manifest.partition_name m.Cfq_shard.Manifest.partition)
            (if r > 1 then Printf.sprintf " x %d replicas" r else "")
            (Cfq_shard.Sharded.size sh) (Cfq_shard.Sharded.pages sh)
            m.Cfq_shard.Manifest.generation)

let do_open t path cache_pages =
  match Cfq_store.Store.open_ ?cache_pages path with
  | exception Cfq_store.Segment.Bad_segment msg -> say "open failed: %s" msg
  | exception Unix.Unix_error (e, _, _) ->
      say "open failed: %s: %s" path (Unix.error_message e)
  | exception Sys_error msg -> say "open failed: %s" msg
  | store -> (
      let universe_size = max 1 (Cfq_store.Store.universe_size store) in
      let info_path = info_csv_path path in
      let info_result =
        if not (Sys.file_exists info_path) then Ok (Item_info.create ~universe_size)
        else
          match Cfq_data.Item_csv.read info_path ~universe_size with
          | info -> Ok info
          | exception Cfq_data.Item_csv.Bad_format msg -> Error msg
          | exception Sys_error msg -> Error msg
      in
      match info_result with
      | Error msg ->
          Cfq_store.Store.close store;
          say "open failed: %s" msg
      | Ok info ->
          t.ctx <- Some (Exec.context (Cfq_store.Store.db store) info);
          t.last <- None;
          drop_service t;
          drop_store t;
          t.store <- Some store;
          let r = Cfq_store.Store.last_recovery store in
          say "opened %s: %d transactions, %d pages, cache %d pages%s" path
            (Cfq_store.Store.size store) (Cfq_store.Store.pages store)
            (Cfq_store.Store.cache_pages store)
            (if r.Cfq_store.Store.replayed > 0 || r.Cfq_store.Store.truncated_bytes > 0
             then
               Printf.sprintf " (recovered %d WAL records, dropped %d torn bytes)"
                 r.Cfq_store.Store.replayed r.Cfq_store.Store.truncated_bytes
             else ""))

(* 'open' front door: a manifest at [path] opens sharded as-is; a plain
   segment with [shards=N] (N>1) is split once into a sharded twin at
   [path.sharded] (reused on later opens); otherwise the plain store *)
let do_open_any t path cache_pages shards =
  if Cfq_shard.Manifest.is_manifest path then
    do_open_sharded t path cache_pages ~info_candidates:[ info_csv_path path ]
  else if shards > 1 then begin
    let mpath = path ^ ".sharded" in
    match
      if not (Cfq_shard.Manifest.is_manifest mpath) then
        Cfq_shard.Sharded.build_from_segment ~replicas:t.replicas ~shards ~src:path
          mpath
    with
    | exception Cfq_store.Segment.Bad_segment msg -> say "open failed: %s" msg
    | exception Cfq_shard.Manifest.Bad_manifest msg -> say "open failed: %s" msg
    | exception Unix.Unix_error (e, _, _) ->
        say "open failed: %s: %s" path (Unix.error_message e)
    | exception Sys_error msg -> say "open failed: %s" msg
    | () ->
        do_open_sharded t mpath cache_pages
          ~info_candidates:[ info_csv_path mpath; info_csv_path path ]
  end
  else do_open t path cache_pages

let do_save ctx path =
  match
    Cfq_store.Store.save_db path ctx.Exec.db;
    Cfq_data.Item_csv.write (info_csv_path path) ctx.Exec.s_info
  with
  | () ->
      say "wrote %d transactions to %s (+ %s)" (Tx_db.size ctx.Exec.db) path
        (info_csv_path path)
  | exception Unix.Unix_error (e, _, _) ->
      say "save failed: %s: %s" path (Unix.error_message e)
  | exception Sys_error msg -> say "save failed: %s" msg

let do_ingest t store_path fimi_path =
  match Cfq_data.Fimi.read fimi_path with
  | exception Cfq_data.Fimi.Bad_format msg -> say "ingest failed: %s" msg
  | exception Sys_error msg -> say "ingest failed: %s" msg
  | src -> (
      (* appends are group-commit buffered: a crash mid-loop may lose
         the last partial group, but nothing is acknowledged until the
         seal below, which flushes and folds everything durably *)
      let ingest store =
        for i = 0 to Tx_db.size src - 1 do
          Cfq_store.Store.append_tx store (Tx_db.get src i).Transaction.items
        done;
        ignore (Cfq_store.Store.seal store)
      in
      match t.store with
      | Some store when Cfq_store.Store.path store = store_path -> (
          let live_service =
            match (t.service, t.ctx) with
            | Some s, Some c when Cfq_service.Service.ctx s == c -> Some s
            | _ -> None
          in
          match live_service with
          | Some service -> (
              (* the service stays up across the seal: appends go through
                 its live source, and the seal's maintenance pass promotes
                 the warm caches to the new epoch instead of dropping them
                 (in-flight queries finish on the still-readable pre-seal
                 snapshot) *)
              (match Cfq_service.Service.live_source service with
              | Some _ -> ()
              | None ->
                  Cfq_service.Service.attach_source service
                    (Cfq_live.Source.of_store store));
              for i = 0 to Tx_db.size src - 1 do
                Cfq_service.Service.ingest service (Tx_db.get src i).Transaction.items
              done;
              match Cfq_service.Service.seal_live service with
              | None -> say "nothing to ingest: %s holds no transactions" fimi_path
              | Some lv ->
                  t.last_live <- Some lv;
                  t.ctx <- Some (Cfq_service.Service.ctx service);
                  t.last <- None;
                  say
                    "ingested %d transactions into %s (now %d total)@\n\
                     epoch %d: %d sides + %d answers promoted, %d + %d \
                     evicted; %d candidates recounted (%d old-db scans), %d \
                     maintenance pages"
                    (Tx_db.size src) store_path
                    (Cfq_store.Store.size store)
                    lv.Cfq_service.Service.lv_epoch
                    lv.Cfq_service.Service.lv_sides_promoted
                    lv.Cfq_service.Service.lv_answers_promoted
                    lv.Cfq_service.Service.lv_sides_evicted
                    lv.Cfq_service.Service.lv_answers_evicted
                    lv.Cfq_service.Service.lv_recounted
                    lv.Cfq_service.Service.lv_old_scans
                    lv.Cfq_service.Service.lv_pages_read)
          | None ->
              (* no service over this store: retire any stale one, seal, and
                 rebuild the context around the replaced db handle *)
              drop_service t;
              ingest store;
              (match t.ctx with
              | Some ctx ->
                  t.ctx <-
                    Some (Exec.context (Cfq_store.Store.db store) ctx.Exec.s_info)
              | None -> ());
              t.last <- None;
              say "ingested %d transactions into %s (now %d total)"
                (Tx_db.size src) store_path
                (Cfq_store.Store.size store))
      | _ -> (
          match Cfq_store.Store.open_ store_path with
          | exception Cfq_store.Segment.Bad_segment msg -> say "ingest failed: %s" msg
          | exception Unix.Unix_error (e, _, _) ->
              say "ingest failed: %s: %s" store_path (Unix.error_message e)
          | exception Sys_error msg -> say "ingest failed: %s" msg
          | store ->
              ingest store;
              let total = Cfq_store.Store.size store in
              Cfq_store.Store.close store;
              say "ingested %d transactions into %s (now %d total)" (Tx_db.size src)
                store_path total))

let do_live t =
  match t.service with
  | None ->
      say
        "no service running; 'serve <queries.txt>' starts one, and 'ingest' \
         into the attached store keeps it live across seals"
  | Some s ->
      let source_line =
        match Cfq_service.Service.live_source s with
        | None -> "no ingestion source attached (the first 'ingest' attaches one)"
        | Some src ->
            Printf.sprintf "source: %s, %d transactions sealed, %d pending"
              (Cfq_live.Source.backend_name src)
              (Cfq_live.Source.size src)
              (Cfq_live.Source.pending src)
      in
      let seal_line =
        match t.last_live with
        | None -> "no seal maintained yet"
        | Some lv ->
            Printf.sprintf
              "last seal (epoch %d): %d txs folded; %d sides + %d answers \
               promoted, %d + %d evicted; %d candidates recounted (%d old-db \
               scans), %d scans / %d pages of maintenance I/O"
              lv.Cfq_service.Service.lv_epoch lv.Cfq_service.Service.lv_sealed
              lv.Cfq_service.Service.lv_sides_promoted
              lv.Cfq_service.Service.lv_answers_promoted
              lv.Cfq_service.Service.lv_sides_evicted
              lv.Cfq_service.Service.lv_answers_evicted
              lv.Cfq_service.Service.lv_recounted
              lv.Cfq_service.Service.lv_old_scans
              lv.Cfq_service.Service.lv_scans
              lv.Cfq_service.Service.lv_pages_read
      in
      say "epoch %d@\n%s@\n%s" (Cfq_service.Service.epoch s) source_line seal_line

let do_run t ctx q =
  match
    Exec.run_result ~strategy:t.strategy ~collect_pairs:true ~par:(par_of t)
      ?kernel:(kernel_of t) ~calibrate:t.calibrate ctx q
  with
  | Ok r ->
      t.last <- Some r;
      say "%s" (Explain.result_to_string r)
  | Error e -> say "run failed: %s" (Cfq_error.to_string e)

let fault_usage =
  "usage: set fault <transient-p> [<corrupt-p> [<seed>]] [shard=K [replica=J]] | \
   set fault off [shard=K [replica=J]]"

(* the probability/seed words of 'set fault', shared by every target:
   Ok (None, _) = off, Ok (Some config, description) = inject *)
let parse_fault_spec args =
  match args with
  | [ "off" ] -> Ok (None, "off")
  | _ -> (
      match List.map float_of_string_opt args with
      | [ Some p ] when p >= 0. && p <= 1. ->
          Ok
            ( Some { Fault.default_config with Fault.transient_p = p },
              Printf.sprintf "on: transient-p=%g" p )
      | [ Some p; Some cp ] when p >= 0. && p <= 1. && cp >= 0. && cp <= 1. ->
          Ok
            ( Some { Fault.default_config with Fault.transient_p = p; corrupt_p = cp },
              Printf.sprintf "on: transient-p=%g corrupt-p=%g" p cp )
      | [ Some p; Some cp; Some seed ] when p >= 0. && p <= 1. && cp >= 0. && cp <= 1. ->
          Ok
            ( Some
                {
                  Fault.default_config with
                  Fault.transient_p = p;
                  corrupt_p = cp;
                  seed = Int64.of_float seed;
                },
              Printf.sprintf "on: transient-p=%g corrupt-p=%g seed=%.0f" p cp seed )
      | _ -> Error fault_usage)

let injector_report db =
  match Tx_db.faults db with
  | None -> "fault injection was not enabled"
  | Some fl ->
      let s = Fault.stats fl in
      Format.asprintf
        "fault injection off (injected: %d transient, %d spikes, %d crashes, %d \
         tampered, %d checksum failures)"
        s.Fault.transient s.Fault.spikes s.Fault.crashes s.Fault.tampered
        s.Fault.checksum_failures

let do_set_fault t ctx args =
  let composite = ctx.Exec.db in
  (* shard=K pins the injector to one shard of a sharded composite;
     replica=J narrows it further to one physical replica of that shard
     (the sibling replicas stay clean, so reads fail over around it) *)
  let tagged prefix words = List.partition (String.starts_with ~prefix) words in
  let shard_args, args = tagged "shard=" args in
  let replica_args, args = tagged "replica=" args in
  let int_of prefix s =
    let n = String.length prefix in
    int_of_string_opt (String.sub s n (String.length s - n))
  in
  match parse_fault_spec args with
  | Error msg -> say "%s" msg
  | Ok (spec, desc) -> (
      match (shard_args, replica_args) with
      | _ :: _ :: _, _ | _, _ :: _ :: _ ->
          say "set fault: at most one shard=K and one replica=J"
      | [], _ :: _ -> say "set fault: replica=J needs shard=K"
      | [ s ], [ r ] -> (
          match (int_of "shard=" s, int_of "replica=" r, t.shard) with
          | None, _, _ | _, None, _ -> say "set fault: shard= and replica= want integers"
          | _, _, None -> say "set fault: the attached store is not sharded"
          | Some k, Some j, Some sh ->
              let n_shards = Cfq_shard.Sharded.shard_count sh in
              let n_replicas = Cfq_shard.Sharded.replicas sh in
              if k < 0 || k >= n_shards then
                say "set fault: shard %d out of range (store has %d shards)" k n_shards
              else if j < 0 || j >= n_replicas then
                say "set fault: replica %d out of range (store has %d replicas)" j
                  n_replicas
              else begin
                Cfq_shard.Sharded.set_replica_fault sh ~shard:k ~replica:j
                  (Option.map Fault.create spec);
                say "fault injection %s (shard %d, replica %d)" desc k j
              end)
      | [ s ], [] -> (
          match (int_of "shard=" s, Tx_db.shards composite) with
          | None, _ -> say "set fault: shard= wants an integer"
          | Some _, None -> say "set fault: the attached database is not sharded"
          | Some k, Some subs when k >= 0 && k < Array.length subs ->
              let db = subs.(k) in
              if spec = None then begin
                let report = injector_report db in
                Tx_db.set_faults db None;
                say "%s (shard %d)" report k
              end
              else begin
                Tx_db.set_faults db (Option.map Fault.create spec);
                say "fault injection %s (shard %d)" desc k
              end
          | Some k, Some subs ->
              say "set fault: shard %d out of range (store has %d shards)" k
                (Array.length subs))
      | [], [] ->
          if spec = None then begin
            let report = injector_report composite in
            Tx_db.set_faults composite None;
            say "%s" report
          end
          else begin
            Tx_db.set_faults composite (Option.map Fault.create spec);
            say "fault injection %s" desc
          end)

let do_pairs t n =
  match t.last with
  | None -> say "no previous run; use 'run <query>' first"
  | Some r ->
      let shown = ref [] in
      List.iteri
        (fun i (s, p) ->
          if i < n then
            shown :=
              Printf.sprintf "  %s => %s"
                (Itemset.to_string s.Cfq_mining.Frequent.set)
                (Itemset.to_string p.Cfq_mining.Frequent.set)
              :: !shown)
        r.Exec.pairs;
      if !shown = [] then say "the last run produced no pairs (or none were collected)"
      else
        say "%d of %d pairs:\n%s" (min n (List.length r.Exec.pairs))
          r.Exec.pair_stats.Pairs.n_pairs
          (String.concat "\n" (List.rev !shown))

let do_rules t ctx q =
  let rules, r = Cfq_rules.Rule.mine ~strategy:t.strategy ~min_confidence:t.min_conf ctx q in
  t.last <- Some r;
  t.last_rules <- rules;
  let shown =
    List.filteri (fun i _ -> i < 15) rules
    |> List.map (Format.asprintf "  %a" Cfq_rules.Rule.pp)
  in
  say "%d pairs -> %d rules at confidence >= %.2f%s%s" r.Exec.pair_stats.Pairs.n_pairs
    (List.length rules) t.min_conf
    (if shown = [] then "" else "\n")
    (String.concat "\n" shown)

(* one line per physical replica: health, generation, page faults *)
let render_health_rows rows =
  String.concat "\n"
    (List.map
       (fun r ->
         Printf.sprintf "  shard %d replica %d: %s (generation %d)%s"
           r.Cfq_shard.Scrub.hr_shard r.Cfq_shard.Scrub.hr_replica
           (Cfq_shard.Manifest.health_name r.Cfq_shard.Scrub.hr_health)
           r.Cfq_shard.Scrub.hr_generation
           (match r.Cfq_shard.Scrub.hr_faults with
           | [] -> ""
           | faults ->
               Printf.sprintf " -- %d bad pages: %s" (List.length faults)
                 (String.concat ", "
                    (List.map
                       (fun f ->
                         Printf.sprintf "%d/%s" f.Cfq_store.Store.pf_page
                           (Cfq_store.Store.page_fault_kind_name
                              f.Cfq_store.Store.pf_kind))
                       faults))))
       rows)

let do_verify t =
  match (t.shard, t.store) with
  | Some sh, _ ->
      let rows = Cfq_shard.Scrub.health_report sh in
      say "%s\n%s"
        (if Cfq_shard.Scrub.healthy_report rows then
           "all replicas healthy, every page verified"
         else "VERIFICATION FAILED -- run 'scrub' to quarantine and repair")
        (render_health_rows rows)
  | None, Some store -> (
      match Cfq_store.Store.verify_pages store with
      | [] -> say "all %d pages verified" (Cfq_store.Store.pages store)
      | faults ->
          say "VERIFICATION FAILED -- %d bad pages: %s" (List.length faults)
            (String.concat ", "
               (List.map
                  (fun f ->
                    Printf.sprintf "%d/%s" f.Cfq_store.Store.pf_page
                      (Cfq_store.Store.page_fault_kind_name f.Cfq_store.Store.pf_kind))
                  faults)))
  | None, None -> say "no persistent store attached; use 'open' first"

let do_scrub t =
  match t.shard with
  | None -> say "scrub wants an attached sharded store; use 'open' first"
  | Some sh ->
      (* the scrubber may seal and repair, replacing db handles: quiesce
         the service and rebuild the execution context afterwards *)
      drop_service t;
      let report = Cfq_shard.Scrub.run sh in
      (match t.ctx with
      | Some ctx ->
          t.ctx <- Some (Exec.context (Cfq_shard.Sharded.db sh) ctx.Exec.s_info)
      | None -> ());
      t.last <- None;
      let rows =
        List.filter
          (fun r -> r.Cfq_shard.Scrub.rr_outcome <> Cfq_shard.Scrub.Clean)
          report.Cfq_shard.Scrub.rows
      in
      say "scrubbed %d pages: %d faults, %d replicas repaired, %d repair failures%s"
        report.Cfq_shard.Scrub.scrubbed_pages report.Cfq_shard.Scrub.faults_found
        report.Cfq_shard.Scrub.repairs report.Cfq_shard.Scrub.repair_failures
        (if rows = [] then ""
         else
           "\n"
           ^ String.concat "\n"
               (List.map
                  (fun r ->
                    Printf.sprintf "  shard %d replica %d: %s -> %s"
                      r.Cfq_shard.Scrub.rr_shard r.Cfq_shard.Scrub.rr_replica
                      (Cfq_shard.Scrub.outcome_name r.Cfq_shard.Scrub.rr_outcome)
                      (Cfq_shard.Manifest.health_name r.Cfq_shard.Scrub.rr_health))
                  rows))

let do_stats t ctx =
  let db = ctx.Exec.db in
  let attrs =
    Item_info.attrs ctx.Exec.s_info
    |> List.map (fun a -> a.Attr.name)
    |> String.concat ", "
  in
  let store_line =
    match t.store with
    | None -> ""
    | Some s ->
        let io = Cfq_store.Store.io s in
        Printf.sprintf "\nstore: %s (cache %d pages; pool hits %d, misses %d, evictions %d)"
          (Cfq_store.Store.path s)
          (Cfq_store.Store.cache_pages s)
          (Io_stats.pool_hits io) (Io_stats.pool_misses io)
          (Io_stats.pool_evictions io)
  in
  let manifest_line =
    match t.shard with
    | None -> ""
    | Some sh ->
        let m = Cfq_shard.Sharded.manifest sh in
        Printf.sprintf "\nsharded store: %s (%s partition, generation %d)"
          (Cfq_shard.Sharded.path sh)
          (Cfq_shard.Manifest.partition_name m.Cfq_shard.Manifest.partition)
          m.Cfq_shard.Manifest.generation
  in
  let shard_lines =
    match Tx_db.shards db with
    | None -> ""
    | Some subs ->
        let ios = Tx_db.shard_io db in
        let replica_lines k =
          match t.shard with
          | None -> ""
          | Some sh ->
              let g = (Cfq_shard.Sharded.groups sh).(k) in
              if Cfq_shard.Replica.replica_count g <= 1 then ""
              else
                String.concat ""
                  (List.init (Cfq_shard.Replica.replica_count g) (fun j ->
                       Printf.sprintf
                         "\n  replica %d: %s%s, %d read errors, %d write errors" j
                         (Cfq_shard.Manifest.health_name
                            (Cfq_shard.Replica.health g ~replica:j))
                         (if j = Cfq_shard.Replica.preferred g then " (preferred)"
                          else "")
                         (Cfq_shard.Replica.read_errors g ~replica:j)
                         (Cfq_shard.Replica.write_errors g ~replica:j)))
                ^ Printf.sprintf "\n  failovers: %d" (Cfq_shard.Replica.failovers g)
        in
        String.concat ""
          (List.init (Array.length subs) (fun k ->
               Printf.sprintf
                 "\nshard %d: %d transactions, %d pages, %d scans, %d pages read%s"
                 k (Tx_db.size subs.(k)) (Tx_db.pages subs.(k))
                 (Io_stats.scans ios.(k))
                 (Io_stats.pages_read ios.(k))
                 (replica_lines k)))
  in
  say "transactions: %d\navg length: %.2f\npages (4K): %d\nchunk runs: %d\nattributes: %s%s%s%s"
    (Tx_db.size db) (Tx_db.avg_tx_len db) (Tx_db.pages db) (Tx_db.chunk_runs db)
    (if attrs = "" then "(none)" else attrs)
    store_line manifest_line shard_lines

let split_words line =
  String.split_on_char ' ' line |> List.filter (fun w -> w <> "")

(* first word = command, rest = argument text *)
let split_command line =
  let line = String.trim line in
  match String.index_opt line ' ' with
  | None -> (String.lowercase_ascii line, "")
  | Some i ->
      ( String.lowercase_ascii (String.sub line 0 i),
        String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

let eval t line =
  let cmd, rest = split_command line in
  match cmd with
  | "" -> { output = ""; quit = false }
  | "quit" | "exit" -> { output = "bye"; quit = true }
  | "help" -> { output = help_text; quit = false }
  | "load" -> (
      match split_words rest with
      | [ path ] -> do_load t path None
      | [ path; info ] -> do_load t path (Some info)
      | _ -> say "usage: load <tx.fimi> [<items.csv>]")
  | "gen" -> (
      match List.map int_of_string_opt (split_words rest) with
      | [ Some n_tx; Some n_items ] -> do_gen t n_tx n_items 42
      | [ Some n_tx; Some n_items; Some seed ] -> do_gen t n_tx n_items seed
      | _ -> say "usage: gen <n_tx> <n_items> [seed]")
  | "set" -> (
      match split_words rest with
      | [ "strategy"; name ] -> (
          match List.assoc_opt name strategies with
          | Some s ->
              t.strategy <- s;
              say "strategy set to %s" (Plan.strategy_name s)
          | None ->
              say "unknown strategy %S; one of: %s" name
                (String.concat ", " (List.map fst strategies)))
      | [ "minconf"; v ] -> (
          match float_of_string_opt v with
          | Some f when f >= 0. && f <= 1. ->
              t.min_conf <- f;
              say "minimum confidence set to %.2f" f
          | Some _ | None -> say "minconf must be a float in [0, 1]")
      | "fault" :: args -> with_ctx t (fun ctx -> do_set_fault t ctx args)
      | [ "replicas"; r ] -> (
          match int_of_string_opt r with
          | Some n when n >= 1 ->
              t.replicas <- n;
              if n = 1 then say "replication off (1 replica per shard)"
              else
                say
                  "next sharded split keeps %d replicas per shard (mirrored \
                   ingestion, read failover)"
                  n
          | Some _ | None -> say "replicas must be an integer >= 1")
      | [ "domains"; n ] -> (
          match int_of_string_opt n with
          | Some d when d >= 1 ->
              t.mine_domains <- d;
              if d = 1 then say "counting set to sequential"
              else say "counting fans out over %d domains per scan" d
          | Some _ | None -> say "domains must be an integer >= 1")
      | [ "calibrate"; v ] -> (
          match v with
          | "on" | "true" | "1" ->
              if not t.calibrate then begin
                t.calibrate <- true;
                drop_service t
              end;
              say "calibration on: measured throughput tunes the Auto planner"
          | "off" | "false" | "0" ->
              if t.calibrate then begin
                t.calibrate <- false;
                drop_service t
              end;
              say "calibration off: the cost model keeps its fixed priors"
          | _ -> say "usage: set calibrate <on|off>")
      | [ "condense"; v ] -> (
          match v with
          | "on" | "true" | "1" ->
              if not t.condense then begin
                t.condense <- true;
                drop_service t
              end;
              say
                "condensation on: cached collections stored as closed sets, \
                 answers index-packed"
          | "off" | "false" | "0" ->
              if t.condense then begin
                t.condense <- false;
                drop_service t
              end;
              say "condensation off: the cache stores raw collections"
          | _ -> say "usage: set condense <on|off>")
      | [ "kernel"; name ] -> (
          match Cfq_mining.Counting.kernel_of_string name with
          | Some k ->
              if k <> t.kernel then begin
                t.kernel <- k;
                (* the service bakes the kernel into its config: retire it so
                   the next 'serve' picks the new one up *)
                drop_service t
              end;
              say "counting kernel set to %s" (Cfq_mining.Counting.kernel_name k)
          | None ->
              say "unknown kernel %S; one of: %s" name
                (String.concat ", "
                   (List.map fst Cfq_mining.Counting.all_kernels)))
      | _ ->
          say
            "usage: set strategy <name> | set minconf <float> | set domains <n> | \
             set kernel <name> | set calibrate <on|off> | set condense <on|off> | \
             set replicas <r> | set fault ...")
  | "explain" ->
      with_ctx t (fun ctx ->
          parse_query t ctx rest (fun (t, q) ->
              let plan = Optimizer.plan ~strategy:t.strategy ~nonneg:ctx.Exec.nonneg q in
              say "%s" (Explain.plan_to_string q plan)))
  | "advise" ->
      with_ctx t (fun ctx ->
          parse_query t ctx rest (fun (_, q) ->
              say "%s" (Format.asprintf "%a" Advisor.pp (Advisor.advise ctx q))))
  | "run" -> with_ctx t (fun ctx -> parse_query t ctx rest (fun (t, q) -> do_run t ctx q))
  | "rules" ->
      with_ctx t (fun ctx -> parse_query t ctx rest (fun (t, q) -> do_rules t ctx q))
  | "pairs" -> (
      match int_of_string_opt (String.trim rest) with
      | Some n when n > 0 -> do_pairs t n
      | Some _ | None -> say "usage: pairs <n>")
  | "export" -> (
      match split_words rest with
      | [ "pairs"; path ] -> (
          match t.last with
          | None -> say "no previous run; use 'run <query>' first"
          | Some r -> (
              match Cfq_data.Result_csv.write_pairs path r.Exec.pairs with
              | () -> say "wrote %d pairs to %s" (List.length r.Exec.pairs) path
              | exception Sys_error msg -> say "export failed: %s" msg))
      | [ "rules"; path ] -> (
          if t.last_rules = [] then say "no rules yet; use 'rules <query>' first"
          else
            match Cfq_data.Result_csv.write_rules path t.last_rules with
            | () -> say "wrote %d rules to %s" (List.length t.last_rules) path
            | exception Sys_error msg -> say "export failed: %s" msg)
      | _ -> say "usage: export pairs <file.csv> | export rules <file.csv>")
  | "profile" -> (
      match t.last with
      | None -> say "no previous run; use 'run <query>' first"
      | Some r ->
          say "S: %a@\nT: %a" Cfq_report.Profile.pp
            (Cfq_report.Profile.of_frequent r.Exec.s.Exec.frequent)
            Cfq_report.Profile.pp
            (Cfq_report.Profile.of_frequent r.Exec.t.Exec.frequent))
  | "serve" ->
      if rest = "" then say "usage: serve <queries.txt>"
      else
        with_ctx t (fun ctx ->
            match Cfq_service.Batch.run_file (service_for t ctx) rest with
            | Ok report -> say "%s" report
            | Error msg -> say "serve failed: %s" msg)
  | "cachestats" ->
      with_ctx t (fun ctx ->
          say "%s"
            (Cfq_report.Table.render
               (Cfq_service.Service.metrics_table (service_for t ctx))))
  | "open" -> (
      let usage () = say "usage: open <store.cfqdb> [<cache_pages>] [shards=N]" in
      match split_words rest with
      | path :: opts -> (
          let parse (acc, err) w =
            match acc with
            | cache, _ when String.starts_with ~prefix:"shards=" w -> (
                let v = String.sub w 7 (String.length w - 7) in
                match int_of_string_opt v with
                | Some n when n >= 1 -> ((cache, n), err)
                | Some _ | None -> (acc, Some "shards must be an integer >= 1"))
            | None, shards -> (
                match int_of_string_opt w with
                | Some c when c >= 1 -> ((Some c, shards), err)
                | Some _ | None -> (acc, Some "cache_pages must be an integer >= 1"))
            | Some _, _ -> (acc, Some "too many arguments")
          in
          match List.fold_left parse ((None, 1), None) opts with
          | _, Some msg ->
              let u = usage () in
              say "%s\n%s" msg u.output
          | (cache_pages, shards), None -> do_open_any t path cache_pages shards)
      | [] -> usage ())
  | "save" -> (
      match split_words rest with
      | [ path ] -> with_ctx t (fun ctx -> do_save ctx path)
      | _ -> say "usage: save <store.cfqdb>")
  | "ingest" -> (
      match split_words rest with
      | [ store_path; fimi_path ] -> do_ingest t store_path fimi_path
      | _ -> say "usage: ingest <store.cfqdb> <tx.fimi>")
  | "verify" -> do_verify t
  | "scrub" -> do_scrub t
  | "live" -> do_live t
  | "stats" -> with_ctx t (do_stats t)
  | other -> say "unknown command %S; try 'help'" other
