(** An interactive session for exploratory mining.

    The paper's opening argument is that mining must stop being a black box
    and become an ad-hoc, human-centered dialogue (Section 1): the user
    states constraints, inspects what the optimizer would do, refines, and
    only then pays for computation.  This module is that dialogue loop,
    decoupled from the terminal so it can be tested: each input line
    produces a textual response and an updated session state.

    Commands ([help] prints the same list):

    {v
    load <tx.fimi> [<items.csv>]   attach a database (and itemInfo table)
    gen <n_tx> <n_items> [seed]    generate a synthetic Quest database
    set strategy <name>            apriori+ | cap | optimized | sequential | fm
    set minconf <float>            rule confidence threshold
    explain <query>                show the optimizer's plan, run nothing
    advise <query>                 probe the data, recommend a strategy
    run <query>                    execute and summarise
    pairs <n>                      show n answer pairs of the last run
    rules <query>                  two-phase run: rules with metrics
    serve <queries.txt>            run a batch file through the caching service
    cachestats                     service cache / queue / ccc metrics
    stats                          database statistics
    help | quit
    v} *)

type t

(** [create ()] starts a session with no database attached. *)
val create : ?ctx:Cfq_core.Exec.ctx -> unit -> t

type response = {
  output : string;
  quit : bool;
}

(** [eval t line] interprets one input line.  Never raises: errors become
    [output] text. *)
val eval : t -> string -> response
