open Cfq_itembase
open Cfq_txdb

type params = {
  n_items : int;
  n_transactions : int;
  avg_tx_len : float;
  avg_pattern_len : float;
  n_patterns : int;
  correlation : float;
  corruption_mean : float;
  corruption_stddev : float;
}

let default_params =
  {
    n_items = 1000;
    n_transactions = 100_000;
    avg_tx_len = 10.;
    avg_pattern_len = 4.;
    n_patterns = 2000;
    correlation = 0.5;
    corruption_mean = 0.5;
    corruption_stddev = 0.1;
  }

let scaled n =
  {
    default_params with
    n_transactions = n;
    n_patterns = max 50 (n / 50);
  }

let pattern_table rng p =
  let sets = Array.make p.n_patterns Itemset.empty in
  let weights = Array.make p.n_patterns 0. in
  let corruptions = Array.make p.n_patterns 0. in
  let prev = ref [||] in
  for i = 0 to p.n_patterns - 1 do
    (* clamped to the universe: a longer pattern could never collect enough
       distinct items below *)
    let len = min p.n_items (max 1 (Dist.poisson rng ~mean:(p.avg_pattern_len -. 1.) + 1)) in
    (* fraction of items inherited from the previous pattern, exponentially
       distributed around the correlation level (AS'94, Section 4) *)
    let inherit_frac =
      if Array.length !prev = 0 then 0.
      else Float.min 1. (Dist.exponential rng ~mean:p.correlation)
    in
    let n_inherit = min (Array.length !prev) (int_of_float (inherit_frac *. float_of_int len)) in
    let inherited =
      if n_inherit = 0 then [||]
      else begin
        let idx = Dist.sample_without_replacement rng ~n:(Array.length !prev) ~k:n_inherit in
        Array.map (fun j -> !prev.(j)) idx
      end
    in
    let chosen = Hashtbl.create 8 in
    Array.iter (fun e -> Hashtbl.replace chosen e ()) inherited;
    while Hashtbl.length chosen < len do
      Hashtbl.replace chosen (Splitmix.int rng p.n_items) ()
    done;
    let items = Hashtbl.fold (fun e () acc -> e :: acc) chosen [] in
    let set = Itemset.of_list items in
    sets.(i) <- set;
    prev := Itemset.to_array set;
    weights.(i) <- Dist.exponential rng ~mean:1.;
    corruptions.(i) <-
      Float.min 0.95 (Float.max 0. (Dist.normal rng ~mean:p.corruption_mean ~stddev:p.corruption_stddev))
  done;
  let cumulative = Array.make p.n_patterns 0. in
  let acc = ref 0. in
  for i = 0 to p.n_patterns - 1 do
    acc := !acc +. weights.(i);
    cumulative.(i) <- !acc
  done;
  (sets, cumulative, corruptions)

let patterns rng p =
  let sets, cumulative, _ = pattern_table rng p in
  Array.mapi (fun i s -> (s, cumulative.(i))) sets

let generate_itemsets rng p =
  let sets, cumulative, corruptions = pattern_table rng p in
  let out = Array.make p.n_transactions Itemset.empty in
  (* a pattern put back because it did not fit is carried to the next tx *)
  let carried = ref None in
  for t = 0 to p.n_transactions - 1 do
    (* clamped to the universe: [acc] holds distinct items, so a larger
       target could never be reached *)
    let target = min p.n_items (max 1 (Dist.poisson rng ~mean:p.avg_tx_len)) in
    let acc = Hashtbl.create (2 * target) in
    let add_pattern idx =
      (* corrupt: repeatedly drop a random item while a uniform draw exceeds
         the pattern's corruption level *)
      let items = ref (Array.copy (Itemset.to_array sets.(idx))) in
      let c = corruptions.(idx) in
      let continue = ref true in
      while !continue && Array.length !items > 0 do
        if Splitmix.float rng < c then begin
          let d = Splitmix.int rng (Array.length !items) in
          let n = Array.length !items in
          let next = Array.make (n - 1) 0 in
          Array.blit !items 0 next 0 d;
          Array.blit !items (d + 1) next d (n - 1 - d);
          items := next
        end
        else continue := false
      done;
      Array.iter (fun e -> Hashtbl.replace acc e ()) !items
    in
    let continue = ref true in
    (* over a small universe the patterns can stop contributing new items
       while still "fitting"; the attempt bound keeps the loop finite *)
    let attempts = ref 0 in
    while !continue do
      incr attempts;
      let idx =
        match !carried with
        | Some i ->
            carried := None;
            i
        | None -> Dist.pick_weighted rng cumulative
      in
      let size = Itemset.cardinal sets.(idx) in
      if Hashtbl.length acc + size <= target then add_pattern idx
      else begin
        (* does not fit: half the time add anyway, else carry to next tx *)
        if Splitmix.bool rng then add_pattern idx else carried := Some idx;
        continue := false
      end;
      if Hashtbl.length acc >= target || !attempts > 8 * (target + 1) then
        continue := false
    done;
    if Hashtbl.length acc = 0 then Hashtbl.replace acc (Splitmix.int rng p.n_items) ();
    out.(t) <- Itemset.of_list (Hashtbl.fold (fun e () l -> e :: l) acc [])
  done;
  out

let generate rng p = Tx_db.create (generate_itemsets rng p)
