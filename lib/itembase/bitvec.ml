type t = {
  universe_size : int;
  words : int array;  (* 62 usable bits per word keeps everything immediate *)
}

let bits_per_word = 62

let create ~universe_size =
  if universe_size < 0 then invalid_arg "Bitvec.create";
  { universe_size; words = Array.make ((universe_size + bits_per_word - 1) / bits_per_word) 0 }

let universe_size t = t.universe_size

let check t i =
  if i < 0 || i >= t.universe_size then invalid_arg "Bitvec: item out of range"

let add t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let remove t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl b)

let mem t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) land (1 lsl b) <> 0

(* SWAR popcount.  The masks are built by shifting 32-bit halves so every
   literal fits OCaml's 63-bit immediates; the final byte-sum multiply only
   needs the top byte, and with <= 62 set bits it never overflows into the
   missing 64th bit. *)
let m1 = 0x55555555 lor (0x55555555 lsl 32)
let m2 = 0x33333333 lor (0x33333333 lsl 32)
let m4 = 0x0f0f0f0f lor (0x0f0f0f0f lsl 32)
let h01 = 0x01010101 lor (0x01010101 lsl 32)

let popcount x =
  let x = x - ((x lsr 1) land m1) in
  let x = (x land m2) + ((x lsr 2) land m2) in
  let x = (x + (x lsr 4)) land m4 in
  (x * h01) lsr 56

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words
let is_empty t = Array.for_all (fun w -> w = 0) t.words

let same_universe a b =
  if a.universe_size <> b.universe_size then invalid_arg "Bitvec: universe mismatch"

let map2 f a b =
  same_universe a b;
  { universe_size = a.universe_size; words = Array.map2 f a.words b.words }

let union = map2 ( lor )
let inter = map2 ( land )
let diff = map2 (fun x y -> x land lnot y)

let subset a b =
  same_universe a b;
  let ok = ref true in
  Array.iteri (fun i w -> if w land lnot b.words.(i) <> 0 then ok := false) a.words;
  !ok

let disjoint a b =
  same_universe a b;
  let ok = ref true in
  Array.iteri (fun i w -> if w land b.words.(i) <> 0 then ok := false) a.words;
  !ok

let equal a b =
  same_universe a b;
  a.words = b.words

let inter_cardinal a b =
  same_universe a b;
  let acc = ref 0 in
  Array.iteri (fun i w -> acc := !acc + popcount (w land b.words.(i))) a.words;
  !acc

let copy t = { t with words = Array.copy t.words }

let blit ~src ~dst =
  same_universe src dst;
  Array.blit src.words 0 dst.words 0 (Array.length src.words)

let inter_inplace dst src =
  same_universe dst src;
  let dw = dst.words and sw = src.words in
  for i = 0 to Array.length dw - 1 do
    Array.unsafe_set dw i (Array.unsafe_get dw i land Array.unsafe_get sw i)
  done

let iter f t =
  for i = 0 to t.universe_size - 1 do
    let w = i / bits_per_word and b = i mod bits_per_word in
    if t.words.(w) land (1 lsl b) <> 0 then f i
  done

let of_itemset ~universe_size s =
  let t = create ~universe_size in
  Itemset.iter (fun i -> add t i) s;
  t

let to_itemset t =
  let out = ref [] in
  for i = t.universe_size - 1 downto 0 do
    if mem t i then out := i :: !out
  done;
  Itemset.of_list !out

let pp ppf t = Itemset.pp ppf (to_itemset t)
