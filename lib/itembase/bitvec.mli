(** Fixed-universe bit vectors.

    A dense alternative to {!Itemset} for hot inner loops over a known item
    universe: membership, intersection and subset tests are word-parallel.
    Conversions to and from {!Itemset} are provided; the levelwise engines
    keep the sorted-array representation (whose iteration order they need),
    while bit vectors serve as transaction masks and scratch sets. *)

type t

(** [create ~universe_size] is the empty set over [0 .. universe_size-1]. *)
val create : universe_size:int -> t

val universe_size : t -> int

val of_itemset : universe_size:int -> Itemset.t -> t
val to_itemset : t -> Itemset.t

(** [add t i] / [remove t i] mutate in place.
    Raises [Invalid_argument] out of range. *)
val add : t -> Item.t -> unit

val remove : t -> Item.t -> unit
val mem : t -> Item.t -> bool

(** Population count. *)
val cardinal : t -> int

val is_empty : t -> bool

(** Binary operations allocate a fresh vector; both arguments must share a
    universe size. *)
val union : t -> t -> t

val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool
val disjoint : t -> t -> bool
val equal : t -> t -> bool

(** [inter_cardinal a b] = [cardinal (inter a b)] without allocating. *)
val inter_cardinal : t -> t -> int

val copy : t -> t

(** [blit ~src ~dst] overwrites [dst] with [src]'s bits (same universe). *)
val blit : src:t -> dst:t -> unit

(** [inter_inplace dst src] sets [dst := dst ∧ src] without allocating —
    the scratch-buffer primitive of multi-way popcount intersections. *)
val inter_inplace : t -> t -> unit

(** Usable bits per word of the packed representation (62).  Writers that
    partition a vector across domains must align their ranges to this so no
    word is shared between two writers. *)
val bits_per_word : int

(** [popcount w] is the number of set bits of one raw word (word-parallel,
    no loop). *)
val popcount : int -> int
val iter : (Item.t -> unit) -> t -> unit
val pp : Format.formatter -> t -> unit
