type 'a state =
  | Pending
  | Done of 'a
  | Raised of exn

type 'a promise = {
  p_mutex : Mutex.t;
  p_cond : Condition.t;
  mutable state : 'a state;
}

(* a queued job; [started] and [cancelled] are read and written only under
   the pool mutex, so a job is observed in exactly one of three states:
   waiting (neither), running (started), or dead (cancelled, never run) *)
type entry = {
  run : unit -> unit;
  mutable started : bool;
  mutable cancelled : bool;
}

type t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  jobs : entry Queue.t;
  capacity : int;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

let worker_loop t =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.jobs && not t.stopping do
      Condition.wait t.nonempty t.mutex
    done;
    match Queue.take_opt t.jobs with
    | Some entry ->
        if entry.cancelled then begin
          Mutex.unlock t.mutex;
          loop ()
        end
        else begin
          entry.started <- true;
          Mutex.unlock t.mutex;
          entry.run ();
          loop ()
        end
    | None ->
        (* stopping and drained *)
        Mutex.unlock t.mutex
  in
  loop ()

let create ?domains ?(queue_capacity = 1024) () =
  let domains =
    match domains with
    | Some d -> max 1 d
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  let t =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      jobs = Queue.create ();
      capacity = max 1 queue_capacity;
      stopping = false;
      workers = [];
    }
  in
  t.workers <- List.init domains (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = List.length t.workers

let queue_depth t =
  Mutex.lock t.mutex;
  let n = Queue.length t.jobs in
  Mutex.unlock t.mutex;
  n

let fulfill p outcome =
  Mutex.lock p.p_mutex;
  p.state <- outcome;
  Condition.broadcast p.p_cond;
  Mutex.unlock p.p_mutex

let job_of promise job () =
  match job () with
  | v -> fulfill promise (Done v)
  | exception e -> fulfill promise (Raised e)

let submit_entry t job =
  let promise = { p_mutex = Mutex.create (); p_cond = Condition.create (); state = Pending } in
  Mutex.lock t.mutex;
  if t.stopping then begin
    Mutex.unlock t.mutex;
    Cfq_txdb.Cfq_error.raise_error Cfq_txdb.Cfq_error.Overload
  end
  else if Queue.length t.jobs >= t.capacity then begin
    Mutex.unlock t.mutex;
    None
  end
  else begin
    let entry = { run = job_of promise job; started = false; cancelled = false } in
    Queue.add entry t.jobs;
    Condition.signal t.nonempty;
    Mutex.unlock t.mutex;
    Some (promise, entry)
  end

let submit t job = Option.map fst (submit_entry t job)

(* [true] when the job was withdrawn before any worker picked it up; a
   cancelled entry stays queued until a worker pops and skips it *)
let try_cancel t entry =
  Mutex.lock t.mutex;
  let cancelled =
    if entry.started then false
    else begin
      entry.cancelled <- true;
      true
    end
  in
  Mutex.unlock t.mutex;
  cancelled

let is_pending p = match p.state with Pending -> true | Done _ | Raised _ -> false

let await p =
  Mutex.lock p.p_mutex;
  while is_pending p do
    Condition.wait p.p_cond p.p_mutex
  done;
  let state = p.state in
  Mutex.unlock p.p_mutex;
  match state with
  | Done v -> v
  | Raised e -> raise e
  | Pending -> assert false

let is_stopped t =
  Mutex.lock t.mutex;
  let s = t.stopping in
  Mutex.unlock t.mutex;
  s

let run ?(on_fallback = fun () -> ()) t job =
  let inline () =
    on_fallback ();
    job ()
  in
  match submit t job with
  | Some p -> await p
  | None -> inline ()
  | exception Cfq_txdb.Cfq_error.Error Cfq_txdb.Cfq_error.Overload -> inline ()

let shutdown t =
  Mutex.lock t.mutex;
  if t.stopping then
    (* already shut down: a documented no-op *)
    Mutex.unlock t.mutex
  else begin
    t.stopping <- true;
    Condition.broadcast t.nonempty;
    let workers = t.workers in
    t.workers <- [];
    Mutex.unlock t.mutex;
    List.iter Domain.join workers
  end

(* ------------------------------------------------------------------ *)
(* work-sharing parallel regions *)

type helper =
  | Spawned of unit Domain.t
  | Borrowed of (unit promise * entry)

let fan_out ?pool ~domains ~n_tasks ~init ~work () =
  (* never stand up more participants than there are tasks: the surplus
     would spawn (or occupy a pool worker), find the counter drained, and
     contribute only an empty accumulator to the merge *)
  let domains = max 1 (min domains n_tasks) in
  if domains = 1 || n_tasks <= 0 then begin
    (* degraded region: the caller does everything, nothing is spawned or
       borrowed — bit-for-bit the sequential path *)
    let acc = init () in
    for i = 0 to n_tasks - 1 do
      work acc i
    done;
    [ acc ]
  end
  else begin
    let next = Atomic.make 0 in
    let stop = Atomic.make false in
    let failure = Atomic.make None in
    (* accumulator slots: caller is slot 0, helpers 1..domains-1; filled by
       whichever participant owns the slot, collected in slot order *)
    let accs = Array.make domains None in
    let participant slot () =
      let acc = init () in
      accs.(slot) <- Some acc;
      try
        let rec grab () =
          if not (Atomic.get stop) then begin
            let i = Atomic.fetch_and_add next 1 in
            if i < n_tasks then begin
              work acc i;
              grab ()
            end
          end
        in
        grab ()
      with e ->
        (* first failure wins; poison the region so other participants
           stop grabbing chunks, and re-raise from the caller below *)
        ignore (Atomic.compare_and_set failure None (Some e) : bool);
        Atomic.set stop true
    in
    let helpers =
      List.init (domains - 1) (fun k ->
          let slot = k + 1 in
          match pool with
          | None -> Some (Spawned (Domain.spawn (participant slot)))
          | Some p -> (
              (* borrow an idle worker: if the queue refuses (full) or the
                 pool is shut down, simply run with fewer participants *)
              match submit_entry p (participant slot) with
              | Some (promise, entry) -> Some (Borrowed (promise, entry))
              | None -> None
              | exception Cfq_txdb.Cfq_error.Error Cfq_txdb.Cfq_error.Overload -> None))
    in
    participant 0 ();
    List.iter
      (function
        | None -> ()
        | Some (Spawned d) -> Domain.join d
        | Some (Borrowed (promise, entry)) -> (
            (* a helper that no worker picked up is withdrawn — the caller
               already drained the chunk counter; one that did start is
               awaited (it terminates as soon as the chunks run out) *)
            match pool with
            | Some p when try_cancel p entry -> ()
            | _ -> await promise))
      helpers;
    match Atomic.get failure with
    | Some e -> raise e
    | None ->
        List.filter_map
          (fun slot -> slot)
          (Array.to_list accs)
  end
