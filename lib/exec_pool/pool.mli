(** A fixed pool of OCaml 5 domains draining a bounded work queue, plus a
    work-sharing primitive ({!fan_out}) for intra-query parallel regions.

    Jobs are closures; submitting returns a promise that [await] blocks on.
    The queue is bounded: when [queue_capacity] jobs are already waiting,
    {!submit} refuses instead of queueing unboundedly (admission control for
    the serving layer).

    Exceptions raised by a job are captured and re-raised by [await] in the
    caller, so a crashing query never takes a worker domain down. *)

type t

type 'a promise

(** [create ~domains ~queue_capacity ()] spawns [domains] worker domains
    (at least 1; default [Domain.recommended_domain_count () - 1], at least
    1) with a queue of at most [queue_capacity] waiting jobs (default
    1024). *)
val create : ?domains:int -> ?queue_capacity:int -> unit -> t

(** Number of worker domains. *)
val size : t -> int

(** Jobs currently waiting (excludes running ones). *)
val queue_depth : t -> int

(** The pool has been shut down. *)
val is_stopped : t -> bool

(** [submit t job] enqueues [job]; [None] when the queue is full.
    Submitting to a shut-down pool raises
    [Cfq_error.Error Cfq_error.Overload] — callers that outlive the pool
    get a typed error, not a silent drop. *)
val submit : t -> (unit -> 'a) -> 'a promise option

(** [run t job] is [submit] that falls back to running [job] in the calling
    domain when the queue is full or the pool is shut down, so it always
    yields a result.  [on_fallback] is invoked (before [job]) exactly when
    the fallback path is taken, letting callers count in-caller
    executions. *)
val run : ?on_fallback:(unit -> unit) -> t -> (unit -> 'a) -> 'a

(** [await p] blocks until the job finishes, returning its result or
    re-raising its exception. *)
val await : 'a promise -> 'a

(** Drain nothing further: running jobs finish, queued jobs are still
    executed, then the workers exit and are joined.  Calling [shutdown] a
    second time is a no-op. *)
val shutdown : t -> unit

(** [fan_out ?pool ~domains ~n_tasks ~init ~work ()] runs tasks
    [0 .. n_tasks-1] across up to [domains] participants sharing an atomic
    task counter: each participant builds a private accumulator with [init]
    and repeatedly grabs the next unclaimed index, calling [work acc i].
    Returns the accumulators of every participant that ran (caller's first).

    The calling domain always participates.  The [domains - 1] helpers are
    either fresh domains ([pool] absent) or jobs {e borrowed} from [pool] —
    the nested case where the caller itself already runs on a pool worker
    and must not oversubscribe the machine.  A borrowed helper that no idle
    worker picks up before the region ends is withdrawn unrun, so a busy
    pool degrades smoothly towards the caller doing all the work; a full or
    shut-down pool likewise just means fewer participants, never an error.

    Participants are capped at [n_tasks]: a region never stands up a
    helper that could only find the counter drained.  With [domains <= 1],
    [n_tasks <= 1] or [n_tasks = 0] nothing is spawned or borrowed and the
    caller runs every task in index order — bit-for-bit the sequential
    path.

    If any participant raises, the region is poisoned (others stop grabbing
    tasks after their current one), all helpers are joined, and the first
    recorded exception is re-raised in the caller.  Task execution order and
    the task→participant assignment are nondeterministic, so [work] must
    only touch its own accumulator and immutable shared state; determinism
    of the combined result is the merger's job. *)
val fan_out :
  ?pool:t ->
  domains:int ->
  n_tasks:int ->
  init:(unit -> 'acc) ->
  work:('acc -> int -> unit) ->
  unit ->
  'acc list
