(** The CAP levelwise mining engine (Ng, Lakshmanan, Han & Pang,
    SIGMOD'98), extended with the hooks this paper's optimizer needs.

    CAP pushes a compiled constraint {!Cfq_constr.Bundle} into an
    Apriori-style levelwise computation:

    {ul
    {- the MGF {e universe filter} restricts the item base before level 1
       (generate-only, at most one constraint check per item);}
    {- MGF {e required witness groups} switch candidate generation to
       witness-extension mode, so sets without a witness are never
       counted;}
    {- {e anti-monotone} checks are applied to candidates at generation
       time;}
    {- deferred constraints are left to the caller to check on the
       results.}}

    The engine is exposed as a resumable state machine
    ([next_candidates] / [absorb]) so that two lattices can be {e dovetailed}
    with shared scans, constraints can be injected after level 1 (the
    quasi-succinct reduction), and an external level filter (the
    [Jmax]/[V^k] pruning of Section 5.2) can be installed; [run] is the
    standalone driver. *)

open Cfq_itembase
open Cfq_txdb
open Cfq_constr

type t

(** [create db info ~minsup bundle] starts a run.  [minsup] is an absolute
    support count; [max_level] optionally caps the lattice depth. *)
val create : Tx_db.t -> Item_info.t -> ?max_level:int -> minsup:int -> Bundle.t -> t

val counters : t -> Counters.t
val stats : t -> Level_stats.t
val bundle : t -> Bundle.t
val db : t -> Tx_db.t

(** Last completed level. *)
val level : t -> int

(** Frequent items passing the universe filter (valid after level 1). *)
val frequent_items : t -> Item.t array

(** [set_extra_filter t f] installs an additional admission predicate on
    candidates (e.g. [sum(CS.A) ≤ V^k]); it must be sound in the
    anti-monotone sense for completeness of deeper levels. *)
val set_extra_filter : t -> (Itemset.t -> bool) -> unit

(** [add_constraints ~nonneg t cs] injects further 1-var constraints —
    the reduction step after level 1.  Must be called before the level-2
    candidates are generated. *)
val add_constraints : nonneg:bool -> t -> One_var.t list -> unit

(** [next_candidates t] generates the next level's candidates, or [None]
    when the lattice is exhausted.  Must be followed by [absorb]. *)
val next_candidates : t -> Itemset.t array option

(** [absorb t counts] consumes supports aligned with the candidates from
    the preceding [next_candidates] and returns the new frequent level.
    [kernel] (default ["trie"]) and [counted] (default the candidate count)
    annotate the {!Level_stats} row with the counting kernel that produced
    the supports and how many candidates actually reached it. *)
val absorb : ?kernel:string -> ?counted:int -> t -> int array -> Frequent.entry array

(** [run t io] drives the state machine to exhaustion with one scan per
    level, returning all counted frequent sets.  [par] parallelises every
    counting pass (see {!Counting.par}); [session] attaches an adaptive
    kernel session (see {!Counting.session}).  Answers and counters are
    identical to the sequential trie run in either case. *)
val run : ?par:Counting.par -> ?session:Counting.session -> t -> Io_stats.t -> Frequent.t

(** Results accumulated so far. *)
val result : t -> Frequent.t
