open Cfq_itembase
open Cfq_txdb

type t = {
  tid_lists : int array array;
  n_transactions : int;
}

let build db io ~universe_size =
  let bufs = Array.make universe_size [] in
  Tx_db.iter_scan db io (fun tx ->
      Itemset.iter
        (fun i -> bufs.(i) <- tx.Transaction.tid :: bufs.(i))
        tx.Transaction.items);
  (* tids were consed in scan order: reverse to sort ascending *)
  { tid_lists = Array.map (fun l -> Array.of_list (List.rev l)) bufs; n_transactions = Tx_db.size db }

let n_transactions t = t.n_transactions

let tids t item =
  if item >= 0 && item < Array.length t.tid_lists then Array.copy t.tid_lists.(item)
  else [||]

let intersect a b =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make (min na nb) 0 in
  let rec loop ia ib w =
    if ia >= na || ib >= nb then w
    else
      let x = a.(ia) and y = b.(ib) in
      if x < y then loop (ia + 1) ib w
      else if y < x then loop ia (ib + 1) w
      else begin
        out.(w) <- x;
        loop (ia + 1) (ib + 1) (w + 1)
      end
  in
  let n = loop 0 0 0 in
  if n = Array.length out then out else Array.sub out 0 n

let tidlist_of t s =
  let lists =
    Itemset.fold
      (fun acc i ->
        (if i >= 0 && i < Array.length t.tid_lists then t.tid_lists.(i) else [||]) :: acc)
      [] s
  in
  match List.sort (fun a b -> compare (Array.length a) (Array.length b)) lists with
  | [] -> None
  | shortest :: rest -> Some (List.fold_left intersect shortest rest)

let support t s =
  match tidlist_of t s with
  | None -> t.n_transactions
  | Some tids -> Array.length tids

type scratch = int array

let scratch t = Array.make (max 1 t.n_transactions) 0

(* Intersect the first [alen] entries of [a] with [b] into [out]; [out] may
   alias [a] (the write index never overtakes the read index). *)
let intersect_into a alen b out =
  let nb = Array.length b in
  let rec loop ia ib w =
    if ia >= alen || ib >= nb then w
    else
      let x = a.(ia) and y = b.(ib) in
      if x < y then loop (ia + 1) ib w
      else if y < x then loop ia (ib + 1) w
      else begin
        out.(w) <- x;
        loop (ia + 1) (ib + 1) (w + 1)
      end
  in
  loop 0 0 0

let support_into t buf s =
  let lists =
    Itemset.fold
      (fun acc i ->
        (if i >= 0 && i < Array.length t.tid_lists then t.tid_lists.(i) else [||]) :: acc)
      [] s
  in
  match List.sort (fun a b -> compare (Array.length a) (Array.length b)) lists with
  | [] -> t.n_transactions
  | [ only ] -> Array.length only
  | shortest :: rest ->
      let len = Array.length shortest in
      Array.blit shortest 0 buf 0 len;
      List.fold_left (fun alen l -> intersect_into buf alen l buf) len rest

let supports t cands =
  let buf = scratch t in
  Array.map (support_into t buf) cands

let mine t ~minsup =
  let n = Array.length t.tid_lists in
  let by_level = Hashtbl.create 16 in
  let record set tids =
    let k = Itemset.cardinal set in
    let cur = Option.value ~default:[] (Hashtbl.find_opt by_level k) in
    Hashtbl.replace by_level k ({ Frequent.set; support = Array.length tids } :: cur)
  in
  (* depth-first: extend [set] (with tid list [tids]) by items > last *)
  let rec grow set tids last =
    for i = last + 1 to n - 1 do
      let next = intersect tids t.tid_lists.(i) in
      if Array.length next >= minsup then begin
        let set' = Itemset.add i set in
        record set' next;
        grow set' next i
      end
    done
  in
  for i = 0 to n - 1 do
    if Array.length t.tid_lists.(i) >= minsup then begin
      let set = Itemset.singleton i in
      record set t.tid_lists.(i);
      grow set t.tid_lists.(i) i
    end
  done;
  let max_k = Hashtbl.fold (fun k _ acc -> max k acc) by_level 0 in
  Frequent.of_levels
    (List.init max_k (fun i ->
         let entries =
           Array.of_list (Option.value ~default:[] (Hashtbl.find_opt by_level (i + 1)))
         in
         Array.sort (fun a b -> Itemset.compare a.Frequent.set b.Frequent.set) entries;
         entries))
