(** Support counting passes over the transaction database.

    [count_shared] is the dovetailing primitive (Section 5.2): several
    candidate families — typically one for the [S] lattice and one for the
    [T] lattice — are counted in a {e single} scan, so the I/O cost of the
    pass is shared between them.

    {2 Adaptive kernels}

    A pass does not have to walk a trie.  With a {!session} attached, each
    pass picks a counting kernel per family from a small cost model over
    the candidate geometry (see doc/COUNTING.md):

    {ul
    {- {e trie} — the general flat-array trie walk, any cardinality;}
    {- {e direct2} — {!Direct2}: a triangular count array over the ranks of
       the level-2 candidates' items, no trie;}
    {- {e vertical} — {!Tid_bitmaps}: word-packed per-item tid bitvectors
       materialised by one charged scan, after which every deeper pass is a
       popcount intersection with {e zero} further I/O;}
    {- {e projection} — {!Projection}: an in-memory store shrunk to the
       live items and long-enough transactions, scanned (and charged) in
       place of the database.}}

    Contract: the counts, and therefore every frequent-set collection and
    answer downstream, are byte-identical to the trie path for every
    kernel, domain count and backend.  The ccc support-counted charge is
    per candidate and kernel-independent.  Logical page charges may
    legitimately differ — a projection scan charges its reduced footprint,
    a bitmap build charges one scan and bitmap-answered passes charge
    nothing — and only in those documented ways.  When faults are
    installed on the database, every pass is pinned to the trie kernel so
    the page/fault walk of the paper's I/O model is preserved exactly.

    Every pass can run multi-core via {!par}: the coordinator charges and
    validates one logical scan, then page-aligned chunks fan out to a fixed
    set of domains (see {!Cfq_exec_pool.Pool.fan_out}), each counting into
    private per-family accumulators merged deterministically at the end
    (word-aligned row ranges for bitmap builds).  The answers, ccc
    counters, I/O charges, and fault behaviour are identical to the
    sequential pass for every [domains] value.

    {2 Count distribution}

    Over a sharded composite ({!Tx_db.of_shards} with two or more shards)
    each pass fans out per shard instead of per chunk: every shard counts
    the full candidate set against its own slice (with its own kernel
    choice, bitmaps and projections via a per-shard sub-session), and the
    coordinator sums the partial supports — supports are additive over a
    partition, so the totals are exact.  The caller is charged one logical
    composite scan per pass (skipped only when {e every} shard answers
    from covering bitmaps), each shard's local I/O lands in its
    {!Tx_db.shard_io} sink, and {!pass_counts} aggregates the shard
    sub-sessions.  With faults installed — on the composite or on any
    shard — passes are pinned to the trie kernel and shards run in index
    order, so the injector draw sequence is deterministic; shard-local
    error pages are translated to composite coordinates. *)

open Cfq_itembase
open Cfq_txdb

(** How a counting pass parallelises.  [domains <= 1] is the sequential
    path, bit for bit.  With [domains > 1], up to [domains - 1] helpers are
    either fresh domains ([pool = None]) or borrowed idle workers of
    [pool] — the nested case where the query already runs on a service
    worker and must not oversubscribe the machine.

    [min_rows_per_domain] is the work floor of a parallel region: a pass
    over fewer than [min_rows_per_domain] rows (or candidates) per
    participant runs with fewer participants, down to sequential — fanning
    a few hundred rows out costs more than the rows.  Results are
    bit-identical at every effective width; tests that want the parallel
    merge exercised on tiny databases pass [~min_rows_per_domain:1]. *)
type par = {
  domains : int;
  pool : Cfq_exec_pool.Pool.t option;
  min_rows_per_domain : int;
}

(** [par domains] with [pool = None] and the default work floor
    ({!default_min_rows_per_domain}). *)
val par : ?pool:Cfq_exec_pool.Pool.t -> ?min_rows_per_domain:int -> int -> par

(** 2048 rows per participant. *)
val default_min_rows_per_domain : int

(** [{ domains = 1; pool = None; min_rows_per_domain = 2048 }] — the
    default. *)
val sequential : par

(** {2 Kernel plans and sessions} *)

type kernel =
  | Auto  (** cost-model choice per pass, plus shrinking projections *)
  | Trie  (** always the trie — the paper-faithful legacy path *)
  | Direct2  (** direct level-2 arrays where applicable, trie elsewhere *)
  | Vertical  (** switch to tid bitmaps at the first opportunity *)

val kernel_name : kernel -> string
val kernel_of_string : string -> kernel option

(** All kernels a CLI/shell can offer, with their names. *)
val all_kernels : (string * kernel) list

type plan = {
  kernel : kernel;
  budget_words : int;
      (** memory budget, in words, for any auxiliary structure (direct2
          cells, bitmaps, projections) *)
  projection : bool;  (** allow shrinking transaction projections *)
  vertical_min_card : int;
      (** [Auto] switches to bitmaps once every candidate of the pass has
          at least this cardinality (default 3) *)
  direct2_max_sparsity : int;
      (** admit direct2 only when cells <= sparsity * candidates *)
  calibrate : bool;
      (** feed measured pass timings back into the session's
          {!calibration} record; off, the record keeps its machine-profile
          priors and every planning decision is deterministic *)
}

(** [Auto], 4M words, projections on, switchover at cardinality 3,
    sparsity 16, calibration on. *)
val default_plan : plan

(** [plan_of_kernel k] is {!default_plan} pinned to [k]; fixed kernels get
    [projection = false] so their I/O profile isolates the kernel itself
    ([Auto] keeps projections on). *)
val plan_of_kernel : kernel -> plan

(** {2 Calibration}

    Measured per-kernel unit costs — seconds per item occurrence scanned
    (trie, direct2, bitmap build) and seconds per candidate-word
    intersected (probes) — EMA-smoothed over a session's passes, with the
    committed bench machine profile as the prior.  The Auto planner's
    admission cutoffs read the record; with [plan.calibrate = false] it
    never moves, so plans are reproducible.  A record may be shared across
    the sessions of a service (updates are mutex-guarded); shard
    sub-sessions always keep private records, since shards fan out in
    parallel. *)

type calibration

val create_calibration : unit -> calibration

(** Observations folded in so far (0 = priors only). *)
val calibration_samples : calibration -> int

(** One-line [samples=... trie=...ns/occ ...] summary for notes. *)
val describe_calibration : calibration -> string

(** Pure planner predicates (unit-tested cutoffs). *)

val direct2_admissible : plan -> n_cands:int -> n_cells:int -> bool
val vertical_admissible : plan -> n_live_items:int -> n_rows:int -> min_card:int -> bool
val projection_admissible : plan -> est_words:int -> bool

(** [vertical_cold_admissible] gates the {e charged} bitmap build: on top
    of {!vertical_admissible}, the estimated build-plus-probe time (from
    the calibration record) must not exceed the trie walk it displaces —
    the guard against standing bitmaps up when huge candidate sets over
    few rows make the probes alone slower than the scan. *)
val vertical_cold_admissible :
  plan ->
  calibration ->
  n_live_items:int ->
  n_rows:int ->
  min_card:int ->
  avg_len:float ->
  n_cands:int ->
  bool

(** A session carries the adaptive state of one mining run over one
    database: the materialised bitmaps, the current projection, and the
    per-kernel pass counters.  Sessions are not thread-safe; use one per
    run. *)
type session

(** [create_session ?plan ?calibration ()] — [calibration] lets a service
    share one measured-cost record across many sessions; absent, the
    session gets a fresh record seeded with the priors. *)
val create_session : ?plan:plan -> ?calibration:calibration -> unit -> session

val session_plan : session -> plan
val session_calibration : session -> calibration

(** Kernel labels of the families of the most recent pass (aligned with
    the [families] argument), e.g. ["direct2"; "trie"]. *)
val last_kernels : session -> string list

(** Combined label of the most recent pass ("trie" before any pass). *)
val last_kernel : session -> string

type pass_counts = {
  trie_passes : int;
  direct2_passes : int;
  vertical_passes : int;
  projected_scans : int;  (** scans answered from a projection *)
  bitmap_builds : int;
}

val pass_counts : session -> pass_counts

(** One-line summary of {!pass_counts} for notes and reports. *)
val describe : session -> string

(** {2 Counting passes} *)

(** [count_level db io counters cands] counts all candidates in one pass and
    charges [Array.length cands] to the support-counted ccc counter. *)
val count_level :
  ?par:par ->
  ?session:session ->
  Tx_db.t ->
  Io_stats.t ->
  Counters.t ->
  Itemset.t array ->
  int array

(** [count_shared db io families] counts each family in the same pass;
    each family carries its own ccc counters.  When every family is empty
    the pass is skipped entirely and no I/O is charged.  Without a
    [session] this is exactly the trie path. *)
val count_shared :
  ?par:par ->
  ?session:session ->
  Tx_db.t ->
  Io_stats.t ->
  (Counters.t * Itemset.t array) list ->
  int array list
