(** Support counting passes over the transaction database.

    [count_shared] is the dovetailing primitive (Section 5.2): several
    candidate families — typically one for the [S] lattice and one for the
    [T] lattice — are counted in a {e single} scan, so the I/O cost of the
    pass is shared between them.

    Every pass can run multi-core via {!par}: the coordinator charges and
    validates one logical scan, then page-aligned chunks fan out to a fixed
    set of domains (see {!Cfq_exec_pool.Pool.fan_out}), each counting into
    private per-family arrays merged deterministically at the end.  The
    answers, ccc counters, I/O charges, and fault behaviour are identical
    to the sequential pass for every [domains] value. *)

open Cfq_itembase
open Cfq_txdb

(** How a counting pass parallelises.  [domains <= 1] is the sequential
    path, bit for bit.  With [domains > 1], up to [domains - 1] helpers are
    either fresh domains ([pool = None]) or borrowed idle workers of
    [pool] — the nested case where the query already runs on a service
    worker and must not oversubscribe the machine. *)
type par = {
  domains : int;
  pool : Cfq_exec_pool.Pool.t option;
}

(** [{ domains = 1; pool = None }] — the default. *)
val sequential : par

(** [count_level db io counters cands] counts all candidates in one scan and
    charges [Array.length cands] to the support-counted ccc counter. *)
val count_level :
  ?par:par -> Tx_db.t -> Io_stats.t -> Counters.t -> Itemset.t array -> int array

(** [count_shared db io families] counts each family in the same scan;
    each family carries its own ccc counters.  When every family is empty
    the scan is skipped entirely and no I/O is charged. *)
val count_shared :
  ?par:par ->
  Tx_db.t ->
  Io_stats.t ->
  (Counters.t * Itemset.t array) list ->
  int array list
