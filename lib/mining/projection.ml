open Cfq_txdb

type t = {
  txs : int array array;
  live : bool array;  (* sized universe_size; items beyond are dead *)
  min_len : int;
  pages : int;
  words : int;
}

let make ~page_model ~universe_size ~live ~min_len txs =
  let live_mask = Array.make universe_size false in
  Array.iter (fun i -> if i < universe_size then live_mask.(i) <- true) live;
  let sizes = Array.map Array.length txs in
  let pages = Page_model.pages_for page_model sizes in
  let words = Array.fold_left (fun acc s -> acc + s + 1) 0 sizes in
  { txs; live = live_mask; min_len; pages; words }

let tuples t = Array.length t.txs
let pages t = t.pages
let min_len t = t.min_len
let words t = t.words

let covers t ~items ~min_card =
  min_card >= t.min_len
  && Array.for_all (fun i -> i < Array.length t.live && t.live.(i)) items

let charge_scan t io = Io_stats.record_scan io ~pages:t.pages ~tuples:(tuples t)

let iter_range t ~lo ~hi f =
  for i = lo to hi do
    f t.txs.(i)
  done

let chunks t ~max_chunks =
  let n = tuples t in
  if n = 0 then []
  else begin
    let k = max 1 (min max_chunks n) in
    let out = ref [] in
    let per = n / k and rem = n mod k in
    let lo = ref 0 in
    for c = 0 to k - 1 do
      let len = per + if c < rem then 1 else 0 in
      if len > 0 then out := (!lo, !lo + len - 1) :: !out;
      lo := !lo + len
    done;
    List.rev !out
  end
