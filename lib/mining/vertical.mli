(** Vertical (tid-list) support counting — an Eclat-style alternative
    substrate to the horizontal trie counting.

    One scan materialises, for every item, the sorted list of transaction
    ids containing it; the support of any itemset is then the length of the
    intersection of its items' tid lists, with no further database access.
    Useful for ad-hoc support probes (the CLI, rule metrics over few sets)
    and as an independent oracle in tests; the levelwise engines keep the
    horizontal representation, which the paper's I/O model is built
    around. *)

open Cfq_itembase
open Cfq_txdb

type t

(** [build db io ~universe_size] runs the one materialisation scan. *)
val build : Tx_db.t -> Io_stats.t -> universe_size:int -> t

val n_transactions : t -> int

(** [tids t item] is the sorted tid array of one item ([[||]] for items
    never seen). *)
val tids : t -> Item.t -> int array

(** [support t s] intersects the tid lists; the empty set has support
    [n_transactions]. *)
val support : t -> Itemset.t -> int

(** Caller-owned intersection buffer (sized to the database), so batched
    probes allocate nothing per candidate. *)
type scratch

val scratch : t -> scratch

(** [support_into t scratch s] is {!support} computed in-place in [scratch]
    — the multi-way intersection ping-pongs inside the one buffer. *)
val support_into : t -> scratch -> Itemset.t -> int

(** [supports t cands] batches {!support_into} with a single scratch buffer
    shared across the whole batch. *)
val supports : t -> Itemset.t array -> int array

(** [mine t ~minsup] runs a depth-first Eclat over the tid lists and
    returns all frequent itemsets — an independent mining implementation
    used to cross-check Apriori. *)
val mine : t -> minsup:int -> Frequent.t
