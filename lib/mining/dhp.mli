(** DHP — the hash-based candidate filter of Park, Chen & Yu (SIGMOD'95),
    reference [16] of the paper.

    While counting level 1, every 2-subset of every transaction is hashed
    into a small table of bucket counters; a pair can only be frequent if
    its bucket total reaches the threshold, so most of the quadratic
    level-2 candidate set is discarded before it is ever counted.  Levels
    ≥ 3 proceed as in Apriori. *)

open Cfq_txdb

type outcome = {
  frequent : Frequent.t;
  c2_plain : int;  (** level-2 candidates Apriori would have counted *)
  c2_filtered : int;  (** ... and how many survive the hash filter *)
  stats : Level_stats.t;
      (** per-level rows; the level-2 row has [candidates = c2_plain] and
          [counted = c2_filtered], making the bucket filter's effect visible
          to reports and the kernel cost model *)
}

(** [mine db io ~minsup ~universe_size ~n_buckets] — exact result, one scan
    per level (the bucket pass shares the level-1 scan). *)
val mine :
  Tx_db.t -> Io_stats.t -> minsup:int -> universe_size:int -> n_buckets:int -> outcome
