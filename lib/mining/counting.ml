open Cfq_txdb

type par = {
  domains : int;
  pool : Cfq_exec_pool.Pool.t option;
  min_rows_per_domain : int;
}

let default_min_rows_per_domain = 2048

let par ?pool ?(min_rows_per_domain = default_min_rows_per_domain) domains =
  { domains = max 1 domains; pool; min_rows_per_domain = max 1 min_rows_per_domain }

let sequential =
  { domains = 1; pool = None; min_rows_per_domain = default_min_rows_per_domain }

(* How many participants a region of [work_items] rows (or candidates) is
   worth: fanning a few hundred rows over domains costs more in spawn and
   merge than the rows themselves.  Equality with the sequential pass is
   unaffected — parallel regions are bit-identical at every width. *)
let eff_domains p ~work_items =
  let d = max 1 p.domains in
  if d = 1 || work_items <= 0 then 1
  else min d (max 1 (work_items / p.min_rows_per_domain))

(* ------------------------------------------------------------------ *)
(* Kernel plans                                                        *)
(* ------------------------------------------------------------------ *)

type kernel = Auto | Trie | Direct2 | Vertical

let kernel_name = function
  | Auto -> "auto"
  | Trie -> "trie"
  | Direct2 -> "direct2"
  | Vertical -> "vertical"

let all_kernels =
  [ ("auto", Auto); ("trie", Trie); ("direct2", Direct2); ("vertical", Vertical) ]

let kernel_of_string s = List.assoc_opt s all_kernels

type plan = {
  kernel : kernel;
  budget_words : int;
  projection : bool;
  vertical_min_card : int;
  direct2_max_sparsity : int;
  calibrate : bool;
}

let default_plan =
  {
    kernel = Auto;
    budget_words = 1 lsl 22;
    projection = true;
    vertical_min_card = 3;
    direct2_max_sparsity = 16;
    calibrate = true;
  }

let plan_of_kernel k = { default_plan with kernel = k; projection = k = Auto }

(* ------------------------------------------------------------------ *)
(* Calibration                                                         *)
(* ------------------------------------------------------------------ *)

(* Measured per-kernel unit costs, EMA-smoothed over the passes of a
   session (or shared across the sessions of a service).  The defaults are
   priors taken from the committed BENCH_counting.json of a commodity
   x86-64 box; every observation halves their weight, so a few passes are
   enough to re-anchor the record to the machine at hand.  Units:
   seconds per item occurrence scanned (trie, direct2, bitmap build) and
   seconds per candidate-word intersected (bitmap probes). *)
type calibration = {
  mutable samples : int;
  mutable trie_cost : float;
  mutable direct2_cost : float;
  mutable build_cost : float;
  mutable probe_cost : float;
  mu : Mutex.t;
}

let create_calibration () =
  {
    samples = 0;
    trie_cost = 6e-7;
    direct2_cost = 5e-8;
    build_cost = 5e-8;
    probe_cost = 2.5e-9;
    mu = Mutex.create ();
  }

let calibration_samples c = Mutex.protect c.mu (fun () -> c.samples)

let describe_calibration c =
  Mutex.protect c.mu (fun () ->
      Printf.sprintf
        "samples=%d trie=%.3gns/occ direct2=%.3gns/occ build=%.3gns/occ probe=%.3gns/cw"
        c.samples (c.trie_cost *. 1e9) (c.direct2_cost *. 1e9)
        (c.build_cost *. 1e9) (c.probe_cost *. 1e9))

(* The defaults always serve as the prior: an observation moves the
   coefficient halfway, never replaces it, so one noisy pass cannot wreck
   the model.  Sub-microsecond timings are discarded as timer noise. *)
let observe c get set ~seconds ~units =
  if units > 0. && seconds > 1e-6 then
    Mutex.protect c.mu (fun () ->
        set ((0.5 *. get ()) +. (0.5 *. (seconds /. units)));
        c.samples <- c.samples + 1)

let observe_trie c = observe c (fun () -> c.trie_cost) (fun v -> c.trie_cost <- v)

let observe_direct2 c =
  observe c (fun () -> c.direct2_cost) (fun v -> c.direct2_cost <- v)

let observe_build c =
  observe c (fun () -> c.build_cost) (fun v -> c.build_cost <- v)

let observe_probe c =
  observe c (fun () -> c.probe_cost) (fun v -> c.probe_cost <- v)

let direct2_admissible plan ~n_cands ~n_cells =
  n_cells <= plan.budget_words && n_cells <= plan.direct2_max_sparsity * max 1 n_cands

let vertical_admissible plan ~n_live_items ~n_rows ~min_card =
  min_card >= plan.vertical_min_card
  && Tid_bitmaps.words_needed ~n_items:n_live_items ~n_rows <= plan.budget_words

let projection_admissible plan ~est_words =
  plan.projection && est_words <= plan.budget_words

let words_per_row n_rows =
  let b = Cfq_itembase.Bitvec.bits_per_word in
  (n_rows + b - 1) / b

(* Cold-build admission: standing up bitmaps with a charged scan only pays
   when the estimated build + probe time undercuts the trie walk it
   replaces (deeper passes then come free, so beating one pass is a
   conservative bar).  This is the 0.73x fix: huge candidate sets over few
   rows make the probes alone slower than the scan. *)
let vertical_cold_admissible plan calib ~n_live_items ~n_rows ~min_card ~avg_len
    ~n_cands =
  vertical_admissible plan ~n_live_items ~n_rows ~min_card
  && begin
       let occ = float_of_int n_rows *. Float.max 1. avg_len in
       let words = float_of_int (words_per_row n_rows) in
       let inters = float_of_int (max 1 (min_card - 1)) in
       let scan = occ *. calib.trie_cost in
       let build = occ *. calib.build_cost in
       let probe = float_of_int n_cands *. inters *. words *. calib.probe_cost in
       build +. probe <= scan
     end

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

type pass_counts = {
  trie_passes : int;
  direct2_passes : int;
  vertical_passes : int;
  projected_scans : int;
  bitmap_builds : int;
}

type session = {
  plan : plan;
  calib : calibration;
  mutable bound_db : Tx_db.t option;
  mutable bitmaps : Tid_bitmaps.t option;
  mutable proj : Projection.t option;
  mutable last_fams : string list;
  mutable n_trie : int;
  mutable n_direct2 : int;
  mutable n_vertical : int;
  mutable n_projected : int;
  mutable n_builds : int;
  (* one sub-session per shard when counting over a sharded composite:
     each shard keeps its own materialised bitmaps/projection, sized to
     its slice of the data *)
  mutable shard_sessions : session array;
}

let create_session ?(plan = default_plan) ?calibration () =
  {
    plan;
    calib =
      (match calibration with Some c -> c | None -> create_calibration ());
    bound_db = None;
    bitmaps = None;
    proj = None;
    last_fams = [];
    n_trie = 0;
    n_direct2 = 0;
    n_vertical = 0;
    n_projected = 0;
    n_builds = 0;
    shard_sessions = [||];
  }

let session_plan s = s.plan
let session_calibration s = s.calib
let last_kernels s = s.last_fams

let last_kernel s =
  match
    List.sort_uniq compare (List.filter (fun l -> l <> "") s.last_fams)
  with
  | [] -> "trie"
  | ls -> String.concat "+" ls

(* pass counts aggregate the session's own passes plus every shard
   sub-session's: a distributed level runs one pass per shard, and the
   totals make that visible rather than hiding it *)
let pass_counts s =
  Array.fold_left
    (fun acc sk ->
      {
        trie_passes = acc.trie_passes + sk.n_trie;
        direct2_passes = acc.direct2_passes + sk.n_direct2;
        vertical_passes = acc.vertical_passes + sk.n_vertical;
        projected_scans = acc.projected_scans + sk.n_projected;
        bitmap_builds = acc.bitmap_builds + sk.n_builds;
      })
    {
      trie_passes = s.n_trie;
      direct2_passes = s.n_direct2;
      vertical_passes = s.n_vertical;
      projected_scans = s.n_projected;
      bitmap_builds = s.n_builds;
    }
    s.shard_sessions

let describe s =
  let c = pass_counts s in
  Printf.sprintf "trie=%d direct2=%d vertical=%d projected-scans=%d bitmap-builds=%d"
    c.trie_passes c.direct2_passes c.vertical_passes c.projected_scans
    c.bitmap_builds

(* ------------------------------------------------------------------ *)
(* The legacy trie pass — also the fault-pinned and forced-trie path    *)
(* ------------------------------------------------------------------ *)

(* ccc support-counted is charged by [count_shared] before dispatch, so the
   pass bodies below never touch the counters: the charge is per candidate
   and kernel-independent by construction. *)
let trie_count ~par db io cands_list =
  let tries = List.map Trie.build cands_list in
  let domains = eff_domains par ~work_items:(Tx_db.size db) in
  if domains = 1 then begin
    Tx_db.iter_scan db io (fun tx ->
        let items = Cfq_itembase.Itemset.unsafe_to_array tx.Transaction.items in
        List.iter (fun trie -> Trie.count_tx trie items) tries);
    List.map Trie.counts tries
  end
  else begin
    (* one logical scan: the coordinator validates every page here — same
       fault/checksum walk, same injector draw order as [iter_scan] — then
       the chunks fan out to participants counting into private arrays *)
    Tx_db.begin_scan db io;
    let chunks = Array.of_list (Tx_db.scan_chunks db ~max_chunks:(4 * domains)) in
    let accs =
      Cfq_exec_pool.Pool.fan_out ?pool:par.pool ~domains
        ~n_tasks:(Array.length chunks)
        ~init:(fun () ->
          List.map (fun trie -> Array.make (Trie.n_candidates trie) 0) tries)
        ~work:(fun locals c ->
          let lo, hi = chunks.(c) in
          Tx_db.iter_range db ~lo ~hi (fun tx ->
              let items = Cfq_itembase.Itemset.unsafe_to_array tx.Transaction.items in
              List.iter2
                (fun trie local -> Trie.count_tx_into trie local items)
                tries locals))
        ()
    in
    (* merge in participant-slot order; int addition is order-independent,
       so the totals equal the sequential pass exactly *)
    List.iter
      (fun locals ->
        List.iter2
          (fun trie local ->
            let total = Trie.counts trie in
            Array.iteri (fun i v -> total.(i) <- total.(i) + v) local)
          tries locals)
      accs;
    List.map Trie.counts tries
  end

(* ------------------------------------------------------------------ *)
(* Scan substrates: the database or the current projection              *)
(* ------------------------------------------------------------------ *)

type substrate = S_db | S_proj of Projection.t

let substrate_rows db = function
  | S_db -> Tx_db.size db
  | S_proj p -> Projection.tuples p

(* Sequential substrate walk; charges exactly one scan. *)
let iter_sub db io substrate f =
  match substrate with
  | S_db ->
      Tx_db.iter_scan db io (fun tx ->
          f (Cfq_itembase.Itemset.unsafe_to_array tx.Transaction.items))
  | S_proj p ->
      Projection.charge_scan p io;
      let n = Projection.tuples p in
      if n > 0 then Projection.iter_range p ~lo:0 ~hi:(n - 1) f

(* Charge one scan and return the parallel chunk list. *)
let chunks_sub db io substrate ~max_chunks =
  match substrate with
  | S_db ->
      Tx_db.begin_scan db io;
      Tx_db.scan_chunks db ~max_chunks
  | S_proj p ->
      Projection.charge_scan p io;
      Projection.chunks p ~max_chunks

(* Raw range walk over an already-charged substrate. *)
let iter_range_sub db substrate ~lo ~hi f =
  match substrate with
  | S_db ->
      Tx_db.iter_range db ~lo ~hi (fun tx ->
          f (Cfq_itembase.Itemset.unsafe_to_array tx.Transaction.items))
  | S_proj p -> Projection.iter_range p ~lo ~hi f

(* ------------------------------------------------------------------ *)
(* Mixed trie/direct2 scan passes, with fused projection building       *)
(* ------------------------------------------------------------------ *)

type f_rep = R_trie of Trie.t | R_d2 of Direct2.t

let rep_label = function R_trie _ -> "trie" | R_d2 _ -> "direct2"

let acc_of = function
  | R_trie t -> Array.make (Trie.n_candidates t) 0
  | R_d2 d -> Direct2.init_cells d

let count_into rep acc scr items =
  match rep with
  | R_trie t -> Trie.count_tx_into t acc items
  | R_d2 d -> Direct2.count_tx_into d acc scr items

let extract rep acc =
  match rep with R_trie _ -> acc | R_d2 d -> Direct2.extract d acc

(* Keep a transaction's live items iff at least [min_len] survive. *)
let project_tx live_mask min_len items =
  let n = Array.length items and nm = Array.length live_mask in
  let cnt = ref 0 in
  for j = 0 to n - 1 do
    let it = Array.unsafe_get items j in
    if it < nm && Array.unsafe_get live_mask it then incr cnt
  done;
  if !cnt < min_len then None
  else begin
    let out = Array.make !cnt 0 in
    let w = ref 0 in
    for j = 0 to n - 1 do
      let it = Array.unsafe_get items j in
      if it < nm && Array.unsafe_get live_mask it then begin
        Array.unsafe_set out !w it;
        incr w
      end
    done;
    Some out
  end

(* One charged pass over [substrate] counting every family with its chosen
   representation, optionally building the next projection in the same
   walk.  [proj_spec = Some (live_mask, min_len)] describes the projection
   to fuse in.  Returns the per-family counts (candidate order) and the
   projected transactions (scan order — deterministic for every [domains]:
   chunk slots are concatenated in chunk order, so the result is the same
   sequence the sequential walk produces). *)
let scan_count ~par db io substrate fams ~proj_spec =
  let domains = eff_domains par ~work_items:(substrate_rows db substrate) in
  if domains = 1 then begin
    let accs = List.map (fun (_, rep) -> acc_of rep) fams in
    let scr = Direct2.scratch () in
    let pbuf = ref [] in
    iter_sub db io substrate (fun items ->
        List.iter2 (fun (_, rep) acc -> count_into rep acc scr items) fams accs;
        match proj_spec with
        | Some (mask, min_len) -> (
            match project_tx mask min_len items with
            | Some arr -> pbuf := arr :: !pbuf
            | None -> ())
        | None -> ());
    let counts = List.map2 (fun (_, rep) acc -> extract rep acc) fams accs in
    let proj =
      match proj_spec with
      | Some _ -> Some (Array.of_list (List.rev !pbuf))
      | None -> None
    in
    (counts, proj)
  end
  else begin
    let chunks = Array.of_list (chunks_sub db io substrate ~max_chunks:(4 * domains)) in
    let n_chunks = Array.length chunks in
    let slots = Array.make n_chunks [||] in
    let accs =
      Cfq_exec_pool.Pool.fan_out ?pool:par.pool ~domains ~n_tasks:n_chunks
        ~init:(fun () ->
          (List.map (fun (_, rep) -> acc_of rep) fams, Direct2.scratch ()))
        ~work:(fun (locals, scr) c ->
          let lo, hi = chunks.(c) in
          let pbuf = ref [] in
          iter_range_sub db substrate ~lo ~hi (fun items ->
              List.iter2
                (fun (_, rep) acc -> count_into rep acc scr items)
                fams locals;
              match proj_spec with
              | Some (mask, min_len) -> (
                  match project_tx mask min_len items with
                  | Some arr -> pbuf := arr :: !pbuf
                  | None -> ())
              | None -> ());
          (* distinct slot per task: no write races, deterministic order *)
          if proj_spec <> None then slots.(c) <- Array.of_list (List.rev !pbuf))
        ()
    in
    let totals = List.map (fun (_, rep) -> acc_of rep) fams in
    List.iter
      (fun (locals, _) ->
        List.iter2
          (fun total local -> Array.iteri (fun i v -> total.(i) <- total.(i) + v) local)
          totals locals)
      accs;
    let counts = List.map2 (fun (_, rep) total -> extract rep total) fams totals in
    let proj =
      match proj_spec with
      | Some _ -> Some (Array.concat (Array.to_list slots))
      | None -> None
    in
    (counts, proj)
  end

(* ------------------------------------------------------------------ *)
(* Bitmap building                                                     *)
(* ------------------------------------------------------------------ *)

(* Word-aligned row ranges: concurrent [set_row] calls then touch disjoint
   words of every bitvector, so the parallel build is race-free. *)
let word_ranges rows max_chunks =
  let bpw = Cfq_itembase.Bitvec.bits_per_word in
  let words = (rows + bpw - 1) / bpw in
  if words = 0 then []
  else begin
    let k = max 1 (min max_chunks words) in
    let per = words / k and rem = words mod k in
    let out = ref [] and wlo = ref 0 in
    for c = 0 to k - 1 do
      let len = per + if c < rem then 1 else 0 in
      if len > 0 then begin
        let lo = !wlo * bpw and hi = min rows ((!wlo + len) * bpw) - 1 in
        out := (lo, hi) :: !out
      end;
      wlo := !wlo + len
    done;
    List.rev !out
  end

let build_bitmaps ~par db io substrate live ~valid_min_card =
  let rows = substrate_rows db substrate in
  let bm = Tid_bitmaps.create ~n_rows:rows ~valid_min_card live in
  let domains = eff_domains par ~work_items:rows in
  if domains = 1 || rows = 0 then begin
    let row = ref 0 in
    iter_sub db io substrate (fun items ->
        Tid_bitmaps.set_row bm ~row:!row items;
        incr row)
  end
  else begin
    (match substrate with
    | S_db -> Tx_db.begin_scan db io
    | S_proj p -> Projection.charge_scan p io);
    let ranges = Array.of_list (word_ranges rows (4 * domains)) in
    ignore
      (Cfq_exec_pool.Pool.fan_out ?pool:par.pool ~domains
         ~n_tasks:(Array.length ranges)
         ~init:(fun () -> ())
         ~work:(fun () c ->
           let lo, hi = ranges.(c) in
           let row = ref lo in
           iter_range_sub db substrate ~lo ~hi (fun items ->
               Tid_bitmaps.set_row bm ~row:!row items;
               incr row))
         ()
        : unit list)
  end;
  bm

(* Fused build: the rows were just materialised in memory by the prior
   pass's charged scan (the projection buffer), so standing the bitmaps up
   from them costs no further I/O — the vertical analogue of projection
   chaining.  Word-aligned ranges keep the parallel fill race-free. *)
let bitmaps_of_txs ~par txs live ~valid_min_card =
  let rows = Array.length txs in
  let bm = Tid_bitmaps.create ~n_rows:rows ~valid_min_card live in
  let domains = eff_domains par ~work_items:rows in
  if domains = 1 || rows = 0 then
    Array.iteri (fun row items -> Tid_bitmaps.set_row bm ~row items) txs
  else begin
    let ranges = Array.of_list (word_ranges rows (4 * domains)) in
    ignore
      (Cfq_exec_pool.Pool.fan_out ?pool:par.pool ~domains
         ~n_tasks:(Array.length ranges)
         ~init:(fun () -> ())
         ~work:(fun () c ->
           let lo, hi = ranges.(c) in
           for row = lo to hi do
             Tid_bitmaps.set_row bm ~row txs.(row)
           done)
         ()
        : unit list)
  end;
  bm

(* Zero-I/O probes, fanned over candidate ranges.  Each participant owns a
   private scratch bitvector and writes disjoint slots of [out], so the
   supports are identical to the sequential batch at any width. *)
let supports_par ~par bm cands =
  let n = Array.length cands in
  if n = 0 then [||]
  else begin
    let domains = eff_domains par ~work_items:n in
    if domains = 1 then Tid_bitmaps.supports bm cands
    else begin
      let out = Array.make n 0 in
      let n_tasks = min n (4 * domains) in
      let per = n / n_tasks and rem = n mod n_tasks in
      let ranges =
        Array.init n_tasks (fun c ->
            let lo = (c * per) + min c rem in
            let hi = lo + per + (if c < rem then 1 else 0) - 1 in
            (lo, hi))
      in
      ignore
        (Cfq_exec_pool.Pool.fan_out ?pool:par.pool ~domains ~n_tasks
           ~init:(fun () -> Tid_bitmaps.scratch bm)
           ~work:(fun scr c ->
             let lo, hi = ranges.(c) in
             for i = lo to hi do
               out.(i) <- Tid_bitmaps.support_into bm scr cands.(i)
             done)
           ()
          : Tid_bitmaps.scratch list);
      out
    end
  end

(* ------------------------------------------------------------------ *)
(* The adaptive pass                                                   *)
(* ------------------------------------------------------------------ *)

let adaptive s ~par db io families =
  (* a session follows one run over one database; rebinding resets the
     materialised state *)
  (match s.bound_db with
  | Some d when d == db -> ()
  | _ ->
      s.bound_db <- Some db;
      s.bitmaps <- None;
      s.proj <- None);
  let cands_list = List.map snd families in
  let min_card = ref max_int and max_item = ref (-1) in
  List.iter
    (Array.iter (fun c ->
         let k = Cfq_itembase.Itemset.cardinal c in
         if k < !min_card then min_card := k;
         match Cfq_itembase.Itemset.max_item c with
         | Some i when i > !max_item -> max_item := i
         | _ -> ()))
    cands_list;
  let min_card = !min_card in
  if min_card < 1 then begin
    (* an empty-set candidate: only the trie path handles cardinality 0 *)
    s.n_trie <- s.n_trie + 1;
    s.last_fams <- List.map (fun _ -> "trie") families;
    trie_count ~par db io cands_list
  end
  else begin
    let plan = s.plan in
    let live_mask = Array.make (!max_item + 1) false in
    List.iter
      (Array.iter (Cfq_itembase.Itemset.iter (fun i -> live_mask.(i) <- true)))
      cands_list;
    let n_live = Array.fold_left (fun a b -> if b then a + 1 else a) 0 live_mask in
    let live = Array.make n_live 0 in
    let w = ref 0 in
    Array.iteri
      (fun i b ->
        if b then begin
          live.(!w) <- i;
          incr w
        end)
      live_mask;
    let n_cands_total =
      List.fold_left (fun a c -> a + Array.length c) 0 cands_list
    in
    let answer_from bm =
      s.n_vertical <- s.n_vertical + 1;
      s.last_fams <- List.map (fun _ -> "vertical") families;
      let t0 = if s.plan.calibrate then Unix.gettimeofday () else 0. in
      let out =
        List.map
          (fun cands ->
            if Array.length cands = 0 then [||] else supports_par ~par bm cands)
          cands_list
      in
      if s.plan.calibrate then
        observe_probe s.calib
          ~seconds:(Unix.gettimeofday () -. t0)
          ~units:
            (float_of_int n_cands_total
            *. float_of_int (max 1 (min_card - 1))
            *. float_of_int (words_per_row (Tid_bitmaps.n_rows bm)));
      out
    in
    match s.bitmaps with
    | Some bm
      when Tid_bitmaps.valid_min_card bm <= min_card && Tid_bitmaps.covers bm live
      ->
        (* zero-I/O pass: every level answered from the materialised bitmaps *)
        answer_from bm
    | _ -> (
        let substrate =
          match s.proj with
          | Some p when Projection.covers p ~items:live ~min_card -> S_proj p
          | _ -> S_db
        in
        let rows = substrate_rows db substrate in
        let avg_len = Float.max 1. (Tx_db.avg_tx_len db) in
        let want_vertical =
          match plan.kernel with
          | Vertical -> true
          | Auto ->
              (* cold build: a charged scan stands the bitmaps up, so it
                 must beat the trie walk it displaces on measured costs *)
              vertical_cold_admissible plan s.calib ~n_live_items:n_live
                ~n_rows:rows ~min_card ~avg_len ~n_cands:n_cands_total
          | Trie | Direct2 -> false
        in
        if want_vertical then begin
          let valid_min_card =
            match substrate with S_db -> 1 | S_proj p -> Projection.min_len p
          in
          let t0 = if plan.calibrate then Unix.gettimeofday () else 0. in
          let bm = build_bitmaps ~par db io substrate live ~valid_min_card in
          if plan.calibrate then
            observe_build s.calib
              ~seconds:(Unix.gettimeofday () -. t0)
              ~units:(float_of_int rows *. avg_len);
          (match substrate with
          | S_proj _ -> s.n_projected <- s.n_projected + 1
          | S_db -> ());
          s.bitmaps <- Some bm;
          s.proj <- None;
          s.n_builds <- s.n_builds + 1;
          answer_from bm
        end
        else begin
          let reps =
            List.map
              (fun cands ->
                let d2 =
                  match plan.kernel with
                  | Direct2 | Auto -> (
                      match Direct2.shape cands with
                      | Some d
                        when direct2_admissible plan
                               ~n_cands:(Array.length cands)
                               ~n_cells:(Direct2.n_cells d) ->
                          Some d
                      | _ -> None)
                  | Trie | Vertical -> None
                in
                match d2 with Some d -> R_d2 d | None -> R_trie (Trie.build cands))
              cands_list
          in
          let proj_spec =
            if (not plan.projection) || min_card < 2 then None
            else begin
              let allowed =
                match substrate with
                | S_proj _ ->
                    (* reprojection only shrinks: live is a subset of the
                       projection's live items (coverage held), so it always
                       fits if the current one does *)
                    true
                | S_db ->
                    let est =
                      Tx_db.size db
                      + int_of_float
                          (float_of_int (Tx_db.size db) *. Tx_db.avg_tx_len db)
                    in
                    projection_admissible plan ~est_words:est
              in
              if allowed then Some (live_mask, min_card + 1) else None
            end
          in
          let t0 = if plan.calibrate then Unix.gettimeofday () else 0. in
          let counts, new_proj =
            scan_count ~par db io substrate
              (List.combine cands_list reps)
              ~proj_spec
          in
          (if plan.calibrate then
             let seconds = Unix.gettimeofday () -. t0 in
             let units = float_of_int rows *. avg_len in
             match List.sort_uniq compare (List.map rep_label reps) with
             | [ "trie" ] -> observe_trie s.calib ~seconds ~units
             | [ "direct2" ] -> observe_direct2 s.calib ~seconds ~units
             | _ -> ());
          (match new_proj with
          | Some txs ->
              (* amortized vertical switch: the projected rows are already
                 in memory, so if the next level admits bitmaps we build
                 them here, free of I/O, instead of re-scanning the
                 projection on the next pass — the build piggybacks on the
                 scan we just charged.  Probes must still beat the
                 projected trie walk they replace (current candidate count
                 as a conservative proxy for the next level's). *)
              let next_card = min_card + 1 in
              let n_rows' = Array.length txs in
              let occ' =
                Array.fold_left (fun a t -> a + Array.length t) 0 txs
              in
              let fused =
                plan.kernel = Auto
                && vertical_admissible plan ~n_live_items:n_live
                     ~n_rows:n_rows' ~min_card:next_card
                && float_of_int occ' *. s.calib.build_cost
                   +. float_of_int n_cands_total
                      *. float_of_int (max 1 (next_card - 1))
                      *. float_of_int (words_per_row n_rows')
                      *. s.calib.probe_cost
                   <= float_of_int occ' *. s.calib.trie_cost
              in
              if fused then begin
                let t0 = if plan.calibrate then Unix.gettimeofday () else 0. in
                let bm =
                  bitmaps_of_txs ~par txs live ~valid_min_card:next_card
                in
                if plan.calibrate then
                  observe_build s.calib
                    ~seconds:(Unix.gettimeofday () -. t0)
                    ~units:(float_of_int occ');
                s.bitmaps <- Some bm;
                s.proj <- None;
                s.n_builds <- s.n_builds + 1
              end
              else
                s.proj <-
                  Some
                    (Projection.make ~page_model:(Tx_db.page_model db)
                       ~universe_size:(Array.length live_mask)
                       ~live ~min_len:(min_card + 1) txs)
          | None -> ());
          (match substrate with
          | S_proj _ -> s.n_projected <- s.n_projected + 1
          | S_db -> ());
          let labels = List.map rep_label reps in
          s.last_fams <- labels;
          if List.mem "direct2" labels then s.n_direct2 <- s.n_direct2 + 1;
          if List.mem "trie" labels then s.n_trie <- s.n_trie + 1;
          counts
        end)
  end

(* ------------------------------------------------------------------ *)
(* Count distribution over sharded composites                          *)
(* ------------------------------------------------------------------ *)

(* Candidate supports are additive over a partition of the transactions,
   so each shard counts every candidate against its own slice and the
   coordinator's elementwise sum is the exact global support — the classic
   count-distribution scheme.  The caller is charged one logical composite
   scan per pass (same as the sequential path on the same composite); each
   shard's local I/O lands in its [Tx_db.shard_io] sink. *)

let shard_session s k n =
  if Array.length s.shard_sessions <> n then
    s.shard_sessions <- Array.init n (fun _ -> create_session ~plan:s.plan ());
  s.shard_sessions.(k)

(* Mirror of [adaptive]'s zero-I/O branch, evaluated over every shard
   sub-session: when each shard would answer the pass from materialised
   bitmaps covering the live items, no shard touches its pages and the
   composite scan charge is skipped — exactly as the unsharded session
   skips it. *)
let all_bitmap_covered s subs families =
  let ns = Array.length subs in
  Array.length s.shard_sessions = ns
  && begin
       let cands_list = List.map snd families in
       let min_card = ref max_int and max_item = ref (-1) in
       List.iter
         (Array.iter (fun c ->
              let k = Cfq_itembase.Itemset.cardinal c in
              if k < !min_card then min_card := k;
              match Cfq_itembase.Itemset.max_item c with
              | Some i when i > !max_item -> max_item := i
              | _ -> ()))
         cands_list;
       !min_card >= 1
       && begin
            let live_mask = Array.make (!max_item + 1) false in
            List.iter
              (Array.iter
                 (Cfq_itembase.Itemset.iter (fun i -> live_mask.(i) <- true)))
              cands_list;
            let live = ref [] in
            Array.iteri (fun i b -> if b then live := i :: !live) live_mask;
            let live = Array.of_list (List.rev !live) in
            Array.for_all
              (fun sk ->
                match sk.bitmaps with
                | Some bm ->
                    Tid_bitmaps.valid_min_card bm <= !min_card
                    && Tid_bitmaps.covers bm live
                | None -> false)
              s.shard_sessions
          end
     end

let distributed ~par ~session db subs io families =
  let ns = Array.length subs in
  let cands_list = List.map snd families in
  (* [backend_faulted] also sees a replica-level injector hidden behind a
     shard's failover view, so replica faults pin the pass to the same
     deterministic sequential order as shard or composite faults *)
  let sub_faulted = Array.exists Tx_db.backend_faulted subs in
  let faulted = Tx_db.backend_faulted db || sub_faulted in
  let pinned_trie =
    faulted
    || match session with None -> true | Some s -> s.plan.kernel = Trie
  in
  (match session with
  | Some s when pinned_trie ->
      s.n_trie <- s.n_trie + 1;
      s.last_fams <- List.map (fun _ -> "trie") families
  | _ -> ());
  let zero_io =
    (not pinned_trie)
    &&
    match session with
    | Some s -> all_bitmap_covered s subs families
    | None -> false
  in
  (* one logical scan for the whole composite pass; with composite-level
     faults installed this runs the full page/checksum walk, drawing the
     same injector decisions as a sequential scan of the same composite *)
  if not zero_io then Tx_db.begin_scan db io;
  let sh_io = Tx_db.shard_io db in
  let run_shard k =
    let sub = subs.(k) in
    try
      if pinned_trie then trie_count ~par:sequential sub sh_io.(k) cands_list
      else
        let s = Option.get session in
        adaptive (shard_session s k ns) ~par:sequential sub sh_io.(k) families
    with Cfq_error.Error e ->
      (* shard-local error pages -> composite coordinates *)
      let base = Tx_db.shard_page_base db k in
      let e =
        match e with
        | Cfq_error.Transient_io { page } ->
            Cfq_error.Transient_io { page = page + base }
        | Cfq_error.Corrupt_page { page } ->
            Cfq_error.Corrupt_page { page = page + base }
        | e -> e
      in
      Cfq_error.raise_error e
  in
  let per_shard = Array.make ns [] in
  if faulted || max 1 par.domains = 1 then
    (* sequential shard order: with injectors installed the first failing
       shard must win deterministically *)
    for k = 0 to ns - 1 do
      per_shard.(k) <- run_shard k
    done
  else
    ignore
      (Cfq_exec_pool.Pool.fan_out ?pool:par.pool ~domains:par.domains
         ~n_tasks:ns
         ~init:(fun () -> ())
         ~work:(fun () k -> per_shard.(k) <- run_shard k)
         ()
        : unit list);
  (* labels of a distributed adaptive pass: per family, the union of the
     shards' kernel choices (shards may legitimately diverge — a small
     shard can go vertical while a big one still scans) *)
  (match session with
  | Some s when not pinned_trie ->
      let label_of fi =
        let labs =
          Array.fold_left
            (fun acc sk ->
              match List.nth_opt sk.last_fams fi with
              | Some l when l <> "" && not (List.mem l acc) -> l :: acc
              | _ -> acc)
            [] s.shard_sessions
        in
        match List.rev labs with
        | [] -> "trie"
        | [ l ] -> l
        | ls -> String.concat "/" ls
      in
      s.last_fams <- List.mapi (fun fi _ -> label_of fi) families
  | _ -> ());
  (* merge: exact global supports are the per-shard partial sums *)
  List.mapi
    (fun fi (_, cands) ->
      let total = Array.make (Array.length cands) 0 in
      Array.iter
        (fun counts ->
          let c = List.nth counts fi in
          Array.iteri (fun i v -> total.(i) <- total.(i) + v) c)
        per_shard;
      total)
    families

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let count_shared ?(par = sequential) ?session db io families =
  (* the ccc charge: one support-counted tick per candidate, before kernel
     dispatch, so it is identical for every kernel *)
  List.iter
    (fun (counters, cands) ->
      Counters.add_support_counted counters (Array.length cands))
    families;
  let n_cands =
    List.fold_left (fun acc (_, cands) -> acc + Array.length cands) 0 families
  in
  if n_cands = 0 then
    (* nothing to count anywhere: skip the scan and charge no I/O *)
    List.map (fun (_, cands) -> Array.make (Array.length cands) 0) families
  else
    match Tx_db.shards db with
    | Some subs when Array.length subs > 1 ->
        distributed ~par ~session db subs io families
    | _ -> (
        match session with
        | None -> trie_count ~par db io (List.map snd families)
        | Some s when s.plan.kernel = Trie || Tx_db.faults db <> None ->
            (* forced trie, or faults installed: the paper's page/fault walk
               must be preserved exactly, so the adaptive substrates are out *)
            s.n_trie <- s.n_trie + 1;
            s.last_fams <- List.map (fun _ -> "trie") families;
            trie_count ~par db io (List.map snd families)
        | Some s -> adaptive s ~par db io families)

let count_level ?par ?session db io counters cands =
  match count_shared ?par ?session db io [ (counters, cands) ] with
  | [ counts ] -> counts
  | _ -> assert false
