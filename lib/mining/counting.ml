open Cfq_txdb

type par = {
  domains : int;
  pool : Cfq_exec_pool.Pool.t option;
}

let sequential = { domains = 1; pool = None }

let count_shared ?(par = sequential) db io families =
  let tries =
    List.map
      (fun (counters, cands) ->
        Counters.add_support_counted counters (Array.length cands);
        Trie.build cands)
      families
  in
  let n_cands = List.fold_left (fun acc t -> acc + Trie.n_candidates t) 0 tries in
  if n_cands = 0 then
    (* nothing to count anywhere: skip the scan and charge no I/O *)
    List.map Trie.counts tries
  else if max 1 par.domains = 1 then begin
    Tx_db.iter_scan db io (fun tx ->
        let items = Cfq_itembase.Itemset.unsafe_to_array tx.Transaction.items in
        List.iter (fun trie -> Trie.count_tx trie items) tries);
    List.map Trie.counts tries
  end
  else begin
    let domains = par.domains in
    (* one logical scan: the coordinator validates every page here — same
       fault/checksum walk, same injector draw order as [iter_scan] — then
       the chunks fan out to participants counting into private arrays *)
    Tx_db.begin_scan db io;
    let chunks = Array.of_list (Tx_db.scan_chunks db ~max_chunks:(4 * domains)) in
    let accs =
      Cfq_exec_pool.Pool.fan_out ?pool:par.pool ~domains
        ~n_tasks:(Array.length chunks)
        ~init:(fun () ->
          List.map (fun trie -> Array.make (Trie.n_candidates trie) 0) tries)
        ~work:(fun locals c ->
          let lo, hi = chunks.(c) in
          Tx_db.iter_range db ~lo ~hi (fun tx ->
              let items = Cfq_itembase.Itemset.unsafe_to_array tx.Transaction.items in
              List.iter2
                (fun trie local -> Trie.count_tx_into trie local items)
                tries locals))
        ()
    in
    (* merge in participant-slot order; int addition is order-independent,
       so the totals equal the sequential pass exactly *)
    List.iter
      (fun locals ->
        List.iter2
          (fun trie local ->
            let total = Trie.counts trie in
            Array.iteri (fun i v -> total.(i) <- total.(i) + v) local)
          tries locals)
      accs;
    List.map Trie.counts tries
  end

let count_level ?par db io counters cands =
  match count_shared ?par db io [ (counters, cands) ] with
  | [ counts ] -> counts
  | _ -> assert false
