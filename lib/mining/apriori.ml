open Cfq_itembase
open Cfq_txdb
open Cfq_constr

type outcome = {
  frequent : Frequent.t;
  counters : Counters.t;
  stats : Level_stats.t;
}

let mine db info io ?max_level ?par ?session ~minsup () =
  let state = Cap.create db info ?max_level ~minsup (Bundle.unconstrained info) in
  let frequent = Cap.run ?par ?session state io in
  { frequent; counters = Cap.counters state; stats = Cap.stats state }

let mine_brute db io ~minsup ~universe_size =
  if universe_size > 20 then invalid_arg "Apriori.mine_brute: universe too large";
  let universe = Itemset.of_array (Array.init universe_size (fun i -> i)) in
  let subsets = ref [] in
  Itemset.powerset universe (fun s ->
      if not (Itemset.is_empty s) then subsets := s :: !subsets);
  let subsets = Array.of_list !subsets in
  let counts = Array.make (Array.length subsets) 0 in
  Tx_db.iter_scan db io (fun tx ->
      Array.iteri
        (fun i s ->
          if Itemset.subset s tx.Transaction.items then counts.(i) <- counts.(i) + 1)
        subsets);
  let by_level = Hashtbl.create 16 in
  Array.iteri
    (fun i s ->
      if counts.(i) >= minsup then begin
        let k = Itemset.cardinal s in
        let cur = Option.value ~default:[] (Hashtbl.find_opt by_level k) in
        Hashtbl.replace by_level k ({ Frequent.set = s; support = counts.(i) } :: cur)
      end)
    subsets;
  let max_k = Hashtbl.fold (fun k _ acc -> max k acc) by_level 0 in
  let levels =
    List.init max_k (fun i ->
        Array.of_list (Option.value ~default:[] (Hashtbl.find_opt by_level (i + 1))))
  in
  Frequent.of_levels levels
