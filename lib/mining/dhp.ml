open Cfq_itembase
open Cfq_txdb

type outcome = {
  frequent : Frequent.t;
  c2_plain : int;
  c2_filtered : int;
  stats : Level_stats.t;
}

let bucket_of ~n_buckets i j = ((i * 92821) + j) mod n_buckets

let mine db io ~minsup ~universe_size ~n_buckets =
  if n_buckets <= 0 then invalid_arg "Dhp.mine: n_buckets";
  (* scan 1: item counts + pair-bucket counts *)
  let item_counts = Array.make universe_size 0 in
  let buckets = Array.make n_buckets 0 in
  Tx_db.iter_scan db io (fun tx ->
      let items = Itemset.unsafe_to_array tx.Transaction.items in
      let n = Array.length items in
      for a = 0 to n - 1 do
        item_counts.(items.(a)) <- item_counts.(items.(a)) + 1;
        for b = a + 1 to n - 1 do
          let h = bucket_of ~n_buckets items.(a) items.(b) in
          buckets.(h) <- buckets.(h) + 1
        done
      done);
  let l1 = ref [] in
  for i = universe_size - 1 downto 0 do
    if item_counts.(i) >= minsup then l1 := i :: !l1
  done;
  let l1 = Array.of_list !l1 in
  let stats = Level_stats.create () in
  Level_stats.record stats
    {
      Level_stats.level = 1;
      candidates = universe_size;
      counted = universe_size;
      frequent = Array.length l1;
      kernel = "dhp-fused";
    };
  let levels = ref [] in
  let push entries =
    let entries = Array.of_list entries in
    Array.sort (fun a b -> Itemset.compare a.Frequent.set b.Frequent.set) entries;
    levels := entries :: !levels
  in
  push
    (Array.to_list l1
    |> List.map (fun i -> { Frequent.set = Itemset.singleton i; support = item_counts.(i) }));
  (* level 2 with the hash filter *)
  let c2_plain = ref 0 and c2 = ref [] in
  Array.iteri
    (fun a i ->
      Array.iteri
        (fun b j ->
          if b > a then begin
            incr c2_plain;
            if buckets.(bucket_of ~n_buckets i j) >= minsup then
              c2 := Itemset.of_sorted_array [| i; j |] :: !c2
          end)
        l1)
    l1;
  let c2 = Array.of_list !c2 in
  let c2_filtered = Array.length c2 in
  let counters = Counters.create () in
  let count cands =
    if Array.length cands = 0 then [||] else Counting.count_level db io counters cands
  in
  let counts = count c2 in
  let entries cands counts =
    let out = ref [] in
    Array.iteri
      (fun idx set ->
        if counts.(idx) >= minsup then
          out := { Frequent.set; support = counts.(idx) } :: !out)
      cands;
    !out
  in
  let lk = ref (entries c2 counts) in
  (* the row records the bucket filter's effect: [candidates] is what plain
     Apriori would count, [counted] what actually reached the pass *)
  Level_stats.record stats
    {
      Level_stats.level = 2;
      candidates = !c2_plain;
      counted = c2_filtered;
      frequent = List.length !lk;
      kernel = "dhp-bucket";
    };
  push !lk;
  (* levels >= 3: plain Apriori *)
  let continue = ref true in
  while !continue do
    let prev = Array.of_list (List.map (fun e -> e.Frequent.set) !lk) in
    let tbl = Itemset.Hashtbl.create (2 * Array.length prev) in
    Array.iter (fun s -> Itemset.Hashtbl.replace tbl s ()) prev;
    let cands = Candidate.apriori_gen ~prev ~prev_mem:(Itemset.Hashtbl.mem tbl) in
    if Array.length cands = 0 then continue := false
    else begin
      let counts = count cands in
      lk := entries cands counts;
      Level_stats.record stats
        {
          Level_stats.level = Itemset.cardinal cands.(0);
          candidates = Array.length cands;
          counted = Array.length cands;
          frequent = List.length !lk;
          kernel = "trie";
        };
      if !lk = [] then continue := false else push !lk
    end
  done;
  {
    frequent = Frequent.of_levels (List.rev !levels);
    c2_plain = !c2_plain;
    c2_filtered;
    stats;
  }
