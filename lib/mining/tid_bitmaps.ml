open Cfq_itembase

type t = {
  vecs : Bitvec.t option array;  (* indexed by item; None = not live *)
  n_rows : int;
  valid_min_card : int;
}

let words_per_row n_rows = (n_rows + Bitvec.bits_per_word - 1) / Bitvec.bits_per_word

let words_needed ~n_items ~n_rows = n_items * words_per_row n_rows

let create ~n_rows ~valid_min_card items =
  let max_item = Array.fold_left max (-1) items in
  let vecs = Array.make (max_item + 1) None in
  Array.iter (fun i -> vecs.(i) <- Some (Bitvec.create ~universe_size:n_rows)) items;
  { vecs; n_rows; valid_min_card }

let set_row t ~row items =
  let n_vecs = Array.length t.vecs in
  Array.iter
    (fun item ->
      if item < n_vecs then
        match Array.unsafe_get t.vecs item with
        | Some v -> Bitvec.add v row
        | None -> ())
    items

let n_rows t = t.n_rows
let valid_min_card t = t.valid_min_card

let vec t item =
  if item < Array.length t.vecs then t.vecs.(item) else None

let covers t items = Array.for_all (fun i -> vec t i <> None) items

type scratch = Bitvec.t

let scratch t = Bitvec.create ~universe_size:t.n_rows

let get_vec t item =
  match vec t item with
  | Some v -> v
  | None -> invalid_arg "Tid_bitmaps.support_into: item has no bitmap"

let support_into t scratch s =
  match Itemset.cardinal s with
  | 0 -> t.n_rows
  | 1 -> Bitvec.cardinal (get_vec t (Itemset.get s 0))
  | 2 -> Bitvec.inter_cardinal (get_vec t (Itemset.get s 0)) (get_vec t (Itemset.get s 1))
  | k ->
      Bitvec.blit ~src:(get_vec t (Itemset.get s 0)) ~dst:scratch;
      for i = 1 to k - 1 do
        Bitvec.inter_inplace scratch (get_vec t (Itemset.get s i))
      done;
      Bitvec.cardinal scratch

let supports t cands =
  let scr = scratch t in
  Array.map (support_into t scr) cands
