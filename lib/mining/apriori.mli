(** Plain frequent-set mining: the Apriori algorithm, as the unconstrained
    special case of the {!Cap} engine. *)

open Cfq_itembase
open Cfq_txdb

type outcome = {
  frequent : Frequent.t;
  counters : Counters.t;
  stats : Level_stats.t;
}

(** [mine db info io ~minsup] computes all frequent itemsets.  [par] and
    [session] parallelise / pick counting kernels for every pass (see
    {!Counting}); the outcome is identical either way. *)
val mine :
  Tx_db.t ->
  Item_info.t ->
  Io_stats.t ->
  ?max_level:int ->
  ?par:Counting.par ->
  ?session:Counting.session ->
  minsup:int ->
  unit ->
  outcome

(** [mine_brute db io ~minsup ~universe_size] is the exponential reference
    implementation over the item universe — only for tests on tiny
    universes (≤ 20 items). *)
val mine_brute : Tx_db.t -> Io_stats.t -> minsup:int -> universe_size:int -> Frequent.t
