(** Direct level-2 counting — the array-based C2 kernel of classical
    Apriori implementations.

    A family whose candidates are all 2-sets does not need a trie: rank the
    items that occur in any candidate, and count {e every} pair of ranked
    items of each transaction blindly into a triangular array of cells.
    Increments into a flat [int array] are far cheaper than trie walks, and
    the candidate supports are read off the candidates' own cells at the
    end — cells that correspond to non-candidate pairs are simply ignored,
    so the result is byte-identical to the trie path.

    The cell array is the per-participant accumulator of a parallel pass:
    participants count into private cell arrays, which merge by element-wise
    addition. *)

open Cfq_itembase

type t

(** [shape cands] is the kernel layout when every candidate is a 2-set
    ([None] otherwise, or when [cands] is empty).  O(candidates). *)
val shape : Itemset.t array -> t option

(** Number of triangular cells — the memory cost (in words) of one
    accumulator. *)
val n_cells : t -> int

(** Number of distinct ranked items. *)
val n_ranks : t -> int

(** A fresh all-zero accumulator. *)
val init_cells : t -> int array

(** Per-participant scratch (rank buffer); grows on demand. *)
type scratch

val scratch : unit -> scratch

(** [count_tx_into t cells scratch items] increments the cells of every
    ranked pair of [items] (a strictly increasing raw transaction array). *)
val count_tx_into : t -> int array -> scratch -> int array -> unit

(** [extract t cells] reads the candidate supports off the cells, in
    candidate order. *)
val extract : t -> int array -> int array
