open Cfq_itembase
open Cfq_txdb
open Cfq_constr

let log_src = Logs.Src.create "cfq.cap" ~doc:"CAP levelwise engine"

module Log = (val Logs.src_log log_src)

type t = {
  db : Tx_db.t;
  info : Item_info.t;
  counters : Counters.t;
  stats : Level_stats.t;
  minsup : int;
  max_level : int;
  mutable bundle : Bundle.t;
  mutable level : int;
  mutable pool : Frequent.entry array;
  mutable pool_tbl : unit Itemset.Hashtbl.t;
  mutable freq_items : Item.t array;
  mutable primary : Sel.t option;  (* witness group driving generation *)
  mutable pending : Itemset.t array;
  mutable extra_filter : Itemset.t -> bool;
  mutable levels_rev : Frequent.entry array list;
  mutable exhausted : bool;
}

let create db info ?(max_level = max_int) ~minsup bundle =
  {
    db;
    info;
    counters = Counters.create ();
    stats = Level_stats.create ();
    minsup;
    max_level;
    bundle;
    level = 0;
    pool = [||];
    pool_tbl = Itemset.Hashtbl.create 16;
    freq_items = [||];
    primary = None;
    pending = [||];
    extra_filter = (fun _ -> true);
    levels_rev = [];
    exhausted = false;
  }

let counters t = t.counters
let stats t = t.stats
let bundle t = t.bundle
let db t = t.db
let level t = t.level
let frequent_items t = Array.copy t.freq_items
let set_extra_filter t f = t.extra_filter <- f

let rebuild_pool t entries =
  t.pool <- entries;
  let tbl = Itemset.Hashtbl.create (2 * Array.length entries) in
  Array.iter (fun e -> Itemset.Hashtbl.replace tbl e.Frequent.set ()) entries;
  t.pool_tbl <- tbl

let add_constraints ~nonneg t cs =
  t.bundle <- Bundle.add ~nonneg t.bundle cs;
  if t.level >= 1 then begin
    (* re-apply the (possibly narrowed) universe filter to the item pool *)
    Counters.add_constraint_checks t.counters (Array.length t.freq_items);
    t.freq_items <-
      Array.of_seq
        (Seq.filter (Bundle.permits_item t.bundle) (Array.to_seq t.freq_items));
    let keep e =
      Itemset.for_all (Bundle.permits_item t.bundle) e.Frequent.set
      && Bundle.am_ok t.bundle e.Frequent.set
    in
    Counters.add_constraint_checks t.counters (Array.length t.pool);
    rebuild_pool t (Array.of_seq (Seq.filter keep (Array.to_seq t.pool)))
  end

(* admission filter applied to every generated candidate *)
let admit t cand =
  let n_am = List.length t.bundle.Bundle.am_checks in
  if n_am > 0 then Counters.add_constraint_checks t.counters n_am;
  Bundle.am_ok t.bundle cand && t.extra_filter cand

let singletons t =
  let n = Item_info.universe_size t.info in
  Counters.add_constraint_checks t.counters n;
  let out = ref [] in
  for i = n - 1 downto 0 do
    if Bundle.permits_item t.bundle i then begin
      let s = Itemset.singleton i in
      if admit t s then out := s :: !out
    end
  done;
  Array.of_list !out

let choose_primary t =
  (* the most selective witness group (fewest frequent witnesses) drives
     generation; the others are deferred to final validity checking *)
  match Bundle.requires t.bundle with
  | [] -> None
  | groups ->
      let count_witnesses sel =
        Counters.add_constraint_checks t.counters (Array.length t.freq_items);
        Array.fold_left
          (fun acc i -> if Sel.eval t.info sel i then acc + 1 else acc)
          0 t.freq_items
      in
      let best, _ =
        List.fold_left
          (fun (best, best_n) sel ->
            let n = count_witnesses sel in
            match best with
            | None -> (Some sel, n)
            | Some _ -> if n < best_n then (Some sel, n) else (best, best_n))
          (None, max_int) groups
      in
      best

let level2_candidates t =
  t.primary <- choose_primary t;
  match t.primary with
  | None -> Candidate.pairs_all t.freq_items
  | Some sel ->
      let witnesses =
        Array.of_seq (Seq.filter (Sel.eval t.info sel) (Array.to_seq t.freq_items))
      in
      Candidate.pairs_with_witness ~witnesses ~items:t.freq_items

let deeper_candidates t =
  let prev = Array.map (fun e -> e.Frequent.set) t.pool in
  let prev_mem s = Itemset.Hashtbl.mem t.pool_tbl s in
  match t.primary with
  | None -> Candidate.apriori_gen ~prev ~prev_mem
  | Some sel ->
      Candidate.extension_gen ~prev ~prev_mem ~ext_items:t.freq_items
        ~is_witness:(Sel.eval t.info sel)

let next_candidates t =
  if t.exhausted || t.level >= t.max_level then None
  else begin
    let raw =
      match t.level with
      | 0 -> singletons t
      | 1 -> level2_candidates t
      | _ -> deeper_candidates t
    in
    Counters.add_candidates_generated t.counters (Array.length raw);
    let cands =
      if t.level = 0 then raw
      else Array.of_seq (Seq.filter (admit t) (Array.to_seq raw))
    in
    if Array.length cands = 0 then begin
      t.exhausted <- true;
      None
    end
    else begin
      t.pending <- cands;
      Some cands
    end
  end

let absorb ?(kernel = "trie") ?counted t counts =
  let cands = t.pending in
  if Array.length counts <> Array.length cands then
    invalid_arg "Cap.absorb: counts misaligned with candidates";
  let entries = ref [] in
  Array.iteri
    (fun i set ->
      if counts.(i) >= t.minsup then
        entries := { Frequent.set; support = counts.(i) } :: !entries)
    cands;
  let entries = Array.of_list !entries in
  Array.sort (fun a b -> Itemset.compare a.Frequent.set b.Frequent.set) entries;
  t.level <- t.level + 1;
  Level_stats.record t.stats
    {
      Level_stats.level = t.level;
      candidates = Array.length cands;
      counted = (match counted with Some c -> c | None -> Array.length cands);
      frequent = Array.length entries;
      kernel;
    };
  if t.level = 1 then
    t.freq_items <-
      Array.map
        (fun e ->
          match Itemset.min_item e.Frequent.set with
          | Some i -> i
          | None -> assert false)
        entries;
  rebuild_pool t entries;
  t.levels_rev <- entries :: t.levels_rev;
  t.pending <- [||];
  Log.debug (fun m ->
      m "level %d: %d candidates, %d frequent" t.level (Array.length cands)
        (Array.length entries));
  if Array.length entries = 0 then t.exhausted <- true;
  entries

let result t = Frequent.of_levels (List.rev t.levels_rev)

let run ?par ?session t io =
  let rec loop () =
    match next_candidates t with
    | None -> ()
    | Some cands ->
        let counts = Counting.count_level ?par ?session t.db io t.counters cands in
        let kernel =
          match session with Some s -> Counting.last_kernel s | None -> "trie"
        in
        let (_ : Frequent.entry array) = absorb ~kernel t counts in
        loop ()
  in
  loop ();
  result t
