(** Word-packed vertical bitmaps — the switchover substrate of the adaptive
    counting layer.

    One charged scan materialises, for every live item, a bit vector over
    the scanned rows ({!Vertical}'s tid-list layout, word-packed); the
    support of any candidate over those items is then a popcount
    intersection, with {e zero} further database I/O.  The build scan is
    charged to [Io_stats] exactly like the trie scan it replaces; levels
    answered from the bitmaps charge nothing, which is the whole point —
    see doc/COUNTING.md for the I/O-accounting contract.

    Bitmaps may be built from a {!Projection} instead of the database: rows
    dropped by a projection with [min_len = m] cannot contain any candidate
    of cardinality >= m, so supports stay exact for every candidate of
    cardinality >= [valid_min_card]. *)

open Cfq_itembase

type t

(** [words_needed ~n_items ~n_rows] is the memory footprint (in words) of
    bitmaps for [n_items] live items over [n_rows] rows — the planner's
    budget check. *)
val words_needed : n_items:int -> n_rows:int -> int

(** [create ~n_rows ~valid_min_card items] allocates empty bitmaps for the
    given live items.  Fill with {!set_row} and freeze implicitly; rows are
    whatever the build scan iterates (tids, or projection positions). *)
val create : n_rows:int -> valid_min_card:int -> int array -> t

(** [set_row t ~row items] sets bit [row] of every live item of [items] (a
    raw transaction array; unranked items are ignored).  Safe to call
    concurrently for rows in word-aligned disjoint ranges (see
    {!Cfq_itembase.Bitvec.bits_per_word}). *)
val set_row : t -> row:int -> int array -> unit

val n_rows : t -> int

(** Smallest candidate cardinality the bitmaps answer exactly (1 when built
    from the full database). *)
val valid_min_card : t -> int

(** [covers t items] — every item has a bitmap. *)
val covers : t -> int array -> bool

(** Per-call scratch for multi-way intersections. *)
type scratch

val scratch : t -> scratch

(** [support_into t scratch s] is the exact support of [s] (cardinality
    >= [valid_min_card]; raises [Invalid_argument] on an uncovered item). *)
val support_into : t -> scratch -> Itemset.t -> int

(** [supports t cands] batches {!support_into} with one shared scratch. *)
val supports : t -> Itemset.t array -> int array
