open Cfq_itembase

type t = {
  rank : int array;  (* item -> rank among candidate items, -1 if unranked *)
  row_base : int array;  (* rank i -> base s.t. cell (i < j) = base + j *)
  n_ranks : int;
  n_cells : int;
  cand_cell : int array;  (* candidate index -> its cell *)
}

let shape cands =
  let n = Array.length cands in
  if n = 0 then None
  else if not (Array.for_all (fun s -> Itemset.cardinal s = 2) cands) then None
  else begin
    let max_item = ref 0 in
    Array.iter
      (fun s ->
        match Itemset.max_item s with
        | Some i -> if i > !max_item then max_item := i
        | None -> ())
      cands;
    let rank = Array.make (!max_item + 1) (-1) in
    Array.iter (fun s -> Itemset.iter (fun i -> rank.(i) <- 0) s) cands;
    (* ranks in ascending item order, so transaction scans stay ordered *)
    let n_ranks = ref 0 in
    for i = 0 to !max_item do
      if rank.(i) = 0 then begin
        rank.(i) <- !n_ranks;
        incr n_ranks
      end
    done;
    let nr = !n_ranks in
    (* triangular layout: cell (i < j) = i*(2nr - i - 1)/2 + (j - i - 1) *)
    let row_base = Array.make (max nr 1) 0 in
    for i = 0 to nr - 1 do
      row_base.(i) <- (i * ((2 * nr) - i - 1) / 2) - i - 1
    done;
    let n_cells = nr * (nr - 1) / 2 in
    let cand_cell =
      Array.map
        (fun s ->
          let a = Itemset.get s 0 and b = Itemset.get s 1 in
          row_base.(rank.(a)) + rank.(b))
        cands
    in
    Some { rank; row_base; n_ranks = nr; n_cells; cand_cell }
  end

let n_cells t = t.n_cells
let n_ranks t = t.n_ranks
let init_cells t = Array.make t.n_cells 0

type scratch = { mutable buf : int array }

let scratch () = { buf = Array.make 64 0 }

let count_tx_into t cells scratch items =
  let n = Array.length items in
  if Array.length scratch.buf < n then
    scratch.buf <- Array.make (max n (2 * Array.length scratch.buf)) 0;
  let buf = scratch.buf in
  let rank = t.rank in
  let n_rank = Array.length rank in
  (* map the transaction to its ranked items; ranks ascend with items *)
  let m = ref 0 in
  for j = 0 to n - 1 do
    let item = Array.unsafe_get items j in
    if item < n_rank then begin
      let r = Array.unsafe_get rank item in
      if r >= 0 then begin
        Array.unsafe_set buf !m r;
        incr m
      end
    end
  done;
  let m = !m in
  let row_base = t.row_base in
  for a = 0 to m - 1 do
    let base = Array.unsafe_get row_base (Array.unsafe_get buf a) in
    for b = a + 1 to m - 1 do
      let cell = base + Array.unsafe_get buf b in
      Array.unsafe_set cells cell (Array.unsafe_get cells cell + 1)
    done
  done

let extract t cells = Array.map (fun cell -> cells.(cell)) t.cand_cell
