(** Candidate prefix trie for support counting.

    The counting analogue of the Apriori hash tree: all candidates of one
    level are inserted into a trie keyed by their (sorted) items, and each
    transaction is walked through the trie once, incrementing the counter of
    every candidate it contains.

    The frozen structure is a flat struct-of-arrays layout (int-indexed
    nodes in BFS order, children contiguous), so counting walks are
    cache-friendly, allocation-free, and the trie can be shared immutably
    across domains — each domain counting into its own array via
    {!count_tx_into}. *)

open Cfq_itembase

type t

(** [build cands] indexes the candidates (all of the same size, though this
    is not required). *)
val build : Itemset.t array -> t

val n_candidates : t -> int

(** [count_tx t items] registers one transaction given as a strictly
    increasing item array. *)
val count_tx : t -> Item.t array -> unit

(** Counters aligned with the candidate array passed to {!build}. *)
val counts : t -> int array

(** [count_tx_into t out items] is {!count_tx} writing into a caller-owned
    array instead of the trie's internal counters — the trie structure
    itself is never mutated, so one trie can serve several threads, each
    with its own output array. *)
val count_tx_into : t -> int array -> Item.t array -> unit
