open Cfq_itembase

let items_of_level entries =
  Itemset.of_array
    (Array.map
       (fun e ->
         match Itemset.min_item e.Frequent.set with
         | Some i -> i
         | None -> invalid_arg "Dovetail: empty set at level 1")
       entries)

let run ?par ?session io ~s ~t ?(after_l1 = fun ~l1_s:_ ~l1_t:_ -> ())
    ?(on_s_level = fun _ _ -> ()) ?(on_t_level = fun _ _ -> ()) () =
  if Cap.db s != Cap.db t then
    invalid_arg "Dovetail.run: the two lattices must share one database";
  let db = Cap.db s in
  let fired_l1 = ref false in
  let s_done = ref false and t_done = ref false in
  (* a side that exhausts before completing level 1 has an empty L1; the
     reduction must still fire so the other side learns it *)
  let maybe_fire_l1 () =
    if
      (not !fired_l1)
      && (Cap.level s >= 1 || !s_done)
      && (Cap.level t >= 1 || !t_done)
    then begin
      fired_l1 := true;
      let l1 state =
        if Cap.level state >= 1 then items_of_level (Frequent.level (Cap.result state) 1)
        else Itemset.empty
      in
      after_l1 ~l1_s:(l1 s) ~l1_t:(l1 t)
    end
  in
  let rec step () =
    let cs = Cap.next_candidates s in
    let ct = Cap.next_candidates t in
    if cs = None then s_done := true;
    if ct = None then t_done := true;
    match (cs, ct) with
    | None, None -> ()
    | _ ->
        let families =
          List.filter_map
            (fun x -> x)
            [
              Option.map (fun c -> (`S, Cap.counters s, c)) cs;
              Option.map (fun c -> (`T, Cap.counters t, c)) ct;
            ]
        in
        let counts =
          Counting.count_shared ?par ?session db io
            (List.map (fun (_, counters, c) -> (counters, c)) families)
        in
        (* per-family kernel labels: a shared pass may count one side with
           direct2 and the other with the trie *)
        let kernels =
          match session with
          | Some sess ->
              let ks = Counting.last_kernels sess in
              if List.length ks = List.length families then ks
              else List.map (fun _ -> "trie") families
          | None -> List.map (fun _ -> "trie") families
        in
        List.iter2
          (fun (side, _, _) (kernel, counts) ->
            match side with
            | `S ->
                let entries = Cap.absorb ~kernel s counts in
                on_s_level (Cap.level s) entries
            | `T ->
                let entries = Cap.absorb ~kernel t counts in
                on_t_level (Cap.level t) entries)
          families
          (List.combine kernels counts);
        maybe_fire_l1 ();
        step ()
  in
  step ();
  (Cap.result s, Cap.result t)
