open Cfq_itembase

(* mutable build-time representation *)
type bnode = {
  children : (int, bnode) Hashtbl.t;
  mutable bcand : int;
}

(* Frozen counting representation: a flat struct-of-arrays trie.  Nodes are
   ints; node [i]'s outgoing edges live in the slot range [lo.(i), hi.(i))
   of the shared edge arrays.  High-fanout nodes are dense jump tables over
   their key span ([base.(i) >= 0]: slot [lo.(i) + k - base.(i)] holds the
   child reached on key [k], [-1] for a hole); the rest are sorted
   key/child pairs searched binarily.  Nodes are laid out in BFS order, so
   the children of one node are contiguous and counting walks mostly move
   forward through the arrays — no pointer chasing, no allocation, and the
   whole structure is immutable after build, safely shared across
   domains. *)
type t = {
  cand : int array;  (* candidate index closed at this node, -1 if none *)
  base : int array;  (* dense nodes: first key of the span; sparse: -1 *)
  lo : int array;
  hi : int array;
  edge_key : int array;  (* sparse slots: sorted keys; dense slots: unused *)
  edge_child : int array;  (* child node id, -1 = dense hole *)
  counts : int array;
}

let new_bnode () = { children = Hashtbl.create 4; bcand = -1 }

(* growable int array for the single-pass BFS flattening *)
module Vec = struct
  type t = { mutable a : int array; mutable len : int }

  let create () = { a = Array.make 16 0; len = 0 }

  let push v x =
    if v.len = Array.length v.a then begin
      let b = Array.make (2 * Array.length v.a) 0 in
      Array.blit v.a 0 b 0 v.len;
      v.a <- b
    end;
    v.a.(v.len) <- x;
    v.len <- v.len + 1

  let to_array v = Array.sub v.a 0 v.len
end

let flatten root n_cands =
  let cand = Vec.create ()
  and base = Vec.create ()
  and lo = Vec.create ()
  and hi = Vec.create ()
  and edge_key = Vec.create ()
  and edge_child = Vec.create () in
  let q = Queue.create () in
  Queue.add root q;
  let next_id = ref 1 in
  (* nodes are processed in id order; a child's id is assigned the moment
     it is enqueued, so edges can point forward before the child's own row
     is written *)
  while not (Queue.is_empty q) do
    let b = Queue.pop q in
    let pairs =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) b.children []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    in
    let fanout = List.length pairs in
    let first = edge_child.Vec.len in
    Vec.push cand b.bcand;
    Vec.push lo first;
    (match pairs with
    | [] -> Vec.push base (-1)
    | (k0, _) :: _ ->
        let kn = fst (List.nth pairs (fanout - 1)) in
        let span = kn - k0 + 1 in
        if fanout >= 8 && span <= 16 * fanout then begin
          Vec.push base k0;
          let slot_child = Array.make span (-1) in
          List.iter
            (fun (k, child) ->
              let id = !next_id in
              incr next_id;
              Queue.add child q;
              slot_child.(k - k0) <- id)
            pairs;
          Array.iter
            (fun id ->
              Vec.push edge_key 0;
              Vec.push edge_child id)
            slot_child
        end
        else begin
          Vec.push base (-1);
          List.iter
            (fun (k, child) ->
              let id = !next_id in
              incr next_id;
              Queue.add child q;
              Vec.push edge_key k;
              Vec.push edge_child id)
            pairs
        end);
    Vec.push hi edge_child.Vec.len
  done;
  {
    cand = Vec.to_array cand;
    base = Vec.to_array base;
    lo = Vec.to_array lo;
    hi = Vec.to_array hi;
    edge_key = Vec.to_array edge_key;
    edge_child = Vec.to_array edge_child;
    counts = Array.make n_cands 0;
  }

let build cands =
  let root = new_bnode () in
  Array.iteri
    (fun idx set ->
      let node = ref root in
      Itemset.iter
        (fun item ->
          let next =
            match Hashtbl.find_opt !node.children item with
            | Some n -> n
            | None ->
                let n = new_bnode () in
                Hashtbl.replace !node.children item n;
                n
          in
          node := next)
        set;
      !node.bcand <- idx)
    cands;
  flatten root (Array.length cands)

let n_candidates t = Array.length t.counts

let count_tx_into t counts items =
  let n = Array.length items in
  let cand = t.cand
  and base = t.base
  and lo = t.lo
  and hi = t.hi
  and edge_key = t.edge_key
  and edge_child = t.edge_child in
  let rec walk id pos =
    let c = Array.unsafe_get cand id in
    if c >= 0 then counts.(c) <- counts.(c) + 1;
    let l = Array.unsafe_get lo id and h = Array.unsafe_get hi id in
    if h > l then begin
      let b = Array.unsafe_get base id in
      if b >= 0 then
        (* dense: direct slot lookup over the key span *)
        for j = pos to n - 1 do
          let slot = l + Array.unsafe_get items j - b in
          if slot >= l && slot < h then begin
            let child = Array.unsafe_get edge_child slot in
            if child >= 0 then walk child (j + 1)
          end
        done
      else
        (* sparse: binary search the sorted key slots *)
        for j = pos to n - 1 do
          let item = Array.unsafe_get items j in
          let a = ref l and z = ref (h - 1) in
          let found = ref (-1) in
          while !found < 0 && !a <= !z do
            let mid = (!a + !z) / 2 in
            let k = Array.unsafe_get edge_key mid in
            if k = item then found := mid
            else if k < item then a := mid + 1
            else z := mid - 1
          done;
          if !found >= 0 then walk (Array.unsafe_get edge_child !found) (j + 1)
        done
    end
  in
  walk 0 0

let count_tx t items = count_tx_into t t.counts items
let counts t = t.counts
