open Cfq_itembase

(* Byte model shared with the service cache: approximate heap bytes of the
   boxed representation.  Must match what the cache charged historically so
   condense:false accounting is unchanged. *)
let itemset_weight s = 24 + (8 * Itemset.cardinal s)
let entry_weight (e : Frequent.entry) = 32 + itemset_weight e.Frequent.set
let frequent_weight freq = Frequent.fold (fun acc e -> acc + entry_weight e) 128 freq

type repr =
  | Closed of Frequent.entry array array
      (* per-cardinality buckets of the closed sets, lex-sorted within a
         bucket; bucket [k-1] holds cardinality-k entries (may be empty) *)
  | Raw of Frequent.t

type t = {
  repr : repr;
  n_sets : int;
  n_closed : int;
  max_level : int;
  raw_bytes : int;
  stored_bytes : int;
}

let is_condensed t = match t.repr with Closed _ -> true | Raw _ -> false
let n_sets t = t.n_sets
let n_closed t = t.n_closed
let max_level t = t.max_level
let raw_bytes t = t.raw_bytes
let bytes t = t.stored_bytes

let raw freq =
  let b = frequent_weight freq in
  let n = Frequent.n_sets freq in
  {
    repr = Raw freq;
    n_sets = n;
    n_closed = n;
    max_level = Frequent.max_level freq;
    raw_bytes = b;
    stored_bytes = b;
  }

(* Itemset.powerset refuses sets above this cardinality, and a closed set of
   more than 2^20 subsets would be hopeless to reconstruct anyway. *)
let max_closed_card = 20

(* The round-trip is the identity iff the collection is downward closed with
   anti-monotone supports and each level is strictly lex-sorted:
   - downward closure makes "subsets of closed sets" enumerate exactly the
     member sets (every member sits under a maximal member, which is closed);
   - anti-monotone supports make "max over closed supersets" exact: the
     absorption chain s -> s+{i} (equal support) ends at a closed superset of
     equal support, and no closed superset can exceed it;
   - strict lex order per level lets reconstruction reproduce the original
     array order byte for byte.
   CAP output and FUP promotions satisfy all three; collections filtered by a
   non-anti-monotone succinct constraint (e.g. Dom ⊇ V) fail the closure
   check and stay raw. *)
let condensable freq =
  let ml = Frequent.max_level freq in
  if ml > max_closed_card then false
  else begin
    let ok = ref true in
    (try
       for k = 1 to ml do
         let lvl = Frequent.level freq k in
         Array.iteri
           (fun i (e : Frequent.entry) ->
             if i > 0 && Itemset.compare lvl.(i - 1).Frequent.set e.set >= 0
             then raise Exit;
             if k >= 2 then
               Itemset.iter_delete_one e.set (fun d ->
                   match Frequent.support freq d with
                   | Some sup when sup >= e.support -> ()
                   | Some _ | None -> raise Exit))
           lvl
       done
     with Exit -> ok := false);
    !ok
  end

let closed_buckets freq =
  let ml = Frequent.max_level freq in
  let buckets = Array.make (max ml 1) [] in
  (* Frequent.closed yields entries in level order, lex within a level, so
     rev-consing per bucket keeps each bucket lex-sorted. *)
  List.iter
    (fun (e : Frequent.entry) ->
      let k = Itemset.cardinal e.set in
      buckets.(k - 1) <- e :: buckets.(k - 1))
    (Frequent.closed freq);
  Array.map (fun l -> Array.of_list (List.rev l)) buckets

let of_frequent ?(force = false) freq =
  let r = raw freq in
  if r.n_sets = 0 || not (condensable freq) then r
  else begin
    let buckets = closed_buckets freq in
    let n_closed =
      Array.fold_left (fun acc l -> acc + Array.length l) 0 buckets
    in
    let stored =
      Array.fold_left
        (Array.fold_left (fun acc e -> acc + entry_weight e))
        160 buckets
    in
    if force || stored < r.raw_bytes then
      {
        repr = Closed buckets;
        n_sets = r.n_sets;
        n_closed;
        max_level = r.max_level;
        raw_bytes = r.raw_bytes;
        stored_bytes = stored;
      }
    else r
  end

let to_frequent t =
  match t.repr with
  | Raw f -> f
  | Closed buckets ->
      let tbl = Itemset.Hashtbl.create (2 * t.n_sets) in
      Array.iter
        (Array.iter (fun (e : Frequent.entry) ->
             Itemset.powerset e.set (fun s ->
                 if Itemset.cardinal s > 0 then
                   match Itemset.Hashtbl.find_opt tbl s with
                   | Some sup when sup >= e.support -> ()
                   | _ -> Itemset.Hashtbl.replace tbl s e.support)))
        buckets;
      let levels = Array.make t.max_level [] in
      Itemset.Hashtbl.iter
        (fun s sup ->
          let k = Itemset.cardinal s in
          levels.(k - 1) <- { Frequent.set = s; support = sup } :: levels.(k - 1))
        tbl;
      Frequent.of_levels
        (Array.to_list
           (Array.map
              (fun l ->
                let a = Array.of_list l in
                Array.sort
                  (fun (a : Frequent.entry) b -> Itemset.compare a.set b.set)
                  a;
                a)
              levels))

let support t s =
  match t.repr with
  | Raw f -> Frequent.support f s
  | Closed buckets ->
      let k = Itemset.cardinal s in
      if k = 0 then None
      else begin
        let best = ref None in
        for l = k to t.max_level do
          Array.iter
            (fun (e : Frequent.entry) ->
              if Itemset.subset s e.set then
                match !best with
                | Some b when b >= e.support -> ()
                | _ -> best := Some e.support)
            buckets.(l - 1)
        done;
        !best
      end

let mem t s =
  match t.repr with Raw f -> Frequent.mem f s | Closed _ -> support t s <> None

let closed_entries t =
  match t.repr with
  | Raw f -> Frequent.closed f
  | Closed buckets ->
      List.concat_map Array.to_list (Array.to_list buckets)

let maximal t =
  match t.repr with
  | Raw f -> Frequent.maximal f
  | Closed _ ->
      (* maximal in the collection = closed with no closed strict superset *)
      let all = closed_entries t in
      List.filter
        (fun (e : Frequent.entry) ->
          not
            (List.exists
               (fun (e' : Frequent.entry) ->
                 Itemset.cardinal e'.set > Itemset.cardinal e.set
                 && Itemset.subset e.set e'.set)
               all))
        all

(* Wire format: "CM1" magic, then varint count, then per maximal entry its
   varint support, cardinality and delta-encoded item gaps (items strictly
   ascending, so each gap-minus-one fits a varint). *)

let add_varint buf n =
  let n = ref n in
  let stop = ref false in
  while not !stop do
    let b = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr b);
      stop := true
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

let read_varint s pos =
  let len = String.length s in
  let rec go acc shift pos =
    if pos >= len then invalid_arg "Condensed.decode_maximal: truncated";
    let c = Char.code s.[pos] in
    let acc = acc lor ((c land 0x7f) lsl shift) in
    if c land 0x80 = 0 then (acc, pos + 1) else go acc (shift + 7) (pos + 1)
  in
  go 0 0 pos

let magic = "CM1"

let encode_maximal t =
  let entries = maximal t in
  let buf = Buffer.create 256 in
  Buffer.add_string buf magic;
  add_varint buf (List.length entries);
  List.iter
    (fun (e : Frequent.entry) ->
      add_varint buf e.support;
      add_varint buf (Itemset.cardinal e.set);
      let prev = ref (-1) in
      Itemset.iter
        (fun i ->
          add_varint buf (i - !prev - 1);
          prev := i)
        e.set)
    entries;
  Buffer.contents buf

let decode_maximal s =
  let mlen = String.length magic in
  if String.length s < mlen || String.sub s 0 mlen <> magic then
    invalid_arg "Condensed.decode_maximal: bad magic";
  let n, pos = read_varint s mlen in
  let pos = ref pos in
  let out = ref [] in
  for _ = 1 to n do
    let support, p = read_varint s !pos in
    let card, p = read_varint s p in
    if card = 0 then invalid_arg "Condensed.decode_maximal: empty set";
    let items = Array.make card 0 in
    let prev = ref (-1) in
    let p = ref p in
    for j = 0 to card - 1 do
      let gap, p' = read_varint s !p in
      let item = !prev + 1 + gap in
      items.(j) <- item;
      prev := item;
      p := p'
    done;
    pos := !p;
    out := { Frequent.set = Itemset.of_array items; support } :: !out
  done;
  if !pos <> String.length s then
    invalid_arg "Condensed.decode_maximal: trailing bytes";
  List.rev !out
