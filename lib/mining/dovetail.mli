(** Dovetailed computation of the [S] and [T] lattices (Sections 4–5).

    The two levelwise computations advance in lock step — one level of [S],
    one level of [T] — and their candidates are counted in a {e single}
    shared scan per level, so the I/O of frequency verification is paid
    once (the argument for dovetailing at the end of Section 5.2).  Hooks:

    {ul
    {- [after_l1] fires once both level-1 sets are known — this is where the
       query optimizer performs the quasi-succinct reduction and injects the
       resulting 1-var conditions into both sides;}
    {- [on_s_level]/[on_t_level] fire after each absorbed level — this is
       where the [V^k] bounds for iterative [sum] pruning are refreshed.}}

    Both states must have been created over the same database. *)

open Cfq_itembase
open Cfq_txdb

(** [run io ~s ~t ()] drives both lattices to exhaustion and returns both
    frequent collections.  [par] parallelises every shared counting pass
    (see {!Counting.par}); [session] attaches an adaptive kernel session
    shared by both sides — the projection and bitmaps are built once and
    serve the dovetailed S/T families together.  Answers and counters are
    unchanged in either case. *)
val run :
  ?par:Counting.par ->
  ?session:Counting.session ->
  Io_stats.t ->
  s:Cap.t ->
  t:Cap.t ->
  ?after_l1:(l1_s:Itemset.t -> l1_t:Itemset.t -> unit) ->
  ?on_s_level:(int -> Frequent.entry array -> unit) ->
  ?on_t_level:(int -> Frequent.entry array -> unit) ->
  unit ->
  Frequent.t * Frequent.t
