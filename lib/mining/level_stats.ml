type row = {
  level : int;
  candidates : int;
  counted : int;
  frequent : int;
  kernel : string;
}

type t = { mutable rows : row list (* reverse order *) }

let create () = { rows = [] }
let record t r = t.rows <- r :: t.rows
let rows t = List.rev t.rows

let frequent_at t k =
  match List.find_opt (fun r -> r.level = k) t.rows with
  | Some r -> r.frequent
  | None -> 0

let pp ppf t =
  List.iter
    (fun r ->
      Format.fprintf ppf "L%d: cand=%d counted=%d freq=%d kernel=%s@." r.level
        r.candidates r.counted r.frequent r.kernel)
    (rows t)
