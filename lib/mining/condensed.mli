(** Condensed (closed-itemset) representation of a frequent collection.

    A {!Frequent.t} stores every frequent set with its support; at cache
    scale the memory budget — not compute — caps how many collections stay
    warm.  This module stores only the {e closed} sets (no proper superset
    of equal support) and reconstructs everything else on demand:

    - the support of any member is the {e maximum support over its stored
      closed supersets} (exact: every member has a closed superset of equal
      support, and anti-monotonicity bounds all others below it);
    - membership is the existence of a stored superset (exact for
      downward-closed collections: every member lies under a maximal
      member, and maximal sets are closed).

    Condensation is {e lossless by construction}: {!of_frequent} condenses
    only when it can prove the round-trip is the identity — the collection
    must be downward closed (all delete-one subsets present, with
    anti-monotone supports) and level-sorted, which is what the CAP engine
    and the FUP promotion path emit.  Anything else (e.g. a collection
    pruned by a non-anti-monotone succinct constraint) is kept raw, so
    {!to_frequent} is {e always} [of_frequent |> to_frequent == identity]
    — order, supports and membership included.

    The dense correlated workloads where the cache budget hurts are
    exactly the ones that condense well: equal-support subset families
    collapse to one closed representative (cf. the closed-itemset global
    constraint, arXiv 1604.04894).  The {!maximal} projection (no frequent
    proper superset at all) drops supports of non-maximal sets and is the
    minimal wire format for shipping large answers (cf. maximal-itemset
    compression, arXiv 2203.11208). *)

open Cfq_itembase

(** {1 Cache byte model}

    The approximate byte weights the service cache charges; kept here so
    raw and condensed forms are priced by one model. *)

val itemset_weight : Itemset.t -> int
val entry_weight : Frequent.entry -> int

(** [frequent_weight f] is the raw collection's weight: a 128-byte base
    plus {!entry_weight} per entry. *)
val frequent_weight : Frequent.t -> int

(** {1 Condensed collections} *)

type t

(** [raw f] stores [f] uncondensed ([bytes = raw_bytes =
    frequent_weight f]); {!to_frequent} returns [f] itself. *)
val raw : Frequent.t -> t

(** [of_frequent ?force f] condenses [f] to its closed sets when the
    round-trip is provably the identity {e and} the condensed form is
    strictly smaller; otherwise falls back to [raw f].  [~force:true]
    (used by the [CFQ_TEST_CONDENSE] matrix) condenses whenever lossless,
    even when not smaller. *)
val of_frequent : ?force:bool -> Frequent.t -> t

(** Reconstruct the full collection.  Exactly the [f] given to
    {!of_frequent}: same levels, same per-level order, same supports.
    Cost: one pass enumerating the subsets of each closed set. *)
val to_frequent : t -> Frequent.t

(** [true] when the closed form is stored (a {!to_frequent} will pay a
    reconstruction). *)
val is_condensed : t -> bool

(** Sets in the {e represented} collection (not the stored closed ones). *)
val n_sets : t -> int

(** Stored closed sets ([= n_sets] when raw). *)
val n_closed : t -> int

val max_level : t -> int

(** Weight of the raw representation (what the cache would have charged
    before condensation). *)
val raw_bytes : t -> int

(** Weight as stored — the cache charge. *)
val bytes : t -> int

(** {1 On-demand reconstruction} *)

(** [support t s] is the support [s] would have in {!to_frequent}, without
    reconstructing: the max support over stored closed supersets. *)
val support : t -> Itemset.t -> int option

val mem : t -> Itemset.t -> bool

(** The closed entries, level by level. *)
val closed_entries : t -> Frequent.entry list

(** The maximal entries (no proper superset in the collection) — the
    minimal generating family: the collection is exactly the non-empty
    subsets of these. *)
val maximal : t -> Frequent.entry list

(** {1 Wire format}

    A maximal-only projection serialized as varint-packed bytes: per entry
    its support, cardinality and delta-encoded item gaps.  Minimal for
    shipping large answers; supports of non-maximal subsets are {e not}
    recoverable from the wire form (membership is). *)

val encode_maximal : t -> string

(** Decodes what {!encode_maximal} wrote.  Raises [Invalid_argument] on a
    malformed buffer. *)
val decode_maximal : string -> Frequent.entry list
