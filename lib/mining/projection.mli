(** Shrinking in-memory transaction projections (AprioriTid, Agrawal &
    Srikant VLDB'94, in spirit).

    After a counting pass over candidates of cardinality [k], only the
    items occurring in some candidate can occur in any {e future} candidate
    (levelwise generation is monotone), and only transactions holding at
    least [k+1] of them can support a level-[k+1] candidate.  A projection
    is the database restricted accordingly: later passes scan it instead of
    the store, and are charged its (smaller) page footprint — the explicit
    I/O saving documented in doc/COUNTING.md.

    Projections chain: each round's projection is built {e during} the
    counting scan of the previous substrate, so shrinking costs no extra
    pass.  Supports over a projection with [min_len = m] are exact for
    every candidate of cardinality >= [m] whose items are all [live]. *)

open Cfq_txdb

type t

(** [make ~page_model ~universe_size ~live ~min_len txs] — [txs] are the
    projected transactions (strictly increasing item arrays, original scan
    order); [live] the items kept.  The page charge of one scan is computed
    from [page_model] over the projected sizes. *)
val make :
  page_model:Page_model.t ->
  universe_size:int ->
  live:int array ->
  min_len:int ->
  int array array ->
  t

val tuples : t -> int

(** Pages one scan of the projection is charged. *)
val pages : t -> int

val min_len : t -> int

(** Total item slots stored — the memory estimate (in words). *)
val words : t -> int

(** [covers t ~items ~min_card] — supports over [t] are exact for
    candidates over [items] of cardinality >= [min_card]. *)
val covers : t -> items:int array -> min_card:int -> bool

(** [charge_scan t io] records one scan of the projection (its reduced page
    footprint) to [io]. *)
val charge_scan : t -> Io_stats.t -> unit

(** [iter_range t ~lo ~hi f] delivers the projected transactions with
    positions [lo..hi] (inclusive), raw — no charge.  Safe concurrently on
    disjoint ranges. *)
val iter_range : t -> lo:int -> hi:int -> (int array -> unit) -> unit

(** [chunks t ~max_chunks] partitions [0 .. tuples-1] into at most
    [max_chunks] contiguous inclusive ranges. *)
val chunks : t -> max_chunks:int -> (int * int) list
