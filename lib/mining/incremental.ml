open Cfq_itembase
open Cfq_txdb

type outcome = {
  frequent : Frequent.t;
  old_scans : int;
  counted_against_old : int;
}

let ceil_frac frac n = max 1 (int_of_float (Float.ceil (frac *. float_of_int n)))

let count_in db io cands =
  if Array.length cands = 0 then [||]
  else begin
    let trie = Trie.build cands in
    Tx_db.iter_scan db io (fun tx ->
        Trie.count_tx trie (Itemset.unsafe_to_array tx.Transaction.items));
    Trie.counts trie
  end

let to_frequent entries =
  let by_level = Hashtbl.create 16 in
  List.iter
    (fun (set, support) ->
      let k = Itemset.cardinal set in
      Hashtbl.replace by_level k
        ({ Frequent.set; support }
        :: Option.value ~default:[] (Hashtbl.find_opt by_level k)))
    entries;
  let max_k = Hashtbl.fold (fun k _ acc -> max k acc) by_level 0 in
  Frequent.of_levels
    (List.init max_k (fun i ->
         let level =
           Array.of_list (Option.value ~default:[] (Hashtbl.find_opt by_level (i + 1)))
         in
         Array.sort (fun a b -> Itemset.compare a.Frequent.set b.Frequent.set) level;
         level))

let update_abs ?max_level ?stats ~old_db ~old_frequent ~delta io ~old_minsup
    ~union_minsup ~universe_size () =
  if union_minsup < old_minsup then
    invalid_arg "Incremental.update_abs: union_minsup < old_minsup";
  (* 1. update every old frequent set with its count in the increment *)
  let old_sets =
    Array.of_list (List.map (fun e -> e.Frequent.set) (Frequent.to_list old_frequent))
  in
  let delta_counts = count_in delta io old_sets in
  let winners = ref [] in
  Array.iteri
    (fun i set ->
      let total =
        delta_counts.(i)
        + Option.value ~default:0 (Frequent.support old_frequent set)
      in
      if total >= union_minsup then winners := (set, total) :: !winners)
    old_sets;
  (* 2. a set that was not frequent in the old database needs at least this
     much support inside the increment to be frequent overall *)
  let threshold_delta = max 1 (union_minsup - (old_minsup - 1)) in
  let delta_frequent =
    Vertical.mine (Vertical.build delta io ~universe_size) ~minsup:threshold_delta
  in
  let within_cap set =
    match max_level with None -> true | Some k -> Itemset.cardinal set <= k
  in
  let new_cands =
    Frequent.fold
      (fun acc e ->
        if Frequent.mem old_frequent e.Frequent.set || not (within_cap e.Frequent.set)
        then acc
        else e.Frequent.set :: acc)
      [] delta_frequent
    |> Array.of_list
  in
  let old_scans = ref 0 in
  if Array.length new_cands > 0 then begin
    incr old_scans;
    let old_counts = count_in old_db io new_cands in
    (* the delta supports of the new candidates are exact in delta_frequent *)
    Array.iteri
      (fun i set ->
        let total =
          old_counts.(i)
          + Option.value ~default:0 (Frequent.support delta_frequent set)
        in
        if total >= union_minsup then winners := (set, total) :: !winners)
      new_cands
  end;
  (* per-level observability: candidates = old sets re-counted in the delta
     plus seeded newcomers; the kernel tag distinguishes the pure delta pass
     ("fup-delta") from a level that also paid the old-database count
     ("fup-old") *)
  (match stats with
  | None -> ()
  | Some lstats ->
      let levels = Hashtbl.create 8 in
      let bump set slot =
        let k = Itemset.cardinal set in
        let o, n, f =
          Option.value ~default:(0, 0, 0) (Hashtbl.find_opt levels k)
        in
        Hashtbl.replace levels k
          (match slot with
          | `Old -> (o + 1, n, f)
          | `New -> (o, n + 1, f)
          | `Frequent -> (o, n, f + 1))
      in
      Array.iter (fun set -> bump set `Old) old_sets;
      Array.iter (fun set -> bump set `New) new_cands;
      List.iter (fun (set, _) -> bump set `Frequent) !winners;
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) levels []
      |> List.sort compare
      |> List.iter (fun (level, (o, n, f)) ->
             Level_stats.record lstats
               {
                 Level_stats.level;
                 candidates = o + n;
                 counted = o + n;
                 frequent = f;
                 kernel = (if n > 0 then "fup-old" else "fup-delta");
               }));
  {
    frequent = to_frequent !winners;
    old_scans = !old_scans;
    counted_against_old = Array.length new_cands;
  }

let update ~old_db ~old_frequent ~delta io ~minsup_frac ~universe_size =
  let n_old = Tx_db.size old_db and n_delta = Tx_db.size delta in
  let old_minsup = ceil_frac minsup_frac n_old in
  let union_minsup = ceil_frac minsup_frac (n_old + n_delta) in
  (* a shrinking fraction could in principle lower the union threshold below
     the old one; FUP's seeding argument needs it monotone *)
  let union_minsup = max union_minsup old_minsup in
  update_abs ~old_db ~old_frequent ~delta io ~old_minsup ~union_minsup ~universe_size
    ()
