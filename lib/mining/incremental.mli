(** Incremental maintenance of frequent sets under insertions — the FUP
    idea (Cheung, Han, Ng & Wong, ICDE'96; reference [6] of the paper).

    Given the frequent sets of a database [DB] and a batch of new
    transactions [db], the frequent sets of [DB ∪ db] are computed by
    scanning mostly the {e increment}:

    {ul
    {- every old frequent set is updated with its count in [db] alone —
       winners and losers among them are decided without touching [DB];}
    {- a candidate that was {e not} frequent in [DB] can only become
       frequent overall if it is frequent inside [db] (proportionally), so
       new candidates are seeded from the increment and only they are
       counted against the old database.}} *)

open Cfq_txdb

type outcome = {
  frequent : Frequent.t;  (** exact frequent sets of the union *)
  old_scans : int;  (** scans of the old database (the expensive ones) *)
  counted_against_old : int;  (** candidate sets counted against [DB] *)
}

(** [update_abs ~old_db ~old_frequent ~delta io ~old_minsup ~union_minsup
    ~universe_size ()] is the integer-threshold core used by live cache
    maintenance ([Cfq_live]).  [old_frequent] must contain every set of
    interest whose support in [old_db] is at least [old_minsup] (a
    constraint-pruned collection is fine: sets it omits are either
    old-infrequent — reseeded from the delta — or fail constraints the
    caller re-checks anyway), with exact supports.  Requires
    [old_minsup <= union_minsup]; raises [Invalid_argument] otherwise.
    The result is exact at [union_minsup] over [old_db ∪ delta] for every
    set the input collection could answer.  [?max_level] caps the
    cardinality of candidates seeded from the delta, matching a
    level-capped input collection.  All scans — the delta pass, the delta
    seed mining, and the at-most-one old-database candidate count — are
    charged to [io].  With [?stats], one {!Level_stats} row is recorded
    per level touched: [candidates]/[counted] are the old sets delta-passed
    plus the seeded newcomers of that level, [frequent] the union winners,
    and the kernel tag is ["fup-old"] when the level paid the old-database
    count and ["fup-delta"] when the delta alone decided it. *)
val update_abs :
  ?max_level:int ->
  ?stats:Level_stats.t ->
  old_db:Tx_db.t ->
  old_frequent:Frequent.t ->
  delta:Tx_db.t ->
  Io_stats.t ->
  old_minsup:int ->
  union_minsup:int ->
  universe_size:int ->
  unit ->
  outcome

(** [update ~old_db ~old_frequent ~delta io ~minsup_frac ~universe_size]
    where [old_frequent] must be the exact frequent collection of [old_db]
    at relative threshold [minsup_frac].  The result is exact for
    [old_db ∪ delta] at the same relative threshold. *)
val update :
  old_db:Tx_db.t ->
  old_frequent:Frequent.t ->
  delta:Tx_db.t ->
  Io_stats.t ->
  minsup_frac:float ->
  universe_size:int ->
  outcome
