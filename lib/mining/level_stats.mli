(** Per-level bookkeeping of a levelwise run, used for the paper's §7.1
    per-level table ([a/b] = sets computed by the optimized strategy vs all
    frequent sets). *)

type row = {
  level : int;
  candidates : int;  (** sets generated for this level *)
  counted : int;
      (** sets actually counted for support (fewer than [candidates] when a
          prefilter, e.g. the DHP hash buckets, discarded some first) *)
  frequent : int;  (** sets found frequent *)
  kernel : string;
      (** counting kernel that produced the supports of this level
          ("trie", "direct2", "vertical", "dhp-hash", ...) *)
}

type t

val create : unit -> t
val record : t -> row -> unit
val rows : t -> row list

(** [frequent_at t k] is 0 when level [k] was never reached. *)
val frequent_at : t -> int -> int

val pp : Format.formatter -> t -> unit
