(* Doubly-linked recency list threaded through a hashtable: O(1) find,
   insert, bump and evict. *)

type 'b node = {
  key : string;
  mutable value : 'b;
  mutable node_weight : int;
  mutable prev : 'b node option;  (* towards most recently used *)
  mutable next : 'b node option;  (* towards least recently used *)
}

type 'b t = {
  cache_budget : int;
  table : (string, 'b node) Hashtbl.t;
  mutable head : 'b node option;  (* most recently used *)
  mutable tail : 'b node option;  (* least recently used *)
  mutable total_weight : int;
  mutable n_evictions : int;
}

let create ~budget =
  if budget < 0 then invalid_arg "Lru.create: negative budget";
  {
    cache_budget = budget;
    table = Hashtbl.create 64;
    head = None;
    tail = None;
    total_weight = 0;
    n_evictions = 0;
  }

let budget t = t.cache_budget
let length t = Hashtbl.length t.table
let weight t = t.total_weight
let evictions t = t.n_evictions

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some n ->
      unlink t n;
      push_front t n;
      Some n.value

let mem t k = Hashtbl.mem t.table k

let drop t n =
  unlink t n;
  Hashtbl.remove t.table n.key;
  t.total_weight <- t.total_weight - n.node_weight

let evict_until_fits t =
  while t.total_weight > t.cache_budget do
    match t.tail with
    | None -> t.total_weight <- 0 (* unreachable: weight without entries *)
    | Some lru ->
        drop t lru;
        t.n_evictions <- t.n_evictions + 1
  done

let remove t k =
  match Hashtbl.find_opt t.table k with None -> () | Some n -> drop t n

let insert t k ~weight v =
  if weight > t.cache_budget then begin
    remove t k;
    false
  end
  else begin
    (match Hashtbl.find_opt t.table k with
    | Some n ->
        unlink t n;
        push_front t n;
        n.value <- v;
        t.total_weight <- t.total_weight - n.node_weight + weight;
        n.node_weight <- weight
    | None ->
        let n = { key = k; value = v; node_weight = weight; prev = None; next = None } in
        Hashtbl.replace t.table k n;
        push_front t n;
        t.total_weight <- t.total_weight + weight);
    evict_until_fits t;
    true
  end

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None;
  t.total_weight <- 0

let fold f acc t =
  let rec go acc = function
    | None -> acc
    | Some n -> go (f acc ~key:n.key ~value:n.value) n.next
  in
  go acc t.head
