(** A string-keyed LRU cache with per-entry weights and a total budget.

    Entries carry a caller-supplied weight (an approximate byte count);
    inserting beyond the budget evicts least-recently-used entries until the
    cache fits again.  A single entry heavier than the whole budget is
    refused outright.

    The structure itself is not thread-safe; {!Cfq_service.Service} guards
    all access with its own lock. *)

type 'a t

(** [create ~budget] is an empty cache holding at most [budget] weight
    units.  Raises [Invalid_argument] when [budget < 0]. *)
val create : budget:int -> 'a t

val budget : 'a t -> int

(** Number of live entries. *)
val length : 'a t -> int

(** Total weight of the live entries. *)
val weight : 'a t -> int

(** Evictions performed since creation. *)
val evictions : 'a t -> int

(** [find t k] is the value bound to [k], bumped to most-recently-used. *)
val find : 'a t -> string -> 'a option

val mem : 'a t -> string -> bool

(** [insert t k ~weight v] binds [k] to [v] (replacing any previous
    binding), evicting LRU entries as needed.  Returns [false] — and stores
    nothing — when [weight] alone exceeds the budget. *)
val insert : 'a t -> string -> weight:int -> 'a -> bool

val remove : 'a t -> string -> unit
val clear : 'a t -> unit

(** [fold f acc t] folds over the live entries, most recently used first.
    [f] must not mutate the cache. *)
val fold : ('a -> key:string -> value:'b -> 'a) -> 'a -> 'b t -> 'a
