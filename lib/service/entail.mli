(** Syntactic entailment between 1-var constraints, for subsumption reuse.

    [implies c1 c2] is a {e sound, incomplete} test that every itemset
    satisfying [c1] satisfies [c2] (over any attribute table).  It covers
    the forms that matter for query refinement: equal atoms, aggregate and
    cardinality bounds tightening their constant, and the monotone
    value-set relations (a smaller [⊆]-bound implies a larger one, etc.).
    [false] never breaks soundness of a cache reuse — it only forfeits it.

    This is the session-level counterpart of the per-query reasoning in
    {!Cfq_core.Rewrite} (which merges comparable atoms within one
    conjunction) and {!Cfq_constr.One_var.induce_weaker} (which derives
    weaker consequences of one atom). *)

open Cfq_constr

(** [implies c1 c2]: satisfying [c1] guarantees satisfying [c2]. *)
val implies : One_var.t -> One_var.t -> bool

(** [conj_implies cs c]: the conjunction of [cs] entails [c] — some atom of
    [cs] implies [c], or [c] is trivially true. *)
val conj_implies : One_var.t list -> One_var.t -> bool

(** [subsumes ~cached ~requested]: a frequent collection mined under the
    conjunction [cached] contains every set satisfying the conjunction
    [requested], i.e. [requested] entails each atom of [cached]. *)
val subsumes : cached:One_var.t list -> requested:One_var.t list -> bool
