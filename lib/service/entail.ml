open Cfq_itembase
open Cfq_constr

(* same comparison subject: does [x op1 k1] imply [x op2 k2] for all real x? *)
let bound_implies op1 k1 op2 k2 =
  match (op1, op2) with
  | Cmp.Le, Cmp.Le -> k1 <= k2
  | Cmp.Le, Cmp.Lt -> k1 < k2
  | Cmp.Le, Cmp.Ne -> k2 > k1
  | Cmp.Lt, Cmp.Lt -> k1 <= k2
  | Cmp.Lt, Cmp.Le -> k1 <= k2
  | Cmp.Lt, Cmp.Ne -> k2 >= k1
  | Cmp.Ge, Cmp.Ge -> k1 >= k2
  | Cmp.Ge, Cmp.Gt -> k1 > k2
  | Cmp.Ge, Cmp.Ne -> k2 < k1
  | Cmp.Gt, Cmp.Gt -> k1 >= k2
  | Cmp.Gt, Cmp.Ge -> k1 >= k2
  | Cmp.Gt, Cmp.Ne -> k2 <= k1
  | Cmp.Eq, _ -> Cmp.eval op2 k1 k2
  | Cmp.Ne, Cmp.Ne -> k1 = k2
  | _ -> false

let equal_atom c1 c2 =
  match (c1, c2) with
  | One_var.Nonempty, One_var.Nonempty -> true
  | One_var.Dom_subset (a1, v1), One_var.Dom_subset (a2, v2)
  | One_var.Dom_superset (a1, v1), One_var.Dom_superset (a2, v2)
  | One_var.Dom_disjoint (a1, v1), One_var.Dom_disjoint (a2, v2)
  | One_var.Dom_intersect (a1, v1), One_var.Dom_intersect (a2, v2)
  | One_var.Dom_not_superset (a1, v1), One_var.Dom_not_superset (a2, v2) ->
      Attr.equal a1 a2 && Value_set.equal v1 v2
  | One_var.Agg_cmp (g1, a1, op1, k1), One_var.Agg_cmp (g2, a2, op2, k2) ->
      Agg.equal g1 g2 && Attr.equal a1 a2 && op1 = op2 && k1 = k2
  | One_var.Card_cmp (op1, k1), One_var.Card_cmp (op2, k2) -> op1 = op2 && k1 = k2
  | _ -> false

(* true of every non-empty set, independent of the attribute table *)
let trivially_true = function
  | One_var.Nonempty -> true
  | One_var.Card_cmp (Cmp.Ge, k) -> k <= 1
  | One_var.Card_cmp (Cmp.Gt, k) -> k <= 0
  | One_var.Card_cmp (Cmp.Ne, k) -> k <= 0
  | _ -> false

let implies c1 c2 =
  equal_atom c1 c2 || trivially_true c2
  ||
  match (c1, c2) with
  | _, One_var.Nonempty -> true
  (* value-set monotonicity on a common attribute *)
  | One_var.Dom_subset (a1, v1), One_var.Dom_subset (a2, v2) ->
      Attr.equal a1 a2 && Value_set.subset v1 v2
  | One_var.Dom_subset (a1, v1), One_var.Dom_disjoint (a2, v2) ->
      Attr.equal a1 a2 && Value_set.disjoint v1 v2
  | One_var.Dom_subset (a1, v1), One_var.Dom_not_superset (a2, v2) ->
      Attr.equal a1 a2 && not (Value_set.subset v2 v1)
  | One_var.Dom_superset (a1, v1), One_var.Dom_superset (a2, v2) ->
      Attr.equal a1 a2 && Value_set.subset v2 v1
  | One_var.Dom_superset (a1, v1), One_var.Dom_intersect (a2, v2) ->
      Attr.equal a1 a2 && not (Value_set.disjoint v1 v2)
  | One_var.Dom_disjoint (a1, v1), One_var.Dom_disjoint (a2, v2) ->
      Attr.equal a1 a2 && Value_set.subset v2 v1
  | One_var.Dom_disjoint (a1, v1), One_var.Dom_not_superset (a2, v2) ->
      Attr.equal a1 a2 && not (Value_set.disjoint v1 v2)
  | One_var.Dom_intersect (a1, v1), One_var.Dom_intersect (a2, v2) ->
      Attr.equal a1 a2 && Value_set.subset v1 v2
  | One_var.Dom_not_superset (a1, v1), One_var.Dom_not_superset (a2, v2) ->
      Attr.equal a1 a2 && Value_set.subset v1 v2
  (* aggregate / cardinality bounds over the same subject *)
  | One_var.Agg_cmp (g1, a1, op1, k1), One_var.Agg_cmp (g2, a2, op2, k2) ->
      Agg.equal g1 g2 && Attr.equal a1 a2 && bound_implies op1 k1 op2 k2
  | One_var.Card_cmp (op1, k1), One_var.Card_cmp (op2, k2) ->
      bound_implies op1 (float_of_int k1) op2 (float_of_int k2)
  | _ -> false

let conj_implies cs c = trivially_true c || List.exists (fun c' -> implies c' c) cs

let subsumes ~cached ~requested =
  List.for_all (fun c -> conj_implies requested c) cached
