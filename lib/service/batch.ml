open Cfq_core

type item = {
  line : int;
  text : string;
  outcome : (Service.answer, Service.error) result;
}

let load path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let items = ref [] in
      let lineno = ref 0 in
      (try
         while true do
           let raw = input_line ic in
           incr lineno;
           let text = String.trim raw in
           if text <> "" && not (String.length text > 0 && text.[0] = '#') then
             items := (!lineno, text) :: !items
         done
       with End_of_file -> ());
      close_in ic;
      Ok (List.rev !items)

let run service ?deadline items =
  let ctx = Service.ctx service in
  (* parse + validate up front; only well-formed queries reach the pool *)
  let prepared =
    List.map
      (fun (line, text) ->
        match Parser.parse_result text with
        | Error msg -> (line, text, Error (Service.Failed ("parse error: " ^ msg)))
        | Ok q -> (
            match
              Validate.check ~s_info:ctx.Exec.s_info ~t_info:ctx.Exec.t_info q
            with
            | Error errors ->
                let msg =
                  String.concat "; "
                    (List.map (Format.asprintf "%a" Validate.pp_error) errors)
                in
                (line, text, Error (Service.Failed msg))
            | Ok () -> (line, text, Ok q)))
      items
  in
  let runnable =
    List.filter_map (function _, _, Ok q -> Some q | _, _, Error _ -> None) prepared
  in
  let answers = ref (Service.run_many service ?deadline runnable) in
  List.map
    (fun (line, text, prep) ->
      match prep with
      | Error e -> { line; text; outcome = Error e }
      | Ok _ -> (
          match !answers with
          | a :: rest ->
              answers := rest;
              { line; text; outcome = a }
          | [] -> { line; text; outcome = Error (Service.Failed "missing answer") }))
    prepared

let report_lines items =
  List.map
    (fun { line; text; outcome } ->
      match outcome with
      | Ok a ->
          Printf.sprintf "%3d  %-60s %6d pairs  %8d counted  %8d checks  %.3fs  [%s]"
            line
            (if String.length text > 60 then String.sub text 0 57 ^ "..." else text)
            a.Service.n_pairs a.Service.support_counted a.Service.constraint_checks
            a.Service.latency_seconds
            (Service.served_from_name a.Service.served_from)
      | Error e ->
          Printf.sprintf "%3d  %-60s ERROR: %s" line
            (if String.length text > 60 then String.sub text 0 57 ^ "..." else text)
            (Service.error_to_string e))
    items

let run_file service ?deadline path =
  match load path with
  | Error msg -> Error msg
  | Ok items ->
      let results = run service ?deadline items in
      let ok, err =
        List.fold_left
          (fun (ok, err) i ->
            match i.outcome with Ok _ -> (ok + 1, err) | Error _ -> (ok, err + 1))
          (0, 0) results
      in
      let body = String.concat "\n" (report_lines results) in
      let table = Cfq_report.Table.render (Service.metrics_table service) in
      Ok
        (Printf.sprintf "%s\n\n%d queries: %d ok, %d errors\n\n%s" body
           (List.length results) ok err table)
