open Cfq_itembase
open Cfq_txdb
open Cfq_constr
open Cfq_mining
open Cfq_core

let log_src = Logs.Src.create "cfq.service" ~doc:"CFQ query service"

module Log = (val Logs.src_log log_src)

type config = {
  domains : int;
  mine_domains : int;
  queue_capacity : int;
  cache_budget : int;
  default_deadline : float option;
  retries : int;
  backoff_base : float;
  breaker_threshold : int;
  breaker_cooldown : int;
  degrade : bool;
  jitter_seed : int64;
  kernel : Counting.kernel;
  calibrate : bool;
  condense : bool;
}

let default_config =
  {
    domains = 2;
    mine_domains = 0;
    queue_capacity = 1024;
    cache_budget = 64 * 1024 * 1024;
    default_deadline = None;
    retries = 2;
    backoff_base = 0.002;
    breaker_threshold = 5;
    breaker_cooldown = 8;
    degrade = true;
    jitter_seed = 0x0DDB1A5EL;
    kernel = Counting.Trie;
    calibrate = true;
    condense = true;
  }

type served_from =
  | Cold
  | Answer_cache
  | Subsumed
  | Degraded

let served_from_name = function
  | Cold -> "cold"
  | Answer_cache -> "answer-cache"
  | Subsumed -> "subsumed"
  | Degraded -> "degraded"

type answer = {
  pairs : (Frequent.entry * Frequent.entry) list;
  n_pairs : int;
  served_from : served_from;
  support_counted : int;
  constraint_checks : int;
  scans : int;
  pages_read : int;
  latency_seconds : float;
  notes : string list;
}

type error =
  | Rejected
  | Overloaded
  | Deadline_exceeded
  | Fault of Cfq_error.t
  | Failed of string

let error_to_string = function
  | Rejected -> "rejected: admission queue full"
  | Overloaded -> "overloaded: circuit breaker open"
  | Deadline_exceeded -> "deadline exceeded"
  | Fault e -> "fault: " ^ Cfq_error.to_string e
  | Failed msg -> "failed: " ^ msg

(* one side's cached frequent collection, as mined.  The collection is
   stored condensed (closed sets only, [Condensed.t]) when the condense
   knob is on and the round-trip is provably lossless; lookups rebuild the
   raw collection on demand.  The cache charges the memoized [se_weight],
   so a condensed entry makes room for more distinct fingerprints under
   the same budget. *)
type side_entry = {
  se_epoch : int;  (* database generation the supports are exact for *)
  se_info : Item_info.t;  (* shared, immutable; needed to re-key on promotion *)
  se_info_id : int;
  se_minsup : int;  (* absolute support it was mined at *)
  se_max_level : int option;
  se_constraints : One_var.t list;  (* normalised 1-var conjunction it was mined under *)
  se_cond : Condensed.t;
  se_weight : int;  (* memoized cache charge: [Condensed.bytes se_cond] *)
}

(* a cached answer.  With condensation on, the pair list — a near
   cross-product of the two sides — is stored as deduplicated per-side
   entry arrays plus two indices per pair, rebuilt on lookup. *)
type packed_pairs = {
  pk_s : Frequent.entry array;
  pk_t : Frequent.entry array;
  pk_idx : int array;  (* pair i is (pk_s.(idx.(2i)), pk_t.(idx.(2i+1))) *)
}

type stored_pairs =
  | Raw_pairs of (Frequent.entry * Frequent.entry) list
  | Packed_pairs of packed_pairs

type cached_answer = {
  ca_epoch : int;
      (* the epoch the supports are exact for; checked on every lookup *)
  ca_query : Query.t;  (* simplified query, for degraded covering tests *)
  ca_answer : answer;  (* template with [pairs = []]; pairs live in ca_pairs *)
  ca_pairs : stored_pairs;
  ca_weight : int;  (* memoized cache charge *)
}

(* circuit breaker: [Open n] sheds the next [n] admissions, then half-opens;
   the cooldown is admission-counted, not wall-clock, so breaker behaviour
   is deterministic under a deterministic submission order *)
type breaker_state =
  | Closed
  | Open of int
  | Half_open

(* per-shard health of a sharded backend: failures whose error pages fall
   in a shard's range charge that shard's breaker, so one faulty shard
   degrades its own admissions to cache-only serving while the others keep
   mining.  All fields are guarded by the service lock. *)
type shard_health = {
  mutable sh_breaker : breaker_state;
  mutable sh_consec : int;
  mutable sh_admissions : int;
  mutable sh_failures : int;
  mutable sh_trips : int;
  mutable sh_shed : int;
}

type t = {
  mutable service_ctx : Exec.ctx;
      (* swapped (under [lock]) by [seal_live]: queries capture it together
         with [epoch] at admission and run against that snapshot — a store
         handle obtained before a seal stays readable *)
  mutable epoch : int;
      (* monotone database generation, minted by [seal_live]; every cache
         entry is stamped with the epoch its supports are exact for, and
         every lookup path checks the stamp, so a seal can never serve
         stale supports *)
  mutable live_source : Cfq_live.Source.t option;
  service_config : config;
  pool : Pool.t;
  mine_par : Counting.par;
      (* intra-query counting parallelism: helpers are borrowed from [pool],
         never spawned, so the service as a whole never oversubscribes *)
  calibration : Counting.calibration;
      (* one measured-cost record for the whole service: the first cold
         mines calibrate the Auto planner for every later query (updates
         are mutex-guarded inside the record) *)
  lock : Mutex.t;
  answers : cached_answer Lru.t;
      (* the epoch and (simplified) query are kept alongside each answer so
         degraded serving can test whether a cached answer covers a new
         query — and reject it when it predates the current epoch *)
  sides : side_entry Lru.t;
  service_metrics : Metrics.t;
  mutable breaker : breaker_state;
  mutable consec_failures : int;
  mutable consec_rejections : int;
  shard_health : shard_health array;  (* one per shard; [||] unsharded *)
}

type ticket =
  | Pooled of (answer, error) result Pool.promise
  | Immediate of (answer, error) result

let create ?(config = default_config) ctx =
  (* answers are small relative to collections: 1/4 vs 3/4 of the budget *)
  let budget = max 0 config.cache_budget in
  let pool = Pool.create ~domains:config.domains ~queue_capacity:config.queue_capacity () in
  let mine_domains =
    if config.mine_domains = 0 then config.domains else max 1 config.mine_domains
  in
  {
    service_ctx = ctx;
    epoch = 0;
    live_source = None;
    service_config = config;
    pool;
    mine_par = Counting.par ~pool mine_domains;
    calibration = Counting.create_calibration ();
    lock = Mutex.create ();
    answers = Lru.create ~budget:(budget / 4);
    sides = Lru.create ~budget:(budget - (budget / 4));
    service_metrics = Metrics.create ();
    breaker = Closed;
    consec_failures = 0;
    consec_rejections = 0;
    shard_health =
      (match Tx_db.shards ctx.Exec.db with
      | Some subs ->
          Array.init (Array.length subs) (fun _ ->
              {
                sh_breaker = Closed;
                sh_consec = 0;
                sh_admissions = 0;
                sh_failures = 0;
                sh_trips = 0;
                sh_shed = 0;
              })
      | None -> [||]);
  }

let ctx t = t.service_ctx
let config t = t.service_config
let epoch t = t.epoch

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
      Mutex.unlock t.lock;
      v
  | exception e ->
      Mutex.unlock t.lock;
      raise e

(* ------------------------------------------------------------------ *)
(* weights (approximate bytes, for the cache budget).  The collection byte
   model lives in [Condensed] so raw and condensed forms are priced by one
   scale; weights are computed once per insert and memoized on the entry. *)

let entry_weight = Condensed.entry_weight

let raw_answer_weight (a : answer) =
  List.fold_left (fun acc (s, p) -> acc + 16 + entry_weight s + entry_weight p) 256 a.pairs

let packed_weight pk =
  let sum = Array.fold_left (fun acc e -> acc + entry_weight e) in
  256 + sum 0 pk.pk_s + sum 0 pk.pk_t + (8 * Array.length pk.pk_idx)

(* ------------------------------------------------------------------ *)
(* condensation: the cache's storage format *)

(* CFQ_TEST_CONDENSE=1 routes every cached collection and answer through
   condensation even when the closed form is not smaller — the test
   matrices use it to put the whole suite on the condensed paths *)
let force_condense =
  match Sys.getenv_opt "CFQ_TEST_CONDENSE" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let condense_on t = t.service_config.condense || force_condense

(* condense a freshly mined or promoted collection for caching; every side
   insert is priced through here so the ratio metrics see the full
   stream *)
let condense_frequent t freq =
  let cond =
    if condense_on t then Condensed.of_frequent ~force:force_condense freq
    else Condensed.raw freq
  in
  locked t (fun () ->
      Metrics.record_condensed t.service_metrics
        ~raw:(Condensed.raw_bytes cond) ~stored:(Condensed.bytes cond)
        ~condensed:(Condensed.is_condensed cond));
  cond

(* rebuild a side's raw collection — one reconstruction paid when the
   closed form is stored.  Never call with [t.lock] held. *)
let side_frequent t entry =
  if Condensed.is_condensed entry.se_cond then
    locked t (fun () -> Metrics.record_reconstruction t.service_metrics);
  Condensed.to_frequent entry.se_cond

let pack_answer t (a : answer) =
  if not (condense_on t) then (Raw_pairs a.pairs, raw_answer_weight a)
  else begin
    (* within one answer a side's set determines its entry (all entries of
       a side come from one collection), so sets key the dedup tables *)
    let dedup proj =
      let tbl = Itemset.Hashtbl.create 64 in
      let entries = ref [] and n = ref 0 in
      let idx (e : Frequent.entry) =
        match Itemset.Hashtbl.find_opt tbl e.Frequent.set with
        | Some i -> i
        | None ->
            let i = !n in
            incr n;
            Itemset.Hashtbl.add tbl e.Frequent.set i;
            entries := e :: !entries;
            i
      in
      let ids = List.map (fun p -> idx (proj p)) a.pairs in
      (Array.of_list (List.rev !entries), ids)
    in
    let s_entries, s_ids = dedup fst in
    let t_entries, t_ids = dedup snd in
    let idx = Array.make (2 * List.length a.pairs) 0 in
    List.iteri
      (fun i (si, ti) ->
        idx.(2 * i) <- si;
        idx.((2 * i) + 1) <- ti)
      (List.combine s_ids t_ids);
    let pk = { pk_s = s_entries; pk_t = t_entries; pk_idx = idx } in
    (Packed_pairs pk, packed_weight pk)
  end

let make_cached_answer t ~epoch q (a : answer) =
  let ca_pairs, ca_weight = pack_answer t a in
  {
    ca_epoch = epoch;
    ca_query = q;
    ca_answer = { a with pairs = [] };
    ca_pairs;
    ca_weight;
  }

(* with [t.lock] held: price an answer insert for the ratio metrics.
   [a] must still carry its pairs (the raw-equivalent weight needs them). *)
let record_answer_condensed_locked t (a : answer) ca =
  Metrics.record_condensed t.service_metrics ~raw:(raw_answer_weight a)
    ~stored:ca.ca_weight
    ~condensed:
      (match ca.ca_pairs with Packed_pairs _ -> true | Raw_pairs _ -> false)

(* with [t.lock] held: rebuild the pair list of a cached answer *)
let unpack_answer_locked t ca =
  match ca.ca_pairs with
  | Raw_pairs pairs -> { ca.ca_answer with pairs }
  | Packed_pairs pk ->
      Metrics.record_reconstruction t.service_metrics;
      let n = Array.length pk.pk_idx / 2 in
      let pairs = ref [] in
      for i = n - 1 downto 0 do
        pairs :=
          (pk.pk_s.(pk.pk_idx.(2 * i)), pk.pk_t.(pk.pk_idx.((2 * i) + 1)))
          :: !pairs
      done;
      { ca.ca_answer with pairs = !pairs }

(* ------------------------------------------------------------------ *)
(* deadline handling *)

exception Expired

let check_deadline = function
  | Some d when Unix.gettimeofday () > d -> raise Expired
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* side resolution: cached collection via subsumption, or cold CAP mining *)

type side_spec = {
  sp_info : Item_info.t;
  sp_minsup : int;
  sp_max_level : int option;
  sp_constraints : One_var.t list;
}

let side_spec_of (ctx : Exec.ctx) (q : Query.t) = function
  | `S ->
      {
        sp_info = ctx.Exec.s_info;
        sp_minsup = Tx_db.absolute_support ctx.Exec.db q.Query.s_minsup;
        sp_max_level = q.Query.max_level;
        sp_constraints = q.Query.s_constraints;
      }
  | `T ->
      {
        sp_info = ctx.Exec.t_info;
        sp_minsup = Tx_db.absolute_support ctx.Exec.db q.Query.t_minsup;
        sp_max_level = q.Query.max_level;
        sp_constraints = q.Query.t_constraints;
      }

(* cached [entry] answers [spec]: current epoch (its supports are exact for
   the live database), same attribute table, mined at least as deep and at
   most as high a threshold, under an entailed constraint set.  Side keys
   carry no database identity — without the epoch check a post-seal lookup
   would happily serve pre-seal supports. *)
let entry_answers ~epoch entry spec =
  entry.se_epoch = epoch
  && entry.se_info_id = Fingerprint.info_id spec.sp_info
  && entry.se_minsup <= spec.sp_minsup
  && (match entry.se_max_level with
     | None -> true
     | Some cached_cap -> (
         match spec.sp_max_level with
         | Some requested_cap -> cached_cap >= requested_cap
         | None -> false))
  && Entail.subsumes ~cached:entry.se_constraints ~requested:spec.sp_constraints

(* call with [t.lock] held *)
let covering_entry_locked t ~epoch spec =
  Lru.fold
    (fun best ~key ~value ->
      if not (entry_answers ~epoch value spec) then best
      else
        match best with
        | Some (_, b) when Condensed.n_sets b.se_cond <= Condensed.n_sets value.se_cond
          -> best
        | _ -> Some (key, value))
    None t.sides

let find_subsuming t ~epoch spec =
  locked t (fun () ->
      match covering_entry_locked t ~epoch spec with
      | None -> None
      | Some (key, entry) ->
          ignore (Lru.find t.sides key : side_entry option) (* bump recency *);
          Metrics.record_subsumption_hit t.service_metrics;
          Some entry)

(* the mined collection may exceed the request (lower threshold, weaker
   constraints, deferred atoms): filter down to exactly the valid sets,
   counting every 1-var evaluation as a constraint check *)
let filter_valid spec freq checks =
  let out = ref [] in
  Frequent.iter
    (fun e ->
      let ok =
        e.Frequent.support >= spec.sp_minsup
        && (match spec.sp_max_level with
           | Some cap -> Itemset.cardinal e.Frequent.set <= cap
           | None -> true)
        && List.for_all
             (fun c ->
               incr checks;
               One_var.eval spec.sp_info c e.Frequent.set)
             spec.sp_constraints
      in
      if ok then out := e :: !out)
    freq;
  Array.of_list (List.rev !out)

(* drive the CAP state machine one level at a time so the deadline is
   honoured between scans *)
let mine_side ~deadline ~par ~kernel ~calibrate ~calibration (ctx : Exec.ctx)
    spec io =
  let bundle = Bundle.compile ~nonneg:ctx.Exec.nonneg spec.sp_info spec.sp_constraints in
  let state =
    Cap.create ctx.Exec.db spec.sp_info ?max_level:spec.sp_max_level
      ~minsup:spec.sp_minsup bundle
  in
  (* one adaptive session per cold mine: its projection and bitmaps live
     exactly as long as this side's levelwise run — but the calibration
     record is the service's, so measured throughput carries across
     queries *)
  let session =
    if kernel = Counting.Trie then None
    else
      let plan =
        { (Counting.plan_of_kernel kernel) with Counting.calibrate }
      in
      Some (Counting.create_session ~plan ~calibration ())
  in
  let rec loop () =
    check_deadline deadline;
    match Cap.next_candidates state with
    | None -> ()
    | Some cands ->
        let counts =
          Counting.count_level ~par ?session ctx.Exec.db io (Cap.counters state) cands
        in
        let pass_kernel =
          match session with Some s -> Counting.last_kernel s | None -> "trie"
        in
        let (_ : Frequent.entry array) = Cap.absorb ~kernel:pass_kernel state counts in
        loop ()
  in
  loop ();
  (Cap.result state, Cap.counters state, session)

let resolve_side t ~deadline ~ctx ~epoch spec io counters checks =
  check_deadline deadline;
  match find_subsuming t ~epoch spec with
  | Some entry -> (filter_valid spec (side_frequent t entry) checks, true)
  | None ->
      let freq, side_counters, session =
        mine_side ~deadline ~par:t.mine_par ~kernel:t.service_config.kernel
          ~calibrate:t.service_config.calibrate ~calibration:t.calibration ctx
          spec io
      in
      Counters.merge counters side_counters;
      (match session with
      | Some s ->
          let pc = Counting.pass_counts s in
          locked t (fun () ->
              Metrics.record_kernel_passes t.service_metrics
                ~trie:pc.Counting.trie_passes ~direct2:pc.Counting.direct2_passes
                ~vertical:pc.Counting.vertical_passes
                ~projected_scans:pc.Counting.projected_scans
                ~bitmap_builds:pc.Counting.bitmap_builds;
              Metrics.observe_calibration_samples t.service_metrics
                (Counting.calibration_samples t.calibration))
      | None -> ());
      let cond = condense_frequent t freq in
      let entry =
        {
          se_epoch = epoch;
          se_info = spec.sp_info;
          se_info_id = Fingerprint.info_id spec.sp_info;
          se_minsup = spec.sp_minsup;
          se_max_level = spec.sp_max_level;
          se_constraints = spec.sp_constraints;
          se_cond = cond;
          se_weight = Condensed.bytes cond;
        }
      in
      let key =
        Fingerprint.side_key ~info:spec.sp_info ~minsup_abs:spec.sp_minsup
          ~max_level:spec.sp_max_level spec.sp_constraints
      in
      locked t (fun () ->
          Metrics.record_side_mined t.service_metrics;
          (* a seal may have raced this mine: supports counted against the
             pre-seal snapshot must not enter the cache at the new epoch *)
          if t.epoch = epoch then
            ignore (Lru.insert t.sides key ~weight:entry.se_weight entry : bool));
      (* filter the collection as mined: the cold path never pays a
         reconstruction *)
      (filter_valid spec freq checks, false)

(* ------------------------------------------------------------------ *)
(* one query, in a worker domain *)

let execute t ~deadline (q : Query.t) =
  let t0 = Unix.gettimeofday () in
  (* one consistent snapshot: the ctx and the epoch its supports belong to *)
  let ctx, epoch = locked t (fun () -> (t.service_ctx, t.epoch)) in
  let rw = Rewrite.simplify q in
  let q = rw.Rewrite.query in
  let key = Fingerprint.query_key ctx q in
  let cached =
    locked t (fun () ->
        match Lru.find t.answers key with
        | Some ca when ca.ca_epoch = epoch ->
            Metrics.record_answer_hit t.service_metrics;
            Some (unpack_answer_locked t ca)
        | Some _ | None ->
            Metrics.record_answer_miss t.service_metrics;
            None)
  in
  match cached with
  | Some a ->
      let latency = Unix.gettimeofday () -. t0 in
      locked t (fun () ->
          Metrics.record_query t.service_metrics ~latency ~support_counted:0
            ~constraint_checks:0 ~scans:0 ~pages_read:0);
      {
        a with
        served_from = Answer_cache;
        support_counted = 0;
        constraint_checks = 0;
        scans = 0;
        pages_read = 0;
        latency_seconds = latency;
      }
  | None ->
      let io = Io_stats.create () in
      let counters = Counters.create () in
      let checks = ref 0 in
      let answer =
        if rw.Rewrite.s_unsat || rw.Rewrite.t_unsat then
          {
            pairs = [];
            n_pairs = 0;
            served_from = Cold;
            support_counted = 0;
            constraint_checks = 0;
            scans = 0;
            pages_read = 0;
            latency_seconds = 0.;
            notes = rw.Rewrite.notes @ [ "query is unsatisfiable; nothing was mined" ];
          }
        else begin
          let valid_s, s_cached =
            resolve_side t ~deadline ~ctx ~epoch (side_spec_of ctx q `S) io
              counters checks
          in
          let valid_t, t_cached =
            resolve_side t ~deadline ~ctx ~epoch (side_spec_of ctx q `T) io
              counters checks
          in
          check_deadline deadline;
          let collected = ref [] in
          let pair_stats =
            Pairs.form ~s_info:ctx.Exec.s_info ~t_info:ctx.Exec.t_info ~valid_s ~valid_t
              ~two_var:q.Query.two_var
              ~on_pair:(fun es et -> collected := (es, et) :: !collected)
              ()
          in
          let served_from = if s_cached && t_cached then Subsumed else Cold in
          {
            pairs = List.rev !collected;
            n_pairs = pair_stats.Pairs.n_pairs;
            served_from;
            support_counted = Counters.support_counted counters;
            constraint_checks = !checks + pair_stats.Pairs.checks;
            scans = Io_stats.scans io;
            pages_read = Io_stats.pages_read io;
            latency_seconds = 0.;
            notes = rw.Rewrite.notes;
          }
        end
      in
      let latency = Unix.gettimeofday () -. t0 in
      let answer = { answer with latency_seconds = latency } in
      let ca = make_cached_answer t ~epoch q answer in
      locked t (fun () ->
          if t.epoch = epoch then begin
            record_answer_condensed_locked t answer ca;
            ignore (Lru.insert t.answers key ~weight:ca.ca_weight ca : bool)
          end;
          Metrics.record_query t.service_metrics ~latency
            ~support_counted:answer.support_counted
            ~constraint_checks:answer.constraint_checks ~scans:answer.scans
            ~pages_read:answer.pages_read);
      Log.debug (fun m ->
          m "served %s: %d pairs, %d counted (%s)" key answer.n_pairs
            answer.support_counted
            (served_from_name answer.served_from));
      answer

(* ------------------------------------------------------------------ *)
(* graceful degradation: serve a failed query by filtering a cached
   superset answer.  The database is immutable and cached pairs carry
   absolute supports, so filtering an entailed superset answer down to the
   requested thresholds and constraints yields exactly the requested
   pairs; what degrades is only the per-query cost accounting and notes. *)

let abs_minsup (ctx : Exec.ctx) frac = Tx_db.absolute_support ctx.Exec.db frac

let level_covers ~cached ~requested =
  match (cached, requested) with
  | None, _ -> true
  | Some _, None -> false
  | Some c, Some r -> c >= r

(* every 2-var atom the cached run enforced is requested too, so no pair
   the requested query wants was pruned from the cached answer *)
let two_var_covers ~cached ~requested =
  List.for_all (fun c -> List.mem c requested) cached

let answer_covers ctx ~(cached_q : Query.t) ~(requested : Query.t) =
  abs_minsup ctx cached_q.Query.s_minsup <= abs_minsup ctx requested.Query.s_minsup
  && abs_minsup ctx cached_q.Query.t_minsup <= abs_minsup ctx requested.Query.t_minsup
  && level_covers ~cached:cached_q.Query.max_level ~requested:requested.Query.max_level
  && Entail.subsumes ~cached:cached_q.Query.s_constraints
       ~requested:requested.Query.s_constraints
  && Entail.subsumes ~cached:cached_q.Query.t_constraints
       ~requested:requested.Query.t_constraints
  && two_var_covers ~cached:cached_q.Query.two_var ~requested:requested.Query.two_var

let filter_answer (ctx : Exec.ctx) (requested : Query.t) (a : answer) =
  let s_min = abs_minsup ctx requested.Query.s_minsup in
  let t_min = abs_minsup ctx requested.Query.t_minsup in
  let checks = ref 0 in
  let keep_level set =
    match requested.Query.max_level with
    | Some cap -> Itemset.cardinal set <= cap
    | None -> true
  in
  let one_var info cs set =
    List.for_all
      (fun c ->
        incr checks;
        One_var.eval info c set)
      cs
  in
  let keep ((es : Frequent.entry), (et : Frequent.entry)) =
    es.Frequent.support >= s_min
    && et.Frequent.support >= t_min
    && keep_level es.Frequent.set && keep_level et.Frequent.set
    && one_var ctx.Exec.s_info requested.Query.s_constraints es.Frequent.set
    && one_var ctx.Exec.t_info requested.Query.t_constraints et.Frequent.set
    && List.for_all
         (fun c ->
           incr checks;
           Two_var.eval ~s_info:ctx.Exec.s_info ~t_info:ctx.Exec.t_info c
             es.Frequent.set et.Frequent.set)
         requested.Query.two_var
  in
  let pairs = List.filter keep a.pairs in
  {
    pairs;
    n_pairs = List.length pairs;
    served_from = Degraded;
    support_counted = 0;
    constraint_checks = !checks;
    scans = 0;
    pages_read = 0;
    latency_seconds = 0.;
    notes = [ "degraded: filtered from a cached superset answer" ];
  }

(* call with [t.lock] held *)
let degraded_lookup_locked t (q : Query.t) =
  if not t.service_config.degrade then None
  else begin
    let rw = Rewrite.simplify q in
    let q = rw.Rewrite.query in
    if rw.Rewrite.s_unsat || rw.Rewrite.t_unsat then None
    else begin
      (* MRU-first: the first covering answer is the most recent one.
         Degraded serving folds over answer *values*, not keys, so the
         epoch stamp is the only thing keeping pre-seal supports out *)
      let hit =
        Lru.fold
          (fun best ~key ~value:ca ->
            match best with
            | Some _ -> best
            | None ->
                if
                  ca.ca_epoch = t.epoch
                  && answer_covers t.service_ctx ~cached_q:ca.ca_query
                       ~requested:q
                then Some (key, ca)
                else None)
          None t.answers
      in
      match hit with
      | None -> None
      | Some (key, ca) ->
          ignore (Lru.find t.answers key : cached_answer option)
          (* bump recency *);
          Metrics.record_degraded t.service_metrics;
          Some (filter_answer t.service_ctx q (unpack_answer_locked t ca))
    end
  end

(* ------------------------------------------------------------------ *)
(* circuit breaker *)

(* call with [t.lock] held *)
let trip_locked t =
  Metrics.record_breaker_trip t.service_metrics;
  t.breaker <- Open (max 1 t.service_config.breaker_cooldown)

(* call with [t.lock] held *)
let trip_shard_locked t k =
  let sh = t.shard_health.(k) in
  sh.sh_trips <- sh.sh_trips + 1;
  sh.sh_breaker <- Open (max 1 t.service_config.breaker_cooldown)

(* attribute a failure to the shard owning its error page.  Only faults
   installed on individual shards are attributable: with an injector on
   the whole composite the failure is store-wide, so shard breakers stay
   out of it and only the global breaker reacts. *)
let shard_of_error t (e : Cfq_error.t) =
  let db = t.service_ctx.Exec.db in
  if Array.length t.shard_health = 0 || Tx_db.faults db <> None then None
  else
    match e with
    | Cfq_error.Transient_io { page } | Cfq_error.Corrupt_page { page } -> (
        match Tx_db.shard_of_page db page with
        | k -> Some k
        | exception Invalid_argument _ -> None)
    | Cfq_error.Deadline | Cfq_error.Overload | Cfq_error.Query_crash _ -> None

(* call with [t.lock] held *)
let shard_note_failure_locked t e =
  match shard_of_error t e with
  | None -> ()
  | Some k ->
      let sh = t.shard_health.(k) in
      sh.sh_failures <- sh.sh_failures + 1;
      sh.sh_consec <- sh.sh_consec + 1;
      if t.service_config.breaker_threshold > 0 then (
        match sh.sh_breaker with
        | Half_open -> trip_shard_locked t k
        | Closed when sh.sh_consec >= t.service_config.breaker_threshold ->
            trip_shard_locked t k
        | Closed | Open _ -> ())

(* a cold success proves every shard served its slice: close all shard
   breakers.  Cache-served answers prove nothing about the shards and
   leave them untouched. *)
let shard_note_cold_success t =
  if Array.length t.shard_health > 0 then
    locked t (fun () ->
        Array.iter
          (fun sh ->
            sh.sh_consec <- 0;
            sh.sh_breaker <- Closed)
          t.shard_health)

(* settle the breaker on the raw (pre-degradation) outcome of an executed
   query: any success closes it (in particular a half-open probe), any
   failure while half-open reopens it, and [breaker_threshold] consecutive
   failures trip it *)
let breaker_note_outcome t ~ok =
  if t.service_config.breaker_threshold > 0 then
    locked t (fun () ->
        if ok then begin
          t.consec_failures <- 0;
          t.breaker <- Closed
        end
        else begin
          t.consec_failures <- t.consec_failures + 1;
          match t.breaker with
          | Half_open -> trip_locked t
          | Closed when t.consec_failures >= t.service_config.breaker_threshold ->
              trip_locked t
          | Closed | Open _ -> ()
        end)

(* ------------------------------------------------------------------ *)
(* retries and the guarded query wrapper *)

(* The jitter is a pure function of (jitter_seed, query, attempt): a fresh
   SplitMix stream keyed by their mix, rather than draws from one shared
   stream whose order would depend on domain scheduling — so a fault-twin
   run sees identical backoff delays at any worker count. *)
let retry_delay t q attempt =
  let key =
    Int64.logxor t.service_config.jitter_seed
      (Int64.add
         (Int64.mul (Int64.of_int (Hashtbl.hash q)) 0x9E3779B97F4A7C15L)
         (Int64.of_int attempt))
  in
  let jitter = Cfq_quest.Splitmix.float (Cfq_quest.Splitmix.create ~seed:key) in
  t.service_config.backoff_base *. (2. ** float_of_int attempt) *. (0.5 +. jitter)

let guarded t ~deadline q () =
  let fail e =
    locked t (fun () ->
        Metrics.record_fault t.service_metrics e;
        Metrics.record_failure t.service_metrics;
        shard_note_failure_locked t e);
    Error (Fault e)
  in
  let rec attempt n =
    match execute t ~deadline q with
    | a -> Ok a
    | exception Expired ->
        locked t (fun () ->
            Metrics.record_deadline_expired t.service_metrics;
            Metrics.record_query t.service_metrics
              ~latency:(0. (* not meaningfully attributable *))
              ~support_counted:0 ~constraint_checks:0 ~scans:0 ~pages_read:0);
        Error Deadline_exceeded
    | exception Cfq_error.Error e ->
        if Cfq_error.is_transient e && n < t.service_config.retries then begin
          let delay = retry_delay t q n in
          let in_budget =
            match deadline with
            | Some d -> Unix.gettimeofday () +. delay < d
            | None -> true
          in
          if in_budget then begin
            locked t (fun () -> Metrics.record_retry t.service_metrics);
            if delay > 0. then Unix.sleepf delay;
            attempt (n + 1)
          end
          else fail e
        end
        else fail e
    | exception e -> fail (Cfq_error.Query_crash (Printexc.to_string e))
  in
  let raw = attempt 0 in
  breaker_note_outcome t ~ok:(match raw with Ok _ -> true | Error _ -> false);
  (match raw with
  | Ok a when a.served_from = Cold -> shard_note_cold_success t
  | _ -> ());
  match raw with
  | Ok _ -> raw
  | Error (Fault _ | Deadline_exceeded) -> (
      match locked t (fun () -> degraded_lookup_locked t q) with
      | Some a -> Ok a
      | None -> raw)
  | Error _ -> raw

(* ------------------------------------------------------------------ *)
(* admission *)

let absolute_deadline t deadline =
  match (deadline, t.service_config.default_deadline) with
  | Some d, _ | None, Some d -> Some (Unix.gettimeofday () +. d)
  | None, None -> None

(* admission decision under the breaker.  While open, queries that the
   caches can answer without touching the database are still served;
   everything else is shed, counting down to a half-open probe. *)
(* with [t.lock] held: serve an admission arriving while some breaker is
   open from the caches alone, or shed it *)
let open_serve_locked t (q : Query.t) =
  let rw = Rewrite.simplify q in
  let q' = rw.Rewrite.query in
  let key = Fingerprint.query_key t.service_ctx q' in
  match Lru.find t.answers key with
  | Some ca when ca.ca_epoch = t.epoch ->
      Metrics.record_answer_hit t.service_metrics;
      Metrics.record_query t.service_metrics ~latency:0. ~support_counted:0
        ~constraint_checks:0 ~scans:0 ~pages_read:0;
      let a = unpack_answer_locked t ca in
      `Serve
        {
          a with
          served_from = Answer_cache;
          support_counted = 0;
          constraint_checks = 0;
          scans = 0;
          pages_read = 0;
          latency_seconds = 0.;
        }
  | Some _ | None -> (
      match degraded_lookup_locked t q' with
      | Some a -> `Serve a
      | None ->
          Metrics.record_shed t.service_metrics;
          `Shed)

let breaker_admit t (q : Query.t) =
  if t.service_config.breaker_threshold <= 0 then `Admit
  else
    locked t (fun () ->
        match t.breaker with
        | Closed | Half_open -> `Admit
        | Open n ->
            (* every admission while open counts toward the cooldown, served
               from cache or shed alike, so the breaker always half-opens
               after [breaker_cooldown] admissions *)
            t.breaker <- (if n <= 1 then Half_open else Open (n - 1));
            open_serve_locked t q)

(* per-shard admission gate: an admitted query fans over every shard, so
   one open shard breaker degrades it to cache-only serving while that
   shard cools down; a half-open shard admits the probe.  Runs after the
   global gate, with the same admission-counted cooldown discipline. *)
let shard_breaker_admit t (q : Query.t) =
  if Array.length t.shard_health = 0 || t.service_config.breaker_threshold <= 0
  then `Admit
  else
    locked t (fun () ->
        let opened = ref None in
        Array.iteri
          (fun k sh ->
            if !opened = None then
              match sh.sh_breaker with
              | Open n ->
                  sh.sh_breaker <- (if n <= 1 then Half_open else Open (n - 1));
                  opened := Some k
              | Closed | Half_open -> ())
          t.shard_health;
        match !opened with
        | None -> `Admit
        | Some k -> (
            match open_serve_locked t q with
            | `Serve a -> `Serve a
            | `Shed ->
                t.shard_health.(k).sh_shed <- t.shard_health.(k).sh_shed + 1;
                `Shed))

let submit_abs t ~deadline q =
  match
    match breaker_admit t q with
    | `Admit -> shard_breaker_admit t q
    | (`Serve _ | `Shed) as r -> r
  with
  | `Serve a -> Ok (Immediate (Ok a))
  | `Shed -> Error Overloaded
  | `Admit -> (
      locked t (fun () ->
          Metrics.observe_queue_depth t.service_metrics (Pool.queue_depth t.pool);
          Array.iter
            (fun sh -> sh.sh_admissions <- sh.sh_admissions + 1)
            t.shard_health);
      match Pool.submit t.pool (guarded t ~deadline q) with
      | Some p ->
          locked t (fun () -> t.consec_rejections <- 0);
          Ok (Pooled p)
      | None ->
          locked t (fun () ->
              Metrics.record_rejected t.service_metrics;
              t.consec_rejections <- t.consec_rejections + 1;
              if
                t.service_config.breaker_threshold > 0
                && t.breaker = Closed
                && t.consec_rejections >= t.service_config.breaker_threshold
              then begin
                trip_locked t;
                t.consec_rejections <- 0
              end);
          Error Rejected
      | exception Cfq_error.Error Cfq_error.Overload ->
          (* pool already shut down: report Rejected so [run] still serves
             the caller inline *)
          locked t (fun () -> Metrics.record_rejected t.service_metrics);
          Error Rejected)

let submit t ?deadline q = submit_abs t ~deadline:(absolute_deadline t deadline) q

let await = function Pooled p -> Pool.await p | Immediate r -> r

let run t ?deadline q =
  (* the deadline is fixed once at admission, so the queue-full fallback
     below runs under the same budget the pooled path would have had *)
  let deadline = absolute_deadline t deadline in
  match submit_abs t ~deadline q with
  | Ok ticket -> await ticket
  | Error Rejected ->
      (* sync caller: execute inline rather than bouncing *)
      locked t (fun () -> Metrics.record_inline_run t.service_metrics);
      guarded t ~deadline q ()
  | Error e -> Error e

let run_many t ?deadline qs =
  (* submit everything, draining the oldest ticket whenever admission is
     refused, so arbitrarily long batches respect the bounded queue *)
  let results = ref [] (* (index, result) *) in
  let pending = Queue.create () (* (index, ticket) in submission order *) in
  let drain_one () =
    match Queue.take_opt pending with
    | None -> ()
    | Some (i, ticket) -> results := (i, await ticket) :: !results
  in
  List.iteri
    (fun i q ->
      let rec try_submit () =
        match submit t ?deadline q with
        | Ok ticket -> Queue.add (i, ticket) pending
        | Error Rejected when Queue.length pending > 0 ->
            drain_one ();
            try_submit ()
        | Error e -> results := (i, Error e) :: !results
      in
      try_submit ())
    qs;
  while Queue.length pending > 0 do
    drain_one ()
  done;
  List.map snd (List.sort (fun (i, _) (j, _) -> compare i j) !results)

let breaker_name = function
  | Closed -> "closed"
  | Open _ -> "open"
  | Half_open -> "half-open"

let metrics t =
  locked t (fun () ->
      let shard_ios = Tx_db.shard_io t.service_ctx.Exec.db in
      let shards =
        Array.to_list
          (Array.mapi
             (fun k sh ->
               let io =
                 if k < Array.length shard_ios then Some shard_ios.(k) else None
               in
               {
                 Metrics.shard = k;
                 shard_admissions = sh.sh_admissions;
                 shard_failures = sh.sh_failures;
                 shard_trips = sh.sh_trips;
                 shard_shed = sh.sh_shed;
                 shard_breaker = breaker_name sh.sh_breaker;
                 shard_scans =
                   (match io with Some io -> Io_stats.scans io | None -> 0);
                 shard_pages_read =
                   (match io with Some io -> Io_stats.pages_read io | None -> 0);
                 shard_failovers =
                   (match io with Some io -> Io_stats.failovers io | None -> 0);
               })
             t.shard_health)
      in
      let failovers =
        Array.fold_left (fun a io -> a + Io_stats.failovers io) 0 shard_ios
      in
      Metrics.snapshot t.service_metrics ~shards ~failovers
        ~answer_entries:(Lru.length t.answers)
        ~answer_bytes:(Lru.weight t.answers)
        ~side_entries:(Lru.length t.sides)
        ~side_bytes:(Lru.weight t.sides)
        ~evictions:(Lru.evictions t.answers + Lru.evictions t.sides)
        ())

let metrics_table t = Metrics.table (metrics t)

let cache_clear t =
  locked t (fun () ->
      Lru.clear t.answers;
      Lru.clear t.sides)

let cache_drop_sides t = locked t (fun () -> Lru.clear t.sides)

let shutdown t = Pool.shutdown t.pool

(* ------------------------------------------------------------------ *)
(* live ingestion: epoch-tagged incremental maintenance across seals *)

type live = {
  lv_epoch : int;
  lv_sealed : int;
  lv_sides_promoted : int;
  lv_sides_evicted : int;
  lv_answers_promoted : int;
  lv_answers_evicted : int;
  lv_recounted : int;
  lv_old_scans : int;
  lv_scans : int;
  lv_pages_read : int;
}

let attach_source t src =
  locked t (fun () ->
      t.live_source <- Some src;
      t.epoch <- Cfq_live.Source.epoch src)

let live_source t = t.live_source

let ingest t items =
  match t.live_source with
  | Some src -> Cfq_live.Source.append_tx src items
  | None -> invalid_arg "Service.ingest: no live source attached"

(* the maintenance pass for one seal.  Promotions count only the resident
   delta twin (plus at most one old-database scan per entry, for seeded
   candidates); cached answers are then re-derived from the promoted
   collections — the same filter + pair formation the subsumption path
   runs, no scans at all.  Inserts are guarded by the epoch: if another
   seal raced us, our results are stale and the final purge removes them. *)
let maintain t ~old_ctx ~new_ctx ~new_epoch ~(delta : Cfq_live.Delta.t) ~maint_io
    ~stale_sides ~stale_answers () =
  let sides_promoted = ref 0 and sides_evicted = ref 0 in
  let answers_promoted = ref 0 and answers_evicted = ref 0 in
  let recounted = ref 0 and old_scans = ref 0 in
  (* one Level_stats per seal: every promotion's FUP rows land here, so the
     pass's per-level cost is observable alongside the Metrics counters *)
  let lstats = Level_stats.create () in
  let universe =
    max
      (Item_info.universe_size old_ctx.Exec.s_info)
      (Item_info.universe_size old_ctx.Exec.t_info)
  in
  List.iter
    (fun (key, e) ->
      if e.se_epoch < new_epoch then begin
        match
          (* a condensed entry is rebuilt first: FUP delta-counts the full
             collection (reconstructed from its closed sets), and the
             promoted result is re-closed below before re-insertion *)
          Cfq_live.Maintain.promote ~stats:lstats ~old_db:old_ctx.Exec.db ~delta
            maint_io ~old_minsup:e.se_minsup ~max_level:e.se_max_level
            ~universe_size:universe (side_frequent t e)
        with
        | exception _ ->
            (* a faulted promotion leaves the entry stale; the purge below
               removes it, so the cache still lands on a consistent epoch *)
            incr sides_evicted
        | freq', m', pstats ->
            recounted := !recounted + pstats.Cfq_live.Maintain.recounted;
            old_scans := !old_scans + pstats.Cfq_live.Maintain.old_scans;
            let cond' = condense_frequent t freq' in
            let e' =
              {
                e with
                se_epoch = new_epoch;
                se_minsup = m';
                se_cond = cond';
                se_weight = Condensed.bytes cond';
              }
            in
            let key' =
              Fingerprint.side_key ~info:e.se_info ~minsup_abs:m'
                ~max_level:e.se_max_level e.se_constraints
            in
            locked t (fun () ->
                if t.epoch = new_epoch then begin
                  (* the old binding may have been re-keyed over by another
                     promotion landing on this key (its threshold moved onto
                     ours): remove only while it is still stale *)
                  (match Lru.find t.sides key with
                  | Some cur when cur.se_epoch < new_epoch ->
                      Lru.remove t.sides key
                  | Some _ | None -> ());
                  if Lru.insert t.sides key' ~weight:e'.se_weight e' then
                    incr sides_promoted
                  else incr sides_evicted
                end)
      end)
    stale_sides;
  List.iter
    (fun (old_key, ca) ->
      if ca.ca_epoch < new_epoch then begin
        let q = ca.ca_query in
        let checks = ref 0 in
        let covering =
          locked t (fun () ->
              if t.epoch <> new_epoch then None
              else
                let spec_s = side_spec_of new_ctx q `S in
                let spec_t = side_spec_of new_ctx q `T in
                match
                  ( covering_entry_locked t ~epoch:new_epoch spec_s,
                    covering_entry_locked t ~epoch:new_epoch spec_t )
                with
                | Some (_, es), Some (_, et) -> Some (spec_s, spec_t, es, et)
                | _ -> None)
        in
        match covering with
        | None ->
            locked t (fun () -> Lru.remove t.answers old_key);
            incr answers_evicted
        | Some (spec_s, spec_t, es, et) ->
            let valid_s = filter_valid spec_s (side_frequent t es) checks in
            let valid_t = filter_valid spec_t (side_frequent t et) checks in
            let collected = ref [] in
            let pair_stats =
              Pairs.form ~s_info:new_ctx.Exec.s_info ~t_info:new_ctx.Exec.t_info
                ~valid_s ~valid_t ~two_var:q.Query.two_var
                ~on_pair:(fun es et -> collected := (es, et) :: !collected)
                ()
            in
            let a' =
              {
                ca.ca_answer with
                pairs = List.rev !collected;
                n_pairs = pair_stats.Pairs.n_pairs;
              }
            in
            let ca' = make_cached_answer t ~epoch:new_epoch q a' in
            let key' = Fingerprint.query_key new_ctx q in
            locked t (fun () ->
                Lru.remove t.answers old_key;
                if t.epoch = new_epoch then
                  record_answer_condensed_locked t a' ca';
                if
                  t.epoch = new_epoch
                  && Lru.insert t.answers key' ~weight:ca'.ca_weight ca'
                then incr answers_promoted
                else incr answers_evicted)
      end)
    stale_answers;
  (* whatever is still stale — faulted promotions, budget-refused inserts,
     raced seals — goes now: every surviving entry is at the live epoch *)
  locked t (fun () ->
      let side_keys =
        Lru.fold
          (fun acc ~key ~value ->
            if value.se_epoch < t.epoch then key :: acc else acc)
          [] t.sides
      in
      List.iter (Lru.remove t.sides) side_keys;
      let answer_keys =
        Lru.fold
          (fun acc ~key ~value ->
            if value.ca_epoch < t.epoch then key :: acc else acc)
          [] t.answers
      in
      List.iter (Lru.remove t.answers) answer_keys;
      Metrics.record_maintenance t.service_metrics ~sides_promoted:!sides_promoted
        ~sides_evicted:!sides_evicted ~answers_promoted:!answers_promoted
        ~answers_evicted:!answers_evicted ~recounted:!recounted
        ~old_scans:!old_scans ~scans:(Io_stats.scans maint_io)
        ~pages_read:(Io_stats.pages_read maint_io));
  Log.debug (fun m ->
      m "epoch %d: %d+%d sides, %d+%d answers promoted+evicted (%d pages)@ %a"
        new_epoch !sides_promoted !sides_evicted !answers_promoted
        !answers_evicted
        (Io_stats.pages_read maint_io)
        Level_stats.pp lstats);
  {
    lv_epoch = new_epoch;
    lv_sealed = delta.Cfq_live.Delta.delta_txs;
    lv_sides_promoted = !sides_promoted;
    lv_sides_evicted = !sides_evicted;
    lv_answers_promoted = !answers_promoted;
    lv_answers_evicted = !answers_evicted;
    lv_recounted = !recounted;
    lv_old_scans = !old_scans;
    lv_scans = Io_stats.scans maint_io;
    lv_pages_read = Io_stats.pages_read maint_io;
  }

let seal_live t =
  match t.live_source with
  | None -> invalid_arg "Service.seal_live: no live source attached"
  | Some src -> (
      let maint_io = Io_stats.create () in
      let old_ctx = locked t (fun () -> t.service_ctx) in
      match Cfq_live.Source.seal src maint_io with
      | None -> None
      | Some delta ->
          let new_epoch = Cfq_live.Source.epoch src in
          let new_ctx = { old_ctx with Exec.db = Cfq_live.Source.db src } in
          let stale_sides, stale_answers =
            locked t (fun () ->
                (* swap first: queries admitted from here on run against the
                   new database (cold until promotion catches up — correct,
                   just unwarmed), while in-flight queries finish against
                   the still-readable pre-seal snapshot they captured *)
                t.service_ctx <- new_ctx;
                t.epoch <- new_epoch;
                Metrics.record_seal t.service_metrics ~epoch:new_epoch;
                (* fold is MRU-first; consing flips to LRU-first, so
                   re-insertions preserve the recency order *)
                ( Lru.fold (fun acc ~key ~value -> (key, value) :: acc) [] t.sides,
                  Lru.fold (fun acc ~key ~value -> (key, value) :: acc) [] t.answers
                ))
          in
          (* the pass runs on a worker domain (bounded admission: the pool's
             queue), inline in the caller when the queue is full *)
          Some
            (Pool.run t.pool
               (maintain t ~old_ctx ~new_ctx ~new_epoch ~delta ~maint_io
                  ~stale_sides ~stale_answers)))
