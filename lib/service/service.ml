open Cfq_itembase
open Cfq_txdb
open Cfq_constr
open Cfq_mining
open Cfq_core

let log_src = Logs.Src.create "cfq.service" ~doc:"CFQ query service"

module Log = (val Logs.src_log log_src)

type config = {
  domains : int;
  queue_capacity : int;
  cache_budget : int;
  default_deadline : float option;
}

let default_config =
  { domains = 2; queue_capacity = 1024; cache_budget = 64 * 1024 * 1024; default_deadline = None }

type served_from =
  | Cold
  | Answer_cache
  | Subsumed

let served_from_name = function
  | Cold -> "cold"
  | Answer_cache -> "answer-cache"
  | Subsumed -> "subsumed"

type answer = {
  pairs : (Frequent.entry * Frequent.entry) list;
  n_pairs : int;
  served_from : served_from;
  support_counted : int;
  constraint_checks : int;
  scans : int;
  pages_read : int;
  latency_seconds : float;
  notes : string list;
}

type error =
  | Rejected
  | Deadline_exceeded
  | Failed of string

let error_to_string = function
  | Rejected -> "rejected: admission queue full"
  | Deadline_exceeded -> "deadline exceeded"
  | Failed msg -> "failed: " ^ msg

(* one side's cached frequent collection, as mined *)
type side_entry = {
  se_info_id : int;
  se_minsup : int;  (* absolute support it was mined at *)
  se_max_level : int option;
  se_constraints : One_var.t list;  (* normalised 1-var conjunction it was mined under *)
  se_frequent : Frequent.t;
}

type t = {
  service_ctx : Exec.ctx;
  service_config : config;
  pool : Pool.t;
  lock : Mutex.t;
  answers : answer Lru.t;
  sides : side_entry Lru.t;
  service_metrics : Metrics.t;
}

type ticket = (answer, error) result Pool.promise

let create ?(config = default_config) ctx =
  (* answers are small relative to collections: 1/4 vs 3/4 of the budget *)
  let budget = max 0 config.cache_budget in
  {
    service_ctx = ctx;
    service_config = config;
    pool = Pool.create ~domains:config.domains ~queue_capacity:config.queue_capacity ();
    lock = Mutex.create ();
    answers = Lru.create ~budget:(budget / 4);
    sides = Lru.create ~budget:(budget - (budget / 4));
    service_metrics = Metrics.create ();
  }

let ctx t = t.service_ctx
let config t = t.service_config

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
      Mutex.unlock t.lock;
      v
  | exception e ->
      Mutex.unlock t.lock;
      raise e

(* ------------------------------------------------------------------ *)
(* weights (approximate bytes, for the cache budget) *)

let itemset_weight s = 24 + (8 * Itemset.cardinal s)
let entry_weight (e : Frequent.entry) = 32 + itemset_weight e.Frequent.set

let frequent_weight freq =
  Frequent.fold (fun acc e -> acc + entry_weight e) 128 freq

let answer_weight a =
  List.fold_left (fun acc (s, p) -> acc + 16 + entry_weight s + entry_weight p) 256 a.pairs

(* ------------------------------------------------------------------ *)
(* deadline handling *)

exception Expired

let check_deadline = function
  | Some d when Unix.gettimeofday () > d -> raise Expired
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* side resolution: cached collection via subsumption, or cold CAP mining *)

type side_spec = {
  sp_info : Item_info.t;
  sp_minsup : int;
  sp_max_level : int option;
  sp_constraints : One_var.t list;
}

let side_spec_of (ctx : Exec.ctx) (q : Query.t) = function
  | `S ->
      {
        sp_info = ctx.Exec.s_info;
        sp_minsup = Tx_db.absolute_support ctx.Exec.db q.Query.s_minsup;
        sp_max_level = q.Query.max_level;
        sp_constraints = q.Query.s_constraints;
      }
  | `T ->
      {
        sp_info = ctx.Exec.t_info;
        sp_minsup = Tx_db.absolute_support ctx.Exec.db q.Query.t_minsup;
        sp_max_level = q.Query.max_level;
        sp_constraints = q.Query.t_constraints;
      }

(* cached [entry] answers [spec]: same attribute table, mined at least as
   deep and at most as high a threshold, under an entailed constraint set *)
let entry_answers entry spec =
  entry.se_info_id = Fingerprint.info_id spec.sp_info
  && entry.se_minsup <= spec.sp_minsup
  && (match entry.se_max_level with
     | None -> true
     | Some cached_cap -> (
         match spec.sp_max_level with
         | Some requested_cap -> cached_cap >= requested_cap
         | None -> false))
  && Entail.subsumes ~cached:entry.se_constraints ~requested:spec.sp_constraints

let find_subsuming t spec =
  locked t (fun () ->
      let best =
        Lru.fold
          (fun best ~key ~value ->
            if not (entry_answers value spec) then best
            else
              match best with
              | Some (_, b) when Frequent.n_sets b.se_frequent <= Frequent.n_sets value.se_frequent
                -> best
              | _ -> Some (key, value))
          None t.sides
      in
      match best with
      | None -> None
      | Some (key, entry) ->
          ignore (Lru.find t.sides key : side_entry option) (* bump recency *);
          Metrics.record_subsumption_hit t.service_metrics;
          Some entry)

(* the mined collection may exceed the request (lower threshold, weaker
   constraints, deferred atoms): filter down to exactly the valid sets,
   counting every 1-var evaluation as a constraint check *)
let filter_valid spec freq checks =
  let out = ref [] in
  Frequent.iter
    (fun e ->
      let ok =
        e.Frequent.support >= spec.sp_minsup
        && (match spec.sp_max_level with
           | Some cap -> Itemset.cardinal e.Frequent.set <= cap
           | None -> true)
        && List.for_all
             (fun c ->
               incr checks;
               One_var.eval spec.sp_info c e.Frequent.set)
             spec.sp_constraints
      in
      if ok then out := e :: !out)
    freq;
  Array.of_list (List.rev !out)

(* drive the CAP state machine one level at a time so the deadline is
   honoured between scans *)
let mine_side ~deadline (ctx : Exec.ctx) spec io =
  let bundle = Bundle.compile ~nonneg:ctx.Exec.nonneg spec.sp_info spec.sp_constraints in
  let state =
    Cap.create ctx.Exec.db spec.sp_info ?max_level:spec.sp_max_level
      ~minsup:spec.sp_minsup bundle
  in
  let rec loop () =
    check_deadline deadline;
    match Cap.next_candidates state with
    | None -> ()
    | Some cands ->
        let counts = Counting.count_level ctx.Exec.db io (Cap.counters state) cands in
        let (_ : Frequent.entry array) = Cap.absorb state counts in
        loop ()
  in
  loop ();
  (Cap.result state, Cap.counters state)

let resolve_side t ~deadline spec io counters checks =
  check_deadline deadline;
  match find_subsuming t spec with
  | Some entry -> (filter_valid spec entry.se_frequent checks, true)
  | None ->
      let freq, side_counters = mine_side ~deadline t.service_ctx spec io in
      Counters.merge counters side_counters;
      let entry =
        {
          se_info_id = Fingerprint.info_id spec.sp_info;
          se_minsup = spec.sp_minsup;
          se_max_level = spec.sp_max_level;
          se_constraints = spec.sp_constraints;
          se_frequent = freq;
        }
      in
      let key =
        Fingerprint.side_key ~info:spec.sp_info ~minsup_abs:spec.sp_minsup
          ~max_level:spec.sp_max_level spec.sp_constraints
      in
      locked t (fun () ->
          Metrics.record_side_mined t.service_metrics;
          ignore (Lru.insert t.sides key ~weight:(frequent_weight freq) entry : bool));
      (filter_valid spec freq checks, false)

(* ------------------------------------------------------------------ *)
(* one query, in a worker domain *)

let execute t ~deadline (q : Query.t) =
  let t0 = Unix.gettimeofday () in
  let ctx = t.service_ctx in
  let rw = Rewrite.simplify q in
  let q = rw.Rewrite.query in
  let key = Fingerprint.query_key ctx q in
  let cached =
    locked t (fun () ->
        match Lru.find t.answers key with
        | Some a ->
            Metrics.record_answer_hit t.service_metrics;
            Some a
        | None ->
            Metrics.record_answer_miss t.service_metrics;
            None)
  in
  match cached with
  | Some a ->
      let latency = Unix.gettimeofday () -. t0 in
      locked t (fun () ->
          Metrics.record_query t.service_metrics ~latency ~support_counted:0
            ~constraint_checks:0 ~scans:0 ~pages_read:0);
      {
        a with
        served_from = Answer_cache;
        support_counted = 0;
        constraint_checks = 0;
        scans = 0;
        pages_read = 0;
        latency_seconds = latency;
      }
  | None ->
      let io = Io_stats.create () in
      let counters = Counters.create () in
      let checks = ref 0 in
      let answer =
        if rw.Rewrite.s_unsat || rw.Rewrite.t_unsat then
          {
            pairs = [];
            n_pairs = 0;
            served_from = Cold;
            support_counted = 0;
            constraint_checks = 0;
            scans = 0;
            pages_read = 0;
            latency_seconds = 0.;
            notes = rw.Rewrite.notes @ [ "query is unsatisfiable; nothing was mined" ];
          }
        else begin
          let valid_s, s_cached =
            resolve_side t ~deadline (side_spec_of ctx q `S) io counters checks
          in
          let valid_t, t_cached =
            resolve_side t ~deadline (side_spec_of ctx q `T) io counters checks
          in
          check_deadline deadline;
          let collected = ref [] in
          let pair_stats =
            Pairs.form ~s_info:ctx.Exec.s_info ~t_info:ctx.Exec.t_info ~valid_s ~valid_t
              ~two_var:q.Query.two_var
              ~on_pair:(fun es et -> collected := (es, et) :: !collected)
              ()
          in
          let served_from = if s_cached && t_cached then Subsumed else Cold in
          {
            pairs = List.rev !collected;
            n_pairs = pair_stats.Pairs.n_pairs;
            served_from;
            support_counted = Counters.support_counted counters;
            constraint_checks = !checks + pair_stats.Pairs.checks;
            scans = Io_stats.scans io;
            pages_read = Io_stats.pages_read io;
            latency_seconds = 0.;
            notes = rw.Rewrite.notes;
          }
        end
      in
      let latency = Unix.gettimeofday () -. t0 in
      let answer = { answer with latency_seconds = latency } in
      locked t (fun () ->
          ignore (Lru.insert t.answers key ~weight:(answer_weight answer) answer : bool);
          Metrics.record_query t.service_metrics ~latency
            ~support_counted:answer.support_counted
            ~constraint_checks:answer.constraint_checks ~scans:answer.scans
            ~pages_read:answer.pages_read);
      Log.debug (fun m ->
          m "served %s: %d pairs, %d counted (%s)" key answer.n_pairs
            answer.support_counted
            (served_from_name answer.served_from));
      answer

let guarded t ~deadline q () =
  match execute t ~deadline q with
  | a -> Ok a
  | exception Expired ->
      locked t (fun () ->
          Metrics.record_deadline_expired t.service_metrics;
          Metrics.record_query t.service_metrics
            ~latency:(0. (* not meaningfully attributable *))
            ~support_counted:0 ~constraint_checks:0 ~scans:0 ~pages_read:0);
      Error Deadline_exceeded
  | exception e ->
      locked t (fun () -> Metrics.record_failure t.service_metrics);
      Error (Failed (Printexc.to_string e))

let absolute_deadline t deadline =
  match (deadline, t.service_config.default_deadline) with
  | Some d, _ | None, Some d -> Some (Unix.gettimeofday () +. d)
  | None, None -> None

let submit t ?deadline q =
  let deadline = absolute_deadline t deadline in
  locked t (fun () ->
      Metrics.observe_queue_depth t.service_metrics (Pool.queue_depth t.pool));
  match Pool.submit t.pool (guarded t ~deadline q) with
  | Some p -> Ok p
  | None ->
      locked t (fun () -> Metrics.record_rejected t.service_metrics);
      Error Rejected

let await ticket = Pool.await ticket

let run t ?deadline q =
  match submit t ?deadline q with
  | Ok ticket -> await ticket
  | Error Rejected ->
      (* sync caller: execute inline rather than bouncing *)
      guarded t ~deadline:(absolute_deadline t deadline) q ()
  | Error e -> Error e

let run_many t ?deadline qs =
  (* submit everything, draining the oldest ticket whenever admission is
     refused, so arbitrarily long batches respect the bounded queue *)
  let results = ref [] (* (index, result) *) in
  let pending = Queue.create () (* (index, ticket) in submission order *) in
  let drain_one () =
    match Queue.take_opt pending with
    | None -> ()
    | Some (i, ticket) -> results := (i, await ticket) :: !results
  in
  List.iteri
    (fun i q ->
      let rec try_submit () =
        match submit t ?deadline q with
        | Ok ticket -> Queue.add (i, ticket) pending
        | Error Rejected when Queue.length pending > 0 ->
            drain_one ();
            try_submit ()
        | Error e -> results := (i, Error e) :: !results
      in
      try_submit ())
    qs;
  while Queue.length pending > 0 do
    drain_one ()
  done;
  List.map snd (List.sort (fun (i, _) (j, _) -> compare i j) !results)

let metrics t =
  locked t (fun () ->
      Metrics.snapshot t.service_metrics
        ~answer_entries:(Lru.length t.answers)
        ~answer_bytes:(Lru.weight t.answers)
        ~side_entries:(Lru.length t.sides)
        ~side_bytes:(Lru.weight t.sides)
        ~evictions:(Lru.evictions t.answers + Lru.evictions t.sides))

let metrics_table t = Metrics.table (metrics t)

let cache_clear t =
  locked t (fun () ->
      Lru.clear t.answers;
      Lru.clear t.sides)

let shutdown t = Pool.shutdown t.pool
