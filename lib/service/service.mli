(** A concurrent CFQ query service with cross-query result caching.

    The service sits above {!Cfq_core.Exec}'s machinery and serves many
    CFQs against one database, exploiting the exploratory-session workload
    the paper targets (Section 1): users refine a query repeatedly, so
    consecutive queries overlap heavily.  Three levels of reuse apply, in
    order:

    {ol
    {- {e answer cache} — a query whose canonical {!Fingerprint} was served
       before returns its pairs verbatim, zero mining;}
    {- {e subsumption reuse} — a side whose frequent collection was mined
       at support ≤ the requested threshold under 1-var constraints entailed
       by the requested ones ({!Entail.subsumes}) is answered by filtering
       that cached collection and re-forming pairs, no mining (the reuse
       rule of Goethals & Van den Bussche, {e Interactive Constrained
       Association Rule Mining});}
    {- {e cold mining} — remaining sides run the CAP engine, and the mined
       collections enter the cache for later queries.}}

    Cold sides mine with 1-var CAP pruning only (the {!Plan.Cap_one_var}
    discipline): a collection pruned by 2-var machinery would be specific
    to one query and useless for reuse.  2-var constraints are enforced at
    pair formation, so answers equal {!Exec.run}'s under every strategy.

    Queries run on a fixed pool of worker domains with a bounded admission
    queue and a per-query wall-clock deadline, checked between mining
    levels (cooperative cancellation).  All shared state (caches, metrics)
    is guarded by one service lock; the mining itself runs lock-free on
    immutable inputs.

    {2 Fault tolerance}

    The service expects the transaction store to fail
    ({!Cfq_txdb.Fault} injection, or a real flaky medium) and degrades in
    stages rather than falling over:

    {ul
    {- {e retries} — a query killed by a transient I/O error
       ([Cfq_error.Transient_io]) is retried up to [config.retries] times
       with exponential backoff and deterministic jitter, within its
       deadline;}
    {- {e graceful degradation} — a query that still fails (or misses its
       deadline) is served by filtering an {e entailed cached superset
       answer} when one exists; the pairs are exact (the store is
       immutable and cached pairs carry absolute supports) and the answer
       is flagged {!Degraded};}
    {- {e circuit breaker} — [config.breaker_threshold] consecutive
       failures (or queue-full rejections) trip the breaker: subsequent
       queries are served from the caches when possible and otherwise shed
       with {!Overloaded}, for [config.breaker_cooldown] admissions, after
       which one probe query is let through (half-open) and its outcome
       closes or reopens the breaker.  The cooldown is admission-counted,
       not wall-clock, so breaker behaviour is deterministic under a
       deterministic submission order.}} *)

open Cfq_txdb
open Cfq_mining
open Cfq_core

type config = {
  domains : int;  (** worker domains (≥ 1) *)
  mine_domains : int;
      (** intra-query counting parallelism: each mining scan fans out over
          this many domains, borrowing {e idle} workers from the same pool
          (never spawning), so concurrency stays bounded by [domains].
          [0] inherits [domains]; [1] counts sequentially.  Answers and
          counters are identical either way. *)
  queue_capacity : int;  (** max queries waiting for a worker *)
  cache_budget : int;  (** total cache memory budget, approximate bytes *)
  default_deadline : float option;  (** seconds, when [submit] gives none *)
  retries : int;  (** max retries of a [Transient_io]-failed query *)
  backoff_base : float;  (** seconds; retry [n] waits [base·2ⁿ·(0.5+j)] *)
  breaker_threshold : int;
      (** consecutive failures (or rejections) that trip the breaker;
          [0] disables the breaker *)
  breaker_cooldown : int;  (** admissions shed while open before a probe *)
  degrade : bool;  (** serve failed queries from entailed cached answers *)
  jitter_seed : int64;  (** seed of the deterministic backoff jitter *)
  kernel : Cfq_mining.Counting.kernel;
      (** support-counting kernel for cold side mining (default [Trie], the
          paper-faithful scan-per-level path; see
          {!Cfq_mining.Counting.kernel}).  Answers are identical for every
          kernel; the per-kernel pass counts appear in {!Metrics}. *)
  calibrate : bool;
      (** feed measured pass timings into the service's shared
          {!Cfq_mining.Counting.calibration} record, so the first cold
          mines tune the Auto planner for every later query (default
          [true]; irrelevant for the [Trie] kernel, which runs without a
          session) *)
  condense : bool;
      (** store cached side collections closed-set condensed
          ({!Cfq_mining.Condensed}) and cached answers index-packed,
          charging the cache their condensed weight — more distinct
          fingerprints fit one [cache_budget]; lookups rebuild the raw
          form on demand (counted in {!Metrics}).  Condensation only fires
          when provably lossless, so answers are byte-identical either way
          (default [true]; [CFQ_TEST_CONDENSE=1] forces it everywhere,
          see [doc/CONDENSED.md]) *)
}

(** 2 domains (mining inherits them), queue 1024, 64 MiB budget, no
    deadline; 2 retries from a 2 ms base, breaker at 5 failures with an
    8-admission cooldown, degradation on, calibration on, condensation
    on. *)
val default_config : config

type served_from =
  | Cold  (** at least one side ran the mining engine *)
  | Answer_cache  (** verbatim answer-cache hit *)
  | Subsumed  (** both sides filtered from cached collections *)
  | Degraded
      (** served by filtering an entailed cached superset answer after the
          query itself failed; pairs are exact, cost counters are not *)

val served_from_name : served_from -> string

type answer = {
  pairs : (Frequent.entry * Frequent.entry) list;
  n_pairs : int;
  served_from : served_from;
  support_counted : int;  (** sets support-counted {e for this query} *)
  constraint_checks : int;  (** 1-var validations + 2-var pair checks *)
  scans : int;
  pages_read : int;
  latency_seconds : float;
  notes : string list;
}

type error =
  | Rejected  (** admission queue full *)
  | Overloaded  (** shed by the open circuit breaker *)
  | Deadline_exceeded
  | Fault of Cfq_error.t
      (** the store faulted (after retries, for transients) and no cached
          answer could cover the query *)
  | Failed of string

val error_to_string : error -> string

type t

(** [create ?config ctx] starts the worker domains.  The service owns no
    I/O: [ctx]'s database and tables are shared, immutable. *)
val create : ?config:config -> Exec.ctx -> t

val ctx : t -> Exec.ctx
val config : t -> config

type ticket

(** [submit t ?deadline q] enqueues [q]; [Error Rejected] when the
    admission queue is full, [Error Overloaded] when the open circuit
    breaker sheds it (cache-answerable queries are still served while
    open).  [deadline] is a wall-clock budget in seconds from now
    (overrides [config.default_deadline]); a query still queued or between
    mining levels past its deadline completes with
    [Error Deadline_exceeded] (or a {!Degraded} answer). *)
val submit : t -> ?deadline:float -> Query.t -> (ticket, error) result

(** Blocks until the submitted query finishes. *)
val await : ticket -> (answer, error) result

(** [run t ?deadline q] is submit-and-await, executing inline in the
    calling domain when the queue is full (sync callers always get an
    answer).  The deadline is fixed once at admission, so the inline
    fallback runs under the same budget the pooled path would have had;
    fallback executions are counted ([inline_runs]). *)
val run : t -> ?deadline:float -> Query.t -> (answer, error) result

(** [run_many t qs] submits everything (awaiting oldest tickets when the
    queue fills) and returns the answers in input order. *)
val run_many : t -> ?deadline:float -> Query.t list -> (answer, error) result list

val metrics : t -> Metrics.snapshot
val metrics_table : t -> Cfq_report.Table.t

(** {2 Live ingestion}

    With a {!Cfq_live.Source} attached the service stays {e live} across
    seals instead of cold-starting.  Every cache entry carries the
    {e epoch} (monotone database generation, minted per seal) its supports
    are exact for, and every lookup path — answer cache, subsumption,
    degraded serving, breaker-open cache serving — checks the stamp.
    {!seal_live} seals the pending appends and runs a maintenance pass on
    the worker pool: each cached side collection is promoted by the FUP
    rule (delta-count against a resident twin of just the appended
    transactions; candidates the delta seeds are counted against the old,
    still-readable pre-seal snapshot — at most one old scan per entry),
    and cached answers are re-derived from the promoted collections with
    pure filtering and pair formation.  Promoted entries answer exactly
    what a cold remine would; entries a fault or budget refusal leaves
    behind are purged, so the caches always land on one consistent
    epoch. *)

(** Attach the ingestion source this service serves (its database view
    must be the ctx's database).  Resets the service epoch to the
    source's. *)
val attach_source : t -> Cfq_live.Source.t -> unit

val live_source : t -> Cfq_live.Source.t option

(** Current epoch: 0 at creation, +1 per {!seal_live} that sealed
    anything. *)
val epoch : t -> int

(** Append one transaction through the attached source (visible after the
    next {!seal_live}).  Raises [Invalid_argument] with no source. *)
val ingest : t -> Cfq_itembase.Itemset.t -> unit

(** One seal's maintenance outcome. *)
type live = {
  lv_epoch : int;  (** the epoch this seal minted *)
  lv_sealed : int;  (** transactions folded in *)
  lv_sides_promoted : int;
  lv_sides_evicted : int;
  lv_answers_promoted : int;
  lv_answers_evicted : int;
  lv_recounted : int;  (** seeded candidates counted against the old db *)
  lv_old_scans : int;  (** full old-database scans the pass paid *)
  lv_scans : int;  (** all maintenance scans (mostly delta-twin passes) *)
  lv_pages_read : int;  (** pages charged — delta-sized, not database-sized *)
}

(** [seal_live t] seals pending appends and maintains the caches across
    the new epoch (see above).  [None] when nothing was pending — the
    epoch does not move.  Raises [Invalid_argument] with no source
    attached. *)
val seal_live : t -> live option

(** [retry_delay t q attempt] is the backoff slept before retry [attempt]
    of [q]: [backoff_base · 2ᵃ · (0.5 + j)] where the jitter [j ∈ [0,1)]
    is a pure function of ([config.jitter_seed], [q], [attempt]) — no
    shared random stream, so the delay schedule is identical across runs,
    domain counts, and retry interleavings.  Exposed for determinism
    tests. *)
val retry_delay : t -> Query.t -> int -> float

(** Drop both caches (metrics keep accumulating). *)
val cache_clear : t -> unit

(** Drop the mined side collections but keep cached answers — an
    administrative recovery hook: when the store starts failing, rebuilding
    collections is pointless, but validated answers remain servable
    (degraded). *)
val cache_drop_sides : t -> unit

(** Finish running work and join the worker domains.  Idempotent; the
    caches survive, so a shut-down service can still [run] inline. *)
val shutdown : t -> unit
