type shard_row = {
  shard : int;
  shard_admissions : int;
  shard_failures : int;
  shard_trips : int;
  shard_shed : int;
  shard_breaker : string;
  shard_scans : int;
  shard_pages_read : int;
  shard_failovers : int;
}

type snapshot = {
  queries : int;
  answer_hits : int;
  subsumption_hits : int;
  sides_mined : int;
  answer_misses : int;
  deadline_expired : int;
  rejected : int;
  failures : int;
  support_counted : int;
  constraint_checks : int;
  scans : int;
  pages_read : int;
  total_latency : float;
  max_latency : float;
  queue_high_water : int;
  retries : int;
  degraded : int;
  breaker_trips : int;
  shed : int;
  inline_runs : int;
  fault_transient : int;
  fault_corrupt : int;
  fault_crash : int;
  kernel_trie_passes : int;
  kernel_direct2_passes : int;
  kernel_vertical_passes : int;
  kernel_projected_scans : int;
  kernel_bitmap_builds : int;
  calibration_samples : int;
  live_epoch : int;
  seals : int;
  sides_promoted : int;
  sides_evicted : int;
  answers_promoted : int;
  answers_evicted : int;
  maint_recounted : int;
  maint_old_scans : int;
  maint_scans : int;
  maint_pages_read : int;
  cond_raw_bytes : int;
  cond_bytes : int;
  cond_inserts : int;
  reconstructions : int;
  answer_entries : int;
  answer_bytes : int;
  side_entries : int;
  side_bytes : int;
  evictions : int;
  failovers : int;
  shards : shard_row list;
}

type t = {
  mutable queries : int;
  mutable answer_hits : int;
  mutable answer_misses : int;
  mutable subsumption_hits : int;
  mutable sides_mined : int;
  mutable deadline_expired : int;
  mutable rejected : int;
  mutable failures : int;
  mutable support_counted : int;
  mutable constraint_checks : int;
  mutable scans : int;
  mutable pages_read : int;
  mutable total_latency : float;
  mutable max_latency : float;
  mutable queue_high_water : int;
  mutable retries : int;
  mutable degraded : int;
  mutable breaker_trips : int;
  mutable shed : int;
  mutable inline_runs : int;
  mutable fault_transient : int;
  mutable fault_corrupt : int;
  mutable fault_crash : int;
  mutable kernel_trie_passes : int;
  mutable kernel_direct2_passes : int;
  mutable kernel_vertical_passes : int;
  mutable kernel_projected_scans : int;
  mutable kernel_bitmap_builds : int;
  mutable calibration_samples : int;
  mutable live_epoch : int;
  mutable seals : int;
  mutable sides_promoted : int;
  mutable sides_evicted : int;
  mutable answers_promoted : int;
  mutable answers_evicted : int;
  mutable maint_recounted : int;
  mutable maint_old_scans : int;
  mutable maint_scans : int;
  mutable maint_pages_read : int;
  mutable cond_raw_bytes : int;
  mutable cond_bytes : int;
  mutable cond_inserts : int;
  mutable reconstructions : int;
}

let create () =
  {
    queries = 0;
    answer_hits = 0;
    answer_misses = 0;
    subsumption_hits = 0;
    sides_mined = 0;
    deadline_expired = 0;
    rejected = 0;
    failures = 0;
    support_counted = 0;
    constraint_checks = 0;
    scans = 0;
    pages_read = 0;
    total_latency = 0.;
    max_latency = 0.;
    queue_high_water = 0;
    retries = 0;
    degraded = 0;
    breaker_trips = 0;
    shed = 0;
    inline_runs = 0;
    fault_transient = 0;
    fault_corrupt = 0;
    fault_crash = 0;
    kernel_trie_passes = 0;
    kernel_direct2_passes = 0;
    kernel_vertical_passes = 0;
    kernel_projected_scans = 0;
    kernel_bitmap_builds = 0;
    calibration_samples = 0;
    live_epoch = 0;
    seals = 0;
    sides_promoted = 0;
    sides_evicted = 0;
    answers_promoted = 0;
    answers_evicted = 0;
    maint_recounted = 0;
    maint_old_scans = 0;
    maint_scans = 0;
    maint_pages_read = 0;
    cond_raw_bytes = 0;
    cond_bytes = 0;
    cond_inserts = 0;
    reconstructions = 0;
  }

let reset t =
  t.queries <- 0;
  t.answer_hits <- 0;
  t.answer_misses <- 0;
  t.subsumption_hits <- 0;
  t.sides_mined <- 0;
  t.deadline_expired <- 0;
  t.rejected <- 0;
  t.failures <- 0;
  t.support_counted <- 0;
  t.constraint_checks <- 0;
  t.scans <- 0;
  t.pages_read <- 0;
  t.total_latency <- 0.;
  t.max_latency <- 0.;
  t.queue_high_water <- 0;
  t.retries <- 0;
  t.degraded <- 0;
  t.breaker_trips <- 0;
  t.shed <- 0;
  t.inline_runs <- 0;
  t.fault_transient <- 0;
  t.fault_corrupt <- 0;
  t.fault_crash <- 0;
  t.kernel_trie_passes <- 0;
  t.kernel_direct2_passes <- 0;
  t.kernel_vertical_passes <- 0;
  t.kernel_projected_scans <- 0;
  t.kernel_bitmap_builds <- 0;
  t.calibration_samples <- 0;
  t.live_epoch <- 0;
  t.seals <- 0;
  t.sides_promoted <- 0;
  t.sides_evicted <- 0;
  t.answers_promoted <- 0;
  t.answers_evicted <- 0;
  t.maint_recounted <- 0;
  t.maint_old_scans <- 0;
  t.maint_scans <- 0;
  t.maint_pages_read <- 0;
  t.cond_raw_bytes <- 0;
  t.cond_bytes <- 0;
  t.cond_inserts <- 0;
  t.reconstructions <- 0

let record_query t ~latency ~support_counted ~constraint_checks ~scans ~pages_read =
  t.queries <- t.queries + 1;
  t.support_counted <- t.support_counted + support_counted;
  t.constraint_checks <- t.constraint_checks + constraint_checks;
  t.scans <- t.scans + scans;
  t.pages_read <- t.pages_read + pages_read;
  t.total_latency <- t.total_latency +. latency;
  if latency > t.max_latency then t.max_latency <- latency

let record_answer_hit t = t.answer_hits <- t.answer_hits + 1
let record_answer_miss t = t.answer_misses <- t.answer_misses + 1
let record_subsumption_hit t = t.subsumption_hits <- t.subsumption_hits + 1
let record_side_mined t = t.sides_mined <- t.sides_mined + 1
let record_deadline_expired t = t.deadline_expired <- t.deadline_expired + 1
let record_rejected t = t.rejected <- t.rejected + 1
let record_failure t = t.failures <- t.failures + 1

let record_retry t = t.retries <- t.retries + 1
let record_degraded t = t.degraded <- t.degraded + 1
let record_breaker_trip t = t.breaker_trips <- t.breaker_trips + 1
let record_shed t = t.shed <- t.shed + 1
let record_inline_run t = t.inline_runs <- t.inline_runs + 1

let record_fault t (e : Cfq_txdb.Cfq_error.t) =
  match e with
  | Transient_io _ -> t.fault_transient <- t.fault_transient + 1
  | Corrupt_page _ -> t.fault_corrupt <- t.fault_corrupt + 1
  | Query_crash _ -> t.fault_crash <- t.fault_crash + 1
  | Deadline | Overload -> ()

let record_kernel_passes t ~trie ~direct2 ~vertical ~projected_scans ~bitmap_builds =
  t.kernel_trie_passes <- t.kernel_trie_passes + trie;
  t.kernel_direct2_passes <- t.kernel_direct2_passes + direct2;
  t.kernel_vertical_passes <- t.kernel_vertical_passes + vertical;
  t.kernel_projected_scans <- t.kernel_projected_scans + projected_scans;
  t.kernel_bitmap_builds <- t.kernel_bitmap_builds + bitmap_builds

(* a gauge, not a counter: the caller reports the shared record's current
   observation count *)
let observe_calibration_samples t samples = t.calibration_samples <- samples

(* one seal's maintenance pass: the epoch is a gauge, everything else
   accumulates so the warm-across-seals cost stays visible in aggregate *)
let record_seal t ~epoch =
  t.seals <- t.seals + 1;
  t.live_epoch <- epoch

let record_maintenance t ~sides_promoted ~sides_evicted ~answers_promoted
    ~answers_evicted ~recounted ~old_scans ~scans ~pages_read =
  t.sides_promoted <- t.sides_promoted + sides_promoted;
  t.sides_evicted <- t.sides_evicted + sides_evicted;
  t.answers_promoted <- t.answers_promoted + answers_promoted;
  t.answers_evicted <- t.answers_evicted + answers_evicted;
  t.maint_recounted <- t.maint_recounted + recounted;
  t.maint_old_scans <- t.maint_old_scans + old_scans;
  t.maint_scans <- t.maint_scans + scans;
  t.maint_pages_read <- t.maint_pages_read + pages_read

(* every cache insert passes through here: raw-equivalent vs stored bytes
   accumulate whether or not condensation fired, so the ratio reflects the
   whole insert stream *)
let record_condensed t ~raw ~stored ~condensed =
  t.cond_raw_bytes <- t.cond_raw_bytes + raw;
  t.cond_bytes <- t.cond_bytes + stored;
  if condensed then t.cond_inserts <- t.cond_inserts + 1

let record_reconstruction t = t.reconstructions <- t.reconstructions + 1

let observe_queue_depth t d =
  if d > t.queue_high_water then t.queue_high_water <- d

let snapshot t ?(shards = []) ?(failovers = 0) ~answer_entries ~answer_bytes
    ~side_entries ~side_bytes ~evictions () : snapshot =
  {
    queries = t.queries;
    answer_hits = t.answer_hits;
    answer_misses = t.answer_misses;
    subsumption_hits = t.subsumption_hits;
    sides_mined = t.sides_mined;
    deadline_expired = t.deadline_expired;
    rejected = t.rejected;
    failures = t.failures;
    support_counted = t.support_counted;
    constraint_checks = t.constraint_checks;
    scans = t.scans;
    pages_read = t.pages_read;
    total_latency = t.total_latency;
    max_latency = t.max_latency;
    queue_high_water = t.queue_high_water;
    retries = t.retries;
    degraded = t.degraded;
    breaker_trips = t.breaker_trips;
    shed = t.shed;
    inline_runs = t.inline_runs;
    fault_transient = t.fault_transient;
    fault_corrupt = t.fault_corrupt;
    fault_crash = t.fault_crash;
    kernel_trie_passes = t.kernel_trie_passes;
    kernel_direct2_passes = t.kernel_direct2_passes;
    kernel_vertical_passes = t.kernel_vertical_passes;
    kernel_projected_scans = t.kernel_projected_scans;
    kernel_bitmap_builds = t.kernel_bitmap_builds;
    calibration_samples = t.calibration_samples;
    live_epoch = t.live_epoch;
    seals = t.seals;
    sides_promoted = t.sides_promoted;
    sides_evicted = t.sides_evicted;
    answers_promoted = t.answers_promoted;
    answers_evicted = t.answers_evicted;
    maint_recounted = t.maint_recounted;
    maint_old_scans = t.maint_old_scans;
    maint_scans = t.maint_scans;
    maint_pages_read = t.maint_pages_read;
    cond_raw_bytes = t.cond_raw_bytes;
    cond_bytes = t.cond_bytes;
    cond_inserts = t.cond_inserts;
    reconstructions = t.reconstructions;
    answer_entries;
    answer_bytes;
    side_entries;
    side_bytes;
    evictions;
    failovers;
    shards;
  }

let table (s : snapshot) =
  let tbl = Cfq_report.Table.create [ "metric"; "value" ] in
  let row k v = Cfq_report.Table.add_row tbl [ k; v ] in
  let int k v = row k (string_of_int v) in
  int "queries served" s.queries;
  int "answer-cache hits" s.answer_hits;
  int "answer-cache misses" s.answer_misses;
  int "subsumption hits (sides)" s.subsumption_hits;
  int "sides mined cold" s.sides_mined;
  int "deadline expired" s.deadline_expired;
  int "rejected (queue full)" s.rejected;
  int "failures" s.failures;
  int "support counted (ccc)" s.support_counted;
  int "constraint checks (ccc)" s.constraint_checks;
  int "db scans" s.scans;
  int "pages read" s.pages_read;
  row "total latency (s)" (Printf.sprintf "%.3f" s.total_latency);
  row "max latency (s)" (Printf.sprintf "%.3f" s.max_latency);
  row "avg latency (s)"
    (if s.queries = 0 then "-"
     else Printf.sprintf "%.4f" (s.total_latency /. float_of_int s.queries));
  int "queue high water" s.queue_high_water;
  int "retries" s.retries;
  int "degraded answers" s.degraded;
  int "breaker trips" s.breaker_trips;
  int "shed (breaker open)" s.shed;
  int "inline runs (queue full)" s.inline_runs;
  int "faults: transient io" s.fault_transient;
  int "faults: corrupt page" s.fault_corrupt;
  int "faults: query crash" s.fault_crash;
  int "kernel passes: trie" s.kernel_trie_passes;
  int "kernel passes: direct2" s.kernel_direct2_passes;
  int "kernel passes: vertical" s.kernel_vertical_passes;
  int "kernel projected scans" s.kernel_projected_scans;
  int "kernel bitmap builds" s.kernel_bitmap_builds;
  int "calibration samples" s.calibration_samples;
  int "live epoch" s.live_epoch;
  int "seals maintained" s.seals;
  int "live: sides promoted" s.sides_promoted;
  int "live: sides evicted" s.sides_evicted;
  int "live: answers promoted" s.answers_promoted;
  int "live: answers evicted" s.answers_evicted;
  int "live: counted against old" s.maint_recounted;
  int "live: old-db scans" s.maint_old_scans;
  int "live: maintenance scans" s.maint_scans;
  int "live: maintenance pages" s.maint_pages_read;
  int "condensed inserts" s.cond_inserts;
  row "cache raw bytes (inserted)" (Printf.sprintf "%d" s.cond_raw_bytes);
  row "cache condensed bytes (inserted)" (Printf.sprintf "%d" s.cond_bytes);
  row "condensation ratio"
    (if s.cond_bytes = 0 then "-"
     else
       Printf.sprintf "%.2f"
         (float_of_int s.cond_raw_bytes /. float_of_int s.cond_bytes));
  int "reconstructions" s.reconstructions;
  int "answer cache entries" s.answer_entries;
  row "answer cache bytes" (Printf.sprintf "%d" s.answer_bytes);
  int "side cache entries" s.side_entries;
  row "side cache bytes" (Printf.sprintf "%d" s.side_bytes);
  int "evictions" s.evictions;
  int "replica failovers" s.failovers;
  List.iter
    (fun r ->
      row
        (Printf.sprintf "shard %d" r.shard)
        (Printf.sprintf
           "breaker=%s admissions=%d failures=%d trips=%d shed=%d scans=%d pages=%d failovers=%d"
           r.shard_breaker r.shard_admissions r.shard_failures r.shard_trips
           r.shard_shed r.shard_scans r.shard_pages_read r.shard_failovers))
    s.shards;
  tbl

let pp ppf (s : snapshot) =
  Format.fprintf ppf
    "queries=%d hits=%d subsumed=%d mined=%d expired=%d rejected=%d counted=%d checks=%d"
    s.queries s.answer_hits s.subsumption_hits s.sides_mined s.deadline_expired
    s.rejected s.support_counted s.constraint_checks
