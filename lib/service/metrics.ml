type snapshot = {
  queries : int;
  answer_hits : int;
  subsumption_hits : int;
  sides_mined : int;
  answer_misses : int;
  deadline_expired : int;
  rejected : int;
  failures : int;
  support_counted : int;
  constraint_checks : int;
  scans : int;
  pages_read : int;
  total_latency : float;
  max_latency : float;
  queue_high_water : int;
  answer_entries : int;
  answer_bytes : int;
  side_entries : int;
  side_bytes : int;
  evictions : int;
}

type t = {
  mutable queries : int;
  mutable answer_hits : int;
  mutable answer_misses : int;
  mutable subsumption_hits : int;
  mutable sides_mined : int;
  mutable deadline_expired : int;
  mutable rejected : int;
  mutable failures : int;
  mutable support_counted : int;
  mutable constraint_checks : int;
  mutable scans : int;
  mutable pages_read : int;
  mutable total_latency : float;
  mutable max_latency : float;
  mutable queue_high_water : int;
}

let create () =
  {
    queries = 0;
    answer_hits = 0;
    answer_misses = 0;
    subsumption_hits = 0;
    sides_mined = 0;
    deadline_expired = 0;
    rejected = 0;
    failures = 0;
    support_counted = 0;
    constraint_checks = 0;
    scans = 0;
    pages_read = 0;
    total_latency = 0.;
    max_latency = 0.;
    queue_high_water = 0;
  }

let reset t =
  t.queries <- 0;
  t.answer_hits <- 0;
  t.answer_misses <- 0;
  t.subsumption_hits <- 0;
  t.sides_mined <- 0;
  t.deadline_expired <- 0;
  t.rejected <- 0;
  t.failures <- 0;
  t.support_counted <- 0;
  t.constraint_checks <- 0;
  t.scans <- 0;
  t.pages_read <- 0;
  t.total_latency <- 0.;
  t.max_latency <- 0.;
  t.queue_high_water <- 0

let record_query t ~latency ~support_counted ~constraint_checks ~scans ~pages_read =
  t.queries <- t.queries + 1;
  t.support_counted <- t.support_counted + support_counted;
  t.constraint_checks <- t.constraint_checks + constraint_checks;
  t.scans <- t.scans + scans;
  t.pages_read <- t.pages_read + pages_read;
  t.total_latency <- t.total_latency +. latency;
  if latency > t.max_latency then t.max_latency <- latency

let record_answer_hit t = t.answer_hits <- t.answer_hits + 1
let record_answer_miss t = t.answer_misses <- t.answer_misses + 1
let record_subsumption_hit t = t.subsumption_hits <- t.subsumption_hits + 1
let record_side_mined t = t.sides_mined <- t.sides_mined + 1
let record_deadline_expired t = t.deadline_expired <- t.deadline_expired + 1
let record_rejected t = t.rejected <- t.rejected + 1
let record_failure t = t.failures <- t.failures + 1

let observe_queue_depth t d =
  if d > t.queue_high_water then t.queue_high_water <- d

let snapshot t ~answer_entries ~answer_bytes ~side_entries ~side_bytes ~evictions :
    snapshot =
  {
    queries = t.queries;
    answer_hits = t.answer_hits;
    answer_misses = t.answer_misses;
    subsumption_hits = t.subsumption_hits;
    sides_mined = t.sides_mined;
    deadline_expired = t.deadline_expired;
    rejected = t.rejected;
    failures = t.failures;
    support_counted = t.support_counted;
    constraint_checks = t.constraint_checks;
    scans = t.scans;
    pages_read = t.pages_read;
    total_latency = t.total_latency;
    max_latency = t.max_latency;
    queue_high_water = t.queue_high_water;
    answer_entries;
    answer_bytes;
    side_entries;
    side_bytes;
    evictions;
  }

let table (s : snapshot) =
  let tbl = Cfq_report.Table.create [ "metric"; "value" ] in
  let row k v = Cfq_report.Table.add_row tbl [ k; v ] in
  let int k v = row k (string_of_int v) in
  int "queries served" s.queries;
  int "answer-cache hits" s.answer_hits;
  int "answer-cache misses" s.answer_misses;
  int "subsumption hits (sides)" s.subsumption_hits;
  int "sides mined cold" s.sides_mined;
  int "deadline expired" s.deadline_expired;
  int "rejected (queue full)" s.rejected;
  int "failures" s.failures;
  int "support counted (ccc)" s.support_counted;
  int "constraint checks (ccc)" s.constraint_checks;
  int "db scans" s.scans;
  int "pages read" s.pages_read;
  row "total latency (s)" (Printf.sprintf "%.3f" s.total_latency);
  row "max latency (s)" (Printf.sprintf "%.3f" s.max_latency);
  row "avg latency (s)"
    (if s.queries = 0 then "-"
     else Printf.sprintf "%.4f" (s.total_latency /. float_of_int s.queries));
  int "queue high water" s.queue_high_water;
  int "answer cache entries" s.answer_entries;
  row "answer cache bytes" (Printf.sprintf "%d" s.answer_bytes);
  int "side cache entries" s.side_entries;
  row "side cache bytes" (Printf.sprintf "%d" s.side_bytes);
  int "evictions" s.evictions;
  tbl

let pp ppf (s : snapshot) =
  Format.fprintf ppf
    "queries=%d hits=%d subsumed=%d mined=%d expired=%d rejected=%d counted=%d checks=%d"
    s.queries s.answer_hits s.subsumption_hits s.sides_mined s.deadline_expired
    s.rejected s.support_counted s.constraint_checks
