(** Service counters: cache effectiveness, queue pressure, latency, and the
    aggregated ccc cost (support counts + constraint checks) of everything
    served.

    The mutable accumulator is owned by {!Service} and mutated only under
    its lock; [snapshot] copies it out for lock-free reading. *)

type t

(** Per-shard breakdown of a sharded backend: admission/failure/breaker
    counters from the service's shard health plus the shard's logical scan
    traffic ({!Cfq_txdb.Tx_db.shard_io}). *)
type shard_row = {
  shard : int;
  shard_admissions : int;  (** queries admitted to mining (fan over all shards) *)
  shard_failures : int;  (** failures attributed to this shard's pages *)
  shard_trips : int;  (** this shard's breaker Closed→Open transitions *)
  shard_shed : int;  (** submissions shed while this shard's breaker was open *)
  shard_breaker : string;  (** "closed" / "open" / "half-open" *)
  shard_scans : int;
  shard_pages_read : int;
  shard_failovers : int;  (** reads a sibling replica had to serve *)
}

type snapshot = {
  queries : int;  (** queries answered (including errors) *)
  answer_hits : int;  (** served verbatim from the answer cache *)
  subsumption_hits : int;  (** sides served by filtering a cached collection *)
  sides_mined : int;  (** sides that had to run the mining engine *)
  answer_misses : int;  (** queries not found in the answer cache *)
  deadline_expired : int;
  rejected : int;  (** refused at admission (queue full) *)
  failures : int;
  support_counted : int;  (** aggregated over all served queries *)
  constraint_checks : int;
  scans : int;
  pages_read : int;
  total_latency : float;  (** wall-clock seconds, summed *)
  max_latency : float;
  queue_high_water : int;
  retries : int;  (** transient-fault retries performed *)
  degraded : int;  (** answers served from an entailed cached superset *)
  breaker_trips : int;  (** circuit breaker Closed→Open transitions *)
  shed : int;  (** submissions shed while the breaker was open *)
  inline_runs : int;  (** queue-full fallbacks run in the calling domain *)
  fault_transient : int;  (** [Transient_io] faults that reached the service *)
  fault_corrupt : int;  (** [Corrupt_page] faults that reached the service *)
  fault_crash : int;  (** [Query_crash] faults that reached the service *)
  kernel_trie_passes : int;  (** counting passes per kernel, over cold mines *)
  kernel_direct2_passes : int;
  kernel_vertical_passes : int;
  kernel_projected_scans : int;  (** passes answered from a projection *)
  kernel_bitmap_builds : int;
  calibration_samples : int;
      (** observations in the service's shared calibration record *)
  live_epoch : int;  (** current epoch (0 = never sealed); a gauge *)
  seals : int;  (** seals whose maintenance this service ran *)
  sides_promoted : int;  (** side collections promoted across a seal *)
  sides_evicted : int;  (** side entries dropped by maintenance *)
  answers_promoted : int;  (** cached answers re-derived at the new epoch *)
  answers_evicted : int;  (** cached answers dropped by maintenance *)
  maint_recounted : int;
      (** seeded candidates counted against the old database
          ([Incremental.outcome.counted_against_old], summed) *)
  maint_old_scans : int;
      (** old-database scans maintenance paid
          ([Incremental.outcome.old_scans], summed) *)
  maint_scans : int;  (** all maintenance scans (delta twin + old db) *)
  maint_pages_read : int;  (** pages those scans charged *)
  cond_raw_bytes : int;
      (** raw-equivalent bytes of every cache insert (sides + answers),
          condensed or not *)
  cond_bytes : int;  (** bytes those inserts actually charged the cache *)
  cond_inserts : int;  (** inserts stored in condensed / packed form *)
  reconstructions : int;
      (** lazy rebuilds paid on lookup (side collection reconstructions +
          packed-answer unpacks) *)
  answer_entries : int;
  answer_bytes : int;
  side_entries : int;
  side_bytes : int;
  evictions : int;
  failovers : int;  (** replica failovers, summed over shards *)
  shards : shard_row list;  (** one row per shard; [[]] unsharded *)
}

val create : unit -> t
val reset : t -> unit

val record_query :
  t ->
  latency:float ->
  support_counted:int ->
  constraint_checks:int ->
  scans:int ->
  pages_read:int ->
  unit

val record_answer_hit : t -> unit
val record_answer_miss : t -> unit
val record_subsumption_hit : t -> unit
val record_side_mined : t -> unit
val record_deadline_expired : t -> unit
val record_rejected : t -> unit
val record_failure : t -> unit
val record_retry : t -> unit
val record_degraded : t -> unit
val record_breaker_trip : t -> unit
val record_shed : t -> unit
val record_inline_run : t -> unit

(** Classify a fault that reached the service (after retries, for
    transients).  [Deadline]/[Overload] are counted by their own
    dedicated counters, not here. *)
val record_fault : t -> Cfq_txdb.Cfq_error.t -> unit

(** Set the calibration-samples gauge to the shared record's current
    observation count. *)
val observe_calibration_samples : t -> int -> unit

(** One seal happened: bump the seal count and set the epoch gauge. *)
val record_seal : t -> epoch:int -> unit

(** Accumulate one maintenance pass's outcome (promoted / evicted entry
    counts, FUP old-database cost, and the pass's I/O charges). *)
val record_maintenance :
  t ->
  sides_promoted:int ->
  sides_evicted:int ->
  answers_promoted:int ->
  answers_evicted:int ->
  recounted:int ->
  old_scans:int ->
  scans:int ->
  pages_read:int ->
  unit

(** Accumulate one cold mine's adaptive-kernel pass counts (see
    {!Cfq_mining.Counting.pass_counts}). *)
val record_kernel_passes :
  t ->
  trie:int ->
  direct2:int ->
  vertical:int ->
  projected_scans:int ->
  bitmap_builds:int ->
  unit

(** One cache insert passed through the condensation layer: [raw] is the
    weight the raw form would have charged, [stored] what was charged,
    [condensed] whether the closed/packed form was used. *)
val record_condensed : t -> raw:int -> stored:int -> condensed:bool -> unit

(** A lookup had to rebuild a raw value from its condensed form. *)
val record_reconstruction : t -> unit

val observe_queue_depth : t -> int -> unit

(** [snapshot t ~answer_entries ... ~evictions] copies the counters,
    attaching the current cache occupancy figures and, for a sharded
    backend, the per-shard rows the service computed at snapshot time. *)
val snapshot :
  t ->
  ?shards:shard_row list ->
  ?failovers:int ->
  answer_entries:int ->
  answer_bytes:int ->
  side_entries:int ->
  side_bytes:int ->
  evictions:int ->
  unit ->
  snapshot

(** Render as a two-column report table. *)
val table : snapshot -> Cfq_report.Table.t

val pp : Format.formatter -> snapshot -> unit
