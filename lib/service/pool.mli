(** The service worker pool — an alias of {!Cfq_exec_pool.Pool}, where the
    implementation moved so the mining layer can borrow idle workers for
    intra-query parallel counting.  The type equalities are exposed:
    a [Cfq_service.Pool.t] {e is} a [Cfq_exec_pool.Pool.t]. *)

include module type of struct
  include Cfq_exec_pool.Pool
end
