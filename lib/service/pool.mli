(** A fixed pool of OCaml 5 domains draining a bounded work queue.

    Jobs are closures; submitting returns a promise that [await] blocks on.
    The queue is bounded: when [queue_capacity] jobs are already waiting,
    {!submit} refuses instead of queueing unboundedly (admission control for
    the serving layer).

    Exceptions raised by a job are captured and re-raised by [await] in the
    caller, so a crashing query never takes a worker domain down. *)

type t

type 'a promise

(** [create ~domains ~queue_capacity ()] spawns [domains] worker domains
    (at least 1; default [Domain.recommended_domain_count () - 1], at least
    1) with a queue of at most [queue_capacity] waiting jobs (default
    1024). *)
val create : ?domains:int -> ?queue_capacity:int -> unit -> t

(** Number of worker domains. *)
val size : t -> int

(** Jobs currently waiting (excludes running ones). *)
val queue_depth : t -> int

(** The pool has been shut down. *)
val is_stopped : t -> bool

(** [submit t job] enqueues [job]; [None] when the queue is full.
    Submitting to a shut-down pool raises
    [Cfq_error.Error Cfq_error.Overload] — callers that outlive the pool
    get a typed error, not a silent drop. *)
val submit : t -> (unit -> 'a) -> 'a promise option

(** [run t job] is [submit] that falls back to running [job] in the calling
    domain when the queue is full or the pool is shut down, so it always
    yields a result.  [on_fallback] is invoked (before [job]) exactly when
    the fallback path is taken, letting callers count in-caller
    executions. *)
val run : ?on_fallback:(unit -> unit) -> t -> (unit -> 'a) -> 'a

(** [await p] blocks until the job finishes, returning its result or
    re-raising its exception. *)
val await : 'a promise -> 'a

(** Drain nothing further: running jobs finish, queued jobs are still
    executed, then the workers exit and are joined.  Calling [shutdown] a
    second time is a no-op. *)
val shutdown : t -> unit
