(** Canonical cache keys for CFQs.

    A fingerprint identifies what a query {e answers over}: the physical
    database and attribute tables, the absolute support thresholds, the
    lattice depth cap, and the normalised constraint sets ({!Cfq_core.Rewrite}
    applied, atoms sorted so that conjunction order is irrelevant).  Two
    queries with equal fingerprints have equal answers. *)

open Cfq_itembase
open Cfq_txdb
open Cfq_constr
open Cfq_core

(** [db_id db] is a process-wide token for the physical identity of [db].
    The same value always maps to the same id; structurally equal but
    distinct values get distinct ids (fingerprints never alias across
    reloads). *)
val db_id : Tx_db.t -> int

(** [info_id info] — same, for attribute tables. *)
val info_id : Item_info.t -> int

(** Canonical rendering of a 1-var constraint list: sorted, deduplicated. *)
val side_constraints : One_var.t list -> string

(** [side_key ~info ~minsup_abs ~max_level cs] keys one side's frequent
    collection: attribute table, absolute threshold, depth cap, constraint
    set. *)
val side_key :
  info:Item_info.t -> minsup_abs:int -> max_level:int option -> One_var.t list -> string

(** [query_key ctx q] keys the full answer of [q] (already normalised by
    {!Rewrite.simplify}) against [ctx]'s database and tables. *)
val query_key : Exec.ctx -> Query.t -> string
