(** Batch execution of query files through the service.

    A batch file holds one CFQ per line in the {!Cfq_core.Parser} syntax;
    blank lines and [#] comments are skipped.  All queries are submitted to
    the service (concurrently, up to the pool width) and reported in file
    order. *)

type item = {
  line : int;  (** 1-based line number in the file *)
  text : string;  (** query text as written *)
  outcome : (Service.answer, Service.error) result;
}

(** [load path] reads the query texts (with line numbers); [Error] on I/O
    problems. *)
val load : string -> ((int * string) list, string) result

(** [run service ?deadline items] parses, validates and executes every
    query.  Parse and validation failures surface as [Failed] outcomes on
    their line; the rest run through {!Service.run_many}. *)
val run : Service.t -> ?deadline:float -> (int * string) list -> item list

(** One human-readable line per item: status, pair count, cost, latency. *)
val report_lines : item list -> string list

(** [run_file service ?deadline path] is [load] + [run] + rendering,
    returning the report plus the service metrics table, or an error
    message. *)
val run_file : Service.t -> ?deadline:float -> string -> (string, string) result
