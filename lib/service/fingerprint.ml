open Cfq_itembase
open Cfq_txdb
open Cfq_constr
open Cfq_core

(* Physical-identity registries.  A service holds its database and tables
   alive anyway, so pinning registered values is harmless; the tables stay
   short (one entry per loaded database/table). *)

let registry_mutex = Mutex.create ()
let db_registry : (Tx_db.t * int) list ref = ref []
let info_registry : (Item_info.t * int) list ref = ref []
let next_id = ref 0

let identify registry v =
  Mutex.lock registry_mutex;
  let id =
    match List.find_opt (fun (v', _) -> v' == v) !registry with
    | Some (_, id) -> id
    | None ->
        incr next_id;
        registry := (v, !next_id) :: !registry;
        !next_id
  in
  Mutex.unlock registry_mutex;
  id

let db_id db = identify db_registry db
let info_id info = identify info_registry info

let sorted_unique strings = List.sort_uniq String.compare strings

let side_constraints cs =
  String.concat " & " (sorted_unique (List.map One_var.to_string cs))

let side_key ~info ~minsup_abs ~max_level cs =
  Printf.sprintf "side|info=%d|minsup=%d|maxlvl=%s|%s" (info_id info) minsup_abs
    (match max_level with None -> "-" | Some l -> string_of_int l)
    (side_constraints cs)

let query_key (ctx : Exec.ctx) (q : Query.t) =
  let two =
    String.concat " & " (sorted_unique (List.map Two_var.to_string q.Query.two_var))
  in
  Printf.sprintf "query|db=%d|S<%s>|T<%s>|2<%s>"
    (db_id ctx.Exec.db)
    (side_key ~info:ctx.Exec.s_info
       ~minsup_abs:(Tx_db.absolute_support ctx.Exec.db q.Query.s_minsup)
       ~max_level:q.Query.max_level q.Query.s_constraints)
    (side_key ~info:ctx.Exec.t_info
       ~minsup_abs:(Tx_db.absolute_support ctx.Exec.db q.Query.t_minsup)
       ~max_level:q.Query.max_level q.Query.t_constraints)
    two
