(* The pool now lives in [Cfq_exec_pool] so that mining-level code can
   borrow idle workers for intra-query parallel counting; this alias keeps
   [Cfq_service.Pool] as the serving-layer name for the same pool. *)
include Cfq_exec_pool.Pool
