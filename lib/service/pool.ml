type 'a state =
  | Pending
  | Done of 'a
  | Raised of exn

type 'a promise = {
  p_mutex : Mutex.t;
  p_cond : Condition.t;
  mutable state : 'a state;
}

type t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  jobs : (unit -> unit) Queue.t;
  capacity : int;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

let worker_loop t =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.jobs && not t.stopping do
      Condition.wait t.nonempty t.mutex
    done;
    match Queue.take_opt t.jobs with
    | Some job ->
        Mutex.unlock t.mutex;
        job ();
        loop ()
    | None ->
        (* stopping and drained *)
        Mutex.unlock t.mutex
  in
  loop ()

let create ?domains ?(queue_capacity = 1024) () =
  let domains =
    match domains with
    | Some d -> max 1 d
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  let t =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      jobs = Queue.create ();
      capacity = max 1 queue_capacity;
      stopping = false;
      workers = [];
    }
  in
  t.workers <- List.init domains (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = List.length t.workers

let queue_depth t =
  Mutex.lock t.mutex;
  let n = Queue.length t.jobs in
  Mutex.unlock t.mutex;
  n

let fulfill p outcome =
  Mutex.lock p.p_mutex;
  p.state <- outcome;
  Condition.broadcast p.p_cond;
  Mutex.unlock p.p_mutex

let job_of promise job () =
  match job () with
  | v -> fulfill promise (Done v)
  | exception e -> fulfill promise (Raised e)

let submit t job =
  let promise = { p_mutex = Mutex.create (); p_cond = Condition.create (); state = Pending } in
  Mutex.lock t.mutex;
  if t.stopping then begin
    Mutex.unlock t.mutex;
    Cfq_txdb.Cfq_error.raise_error Cfq_txdb.Cfq_error.Overload
  end
  else if Queue.length t.jobs >= t.capacity then begin
    Mutex.unlock t.mutex;
    None
  end
  else begin
    Queue.add (job_of promise job) t.jobs;
    Condition.signal t.nonempty;
    Mutex.unlock t.mutex;
    Some promise
  end

let is_pending p = match p.state with Pending -> true | Done _ | Raised _ -> false

let await p =
  Mutex.lock p.p_mutex;
  while is_pending p do
    Condition.wait p.p_cond p.p_mutex
  done;
  let state = p.state in
  Mutex.unlock p.p_mutex;
  match state with
  | Done v -> v
  | Raised e -> raise e
  | Pending -> assert false

let is_stopped t =
  Mutex.lock t.mutex;
  let s = t.stopping in
  Mutex.unlock t.mutex;
  s

let run ?(on_fallback = fun () -> ()) t job =
  let inline () =
    on_fallback ();
    job ()
  in
  match submit t job with
  | Some p -> await p
  | None -> inline ()
  | exception Cfq_txdb.Cfq_error.Error Cfq_txdb.Cfq_error.Overload -> inline ()

let shutdown t =
  Mutex.lock t.mutex;
  if t.stopping then
    (* already shut down: a documented no-op *)
    Mutex.unlock t.mutex
  else begin
    t.stopping <- true;
    Condition.broadcast t.nonempty;
    let workers = t.workers in
    t.workers <- [];
    Mutex.unlock t.mutex;
    List.iter Domain.join workers
  end
