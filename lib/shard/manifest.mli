(** The shard-set manifest: one small checksummed file naming the shards
    of a partitioned store and pinning the composite view over them.

    {v
    magic "CFQMAN01" | version | partition kind | shard count |
    generation | composite n_txs / n_pages / universe | replica count |
    per shard: n_txs, n_pages, segment generation,
               per replica: generation, health state |
    composite per-page logical checksums (global tids) |
    CRC-32 over everything above
    v}

    Version 2 adds the replica count and the per-replica
    (generation, health) pairs; version-1 manifests are still read, as a
    single-replica store with every replica healthy.

    The per-shard generations pair with the shards' segment headers
    ({!Cfq_store.Segment}): a crash between shard seals and the manifest
    rewrite leaves a generation mismatch that {!Sharded.open_} detects and
    self-heals.  The composite checksums are the {!Cfq_txdb.Tx_db.Checksum}
    values over {e global} tids — exactly what the composite database needs,
    and not derivable from the shards' own (local-tid) checksums without a
    full scan, which is why the manifest persists them.

    Writes follow the segment discipline: temp file + atomic rename +
    parent directory fsync. *)

type partition = Tid_range | Hash

val partition_name : partition -> string
val partition_of_string : string -> partition option

(** Replica health as recorded in the manifest.  [Stale] — missed a
    quorum write (its data lags the shard); [Quarantined] — the scrubber
    found a page whose CRC or logical checksum fails.  Neither serves
    reads until anti-entropy repair rebuilds it from a healthy sibling
    and re-admits it [Healthy]. *)
type health = Healthy | Stale | Quarantined

val health_name : health -> string

type replica_entry = {
  r_generation : int;  (** that replica's segment generation *)
  r_health : health;
}

type shard_entry = {
  s_txs : int;
  s_pages : int;
  s_generation : int;  (** segment generation recorded at manifest write *)
  s_replicas : replica_entry array;  (** one per replica, replica 0 first *)
}

type t = {
  generation : int;  (** bumped on every manifest rewrite (seal, heal) *)
  partition : partition;
  universe : int;
  n_txs : int;  (** composite transaction count (sum over shards) *)
  n_pages : int;  (** composite page count (sum over shards) *)
  replicas : int;  (** physical replicas per shard (>= 1) *)
  shards : shard_entry array;
  checksums : int array;  (** one per composite page, over global tids *)
}

exception Bad_manifest of string

(** [write path m] atomically replaces the manifest at [path]; durable
    when it returns.  The temp file is removed on failure. *)
val write : string -> t -> unit

(** [read path] parses and validates the manifest (magic, version, CRC,
    internal sizes).  Raises {!Bad_manifest}. *)
val read : string -> t

(** [is_manifest path] probes the first bytes for the manifest magic —
    how the shell and CLI distinguish a sharded store from a plain
    segment at the same path. *)
val is_manifest : string -> bool
