open Cfq_txdb
module Store = Cfq_store.Store

(* A replica group: R physical stores holding byte-identical copies of one
   shard's slice.  Reads route to the preferred replica and fail over on
   typed faults; writes mirror to every healthy replica under a majority
   quorum.  Because every replica packs the same page geometry, the group
   surfaces one Tx_db view whose pages, checksums and logical charges are
   those of any single replica — which replica actually served a read is
   invisible to answers, ccc and I/O accounting. *)

type t = {
  base : string;  (* sharded-store path *)
  shard : int;
  cache_pages : int option;
  group_commit : int option;
  stores : Store.t option array;  (* [None] = unopenable *)
  health : Manifest.health array;
  faults : Fault.t option array;  (* per-replica injectors, reinstalled on seal *)
  write_faults : bool array;  (* test hook: fail mirrored writes to replica j *)
  mutable preferred : int;
  mutable failovers : int;
  read_errors : int array;
  write_errors : int array;
  io : Io_stats.t;  (* shard sink shared with the composite (failovers land here) *)
  mutable db : Tx_db.t;
}

exception No_healthy_replica of int  (* shard *)

let shard_path base k = Printf.sprintf "%s.shard%d" base k

(* replica 0 is the shard's primary store file — the same [PATH.shardK] a
   single-replica (or pre-replication) store uses — siblings mirror it at
   [PATH.shardK.rJ] *)
let replica_path base ~shard ~replica =
  let sp = shard_path base shard in
  if replica = 0 then sp else Printf.sprintf "%s.r%d" sp replica

let quorum r = (r / 2) + 1
let replica_count t = Array.length t.stores
let io t = t.io
let failovers t = t.failovers
let preferred t = t.preferred
let health t ~replica = t.health.(replica)
let read_errors t ~replica = t.read_errors.(replica)
let write_errors t ~replica = t.write_errors.(replica)
let store t ~replica = t.stores.(replica)

let healthy_order t =
  let r = Array.length t.stores in
  let rec collect i acc =
    if i >= r then List.rev acc
    else
      let j = (t.preferred + i) mod r in
      let acc =
        if t.health.(j) = Manifest.Healthy && t.stores.(j) <> None then j :: acc
        else acc
      in
      collect (i + 1) acc
  in
  collect 0 []

let preferred_store t =
  match healthy_order t with
  | j :: _ -> Option.get t.stores.(j)
  | [] -> raise (No_healthy_replica t.shard)

let retryable = function
  | Cfq_error.Transient_io _ | Cfq_error.Corrupt_page _ | Cfq_error.Query_crash _
    ->
      true
  | Cfq_error.Deadline | Cfq_error.Overload -> false

(* ------------------------------------------------------------------ *)
(* failover reads                                                      *)
(* ------------------------------------------------------------------ *)

(* Serve [lo..hi] from the replicas in preference order.  Each replica
   runs the checked walk (its own injector + checksums + the pool's raw
   CRCs), so every fault surfaces typed before bad tuples escape.  On a
   typed fault the next sibling resumes exactly after the last delivered
   transaction — injected faults stop on a page boundary (validation
   precedes delivery), physical mid-page faults resume mid-page, where
   the sibling skips the partial page's checksum compare.  A completed
   range makes its replica the new preferred one (sticky routing). *)
let rec serve t order ~lo ~hi f =
  match order with
  | [] -> raise (No_healthy_replica t.shard)
  | j :: rest -> (
      let st = Option.get t.stores.(j) in
      let delivered = ref (lo - 1) in
      match
        Tx_db.iter_range_checked (Store.db st) ~lo ~hi (fun tx ->
            f tx;
            delivered := tx.Transaction.tid)
      with
      | () -> if j <> t.preferred then t.preferred <- j
      | exception Cfq_error.Error e when retryable e ->
          t.read_errors.(j) <- t.read_errors.(j) + 1;
          if rest = [] then Cfq_error.raise_error e
          else begin
            t.failovers <- t.failovers + 1;
            Io_stats.record_failover t.io;
            serve t rest ~lo:(!delivered + 1) ~hi f
          end)

let iter t ~lo ~hi f = if hi >= lo then serve t (healthy_order t) ~lo ~hi f

let rec serve_get t order tid =
  match order with
  | [] -> raise (No_healthy_replica t.shard)
  | j :: rest -> (
      let st = Option.get t.stores.(j) in
      match Tx_db.get (Store.db st) tid with
      | tx ->
          if j <> t.preferred then t.preferred <- j;
          tx
      | exception Cfq_error.Error e when retryable e ->
          t.read_errors.(j) <- t.read_errors.(j) + 1;
          if rest = [] then Cfq_error.raise_error e
          else begin
            t.failovers <- t.failovers + 1;
            Io_stats.record_failover t.io;
            serve_get t rest tid
          end)

let get t tid = serve_get t (healthy_order t) tid

let make_db t =
  let rdb = Store.db (preferred_store t) in
  let db =
    Tx_db.of_backend ~page_model:(Tx_db.page_model rdb) ~pages:(Tx_db.pages rdb)
      ~page_of:(Tx_db.page_table rdb) ~checksums:(Tx_db.checksum_table rdb)
      ~avg_tx_len:(Tx_db.avg_tx_len rdb)
      ~iter:(fun ~lo ~hi f -> iter t ~lo ~hi f)
      ~get:(fun tid -> get t tid) ()
  in
  (* a replica-level injector is invisible in the view's own [faults]; the
     probe lets count_shared pin faulted passes deterministically *)
  Tx_db.set_backend_faults db (fun () ->
      Array.exists (fun f -> f <> None) t.faults);
  db

let db t = t.db

(* ------------------------------------------------------------------ *)
(* fault injection                                                     *)
(* ------------------------------------------------------------------ *)

let install_faults t =
  Array.iteri
    (fun j st ->
      match st with
      | Some st -> Tx_db.set_faults (Store.db st) t.faults.(j)
      | None -> ())
    t.stores

let set_fault t ~replica f =
  if replica < 0 || replica >= Array.length t.stores then
    invalid_arg "Replica.set_fault: no such replica";
  t.faults.(replica) <- f;
  match t.stores.(replica) with
  | Some st -> Tx_db.set_faults (Store.db st) f
  | None -> ()

let fault t ~replica = t.faults.(replica)
let set_write_fault t ~replica v = t.write_faults.(replica) <- v

(* ------------------------------------------------------------------ *)
(* build / open                                                        *)
(* ------------------------------------------------------------------ *)

(* write the slice once per replica; returns the paths created so a failed
   sharded build can clean up *)
let build ?page_model ~replicas ~shard base slice =
  let created = ref [] in
  for j = 0 to replicas - 1 do
    let p = replica_path base ~shard ~replica:j in
    Store.build ?page_model p slice;
    created := p :: !created
  done;
  List.rev !created

let open_group ?cache_pages ?group_commit ?health ~replicas ~shard base =
  let r = max 1 replicas in
  let health =
    match health with
    | Some h ->
        if Array.length h <> r then
          invalid_arg "Replica.open_group: one health state per replica";
        Array.copy h
    | None -> Array.make r Manifest.Healthy
  in
  let stores =
    Array.init r (fun j ->
        if health.(j) = Manifest.Quarantined then
          (* still try to open — a quarantined replica's stats are useful
             and repair wants its generation — but never serve from it *)
          match Store.open_ ?cache_pages ?group_commit (replica_path base ~shard ~replica:j) with
          | st -> Some st
          | exception _ -> None
        else
          match Store.open_ ?cache_pages ?group_commit (replica_path base ~shard ~replica:j) with
          | st -> Some st
          | exception (Cfq_store.Segment.Bad_segment _ | Unix.Unix_error _) ->
              (* unopenable: quarantine instead of failing the whole shard *)
              health.(j) <- Manifest.Quarantined;
              None)
  in
  (* pick the most advanced healthy replica as the reference; healthy
     siblings that lag it (a crash between replica seals) are laggards and
     go stale until repair *)
  let ref_j = ref (-1) in
  Array.iteri
    (fun j st ->
      match st with
      | Some st when health.(j) = Manifest.Healthy ->
          let better =
            !ref_j < 0
            ||
            let cur = Option.get stores.(!ref_j) in
            Store.generation st > Store.generation cur
            || (Store.generation st = Store.generation cur
               && Store.size st > Store.size cur)
          in
          if better then ref_j := j
      | _ -> ())
    stores;
  if !ref_j < 0 then begin
    Array.iter (function Some st -> (try Store.close st with _ -> ()) | None -> ()) stores;
    raise (No_healthy_replica shard)
  end;
  let rst = Option.get stores.(!ref_j) in
  Array.iteri
    (fun j st ->
      match st with
      | Some st
        when health.(j) = Manifest.Healthy
             && (Store.generation st <> Store.generation rst
                || Store.size st <> Store.size rst
                || Store.pages st <> Store.pages rst) ->
          health.(j) <- Manifest.Stale
      | _ -> ())
    stores;
  let t =
    {
      base;
      shard;
      cache_pages;
      group_commit;
      stores;
      health;
      faults = Array.make r None;
      write_faults = Array.make r false;
      preferred = !ref_j;
      failovers = 0;
      read_errors = Array.make r 0;
      write_errors = Array.make r 0;
      io = Io_stats.create ();
      db = Tx_db.create [||];  (* replaced below *)
    }
  in
  t.db <- make_db t;
  t

let close t =
  Array.iter
    (function Some st -> (try Store.close st with _ -> ()) | None -> ())
    t.stores

(* ------------------------------------------------------------------ *)
(* mirrored ingestion                                                  *)
(* ------------------------------------------------------------------ *)

(* Apply [op] to every healthy replica.  A replica whose write fails is a
   laggard: it stops receiving writes (its data now lags) and goes stale
   until anti-entropy repair.  Fewer than [min_ok] replicas accepting
   re-raises the first failure: new writes demand a majority of the full
   replica set, while a seal — which folds already-acknowledged records —
   proceeds as long as any healthy replica survives, so a degraded shard
   can still reach the sealed boundary repair rebuilds from. *)
let mirror ?min_ok t op =
  let r = Array.length t.stores in
  let min_ok = match min_ok with Some m -> m | None -> quorum r in
  let ok = ref 0 and first_err = ref None in
  for j = 0 to r - 1 do
    if t.health.(j) = Manifest.Healthy then
      match t.stores.(j) with
      | None -> ()
      | Some st -> (
          try
            if t.write_faults.(j) then
              Cfq_error.raise_error (Cfq_error.Transient_io { page = 0 });
            op st;
            incr ok
          with e ->
            t.write_errors.(j) <- t.write_errors.(j) + 1;
            t.health.(j) <- Manifest.Stale;
            if !first_err = None then first_err := Some e)
  done;
  if !ok < min_ok then
    match !first_err with
    | Some e -> raise e
    | None -> raise (No_healthy_replica t.shard)

let append_tx t items = mirror t (fun st -> Store.append_tx st items)
let flush t = mirror t (fun st -> Store.flush st)

let seal t =
  let sealed = ref 0 in
  mirror ~min_ok:1 t (fun st -> sealed := max !sealed (Store.seal st));
  if !sealed > 0 then begin
    (* the seal replaced every replica's db handle: rebuild the failover
       view and re-install the per-replica injectors on the new handles *)
    t.db <- make_db t;
    install_faults t
  end;
  !sealed

(* ------------------------------------------------------------------ *)
(* scrub / repair support                                              *)
(* ------------------------------------------------------------------ *)

let verify_replica ?throttle t ~replica =
  match t.stores.(replica) with
  | None ->
      [ { Store.pf_page = 0; pf_kind = Store.Bad_crc } ] (* unopenable *)
  | Some st -> Store.verify_pages ?throttle st

let set_health t ~replica h = t.health.(replica) <- h

(* Anti-entropy: rebuild replica [j] from the most advanced healthy
   sibling.  The sibling is sealed first (a no-op when its WAL is empty)
   so the rebuilt segment captures everything acknowledged; the replica's
   segment is rewritten page-for-page from the sibling's decoded
   transactions — same page model, same packing, so the result is
   CRC-identical — its WAL is reset at the sibling's generation, and the
   replica is reopened and re-admitted healthy. *)
let repair t ~replica =
  if replica < 0 || replica >= Array.length t.stores then
    invalid_arg "Replica.repair: no such replica";
  match
    List.filter (fun j -> j <> replica) (healthy_order t)
  with
  | [] -> Error "no healthy sibling to repair from"
  | src_j :: _ -> (
      try
        let src = Option.get t.stores.(src_j) in
        ignore (Store.seal src : int);
        let sets = Store.read_all src in
        let gen = Store.generation src in
        let pm = Store.page_model src in
        (match t.stores.(replica) with
        | Some st -> ( try Store.close st with _ -> ())
        | None -> ());
        let p = replica_path t.base ~shard:t.shard ~replica in
        Cfq_store.Segment.write ~page_model:pm ~generation:gen p sets;
        Cfq_store.Wal.reset (p ^ ".wal") ~generation:gen;
        let st =
          Store.open_ ?cache_pages:t.cache_pages ?group_commit:t.group_commit p
        in
        t.stores.(replica) <- Some st;
        Tx_db.set_faults (Store.db st) t.faults.(replica);
        t.health.(replica) <- Manifest.Healthy;
        (* the source may have sealed pending records: refresh the view *)
        t.db <- make_db t;
        install_faults t;
        Ok ()
      with e ->
        t.health.(replica) <- Manifest.Quarantined;
        Error (Printexc.to_string e))

(* the manifest entry this group currently warrants *)
let entry t =
  let st = preferred_store t in
  {
    Manifest.s_txs = Store.size st;
    s_pages = Store.pages st;
    s_generation = Store.generation st;
    s_replicas =
      Array.mapi
        (fun j o ->
          {
            Manifest.r_generation =
              (match o with Some st -> Store.generation st | None -> 0);
            r_health = t.health.(j);
          })
        t.stores;
  }
