let magic = "CFQMAN01"
let version = 2

type partition = Tid_range | Hash

let partition_name = function Tid_range -> "tid-range" | Hash -> "hash"

let partition_of_string = function
  | "tid-range" | "tid_range" | "range" -> Some Tid_range
  | "hash" -> Some Hash
  | _ -> None

let partition_code = function Tid_range -> 0 | Hash -> 1

let partition_of_code = function
  | 0 -> Some Tid_range
  | 1 -> Some Hash
  | _ -> None

type health = Healthy | Stale | Quarantined

let health_name = function
  | Healthy -> "healthy"
  | Stale -> "stale"
  | Quarantined -> "quarantined"

let health_code = function Healthy -> 0 | Stale -> 1 | Quarantined -> 2

let health_of_code = function
  | 0 -> Some Healthy
  | 1 -> Some Stale
  | 2 -> Some Quarantined
  | _ -> None

type replica_entry = { r_generation : int; r_health : health }

type shard_entry = {
  s_txs : int;
  s_pages : int;
  s_generation : int;
  s_replicas : replica_entry array;
}

type t = {
  generation : int;
  partition : partition;
  universe : int;
  n_txs : int;
  n_pages : int;
  replicas : int;
  shards : shard_entry array;
  checksums : int array;
}

exception Bad_manifest of string

let bad path fmt =
  Printf.ksprintf (fun m -> raise (Bad_manifest (path ^ ": " ^ m))) fmt

(* fixed part offsets.  v1 stopped at [h_universe] (fixed part 52 bytes,
   24-byte entries); v2 appends the per-shard replica count and extends
   each entry with (generation, health) per replica. *)
let h_version = 8
let h_partition = 12
let h_shards = 16
let h_generation = 20
let h_n_txs = 28
let h_n_pages = 36
let h_universe = 44
let h_replicas = 52
let fixed_bytes_v1 = 52
let fixed_bytes = 56
let entry_base = 24 (* 3 * u64 per shard *)
let replica_bytes = 12 (* u64 generation + u32 health per replica *)

let set_u32 b off v = Bytes.set_int32_le b off (Int32.of_int v)
let get_u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF
let set_u64 b off v = Bytes.set_int64_le b off (Int64.of_int v)
let get_u64 b off = Int64.to_int (Bytes.get_int64_le b off)

let entry_bytes m = entry_base + (m.replicas * replica_bytes)

let encode m =
  let ns = Array.length m.shards in
  let eb = entry_bytes m in
  let total = fixed_bytes + (ns * eb) + (m.n_pages * 8) + 4 in
  let b = Bytes.make total '\000' in
  Bytes.blit_string magic 0 b 0 8;
  set_u32 b h_version version;
  set_u32 b h_partition (partition_code m.partition);
  set_u32 b h_shards ns;
  set_u64 b h_generation m.generation;
  set_u64 b h_n_txs m.n_txs;
  set_u64 b h_n_pages m.n_pages;
  set_u64 b h_universe m.universe;
  set_u32 b h_replicas m.replicas;
  Array.iteri
    (fun k e ->
      let off = fixed_bytes + (k * eb) in
      set_u64 b off e.s_txs;
      set_u64 b (off + 8) e.s_pages;
      set_u64 b (off + 16) e.s_generation;
      Array.iteri
        (fun j r ->
          let roff = off + entry_base + (j * replica_bytes) in
          set_u64 b roff r.r_generation;
          set_u32 b (roff + 8) (health_code r.r_health))
        e.s_replicas)
    m.shards;
  let coff = fixed_bytes + (ns * eb) in
  Array.iteri (fun p sum -> set_u64 b (coff + (p * 8)) sum) m.checksums;
  set_u32 b (total - 4) (Cfq_store.Crc32.sub b 0 (total - 4));
  b

let write_all fd b =
  let off = ref 0 and len = ref (Bytes.length b) in
  while !len > 0 do
    let w = Unix.write fd b !off !len in
    off := !off + w;
    len := !len - w
  done

let fsync_dir path =
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let check m =
  if m.replicas < 1 then invalid_arg "Manifest: at least one replica required";
  if Array.length m.checksums <> m.n_pages then
    invalid_arg "Manifest: one checksum per composite page required";
  Array.iter
    (fun e ->
      if Array.length e.s_replicas <> m.replicas then
        invalid_arg "Manifest: one replica entry per replica required")
    m.shards

let write path m =
  check m;
  let b = encode m in
  let tmp = path ^ ".tmp" in
  (try
     let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
     Fun.protect
       ~finally:(fun () -> Unix.close fd)
       (fun () ->
         write_all fd b;
         Unix.fsync fd)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Unix.rename tmp path;
  fsync_dir path

let read path =
  let fd =
    try Unix.openfile path [ Unix.O_RDONLY ] 0
    with Unix.Unix_error (e, _, _) ->
      raise (Bad_manifest (path ^ ": " ^ Unix.error_message e))
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let len = (Unix.fstat fd).Unix.st_size in
      if len < fixed_bytes_v1 + 4 then bad path "truncated manifest";
      let b = Bytes.make len '\000' in
      let off = ref 0 in
      while !off < len do
        let r = Unix.read fd b !off (len - !off) in
        if r = 0 then bad path "unexpected end of file";
        off := !off + r
      done;
      if Bytes.sub_string b 0 8 <> magic then bad path "bad magic";
      let v = get_u32 b h_version in
      if v <> 1 && v <> version then bad path "unsupported version %d" v;
      let stored_crc = get_u32 b (len - 4) in
      if Cfq_store.Crc32.sub b 0 (len - 4) <> stored_crc then
        bad path "manifest CRC mismatch";
      let partition =
        match partition_of_code (get_u32 b h_partition) with
        | Some p -> p
        | None -> bad path "unknown partition kind"
      in
      let ns = get_u32 b h_shards in
      let n_txs = get_u64 b h_n_txs in
      let n_pages = get_u64 b h_n_pages in
      if ns < 1 then bad path "no shards";
      let fixed = if v = 1 then fixed_bytes_v1 else fixed_bytes in
      let replicas =
        if v = 1 then 1
        else begin
          if len < fixed_bytes + 4 then bad path "truncated manifest";
          let r = get_u32 b h_replicas in
          if r < 1 then bad path "no replicas";
          r
        end
      in
      let eb = entry_base + (if v = 1 then 0 else replicas * replica_bytes) in
      if len <> fixed + (ns * eb) + (n_pages * 8) + 4 then
        bad path "manifest size does not match its shard/page counts";
      let shards =
        Array.init ns (fun k ->
            let off = fixed + (k * eb) in
            let s_generation = get_u64 b (off + 16) in
            let s_replicas =
              if v = 1 then [| { r_generation = s_generation; r_health = Healthy } |]
              else
                Array.init replicas (fun j ->
                    let roff = off + entry_base + (j * replica_bytes) in
                    let r_health =
                      match health_of_code (get_u32 b (roff + 8)) with
                      | Some h -> h
                      | None -> bad path "unknown replica health state"
                    in
                    { r_generation = get_u64 b roff; r_health })
            in
            {
              s_txs = get_u64 b off;
              s_pages = get_u64 b (off + 8);
              s_generation;
              s_replicas;
            })
      in
      if Array.fold_left (fun a e -> a + e.s_txs) 0 shards <> n_txs then
        bad path "shard transaction counts do not sum to the composite";
      if Array.fold_left (fun a e -> a + e.s_pages) 0 shards <> n_pages then
        bad path "shard page counts do not sum to the composite";
      let coff = fixed + (ns * eb) in
      let checksums = Array.init n_pages (fun p -> get_u64 b (coff + (p * 8))) in
      {
        generation = get_u64 b h_generation;
        partition;
        universe = get_u64 b h_universe;
        n_txs;
        n_pages;
        replicas;
        shards;
        checksums;
      })

let is_manifest path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> false
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let b = Bytes.make 8 '\000' in
          let rec fill off =
            if off >= 8 then true
            else
              match Unix.read fd b off (8 - off) with
              | 0 -> false
              | r -> fill (off + r)
          in
          fill 0 && Bytes.to_string b = magic)
