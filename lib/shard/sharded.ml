open Cfq_itembase
open Cfq_txdb
module Store = Cfq_store.Store

type seal_info = {
  si_generation : int;
  si_base_txs : int;
  si_sealed_txs : int;
  si_delta_ranges : (int * int) list;
}

type t = {
  path : string;
  cache_pages : int option;
  group_commit : int option;
  groups : Replica.t array;
  mutable db : Tx_db.t;
  mutable manifest : Manifest.t;
  mutable appended : int;  (* round-robin cursor for Hash routing *)
  mutable last_seal : seal_info option;
}

let shard_path path k = Printf.sprintf "%s.shard%d" path k

(* ------------------------------------------------------------------ *)
(* Partitioner                                                         *)
(* ------------------------------------------------------------------ *)

(* page-run starts of the global greedy packing: the only places a shard
   boundary may sit, because the packer's free-space counter is spent
   entering a run start — local re-packing from there reproduces the
   global page geometry exactly *)
let run_starts page_of n =
  let starts = ref [] in
  let i = ref 0 in
  while !i < n do
    starts := !i :: !starts;
    let page = page_of.(!i) in
    let j = ref !i in
    while !j < n && page_of.(!j) = page do
      incr j
    done;
    i := !j
  done;
  Array.of_list (List.rev !starts)

let tid_ranges ?(page_model = Page_model.default) sizes ~shards =
  let n = Array.length sizes in
  let shards = max 1 shards in
  let page_of, _pages = Page_model.assign page_model sizes in
  let starts = run_starts page_of n in
  let runs = Array.length starts in
  Array.init shards (fun k ->
      let r0 = k * runs / shards and r1 = (k + 1) * runs / shards in
      if r0 >= r1 then (0, -1) (* empty shard *)
      else
        let lo = starts.(r0) in
        let hi = if r1 = runs then n - 1 else starts.(r1) - 1 in
        (lo, hi))

(* SplitMix64 finalizer: a stable scatter of the transaction index,
   masked to a non-negative native int *)
let mix64 z =
  let z = Int64.of_int z in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.to_int (Int64.logand (Int64.logxor z (Int64.shift_right_logical z 31)) 0x3FFFFFFFFFFFFFFFL)

let slices ?page_model ~partition sets ~shards =
  let shards = max 1 shards in
  match partition with
  | Manifest.Tid_range ->
      let sizes = Array.map Itemset.cardinal sets in
      Array.map
        (fun (lo, hi) ->
          if hi < lo then [||] else Array.sub sets lo (hi - lo + 1))
        (tid_ranges ?page_model sizes ~shards)
  | Manifest.Hash ->
      let bufs = Array.make shards [] in
      Array.iteri
        (fun i items ->
          let k = mix64 i mod shards in
          bufs.(k) <- items :: bufs.(k))
        sets;
      Array.map (fun l -> Array.of_list (List.rev l)) bufs

(* ------------------------------------------------------------------ *)
(* Manifest computation                                                *)
(* ------------------------------------------------------------------ *)

(* composite checksums over global tids, walking the live shard databases
   raw (page_of comes from the handles, no repacking) *)
let composite_checksums ~n_pages stores =
  let sums = Array.make n_pages Tx_db.Checksum.seed in
  let tbase = ref 0 and pbase = ref 0 in
  Array.iter
    (fun st ->
      let sub = Store.db st in
      let n = Tx_db.size sub in
      if n > 0 then
        Tx_db.iter_range sub ~lo:0 ~hi:(n - 1) (fun tx ->
            let p = !pbase + Tx_db.page_of_tx sub tx.Transaction.tid in
            let g =
              Transaction.make ~tid:(!tbase + tx.Transaction.tid)
                ~items:tx.Transaction.items
            in
            sums.(p) <- Tx_db.Checksum.add_tx sums.(p) g);
      tbase := !tbase + n;
      pbase := !pbase + Tx_db.pages sub)
    stores;
  sums

let manifest_of_entries ~partition ~generation ~replicas entries stores =
  let n_txs = Array.fold_left (fun a e -> a + e.Manifest.s_txs) 0 entries in
  let n_pages = Array.fold_left (fun a e -> a + e.Manifest.s_pages) 0 entries in
  let universe =
    Array.fold_left (fun a st -> max a (Store.universe_size st)) 0 stores
  in
  {
    Manifest.generation;
    partition;
    universe;
    n_txs;
    n_pages;
    replicas;
    shards = entries;
    checksums = composite_checksums ~n_pages stores;
  }

(* a fresh build: every replica healthy at its store's generation *)
let manifest_of_stores ~partition ~generation ~replicas stores =
  let entries =
    Array.map
      (fun st ->
        {
          Manifest.s_txs = Store.size st;
          s_pages = Store.pages st;
          s_generation = Store.generation st;
          s_replicas =
            Array.make replicas
              {
                Manifest.r_generation = Store.generation st;
                r_health = Manifest.Healthy;
              };
        })
      stores
  in
  manifest_of_entries ~partition ~generation ~replicas entries stores

(* a live store: per-replica generation and health come from the groups *)
let manifest_of_groups ~partition ~generation ~replicas groups =
  let entries = Array.map Replica.entry groups in
  let stores = Array.map Replica.preferred_store groups in
  manifest_of_entries ~partition ~generation ~replicas entries stores

(* ------------------------------------------------------------------ *)
(* Build                                                               *)
(* ------------------------------------------------------------------ *)

let remove_quiet p = try Sys.remove p with Sys_error _ -> ()

let build ?page_model ?(partition = Manifest.Tid_range) ?(replicas = 1)
    ?on_shard_built ~shards path sets =
  let shards = max 1 shards in
  let replicas = max 1 replicas in
  let parts = slices ?page_model ~partition sets ~shards in
  let created = ref [] in
  try
    Array.iteri
      (fun k slice ->
        let paths = Replica.build ?page_model ~replicas ~shard:k path slice in
        created := List.rev_append paths !created;
        match on_shard_built with Some f -> f k | None -> ())
      parts;
    (* compute the composite view from freshly opened shards so the
       manifest records exactly what open_ will see *)
    let stores = Array.init shards (fun k -> Store.open_ ~cache_pages:1 (shard_path path k)) in
    Fun.protect
      ~finally:(fun () -> Array.iter (fun st -> try Store.close st with _ -> ()) stores)
      (fun () ->
        Manifest.write path
          (manifest_of_stores ~partition ~generation:0 ~replicas stores))
  with e ->
    (* a failed build leaves no orphaned shard files: every replica store
       created so far (segment + WAL) goes, and so does the manifest temp *)
    List.iter
      (fun sp ->
        remove_quiet sp;
        remove_quiet (sp ^ ".wal"))
      !created;
    remove_quiet (path ^ ".tmp");
    raise e

let build_from_segment ?(partition = Manifest.Tid_range) ?replicas ~shards ~src
    path =
  let seg = Cfq_store.Segment.open_ src in
  let pm = seg.Cfq_store.Segment.pm in
  let sets =
    Fun.protect
      ~finally:(fun () -> Cfq_store.Segment.close seg)
      (fun () -> Cfq_store.Segment.read_all seg)
  in
  build ~page_model:pm ~partition ?replicas ~shards path sets

(* ------------------------------------------------------------------ *)
(* Open / attach                                                       *)
(* ------------------------------------------------------------------ *)

let attach groups m =
  Tx_db.of_shards ~checksums:m.Manifest.checksums
    ~io:(Array.map Replica.io groups)
    (Array.map Replica.db groups)

(* the manifest matches iff every shard entry — sizes, generations and the
   per-replica (generation, health) pairs — agrees with the live groups *)
let manifest_matches m groups =
  Array.length groups = Array.length m.Manifest.shards
  && Array.for_all2
       (fun e g -> e = Replica.entry g)
       m.Manifest.shards groups

let open_ ?cache_pages ?group_commit path =
  let m = Manifest.read path in
  let ns = Array.length m.Manifest.shards in
  let groups = Array.make ns None in
  (try
     for k = 0 to ns - 1 do
       let health =
         Array.map
           (fun r -> r.Manifest.r_health)
           m.Manifest.shards.(k).Manifest.s_replicas
       in
       groups.(k) <-
         Some
           (Replica.open_group ?cache_pages ?group_commit ~health
              ~replicas:m.Manifest.replicas ~shard:k path)
     done
   with e ->
     Array.iter
       (function Some g -> (try Replica.close g with _ -> ()) | None -> ())
       groups;
     raise e);
  let groups = Array.map Option.get groups in
  (* self-heal a stale manifest: per-shard recovery may have folded WAL
     records, a crash during seal can leave the manifest one generation
     behind the shards, and open_group demotes laggard replicas to stale *)
  let m =
    if manifest_matches m groups then m
    else begin
      let healed =
        manifest_of_groups ~partition:m.Manifest.partition
          ~generation:(m.Manifest.generation + 1)
          ~replicas:m.Manifest.replicas groups
      in
      Manifest.write path healed;
      healed
    end
  in
  {
    path;
    cache_pages;
    group_commit;
    groups;
    db = attach groups m;
    manifest = m;
    appended = 0;
    last_seal = None;
  }

let close t = Array.iter Replica.close t.groups
let db t = t.db
let groups t = t.groups
let stores t = Array.map Replica.preferred_store t.groups
let manifest t = t.manifest
let path t = t.path
let shard_count t = Array.length t.groups
let replicas t = t.manifest.Manifest.replicas
let size t = Tx_db.size t.db
let pages t = Tx_db.pages t.db

let universe_size t =
  Array.fold_left
    (fun a g -> max a (Store.universe_size (Replica.preferred_store g)))
    0 t.groups

let failovers t =
  Array.fold_left (fun a g -> a + Replica.failovers g) 0 t.groups

(* ------------------------------------------------------------------ *)
(* Ingestion                                                           *)
(* ------------------------------------------------------------------ *)

let append_tx t items =
  let ns = Array.length t.groups in
  let k =
    match t.manifest.Manifest.partition with
    | Manifest.Tid_range -> ns - 1 (* largest global tids: order preserved *)
    | Manifest.Hash -> t.appended mod ns
  in
  t.appended <- t.appended + 1;
  Replica.append_tx t.groups.(k) items

let flush t = Array.iter Replica.flush t.groups

(* rewrite the manifest from the live groups (bumped generation) and
   re-attach the composite — after a seal, or after scrub changed
   replica health *)
let sync_manifest t =
  let m =
    manifest_of_groups ~partition:t.manifest.Manifest.partition
      ~generation:(t.manifest.Manifest.generation + 1)
      ~replicas:t.manifest.Manifest.replicas t.groups
  in
  Manifest.write t.path m;
  t.manifest <- m;
  t.db <- attach t.groups m

let seal t =
  let bases = Array.map (fun g -> Store.size (Replica.preferred_store g)) t.groups in
  let sealed_per = Array.map Replica.seal t.groups in
  let sealed = Array.fold_left ( + ) 0 sealed_per in
  if sealed > 0 then begin
    sync_manifest t;
    (* global delta ranges of the post-seal composite: each shard's new
       records sit at its tail, offset by the post-seal sizes of the
       shards before it.  Tid_range routing yields one trailing range;
       Hash routing one tail range per shard that got appends. *)
    let ranges = ref [] and off = ref 0 in
    Array.iteri
      (fun i g ->
        let n = Store.size (Replica.preferred_store g) in
        if sealed_per.(i) > 0 then
          ranges :=
            (!off + bases.(i), !off + bases.(i) + sealed_per.(i) - 1) :: !ranges;
        off := !off + n)
      t.groups;
    t.last_seal <-
      Some
        {
          si_generation = t.manifest.Manifest.generation;
          si_base_txs = Array.fold_left ( + ) 0 bases;
          si_sealed_txs = sealed;
          si_delta_ranges = List.rev !ranges;
        }
  end;
  sealed

let last_seal t = t.last_seal

(* ------------------------------------------------------------------ *)
(* Faults, cleanup, in-memory twin                                     *)
(* ------------------------------------------------------------------ *)

let set_shard_fault t ~shard f =
  match Tx_db.shards t.db with
  | Some subs when shard >= 0 && shard < Array.length subs ->
      Tx_db.set_faults subs.(shard) f
  | _ -> invalid_arg "Sharded.set_shard_fault: no such shard"

let set_replica_fault t ~shard ~replica f =
  if shard < 0 || shard >= Array.length t.groups then
    invalid_arg "Sharded.set_replica_fault: no such shard";
  Replica.set_fault t.groups.(shard) ~replica f

let set_replica_write_fault t ~shard ~replica v =
  if shard < 0 || shard >= Array.length t.groups then
    invalid_arg "Sharded.set_replica_write_fault: no such shard";
  Replica.set_write_fault t.groups.(shard) ~replica v

let remove_files path =
  let ns, nr =
    match Manifest.read path with
    | m -> (Array.length m.Manifest.shards, m.Manifest.replicas)
    | exception _ ->
        (* manifest unreadable: probe for shard files *)
        let k = ref 0 in
        while Sys.file_exists (shard_path path !k) do
          incr k
        done;
        (!k, 1)
  in
  for k = 0 to ns - 1 do
    (* remove every replica file that exists, even beyond the recorded
       count (a crashed re-replication may have left extras) *)
    let j = ref 0 in
    let continue = ref true in
    while !continue do
      let p = Replica.replica_path path ~shard:k ~replica:!j in
      let found = Sys.file_exists p || Sys.file_exists (p ^ ".wal") in
      remove_quiet p;
      remove_quiet (p ^ ".wal");
      incr j;
      continue := found || !j < nr
    done
  done;
  remove_quiet (path ^ ".tmp");
  remove_quiet path

let mem_db ?page_model ?(partition = Manifest.Tid_range) ~shards sets =
  let parts = slices ?page_model ~partition sets ~shards in
  let subs = Array.map (fun slice -> Tx_db.create ?page_model slice) parts in
  Tx_db.of_shards ?page_model subs
