(** The background scrubber and anti-entropy repair for replicated
    sharded stores.

    {!run} walks every replica of every shard under an I/O throttle,
    re-reading pages fresh from disk (bypassing buffer pools) and
    verifying raw CRC-32s plus logical page checksums
    ({!Cfq_store.Store.verify_pages}).  Replicas with bad pages are
    quarantined; then every stale or quarantined replica is rebuilt
    page-for-page from a healthy sibling at the current generation,
    re-verified, and re-admitted healthy.  Health transitions persist via
    {!Sharded.sync_manifest}.

    Not safe concurrently with {!Sharded.seal} on the same handle (both
    reposition segment descriptors); run scrubs between seals — the
    serving stack's queries, which read through the buffer pools, are
    unaffected. *)

module Store = Cfq_store.Store

type outcome =
  | Clean  (** verified, no faults *)
  | Faulty of Store.page_fault list  (** verification failed; quarantined *)
  | Repaired  (** was stale/quarantined; rebuilt and verified clean *)
  | Repair_failed of string  (** rebuild failed; stays quarantined *)
  | Skipped  (** repair disabled; left in its unhealthy state *)

type replica_report = {
  rr_shard : int;
  rr_replica : int;
  rr_health : Manifest.health;  (** after the scrub *)
  rr_outcome : outcome;
}

type report = {
  scrubbed_pages : int;  (** pages read by verification passes *)
  faults_found : int;  (** bad pages across all replicas *)
  repairs : int;  (** replicas rebuilt and re-admitted *)
  repair_failures : int;
  rows : replica_report list;  (** shard-major, replica-minor order *)
}

val outcome_name : outcome -> string

(** [run t] scrubs and (by default) repairs.  [~repair:false] verifies
    and quarantines only.  [throttle_pages]/[throttle_sleep] sleep that
    long after every that-many page reads — the I/O throttle. *)
val run :
  ?repair:bool ->
  ?throttle_pages:int ->
  ?throttle_sleep:float ->
  Sharded.t ->
  report

(** {2 Read-only health report (the [verify] command)} *)

type health_row = {
  hr_shard : int;
  hr_replica : int;
  hr_health : Manifest.health;
  hr_generation : int;
  hr_faults : Store.page_fault list;
}

(** Verify every replica in place — no quarantine, no repair, no manifest
    rewrite — and report per-replica health. *)
val health_report :
  ?throttle:(page:int -> unit) -> Sharded.t -> health_row list

(** Every replica healthy with zero faults. *)
val healthy_report : health_row list -> bool
