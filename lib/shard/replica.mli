(** A replica group: one logical shard backed by R physical
    {!Cfq_store.Store} copies with byte-identical page geometry.

    Replica 0 lives at the shard's legacy path [PATH.shardK]; siblings at
    [PATH.shardK.rJ].  Reads route to the sticky preferred replica and
    fail over on typed faults ([Transient_io], [Corrupt_page],
    [Query_crash]) to a healthy sibling, resuming exactly after the last
    delivered transaction — answers, ccc and logical page charges are
    byte-identical to a single-replica store because every replica packs
    the same pages.  Writes mirror to every healthy replica under a
    majority quorum; a replica whose write fails goes {!Manifest.Stale}
    until {!repair} rebuilds it page-for-page from a healthy sibling. *)

open Cfq_itembase
open Cfq_txdb
module Store = Cfq_store.Store

type t

(** Raised (with the shard index) when no healthy replica remains to
    serve a read or act as a repair source. *)
exception No_healthy_replica of int

(** [replica_path base ~shard ~replica] — replica 0 is [base.shardK]
    (the pre-replication path, so version-1 stores open unchanged),
    replica [j >= 1] is [base.shardK.rJ]. *)
val replica_path : string -> shard:int -> replica:int -> string

(** [build ~replicas ~shard base slice] writes the slice once per replica
    and returns the created store paths (for cleanup on a failed sharded
    build). *)
val build :
  ?page_model:Page_model.t ->
  replicas:int ->
  shard:int ->
  string ->
  Itemset.t array ->
  string list

(** [open_group ~replicas ~shard base] opens all replicas and builds the
    failover view.  [health] seeds per-replica states from the manifest
    (default all healthy); an unopenable replica is quarantined instead of
    failing the shard, and a healthy replica lagging the most advanced one
    (generation or size — a crash between replica seals) is marked stale.
    Raises {!No_healthy_replica} if nothing is left to serve. *)
val open_group :
  ?cache_pages:int ->
  ?group_commit:int ->
  ?health:Manifest.health array ->
  replicas:int ->
  shard:int ->
  string ->
  t

val close : t -> unit

(** The failover view over this group — plug it into
    {!Cfq_txdb.Tx_db.of_shards} exactly like a single store's [db].
    Replaced by {!seal} and {!repair}; re-fetch afterwards. *)
val db : t -> Tx_db.t

(** The group's {!Io_stats} sink.  Pass it to [Tx_db.of_shards ~io] so
    distributed counting and failover accounting share one sink per
    shard; {!Io_stats.failovers} counts reads a sibling had to serve. *)
val io : t -> Io_stats.t

val replica_count : t -> int
val quorum : int -> int
val preferred : t -> int
val failovers : t -> int
val health : t -> replica:int -> Manifest.health
val set_health : t -> replica:int -> Manifest.health -> unit
val read_errors : t -> replica:int -> int
val write_errors : t -> replica:int -> int

(** The physical store behind replica [j] ([None] = unopenable). *)
val store : t -> replica:int -> Store.t option

(** First store in healthy preference order (the one whose geometry the
    failover view exposes).  Raises {!No_healthy_replica}. *)
val preferred_store : t -> Store.t

(** {2 Mirrored ingestion}

    Each operation applies to every healthy replica; a failing replica is
    marked stale and stops receiving writes.  If fewer than
    [quorum (replica_count t)] replicas accept, the first failure is
    re-raised. *)

val append_tx : t -> Itemset.t -> unit

val flush : t -> unit

(** Seal every healthy replica and rebuild the failover view (injectors
    are re-installed on the new handles).  Returns the number of
    transactions sealed in. *)
val seal : t -> int

(** {2 Fault injection (tests, chaos bench)} *)

(** Install an injector on one replica's current db handle; survives
    {!seal} and {!repair} (re-installed on the new handle). *)
val set_fault : t -> replica:int -> Fault.t option -> unit

val fault : t -> replica:int -> Fault.t option

(** Make mirrored writes to replica [j] fail with [Transient_io]. *)
val set_write_fault : t -> replica:int -> bool -> unit

(** {2 Scrub / repair} *)

(** [verify_replica t ~replica] runs {!Store.verify_pages} on that
    replica (an unopenable replica reports a single [Bad_crc] fault). *)
val verify_replica :
  ?throttle:(page:int -> unit) -> t -> replica:int -> Store.page_fault list

(** Anti-entropy: seal the most advanced healthy sibling, rewrite this
    replica's segment page-for-page from the sibling's transactions at the
    sibling's generation, reset its WAL, reopen and re-admit it healthy.
    [Error reason] quarantines the replica. *)
val repair : t -> replica:int -> (unit, string) result

(** The {!Manifest.shard_entry} this group currently warrants. *)
val entry : t -> Manifest.shard_entry
