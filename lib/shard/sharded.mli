(** A partitioned transaction store: N {!Cfq_store.Store}s under one
    {!Manifest}, surfaced as a single sharded {!Cfq_txdb.Tx_db.t}
    composite over which [Counting.count_shared] runs count-distribution
    mining (each shard counts its slice, the coordinator sums).

    Layout on disk for a sharded store at [PATH]:
    [PATH] is the manifest; shard [k] is a complete ordinary store at
    [PATH.shard<k>] (segment + WAL), so every shard enjoys the store's own
    recovery, buffer pool and fault machinery unchanged.

    With [replicas = R > 1] each shard is a {!Replica} group: R physical
    stores with byte-identical page geometry (replica 0 at the legacy
    [PATH.shard<k>], siblings at [PATH.shard<k>.r<j>]).  Reads fail over
    between replicas on typed faults without changing answers, ccc or
    logical page charges; writes mirror under a majority quorum; the
    {!Scrub} pass verifies, quarantines and repairs replicas.

    {2 Partitioning}

    [Tid_range] (the default) splits the batch into contiguous slices
    whose boundaries sit on page boundaries of the {e global} greedy
    packing.  The packer restarts cleanly at a page boundary, so each
    shard's local packing reproduces exactly its slice of the global page
    geometry — the composite's pages, [page_of], checksums and logical
    I/O charges are byte-identical to the unsharded store over the same
    batch.  [Hash] scatters transactions by a stable mix of their index;
    answers (supports are additive) are identical, but tid order and page
    geometry differ from the unsharded store. *)

open Cfq_itembase
open Cfq_txdb

type t

(** [shard_path path k] is the store path of shard [k]. *)
val shard_path : string -> int -> string

(** {2 Partitioner} *)

(** [tid_ranges ?page_model sizes ~shards] splits [0, Array.length sizes)
    into [shards] contiguous (possibly empty) [(lo, hi)] ranges, in order,
    each boundary snapped to a page-run start of the global packing.
    Balanced by page runs, like [Tx_db.scan_chunks]. *)
val tid_ranges :
  ?page_model:Page_model.t -> int array -> shards:int -> (int * int) array

(** [slices ?page_model ~partition sets ~shards] materialises the
    per-shard transaction slices in shard order. *)
val slices :
  ?page_model:Page_model.t ->
  partition:Manifest.partition ->
  Itemset.t array ->
  shards:int ->
  Itemset.t array array

(** {2 Building and opening} *)

(** [build ?page_model ?partition ?on_shard_built ~shards path sets]
    writes the shard stores and then the manifest (atomic temp+rename
    each).  [on_shard_built k] runs after shard [k]'s store is durable —
    the deterministic fault-injection seam for crash tests.  On {e any}
    failure every shard file created so far (segment and WAL) is removed
    along with the manifest temp, so a failed build leaves no orphans. *)
val build :
  ?page_model:Page_model.t ->
  ?partition:Manifest.partition ->
  ?replicas:int ->
  ?on_shard_built:(int -> unit) ->
  shards:int ->
  string ->
  Itemset.t array ->
  unit

(** [build_from_segment ?partition ~shards ~src path] partitions an
    existing plain store's segment at [src] into a sharded store at
    [path] (same page model). *)
val build_from_segment :
  ?partition:Manifest.partition ->
  ?replicas:int ->
  shards:int ->
  src:string ->
  string ->
  unit

(** [open_ ?cache_pages ?group_commit path] opens every shard (running
    each store's recovery) and attaches the composite.  [cache_pages]
    bounds {e each} shard's buffer pool.  If the manifest disagrees with
    the live shards — a crash between shard seals and the manifest
    rewrite, or recovery that folded WAL records — the manifest is
    rebuilt from the shards (one raw scan) and rewritten with a bumped
    generation before the composite is attached. *)
val open_ : ?cache_pages:int -> ?group_commit:int -> string -> t

val close : t -> unit

(** The composite database: global tids in shard order, sharded so
    [Counting.count_shared] distributes passes ({!Cfq_txdb.Tx_db.shards}
    is [Some _]).  Re-fetch after {!seal}. *)
val db : t -> Tx_db.t

(** The preferred replica store of each shard (single-replica stores:
    the shard store itself). *)
val stores : t -> Cfq_store.Store.t array

(** The replica group behind each shard. *)
val groups : t -> Replica.t array

val manifest : t -> Manifest.t

(** {2 Ingestion} *)

(** [append_tx t items] appends to one shard's WAL: the last shard under
    [Tid_range] (preserving global tid order), round-robin under [Hash].
    Visible in {!db} after {!seal}. *)
val append_tx : t -> Itemset.t -> unit

(** Flush every shard's WAL group to disk. *)
val flush : t -> unit

(** Seal every shard with pending WAL records, rewrite the manifest
    (bumped generation, recomputed composite checksums) and re-attach the
    composite.  Returns the total transactions sealed in. *)
val seal : t -> int

(** What the most recent successful {!seal} on this handle folded in.
    [si_delta_ranges] are the newly sealed transactions as inclusive
    [(lo, hi)] tid ranges of the {e post-seal composite} {!db} — one
    trailing range under [Tid_range] routing (appends go to the last
    shard), up to one tail range per shard under [Hash].  Live cache
    maintenance ({!Cfq_live}) reads these to scan only the delta. *)
type seal_info = {
  si_generation : int;  (** manifest generation after the seal *)
  si_base_txs : int;  (** composite size before the seal *)
  si_sealed_txs : int;
  si_delta_ranges : (int * int) list;
}

val last_seal : t -> seal_info option

(** {2 Introspection and fault injection} *)

val path : t -> string
val shard_count : t -> int

(** Physical replicas per shard, from the manifest ([1] = unreplicated). *)
val replicas : t -> int

val size : t -> int
val pages : t -> int
val universe_size : t -> int

(** Total replica failovers across all shards since open. *)
val failovers : t -> int

(** Rewrite the manifest from the live groups (bumped generation,
    recomputed composite checksums) and re-attach the composite — how
    {!Scrub} persists health transitions.  {!seal} calls this when it
    sealed anything. *)
val sync_manifest : t -> unit

(** [set_shard_fault t ~shard f] installs (or clears) a fault injector on
    one shard's database: that shard's slice of every composite scan runs
    the full page/checksum walk against it, and raised error pages are in
    composite coordinates so the service can attribute them. *)
val set_shard_fault : t -> shard:int -> Fault.t option -> unit

(** [set_replica_fault t ~shard ~replica f] installs (or clears) an
    injector on one {e replica}'s database.  Unlike a shard fault, the
    failover layer sits above it: reads that hit the fault retry on a
    healthy sibling invisibly, so answers stay exact while
    {!failovers} counts the rescues. *)
val set_replica_fault : t -> shard:int -> replica:int -> Fault.t option -> unit

(** Make mirrored writes to one replica fail (marking it stale). *)
val set_replica_write_fault : t -> shard:int -> replica:int -> bool -> unit

(** [remove_files path] best-effort removes a sharded store's files
    (manifest, temp, shard segments and WALs) — test cleanup. *)
val remove_files : string -> unit

(** {2 In-memory sharded composites}

    [mem_db ?page_model ?partition ~shards sets] is the storeless twin:
    the same partitioning over in-memory [Tx_db.create] shards, composed
    with {!Cfq_txdb.Tx_db.of_shards}.  Under [Tid_range] the composite is
    I/O-identical to [Tx_db.create sets].  This is the [CFQ_TEST_SHARDS]
    test route. *)
val mem_db :
  ?page_model:Page_model.t ->
  ?partition:Manifest.partition ->
  shards:int ->
  Itemset.t array ->
  Tx_db.t
