module Store = Cfq_store.Store

(* The background scrubber: walk every replica of every shard under an
   I/O throttle, verify per-page CRCs and logical checksums fresh from
   disk, quarantine replicas with bad pages, and run anti-entropy repair
   — rebuild quarantined or stale replicas from a healthy sibling and
   re-admit them at the current generation.  Health transitions are
   persisted through [Sharded.sync_manifest]. *)

type outcome =
  | Clean  (** verified, no faults *)
  | Faulty of Store.page_fault list  (** verification failed; quarantined *)
  | Repaired  (** was stale/quarantined; rebuilt and verified clean *)
  | Repair_failed of string  (** rebuild failed; stays quarantined *)
  | Skipped  (** repair disabled; left in its unhealthy state *)

type replica_report = {
  rr_shard : int;
  rr_replica : int;
  rr_health : Manifest.health;  (** after the scrub *)
  rr_outcome : outcome;
}

type report = {
  scrubbed_pages : int;
  faults_found : int;
  repairs : int;
  repair_failures : int;
  rows : replica_report list;  (** shard-major, replica-minor order *)
}

let outcome_name = function
  | Clean -> "clean"
  | Faulty fs ->
      Printf.sprintf "faulty(%s)"
        (String.concat ","
           (List.map
              (fun f ->
                Printf.sprintf "%d:%s" f.Store.pf_page
                  (Store.page_fault_kind_name f.Store.pf_kind))
              fs))
  | Repaired -> "repaired"
  | Repair_failed r -> Printf.sprintf "repair-failed(%s)" r
  | Skipped -> "skipped"

(* sleep [throttle_sleep] every [throttle_pages] page reads: a crude I/O
   throttle so a scrub never saturates the store's disk *)
let make_throttle ~throttle_pages ~throttle_sleep =
  let read = ref 0 in
  fun ~page:_ ->
    incr read;
    if throttle_pages > 0 && !read mod throttle_pages = 0 && throttle_sleep > 0.
    then Unix.sleepf throttle_sleep

let run ?(repair = true) ?(throttle_pages = 0) ?(throttle_sleep = 0.) t =
  let throttle = make_throttle ~throttle_pages ~throttle_sleep in
  let scrubbed = ref 0 in
  let throttle ~page =
    incr scrubbed;
    throttle ~page
  in
  let groups = Sharded.groups t in
  let faults_found = ref 0 in
  let rows = ref [] in
  (* phase 1: verify every non-quarantined replica fresh from disk *)
  Array.iteri
    (fun k g ->
      for j = 0 to Replica.replica_count g - 1 do
        match Replica.health g ~replica:j with
        | Manifest.Quarantined -> () (* already condemned; repair below *)
        | Manifest.Stale -> () (* lagging, not rotten; repair below *)
        | Manifest.Healthy ->
            let faults = Replica.verify_replica ~throttle g ~replica:j in
            if faults <> [] then begin
              faults_found := !faults_found + List.length faults;
              Replica.set_health g ~replica:j Manifest.Quarantined;
              rows :=
                {
                  rr_shard = k;
                  rr_replica = j;
                  rr_health = Manifest.Quarantined;
                  rr_outcome = Faulty faults;
                }
                :: !rows
            end
            else
              rows :=
                {
                  rr_shard = k;
                  rr_replica = j;
                  rr_health = Manifest.Healthy;
                  rr_outcome = Clean;
                }
                :: !rows
      done)
    groups;
  (* phase 2: anti-entropy.  Seal first so repair copies from a sealed
     boundary (replica segments rewritten mid-WAL would diverge), then
     rebuild every stale or quarantined replica from a healthy sibling
     and re-verify it before re-admission. *)
  let repairs = ref 0 and repair_failures = ref 0 in
  if repair then begin
    ignore (Sharded.seal t : int);
    Array.iteri
      (fun k g ->
        for j = 0 to Replica.replica_count g - 1 do
          match Replica.health g ~replica:j with
          | Manifest.Healthy -> ()
          | Manifest.Stale | Manifest.Quarantined -> (
              match Replica.repair g ~replica:j with
              | Ok () ->
                  let faults = Replica.verify_replica ~throttle g ~replica:j in
                  if faults = [] then begin
                    incr repairs;
                    rows :=
                      {
                        rr_shard = k;
                        rr_replica = j;
                        rr_health = Manifest.Healthy;
                        rr_outcome = Repaired;
                      }
                      :: !rows
                  end
                  else begin
                    (* rebuilt bytes still bad: the medium itself is
                       suspect — condemn the replica *)
                    incr repair_failures;
                    Replica.set_health g ~replica:j Manifest.Quarantined;
                    rows :=
                      {
                        rr_shard = k;
                        rr_replica = j;
                        rr_health = Manifest.Quarantined;
                        rr_outcome = Repair_failed "re-verify failed";
                      }
                      :: !rows
                  end
              | Error reason ->
                  incr repair_failures;
                  rows :=
                    {
                      rr_shard = k;
                      rr_replica = j;
                      rr_health = Manifest.Quarantined;
                      rr_outcome = Repair_failed reason;
                    }
                    :: !rows)
        done)
      groups
  end
  else
    Array.iteri
      (fun k g ->
        for j = 0 to Replica.replica_count g - 1 do
          match Replica.health g ~replica:j with
          | Manifest.Healthy -> ()
          | h ->
              rows :=
                { rr_shard = k; rr_replica = j; rr_health = h; rr_outcome = Skipped }
                :: !rows
        done)
      groups;
  (* persist health transitions (and pick up the sealed generation) *)
  Sharded.sync_manifest t;
  {
    scrubbed_pages = !scrubbed;
    faults_found = !faults_found;
    repairs = !repairs;
    repair_failures = !repair_failures;
    rows = List.rev !rows;
  }

(* ------------------------------------------------------------------ *)
(* Health report (shell/CLI `verify`)                                  *)
(* ------------------------------------------------------------------ *)

type health_row = {
  hr_shard : int;
  hr_replica : int;
  hr_health : Manifest.health;
  hr_generation : int;
  hr_faults : Store.page_fault list;
}

(* read-only: verify every replica in place (no quarantine, no repair,
   no manifest rewrite) and report per-replica health *)
let health_report ?throttle t =
  let rows = ref [] in
  Array.iteri
    (fun k g ->
      for j = 0 to Replica.replica_count g - 1 do
        let faults =
          match Replica.health g ~replica:j with
          | Manifest.Quarantined when Replica.store g ~replica:j = None ->
              [ { Store.pf_page = 0; pf_kind = Store.Bad_crc } ]
          | _ -> Replica.verify_replica ?throttle g ~replica:j
        in
        let gen =
          match Replica.store g ~replica:j with
          | Some st -> Store.generation st
          | None -> 0
        in
        rows :=
          {
            hr_shard = k;
            hr_replica = j;
            hr_health = Replica.health g ~replica:j;
            hr_generation = gen;
            hr_faults = faults;
          }
          :: !rows
      done)
    (Sharded.groups t);
  List.rev !rows

let healthy_report rows =
  List.for_all
    (fun r -> r.hr_health = Manifest.Healthy && r.hr_faults = [])
    rows
