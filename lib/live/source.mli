(** A unified ingestion handle over every backend the service can sit on:
    the in-memory array, a plain {!Cfq_store.Store}, or a
    sharded/replicated {!Cfq_shard.Sharded} store.

    The source owns the append → flush → seal lifecycle and mints a
    monotone {e epoch} at each successful seal — the generation tag the
    service stamps on every cache entry ({!Cfq_service.Service}).  After a
    seal, {!db} is the new (larger) database and {!seal}'s returned
    {!Delta.t} pins down exactly the appended transactions, so a
    maintenance pass can promote cached collections by counting only the
    delta.

    The [Mem] variant rebuilds its database from the accumulated sets on
    seal (optionally through a custom [rebuild], e.g.
    [Sharded.mem_db ~shards] for the storeless sharded test matrix), which
    lets the maintenance-equals-cold-remine property run identically on
    all five CI backend matrices. *)

open Cfq_itembase
open Cfq_txdb

type t

(** [of_mem ?rebuild sets] — storeless source; [rebuild] constructs the
    database view from the full set array (default [Tx_db.create]). *)
val of_mem : ?rebuild:(Itemset.t array -> Tx_db.t) -> Itemset.t array -> t

val of_store : Cfq_store.Store.t -> t
val of_sharded : Cfq_shard.Sharded.t -> t

(** The current sealed database view.  Replaced by {!seal}; a handle
    fetched before a seal keeps serving the pre-seal snapshot (the store
    keeps superseded segments open), which is what lets maintenance count
    seeded candidates against the {e old} database. *)
val db : t -> Tx_db.t

(** Epoch of the current database: 0 at creation, +1 per successful seal. *)
val epoch : t -> int

(** Transactions appended through this handle since the last seal. *)
val pending : t -> int

val size : t -> int
val backend_name : t -> string
val append_tx : t -> Itemset.t -> unit
val flush : t -> unit

(** [seal t io] flushes and seals the pending appends.  [None] when
    nothing was pending; otherwise the new epoch's {!Delta.t}, whose
    extraction scan (delta pages only) is charged to [io]. *)
val seal : t -> Io_stats.t -> Delta.t option
