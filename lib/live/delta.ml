open Cfq_txdb

type t = {
  epoch : int;
  base_txs : int;
  delta_txs : int;
  ranges : (int * int) list;
  delta_pages : int;
  twin : Tx_db.t;
}

let extract ~epoch ~base_txs ~ranges db io =
  let txs = ref [] and count = ref 0 in
  List.iter
    (fun (lo, hi) ->
      Tx_db.iter_range_checked db ~lo ~hi (fun tx ->
          incr count;
          txs := tx.Transaction.items :: !txs))
    ranges;
  let pages =
    List.fold_left
      (fun acc (lo, hi) ->
        acc + (Tx_db.page_of_tx db hi - Tx_db.page_of_tx db lo + 1))
      0 ranges
  in
  Io_stats.record_scan io ~pages ~tuples:!count;
  let arr = Array.of_list (List.rev !txs) in
  {
    epoch;
    base_txs;
    delta_txs = Array.length arr;
    ranges;
    delta_pages = pages;
    twin = Tx_db.create ~page_model:(Tx_db.page_model db) arr;
  }

let union_txs t = t.base_txs + t.delta_txs
