(** The delta of one seal: which transactions a maintenance pass must
    count, and an in-memory twin of exactly those transactions.

    A seal folds the WAL's appended records into the sealed database; the
    delta descriptor pins them down as tid ranges of the {e post-seal}
    database (the segment packer is prefix-stable, so pre-seal tids keep
    their pages and the new records occupy the tail — one range per shard
    that received appends).  {!extract} reads just those ranges once —
    fault-validated, charged to the maintenance {!Cfq_txdb.Io_stats} at
    the delta's page span, not the whole database — and materialises them
    as a resident [Tx_db] twin so the per-entry FUP passes
    ({!Maintain.promote}) rescan the delta for free page-model-identical
    charges instead of re-touching the store. *)

open Cfq_txdb

type t = {
  epoch : int;  (** the epoch this seal minted *)
  base_txs : int;  (** database size before the seal *)
  delta_txs : int;
  ranges : (int * int) list;
      (** inclusive tid ranges of the delta in the post-seal database *)
  delta_pages : int;  (** pages those ranges span — the extraction charge *)
  twin : Tx_db.t;  (** resident copy of the delta transactions *)
}

(** [extract ~epoch ~base_txs ~ranges db io] reads [ranges] out of the
    post-seal [db] (fault-checked, like a shard's slice of a composite
    scan) and charges one scan of [delta_pages] pages to [io]. *)
val extract :
  epoch:int -> base_txs:int -> ranges:(int * int) list -> Tx_db.t -> Io_stats.t -> t

val union_txs : t -> int
