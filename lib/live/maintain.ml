open Cfq_mining

type stats = {
  recounted : int;
  old_scans : int;
}

(* The collection was mined at absolute threshold [m] over [base] rows, so
   it answers every fraction f with ceil(f·base) >= m, i.e. f > (m-1)/base.
   For those f over the union, ceil(f·union) > (m-1)·union/base, hence
   >= floor((m-1)·union/base) + 1 — promoting to that threshold keeps every
   previously answerable fraction answerable.  It is >= m (union >= base),
   so the FUP seeding threshold stays positive. *)
let promoted_minsup ~old_minsup ~base_txs ~union_txs =
  if base_txs = 0 then max 1 old_minsup
  else max old_minsup (((old_minsup - 1) * union_txs / base_txs) + 1)

let promote ?stats:lstats ~old_db ~(delta : Delta.t) io ~old_minsup ~max_level
    ~universe_size freq =
  let m' =
    promoted_minsup ~old_minsup ~base_txs:delta.Delta.base_txs
      ~union_txs:(Delta.union_txs delta)
  in
  let outcome =
    Incremental.update_abs ?max_level ?stats:lstats ~old_db ~old_frequent:freq
      ~delta:delta.Delta.twin io ~old_minsup ~union_minsup:m' ~universe_size ()
  in
  ( outcome.Incremental.frequent,
    m',
    {
      recounted = outcome.Incremental.counted_against_old;
      old_scans = outcome.Incremental.old_scans;
    } )
