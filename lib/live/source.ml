open Cfq_itembase
open Cfq_txdb

type backend =
  | Mem of {
      mutable mem_sets : Itemset.t array;
      mutable mem_db : Tx_db.t;
      mutable mem_pending : Itemset.t list;  (* newest first *)
      mem_rebuild : Itemset.t array -> Tx_db.t;
    }
  | Store of Cfq_store.Store.t
  | Sharded of Cfq_shard.Sharded.t

type t = {
  backend : backend;
  mutable epoch : int;
  mutable pending : int;
}

let of_mem ?rebuild sets =
  let rebuild =
    match rebuild with Some f -> f | None -> fun sets -> Tx_db.create sets
  in
  {
    backend =
      Mem
        { mem_sets = sets; mem_db = rebuild sets; mem_pending = []; mem_rebuild = rebuild };
    epoch = 0;
    pending = 0;
  }

let of_store s = { backend = Store s; epoch = 0; pending = 0 }
let of_sharded s = { backend = Sharded s; epoch = 0; pending = 0 }

let db t =
  match t.backend with
  | Mem m -> m.mem_db
  | Store s -> Cfq_store.Store.db s
  | Sharded s -> Cfq_shard.Sharded.db s

let epoch t = t.epoch
let pending t = t.pending
let size t = Tx_db.size (db t)

let backend_name t =
  match t.backend with Mem _ -> "mem" | Store _ -> "store" | Sharded _ -> "sharded"

let append_tx t items =
  (match t.backend with
  | Mem m -> m.mem_pending <- items :: m.mem_pending
  | Store s -> Cfq_store.Store.append_tx s items
  | Sharded s -> Cfq_shard.Sharded.append_tx s items);
  t.pending <- t.pending + 1

let flush t =
  match t.backend with
  | Mem _ -> ()
  | Store s -> Cfq_store.Store.flush s
  | Sharded s -> Cfq_shard.Sharded.flush s

let seal t io =
  let sealed, ranges =
    match t.backend with
    | Mem m ->
        let k = List.length m.mem_pending in
        if k = 0 then (0, [])
        else begin
          let base = Array.length m.mem_sets in
          m.mem_sets <-
            Array.append m.mem_sets (Array.of_list (List.rev m.mem_pending));
          m.mem_pending <- [];
          m.mem_db <- m.mem_rebuild m.mem_sets;
          (k, [ (base, base + k - 1) ])
        end
    | Store s -> (
        let k = Cfq_store.Store.seal s in
        if k = 0 then (0, [])
        else
          match Cfq_store.Store.last_seal s with
          | Some si ->
              ( k,
                [
                  ( si.Cfq_store.Store.si_base_txs,
                    si.Cfq_store.Store.si_base_txs
                    + si.Cfq_store.Store.si_sealed_txs
                    - 1 );
                ] )
          | None -> (k, []))
    | Sharded s -> (
        let k = Cfq_shard.Sharded.seal s in
        if k = 0 then (0, [])
        else
          match Cfq_shard.Sharded.last_seal s with
          | Some si -> (k, si.Cfq_shard.Sharded.si_delta_ranges)
          | None -> (k, []))
  in
  if sealed = 0 || ranges = [] then None
  else begin
    t.pending <- 0;
    t.epoch <- t.epoch + 1;
    let ndb = db t in
    let base = Tx_db.size ndb - sealed in
    Some (Delta.extract ~epoch:t.epoch ~base_txs:base ~ranges ndb io)
  end
