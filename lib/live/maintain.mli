(** Promote one cached frequent collection across a seal's delta.

    The FUP pass ({!Cfq_mining.Incremental.update_abs}): every set of the
    old collection is delta-counted against the resident twin (its union
    support can only move by the delta); candidates that were not in the
    old collection are seeded by mining the delta at the slack threshold
    and counted against the old database only when that seeding found any
    — at most one old-database scan per entry, usually zero. *)

open Cfq_txdb
open Cfq_mining

type stats = {
  recounted : int;  (** candidates counted against the old database *)
  old_scans : int;  (** old-database scans this promotion cost (0 or 1) *)
}

(** [promoted_minsup ~old_minsup ~base_txs ~union_txs] is the lowest
    integer threshold the promoted collection must be exact at so that it
    still answers {e every} relative support fraction the old entry could
    answer: [floor((old_minsup-1)·union/base) + 1], clamped to at least
    [old_minsup]. *)
val promoted_minsup : old_minsup:int -> base_txs:int -> union_txs:int -> int

(** [promote ~old_db ~delta io ~old_minsup ~max_level ~universe_size freq]
    is [(freq', minsup', stats)]: the collection promoted to the union
    database, exact at the new absolute threshold [minsup'] (for every set
    within [max_level] satisfying whatever constraints [freq] was mined
    under — extra unconstrained sets seeded from the delta are harmless,
    the service re-filters on serve).  All scans are charged to [io]:
    delta passes against the resident twin, plus at most one [old_db]
    scan.  [?stats] forwards to {!Cfq_mining.Incremental.update_abs}'s
    per-level rows, so a seal's maintenance cost is observable at
    {!Cfq_mining.Level_stats} granularity. *)
val promote :
  ?stats:Level_stats.t ->
  old_db:Tx_db.t ->
  delta:Delta.t ->
  Io_stats.t ->
  old_minsup:int ->
  max_level:int option ->
  universe_size:int ->
  Frequent.t ->
  Frequent.t * int * stats
