(** I/O accounting for the transaction store.

    Every full scan of the database records the number of pages it touched;
    mining strategies that share a scan between the [S] and [T] lattices
    (dovetailing, Section 5.2 of the paper) therefore pay for it once.

    The disk-backed store ([Cfq_store]) additionally records its buffer
    pool's physical page traffic here: {!pool_hits} / {!pool_misses} /
    {!pool_evictions}.  For the in-memory backend these stay zero, so
    logical page charges remain comparable across backends while the real
    read counts are visible for the disk backend. *)

type t

val create : unit -> t
val reset : t -> unit

val record_scan : t -> pages:int -> tuples:int -> unit

(** Buffer-pool traffic (disk backend only). *)

val record_pool_hit : t -> unit
val record_pool_miss : t -> unit
val record_pool_eviction : t -> unit

(** Replica failovers: a read that a preferred replica failed and a
    healthy sibling served (replicated sharded stores only). *)
val record_failover : t -> unit

val scans : t -> int
val pages_read : t -> int
val tuples_read : t -> int
val pool_hits : t -> int

(** Physical page reads from disk. *)
val pool_misses : t -> int

val pool_evictions : t -> int
val failovers : t -> int

(** [add dst src] accumulates [src] into [dst]. *)
val add : t -> t -> unit

val pp : Format.formatter -> t -> unit
