(** Deterministic fault injection for the transaction store.

    A [Fault.t] is installed on a {!Tx_db.t} ({!Tx_db.set_faults}) and is
    consulted by every scan and point read.  All randomness comes from one
    SplitMix64 stream seeded by [config.seed] (the same generator
    [Cfq_quest.Splitmix] uses for database generation), so a fixed seed and
    a fixed operation order replay the exact same fault sequence — the
    chaos benchmark and CI rely on this.

    Failure modes, all independently tunable:

    {ul
    {- {e transient page-read errors} — each page read fails with
       probability [transient_p], raising
       [Cfq_error.Transient_io].  [fail_first] additionally fails the
       first [n] page reads unconditionally (deterministic unit tests);}
    {- {e stuck-scan latency spikes} — each scan sleeps [spike_seconds]
       with probability [spike_p];}
    {- {e bounded page corruption} — each page read tampers the page with
       probability [corrupt_p], but never more than [max_corrupt]
       {e distinct} pages ever.  Tampering is simulated at the read layer
       (the store's data is untouched): {!Tx_db} verifies its per-page
       checksums against the tampered view and raises
       [Cfq_error.Corrupt_page];}
    {- {e injected query crashes} — each scan raises
       [Cfq_error.Query_crash] with probability [crash_p], modelling a
       query dying mid-flight.}}

    Thread safety: all state sits behind one mutex, so concurrent worker
    domains may scan a faulted store; determinism then additionally
    requires a deterministic operation order (one worker, sequential
    submission). *)

type config = {
  seed : int64;
  transient_p : float;  (** per page read, in [0, 1] *)
  fail_first : int;  (** first [n] page reads fail unconditionally *)
  spike_p : float;  (** per scan *)
  spike_seconds : float;
  corrupt_p : float;  (** per page read *)
  max_corrupt : int;  (** distinct pages ever tampered *)
  crash_p : float;  (** per scan *)
}

(** All probabilities 0, [fail_first] 0, [max_corrupt] 1,
    [spike_seconds] 1ms: a no-op injector to build configs from. *)
val default_config : config

(** Some failure mode is actually enabled. *)
val is_active : config -> bool

type t

val create : config -> t
val config : t -> config

(** Injection counters, for reports and assertions. *)
type stats = {
  transient : int;  (** transient page-read errors raised *)
  spikes : int;  (** latency spikes slept *)
  crashes : int;  (** query crashes raised *)
  tampered : int;  (** distinct pages tampered (≤ [max_corrupt]) *)
  checksum_failures : int;  (** corrupt reads detected by {!Tx_db} *)
}

val stats : t -> stats

(** Hooks called by {!Tx_db}. *)

(** Start of a full scan: may sleep (spike) or raise
    [Cfq_error.Query_crash]. *)
val on_scan : t -> unit

(** A page read during a scan: may raise [Cfq_error.Transient_io] and may
    (boundedly) mark the page tampered. *)
val on_page : t -> page:int -> unit

(** A point read ({!Tx_db.get}): may raise [Cfq_error.Transient_io] or,
    if [page] is already tampered, [Cfq_error.Corrupt_page].  Draws no
    corruption decisions of its own. *)
val on_get : t -> page:int -> unit

(** The page's stored checksum should read as tampered. *)
val tampered : t -> page:int -> bool

(** {!Tx_db} reports a detected checksum mismatch. *)
val note_checksum_failure : t -> unit
