(** The typed error taxonomy of the serving stack.

    Every fault the system can surface — from the transaction store up
    through query execution to admission control — is one of these
    constructors, so layers above can react per class (retry a
    [Transient_io], never retry a [Corrupt_page], shed on [Overload])
    instead of pattern-matching on [Failure] strings.

    The store and the execution engine signal faults by raising {!Error};
    the service layer catches it and converts to result types at the API
    boundary. *)

type t =
  | Transient_io of { page : int }
      (** A page read failed but retrying may succeed (injected or real
          I/O hiccup).  The only retryable class. *)
  | Corrupt_page of { page : int }
      (** A page's checksum did not match its contents.  Permanent for
          the life of the corruption; retrying cannot help. *)
  | Deadline  (** The query missed its wall-clock deadline. *)
  | Overload
      (** Admission refused: the pool is shut down or the circuit
          breaker is shedding load. *)
  | Query_crash of string
      (** The query raised an unexpected exception; the payload is the
          printed exception. *)

exception Error of t

(** [raise_error e] raises [Error e]. *)
val raise_error : t -> 'a

(** [true] only for {!Transient_io}: the caller may retry. *)
val is_transient : t -> bool

val to_string : t -> string
val pp : Format.formatter -> t -> unit
