open Cfq_itembase

(* ------------------------------------------------------------------ *)
(* per-page checksums: a cheap rolling hash over (tid, items), fixed at
   load time and re-derivable from the resident data, so a scan can detect
   a page whose stored checksum no longer matches what it reads.  Exposed
   so an external backend (Cfq_store) can persist checksums this module's
   fault machinery will accept. *)

module Checksum = struct
  let seed = 0x2545F491

  let add_tx h (tx : Transaction.t) =
    let h = ref ((h * 31) + tx.Transaction.tid + 1) in
    Itemset.iter (fun i -> h := (!h * 131) + i + 1) tx.Transaction.items;
    !h land max_int
end

(* The tuple source: either the resident array, or an external paged
   backend (closures provided by Cfq_store reading through its buffer
   pool).  Everything page-shaped — page_of, page count, checksums, the
   fault walk, chunking — lives in [t] itself, so both backends share one
   and the same scan/fault/verify machinery. *)
type ext = {
  ext_iter : lo:int -> hi:int -> (Transaction.t -> unit) -> unit;
  ext_get : int -> Transaction.t;
  ext_avg_len : float;
}

type data =
  | Mem of Transaction.t array
  | Ext of ext

type t = {
  data : data;
  n : int;
  page_model : Page_model.t;
  pages : int;
  page_of : int array;  (* tx index -> (first) page holding it *)
  checksums : int array;  (* per page, over the resident transactions *)
  mutable faults : Fault.t option;
  (* an external backend's own fault probe: a replicated store reports
     whether any of its replicas carries an injector, so callers that pin
     faulted scans to a deterministic order (count_shared) see turbulence
     the composite's [faults] field cannot *)
  mutable backend_faults : unit -> bool;
  shard_meta : shard_meta option;
  mutable run_starts : int array option;  (* memoised scan_chunks geometry *)
}

(* A sharded composite: the sub-databases in tid order plus the prefix-sum
   offset tables translating between global and shard-local coordinates.
   [sh_io] carries one stats sink per shard so distributed counting can
   attribute its logical I/O per shard. *)
and shard_meta = {
  subs : t array;
  tx_base : int array;  (* length n_shards + 1; tx_base.(k) = first global tid of shard k *)
  pg_base : int array;  (* length n_shards + 1; pg_base.(k) = first global page of shard k *)
  sh_io : Io_stats.t array;
}

let compute_checksums ~pages ~page_of txs =
  let sums = Array.make (max 0 pages) Checksum.seed in
  Array.iteri
    (fun i tx ->
      let p = page_of.(i) in
      sums.(p) <- Checksum.add_tx sums.(p) tx)
    txs;
  sums

let create ?(page_model = Page_model.default) itemsets =
  let txs = Array.mapi (fun tid items -> Transaction.make ~tid ~items) itemsets in
  let sizes = Array.map Itemset.cardinal itemsets in
  let page_of, pages = Page_model.assign page_model sizes in
  {
    data = Mem txs;
    n = Array.length txs;
    page_model;
    pages;
    page_of;
    checksums = compute_checksums ~pages ~page_of txs;
    faults = None;
    backend_faults = (fun () -> false);
    shard_meta = None;
    run_starts = None;
  }

let of_backend ?(page_model = Page_model.default) ~pages ~page_of ~checksums
    ~avg_tx_len ~iter ~get () =
  if Array.length checksums <> pages then
    invalid_arg "Tx_db.of_backend: one checksum per page required";
  {
    data = Ext { ext_iter = iter; ext_get = get; ext_avg_len = avg_tx_len };
    n = Array.length page_of;
    page_model;
    pages;
    page_of;
    checksums;
    faults = None;
    backend_faults = (fun () -> false);
    shard_meta = None;
    run_starts = None;
  }

let size t = t.n
let pages t = t.pages
let page_model t = t.page_model

let set_faults t faults = t.faults <- faults
let faults t = t.faults
let set_backend_faults t probe = t.backend_faults <- probe
let backend_faulted t = t.faults <> None || t.backend_faults ()
let page_of_tx t tid = t.page_of.(tid)

(* shared, not copied: callers treat these as read-only *)
let page_table t = t.page_of
let checksum_table t = t.checksums

let get t tid =
  (match t.faults with
  | None -> ()
  | Some fl -> Fault.on_get fl ~page:t.page_of.(tid));
  match t.data with Mem txs -> txs.(tid) | Ext e -> e.ext_get tid

(* deliver transactions [lo..hi] from whichever backend holds them *)
let iter_extent t ~lo ~hi f =
  match t.data with
  | Mem txs ->
      for k = lo to hi do
        f txs.(k)
      done
  | Ext e -> if hi >= lo then e.ext_iter ~lo ~hi f

(* stored checksum of [page] as the read layer sees it: a tampered page
   reads back a flipped checksum, so verification fails *)
let stored_checksum t fl page =
  if Fault.tampered fl ~page then t.checksums.(page) lxor 1 else t.checksums.(page)

let verify_extent t fl ~page ~lo ~hi =
  let h = ref Checksum.seed in
  iter_extent t ~lo ~hi (fun tx -> h := Checksum.add_tx !h tx);
  if stored_checksum t fl page <> !h then begin
    Fault.note_checksum_failure fl;
    Cfq_error.raise_error (Cfq_error.Corrupt_page { page })
  end

(* the scan-time page walk under faults: consult the injector and verify
   each page's checksum in ascending page order, handing every validated
   extent to [deliver].  Both {!iter_scan} and {!begin_scan} go through
   here, so the injector sees one and the same draw sequence no matter
   whether the tuples are consumed inline or by parallel workers later. *)
let fault_page_walk t fl deliver =
  Fault.on_scan fl;
  let n = t.n in
  let i = ref 0 in
  while !i < n do
    let page = t.page_of.(!i) in
    Fault.on_page fl ~page;
    let j = ref !i in
    while !j < n && t.page_of.(!j) = page do
      incr j
    done;
    verify_extent t fl ~page ~lo:!i ~hi:(!j - 1);
    deliver ~lo:!i ~hi:(!j - 1);
    i := !j
  done

let iter_scan t stats f =
  Io_stats.record_scan stats ~pages:t.pages ~tuples:t.n;
  match t.faults with
  | None -> (
      match t.data with
      | Mem txs -> Array.iter f txs
      | Ext e -> if t.n > 0 then e.ext_iter ~lo:0 ~hi:(t.n - 1) f)
  | Some fl ->
      (* deliver page by page: consult the injector and verify the page's
         checksum before any of its tuples reach [f] *)
      fault_page_walk t fl (fun ~lo ~hi -> iter_extent t ~lo ~hi f)

let begin_scan t stats =
  Io_stats.record_scan stats ~pages:t.pages ~tuples:t.n;
  match t.faults with
  | None -> ()
  | Some fl -> fault_page_walk t fl (fun ~lo:_ ~hi:_ -> ())

let iter_range t ~lo ~hi f = iter_extent t ~lo ~hi f

(* [iter_range_checked] is [iter_range] that honours an installed injector:
   the slice is delivered page by page, each page consulted against the
   injector and checksum-verified before its tuples escape — the walk a
   replica runs so a failover layer above it sees typed faults instead of
   silently wrong tuples.  Checksums compare exactly only over complete
   pages; a resume point mid-page (a sibling taking over after a physical
   read failed partway through a page) delivers the partial extents
   unverified rather than comparing a partial hash against a whole-page
   checksum. *)
let iter_range_checked t ~lo ~hi f =
  if hi >= lo then
    match t.faults with
    | None -> iter_extent t ~lo ~hi f
    | Some fl ->
        Fault.on_scan fl;
        let i = ref lo in
        while !i <= hi do
          let page = t.page_of.(!i) in
          Fault.on_page fl ~page;
          let j = ref !i in
          while !j <= hi && t.page_of.(!j) = page do
            incr j
          done;
          let page_initial = !i = 0 || t.page_of.(!i - 1) <> page in
          let page_final = !j >= t.n || t.page_of.(!j) <> page in
          if page_initial && page_final then
            verify_extent t fl ~page ~lo:!i ~hi:(!j - 1);
          iter_extent t ~lo:!i ~hi:(!j - 1) f;
          i := !j
        done

(* Page run starts in tx order; chunk boundaries only ever sit on them, so
   no page is split across chunks.  The geometry is fixed for the life of a
   handle (a seal opens a fresh handle on the new generation), so it is
   computed once and memoised.  A concurrent double-compute is benign: both
   writers store identical arrays. *)
let run_starts t =
  match t.run_starts with
  | Some s -> s
  | None ->
      let n = t.n in
      let starts = ref [] in
      let i = ref 0 in
      while !i < n do
        starts := !i :: !starts;
        let page = t.page_of.(!i) in
        let j = ref !i in
        while !j < n && t.page_of.(!j) = page do
          incr j
        done;
        i := !j
      done;
      let arr = Array.of_list (List.rev !starts) in
      t.run_starts <- Some arr;
      arr

let chunk_runs t = Array.length (run_starts t)

let scan_chunks t ~max_chunks =
  let n = t.n in
  if n = 0 then []
  else begin
    let starts = run_starts t in
    let runs = Array.length starts in
    let k = max 1 (min max_chunks runs) in
    List.init k (fun c ->
        let r0 = c * runs / k and r1 = (c + 1) * runs / k in
        let lo = starts.(r0) in
        let hi = if r1 = runs then n - 1 else starts.(r1) - 1 in
        (lo, hi))
  end

let verify t =
  match t.faults with
  | None -> Ok ()
  | Some fl -> (
      let n = t.n in
      let check () =
        let i = ref 0 in
        while !i < n do
          let page = t.page_of.(!i) in
          let j = ref !i in
          while !j < n && t.page_of.(!j) = page do
            incr j
          done;
          verify_extent t fl ~page ~lo:!i ~hi:(!j - 1);
          i := !j
        done
      in
      match check () with
      | () -> Ok ()
      | exception Cfq_error.Error e -> Error e)

let absolute_support t frac =
  if frac < 0. || frac > 1. then invalid_arg "Tx_db.absolute_support";
  max 1 (int_of_float (ceil (frac *. float_of_int t.n)))

let support t stats s =
  let n = ref 0 in
  iter_scan t stats (fun tx -> if Itemset.subset s tx.Transaction.items then incr n);
  !n

let item_frequencies t stats ~universe_size =
  let freq = Array.make universe_size 0 in
  iter_scan t stats (fun tx ->
      Itemset.iter (fun i -> freq.(i) <- freq.(i) + 1) tx.Transaction.items);
  freq

let avg_tx_len t =
  if t.n = 0 then 0.
  else
    match t.data with
    | Mem txs ->
        let total =
          Array.fold_left (fun acc tx -> acc + Transaction.cardinal tx) 0 txs
        in
        float_of_int total /. float_of_int t.n
    | Ext e -> e.ext_avg_len

(* ------------------------------------------------------------------ *)
(* Sharded composites                                                  *)
(* ------------------------------------------------------------------ *)

(* The ranged variant of [fault_page_walk]: validate and deliver the pages
   of [lo..hi] against a shard's own injector.  Callers pass page-aligned
   ranges (every composite route point — full scans, chunk boundaries,
   shard boundaries — sits on a page boundary), so each extent covers its
   whole page and the checksum comparison is exact. *)
let ranged_fault_walk t fl ~lo ~hi deliver =
  Fault.on_scan fl;
  let i = ref lo in
  while !i <= hi do
    let page = t.page_of.(!i) in
    Fault.on_page fl ~page;
    let j = ref !i in
    while !j <= hi && t.page_of.(!j) = page do
      incr j
    done;
    verify_extent t fl ~page ~lo:!i ~hi:(!j - 1);
    deliver ~lo:!i ~hi:(!j - 1);
    i := !j
  done

(* largest k with base.(k) <= x; empty shards (base.(k) = base.(k+1)) are
   skipped because the search prefers the rightmost qualifying index *)
let locate base x =
  let ns = Array.length base - 1 in
  let lo = ref 0 and hi = ref (ns - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if base.(mid) <= x then lo := mid else hi := mid - 1
  done;
  !lo

let globalize_error pg_base k = function
  | Cfq_error.Transient_io { page } ->
      Cfq_error.Transient_io { page = page + pg_base.(k) }
  | Cfq_error.Corrupt_page { page } ->
      Cfq_error.Corrupt_page { page = page + pg_base.(k) }
  | e -> e

let of_shards ?page_model ?checksums ?io subs =
  let ns = Array.length subs in
  if ns = 0 then invalid_arg "Tx_db.of_shards: at least one shard required";
  let page_model =
    match page_model with Some pm -> pm | None -> subs.(0).page_model
  in
  let tx_base = Array.make (ns + 1) 0 and pg_base = Array.make (ns + 1) 0 in
  for k = 0 to ns - 1 do
    tx_base.(k + 1) <- tx_base.(k) + subs.(k).n;
    pg_base.(k + 1) <- pg_base.(k) + subs.(k).pages
  done;
  let n = tx_base.(ns) and pages = pg_base.(ns) in
  let page_of = Array.make n 0 in
  for k = 0 to ns - 1 do
    let sub = subs.(k) in
    for i = 0 to sub.n - 1 do
      page_of.(tx_base.(k) + i) <- pg_base.(k) + sub.page_of.(i)
    done
  done;
  (* shards store their transactions under local tids; the composite view
     re-tids on the way out so global tids are [0, n) in shard order *)
  let retid base tx =
    if base = 0 then tx
    else Transaction.make ~tid:(base + tx.Transaction.tid) ~items:tx.Transaction.items
  in
  let iter ~lo ~hi f =
    let k0 = locate tx_base lo and k1 = locate tx_base hi in
    for k = k0 to k1 do
      let sub = subs.(k) in
      let base = tx_base.(k) in
      let llo = max 0 (lo - base) and lhi = min (sub.n - 1) (hi - base) in
      if lhi >= llo then begin
        let deliver tx = f (retid base tx) in
        match sub.faults with
        | None -> (
            (* an external backend (a store's buffer pool, a replica group
               that exhausted its siblings) may raise typed errors of its
               own: translate their pages to composite coordinates too *)
            try iter_extent sub ~lo:llo ~hi:lhi deliver
            with Cfq_error.Error e ->
              Cfq_error.raise_error (globalize_error pg_base k e))
        | Some fl -> (
            (* a shard with its own injector validates its slice of the
               composite scan; raised pages are translated to composite
               coordinates so callers can attribute the failure *)
            try
              ranged_fault_walk sub fl ~lo:llo ~hi:lhi (fun ~lo ~hi ->
                  iter_extent sub ~lo ~hi deliver)
            with Cfq_error.Error e ->
              Cfq_error.raise_error (globalize_error pg_base k e))
      end
    done
  in
  let get_tx tid =
    let k = locate tx_base tid in
    let base = tx_base.(k) in
    match get subs.(k) (tid - base) with
    | tx -> retid base tx
    | exception Cfq_error.Error e ->
        Cfq_error.raise_error (globalize_error pg_base k e)
  in
  let avg =
    if n = 0 then 0.
    else
      Array.fold_left
        (fun acc sub -> acc +. (avg_tx_len sub *. float_of_int sub.n))
        0. subs
      /. float_of_int n
  in
  let checksums =
    match checksums with
    | Some c ->
        if Array.length c <> pages then
          invalid_arg "Tx_db.of_shards: one checksum per composite page required";
        c
    | None ->
        (* recompute over global tids with one raw walk; shard checksums
           cover local tids and cannot be reused *)
        let sums = Array.make pages Checksum.seed in
        Array.iteri
          (fun k sub ->
            let base = tx_base.(k) in
            if sub.n > 0 then
              iter_extent sub ~lo:0 ~hi:(sub.n - 1) (fun tx ->
                  let g = base + tx.Transaction.tid in
                  let p = page_of.(g) in
                  sums.(p) <- Checksum.add_tx sums.(p) (retid base tx)))
          subs;
        sums
  in
  {
    data = Ext { ext_iter = iter; ext_get = get_tx; ext_avg_len = avg };
    n;
    page_model;
    pages;
    page_of;
    checksums;
    faults = None;
    backend_faults = (fun () -> false);
    shard_meta =
      Some
        {
          subs;
          tx_base;
          pg_base;
          sh_io =
            (match io with
            | Some arr ->
                if Array.length arr <> ns then
                  invalid_arg "Tx_db.of_shards: one io sink per shard required";
                arr
            | None -> Array.init ns (fun _ -> Io_stats.create ()));
        };
    run_starts = None;
  }

let shard_meta_exn t =
  match t.shard_meta with
  | Some m -> m
  | None -> invalid_arg "Tx_db: not a sharded composite"

let shards t =
  match t.shard_meta with Some m -> Some m.subs | None -> None

let shard_io t =
  match t.shard_meta with Some m -> m.sh_io | None -> [||]

let shard_of_page t page =
  let m = shard_meta_exn t in
  if page < 0 || page >= t.pages then
    invalid_arg "Tx_db.shard_of_page: page out of range";
  locate m.pg_base page

let shard_page_base t k = (shard_meta_exn t).pg_base.(k)
let shard_tx_base t k = (shard_meta_exn t).tx_base.(k)
