(** The transaction database [trans(TID, Itemset)].

    An immutable store of transactions with a {!Page_model} attached for
    I/O cost accounting.  Scans go through {!iter_scan} so that every pass
    over the data is charged to the given {!Io_stats}.

    Two backends share this one API: the resident in-memory array built by
    {!create}, and an external paged backend plugged in through
    {!of_backend} (the disk store [Cfq_store], which reads 4 KB pages
    through a bounded buffer pool).  Page geometry, per-page checksums,
    chunked scans and the fault machinery are common to both, so answers,
    ccc counters and injected fault sequences are identical across
    backends. *)

open Cfq_itembase

type t

(** [create ?page_model txs] stores the given itemsets as transactions with
    TIDs [0, 1, ...]. *)
val create : ?page_model:Page_model.t -> Itemset.t array -> t

(** The logical per-page checksum: a rolling hash over the (tid, items) of
    the transactions resident on the page, starting from [seed].  An
    external backend persists exactly these values so that the fault
    machinery (tamper detection, {!verify}) behaves identically on either
    backend. *)
module Checksum : sig
  val seed : int
  val add_tx : int -> Transaction.t -> int
end

(** [of_backend ~pages ~page_of ~checksums ~avg_tx_len ~iter ~get ()] is a
    database whose tuples live in an external paged store.  [page_of] maps
    each transaction index to its (first) page under the same packing as
    {!Page_model.assign}; [checksums] holds one {!Checksum} value per page;
    [iter ~lo ~hi f] must deliver transactions [lo..hi] (inclusive, with
    correct TIDs) and be safe to call concurrently from several domains on
    disjoint ranges; [get] is a point read.  The backend is responsible for
    its own physical integrity (e.g. CRCs on raw pages) and may raise
    [Cfq_error.Error (Corrupt_page _)] from [iter]/[get]. *)
val of_backend :
  ?page_model:Page_model.t ->
  pages:int ->
  page_of:int array ->
  checksums:int array ->
  avg_tx_len:float ->
  iter:(lo:int -> hi:int -> (Transaction.t -> unit) -> unit) ->
  get:(int -> Transaction.t) ->
  unit ->
  t

(** {2 Sharded composites}

    [of_shards subs] is one logical database spanning the given shards in
    tid order: global tids are the concatenation of the shards' local tids
    and global pages the concatenation of their pages.  Scans and point
    reads route to the owning shard and re-tid transactions on the way
    out.  A shard with its own fault injector validates its slice of every
    composite scan (same page/checksum walk as a local scan) and raised
    error pages are translated to composite coordinates, so callers can
    attribute a failure to a shard with {!shard_of_page}.

    [checksums] are the composite's per-page checksums over {e global}
    tids; when omitted they are recomputed with one raw walk (shard-local
    checksums cover local tids and cannot be reused).  Install faults
    either on the composite or on individual shards — combining both makes
    the injectors draw independently, which is rarely what a test wants. *)

(** [io] supplies the composite's per-shard {!Io_stats} sinks instead of
    fresh ones — how a replicated store shares one sink per shard between
    distributed counting and its own failover accounting. *)
val of_shards :
  ?page_model:Page_model.t ->
  ?checksums:int array ->
  ?io:Io_stats.t array ->
  t array ->
  t

(** The sub-databases of a composite, in tid order ([None] otherwise). *)
val shards : t -> t array option

(** One {!Io_stats} sink per shard of a composite (distributed counting
    charges each shard's local I/O here); [[||]] for ordinary databases. *)
val shard_io : t -> Io_stats.t array

(** [shard_of_page t page] is the shard owning composite page [page].
    Raises [Invalid_argument] on an ordinary database. *)
val shard_of_page : t -> int -> int

(** First composite page / tid of shard [k].  Raise on ordinary DBs. *)
val shard_page_base : t -> int -> int

val shard_tx_base : t -> int -> int

val size : t -> int

(** Number of pages a full sequential scan touches. *)
val pages : t -> int

val page_model : t -> Page_model.t

(** [get t tid] is transaction [tid].  With faults installed, may raise
    [Cfq_error.Error]. *)
val get : t -> int -> Transaction.t

(** [iter_scan t stats f] runs [f] over every transaction and charges one
    full scan to [stats].  With faults installed, delivery is page by page:
    each page is checked against the injector and its stored checksum
    before any of its transactions reach [f], and [Cfq_error.Error] is
    raised on an injected transient error, a checksum mismatch (corrupt
    page), or an injected crash. *)
val iter_scan : t -> Io_stats.t -> (Transaction.t -> unit) -> unit

(** {2 Chunked scans}

    A chunked scan decomposes one logical pass into page-aligned ranges so
    several domains can consume disjoint chunks of the same scan.  The
    protocol is: {!begin_scan} once (it charges exactly the one scan that
    {!iter_scan} would and, with faults installed, performs the {e same}
    page/checksum walk in the same order, drawing the same injector
    decisions — so errors and fault statistics are independent of how many
    domains later consume the tuples), then {!iter_range} over the ranges
    from {!scan_chunks} in any order and from any domain. *)

(** [scan_chunks t ~max_chunks] partitions the scan order into at most
    [max_chunks] contiguous ranges [(lo, hi)] (inclusive transaction
    indices), each boundary snapped to a page boundary so no page is split
    across chunks.  The ranges are disjoint, in ascending order, and cover
    every transaction; the empty database yields [[]]. *)
val scan_chunks : t -> max_chunks:int -> (int * int) list

(** Number of page runs {!scan_chunks} partitions — the upper bound on
    useful chunks.  The run geometry is fixed for the life of a handle (a
    seal opens a new handle), so it is computed once and memoised; this
    accessor exposes it for shard sizing and [stats] reporting. *)
val chunk_runs : t -> int

(** [begin_scan t stats] charges one full scan to [stats] and, with faults
    installed, runs the complete page/checksum validation walk (raising
    like {!iter_scan} would) without delivering any tuples. *)
val begin_scan : t -> Io_stats.t -> unit

(** [iter_range t ~lo ~hi f] delivers transactions [lo..hi] (inclusive) to
    [f], raw: no I/O charge, no fault consultation — validation already
    happened in {!begin_scan}.  Safe to call concurrently from several
    domains on disjoint ranges. *)
val iter_range : t -> lo:int -> hi:int -> (Transaction.t -> unit) -> unit

(** [iter_range_checked t ~lo ~hi f] delivers transactions [lo..hi] with no
    I/O charge but {e with} fault validation when an injector is installed:
    the slice is walked page by page, each page consulted against the
    injector and checksum-verified before its tuples reach [f] — exactly
    the walk a shard's slice of a composite scan runs.  This is the read a
    replica serves so the failover layer above it sees typed faults.
    Checksum comparison is skipped for a partial page at either end of the
    range (a mid-page resume after a physical fault); complete pages are
    always verified. *)
val iter_range_checked : t -> lo:int -> hi:int -> (Transaction.t -> unit) -> unit

(** {2 Fault injection}

    The store carries per-page checksums computed at {!create}.  Installing
    a {!Fault.t} makes every scan and point read consult the injector;
    removing it ([set_faults t None]) restores the untouched fast path. *)

val set_faults : t -> Fault.t option -> unit
val faults : t -> Fault.t option

(** [set_backend_faults t probe] registers an external backend's own fault
    probe: a replicated store reports whether {e any} of its replicas
    carries an injector.  Callers that pin faulted scans to a
    deterministic order ([Counting.count_shared]) consult
    {!backend_faulted}, which is [faults t <> None || probe ()]. *)
val set_backend_faults : t -> (unit -> bool) -> unit

val backend_faulted : t -> bool

(** The page table ([tid -> first page]) and per-page checksum table of
    this database, {e shared, not copied} — read-only for callers.  A
    replica group uses them to build a failover view with identical page
    geometry. *)
val page_table : t -> int array

val checksum_table : t -> int array

(** Page holding transaction [tid] (its first page if it spans several). *)
val page_of_tx : t -> int -> int

(** [verify t] recomputes every page checksum against the stored data as
    the current fault layer reads it: [Error (Corrupt_page _)] for the
    first tampered page, [Ok ()] otherwise (always [Ok] with no faults
    installed).  Detected mismatches are counted on the injector. *)
val verify : t -> (unit, Cfq_error.t) result

(** [absolute_support t frac] converts a relative support threshold in
    [0, 1] to an absolute count (at least 1). *)
val absolute_support : t -> float -> int

(** [support t stats s] counts the transactions containing [s] (one scan). *)
val support : t -> Io_stats.t -> Itemset.t -> int

(** [item_frequencies t stats ~universe_size] is one scan computing, for
    every item, the number of transactions containing it. *)
val item_frequencies : t -> Io_stats.t -> universe_size:int -> int array

(** Average transaction length, for reporting. *)
val avg_tx_len : t -> float
