type t =
  | Transient_io of { page : int }
  | Corrupt_page of { page : int }
  | Deadline
  | Overload
  | Query_crash of string

exception Error of t

let raise_error e = raise (Error e)

let is_transient = function
  | Transient_io _ -> true
  | Corrupt_page _ | Deadline | Overload | Query_crash _ -> false

let to_string = function
  | Transient_io { page } -> Printf.sprintf "transient I/O error reading page %d" page
  | Corrupt_page { page } -> Printf.sprintf "checksum mismatch on page %d" page
  | Deadline -> "deadline exceeded"
  | Overload -> "overloaded: admission refused"
  | Query_crash msg -> "query crashed: " ^ msg

let pp ppf e = Format.pp_print_string ppf (to_string e)

(* readable payloads when an [Error] escapes uncaught *)
let () =
  Printexc.register_printer (function
    | Error e -> Some ("Cfq_error.Error (" ^ to_string e ^ ")")
    | _ -> None)
