(** Disk-page layout model for the transaction store.

    The paper's experiments use a 4 KB page size and report combined
    CPU + I/O cost; since this reproduction keeps the database in memory, the
    page model computes how many pages a sequential scan of the stored
    transactions would touch, so that the cost model can charge a per-page
    I/O cost. *)

type t = {
  page_size_bytes : int;  (** default 4096, as in the paper *)
  tid_bytes : int;  (** per-transaction header: TID + length *)
  item_bytes : int;  (** bytes per stored item id *)
}

val default : t

val make : ?page_size_bytes:int -> ?tid_bytes:int -> ?item_bytes:int -> unit -> t

(** [tx_bytes t n_items] is the stored size of one transaction. *)
val tx_bytes : t -> int -> int

(** [pages_for t sizes] is the number of pages used when transactions with
    the given item counts are packed sequentially (no transaction spans a
    page unless larger than a page, in which case it takes
    [ceil(bytes/page)] contiguous pages). *)
val pages_for : t -> int array -> int

(** [assign t sizes] is [(page_of, n_pages)] under the same sequential
    packing as {!pages_for}: [page_of.(i)] is the (first) page holding
    transaction [i], and [n_pages = pages_for t sizes].  Page indices are
    non-decreasing; an oversized transaction owns
    [ceil(bytes/page)] consecutive page indices starting at its own. *)
val assign : t -> int array -> int array * int
