type config = {
  seed : int64;
  transient_p : float;
  fail_first : int;
  spike_p : float;
  spike_seconds : float;
  corrupt_p : float;
  max_corrupt : int;
  crash_p : float;
}

let default_config =
  {
    seed = 0x5EEDL;
    transient_p = 0.;
    fail_first = 0;
    spike_p = 0.;
    spike_seconds = 0.001;
    corrupt_p = 0.;
    max_corrupt = 1;
    crash_p = 0.;
  }

let is_active c =
  c.transient_p > 0. || c.fail_first > 0 || c.spike_p > 0. || c.corrupt_p > 0.
  || c.crash_p > 0.

type stats = {
  transient : int;
  spikes : int;
  crashes : int;
  tampered : int;
  checksum_failures : int;
}

type t = {
  cfg : config;
  mutex : Mutex.t;
  mutable rng : int64;  (* SplitMix64 state *)
  mutable remaining_fail_first : int;
  tampered_pages : (int, unit) Hashtbl.t;
  mutable n_transient : int;
  mutable n_spikes : int;
  mutable n_crashes : int;
  mutable n_checksum_failures : int;
}

let create cfg =
  {
    cfg;
    mutex = Mutex.create ();
    rng = cfg.seed;
    remaining_fail_first = max 0 cfg.fail_first;
    tampered_pages = Hashtbl.create 7;
    n_transient = 0;
    n_spikes = 0;
    n_crashes = 0;
    n_checksum_failures = 0;
  }

let config t = t.cfg

(* SplitMix64 (Steele, Lea & Flood 2014) — the same stream discipline as
   Cfq_quest.Splitmix, inlined here because cfq_quest sits above this
   library in the dependency order. *)
let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* call under [t.mutex] *)
let next_float t =
  t.rng <- Int64.add t.rng golden_gamma;
  let v = Int64.to_float (Int64.shift_right_logical (mix64 t.rng) 11) in
  v *. (1. /. 9007199254740992.)

let locked t f =
  Mutex.lock t.mutex;
  match f () with
  | v ->
      Mutex.unlock t.mutex;
      v
  | exception e ->
      Mutex.unlock t.mutex;
      raise e

let stats t =
  locked t (fun () ->
      {
        transient = t.n_transient;
        spikes = t.n_spikes;
        crashes = t.n_crashes;
        tampered = Hashtbl.length t.tampered_pages;
        checksum_failures = t.n_checksum_failures;
      })

type scan_outcome = Proceed | Spike | Crash

let on_scan t =
  let outcome =
    locked t (fun () ->
        if t.cfg.crash_p > 0. && next_float t < t.cfg.crash_p then begin
          t.n_crashes <- t.n_crashes + 1;
          Crash
        end
        else if t.cfg.spike_p > 0. && next_float t < t.cfg.spike_p then begin
          t.n_spikes <- t.n_spikes + 1;
          Spike
        end
        else Proceed)
  in
  match outcome with
  | Proceed -> ()
  | Spike -> Unix.sleepf t.cfg.spike_seconds (* outside the lock *)
  | Crash -> Cfq_error.raise_error (Cfq_error.Query_crash "injected crash")

(* call under [t.mutex]: one transient draw, counting [fail_first] down
   before the probabilistic regime *)
let transient_draw t =
  if t.remaining_fail_first > 0 then begin
    t.remaining_fail_first <- t.remaining_fail_first - 1;
    true
  end
  else t.cfg.transient_p > 0. && next_float t < t.cfg.transient_p

let on_page t ~page =
  let fail =
    locked t (fun () ->
        if t.cfg.corrupt_p > 0.
           && (not (Hashtbl.mem t.tampered_pages page))
           && Hashtbl.length t.tampered_pages < t.cfg.max_corrupt
           && next_float t < t.cfg.corrupt_p
        then Hashtbl.replace t.tampered_pages page ();
        if transient_draw t then begin
          t.n_transient <- t.n_transient + 1;
          true
        end
        else false)
  in
  if fail then Cfq_error.raise_error (Cfq_error.Transient_io { page })

let on_get t ~page =
  let outcome =
    locked t (fun () ->
        if Hashtbl.mem t.tampered_pages page then `Corrupt
        else if transient_draw t then begin
          t.n_transient <- t.n_transient + 1;
          `Transient
        end
        else `Ok)
  in
  match outcome with
  | `Ok -> ()
  | `Transient -> Cfq_error.raise_error (Cfq_error.Transient_io { page })
  | `Corrupt -> Cfq_error.raise_error (Cfq_error.Corrupt_page { page })

let tampered t ~page = locked t (fun () -> Hashtbl.mem t.tampered_pages page)

let note_checksum_failure t =
  locked t (fun () -> t.n_checksum_failures <- t.n_checksum_failures + 1)
