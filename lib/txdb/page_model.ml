type t = {
  page_size_bytes : int;
  tid_bytes : int;
  item_bytes : int;
}

let make ?(page_size_bytes = 4096) ?(tid_bytes = 8) ?(item_bytes = 4) () =
  if page_size_bytes <= 0 || tid_bytes < 0 || item_bytes <= 0 then
    invalid_arg "Page_model.make";
  { page_size_bytes; tid_bytes; item_bytes }

let default = make ()

let tx_bytes t n_items = t.tid_bytes + (n_items * t.item_bytes)

let assign t sizes =
  let pages = ref 0 in
  let free = ref 0 in
  let page_of =
    Array.map
      (fun n ->
        let b = tx_bytes t n in
        if b > t.page_size_bytes then begin
          (* oversized transaction: spans dedicated pages *)
          let first = !pages in
          pages := !pages + ((b + t.page_size_bytes - 1) / t.page_size_bytes);
          free := 0;
          first
        end
        else if b <= !free then begin
          free := !free - b;
          !pages - 1
        end
        else begin
          incr pages;
          free := t.page_size_bytes - b;
          !pages - 1
        end)
      sizes
  in
  (page_of, !pages)

let pages_for t sizes = snd (assign t sizes)
