type t = {
  mutable scans : int;
  mutable pages_read : int;
  mutable tuples_read : int;
  mutable pool_hits : int;
  mutable pool_misses : int;
  mutable pool_evictions : int;
  mutable failovers : int;
}

let create () =
  {
    scans = 0;
    pages_read = 0;
    tuples_read = 0;
    pool_hits = 0;
    pool_misses = 0;
    pool_evictions = 0;
    failovers = 0;
  }

let reset t =
  t.scans <- 0;
  t.pages_read <- 0;
  t.tuples_read <- 0;
  t.pool_hits <- 0;
  t.pool_misses <- 0;
  t.pool_evictions <- 0;
  t.failovers <- 0

let record_scan t ~pages ~tuples =
  t.scans <- t.scans + 1;
  t.pages_read <- t.pages_read + pages;
  t.tuples_read <- t.tuples_read + tuples

let record_pool_hit t = t.pool_hits <- t.pool_hits + 1
let record_pool_miss t = t.pool_misses <- t.pool_misses + 1
let record_pool_eviction t = t.pool_evictions <- t.pool_evictions + 1
let record_failover t = t.failovers <- t.failovers + 1

let scans t = t.scans
let pages_read t = t.pages_read
let tuples_read t = t.tuples_read
let pool_hits t = t.pool_hits
let pool_misses t = t.pool_misses
let pool_evictions t = t.pool_evictions
let failovers t = t.failovers

let add dst src =
  dst.scans <- dst.scans + src.scans;
  dst.pages_read <- dst.pages_read + src.pages_read;
  dst.tuples_read <- dst.tuples_read + src.tuples_read;
  dst.pool_hits <- dst.pool_hits + src.pool_hits;
  dst.pool_misses <- dst.pool_misses + src.pool_misses;
  dst.pool_evictions <- dst.pool_evictions + src.pool_evictions;
  dst.failovers <- dst.failovers + src.failovers

let pp ppf t =
  Format.fprintf ppf "scans=%d pages=%d tuples=%d" t.scans t.pages_read t.tuples_read;
  if t.pool_hits <> 0 || t.pool_misses <> 0 || t.pool_evictions <> 0 then
    Format.fprintf ppf " hits=%d misses=%d evictions=%d" t.pool_hits t.pool_misses
      t.pool_evictions
