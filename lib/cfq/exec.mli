(** Execution of CFQs under the three computation strategies compared in
    the paper's evaluation:

    {ul
    {- {!Plan.Apriori_plus}: mine {e all} frequent sets once, then check
       every constraint on the results — the baseline;}
    {- {!Plan.Cap_one_var}: push the 1-var constraints with CAP, check the
       2-var constraints only at pair formation;}
    {- {!Plan.Optimized}: the full Figure 7 pipeline — CAP for 1-var
       constraints, quasi-succinct reduction after level 1, iterative
       [Jmax]/[V^k] filters for sum constraints, dovetailed lattices with
       shared scans.}}

    All strategies produce the same answer pairs; they differ in how much
    counting, checking and I/O they spend getting there. *)

open Cfq_itembase
open Cfq_txdb
open Cfq_mining

type ctx = {
  db : Tx_db.t;
  s_info : Item_info.t;  (** attribute table for the [S] domain *)
  t_info : Item_info.t;  (** ... and for the [T] domain (may be the same) *)
  nonneg : bool;  (** all aggregated attribute values are ≥ 0 *)
}

(** [context db info] is the common case of both variables ranging over the
    same item domain, with non-negative attributes. *)
val context : Tx_db.t -> Item_info.t -> ctx

type side_report = {
  frequent : Frequent.t;  (** sets this strategy counted and found frequent *)
  valid : Frequent.entry array;  (** frequent sets satisfying the side's 1-var constraints *)
  counters : Counters.t;
  levels : Level_stats.row list;
}

type result = {
  plan : Plan.t;
  s : side_report;
  t : side_report;
  io : Io_stats.t;
  pair_stats : Pairs.stats;
  pairs : (Frequent.entry * Frequent.entry) list;
      (** materialised only when [collect_pairs] *)
  mining_seconds : float;  (** CPU time of the lattice phase *)
  pair_seconds : float;  (** CPU time of validity filtering + pair formation *)
  notes : string list;
      (** execution trace worth surfacing, e.g. the [V^k] bound after each
          observed level of the opposite lattice *)
}

(** Total constraint-check invocations across both sides and pair
    formation. *)
val total_checks : result -> int

(** Total sets counted for support. *)
val total_counted : result -> int

(** [run ?strategy ?collect_pairs ctx q] executes the query.
    [collect_pairs] (default false) materialises the answer pairs in
    [pairs]; otherwise only [pair_stats] is produced.

    [par] parallelises every counting pass of the lattice strategies
    (Optimized, Cap_one_var, Sequential_t_first) across
    [par.Counting.domains] domains — borrowed from [par.Counting.pool]
    when given (the serving case), otherwise from a private pool created
    for this run.  Answers, ccc counters, and I/O charges are identical to
    the sequential execution for every [domains] value.

    [kernel] selects the support-counting kernel (see {!Counting.kernel});
    omitted means the legacy trie path, [Auto] the adaptive cost model.
    Answers, frequent collections, and ccc counters are byte-identical for
    every kernel; only the documented logical page charges differ (the
    chosen kernels per pass appear in [levels] and a summary note).  When
    faults are installed every pass is pinned to the trie.  The default
    stays the trie path because its scan-per-level I/O profile is the
    paper's cost model.

    [calibration] shares a measured per-kernel cost record across runs (a
    service passes its own so early queries calibrate the planner for
    later ones); absent, the run's session starts from the committed
    machine-profile priors.  [calibrate] (default true) lets the run feed
    its measured pass timings back into that record; with [false] the
    record never moves and the Auto planner's decisions are reproducible. *)
val run :
  ?strategy:Plan.strategy ->
  ?collect_pairs:bool ->
  ?par:Counting.par ->
  ?kernel:Counting.kernel ->
  ?calibration:Counting.calibration ->
  ?calibrate:bool ->
  ctx ->
  Query.t ->
  result

(** [run_result] is {!run} with injected faults surfaced as values: a
    [Cfq_error.Error] raised by the (possibly fault-wrapped) transaction
    store becomes [Error e], and a resource crash ([Stack_overflow],
    [Out_of_memory]) becomes [Error (Query_crash _)].  Other exceptions
    (programming errors) still propagate. *)
val run_result :
  ?strategy:Plan.strategy ->
  ?collect_pairs:bool ->
  ?par:Counting.par ->
  ?kernel:Counting.kernel ->
  ?calibration:Counting.calibration ->
  ?calibrate:bool ->
  ctx ->
  Query.t ->
  (result, Cfq_error.t) Stdlib.result
