open Cfq_itembase
open Cfq_txdb
open Cfq_constr
open Cfq_mining

let log_src = Logs.Src.create "cfq.exec" ~doc:"CFQ execution"

module Log = (val Logs.src_log log_src)

type ctx = {
  db : Tx_db.t;
  s_info : Item_info.t;
  t_info : Item_info.t;
  nonneg : bool;
}

let context db info = { db; s_info = info; t_info = info; nonneg = true }

type side_report = {
  frequent : Frequent.t;
  valid : Frequent.entry array;
  counters : Counters.t;
  levels : Level_stats.row list;
}

type result = {
  plan : Plan.t;
  s : side_report;
  t : side_report;
  io : Io_stats.t;
  pair_stats : Pairs.stats;
  pairs : (Frequent.entry * Frequent.entry) list;
  mining_seconds : float;
  pair_seconds : float;
  notes : string list;
}

let total_checks r =
  Counters.constraint_checks r.s.counters
  + Counters.constraint_checks r.t.counters
  + r.pair_stats.Pairs.checks

let total_counted r =
  Counters.support_counted r.s.counters + Counters.support_counted r.t.counters

(* frequent sets of a side satisfying its user 1-var constraints; every
   evaluation is a constraint-check invocation *)
let validate_side info counters constraints frequent =
  let out = ref [] in
  Frequent.iter
    (fun e ->
      let ok =
        List.for_all
          (fun c ->
            Counters.add_constraint_checks counters 1;
            One_var.eval info c e.Frequent.set)
          constraints
      in
      if ok then out := e :: !out)
    frequent;
  Array.of_list (List.rev !out)

(* ------------------------------------------------------------------ *)
(* Apriori+ *)

let run_apriori_plus ?par ?session ctx (q : Query.t) io =
  let minsup_s = Tx_db.absolute_support ctx.db q.Query.s_minsup in
  let minsup_t = Tx_db.absolute_support ctx.db q.Query.t_minsup in
  if ctx.s_info == ctx.t_info then begin
    (* one domain: mine once at the laxer threshold, split by side *)
    let outcome =
      Apriori.mine ctx.db ctx.s_info io ?max_level:q.Query.max_level ?par ?session
        ~minsup:(min minsup_s minsup_t) ()
    in
    let side minsup =
      Frequent.filter_entries (fun e -> e.Frequent.support >= minsup) outcome.Apriori.frequent
    in
    let s_counters = outcome.Apriori.counters in
    let t_counters = Counters.create () in
    ( (side minsup_s, s_counters, Level_stats.rows outcome.Apriori.stats),
      (side minsup_t, t_counters, []) )
  end
  else begin
    let run info minsup =
      let outcome =
        Apriori.mine ctx.db info io ?max_level:q.Query.max_level ?par ?session ~minsup ()
      in
      (outcome.Apriori.frequent, outcome.Apriori.counters, Level_stats.rows outcome.Apriori.stats)
    in
    (run ctx.s_info minsup_s, run ctx.t_info minsup_t)
  end

(* ------------------------------------------------------------------ *)
(* CAP (1-var only) and the full optimized strategy *)

(* one V^k tracker: observes the lattice providing the bound and filters
   candidates on the other side *)
type sum_filter = {
  tracker : Jmax.Sum_bound.t;
  filter_agg : Agg.t;
  filter_attr : Attr.t;
  filter_op : Cmp.t;
  filter_info : Item_info.t;
  enabled : bool ref;
}

let make_sum_filter ~bound_info ~bound_attr ~filter_info ~filter_agg ~filter_attr
    ~filter_op =
  {
    tracker = Jmax.Sum_bound.create bound_info bound_attr;
    filter_agg;
    filter_attr;
    filter_op;
    filter_info;
    enabled = ref true;
  }

let sum_filter_admits f set =
  (not !(f.enabled))
  ||
  let bound = Jmax.Sum_bound.bound f.tracker in
  (not (Float.is_finite bound))
  ||
  match Agg.apply f.filter_agg f.filter_info f.filter_attr set with
  | Some v -> Cmp.eval f.filter_op v bound
  | None -> true

(* sum filters the plan installs for one 2-var constraint; the [`S] tag
   means "filter the S lattice, observe the T lattice" *)
let filters_of_handling ctx h =
  match h.Plan.constr with
  | Two_var.Set2 _ -> []
  | Two_var.Agg2 (agg1, a, op, agg2, b) ->
      (* the tracker always provides an upper bound on the opposite side's
         achievable sum, and the plan only installs a filter on the side
         whose aggregate must stay small, so the filter is always ≤ *)
      ignore op;
      let on_s () =
        ( `S,
          make_sum_filter ~bound_info:ctx.t_info ~bound_attr:b ~filter_info:ctx.s_info
            ~filter_agg:agg1 ~filter_attr:a ~filter_op:Cmp.Le )
      in
      let on_t () =
        ( `T,
          make_sum_filter ~bound_info:ctx.s_info ~bound_attr:a ~filter_info:ctx.t_info
            ~filter_agg:agg2 ~filter_attr:b ~filter_op:Cmp.Le )
      in
      (if h.Plan.jmax_on_s then [ on_s () ] else [])
      @ (if h.Plan.jmax_on_t then [ on_t () ] else [])

let run_lattices ?(notes = ref []) ?par ?session ctx (q : Query.t) (plan : Plan.t) io =
  let minsup_s = Tx_db.absolute_support ctx.db q.Query.s_minsup in
  let minsup_t = Tx_db.absolute_support ctx.db q.Query.t_minsup in
  (* when the two variables point at one and the same lattice computation
     (the Section 6.2 observation), mine it once and reuse it per side;
     this applies whenever no per-side 2-var conditions will be injected *)
  if
    plan.Plan.handlings = []
    && ctx.s_info == ctx.t_info
    && minsup_s = minsup_t
    && q.Query.s_constraints = q.Query.t_constraints
  then begin
    notes := "S and T share one lattice: mined once" :: !notes;
    let bundle = Bundle.compile ~nonneg:ctx.nonneg ctx.s_info q.Query.s_constraints in
    let state =
      Cap.create ctx.db ctx.s_info ?max_level:q.Query.max_level ~minsup:minsup_s bundle
    in
    let freq = Cap.run ?par ?session state io in
    let rows = Level_stats.rows (Cap.stats state) in
    ( (freq, Cap.counters state, rows),
      (freq, Counters.create (), rows) )
  end
  else begin
  let s_bundle = Bundle.compile ~nonneg:ctx.nonneg ctx.s_info q.Query.s_constraints in
  let t_bundle = Bundle.compile ~nonneg:ctx.nonneg ctx.t_info q.Query.t_constraints in
  let s_state =
    Cap.create ctx.db ctx.s_info ?max_level:q.Query.max_level ~minsup:minsup_s s_bundle
  in
  let t_state =
    Cap.create ctx.db ctx.t_info ?max_level:q.Query.max_level ~minsup:minsup_t t_bundle
  in
  let filters = List.concat_map (filters_of_handling ctx) plan.Plan.handlings in
  let s_filters = List.filter_map (function `S, f -> Some f | `T, _ -> None) filters in
  let t_filters = List.filter_map (function `T, f -> Some f | `S, _ -> None) filters in
  if s_filters <> [] then
    Cap.set_extra_filter s_state (fun set ->
        List.for_all (fun f -> sum_filter_admits f set) s_filters);
  if t_filters <> [] then
    Cap.set_extra_filter t_state (fun set ->
        List.for_all (fun f -> sum_filter_admits f set) t_filters);
  let after_l1 ~l1_s ~l1_t =
    (* quasi-succinct reduction of every 2-var constraint (Section 4);
       non-quasi-succinct ones get their sound bound conditions here too *)
    List.iter
      (fun h ->
        let red =
          Reduce.reduce ~s_info:ctx.s_info ~t_info:ctx.t_info ~l1_s ~l1_t h.Plan.constr
        in
        Cap.add_constraints ~nonneg:ctx.nonneg s_state red.Reduce.s_conds;
        Cap.add_constraints ~nonneg:ctx.nonneg t_state red.Reduce.t_conds)
      plan.Plan.handlings;
    (* the V^k machinery requires the observed lattice to be subset-complete:
       disable the filters whose source lattice now requires witnesses *)
    if Bundle.requires (Cap.bundle t_state) <> [] then
      List.iter (fun f -> f.enabled := false) s_filters;
    if Bundle.requires (Cap.bundle s_state) <> [] then
      List.iter (fun f -> f.enabled := false) t_filters
  in
  let note_bound side k f =
    let b = Jmax.Sum_bound.bound f.tracker in
    if Float.is_finite b then
      notes :=
        Printf.sprintf "V^k on %s(%a) after %s level %d: %g"
          (Agg.to_string f.filter_agg)
          (fun () a -> a.Cfq_itembase.Attr.name)
          f.filter_attr
          (match side with `S -> "T" | `T -> "S")
          k b
        :: !notes
  in
  let on_s_level k entries =
    List.iter
      (fun f ->
        Jmax.Sum_bound.observe_level f.tracker ~k entries;
        note_bound `T k f)
      t_filters
  in
  let on_t_level k entries =
    List.iter
      (fun f ->
        Jmax.Sum_bound.observe_level f.tracker ~k entries;
        note_bound `S k f)
      s_filters
  in
  let s_freq, t_freq =
    Dovetail.run ?par ?session io ~s:s_state ~t:t_state ~after_l1 ~on_s_level
      ~on_t_level ()
  in
  ( (s_freq, Cap.counters s_state, Level_stats.rows (Cap.stats s_state)),
    (t_freq, Cap.counters t_state, Level_stats.rows (Cap.stats t_state)) )
  end

(* ------------------------------------------------------------------ *)
(* Sequential T-first: the Section 5.2 alternative to dovetailing — compute
   the whole T lattice, then prune S against exact bounds (the "global
   maximum M" strategy).  More scans, tighter pruning. *)

let run_sequential ?par ?session ctx (q : Query.t) (plan : Plan.t) io =
  let minsup_s = Tx_db.absolute_support ctx.db q.Query.s_minsup in
  let minsup_t = Tx_db.absolute_support ctx.db q.Query.t_minsup in
  let s_bundle = Bundle.compile ~nonneg:ctx.nonneg ctx.s_info q.Query.s_constraints in
  let t_bundle = Bundle.compile ~nonneg:ctx.nonneg ctx.t_info q.Query.t_constraints in
  let s_state =
    Cap.create ctx.db ctx.s_info ?max_level:q.Query.max_level ~minsup:minsup_s s_bundle
  in
  let t_state =
    Cap.create ctx.db ctx.t_info ?max_level:q.Query.max_level ~minsup:minsup_t t_bundle
  in
  let level1 state =
    match Cap.next_candidates state with
    | None -> ()
    | Some cands ->
        let counts =
          Counting.count_level ?par ?session ctx.db io (Cap.counters state) cands
        in
        let kernel =
          match session with Some s -> Counting.last_kernel s | None -> "trie"
        in
        let (_ : Frequent.entry array) = Cap.absorb ~kernel state counts in
        ()
  in
  (* both level-1 sets first, so the full reduction is available to the T
     lattice before it runs to completion *)
  level1 s_state;
  level1 t_state;
  (* a side that never completed level 1 has an empty L1; the reduction's
     unsatisfiable conditions then correctly kill the other side too *)
  let l1_s = Itemset.of_array (Cap.frequent_items s_state) in
  let l1_t = Itemset.of_array (Cap.frequent_items t_state) in
  let reductions =
    List.map
      (fun h ->
        Reduce.reduce ~s_info:ctx.s_info ~t_info:ctx.t_info ~l1_s ~l1_t h.Plan.constr)
      plan.Plan.handlings
  in
  List.iter
    (fun red -> Cap.add_constraints ~nonneg:ctx.nonneg t_state red.Reduce.t_conds)
    reductions;
  let t_freq = Cap.run ?par ?session t_state io in
  begin
    List.iter
      (fun red -> Cap.add_constraints ~nonneg:ctx.nonneg s_state red.Reduce.s_conds)
      reductions;
    (* exact aggregate bounds from the completed T lattice in place of the
       V^k series: sum(CS.A) <= max over frequent T of sum(T.B) *)
    let exact_filters =
      List.filter_map
        (fun h ->
          if not h.Plan.jmax_on_s then None
          else
            match h.Plan.constr with
            | Two_var.Agg2 (agg1, a, _, agg2, b) ->
                let bound =
                  Frequent.fold
                    (fun acc e ->
                      match Agg.apply agg2 ctx.t_info b e.Frequent.set with
                      | Some v -> Float.max acc v
                      | None -> acc)
                    neg_infinity t_freq
                in
                Some
                  (fun set ->
                    match Agg.apply agg1 ctx.s_info a set with
                    | Some v -> v <= bound
                    | None -> true)
            | Two_var.Set2 _ -> None)
        plan.Plan.handlings
    in
    if exact_filters <> [] then
      Cap.set_extra_filter s_state (fun set -> List.for_all (fun f -> f set) exact_filters)
  end;
  let s_freq = Cap.run ?par ?session s_state io in
  ( (s_freq, Cap.counters s_state, Level_stats.rows (Cap.stats s_state)),
    (t_freq, Cap.counters t_state, Level_stats.rows (Cap.stats t_state)) )

(* FM (Section 6.2): constraint-check the powerset, count only valid sets. *)
let run_full_mat ctx (q : Query.t) io =
  let minsup_s = Tx_db.absolute_support ctx.db q.Query.s_minsup in
  let minsup_t = Tx_db.absolute_support ctx.db q.Query.t_minsup in
  let side info cs minsup =
    let bundle = Bundle.compile ~nonneg:ctx.nonneg info cs in
    let counters = Counters.create () in
    let freq = Full_mat.run ctx.db io counters ~bundle ~minsup in
    (freq, counters, [])
  in
  ( side ctx.s_info q.Query.s_constraints minsup_s,
    side ctx.t_info q.Query.t_constraints minsup_t )

(* ------------------------------------------------------------------ *)

let empty_result plan notes =
  let empty_side () =
    { frequent = Frequent.empty; valid = [||]; counters = Counters.create (); levels = [] }
  in
  {
    plan;
    s = empty_side ();
    t = empty_side ();
    io = Io_stats.create ();
    pair_stats =
      { Pairs.n_pairs = 0; n_paired_s = 0; n_paired_t = 0; checks = 0; join = Pairs.Nested_loop };
    pairs = [];
    mining_seconds = 0.;
    pair_seconds = 0.;
    notes;
  }

(* resolve the user's [par] into one that can be threaded through a whole
   run: a multi-domain request without a pool to borrow from gets a private
   pool for the run's lifetime (instead of spawning fresh domains on every
   level), torn down by [cleanup] *)
let resolve_par par =
  match par with
  | None -> (None, fun () -> ())
  | Some p when p.Counting.domains <= 1 -> (None, fun () -> ())
  | Some ({ Counting.pool = Some _; _ } as p) -> (Some p, fun () -> ())
  | Some ({ Counting.pool = None; _ } as p) ->
      let domains = p.Counting.domains in
      let pool =
        Cfq_exec_pool.Pool.create ~domains:(domains - 1)
          ~queue_capacity:(4 * domains) ()
      in
      ( Some { p with Counting.pool = Some pool },
        fun () -> Cfq_exec_pool.Pool.shutdown pool )

let run ?(strategy = Plan.Optimized) ?(collect_pairs = false) ?par ?kernel
    ?calibration ?(calibrate = true) ctx (q : Query.t) =
  (* normalise the constraint conjunction first; provably empty queries never
     touch the database *)
  let rw = Rewrite.simplify q in
  let q = rw.Rewrite.query in
  let plan = Optimizer.plan ~strategy ~nonneg:ctx.nonneg q in
  if rw.Rewrite.s_unsat || rw.Rewrite.t_unsat then
    empty_result plan
      (rw.Rewrite.notes @ [ "query is unsatisfiable; nothing was mined" ])
  else begin
  Log.debug (fun m -> m "executing with strategy %s: %s" (Plan.strategy_name strategy)
      (Query.to_string q));
  let io = Io_stats.create () in
  let notes = ref (List.rev rw.Rewrite.notes) in
  let t0 = Sys.time () in
  let par, cleanup_pool = resolve_par par in
  (* one adaptive-kernel session per run: projections and bitmaps built for
     one pass serve the later passes of the same run and nothing else *)
  let session =
    Option.map
      (fun k ->
        let plan = { (Counting.plan_of_kernel k) with Counting.calibrate } in
        Counting.create_session ~plan ?calibration ())
      kernel
  in
  let (s_freq, s_counters, s_levels), (t_freq, t_counters, t_levels) =
    Fun.protect ~finally:cleanup_pool (fun () ->
        match strategy with
        | Plan.Apriori_plus -> run_apriori_plus ?par ?session ctx q io
        | Plan.Cap_one_var | Plan.Optimized ->
            run_lattices ~notes ?par ?session ctx q plan io
        | Plan.Sequential_t_first -> run_sequential ?par ?session ctx q plan io
        | Plan.Full_materialize ->
            (* FM counts exactly one explicit candidate batch; the trie pass
               is already the direct representation there *)
            (match kernel with
            | Some k when k <> Counting.Trie ->
                notes :=
                  Printf.sprintf "kernel %s ignored by full-materialize"
                    (Counting.kernel_name k)
                  :: !notes
            | _ -> ());
            run_full_mat ctx q io)
  in
  (match session with
  | Some s ->
      notes :=
        Printf.sprintf "counting kernels (%s): %s"
          (Counting.kernel_name (Counting.session_plan s).Counting.kernel)
          (Counting.describe s)
        :: !notes
  | None -> ());
  let t1 = Sys.time () in
  let valid_s = validate_side ctx.s_info s_counters q.Query.s_constraints s_freq in
  let valid_t = validate_side ctx.t_info t_counters q.Query.t_constraints t_freq in
  let collected = ref [] in
  let on_pair =
    if collect_pairs then fun es et -> collected := (es, et) :: !collected
    else fun _ _ -> ()
  in
  let pair_stats =
    Pairs.form ~s_info:ctx.s_info ~t_info:ctx.t_info ~valid_s ~valid_t
      ~two_var:q.Query.two_var ~on_pair ()
  in
  let t2 = Sys.time () in
  Log.debug (fun m ->
      m "mining %.3fs (%d + %d sets counted), pairs %.3fs (%d pairs)" (t1 -. t0)
        (Counters.support_counted s_counters)
        (Counters.support_counted t_counters)
        (t2 -. t1) pair_stats.Pairs.n_pairs);
  {
    plan;
    s = { frequent = s_freq; valid = valid_s; counters = s_counters; levels = s_levels };
    t = { frequent = t_freq; valid = valid_t; counters = t_counters; levels = t_levels };
    io;
    pair_stats;
    pairs = List.rev !collected;
    mining_seconds = t1 -. t0;
    pair_seconds = t2 -. t1;
    notes = List.rev !notes;
  }
  end

let run_result ?strategy ?collect_pairs ?par ?kernel ?calibration ?calibrate ctx
    q =
  match run ?strategy ?collect_pairs ?par ?kernel ?calibration ?calibrate ctx q with
  | r -> Ok r
  | exception Cfq_error.Error e -> Error e
  | exception Stack_overflow -> Error (Cfq_error.Query_crash "stack overflow")
  | exception Out_of_memory -> Error (Cfq_error.Query_crash "out of memory")
