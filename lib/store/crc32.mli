(** CRC-32 (IEEE 802.3, the zlib polynomial) over byte buffers.

    Guards the physical layer of the store: raw data pages, the segment
    header and footer, and every WAL record carry one.  Unlike the logical
    {!Cfq_txdb.Tx_db.Checksum} (which covers decoded transactions and
    feeds the fault machinery), a CRC mismatch here means the bytes on
    disk are not the bytes that were written — a torn write or real
    corruption. *)

(** [sub b off len] is the CRC-32 of [len] bytes of [b] from [off]. *)
val sub : bytes -> int -> int -> int

(** [bytes b] is [sub b 0 (Bytes.length b)]. *)
val bytes : bytes -> int
