let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let sub b off len =
  if off < 0 || len < 0 || off + len > Bytes.length b then invalid_arg "Crc32.sub";
  let tbl = Lazy.force table in
  let c = ref 0xFFFFFFFF in
  for i = off to off + len - 1 do
    c := tbl.((!c lxor Char.code (Bytes.get b i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF land 0xFFFFFFFF

let bytes b = sub b 0 (Bytes.length b)
