(** Byte layout of transactions inside a segment's data region.

    The data region is a run of fixed-size pages packed exactly as
    {!Cfq_txdb.Page_model.assign} packs them: a transaction occupies
    [tx_bytes = tid_bytes + n_items * item_bytes] contiguous bytes, goes
    on the current page iff it fits in the remaining free bytes, and an
    oversized transaction owns [ceil (bytes / page_size)] dedicated pages
    (the next transaction starts on a fresh page).  Because layout and
    cost model coincide, the on-disk backend's page count — and therefore
    every page-charged I/O number — is identical to the in-memory
    backend's.

    Record encoding, little-endian: [tid : u32][n_items : u32] in the
    first 8 of the [tid_bytes] header bytes, then each item as a [u32] in
    the first 4 of its [item_bytes] slot; spare bytes are zero.  The page
    model must have [tid_bytes >= 8] and [item_bytes >= 4] (the default
    4 KB model does). *)

open Cfq_itembase
open Cfq_txdb

type layout = {
  pm : Page_model.t;
  sizes : int array;  (** item count per transaction *)
  offsets : int array;  (** byte offset of each record in the data region *)
  page_of : int array;  (** as {!Page_model.assign} *)
  pages : int;
}

(** Raises [Invalid_argument] if the page model cannot encode records. *)
val check_model : Page_model.t -> unit

(** [layout pm sizes] replays the packing and returns the full geometry. *)
val layout : Page_model.t -> int array -> layout

(** Stored size in bytes of transaction [i]. *)
val tx_bytes : layout -> int -> int

(** Total bytes of the data region: [pages * page_size]. *)
val data_bytes : layout -> int

(** [encode_tx l buf ~tid items] writes the record of transaction [tid]
    at its layout offset into [buf] (the whole data region). *)
val encode_tx : layout -> bytes -> tid:int -> Itemset.t -> unit

(** [decode_tx l ~tid buf ~at] reads the record back from [buf] starting
    at [at].  Raises [Cfq_error.Error (Corrupt_page _)] if the stored tid,
    length or item order contradict the layout. *)
val decode_tx : layout -> tid:int -> bytes -> at:int -> Transaction.t
