(* header: magic, the segment generation these records apply to, CRC *)
let magic = "CFQWAL01"
let h_generation = 8
let h_crc = 16
let header_bytes = 20

type t = {
  fd : Unix.file_descr;
  group_commit : int;
  buf : Buffer.t;
  mutable buffered : int;  (* records in [buf], not yet written *)
  mutable appended : int;
  mutable fsyncs : int;
}

let add_u32 b v =
  let tmp = Bytes.create 4 in
  Bytes.set_int32_le tmp 0 (Int32.of_int v);
  Buffer.add_bytes b tmp

let open_append ?(group_commit = 64) path =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
  {
    fd;
    group_commit = max 1 group_commit;
    buf = Buffer.create 4096;
    buffered = 0;
    appended = 0;
    fsyncs = 0;
  }

let write_all fd b off len =
  let off = ref off and len = ref len in
  while !len > 0 do
    let w = Unix.write fd b !off !len in
    off := !off + w;
    len := !len - w
  done

let flush t =
  if t.buffered > 0 then begin
    let b = Buffer.to_bytes t.buf in
    write_all t.fd b 0 (Bytes.length b);
    Unix.fsync t.fd;
    t.fsyncs <- t.fsyncs + 1;
    Buffer.clear t.buf;
    t.buffered <- 0
  end

let append t items =
  let n = Array.length items in
  let payload = Bytes.create (4 + (4 * n)) in
  Bytes.set_int32_le payload 0 (Int32.of_int n);
  Array.iteri
    (fun k it -> Bytes.set_int32_le payload (4 + (4 * k)) (Int32.of_int it))
    items;
  Buffer.add_bytes t.buf payload;
  add_u32 t.buf (Crc32.bytes payload);
  t.buffered <- t.buffered + 1;
  t.appended <- t.appended + 1;
  if t.buffered >= t.group_commit then flush t

let close t =
  flush t;
  Unix.close t.fd

let appended t = t.appended
let fsyncs t = t.fsyncs

(* ------------------------------------------------------------------ *)

type scan = {
  generation : int option;
  records : int array list;
  good_bytes : int;
  torn_bytes : int;
}

let read_file path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let size = (Unix.fstat fd).Unix.st_size in
      let b = Bytes.create size in
      let off = ref 0 in
      while !off < size do
        let r = Unix.read fd b !off (size - !off) in
        if r = 0 then failwith "Wal.scan: short read"
        else off := !off + r
      done;
      b)

let header_generation b =
  let size = Bytes.length b in
  if
    size >= header_bytes
    && Bytes.sub_string b 0 8 = magic
    && Crc32.sub b 0 h_crc
       = Int32.to_int (Bytes.get_int32_le b h_crc) land 0xFFFFFFFF
  then Some (Int64.to_int (Bytes.get_int64_le b h_generation))
  else None

let scan path =
  if not (Sys.file_exists path) then
    { generation = None; records = []; good_bytes = 0; torn_bytes = 0 }
  else begin
    let b = read_file path in
    let size = Bytes.length b in
    match header_generation b with
    | None ->
        (* missing or torn header: the file was mid-reset — nothing in it
           can be trusted, and nothing in it was ever acknowledged *)
        { generation = None; records = []; good_bytes = 0; torn_bytes = size }
    | Some generation ->
    let records = ref [] and off = ref header_bytes and stop = ref false in
    while not !stop && !off + 8 <= size do
      let n = Int32.to_int (Bytes.get_int32_le b !off) in
      let rec_len = 4 + (4 * n) + 4 in
      if n < 0 || !off + rec_len > size then stop := true
      else begin
        let crc = Int32.to_int (Bytes.get_int32_le b (!off + rec_len - 4)) land 0xFFFFFFFF in
        if Crc32.sub b !off (rec_len - 4) <> crc then stop := true
        else begin
          let items =
            Array.init n (fun k ->
                Int32.to_int (Bytes.get_int32_le b (!off + 4 + (4 * k))))
          in
          records := items :: !records;
          off := !off + rec_len
        end
      end
    done;
    {
      generation = Some generation;
      records = List.rev !records;
      good_bytes = !off;
      torn_bytes = size - !off;
    }
  end

let fsync_path path =
  match Unix.openfile path [ Unix.O_WRONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let truncate_torn path s =
  if s.torn_bytes > 0 then begin
    Unix.truncate path s.good_bytes;
    fsync_path path
  end

let reset path ~generation =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let b = Bytes.create header_bytes in
      Bytes.blit_string magic 0 b 0 8;
      Bytes.set_int64_le b h_generation (Int64.of_int generation);
      Bytes.set_int32_le b h_crc (Int32.of_int (Crc32.sub b 0 h_crc));
      write_all fd b 0 header_bytes;
      Unix.fsync fd)
