open Cfq_itembase
open Cfq_txdb

type recovery = {
  replayed : int;
  truncated_bytes : int;
}

type seal_info = {
  si_generation : int;
  si_base_txs : int;
  si_sealed_txs : int;
}

type t = {
  path : string;
  cache_pages : int;
  io : Io_stats.t;
  mutable seg : Segment.t;
  mutable pool : Buffer_pool.t;
  mutable db : Tx_db.t;
  (* segments superseded by a seal: their pool fds stay open until
     [close] so db handles obtained before the seal keep reading their
     (old, still-valid) snapshot instead of hitting a closed fd *)
  mutable stale : (Buffer_pool.t * Segment.t) list;
  mutable last_seal : seal_info option;
  wal : Wal.t;
  recovery : recovery;
}

let wal_path path = path ^ ".wal"

(* ------------------------------------------------------------------ *)
(* the Tx_db view: decode transactions on demand through the pool *)

let make_db seg pool =
  let l = seg.Segment.layout in
  let pm = seg.Segment.pm in
  let ps = pm.Page_model.page_size_bytes in
  let n = Array.length l.Page_codec.sizes in
  let read_tx tid =
    let off = l.Page_codec.offsets.(tid) in
    let len = Page_codec.tx_bytes l tid in
    let first = off / ps and last = (off + len - 1) / ps in
    if first = last then
      Buffer_pool.with_page pool first (fun buf ->
          Page_codec.decode_tx l ~tid buf ~at:(off mod ps))
    else begin
      (* oversized transaction spanning dedicated pages: gather *)
      let tmp = Bytes.create len in
      for p = first to last do
        let page_lo = p * ps in
        let lo = max off page_lo and hi = min (off + len) (page_lo + ps) in
        Buffer_pool.with_page pool p (fun buf ->
            Bytes.blit buf (lo - page_lo) tmp (lo - off) (hi - lo))
      done;
      Page_codec.decode_tx l ~tid tmp ~at:0
    end
  in
  let iter ~lo ~hi f =
    for k = lo to hi do
      f (read_tx k)
    done
  in
  let avg_tx_len =
    if n = 0 then 0.
    else
      float_of_int (Array.fold_left ( + ) 0 l.Page_codec.sizes) /. float_of_int n
  in
  Tx_db.of_backend ~page_model:pm ~pages:l.Page_codec.pages
    ~page_of:l.Page_codec.page_of ~checksums:seg.Segment.sums ~avg_tx_len ~iter
    ~get:read_tx ()

let attach ~cache_pages ~io seg =
  let pool =
    Buffer_pool.create ~path:seg.Segment.path
      ~page_size:seg.Segment.pm.Page_model.page_size_bytes
      ~n_pages:seg.Segment.layout.Page_codec.pages ~data_off:(Segment.data_off seg)
      ~crcs:seg.Segment.crcs ~capacity:cache_pages ~stats:io ()
  in
  (pool, make_db seg pool)

(* ------------------------------------------------------------------ *)

(* also reset the WAL: a leftover log from an earlier store at this path
   must not be replayed into the freshly built segment *)
let build ?page_model path txs =
  Segment.write ?page_model ~generation:0 path txs;
  Wal.reset (wal_path path) ~generation:0

let save_db ?page_model path db =
  let n = Tx_db.size db in
  let txs = Array.make n Itemset.empty in
  Tx_db.iter_range db ~lo:0 ~hi:(n - 1) (fun tx ->
      txs.(tx.Transaction.tid) <- tx.Transaction.items);
  build ?page_model path txs

(* fold [extra] WAL records into a next-generation segment at [path]
   (atomic rewrite, durable on return).  [seg] stays open — the caller
   decides when its readers have drained.  Returns the new generation. *)
let fold_into_segment seg path (extra : int array list) =
  let existing = Segment.read_all seg in
  let next = seg.Segment.generation + 1 in
  let all =
    Array.append existing
      (Array.of_list (List.map (fun items -> Itemset.of_array items) extra))
  in
  Segment.write ~page_model:seg.Segment.pm ~generation:next path all;
  next

let open_ ?(cache_pages = 1024) ?group_commit path =
  (* recovery.  The WAL header names the segment generation its records
     apply to; anything else (older generation, missing/torn header) is
     a leftover from before a durably completed fold and is discarded —
     never replayed a second time.  A matching WAL has its torn tail
     truncated and its valid records folded into a generation+1 segment
     (rename + dir fsync) BEFORE the WAL is reset, so a crash anywhere
     in between re-runs this same recovery without duplicating. *)
  let wp = wal_path path in
  let seg0 = Segment.open_ path in
  let s = Wal.scan wp in
  let current = s.Wal.generation = Some seg0.Segment.generation in
  let seg =
    if current && s.Wal.records <> [] then begin
      let next = fold_into_segment seg0 path s.Wal.records in
      Segment.close seg0;
      Wal.reset wp ~generation:next;
      Segment.open_ path
    end
    else begin
      if current then Wal.truncate_torn wp s
      else Wal.reset wp ~generation:seg0.Segment.generation;
      seg0
    end
  in
  let io = Io_stats.create () in
  let cache_pages = max 1 cache_pages in
  let pool, db = attach ~cache_pages ~io seg in
  {
    path;
    cache_pages;
    io;
    seg;
    pool;
    db;
    stale = [];
    last_seal = None;
    wal = Wal.open_append ?group_commit wp;
    recovery =
      (if current then
         { replayed = List.length s.Wal.records; truncated_bytes = s.Wal.torn_bytes }
       else { replayed = 0; truncated_bytes = 0 });
  }

let create ?page_model ?cache_pages ?group_commit path =
  Segment.write ?page_model ~generation:0 path [||];
  Wal.reset (wal_path path) ~generation:0;
  open_ ?cache_pages ?group_commit path

let db t = t.db
let view t = make_db t.seg t.pool
let append_tx t items = Wal.append t.wal (Itemset.to_array items)
let flush t = Wal.flush t.wal

let seal t =
  Wal.flush t.wal;
  let s = Wal.scan (wal_path t.path) in
  if s.Wal.records = [] || s.Wal.generation <> Some t.seg.Segment.generation then 0
  else begin
    let old_seg = t.seg and old_pool = t.pool in
    let base_txs = Tx_db.size t.db in
    let next = fold_into_segment old_seg t.path s.Wal.records in
    Wal.reset (wal_path t.path) ~generation:next;
    let seg = Segment.open_ t.path in
    let pool, db = attach ~cache_pages:t.cache_pages ~io:t.io seg in
    t.seg <- seg;
    t.pool <- pool;
    t.db <- db;
    (* keep the superseded segment readable until [close]: db handles
       handed out before this seal may still be mid-scan on it *)
    t.stale <- (old_pool, old_seg) :: t.stale;
    let sealed = List.length s.Wal.records in
    t.last_seal <-
      Some { si_generation = next; si_base_txs = base_txs; si_sealed_txs = sealed };
    sealed
  end

let close t =
  Wal.close t.wal;
  List.iter
    (fun (pool, seg) ->
      Buffer_pool.close pool;
      Segment.close seg)
    t.stale;
  t.stale <- [];
  Buffer_pool.close t.pool;
  Segment.close t.seg

(* ------------------------------------------------------------------ *)
(* page-level export / verify seam: positioned reads on the segment's own
   fd, deliberately bypassing the buffer pool — cached frames would mask
   on-disk rot.  Not safe to interleave with [seal] on the same handle
   (both reposition the segment fd); the scrubber runs between seals. *)

type page_fault_kind = Bad_crc | Bad_checksum
type page_fault = { pf_page : int; pf_kind : page_fault_kind }

let page_fault_kind_name = function
  | Bad_crc -> "bad-crc"
  | Bad_checksum -> "bad-checksum"

let pread_exact t ~off buf len =
  ignore (Unix.lseek t.seg.Segment.fd off Unix.SEEK_SET);
  let o = ref 0 in
  while !o < len do
    let r = Unix.read t.seg.Segment.fd buf !o (len - !o) in
    if r = 0 then
      Cfq_error.raise_error
        (Cfq_error.Corrupt_page
           { page = (off - Segment.data_off t.seg) / t.seg.Segment.pm.Page_model.page_size_bytes });
    o := !o + r
  done

(* raw bytes of data page [p], fresh from disk (no CRC check) *)
let read_page t p =
  let ps = t.seg.Segment.pm.Page_model.page_size_bytes in
  if p < 0 || p >= t.seg.Segment.layout.Page_codec.pages then
    invalid_arg "Store.read_page";
  let buf = Bytes.create ps in
  pread_exact t ~off:(Segment.data_off t.seg + (p * ps)) buf ps;
  buf

let verify_pages ?(throttle = fun ~page:_ -> ()) t =
  let seg = t.seg in
  let l = seg.Segment.layout in
  let ps = seg.Segment.pm.Page_model.page_size_bytes in
  let n = Array.length l.Page_codec.sizes in
  let n_pages = l.Page_codec.pages in
  let faults = ref [] in
  let crc_bad = Array.make (max 1 n_pages) false in
  let buf = Bytes.create ps in
  (* pass 1: raw CRC of every data page *)
  for p = 0 to n_pages - 1 do
    throttle ~page:p;
    (match pread_exact t ~off:(Segment.data_off seg + (p * ps)) buf ps with
    | () ->
        if Crc32.bytes buf <> seg.Segment.crcs.(p) then crc_bad.(p) <- true
    | exception Cfq_error.Error _ -> crc_bad.(p) <- true);
    if crc_bad.(p) then faults := { pf_page = p; pf_kind = Bad_crc } :: !faults
  done;
  (* pass 2: logical checksums — decode each page run's transactions from
     their byte extents and replay the rolling hash the scan layer checks.
     A page already condemned by its CRC is not re-reported here. *)
  let i = ref 0 in
  while !i < n do
    let page = l.Page_codec.page_of.(!i) in
    let h = ref Tx_db.Checksum.seed in
    let ok = ref true in
    let j = ref !i in
    while !j < n && l.Page_codec.page_of.(!j) = page do
      let off = l.Page_codec.offsets.(!j) in
      let len = Page_codec.tx_bytes l !j in
      let tmp = Bytes.create len in
      (try
         pread_exact t ~off:(Segment.data_off seg + off) tmp len;
         h := Tx_db.Checksum.add_tx !h (Page_codec.decode_tx l ~tid:!j tmp ~at:0)
       with Cfq_error.Error _ -> ok := false);
      incr j
    done;
    if (not crc_bad.(page)) && ((not !ok) || !h <> seg.Segment.sums.(page)) then
      faults := { pf_page = page; pf_kind = Bad_checksum } :: !faults;
    i := !j
  done;
  List.sort compare (List.rev !faults)

let read_all t = Segment.read_all t.seg

let size t = Tx_db.size t.db
let pages t = Tx_db.pages t.db
let page_model t = t.seg.Segment.pm
let universe_size t = t.seg.Segment.universe
let generation t = t.seg.Segment.generation
let io t = t.io
let last_recovery t = t.recovery
let last_seal t = t.last_seal
let wal_counters t = (Wal.appended t.wal, Wal.fsyncs t.wal)
let cache_pages t = t.cache_pages
let path t = t.path
