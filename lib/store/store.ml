open Cfq_itembase
open Cfq_txdb

type recovery = {
  replayed : int;
  truncated_bytes : int;
}

type t = {
  path : string;
  cache_pages : int;
  io : Io_stats.t;
  mutable seg : Segment.t;
  mutable pool : Buffer_pool.t;
  mutable db : Tx_db.t;
  (* segments superseded by a seal: their pool fds stay open until
     [close] so db handles obtained before the seal keep reading their
     (old, still-valid) snapshot instead of hitting a closed fd *)
  mutable stale : (Buffer_pool.t * Segment.t) list;
  wal : Wal.t;
  recovery : recovery;
}

let wal_path path = path ^ ".wal"

(* ------------------------------------------------------------------ *)
(* the Tx_db view: decode transactions on demand through the pool *)

let make_db seg pool =
  let l = seg.Segment.layout in
  let pm = seg.Segment.pm in
  let ps = pm.Page_model.page_size_bytes in
  let n = Array.length l.Page_codec.sizes in
  let read_tx tid =
    let off = l.Page_codec.offsets.(tid) in
    let len = Page_codec.tx_bytes l tid in
    let first = off / ps and last = (off + len - 1) / ps in
    if first = last then
      Buffer_pool.with_page pool first (fun buf ->
          Page_codec.decode_tx l ~tid buf ~at:(off mod ps))
    else begin
      (* oversized transaction spanning dedicated pages: gather *)
      let tmp = Bytes.create len in
      for p = first to last do
        let page_lo = p * ps in
        let lo = max off page_lo and hi = min (off + len) (page_lo + ps) in
        Buffer_pool.with_page pool p (fun buf ->
            Bytes.blit buf (lo - page_lo) tmp (lo - off) (hi - lo))
      done;
      Page_codec.decode_tx l ~tid tmp ~at:0
    end
  in
  let iter ~lo ~hi f =
    for k = lo to hi do
      f (read_tx k)
    done
  in
  let avg_tx_len =
    if n = 0 then 0.
    else
      float_of_int (Array.fold_left ( + ) 0 l.Page_codec.sizes) /. float_of_int n
  in
  Tx_db.of_backend ~page_model:pm ~pages:l.Page_codec.pages
    ~page_of:l.Page_codec.page_of ~checksums:seg.Segment.sums ~avg_tx_len ~iter
    ~get:read_tx ()

let attach ~cache_pages ~io seg =
  let pool =
    Buffer_pool.create ~path:seg.Segment.path
      ~page_size:seg.Segment.pm.Page_model.page_size_bytes
      ~n_pages:seg.Segment.layout.Page_codec.pages ~data_off:(Segment.data_off seg)
      ~crcs:seg.Segment.crcs ~capacity:cache_pages ~stats:io ()
  in
  (pool, make_db seg pool)

(* ------------------------------------------------------------------ *)

(* also reset the WAL: a leftover log from an earlier store at this path
   must not be replayed into the freshly built segment *)
let build ?page_model path txs =
  Segment.write ?page_model ~generation:0 path txs;
  Wal.reset (wal_path path) ~generation:0

let save_db ?page_model path db =
  let n = Tx_db.size db in
  let txs = Array.make n Itemset.empty in
  Tx_db.iter_range db ~lo:0 ~hi:(n - 1) (fun tx ->
      txs.(tx.Transaction.tid) <- tx.Transaction.items);
  build ?page_model path txs

(* fold [extra] WAL records into a next-generation segment at [path]
   (atomic rewrite, durable on return).  [seg] stays open — the caller
   decides when its readers have drained.  Returns the new generation. *)
let fold_into_segment seg path (extra : int array list) =
  let existing = Segment.read_all seg in
  let next = seg.Segment.generation + 1 in
  let all =
    Array.append existing
      (Array.of_list (List.map (fun items -> Itemset.of_array items) extra))
  in
  Segment.write ~page_model:seg.Segment.pm ~generation:next path all;
  next

let open_ ?(cache_pages = 1024) ?group_commit path =
  (* recovery.  The WAL header names the segment generation its records
     apply to; anything else (older generation, missing/torn header) is
     a leftover from before a durably completed fold and is discarded —
     never replayed a second time.  A matching WAL has its torn tail
     truncated and its valid records folded into a generation+1 segment
     (rename + dir fsync) BEFORE the WAL is reset, so a crash anywhere
     in between re-runs this same recovery without duplicating. *)
  let wp = wal_path path in
  let seg0 = Segment.open_ path in
  let s = Wal.scan wp in
  let current = s.Wal.generation = Some seg0.Segment.generation in
  let seg =
    if current && s.Wal.records <> [] then begin
      let next = fold_into_segment seg0 path s.Wal.records in
      Segment.close seg0;
      Wal.reset wp ~generation:next;
      Segment.open_ path
    end
    else begin
      if current then Wal.truncate_torn wp s
      else Wal.reset wp ~generation:seg0.Segment.generation;
      seg0
    end
  in
  let io = Io_stats.create () in
  let cache_pages = max 1 cache_pages in
  let pool, db = attach ~cache_pages ~io seg in
  {
    path;
    cache_pages;
    io;
    seg;
    pool;
    db;
    stale = [];
    wal = Wal.open_append ?group_commit wp;
    recovery =
      (if current then
         { replayed = List.length s.Wal.records; truncated_bytes = s.Wal.torn_bytes }
       else { replayed = 0; truncated_bytes = 0 });
  }

let create ?page_model ?cache_pages ?group_commit path =
  Segment.write ?page_model ~generation:0 path [||];
  Wal.reset (wal_path path) ~generation:0;
  open_ ?cache_pages ?group_commit path

let db t = t.db
let append_tx t items = Wal.append t.wal (Itemset.to_array items)
let flush t = Wal.flush t.wal

let seal t =
  Wal.flush t.wal;
  let s = Wal.scan (wal_path t.path) in
  if s.Wal.records = [] || s.Wal.generation <> Some t.seg.Segment.generation then 0
  else begin
    let old_seg = t.seg and old_pool = t.pool in
    let next = fold_into_segment old_seg t.path s.Wal.records in
    Wal.reset (wal_path t.path) ~generation:next;
    let seg = Segment.open_ t.path in
    let pool, db = attach ~cache_pages:t.cache_pages ~io:t.io seg in
    t.seg <- seg;
    t.pool <- pool;
    t.db <- db;
    (* keep the superseded segment readable until [close]: db handles
       handed out before this seal may still be mid-scan on it *)
    t.stale <- (old_pool, old_seg) :: t.stale;
    List.length s.Wal.records
  end

let close t =
  Wal.close t.wal;
  List.iter
    (fun (pool, seg) ->
      Buffer_pool.close pool;
      Segment.close seg)
    t.stale;
  t.stale <- [];
  Buffer_pool.close t.pool;
  Segment.close t.seg

let size t = Tx_db.size t.db
let pages t = Tx_db.pages t.db
let page_model t = t.seg.Segment.pm
let universe_size t = t.seg.Segment.universe
let generation t = t.seg.Segment.generation
let io t = t.io
let last_recovery t = t.recovery
let wal_counters t = (Wal.appended t.wal, Wal.fsyncs t.wal)
let cache_pages t = t.cache_pages
let path t = t.path
