(** The sealed on-disk segment: [header page | data pages | footer].

    {v
    page 0            header: magic "CFQSEG01", version, page geometry
                      (page_size / tid_bytes / item_bytes), n_txs, n_pages,
                      universe_size, generation, header CRC-32;
                      zero-padded to one page
    pages 1..n        data region, packed per Page_codec (= Page_model)
    footer            per-tx item counts (u32 each), per-page raw CRC-32
                      (u32), per-page logical Tx_db checksum (u64),
                      footer CRC-32
    v}

    The footer index makes opening cheap: the layout (offsets, page_of) is
    replayed from the item counts without touching the data region, raw
    CRCs let the buffer pool verify every physical page read, and the
    logical checksums are exactly the values {!Cfq_txdb.Tx_db} would have
    computed in memory — so fault injection and [Tx_db.verify] behave
    identically on either backend.

    Writes go through a temp file + atomic rename followed by a parent
    directory fsync, so a crash mid-seal leaves the previous segment
    intact and a completed {!write} is durable when it returns.

    The [generation] counter makes WAL replay idempotent: every fold of
    WAL records into a segment bumps it, and the WAL header names the
    generation it applies to ({!Wal.scan}), so records already folded
    into a newer segment are never replayed twice. *)

open Cfq_itembase
open Cfq_txdb

type t = {
  path : string;
  fd : Unix.file_descr;  (** read-only, positioned by the buffer pool *)
  pm : Page_model.t;
  layout : Page_codec.layout;
  crcs : int array;  (** raw CRC-32 per data page *)
  sums : int array;  (** logical {!Tx_db.Checksum} per data page *)
  universe : int;  (** item-universe size: 1 + max item, 0 when empty *)
  generation : int;  (** bumped on every WAL fold; pairs with the WAL header *)
}

exception Bad_segment of string
(** Raised by {!open_} with a ["<path>: <reason>"] message. *)

(** [write ?page_model ?generation path txs] builds and atomically
    replaces the segment at [path] ([generation] defaults to 0); durable
    (file and directory fsynced) when it returns. *)
val write :
  ?page_model:Page_model.t -> ?generation:int -> string -> Itemset.t array -> unit

(** [open_ path] validates the header and footer CRCs and returns a
    handle.  Data pages are {e not} read here — the buffer pool verifies
    them lazily, page by page. *)
val open_ : string -> t

val close : t -> unit

(** File offset of data page 0 (= one page). *)
val data_off : t -> int

(** [read_all t] decodes every transaction sequentially, bypassing any
    pool (used to fold the WAL into a new segment and by [--verify]). *)
val read_all : t -> Itemset.t array
