(** The append-only ingestion log.

    New transactions are appended here first and folded into a sealed
    segment later ({!Store.seal}), so ingestion is one sequential write
    stream and a crash can only ever lose or tear the {e tail} of the log
    — never a sealed page.

    The file opens with a 20-byte header — magic ["CFQWAL01"], the
    {!Segment.t.generation} its records apply to (u64 LE) and a CRC-32 —
    written by {!reset}.  Replay only ever happens when the header's
    generation matches the live segment's, which makes recovery
    idempotent: folding records into a segment bumps the segment
    generation first (durably, rename + directory fsync) and resets the
    WAL second, so a crash between the two leaves a stale-generation WAL
    that is discarded rather than replayed twice.

    Record format, little-endian:
    [[n_items : u32][item : u32]*n][crc32 : u32] where the CRC covers the
    length and item bytes.  Recovery ({!scan}) walks records from the
    start and stops at the first incomplete or CRC-mismatching record;
    everything before it is replayed, the torn tail is truncated.

    Writes are batched (group commit): appends buffer in memory and one
    [write]+[fsync] persists the whole group when it reaches
    [group_commit] records, on {!flush}, or on {!close}.  Until one of
    those happens, up to [group_commit - 1] appended records live only in
    user space — a crash loses them; callers that need a bound must call
    {!flush}. *)

type t

(** [open_append ?group_commit path] opens (creating if missing) the log
    for appending.  [group_commit] defaults to 64 records. *)
val open_append : ?group_commit:int -> string -> t

(** [append t items] buffers one transaction ([items] strictly
    increasing); flushes automatically when the group is full. *)
val append : t -> int array -> unit

(** Persist all buffered records with a single fsync. *)
val flush : t -> unit

val close : t -> unit

(** Records appended (buffered or written) since [open_append]. *)
val appended : t -> int

(** fsyncs issued — the group-commit batching factor is
    [appended / fsyncs]. *)
val fsyncs : t -> int

(** {2 Recovery} *)

type scan = {
  generation : int option;
      (** header generation; [None] when the file is missing or its
          header is absent/torn (then nothing in it is trusted) *)
  records : int array list;  (** the valid prefix, in append order *)
  good_bytes : int;  (** header + bytes holding that prefix *)
  torn_bytes : int;  (** trailing bytes after the last valid record *)
}

(** [scan path] reads the log (missing file = empty log) and splits it
    into the valid prefix and the torn tail.  Read-only. *)
val scan : string -> scan

(** [truncate_torn path s] cuts the file back to [s.good_bytes] and
    fsyncs it (no-op when nothing is torn). *)
val truncate_torn : string -> scan -> unit

(** [reset path ~generation] empties the log down to a fresh header
    stamped with [generation] (the segment its future records will apply
    to) and fsyncs it.  Called after the records were durably sealed. *)
val reset : string -> generation:int -> unit
