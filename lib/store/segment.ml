open Cfq_itembase
open Cfq_txdb

let magic = "CFQSEG01"
let version = 2

(* header field offsets, all inside page 0 *)
let h_version = 8
let h_page_size = 12
let h_tid_bytes = 16
let h_item_bytes = 20
let h_n_txs = 24
let h_n_pages = 32
let h_universe = 40
let h_generation = 48
let h_crc = 56
let header_bytes = 60

type t = {
  path : string;
  fd : Unix.file_descr;
  pm : Page_model.t;
  layout : Page_codec.layout;
  crcs : int array;
  sums : int array;
  universe : int;
  generation : int;
}

exception Bad_segment of string

let bad path fmt = Printf.ksprintf (fun m -> raise (Bad_segment (path ^ ": " ^ m))) fmt

let data_off t = t.pm.Page_model.page_size_bytes

let write_all fd b off len =
  let off = ref off and len = ref len in
  while !len > 0 do
    let w = Unix.write fd b !off !len in
    off := !off + w;
    len := !len - w
  done

let read_exact fd b off len path =
  let off = ref off and len = ref len in
  while !len > 0 do
    let r = Unix.read fd b !off !len in
    if r = 0 then bad path "unexpected end of file";
    off := !off + r;
    len := !len - r
  done

let set_u32 b off v = Bytes.set_int32_le b off (Int32.of_int v)
let get_u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF
let set_u64 b off v = Bytes.set_int64_le b off (Int64.of_int v)
let get_u64 b off = Int64.to_int (Bytes.get_int64_le b off)

(* fsync the directory holding [path] so a rename into it survives a
   crash; best-effort where directories cannot be opened or fsynced *)
let fsync_dir path =
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)

let write ?(page_model = Page_model.default) ?(generation = 0) path itemsets =
  Page_codec.check_model page_model;
  let ps = page_model.Page_model.page_size_bytes in
  if ps < header_bytes then
    invalid_arg "Cfq_store: page size too small for the segment header";
  let sizes = Array.map Itemset.cardinal itemsets in
  let l = Page_codec.layout page_model sizes in
  let n = Array.length itemsets in
  (* data region *)
  let data = Bytes.make (Page_codec.data_bytes l) '\000' in
  Array.iteri (fun tid items -> Page_codec.encode_tx l data ~tid items) itemsets;
  (* per-page raw CRCs and logical checksums *)
  let crcs = Array.init l.Page_codec.pages (fun p -> Crc32.sub data (p * ps) ps) in
  let sums = Array.make l.Page_codec.pages Tx_db.Checksum.seed in
  let universe = ref 0 in
  Array.iteri
    (fun tid items ->
      let p = l.Page_codec.page_of.(tid) in
      sums.(p) <- Tx_db.Checksum.add_tx sums.(p) (Transaction.make ~tid ~items);
      match Itemset.max_item items with
      | Some m -> if m + 1 > !universe then universe := m + 1
      | None -> ())
    itemsets;
  (* header page *)
  let header = Bytes.make ps '\000' in
  Bytes.blit_string magic 0 header 0 8;
  set_u32 header h_version version;
  set_u32 header h_page_size ps;
  set_u32 header h_tid_bytes page_model.Page_model.tid_bytes;
  set_u32 header h_item_bytes page_model.Page_model.item_bytes;
  set_u64 header h_n_txs n;
  set_u64 header h_n_pages l.Page_codec.pages;
  set_u64 header h_universe !universe;
  set_u64 header h_generation generation;
  set_u32 header h_crc (Crc32.sub header 0 h_crc);
  (* footer: sizes, raw crcs, logical sums, crc *)
  let footer = Bytes.create ((4 * n) + (4 * l.Page_codec.pages) + (8 * l.Page_codec.pages) + 4) in
  Array.iteri (fun i s -> set_u32 footer (4 * i) s) sizes;
  let o1 = 4 * n in
  Array.iteri (fun p c -> set_u32 footer (o1 + (4 * p)) c) crcs;
  let o2 = o1 + (4 * l.Page_codec.pages) in
  Array.iteri (fun p s -> set_u64 footer (o2 + (8 * p)) s) sums;
  let o3 = o2 + (8 * l.Page_codec.pages) in
  set_u32 footer o3 (Crc32.sub footer 0 o3);
  (* temp file + rename: a crash mid-write never clobbers the old segment *)
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      write_all fd header 0 ps;
      write_all fd data 0 (Bytes.length data);
      write_all fd footer 0 (Bytes.length footer);
      Unix.fsync fd);
  Unix.rename tmp path;
  (* make the rename itself durable: recovery's idempotence argument
     needs the new segment on disk before the WAL is reset after it *)
  fsync_dir path

(* ------------------------------------------------------------------ *)

let open_ path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  match
    let file_size = (Unix.fstat fd).Unix.st_size in
    if file_size < header_bytes then bad path "too small to hold a header";
    let head = Bytes.create header_bytes in
    read_exact fd head 0 header_bytes path;
    if Bytes.sub_string head 0 8 <> magic then bad path "bad magic";
    if get_u32 head h_version <> version then
      bad path "unsupported version %d" (get_u32 head h_version);
    if Crc32.sub head 0 h_crc <> get_u32 head h_crc then bad path "header CRC mismatch";
    let ps = get_u32 head h_page_size in
    let pm =
      Page_model.make ~page_size_bytes:ps ~tid_bytes:(get_u32 head h_tid_bytes)
        ~item_bytes:(get_u32 head h_item_bytes) ()
    in
    let n = get_u64 head h_n_txs in
    let n_pages = get_u64 head h_n_pages in
    let footer_off = ps + (n_pages * ps) in
    let footer_len = (4 * n) + (4 * n_pages) + (8 * n_pages) + 4 in
    if file_size <> footer_off + footer_len then
      bad path "truncated: %d bytes, expected %d" file_size (footer_off + footer_len);
    let footer = Bytes.create footer_len in
    ignore (Unix.lseek fd footer_off Unix.SEEK_SET);
    read_exact fd footer 0 footer_len path;
    let o3 = footer_len - 4 in
    if Crc32.sub footer 0 o3 <> get_u32 footer o3 then bad path "footer CRC mismatch";
    let sizes = Array.init n (fun i -> get_u32 footer (4 * i)) in
    let o1 = 4 * n in
    let crcs = Array.init n_pages (fun p -> get_u32 footer (o1 + (4 * p))) in
    let o2 = o1 + (4 * n_pages) in
    let sums = Array.init n_pages (fun p -> get_u64 footer (o2 + (8 * p))) in
    let layout = Page_codec.layout pm sizes in
    if layout.Page_codec.pages <> n_pages then
      bad path "footer page count %d contradicts layout %d" n_pages
        layout.Page_codec.pages;
    {
      path;
      fd;
      pm;
      layout;
      crcs;
      sums;
      universe = get_u64 head h_universe;
      generation = get_u64 head h_generation;
    }
  with
  | seg -> seg
  | exception e ->
      Unix.close fd;
      raise e

let close t = Unix.close t.fd

let read_all t =
  let l = t.layout in
  let n = Array.length l.Page_codec.sizes in
  let data = Bytes.create (Page_codec.data_bytes l) in
  ignore (Unix.lseek t.fd (data_off t) Unix.SEEK_SET);
  read_exact t.fd data 0 (Bytes.length data) t.path;
  Array.init n (fun tid ->
      (Page_codec.decode_tx l ~tid data ~at:l.Page_codec.offsets.(tid))
        .Transaction.items)
