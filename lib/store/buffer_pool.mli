(** A bounded buffer pool over a segment's data region.

    Holds up to [capacity] page frames.  Replacement is the clock (second
    chance) algorithm: a hit sets the frame's reference bit; the hand
    clears reference bits until it finds an unreferenced, unpinned frame
    to evict.  Frames are pinned for the duration of {!with_page}, so
    concurrent [scan_chunks] readers in other domains can never have a
    page they are decoding evicted under them; if every frame is pinned,
    the read bypasses the pool through a transient buffer rather than
    blocking (counted as a miss, no insertion).

    Every physical page load verifies the page's raw CRC-32 against the
    footer value and raises [Cfq_error.Error (Corrupt_page _)] on
    mismatch.  Hits, misses and evictions are recorded into the
    {!Cfq_txdb.Io_stats} given at creation.

    Thread safety: only the frame-table bookkeeping (lookup, victim
    choice, pin counts) runs under the pool mutex.  A miss claims its
    frame in a {e loading} state, then performs the disk read and CRC
    verification with the mutex released, on a private file descriptor —
    so misses from different domains read in parallel, and hits never
    wait behind a disk read.  Concurrent requests for a page being
    loaded wait for that one load rather than re-reading.  The caller's
    [f] runs outside the mutex on a pinned frame.

    Read fds are opened on demand (one at {!create}, growing with
    concurrent misses up to a small cap); each lazily opened fd is
    verified by (device, inode) to still name the segment the pool was
    built for, so a pool serving a segment that was since atomically
    replaced keeps reading its original (old, still-valid) file. *)

open Cfq_txdb

type t

(** [create ~path ~page_size ~n_pages ~data_off ~crcs ~capacity ~stats ()]
    serves pages [0 .. n_pages - 1], page [p] living at file offset
    [data_off + p * page_size] of the file at [path] (as it exists now —
    see the identity check above).  [capacity] is clamped to at least
    1. *)
val create :
  path:string ->
  page_size:int ->
  n_pages:int ->
  data_off:int ->
  crcs:int array ->
  capacity:int ->
  stats:Io_stats.t ->
  unit ->
  t

(** [with_page t page f] runs [f] on the page's frame bytes, pinned.  [f]
    must not retain or mutate the buffer. *)
val with_page : t -> int -> (bytes -> 'a) -> 'a

(** Close the pool's file descriptors.  Idempotent.  Callers must have
    quiesced readers first; a later {!with_page} miss fails with
    [Invalid_argument] rather than reading through a dead fd. *)
val close : t -> unit

val capacity : t -> int
val stats : t -> Io_stats.t

(** Frames currently holding a page (for tests and reports). *)
val resident : t -> int
