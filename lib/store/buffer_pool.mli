(** A bounded buffer pool over a segment's data region.

    Holds up to [capacity] page frames.  Replacement is the clock (second
    chance) algorithm: a hit sets the frame's reference bit; the hand
    clears reference bits until it finds an unreferenced, unpinned frame
    to evict.  Frames are pinned for the duration of {!with_page}, so
    concurrent [scan_chunks] readers in other domains can never have a
    page they are decoding evicted under them; if every frame is pinned,
    the read bypasses the pool through a transient buffer rather than
    blocking (counted as a miss, no insertion).

    Every physical page load verifies the page's raw CRC-32 against the
    footer value and raises [Cfq_error.Error (Corrupt_page _)] on
    mismatch.  Hits, misses and evictions are recorded into the
    {!Cfq_txdb.Io_stats} given at creation.

    Thread safety: frame lookup, load and replacement run under one
    mutex; the caller's [f] runs outside it (on a pinned frame). *)

open Cfq_txdb

type t

(** [create ~fd ~page_size ~n_pages ~data_off ~crcs ~capacity ~stats ()]
    serves pages [0 .. n_pages - 1], page [p] living at file offset
    [data_off + p * page_size] of [fd].  [capacity] is clamped to at
    least 1. *)
val create :
  fd:Unix.file_descr ->
  page_size:int ->
  n_pages:int ->
  data_off:int ->
  crcs:int array ->
  capacity:int ->
  stats:Io_stats.t ->
  unit ->
  t

(** [with_page t page f] runs [f] on the page's frame bytes, pinned.  [f]
    must not retain or mutate the buffer. *)
val with_page : t -> int -> (bytes -> 'a) -> 'a

val capacity : t -> int
val stats : t -> Io_stats.t

(** Frames currently holding a page (for tests and reports). *)
val resident : t -> int
