(** The persistent transaction store: sealed segment + ingestion WAL +
    buffer pool, surfaced as a {!Cfq_txdb.Tx_db.t}.

    A store at [PATH] is two files: the sealed segment [PATH] (see
    {!Segment}) and the append-only log [PATH.wal] (see {!Wal}).
    {!open_} runs recovery first — the WAL's torn tail (an interrupted
    group commit) is truncated, its valid records are folded into a fresh
    segment (temp file + atomic rename + directory fsync), and the log is
    emptied — so the visible database is always a fully sealed,
    checksummed segment.  Recovery is idempotent: the WAL header carries
    the segment generation its records apply to, the fold bumps that
    generation durably {e before} the WAL is reset, and a WAL whose
    generation doesn't match the live segment is discarded as already
    applied — a crash at any point during recovery or {!seal} never
    duplicates a committed transaction.

    {!db} is the seam: a [Tx_db.t] whose tuples are decoded on demand
    from 4 KB pages fetched through the bounded {!Buffer_pool}.  [Exec],
    [Counting.count_shared]'s chunked parallel scans, fault injection and
    [Tx_db.verify] all run unchanged against it, with identical answers,
    ccc counters and logical page charges as the in-memory backend; the
    pool's physical hit/miss/eviction counts accumulate in {!io}. *)

open Cfq_itembase
open Cfq_txdb

type t

type recovery = {
  replayed : int;  (** WAL records folded into the segment on open *)
  truncated_bytes : int;  (** torn tail bytes discarded *)
}

(** [create ?page_model path] makes a new empty store (overwriting any
    existing segment at [path]) and opens it. *)
val create :
  ?page_model:Page_model.t -> ?cache_pages:int -> ?group_commit:int -> string -> t

(** [open_ ?cache_pages path] recovers and opens an existing store.
    [cache_pages] bounds the buffer pool (default 1024 frames; clamped to
    at least 1).  Raises {!Segment.Bad_segment} on a damaged segment.

    [group_commit] batches WAL appends per fsync (default 64). *)
val open_ : ?cache_pages:int -> ?group_commit:int -> string -> t

(** [build ?page_model path txs] writes a sealed store in one shot
    (no WAL involved), without opening it. *)
val build : ?page_model:Page_model.t -> string -> Itemset.t array -> unit

(** [save_db path db] is {!build} over the transactions of an existing
    database (either backend); attribute tables are not stored — keep
    them next to the store (the CLI writes [PATH.info.csv]). *)
val save_db : ?page_model:Page_model.t -> string -> Tx_db.t -> unit

(** The current database view (sealed transactions only).  The handle is
    replaced by {!seal}: re-fetch it afterwards to see the new records.
    A handle obtained before a seal stays readable — it serves the
    pre-seal snapshot through the superseded segment, whose descriptors
    are kept open until {!close} — so in-flight scans survive a
    concurrent seal. *)
val db : t -> Tx_db.t

(** [view t] is a fresh [Tx_db] view over the current segment — same
    pool, same charges as {!db}, but a new handle that [t] does {e not}
    retain.  Use it when a [Gc.finalise] closing [t] must be attached to
    the database value: a finaliser on {!db}'s handle whose closure
    holds [t] never runs ([t.db] is that very value), leaking the
    store's descriptors. *)
val view : t -> Tx_db.t

(** {2 Ingestion} *)

(** [append_tx t items] appends one transaction to the WAL (group-commit
    batched).  It becomes visible in {!db} after the next {!seal} (or
    recovery on reopen).

    Durability window: the record is buffered in user space until the
    group reaches [group_commit] records (then written + fsynced), so a
    crash can lose up to [group_commit - 1] of the most recent appends.
    Call {!flush} (or {!seal}, which flushes first) at every point where
    that bound matters. *)
val append_tx : t -> Itemset.t -> unit

(** Force the WAL's buffered group to disk (one fsync).  After [flush]
    returns, every append so far survives a crash. *)
val flush : t -> unit

(** Fold all WAL records into a next-generation segment (atomic rewrite,
    durable before the WAL is reset — crash-idempotent), and reopen the
    database view.  The superseded segment stays open for pre-seal {!db}
    handles until {!close}.  Returns the number of transactions sealed
    in. *)
val seal : t -> int

(** What the most recent successful {!seal} on this handle folded in:
    the new segment generation, the transaction count visible before the
    seal, and the number of records sealed — the delta occupies tids
    [[si_base_txs, si_base_txs + si_sealed_txs)] of the post-seal {!db}
    (the segment packer is prefix-stable, so pre-seal tids keep their
    pages).  [None] until a seal with records has happened on this
    handle; live cache maintenance ({!Cfq_live}) reads it to charge
    delta-only I/O. *)
type seal_info = {
  si_generation : int;
  si_base_txs : int;
  si_sealed_txs : int;
}

val last_seal : t -> seal_info option

val close : t -> unit

(** {2 Introspection} *)

val size : t -> int
val pages : t -> int
val page_model : t -> Page_model.t

(** Item-universe size recorded in the segment header. *)
val universe_size : t -> int

(** Generation of the live sealed segment (bumped by every seal and
    WAL-folding recovery).  A sharded manifest records it per shard to
    detect a crash between shard seals and the manifest rewrite. *)
val generation : t -> int

(** Physical I/O of this store's buffer pool: pool hits / misses /
    evictions ({!Io_stats.pool_hits} etc.; misses = real page reads). *)
val io : t -> Io_stats.t

(** What recovery did at {!open_} time. *)
val last_recovery : t -> recovery

(** WAL group-commit counters: (records appended, fsyncs issued). *)
val wal_counters : t -> int * int

val cache_pages : t -> int
val path : t -> string

(** {2 Page-level export / verify seam}

    Positioned reads on the segment's own descriptor, deliberately
    bypassing the buffer pool (cached frames would mask on-disk rot).
    This is the seam the shard scrubber ({!Cfq_shard.Scrub}) builds on.
    Not safe to interleave with {!seal} on the same handle — both
    reposition the segment fd; run scrubs between seals. *)

type page_fault_kind =
  | Bad_crc  (** raw page bytes fail their CRC-32 *)
  | Bad_checksum  (** decoded transactions fail the logical page checksum *)

type page_fault = { pf_page : int; pf_kind : page_fault_kind }

val page_fault_kind_name : page_fault_kind -> string

(** [verify_pages ?throttle t] re-reads every data page fresh from disk and
    checks (1) the raw CRC-32 against the segment footer and (2) the
    logical {!Cfq_txdb.Tx_db.Checksum} of each page's decoded transactions.
    Returns the faults found in page order ([[]] = clean).  [throttle
    ~page] runs before each page read in pass 1 — the scrubber's I/O
    throttle hook. *)
val verify_pages : ?throttle:(page:int -> unit) -> t -> page_fault list

(** [read_page t p] is the raw bytes of data page [p], fresh from disk
    (no CRC check) — the export half of the seam. *)
val read_page : t -> int -> bytes

(** All sealed transactions, decoded from one raw segment read (bypassing
    the pool) — what anti-entropy repair copies from a healthy replica. *)
val read_all : t -> Itemset.t array
