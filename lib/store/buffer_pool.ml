open Cfq_txdb

type frame = {
  mutable page : int;  (* -1 = empty *)
  mutable pins : int;
  mutable referenced : bool;
  buf : bytes;
}

type t = {
  fd : Unix.file_descr;
  page_size : int;
  n_pages : int;
  data_off : int;
  crcs : int array;
  frames : frame array;
  slot_of : (int, int) Hashtbl.t;  (* page -> frame index *)
  mutable hand : int;
  stats : Io_stats.t;
  mutex : Mutex.t;
}

let create ~fd ~page_size ~n_pages ~data_off ~crcs ~capacity ~stats () =
  let capacity = max 1 capacity in
  {
    fd;
    page_size;
    n_pages;
    data_off;
    crcs;
    frames =
      Array.init capacity (fun _ ->
          { page = -1; pins = 0; referenced = false; buf = Bytes.create page_size });
    slot_of = Hashtbl.create (2 * capacity);
    hand = 0;
    stats;
    mutex = Mutex.create ();
  }

let capacity t = Array.length t.frames
let stats t = t.stats

let resident t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.slot_of in
  Mutex.unlock t.mutex;
  n

(* physical read of [page] into [buf]; caller holds the mutex (the single
   fd's seek+read must not interleave) *)
let read_page_into t page buf =
  if page < 0 || page >= t.n_pages then invalid_arg "Buffer_pool.with_page";
  ignore (Unix.lseek t.fd (t.data_off + (page * t.page_size)) Unix.SEEK_SET);
  let off = ref 0 in
  while !off < t.page_size do
    let r = Unix.read t.fd buf !off (t.page_size - !off) in
    if r = 0 then
      Cfq_error.raise_error (Cfq_error.Corrupt_page { page })
    else off := !off + r
  done;
  if Crc32.bytes buf <> t.crcs.(page) then
    Cfq_error.raise_error (Cfq_error.Corrupt_page { page })

(* clock sweep for an evictable frame: skip pinned frames, give referenced
   frames a second chance.  [None] when every frame is pinned. *)
let find_victim t =
  let n = Array.length t.frames in
  let rec go steps =
    if steps > 2 * n then None
    else begin
      let slot = t.hand in
      let f = t.frames.(slot) in
      t.hand <- (t.hand + 1) mod n;
      if f.pins > 0 then go (steps + 1)
      else if f.referenced then begin
        f.referenced <- false;
        go (steps + 1)
      end
      else Some slot
    end
  in
  go 0

let unpin t fr =
  Mutex.lock t.mutex;
  fr.pins <- fr.pins - 1;
  Mutex.unlock t.mutex

let with_page t page f =
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.slot_of page with
  | Some slot ->
      let fr = t.frames.(slot) in
      Io_stats.record_pool_hit t.stats;
      fr.referenced <- true;
      fr.pins <- fr.pins + 1;
      Mutex.unlock t.mutex;
      Fun.protect ~finally:(fun () -> unpin t fr) (fun () -> f fr.buf)
  | None -> (
      Io_stats.record_pool_miss t.stats;
      match find_victim t with
      | Some slot -> (
          let fr = t.frames.(slot) in
          if fr.page >= 0 then begin
            Hashtbl.remove t.slot_of fr.page;
            Io_stats.record_pool_eviction t.stats;
            fr.page <- -1
          end;
          match read_page_into t page fr.buf with
          | () ->
              fr.page <- page;
              fr.referenced <- true;
              fr.pins <- fr.pins + 1;
              Hashtbl.replace t.slot_of page slot;
              Mutex.unlock t.mutex;
              Fun.protect ~finally:(fun () -> unpin t fr) (fun () -> f fr.buf)
          | exception e ->
              Mutex.unlock t.mutex;
              raise e)
      | None ->
          (* every frame pinned by concurrent readers: serve this read from
             a transient buffer instead of blocking the scan *)
          let buf = Bytes.create t.page_size in
          (match read_page_into t page buf with
          | () -> Mutex.unlock t.mutex
          | exception e ->
              Mutex.unlock t.mutex;
              raise e);
          f buf)
