open Cfq_txdb

type frame = {
  mutable page : int;  (* -1 = empty *)
  mutable pins : int;
  mutable referenced : bool;
  mutable loading : bool;  (* claimed, disk read in flight off-mutex *)
  buf : bytes;
}

type t = {
  path : string;
  identity : int * int;  (* (st_dev, st_ino) of the segment at create *)
  page_size : int;
  n_pages : int;
  data_off : int;
  crcs : int array;
  frames : frame array;
  slot_of : (int, int) Hashtbl.t;  (* page -> frame index *)
  mutable hand : int;
  stats : Io_stats.t;
  mutex : Mutex.t;
  loaded : Condition.t;  (* signalled when a loading frame settles *)
  fd_free : Condition.t;  (* signalled when a read fd is returned *)
  mutable free_fds : Unix.file_descr list;
  mutable n_fds : int;  (* opened fds, free or borrowed *)
  max_fds : int;
  mutable closed : bool;
}

let create ~path ~page_size ~n_pages ~data_off ~crcs ~capacity ~stats () =
  let capacity = max 1 capacity in
  let fd0 = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  let st = Unix.fstat fd0 in
  {
    path;
    identity = (st.Unix.st_dev, st.Unix.st_ino);
    page_size;
    n_pages;
    data_off;
    crcs;
    frames =
      Array.init capacity (fun _ ->
          {
            page = -1;
            pins = 0;
            referenced = false;
            loading = false;
            buf = Bytes.create page_size;
          });
    slot_of = Hashtbl.create (2 * capacity);
    hand = 0;
    stats;
    mutex = Mutex.create ();
    loaded = Condition.create ();
    fd_free = Condition.create ();
    free_fds = [ fd0 ];
    n_fds = 1;
    max_fds = max 2 (min 16 (Domain.recommended_domain_count ()));
    closed = false;
  }

let capacity t = Array.length t.frames
let stats t = t.stats

let resident t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.slot_of in
  Mutex.unlock t.mutex;
  n

(* open one more read fd — ONLY if [path] still names the segment this
   pool was built for (it may have been atomically replaced by a seal);
   a stale pool keeps serving through its original fds instead *)
let try_grow t =
  match Unix.openfile t.path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> None
  | fd ->
      let st = Unix.fstat fd in
      if (st.Unix.st_dev, st.Unix.st_ino) = t.identity then Some fd
      else begin
        Unix.close fd;
        None
      end

(* borrow a private read fd; caller holds the mutex.  Concurrent misses
   grow the fd count on demand up to [max_fds]; beyond that (or when the
   segment was renamed over) they wait — fds return as soon as the read
   completes. *)
let rec borrow_fd t =
  if t.closed then invalid_arg "Buffer_pool: closed";
  match t.free_fds with
  | fd :: rest ->
      t.free_fds <- rest;
      fd
  | [] -> (
      match if t.n_fds < t.max_fds then try_grow t else None with
      | Some fd ->
          t.n_fds <- t.n_fds + 1;
          fd
      | None ->
          Condition.wait t.fd_free t.mutex;
          borrow_fd t)

let return_fd t fd =
  Mutex.lock t.mutex;
  if t.closed then begin
    (* the pool was closed while this read was in flight *)
    t.n_fds <- t.n_fds - 1;
    try Unix.close fd with Unix.Unix_error _ -> ()
  end
  else begin
    t.free_fds <- fd :: t.free_fds;
    Condition.signal t.fd_free
  end;
  Mutex.unlock t.mutex

(* physical read + CRC verify on a private fd: no pool lock held *)
let read_page t fd page buf =
  ignore (Unix.lseek fd (t.data_off + (page * t.page_size)) Unix.SEEK_SET);
  let off = ref 0 in
  while !off < t.page_size do
    let r = Unix.read fd buf !off (t.page_size - !off) in
    if r = 0 then Cfq_error.raise_error (Cfq_error.Corrupt_page { page })
    else off := !off + r
  done;
  if Crc32.bytes buf <> t.crcs.(page) then
    Cfq_error.raise_error (Cfq_error.Corrupt_page { page })

(* borrow an fd (mutex held on entry), read [page] with the mutex
   released, return the fd.  The mutex is released on every exit path. *)
let read_page_unlocked t page buf =
  match borrow_fd t with
  | exception e ->
      Mutex.unlock t.mutex;
      raise e
  | fd ->
      Mutex.unlock t.mutex;
      Fun.protect
        ~finally:(fun () -> return_fd t fd)
        (fun () -> read_page t fd page buf)

(* clock sweep for an evictable frame: skip pinned frames, give referenced
   frames a second chance.  [None] when every frame is pinned. *)
let find_victim t =
  let n = Array.length t.frames in
  let rec go steps =
    if steps > 2 * n then None
    else begin
      let slot = t.hand in
      let f = t.frames.(slot) in
      t.hand <- (t.hand + 1) mod n;
      if f.pins > 0 then go (steps + 1)
      else if f.referenced then begin
        f.referenced <- false;
        go (steps + 1)
      end
      else Some slot
    end
  in
  go 0

let unpin t fr =
  Mutex.lock t.mutex;
  fr.pins <- fr.pins - 1;
  Mutex.unlock t.mutex

let rec with_page t page f =
  if page < 0 || page >= t.n_pages then invalid_arg "Buffer_pool.with_page";
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.slot_of page with
  | Some slot ->
      let fr = t.frames.(slot) in
      if fr.loading then begin
        (* another reader is fetching this page: wait for it to settle
           (loaded or rolled back), then look the page up again *)
        Condition.wait t.loaded t.mutex;
        Mutex.unlock t.mutex;
        with_page t page f
      end
      else begin
        Io_stats.record_pool_hit t.stats;
        fr.referenced <- true;
        fr.pins <- fr.pins + 1;
        Mutex.unlock t.mutex;
        Fun.protect ~finally:(fun () -> unpin t fr) (fun () -> f fr.buf)
      end
  | None -> (
      Io_stats.record_pool_miss t.stats;
      match find_victim t with
      | Some slot -> (
          let fr = t.frames.(slot) in
          if fr.page >= 0 then begin
            Hashtbl.remove t.slot_of fr.page;
            Io_stats.record_pool_eviction t.stats
          end;
          (* claim the frame before dropping the lock: [loading] plus a
             pin keep it off the clock, and concurrent readers of the
             same page queue on [loaded] instead of double-reading *)
          fr.page <- page;
          fr.loading <- true;
          fr.referenced <- true;
          fr.pins <- 1;
          Hashtbl.replace t.slot_of page slot;
          match read_page_unlocked t page fr.buf with
          | () ->
              Mutex.lock t.mutex;
              fr.loading <- false;
              Condition.broadcast t.loaded;
              Mutex.unlock t.mutex;
              Fun.protect ~finally:(fun () -> unpin t fr) (fun () -> f fr.buf)
          | exception e ->
              (* read_page_unlocked released the mutex whatever happened *)
              Mutex.lock t.mutex;
              Hashtbl.remove t.slot_of page;
              fr.page <- -1;
              fr.loading <- false;
              fr.referenced <- false;
              fr.pins <- 0;
              Condition.broadcast t.loaded;
              Mutex.unlock t.mutex;
              raise e)
      | None ->
          (* every frame pinned by concurrent readers: serve this read
             from a transient buffer instead of blocking the scan *)
          let buf = Bytes.create t.page_size in
          read_page_unlocked t page buf;
          f buf)

let close t =
  Mutex.lock t.mutex;
  if not t.closed then begin
    t.closed <- true;
    List.iter
      (fun fd ->
        t.n_fds <- t.n_fds - 1;
        try Unix.close fd with Unix.Unix_error _ -> ())
      t.free_fds;
    t.free_fds <- [];
    (* wake fd waiters so they fail with "closed" instead of hanging *)
    Condition.broadcast t.fd_free
  end;
  Mutex.unlock t.mutex
