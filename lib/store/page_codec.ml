open Cfq_itembase
open Cfq_txdb

type layout = {
  pm : Page_model.t;
  sizes : int array;
  offsets : int array;
  page_of : int array;
  pages : int;
}

let check_model (pm : Page_model.t) =
  if pm.Page_model.tid_bytes < 8 || pm.Page_model.item_bytes < 4 then
    invalid_arg
      "Cfq_store: page model needs tid_bytes >= 8 and item_bytes >= 4 to encode \
       records"

let layout pm sizes =
  check_model pm;
  let page_of, pages = Page_model.assign pm sizes in
  let ps = pm.Page_model.page_size_bytes in
  let offsets = Array.make (Array.length sizes) 0 in
  (* replay of Page_model.assign, tracking byte offsets *)
  let cur = ref 0 and free = ref 0 in
  Array.iteri
    (fun i n ->
      let b = Page_model.tx_bytes pm n in
      if b > ps then begin
        offsets.(i) <- !cur * ps;
        cur := !cur + ((b + ps - 1) / ps);
        free := 0
      end
      else if b <= !free then begin
        offsets.(i) <- (!cur * ps) - !free;
        free := !free - b
      end
      else begin
        offsets.(i) <- !cur * ps;
        incr cur;
        free := ps - b
      end)
    sizes;
  assert (!cur = pages);
  { pm; sizes; offsets; page_of; pages }

let tx_bytes l i = Page_model.tx_bytes l.pm l.sizes.(i)
let data_bytes l = l.pages * l.pm.Page_model.page_size_bytes

let encode_tx l buf ~tid items =
  let off = l.offsets.(tid) in
  Bytes.set_int32_le buf off (Int32.of_int tid);
  Bytes.set_int32_le buf (off + 4) (Int32.of_int (Itemset.cardinal items));
  let ib = l.pm.Page_model.item_bytes in
  let base = off + l.pm.Page_model.tid_bytes in
  let k = ref 0 in
  Itemset.iter
    (fun it ->
      Bytes.set_int32_le buf (base + (!k * ib)) (Int32.of_int it);
      incr k)
    items

let decode_tx l ~tid buf ~at =
  let corrupt () =
    Cfq_error.raise_error (Cfq_error.Corrupt_page { page = l.page_of.(tid) })
  in
  let stored_tid = Int32.to_int (Bytes.get_int32_le buf at) in
  let n = Int32.to_int (Bytes.get_int32_le buf (at + 4)) in
  if stored_tid <> tid || n <> l.sizes.(tid) then corrupt ();
  let ib = l.pm.Page_model.item_bytes in
  let base = at + l.pm.Page_model.tid_bytes in
  let items =
    Array.init n (fun k -> Int32.to_int (Bytes.get_int32_le buf (base + (k * ib))))
  in
  match Itemset.of_sorted_array items with
  | set -> Transaction.make ~tid ~items:set
  | exception Invalid_argument _ -> corrupt ()
