(* cfq — run constrained frequent set queries against synthetic market-basket
   data from the command line.

     cfq explain 'sum(S.Price) <= sum(T.Price)'
     cfq run --tx 20000 --items 500 '{(S,T) | freq(S) >= 0.01 & S.Type = T.Type}'
     cfq run --strategy apriori+ --pairs 10 'max(S.Price) <= min(T.Price)'
     cfq gen --tx 1000 --items 100 *)

open Cmdliner
open Cfq_quest
open Cfq_core

(* ------------------------------------------------------------------ *)
(* shared options *)

let verbose_arg =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ] ~doc:"Enable debug logging of the engines.")

let setup_logs verbose =
  if verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Debug)
  end

let tx_arg =
  Arg.(value & opt int 10_000 & info [ "tx" ] ~docv:"N" ~doc:"Number of transactions.")

let items_arg =
  Arg.(value & opt int 500 & info [ "items" ] ~docv:"N" ~doc:"Item universe size.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Generator seed.")

let types_arg =
  Arg.(
    value & opt int 20
    & info [ "types" ] ~docv:"N" ~doc:"Number of distinct item types (Type attribute).")

let strategy_arg =
  let strategies =
    [
      ("apriori+", Plan.Apriori_plus);
      ("cap", Plan.Cap_one_var);
      ("optimized", Plan.Optimized);
      ("sequential", Plan.Sequential_t_first);
      ("fm", Plan.Full_materialize);
    ]
  in
  Arg.(
    value
    & opt (enum strategies) Plan.Optimized
    & info [ "strategy" ] ~docv:"STRATEGY"
        ~doc:"Execution strategy: $(b,apriori+), $(b,cap) (1-var pushing only), \
              $(b,optimized), $(b,sequential) (T lattice first, exact bounds) or \
              $(b,fm) (full materialization; tiny universes only).")

let query_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"QUERY" ~doc:"CFQ in the textual syntax.")

let pairs_arg =
  Arg.(
    value & opt int 0
    & info [ "pairs" ] ~docv:"N" ~doc:"Print the first N answer pairs.")

let kernel_arg =
  Arg.(
    value
    & opt (enum Cfq_mining.Counting.all_kernels) Cfq_mining.Counting.Trie
    & info [ "kernel" ] ~docv:"KERNEL"
        ~doc:
          "Support-counting kernel: $(b,trie) (the default scan-per-level \
           path), $(b,direct2) (direct level-2 count arrays), $(b,vertical) \
           (tid-bitmap switchover) or $(b,auto) (adaptive cost model with \
           shrinking projections).  Answers are identical for every kernel.")

let no_calibrate_arg =
  Arg.(
    value & flag
    & info [ "no-calibrate" ]
        ~doc:
          "Freeze the Auto planner's cost model at its fixed priors instead \
           of feeding measured pass timings back into it.  Only affects \
           kernel selection timing, never answers.")

let condense_arg =
  Arg.(
    value & opt bool true
    & info [ "condense" ] ~docv:"BOOL"
        ~doc:
          "Store the service's cached side collections closed-set condensed \
           and its cached answers index-packed, so more distinct queries fit \
           the same cache budget (see $(b,doc/CONDENSED.md)).  Answers are \
           byte-identical either way; the condensation ratio is printed at \
           shutdown.")

let mine_domains_arg ~default_doc ~default =
  Arg.(
    value & opt int default
    & info [ "mine-domains" ] ~docv:"N"
        ~doc:
          ("Domains each counting scan fans out over; 1 counts sequentially. "
         ^ default_doc))

let data_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "data" ] ~docv:"FILE" ~doc:"Load transactions from a FIMI file instead of generating.")

let iteminfo_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "iteminfo" ] ~docv:"FILE"
        ~doc:"Load the itemInfo table from a CSV file (header: item,Attr[,Attr:cat...]). \
              Requires $(b,--data).")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE" ~doc:"Also write the transactions to a FIMI file.")

let info_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "info-out" ] ~docv:"FILE" ~doc:"Also write the itemInfo table to a CSV file.")

(* ------------------------------------------------------------------ *)

let build_data ~tx ~items ~types ~seed =
  let rng = Splitmix.create ~seed:(Int64.of_int seed) in
  let params = { (Quest_gen.scaled tx) with Quest_gen.n_items = items } in
  let db = Quest_gen.generate rng params in
  let prices = Item_gen.uniform_prices rng ~n:items ~lo:0. ~hi:1000. in
  let type_col = Array.init items (fun _ -> float_of_int (Splitmix.int rng types)) in
  let info = Item_gen.item_info ~prices ~types:type_col () in
  (db, info)

let parse_query text =
  match Parser.parse_result text with
  | Ok q -> Ok q
  | Error msg -> Error (`Msg ("query: " ^ msg))

let load_or_generate ~tx ~items ~types ~seed ~data ~iteminfo =
  match data with
  | None -> Ok (build_data ~tx ~items ~types ~seed)
  | Some path -> (
      match Cfq_data.Fimi.read path with
      | exception Cfq_data.Fimi.Bad_format msg -> Error (`Msg msg)
      | db -> (
          let universe_size =
            match Cfq_data.Fimi.max_item db with Some m -> m + 1 | None -> 1
          in
          match iteminfo with
          | None ->
              (* no attribute table: constraints over Item still work *)
              Ok (db, Cfq_itembase.Item_info.create ~universe_size)
          | Some info_path -> (
              match Cfq_data.Item_csv.read info_path ~universe_size with
              | exception Cfq_data.Item_csv.Bad_format msg -> Error (`Msg msg)
              | info -> Ok (db, info))))

let run_cmd verbose tx items types seed strategy mine_domains kernel
    no_calibrate n_pairs data iteminfo pairs_out text =
  setup_logs verbose;
  match parse_query text with
  | Error e -> Error e
  | Ok q -> (
      match load_or_generate ~tx ~items ~types ~seed ~data ~iteminfo with
      | Error e -> Error e
      | Ok (db, info) ->
      (match Validate.check ~s_info:info ~t_info:info q with
      | Ok () -> ()
      | Error errors ->
          List.iter
            (fun e -> Format.eprintf "error: %a@." Validate.pp_error e)
            errors;
          exit 1);
      Printf.printf "database: %d transactions (%d pages)\n"
        (Cfq_txdb.Tx_db.size db) (Cfq_txdb.Tx_db.pages db);
      Printf.printf "query: %s\n\n" (Query.to_string q);
      let ctx = Exec.context db info in
      let collect = n_pairs > 0 || pairs_out <> None in
      let mine_domains =
        if mine_domains = 0 then Domain.recommended_domain_count ()
        else max 1 mine_domains
      in
      let par = Cfq_mining.Counting.par mine_domains in
      let kernel =
        if kernel = Cfq_mining.Counting.Trie then None else Some kernel
      in
      let r =
        Exec.run ~strategy ~collect_pairs:collect ~par ?kernel
          ~calibrate:(not no_calibrate) ctx q
      in
      print_endline (Explain.result_to_string r);
      if n_pairs > 0 then begin
        Printf.printf "\nfirst %d pairs:\n" n_pairs;
        List.iteri
          (fun i (s, t) ->
            if i < n_pairs then
              Printf.printf "  %s => %s\n"
                (Cfq_itembase.Itemset.to_string s.Cfq_mining.Frequent.set)
                (Cfq_itembase.Itemset.to_string t.Cfq_mining.Frequent.set))
          r.Exec.pairs
      end;
      (match pairs_out with
      | Some path ->
          Cfq_data.Result_csv.write_pairs path r.Exec.pairs;
          Printf.printf "wrote %d pairs to %s\n" (List.length r.Exec.pairs) path
      | None -> ());
      Ok ())

let advise_cmd tx items types seed data iteminfo text =
  match parse_query text with
  | Error e -> Error e
  | Ok q -> (
      match load_or_generate ~tx ~items ~types ~seed ~data ~iteminfo with
      | Error e -> Error e
      | Ok (db, info) ->
          let estimate = Advisor.advise (Exec.context db info) q in
          Format.printf "%a@." Advisor.pp estimate;
          Ok ())

let pairs_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "pairs-out" ] ~docv:"FILE" ~doc:"Write the answer pairs to a CSV file.")

let rules_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE" ~doc:"Write the rules to a CSV file.")

let rules_cmd tx items types seed data iteminfo min_conf min_lift top rules_out text =
  match parse_query text with
  | Error e -> Error e
  | Ok q -> (
      match load_or_generate ~tx ~items ~types ~seed ~data ~iteminfo with
      | Error e -> Error e
      | Ok (db, info) ->
          let rules, r =
            Cfq_rules.Rule.mine ~min_confidence:min_conf ~min_lift (Exec.context db info) q
          in
          Printf.printf "%d pairs -> %d rules (conf >= %.2f, lift >= %.2f)\n"
            r.Exec.pair_stats.Pairs.n_pairs (List.length rules) min_conf min_lift;
          List.iteri
            (fun i rule ->
              if i < top then Format.printf "%a@." Cfq_rules.Rule.pp rule)
            rules;
          (match rules_out with
          | Some path ->
              Cfq_data.Result_csv.write_rules path rules;
              Printf.printf "wrote %d rules to %s\n" (List.length rules) path
          | None -> ());
          Ok ())

let explain_cmd text =
  match parse_query text with
  | Error e -> Error e
  | Ok q ->
      let plan = Optimizer.plan ~nonneg:true q in
      print_endline (Explain.plan_to_string q plan);
      Ok ()

let domains_arg =
  Arg.(
    value & opt int 2
    & info [ "domains" ] ~docv:"N" ~doc:"Worker domains of the query service.")

let cache_mb_arg =
  Arg.(
    value & opt int 64
    & info [ "cache-mb" ] ~docv:"MB" ~doc:"Cache memory budget in MiB.")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECONDS" ~doc:"Per-query wall-clock deadline.")

let repeat_arg =
  Arg.(
    value & opt int 1
    & info [ "repeat" ] ~docv:"N"
        ~doc:"Replay the batch N times (passes after the first serve from the warm cache).")

let fault_transient_arg =
  Arg.(
    value & opt float 0.
    & info [ "fault-transient" ] ~docv:"P"
        ~doc:"Inject transient page-read errors with probability P per page.")

let fault_corrupt_arg =
  Arg.(
    value & opt float 0.
    & info [ "fault-corrupt" ] ~docv:"P"
        ~doc:"Tamper pages with probability P per read (bounded; detected by \
              checksums).")

let fault_spike_arg =
  Arg.(
    value & opt float 0.
    & info [ "fault-spike" ] ~docv:"P" ~doc:"Inject a latency spike per scan with probability P.")

let fault_seed_arg =
  Arg.(
    value & opt int 0x5EED
    & info [ "fault-seed" ] ~docv:"SEED" ~doc:"Seed of the deterministic fault stream.")

let retries_arg =
  Arg.(
    value & opt int 2
    & info [ "retries" ] ~docv:"N" ~doc:"Max retries of a transiently failed query.")

let breaker_threshold_arg =
  Arg.(
    value & opt int 5
    & info [ "breaker-threshold" ] ~docv:"N"
        ~doc:"Consecutive failures that trip the circuit breaker (0 disables).")

let batch_file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Batch file: one CFQ per line; '#' comments.")

let live_arg =
  Arg.(
    value & flag
    & info [ "live" ]
        ~doc:
          "Keep the answer cache live across seals: attach the backend as an \
           ingestion source so sealed appends are folded into cached answers \
           by incremental maintenance instead of cold-starting (see \
           doc/LIVE.md).")

let ingest_arg =
  Arg.(
    value & opt_all file []
    & info [ "ingest" ] ~docv:"FILE"
        ~doc:
          "FIMI file of transactions appended and sealed between replay \
           passes — one seal per file, in the order given (repeatable).  \
           Implies $(b,--live); the pass count grows past $(b,--repeat) if \
           needed so the batch replays once per epoch.")

(* replay the batch [repeat] times; between passes, consume the next
   [--ingest] file (append every transaction, then seal + maintain) so the
   following pass exercises the promoted cache at the new epoch. *)
let run_live_passes service ~repeat ~ingest file =
  let total = max repeat (List.length ingest + 1) in
  let live = Cfq_service.Service.live_source service <> None in
  let pending = ref ingest in
  let seal_next () =
    match !pending with
    | [] -> Ok ()
    | path :: rest -> (
        pending := rest;
        match Cfq_data.Fimi.read path with
        | exception Cfq_data.Fimi.Bad_format msg -> Error (`Msg msg)
        | src ->
            for i = 0 to Cfq_txdb.Tx_db.size src - 1 do
              Cfq_service.Service.ingest service
                (Cfq_txdb.Tx_db.get src i).Cfq_txdb.Transaction.items
            done;
            Printf.printf "=== ingest %s: %d transactions ===\n" path
              (Cfq_txdb.Tx_db.size src);
            (match Cfq_service.Service.seal_live service with
            | None ->
                print_endline "nothing to seal: the file holds no transactions\n"
            | Some lv ->
                let {
                  Cfq_service.Service.lv_epoch;
                  lv_sealed;
                  lv_sides_promoted;
                  lv_sides_evicted;
                  lv_answers_promoted;
                  lv_answers_evicted;
                  lv_recounted;
                  lv_old_scans;
                  lv_scans;
                  lv_pages_read;
                } =
                  lv
                in
                Printf.printf
                  "epoch %d: sealed %d transactions; %d sides + %d answers \
                   promoted, %d + %d evicted; %d candidates recounted (%d \
                   old-db scans, %d maintenance scans, %d pages)\n\n"
                  lv_epoch lv_sealed lv_sides_promoted lv_answers_promoted
                  lv_sides_evicted lv_answers_evicted lv_recounted lv_old_scans
                  lv_scans lv_pages_read);
            Ok ())
  in
  let rec passes n =
    if n > total then Ok ()
    else begin
      if total > 1 then
        if live then
          Printf.printf "=== pass %d/%d (epoch %d) ===\n" n total
            (Cfq_service.Service.epoch service)
        else Printf.printf "=== pass %d/%d ===\n" n total;
      match Cfq_service.Batch.run_file service file with
      | Error msg -> Error (`Msg msg)
      | Ok report -> (
          print_endline report;
          if n = total then Ok ()
          else
            match seal_next () with
            | Error e -> Error e
            | Ok () -> passes (n + 1))
    end
  in
  passes 1

(* the shutdown line the condense knob promises: how many raw-equivalent
   bytes the cache stream condensed down to, and what lookups paid back *)
let print_condensation service =
  let m = Cfq_service.Service.metrics service in
  let raw = m.Cfq_service.Metrics.cond_raw_bytes in
  let stored = m.Cfq_service.Metrics.cond_bytes in
  if raw > 0 then
    Printf.printf
      "condensation: %d raw -> %d stored bytes (ratio %.2f), %d \
       reconstructions\n"
      raw stored
      (float_of_int raw /. float_of_int (max 1 stored))
      m.Cfq_service.Metrics.reconstructions

let serve_cmd verbose tx items types seed data iteminfo domains mine_domains
    kernel no_calibrate condense cache_mb deadline repeat fault_transient
    fault_corrupt fault_spike fault_seed retries breaker_threshold live ingest
    file =
  setup_logs verbose;
  match load_or_generate ~tx ~items ~types ~seed ~data ~iteminfo with
  | Error e -> Error e
  | Ok (db, info) ->
      Printf.printf "database: %d transactions (%d pages)\n\n"
        (Cfq_txdb.Tx_db.size db) (Cfq_txdb.Tx_db.pages db);
      let fault_config =
        {
          Cfq_txdb.Fault.default_config with
          Cfq_txdb.Fault.transient_p = fault_transient;
          corrupt_p = fault_corrupt;
          spike_p = fault_spike;
          seed = Int64.of_int fault_seed;
        }
      in
      if Cfq_txdb.Fault.is_active fault_config then begin
        Cfq_txdb.Tx_db.set_faults db (Some (Cfq_txdb.Fault.create fault_config));
        Printf.printf
          "fault injection: transient-p=%g corrupt-p=%g spike-p=%g seed=%d\n\n"
          fault_transient fault_corrupt fault_spike fault_seed
      end;
      let config =
        {
          Cfq_service.Service.default_config with
          Cfq_service.Service.domains;
          mine_domains;
          cache_budget = cache_mb * 1024 * 1024;
          default_deadline = deadline;
          retries;
          breaker_threshold;
          kernel;
          calibrate = not no_calibrate;
          condense;
        }
      in
      let service = Cfq_service.Service.create ~config (Exec.context db info) in
      if live || ingest <> [] then begin
        let sets =
          Array.init (Cfq_txdb.Tx_db.size db) (fun i ->
              (Cfq_txdb.Tx_db.get db i).Cfq_txdb.Transaction.items)
        in
        Cfq_service.Service.attach_source service (Cfq_live.Source.of_mem sets)
      end;
      let result = run_live_passes service ~repeat ~ingest file in
      print_condensation service;
      Cfq_service.Service.shutdown service;
      result

(* ------------------------------------------------------------------ *)
(* persistent store *)

let store_path_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "store" ] ~docv:"PATH"
        ~doc:"Store file (the sealed segment; the ingestion log lives at $(i,PATH).wal \
              and the itemInfo table at $(i,PATH).info.csv).")

let cache_pages_arg =
  Arg.(
    value & opt int 1024
    & info [ "cache-pages" ] ~docv:"N"
        ~doc:"Buffer-pool capacity in pages; below the database size the pool \
              evicts under pressure.  For a sharded store this bounds $(i,each) \
              shard's pool.")

let shards_arg =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:"Partition the store into N shards under one manifest; mining \
              distributes each counting pass over the shards and merges the \
              partial supports (answers are identical to a single store).  On \
              $(b,serve), N > 1 against a plain segment splits it into a \
              sharded twin at $(i,PATH).sharded first.")

let replicas_arg =
  Arg.(
    value & opt int 1
    & info [ "replicas" ] ~docv:"R"
        ~doc:"Keep R physical replicas of every shard under the manifest \
              (replica 0 at $(i,PATH.shardK), siblings at \
              $(i,PATH.shardK.rJ)).  Reads are served by one replica and fail \
              over to a healthy sibling on I/O faults; ingestion mirrors to \
              all of them with a write quorum.  R > 1 implies a sharded \
              store.")

let fault_shard_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fault-shard" ] ~docv:"K"
        ~doc:"Pin the fault injector to shard K of a sharded store: only that \
              shard's slice of each scan is faulted, and only its breaker \
              should trip.")

let fault_replica_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fault-replica" ] ~docv:"K:J"
        ~doc:"Pin the fault injector to replica J of shard K: its sibling \
              replicas stay clean, so reads fail over around the faulted one \
              and answers are unchanged.")

let verify_arg =
  Arg.(
    value & flag
    & info [ "verify" ]
        ~doc:"Before serving, run every query of the batch on both the on-disk \
              and an in-memory backend and require identical answers and \
              counters.")

let store_info store_path universe_size =
  let info_path = store_path ^ ".info.csv" in
  if Sys.file_exists info_path then
    Cfq_data.Item_csv.read info_path ~universe_size
  else Cfq_itembase.Item_info.create ~universe_size

let store_build_cmd verbose tx items types seed data iteminfo store_path shards
    replicas =
  setup_logs verbose;
  match load_or_generate ~tx ~items ~types ~seed ~data ~iteminfo with
  | Error e -> Error e
  | Ok (db, info) ->
      Cfq_data.Item_csv.write (store_path ^ ".info.csv") info;
      if shards > 1 || replicas > 1 then begin
        let sets =
          Array.init (Cfq_txdb.Tx_db.size db) (fun i ->
              (Cfq_txdb.Tx_db.get db i).Cfq_txdb.Transaction.items)
        in
        Cfq_shard.Sharded.build ~shards ~replicas store_path sets;
        let sh = Cfq_shard.Sharded.open_ store_path in
        let m = Cfq_shard.Sharded.manifest sh in
        Printf.printf
          "store: %s (sharded)\nshards: %d (%s partition)%s\ntransactions: %d\n\
           pages (4K): %d\nitem universe: %d\n"
          store_path
          (Cfq_shard.Sharded.shard_count sh)
          (Cfq_shard.Manifest.partition_name m.Cfq_shard.Manifest.partition)
          (if replicas > 1 then Printf.sprintf "\nreplicas: %d per shard" replicas
           else "")
          (Cfq_shard.Sharded.size sh)
          (Cfq_shard.Sharded.pages sh)
          (Cfq_shard.Sharded.universe_size sh);
        Array.iteri
          (fun k st ->
            Printf.printf "shard %d: %s (%d transactions, %d pages)\n" k
              (Cfq_store.Store.path st) (Cfq_store.Store.size st)
              (Cfq_store.Store.pages st))
          (Cfq_shard.Sharded.stores sh);
        Cfq_shard.Sharded.close sh
      end
      else begin
        Cfq_store.Store.save_db store_path db;
        let store = Cfq_store.Store.open_ store_path in
        Printf.printf "store: %s\ntransactions: %d\npages (4K): %d\nitem universe: %d\n"
          store_path (Cfq_store.Store.size store)
          (Cfq_store.Store.pages store)
          (Cfq_store.Store.universe_size store);
        Cfq_store.Store.close store
      end;
      Ok ()

(* replay the batch on the (possibly sharded) store and on a plain
   in-memory copy of the same transactions: answers and ccc counters
   must be identical *)
let verify_backends db info file =
  match Cfq_service.Batch.load file with
  | Error msg -> Error (`Msg msg)
  | Ok lines -> (
      let disk_ctx = Exec.context db info in
      let sets =
        Array.init (Cfq_txdb.Tx_db.size db) (fun i ->
            (Cfq_txdb.Tx_db.get db i).Cfq_txdb.Transaction.items)
      in
      let mem_ctx = Exec.context (Cfq_txdb.Tx_db.create sets) info in
      let norm r =
        List.sort compare
          (List.map
             (fun (s, t) ->
               ( Cfq_itembase.Itemset.to_list s.Cfq_mining.Frequent.set,
                 Cfq_itembase.Itemset.to_list t.Cfq_mining.Frequent.set ))
             r.Exec.pairs)
      in
      let total = List.length lines in
      let rec go = function
        | [] ->
            Printf.printf "verify: %d/%d queries identical on both backends\n\n"
              total total;
            Ok ()
        | (ln, text) :: rest -> (
            match Parser.parse_result text with
            | Error msg -> Error (`Msg (Printf.sprintf "verify: line %d: %s" ln msg))
            | Ok q -> (
                let run ctx = Exec.run_result ~collect_pairs:true ctx q in
                match (run disk_ctx, run mem_ctx) with
                | Ok rd, Ok rm
                  when norm rd = norm rm
                       && Exec.total_counted rd = Exec.total_counted rm
                       && Exec.total_checks rd = Exec.total_checks rm ->
                    go rest
                | Ok _, Ok _ ->
                    Error
                      (`Msg
                         (Printf.sprintf
                            "verify: line %d: backends disagree on %S" ln text))
                | Error e, _ | _, Error e ->
                    Error (`Msg (Cfq_txdb.Cfq_error.to_string e))))
      in
      go lines)

(* the serve path runs against either a plain store or a sharded one;
   the manifest magic at the path decides, --shards N splits a plain
   segment into a sharded twin first *)
type serve_backend =
  | Plain of Cfq_store.Store.t
  | Sharded of Cfq_shard.Sharded.t

let open_backend ?(replicas = 1) store_path cache_pages shards =
  try
    if Cfq_shard.Manifest.is_manifest store_path then
      Ok (store_path, Sharded (Cfq_shard.Sharded.open_ ~cache_pages store_path))
    else if shards > 1 || replicas > 1 then begin
      let mpath = store_path ^ ".sharded" in
      if not (Cfq_shard.Manifest.is_manifest mpath) then
        Cfq_shard.Sharded.build_from_segment ~replicas ~shards ~src:store_path
          mpath;
      Ok (mpath, Sharded (Cfq_shard.Sharded.open_ ~cache_pages mpath))
    end
    else Ok (store_path, Plain (Cfq_store.Store.open_ ~cache_pages store_path))
  with
  | Cfq_store.Segment.Bad_segment msg -> Error (`Msg msg)
  | Cfq_shard.Manifest.Bad_manifest msg -> Error (`Msg msg)
  | Unix.Unix_error (e, _, _) ->
      Error (`Msg (store_path ^ ": " ^ Unix.error_message e))
  | Sys_error msg -> Error (`Msg msg)

let backend_db = function
  | Plain store -> Cfq_store.Store.db store
  | Sharded sh -> Cfq_shard.Sharded.db sh

let backend_recovery_lines = function
  | Plain store ->
      let r = Cfq_store.Store.last_recovery store in
      if r.Cfq_store.Store.replayed > 0 || r.Cfq_store.Store.truncated_bytes > 0
      then
        Printf.printf "recovery: replayed %d WAL records, dropped %d torn bytes\n"
          r.Cfq_store.Store.replayed r.Cfq_store.Store.truncated_bytes
  | Sharded sh ->
      Array.iteri
        (fun k st ->
          let r = Cfq_store.Store.last_recovery st in
          if r.Cfq_store.Store.replayed > 0 || r.Cfq_store.Store.truncated_bytes > 0
          then
            Printf.printf
              "recovery: shard %d replayed %d WAL records, dropped %d torn bytes\n"
              k r.Cfq_store.Store.replayed r.Cfq_store.Store.truncated_bytes)
        (Cfq_shard.Sharded.stores sh)

let store_serve_cmd verbose store_path cache_pages shards replicas fault_shard
    fault_replica domains mine_domains kernel no_calibrate condense cache_mb
    deadline
    repeat fault_transient fault_corrupt fault_spike fault_seed retries
    breaker_threshold live ingest verify file =
  setup_logs verbose;
  match open_backend ~replicas store_path cache_pages shards with
  | Error e -> Error e
  | Ok (opened_path, backend) ->
      let finish result =
        (match backend with
        | Plain store ->
            let io = Cfq_store.Store.io store in
            Printf.printf
              "buffer pool: %d hits, %d misses, %d evictions (cache %d of %d pages)\n"
              (Cfq_txdb.Io_stats.pool_hits io)
              (Cfq_txdb.Io_stats.pool_misses io)
              (Cfq_txdb.Io_stats.pool_evictions io)
              (Cfq_store.Store.cache_pages store)
              (Cfq_store.Store.pages store);
            Cfq_store.Store.close store
        | Sharded sh ->
            let ios = Cfq_txdb.Tx_db.shard_io (Cfq_shard.Sharded.db sh) in
            Array.iteri
              (fun k st ->
                let io = Cfq_store.Store.io st in
                Printf.printf
                  "shard %d: %d scans, %d pages read; pool %d hits, %d misses, \
                   %d evictions (cache %d of %d pages)\n"
                  k
                  (Cfq_txdb.Io_stats.scans ios.(k))
                  (Cfq_txdb.Io_stats.pages_read ios.(k))
                  (Cfq_txdb.Io_stats.pool_hits io)
                  (Cfq_txdb.Io_stats.pool_misses io)
                  (Cfq_txdb.Io_stats.pool_evictions io)
                  (Cfq_store.Store.cache_pages st)
                  (Cfq_store.Store.pages st))
              (Cfq_shard.Sharded.stores sh);
            if Cfq_shard.Sharded.replicas sh > 1 then
              Printf.printf "replica failovers: %d\n"
                (Cfq_shard.Sharded.failovers sh);
            Cfq_shard.Sharded.close sh);
        result
      in
      let db = backend_db backend in
      let universe =
        match backend with
        | Plain store -> Cfq_store.Store.universe_size store
        | Sharded sh -> Cfq_shard.Sharded.universe_size sh
      in
      let info = store_info store_path (max 1 universe) in
      (match backend with
      | Plain store ->
          Printf.printf "store: %s (%d transactions, %d pages, cache %d pages)\n"
            opened_path (Cfq_store.Store.size store)
            (Cfq_store.Store.pages store) cache_pages
      | Sharded sh ->
          let m = Cfq_shard.Sharded.manifest sh in
          Printf.printf
            "sharded store: %s (%d shards, %s partition, %d transactions, %d \
             pages, cache %d pages/shard)\n"
            opened_path
            (Cfq_shard.Sharded.shard_count sh)
            (Cfq_shard.Manifest.partition_name m.Cfq_shard.Manifest.partition)
            (Cfq_shard.Sharded.size sh) (Cfq_shard.Sharded.pages sh) cache_pages);
      backend_recovery_lines backend;
      print_newline ();
      let verified = if verify then verify_backends db info file else Ok () in
      (match verified with
      | Error e -> finish (Error e)
      | Ok () ->
          let fault_config =
            {
              Cfq_txdb.Fault.default_config with
              Cfq_txdb.Fault.transient_p = fault_transient;
              corrupt_p = fault_corrupt;
              spike_p = fault_spike;
              seed = Int64.of_int fault_seed;
            }
          in
          let fault_replica_target =
            match fault_replica with
            | None -> Ok None
            | Some s -> (
                match String.index_opt s ':' with
                | Some i -> (
                    let k = String.sub s 0 i in
                    let j = String.sub s (i + 1) (String.length s - i - 1) in
                    match (int_of_string_opt k, int_of_string_opt j) with
                    | Some k, Some j -> Ok (Some (k, j))
                    | _ -> Error "--fault-replica wants K:J (two integers)")
                | None -> Error "--fault-replica wants K:J (two integers)")
          in
          let fault_error = ref None in
          (match fault_replica_target with
          | Error msg -> fault_error := Some msg
          | Ok fault_replica ->
              if Cfq_txdb.Fault.is_active fault_config then begin
                let injector = Some (Cfq_txdb.Fault.create fault_config) in
                (match (fault_shard, fault_replica, backend) with
                | Some _, Some _, _ ->
                    fault_error :=
                      Some "--fault-shard and --fault-replica: choose one"
                | None, None, _ -> Cfq_txdb.Tx_db.set_faults db injector
                | Some k, None, Sharded sh -> (
                    match Cfq_shard.Sharded.set_shard_fault sh ~shard:k injector with
                    | () -> ()
                    | exception Invalid_argument msg -> fault_error := Some msg)
                | None, Some (k, j), Sharded sh -> (
                    match
                      Cfq_shard.Sharded.set_replica_fault sh ~shard:k ~replica:j
                        injector
                    with
                    | () -> ()
                    | exception Invalid_argument msg -> fault_error := Some msg)
                | Some _, None, Plain _ ->
                    fault_error := Some "--fault-shard requires a sharded store"
                | None, Some _, Plain _ ->
                    fault_error := Some "--fault-replica requires a sharded store");
                if !fault_error = None then
                  Printf.printf
                    "fault injection%s: transient-p=%g corrupt-p=%g spike-p=%g \
                     seed=%d\n\n"
                    (match (fault_shard, fault_replica) with
                    | Some k, _ -> Printf.sprintf " (shard %d)" k
                    | _, Some (k, j) ->
                        Printf.sprintf " (shard %d, replica %d)" k j
                    | None, None -> "")
                    fault_transient fault_corrupt fault_spike fault_seed
              end
              else if fault_shard <> None then
                fault_error := Some "--fault-shard needs an active fault probability"
              else if fault_replica <> None then
                fault_error :=
                  Some "--fault-replica needs an active fault probability");
          match !fault_error with
          | Some msg -> finish (Error (`Msg msg))
          | None ->
          let config =
            {
              Cfq_service.Service.default_config with
              Cfq_service.Service.domains;
              mine_domains;
              cache_budget = cache_mb * 1024 * 1024;
              default_deadline = deadline;
              retries;
              breaker_threshold;
              kernel;
              calibrate = not no_calibrate;
              condense;
            }
          in
          let service = Cfq_service.Service.create ~config (Exec.context db info) in
          if live || ingest <> [] then
            Cfq_service.Service.attach_source service
              (match backend with
              | Plain store -> Cfq_live.Source.of_store store
              | Sharded sh -> Cfq_live.Source.of_sharded sh);
          let result = run_live_passes service ~repeat ~ingest file in
          print_condensation service;
          Cfq_service.Service.shutdown service;
          finish result)

(* re-read every page of every replica fresh from disk and report health;
   with --repair, quarantined/stale replicas are rebuilt from healthy
   siblings (sharded stores only) *)
let store_verify_cmd verbose store_path cache_pages repair =
  setup_logs verbose;
  match open_backend store_path cache_pages 1 with
  | Error e -> Error e
  | Ok (opened_path, backend) -> (
      let pp_faults faults =
        String.concat ", "
          (List.map
             (fun f ->
               Printf.sprintf "%d/%s" f.Cfq_store.Store.pf_page
                 (Cfq_store.Store.page_fault_kind_name f.Cfq_store.Store.pf_kind))
             faults)
      in
      match backend with
      | Plain store ->
          let faults = Cfq_store.Store.verify_pages store in
          let n = Cfq_store.Store.pages store in
          Cfq_store.Store.close store;
          if faults = [] then begin
            Printf.printf "%s: all %d pages verified\n" opened_path n;
            Ok ()
          end
          else
            Error
              (`Msg
                 (Printf.sprintf "%s: %d bad pages: %s" opened_path
                    (List.length faults) (pp_faults faults)))
      | Sharded sh ->
          let finish r =
            Cfq_shard.Sharded.close sh;
            r
          in
          if repair then begin
            let report = Cfq_shard.Scrub.run sh in
            List.iter
              (fun r ->
                Printf.printf "shard %d replica %d: %s -> %s\n"
                  r.Cfq_shard.Scrub.rr_shard r.Cfq_shard.Scrub.rr_replica
                  (Cfq_shard.Scrub.outcome_name r.Cfq_shard.Scrub.rr_outcome)
                  (Cfq_shard.Manifest.health_name r.Cfq_shard.Scrub.rr_health))
              report.Cfq_shard.Scrub.rows;
            Printf.printf
              "scrubbed %d pages: %d faults, %d replicas repaired, %d repair \
               failures\n"
              report.Cfq_shard.Scrub.scrubbed_pages
              report.Cfq_shard.Scrub.faults_found report.Cfq_shard.Scrub.repairs
              report.Cfq_shard.Scrub.repair_failures;
            finish
              (if report.Cfq_shard.Scrub.repair_failures = 0 then Ok ()
               else Error (`Msg "scrub left unrepaired replicas"))
          end
          else begin
            let rows = Cfq_shard.Scrub.health_report sh in
            List.iter
              (fun r ->
                Printf.printf "shard %d replica %d: %s (generation %d)%s\n"
                  r.Cfq_shard.Scrub.hr_shard r.Cfq_shard.Scrub.hr_replica
                  (Cfq_shard.Manifest.health_name r.Cfq_shard.Scrub.hr_health)
                  r.Cfq_shard.Scrub.hr_generation
                  (match r.Cfq_shard.Scrub.hr_faults with
                  | [] -> ""
                  | faults ->
                      Printf.sprintf " -- %d bad pages: %s" (List.length faults)
                        (pp_faults faults)))
              rows;
            finish
              (if Cfq_shard.Scrub.healthy_report rows then begin
                 print_endline "all replicas healthy, every page verified";
                 Ok ()
               end
               else
                 Error
                   (`Msg
                      "verification failed; run 'store verify --repair' to \
                       quarantine and rebuild"))
          end)

let repl_cmd () =
  let session = Cfq_shell.Shell.create () in
  print_endline "cfq interactive shell; 'help' lists commands, 'quit' leaves.";
  let rec loop () =
    print_string "cfq> ";
    match read_line () with
    | exception End_of_file -> ()
    | line ->
        let r = Cfq_shell.Shell.eval session line in
        if r.Cfq_shell.Shell.output <> "" then print_endline r.Cfq_shell.Shell.output;
        if not r.Cfq_shell.Shell.quit then loop ()
  in
  loop ();
  Ok ()

let gen_cmd tx items types seed out info_out =
  let db, info = build_data ~tx ~items ~types ~seed in
  Printf.printf "transactions: %d\nitems: %d\navg length: %.2f\npages (4K): %d\n"
    (Cfq_txdb.Tx_db.size db) items (Cfq_txdb.Tx_db.avg_tx_len db)
    (Cfq_txdb.Tx_db.pages db);
  (match out with
  | Some path ->
      Cfq_data.Fimi.write path db;
      Printf.printf "wrote transactions to %s\n" path
  | None -> ());
  (match info_out with
  | Some path ->
      Cfq_data.Item_csv.write path info;
      Printf.printf "wrote itemInfo to %s\n" path
  | None -> ());
  Ok ()

(* ------------------------------------------------------------------ *)

let run_t =
  Term.(
    term_result
      (const run_cmd $ verbose_arg $ tx_arg $ items_arg $ types_arg $ seed_arg
     $ strategy_arg
     $ mine_domains_arg ~default:0
         ~default_doc:"Default 0 = all recommended domains of the machine."
     $ kernel_arg $ no_calibrate_arg $ pairs_arg $ data_arg $ iteminfo_arg
     $ pairs_out_arg $ query_arg))

let explain_t = Term.(term_result (const explain_cmd $ query_arg))

let advise_t =
  Term.(
    term_result
      (const advise_cmd $ tx_arg $ items_arg $ types_arg $ seed_arg $ data_arg
     $ iteminfo_arg $ query_arg))

let min_conf_arg =
  Arg.(value & opt float 0.5 & info [ "min-conf" ] ~docv:"C" ~doc:"Minimum confidence.")

let min_lift_arg =
  Arg.(value & opt float 0. & info [ "min-lift" ] ~docv:"L" ~doc:"Minimum lift.")

let top_arg =
  Arg.(value & opt int 20 & info [ "top" ] ~docv:"N" ~doc:"Print at most N rules.")

let rules_t =
  Term.(
    term_result
      (const rules_cmd $ tx_arg $ items_arg $ types_arg $ seed_arg $ data_arg
     $ iteminfo_arg $ min_conf_arg $ min_lift_arg $ top_arg $ rules_out_arg
     $ query_arg))
let gen_t =
  Term.(
    term_result
      (const gen_cmd $ tx_arg $ items_arg $ types_arg $ seed_arg $ out_arg
     $ info_out_arg))

let run_cmd_info =
  Cmd.info "run" ~doc:"Execute a CFQ against generated market-basket data."

let explain_cmd_info =
  Cmd.info "explain" ~doc:"Show the query optimizer's plan for a CFQ."

let gen_cmd_info = Cmd.info "gen" ~doc:"Generate a database and print its statistics."

let advise_cmd_info =
  Cmd.info "advise" ~doc:"Probe the data and recommend an execution strategy."

let rules_cmd_info =
  Cmd.info "rules" ~doc:"Run the full two-phase pipeline and print rules S => T."

let repl_t = Term.(term_result (const repl_cmd $ const ()))

let repl_cmd_info =
  Cmd.info "repl" ~doc:"Interactive exploratory-mining session."

let serve_t =
  Term.(
    term_result
      (const serve_cmd $ verbose_arg $ tx_arg $ items_arg $ types_arg $ seed_arg
     $ data_arg $ iteminfo_arg $ domains_arg
     $ mine_domains_arg ~default:0
         ~default_doc:
           "Default 0 = inherit $(b,--domains); helpers are borrowed idle \
            workers, never extra domains."
     $ kernel_arg $ no_calibrate_arg $ condense_arg $ cache_mb_arg
     $ deadline_arg $ repeat_arg
     $ fault_transient_arg
     $ fault_corrupt_arg $ fault_spike_arg $ fault_seed_arg $ retries_arg
     $ breaker_threshold_arg $ live_arg $ ingest_arg $ batch_file_arg))

let serve_cmd_info =
  Cmd.info "serve"
    ~doc:
      "Execute a batch file of CFQs through the concurrent caching query service \
       and print per-query outcomes plus cache metrics."

let store_build_t =
  Term.(
    term_result
      (const store_build_cmd $ verbose_arg $ tx_arg $ items_arg $ types_arg
     $ seed_arg $ data_arg $ iteminfo_arg $ store_path_arg $ shards_arg
     $ replicas_arg))

let repair_arg =
  Arg.(
    value & flag
    & info [ "repair" ]
        ~doc:"After verification, rebuild every stale or quarantined replica \
              from a healthy sibling and re-admit it (sharded stores only).")

let store_verify_t =
  Term.(
    term_result
      (const store_verify_cmd $ verbose_arg $ store_path_arg $ cache_pages_arg
     $ repair_arg))

let store_serve_t =
  Term.(
    term_result
      (const store_serve_cmd $ verbose_arg $ store_path_arg $ cache_pages_arg
     $ shards_arg $ replicas_arg $ fault_shard_arg $ fault_replica_arg
     $ domains_arg
     $ mine_domains_arg ~default:0
         ~default_doc:
           "Default 0 = inherit $(b,--domains); helpers are borrowed idle \
            workers, never extra domains."
     $ kernel_arg $ no_calibrate_arg $ condense_arg $ cache_mb_arg
     $ deadline_arg $ repeat_arg
     $ fault_transient_arg
     $ fault_corrupt_arg $ fault_spike_arg $ fault_seed_arg $ retries_arg
     $ breaker_threshold_arg $ live_arg $ ingest_arg $ verify_arg
     $ batch_file_arg))

let store_cmd =
  Cmd.group
    (Cmd.info "store"
       ~doc:"Build and serve persistent on-disk transaction stores.")
    [
      Cmd.v
        (Cmd.info "build"
           ~doc:
             "Write a database (generated, or loaded with $(b,--data)) to a \
              sealed on-disk store plus its itemInfo CSV.")
        store_build_t;
      Cmd.v
        (Cmd.info "serve"
           ~doc:
             "Serve a batch of CFQs from an on-disk store through the caching \
              query service, decoding pages through a bounded buffer pool.")
        store_serve_t;
      Cmd.v
        (Cmd.info "verify"
           ~doc:
             "Re-read every page of a store fresh from disk, check CRCs and \
              logical checksums, and print a per-replica health report; \
              $(b,--repair) rebuilds bad replicas from healthy siblings.")
        store_verify_t;
    ]

let main =
  Cmd.group
    (Cmd.info "cfq" ~version:"1.0.0"
       ~doc:"Constrained frequent set queries with 2-variable constraints.")
    [
      Cmd.v run_cmd_info run_t;
      Cmd.v explain_cmd_info explain_t;
      Cmd.v gen_cmd_info gen_t;
      Cmd.v advise_cmd_info advise_t;
      Cmd.v rules_cmd_info rules_t;
      Cmd.v repl_cmd_info repl_t;
      Cmd.v serve_cmd_info serve_t;
      store_cmd;
    ]

let () = exit (Cmd.eval main)
