(* The adaptive counting kernels: every kernel (trie, direct2, vertical,
   auto) must produce byte-identical supports, frequent collections, ccc
   counters and answers for every domain count and backend — the contract
   of Counting's kernel dispatch.  With faults installed the session is
   pinned to the trie, so even the fault walk (outcomes included) is
   identical to the legacy path.  Run with CFQ_TEST_STORE=1 the same grid
   exercises the on-disk backend. *)

open Cfq_itembase
open Cfq_txdb
open Cfq_mining
open Cfq_core

let unit name f = Alcotest.test_case name `Quick f
let kernels = Counting.all_kernels
let domain_grid = [ 1; 3 ]

let session_of kernel =
  Counting.create_session ~plan:(Counting.plan_of_kernel kernel) ()

let entries_equal (a : Frequent.entry list) (b : Frequent.entry list) =
  List.length a = List.length b
  && List.for_all2
       (fun e1 e2 ->
         Itemset.equal e1.Frequent.set e2.Frequent.set
         && e1.Frequent.support = e2.Frequent.support)
       a b

(* ------------------------------------------------------------------ *)
(* Full-mine equivalence: Apriori under every kernel × domains          *)
(* ------------------------------------------------------------------ *)

let gen_mine =
  QCheck2.Gen.(
    let* n, db = Helpers.gen_db in
    let* minsup = int_range 2 8 in
    return (n, db, minsup))

let print_mine (n, db, minsup) =
  Printf.sprintf "minsup=%d %s" minsup (Helpers.print_db (n, db))

let mine_with ?session ?(domains = 1) db n ~minsup =
  let info = Helpers.small_info n in
  let io = Io_stats.create () in
  let par = Counting.par ~min_rows_per_domain:1 domains in
  let out = Apriori.mine db info io ~par ?session ~minsup () in
  (out, io)

let prop_mine_kernel_grid (n, db, minsup) =
  let base, _ = mine_with db n ~minsup in
  let base_entries = Frequent.to_list base.Apriori.frequent in
  let base_counted = Counters.support_counted base.Apriori.counters in
  List.for_all
    (fun (_, kernel) ->
      List.for_all
        (fun domains ->
          let out, _ = mine_with ~session:(session_of kernel) ~domains db n ~minsup in
          entries_equal base_entries (Frequent.to_list out.Apriori.frequent)
          && Counters.support_counted out.Apriori.counters = base_counted
          && Counters.candidates_generated out.Apriori.counters
             = Counters.candidates_generated base.Apriori.counters)
        domain_grid)
    kernels

(* The per-level rows must agree on the counting work (candidates, counted,
   frequent) for every kernel; only the kernel label may differ. *)
let prop_level_rows_kernel_independent (n, db, minsup) =
  let base, _ = mine_with db n ~minsup in
  let strip rows =
    List.map
      (fun r ->
        Level_stats.(r.level, r.candidates, r.counted, r.frequent))
      (Level_stats.rows rows)
  in
  List.for_all
    (fun (_, kernel) ->
      let out, _ = mine_with ~session:(session_of kernel) db n ~minsup in
      strip out.Apriori.stats = strip base.Apriori.stats)
    kernels

(* ------------------------------------------------------------------ *)
(* Exec equivalence: answers and ccc across kernels                     *)
(* ------------------------------------------------------------------ *)

let gen_case = QCheck2.Gen.pair Helpers.gen_query Helpers.gen_db
let print_case (q, db) = Query.to_string q ^ " on " ^ Helpers.print_db db

let answer_of (r : Exec.result) =
  Helpers.sorted_pairs
    (List.map
       (fun (a, b) -> (a.Frequent.set, b.Frequent.set))
       r.Exec.pairs)

let pairs_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (s1, t1) (s2, t2) -> Itemset.equal s1 s2 && Itemset.equal t1 t2)
       a b

let prop_exec_kernel_grid (q, (n, db)) =
  let info = Helpers.small_info n in
  let ctx = Exec.context db info in
  let base = Exec.run ~collect_pairs:true ctx q in
  let base_answer = answer_of base in
  List.for_all
    (fun (_, kernel) ->
      List.for_all
        (fun domains ->
          let r =
            Exec.run ~collect_pairs:true
              ~par:(Counting.par ~min_rows_per_domain:1 domains)
              ~kernel ctx q
          in
          pairs_equal base_answer (answer_of r)
          && Exec.total_counted r = Exec.total_counted base
          && Exec.total_checks r = Exec.total_checks base)
        domain_grid)
    kernels

(* ------------------------------------------------------------------ *)
(* Fault pinning: with faults installed every kernel IS the trie        *)
(* ------------------------------------------------------------------ *)

let outcome_of r =
  match r with
  | Ok r -> Printf.sprintf "ok:%d" (List.length r.Exec.pairs)
  | Error e -> "err:" ^ Cfq_error.to_string e

let prop_faults_pin_to_trie (q, (n, db)) =
  let info = Helpers.small_info n in
  let ctx = Exec.context db info in
  let config =
    { Fault.default_config with Fault.seed = 0x5EEDL; transient_p = 0.08 }
  in
  let run kernel =
    let f = Fault.create config in
    Tx_db.set_faults db (Some f);
    let r = Exec.run_result ~collect_pairs:true ?kernel ctx q in
    Tx_db.set_faults db None;
    ( outcome_of r,
      (match r with Ok ok -> answer_of ok | Error _ -> []),
      (Fault.stats f).Fault.transient )
  in
  let base_out, base_ans, base_faults = run None in
  List.for_all
    (fun (_, kernel) ->
      let out, ans, faults = run (Some kernel) in
      out = base_out && pairs_equal ans base_ans && faults = base_faults)
    kernels

(* ------------------------------------------------------------------ *)
(* Planner cutoffs                                                      *)
(* ------------------------------------------------------------------ *)

let plan = Counting.default_plan

let test_direct2_cutoffs () =
  let p = { plan with Counting.budget_words = 100; direct2_max_sparsity = 4 } in
  Alcotest.(check bool)
    "fits" true
    (Counting.direct2_admissible p ~n_cands:30 ~n_cells:100);
  Alcotest.(check bool)
    "over budget" false
    (Counting.direct2_admissible p ~n_cands:30 ~n_cells:101);
  Alcotest.(check bool)
    "too sparse" false
    (Counting.direct2_admissible p ~n_cands:10 ~n_cells:41);
  Alcotest.(check bool)
    "sparsity boundary" true
    (Counting.direct2_admissible p ~n_cands:10 ~n_cells:40)

let test_vertical_cutoffs () =
  let p = { plan with Counting.budget_words = 64; vertical_min_card = 3 } in
  let words = Tid_bitmaps.words_needed ~n_items:4 ~n_rows:100 in
  Alcotest.(check bool) "words fit budget" true (words <= 64);
  Alcotest.(check bool)
    "admitted" true
    (Counting.vertical_admissible p ~n_live_items:4 ~n_rows:100 ~min_card:3);
  Alcotest.(check bool)
    "below switchover card" false
    (Counting.vertical_admissible p ~n_live_items:4 ~n_rows:100 ~min_card:2);
  Alcotest.(check bool)
    "over budget" false
    (Counting.vertical_admissible p ~n_live_items:1000 ~n_rows:100_000
       ~min_card:5)

(* a dense database where every level up to 4 is populated *)
let dense_db () =
  Helpers.db_of_lists
    (List.init 24 (fun i ->
         if i mod 3 = 0 then [ 0; 1; 2; 3; 4 ]
         else if i mod 3 = 1 then [ 0; 1; 2; 3 ]
         else [ 1; 2; 3; 4; 5 ]))

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* Cold-build admission (the 0.73x fix): the charged bitmap build must
   beat the trie walk it displaces on the calibrated cost model.  The
   reject case is shaped like the committed bench workload — a huge
   level-2 candidate set over a few thousand rows, where the probes alone
   are slower than the scan — and passes the plain [vertical_admissible]
   cutoffs, so the rejection is the cold-cost model's alone. *)
let test_vertical_cold_cutoff () =
  let calib = Counting.create_calibration () in
  Alcotest.(check bool)
    "few candidates over a small db admit" true
    (Counting.vertical_cold_admissible plan calib ~n_live_items:6 ~n_rows:24
       ~min_card:3 ~avg_len:4.5 ~n_cands:20);
  Alcotest.(check bool)
    "bench-shaped workload passes the budget cutoffs" true
    (Counting.vertical_admissible plan ~n_live_items:64 ~n_rows:4096
       ~min_card:3);
  Alcotest.(check bool)
    "but the cold-cost model rejects it" false
    (Counting.vertical_cold_admissible plan calib ~n_live_items:64
       ~n_rows:4096 ~min_card:3 ~avg_len:8.0 ~n_cands:200_000);
  Alcotest.(check bool)
    "below the switchover card still rejected" false
    (Counting.vertical_cold_admissible plan calib ~n_live_items:6 ~n_rows:24
       ~min_card:2 ~avg_len:4.5 ~n_cands:20)

let test_calibration_record () =
  let c = Counting.create_calibration () in
  Alcotest.(check int) "fresh record holds the priors" 0
    (Counting.calibration_samples c);
  let described = Counting.describe_calibration c in
  Alcotest.(check bool)
    "describe mentions the sample count" true
    (contains described "samples=0");
  let s =
    Counting.create_session
      ~plan:{ Counting.default_plan with Counting.calibrate = false }
      ~calibration:c ()
  in
  Alcotest.(check bool)
    "session shares the given record" true
    (Counting.session_calibration s == c);
  (* with calibrate=false the record never moves, even across a full mine *)
  let db = dense_db () in
  let _ = mine_with ~session:s db 6 ~minsup:4 in
  Alcotest.(check int) "calibrate=false leaves the record untouched" 0
    (Counting.calibration_samples c)

let test_projection_cutoffs () =
  Alcotest.(check bool)
    "fits" true
    (Counting.projection_admissible plan ~est_words:1000);
  Alcotest.(check bool)
    "over budget" false
    (Counting.projection_admissible plan
       ~est_words:(plan.Counting.budget_words + 1));
  Alcotest.(check bool)
    "disabled by plan" false
    (Counting.projection_admissible
       { plan with Counting.projection = false }
       ~est_words:10)

let test_fixed_kernels_disable_projection () =
  List.iter
    (fun (name, k) ->
      let p = Counting.plan_of_kernel k in
      Alcotest.(check bool)
        (name ^ " projection flag")
        (k = Counting.Auto) p.Counting.projection)
    kernels

(* ------------------------------------------------------------------ *)
(* Projection semantics                                                 *)
(* ------------------------------------------------------------------ *)

let pm = Page_model.make ~page_size_bytes:64 ()

let test_projection_shrinkage () =
  let txs = [| [| 0; 1; 2 |]; [| 1; 2 |]; [| 0; 2; 3 |] |] in
  let p =
    Projection.make ~page_model:pm ~universe_size:5 ~live:[| 0; 1; 2; 3 |]
      ~min_len:2 txs
  in
  Alcotest.(check int) "tuples" 3 (Projection.tuples p);
  Alcotest.(check int) "min_len" 2 (Projection.min_len p);
  Alcotest.(check int) "words = slots + headers" 11 (Projection.words p);
  Alcotest.(check bool)
    "covers live items at its card" true
    (Projection.covers p ~items:[| 0; 2 |] ~min_card:2);
  Alcotest.(check bool)
    "below min_len not covered" false
    (Projection.covers p ~items:[| 0; 2 |] ~min_card:1);
  Alcotest.(check bool)
    "dead item not covered" false
    (Projection.covers p ~items:[| 0; 4 |] ~min_card:2);
  (* shrinking the transactions can only shrink the page charge *)
  let smaller =
    Projection.make ~page_model:pm ~universe_size:5 ~live:[| 0; 2 |] ~min_len:3
      [| [| 0; 2 |] |]
  in
  Alcotest.(check bool)
    "pages monotone" true
    (Projection.pages smaller <= Projection.pages p);
  let io = Io_stats.create () in
  Projection.charge_scan p io;
  Alcotest.(check int) "one scan charged" 1 (Io_stats.scans io);
  Alcotest.(check int) "reduced pages charged" (Projection.pages p)
    (Io_stats.pages_read io)

(* A projection scan must charge no more pages than the database scan it
   replaces: mine with Auto (projections on) and check total pages. *)
let prop_projection_never_charges_more (n, db, minsup) =
  let _, io_base = mine_with db n ~minsup in
  let _, io_auto = mine_with ~session:(session_of Counting.Auto) db n ~minsup in
  Io_stats.pages_read io_auto <= Io_stats.pages_read io_base

(* ------------------------------------------------------------------ *)
(* Session bookkeeping: the kernels actually engage                     *)
(* ------------------------------------------------------------------ *)

let test_vertical_engages () =
  let db = dense_db () in
  let s = session_of Counting.Vertical in
  let _, io = mine_with ~session:s db 6 ~minsup:4 in
  let pc = Counting.pass_counts s in
  Alcotest.(check bool) "built bitmaps" true (pc.Counting.bitmap_builds >= 1);
  Alcotest.(check bool) "vertical passes" true (pc.Counting.vertical_passes >= 1);
  Alcotest.(check bool)
    "bitmap passes beyond the build charge no extra scans" true
    (Io_stats.scans io
    <= pc.Counting.trie_passes + pc.Counting.bitmap_builds + 1);
  Alcotest.(check string) "label" "vertical" (Counting.last_kernel s)

let test_direct2_engages () =
  let db = dense_db () in
  let s = session_of Counting.Direct2 in
  let _ = mine_with ~session:s db 6 ~minsup:4 in
  let pc = Counting.pass_counts s in
  Alcotest.(check bool) "direct2 pass happened" true (pc.Counting.direct2_passes >= 1);
  Alcotest.(check bool)
    "no bitmaps under direct2" true
    (pc.Counting.bitmap_builds = 0)

let test_auto_projects () =
  let db = dense_db () in
  let s = session_of Counting.Auto in
  let _ = mine_with ~session:s db 6 ~minsup:4 in
  let pc = Counting.pass_counts s in
  Alcotest.(check bool)
    "some adaptive activity" true
    (pc.Counting.direct2_passes + pc.Counting.vertical_passes
     + pc.Counting.projected_scans
    >= 1);
  Alcotest.(check bool)
    "describe mentions passes" true
    (String.length (Counting.describe s) > 0)

(* Fused build: on a dense database Auto stands the bitmaps up from the
   projection rows already in memory — no charged build scan — so the whole
   mine charges strictly fewer scans than the per-level trie walk, while
   the frequent sets stay identical (prop_mine_kernel_grid).  The fused
   path must engage under calibrate=false too (priors only). *)
let test_auto_fused_build_saves_scans () =
  let db = dense_db () in
  let s =
    Counting.create_session
      ~plan:{ Counting.default_plan with Counting.calibrate = false }
      ()
  in
  let _, io_base = mine_with db 6 ~minsup:4 in
  let _, io_auto = mine_with ~session:s db 6 ~minsup:4 in
  let pc = Counting.pass_counts s in
  Alcotest.(check bool) "bitmaps were built" true (pc.Counting.bitmap_builds >= 1);
  Alcotest.(check bool)
    "deep passes answered from bitmaps" true
    (pc.Counting.vertical_passes >= 1);
  Alcotest.(check bool)
    "strictly fewer scans than the trie walk" true
    (Io_stats.scans io_auto < Io_stats.scans io_base);
  Alcotest.(check bool)
    "and no more pages" true
    (Io_stats.pages_read io_auto <= Io_stats.pages_read io_base)

let test_kernel_names_roundtrip () =
  List.iter
    (fun (name, k) ->
      Alcotest.(check string) "name" name (Counting.kernel_name k);
      match Counting.kernel_of_string name with
      | Some k' -> Alcotest.(check bool) "roundtrip" true (k = k')
      | None -> Alcotest.fail ("kernel_of_string failed on " ^ name))
    kernels;
  Alcotest.(check bool)
    "unknown rejected" true
    (Counting.kernel_of_string "quantum" = None)

(* ------------------------------------------------------------------ *)
(* Vertical scratch reuse (satellite): batched probes match singles     *)
(* ------------------------------------------------------------------ *)

let test_vertical_scratch_reuse () =
  let db = dense_db () in
  let io = Io_stats.create () in
  let v = Vertical.build db io ~universe_size:6 in
  let cands =
    Array.of_list
      (List.filter
         (fun s -> not (Itemset.is_empty s))
         (Helpers.all_subsets 6))
  in
  let batched = Vertical.supports v cands in
  let scratch = Vertical.scratch v in
  Array.iteri
    (fun i s ->
      Alcotest.(check int)
        ("support of " ^ Itemset.to_string s)
        (Vertical.support v s) batched.(i);
      Alcotest.(check int)
        ("scratch support of " ^ Itemset.to_string s)
        batched.(i)
        (Vertical.support_into v scratch s))
    cands

(* ------------------------------------------------------------------ *)
(* DHP level rows (satellite): bucket filter visible in Level_stats     *)
(* ------------------------------------------------------------------ *)

let test_dhp_rows () =
  let db = dense_db () in
  let io = Io_stats.create () in
  let out = Dhp.mine db io ~minsup:4 ~universe_size:6 ~n_buckets:7 in
  let rows = Level_stats.rows out.Dhp.stats in
  let l2 = List.find (fun r -> r.Level_stats.level = 2) rows in
  Alcotest.(check int) "l2 candidates" out.Dhp.c2_plain l2.Level_stats.candidates;
  Alcotest.(check int) "l2 counted" out.Dhp.c2_filtered l2.Level_stats.counted;
  Alcotest.(check string) "l2 kernel" "dhp-bucket" l2.Level_stats.kernel;
  let l1 = List.find (fun r -> r.Level_stats.level = 1) rows in
  Alcotest.(check string) "l1 kernel" "dhp-fused" l1.Level_stats.kernel;
  Alcotest.(check bool)
    "filter can only shrink" true
    (out.Dhp.c2_filtered <= out.Dhp.c2_plain)

let suite =
  [
    Helpers.qtest ~count:60 "apriori frequent sets and ccc are kernel-independent"
      gen_mine print_mine prop_mine_kernel_grid;
    Helpers.qtest ~count:40 "per-level rows are kernel-independent"
      gen_mine print_mine prop_level_rows_kernel_independent;
    Helpers.qtest ~count:40 "exec answers and ccc are kernel-independent"
      gen_case print_case prop_exec_kernel_grid;
    Helpers.qtest ~count:25 "faults pin every kernel to the trie walk"
      gen_case print_case prop_faults_pin_to_trie;
    Helpers.qtest ~count:60 "auto projections never charge more pages"
      gen_mine print_mine prop_projection_never_charges_more;
    unit "direct2 budget and sparsity cutoffs" test_direct2_cutoffs;
    unit "vertical switchover cutoffs" test_vertical_cutoffs;
    unit "cold bitmap builds gated by measured costs" test_vertical_cold_cutoff;
    unit "calibration record sharing and freezing" test_calibration_record;
    unit "projection budget cutoff" test_projection_cutoffs;
    unit "fixed kernels disable projections" test_fixed_kernels_disable_projection;
    unit "projection shrinkage semantics" test_projection_shrinkage;
    unit "vertical kernel engages and answers from bitmaps" test_vertical_engages;
    unit "direct2 kernel engages on level 2" test_direct2_engages;
    unit "auto session reports adaptive activity" test_auto_projects;
    unit "auto fused bitmap build saves whole scans" test_auto_fused_build_saves_scans;
    unit "kernel names round-trip" test_kernel_names_roundtrip;
    unit "vertical scratch reuse matches single probes" test_vertical_scratch_reuse;
    unit "dhp bucket filter visible in level rows" test_dhp_rows;
  ]
