(* The live ingestion subsystem: FUP promotion math, delta extraction
   accounting, and the headline property — a service maintained across
   k ∈ {1,2,3} seals answers exactly like a cold remine of the grown
   database, on every backend matrix.  Fault injection during a
   maintenance pass must leave the caches on one consistent epoch. *)

open Cfq_itembase
open Cfq_txdb
open Cfq_mining
open Cfq_core
open Cfq_service

let expect_ok = function
  | Ok a -> a
  | Error e -> Alcotest.failf "service error: %s" (Service.error_to_string e)

let pair_str answer_pairs =
  let entries =
    List.sort
      (fun ((a1 : Frequent.entry), (b1 : Frequent.entry)) (a2, b2) ->
        match Itemset.compare a1.Frequent.set a2.Frequent.set with
        | 0 -> Itemset.compare b1.Frequent.set b2.Frequent.set
        | c -> c)
      answer_pairs
  in
  String.concat "; "
    (List.map
       (fun ((s : Frequent.entry), (t : Frequent.entry)) ->
         Printf.sprintf "%s@%d,%s@%d"
           (Itemset.to_string s.Frequent.set)
           s.Frequent.support
           (Itemset.to_string t.Frequent.set)
           t.Frequent.support)
       entries)

(* ------------------------------------------------------------------ *)
(* Maintain.promoted_minsup: coverage math *)

let promoted_minsup_units () =
  Alcotest.(check int) "empty base clamps to old" 3
    (Cfq_live.Maintain.promoted_minsup ~old_minsup:3 ~base_txs:0 ~union_txs:9);
  Alcotest.(check int) "no growth keeps the threshold" 3
    (Cfq_live.Maintain.promoted_minsup ~old_minsup:3 ~base_txs:10 ~union_txs:10);
  Alcotest.(check int) "50% growth scales the slack" 4
    (Cfq_live.Maintain.promoted_minsup ~old_minsup:3 ~base_txs:10 ~union_txs:15);
  Alcotest.(check int) "minsup 1 never moves" 1
    (Cfq_live.Maintain.promoted_minsup ~old_minsup:1 ~base_txs:4 ~union_txs:400)

(* every relative fraction the old entry answered (ceil(f·base) >= m) must
   still be answered by the promoted threshold (ceil(f·union) >= m') *)
let promoted_minsup_covers () =
  let ceil_frac f n = max 1 (int_of_float (Float.ceil (f *. float_of_int n))) in
  for base = 1 to 20 do
    for growth = 0 to 15 do
      let union = base + growth in
      for m = 1 to base do
        let m' =
          Cfq_live.Maintain.promoted_minsup ~old_minsup:m ~base_txs:base
            ~union_txs:union
        in
        for pct = 1 to 100 do
          let f = float_of_int pct /. 100. in
          if ceil_frac f base >= m && ceil_frac f union < m' then
            Alcotest.failf
              "coverage lost: base=%d union=%d m=%d m'=%d f=%.2f" base union m
              m' f
        done
      done
    done
  done

(* ------------------------------------------------------------------ *)
(* Incremental.update_abs against a direct mine of the union *)

let frequent_str freq =
  String.concat "; "
    (List.map
       (fun (e : Frequent.entry) ->
         Printf.sprintf "%s@%d" (Itemset.to_string e.Frequent.set) e.Frequent.support)
       (List.sort
          (fun (a : Frequent.entry) b -> Itemset.compare a.Frequent.set b.Frequent.set)
          (Frequent.to_list freq)))

let gen_update =
  QCheck2.Gen.(
    let* n = int_range 3 6 in
    let* txs = list_size (int_range 12 40) (Helpers.gen_tx n) in
    let* cut_pct = int_range 20 80 in
    let* old_m = int_range 1 4 in
    let* slack = int_range 0 3 in
    return (n, txs, cut_pct, old_m, slack))

let print_update (n, txs, cut_pct, old_m, slack) =
  Printf.sprintf "n=%d cut=%d%% old_m=%d slack=%d txs=%s" n cut_pct old_m slack
    (String.concat "|" (List.map (fun t -> String.concat "," (List.map string_of_int t)) txs))

let update_abs_equals_union_mine =
  Helpers.qtest ~count:120 "live: update_abs equals mining the union" gen_update
    print_update (fun (n, txs, cut_pct, old_m, slack) ->
      let sets = Array.of_list (List.map Itemset.of_list txs) in
      let cut = max 1 (Array.length sets * cut_pct / 100) in
      let cut = min cut (Array.length sets - 1) in
      let old_db = Tx_db.create (Array.sub sets 0 cut) in
      let delta = Tx_db.create (Array.sub sets cut (Array.length sets - cut)) in
      let union_db = Tx_db.create sets in
      let io = Io_stats.create () in
      let old_frequent =
        Vertical.mine (Vertical.build old_db io ~universe_size:n) ~minsup:old_m
      in
      let union_m = old_m + slack in
      let lstats = Level_stats.create () in
      let out =
        Incremental.update_abs ~stats:lstats ~old_db ~old_frequent ~delta io
          ~old_minsup:old_m ~union_minsup:union_m ~universe_size:n ()
      in
      let reference =
        Vertical.mine (Vertical.build union_db io ~universe_size:n) ~minsup:union_m
      in
      if out.Incremental.old_scans > 1 then
        QCheck2.Test.fail_reportf "FUP paid %d old scans" out.Incremental.old_scans;
      if out.Incremental.old_scans = 0 && out.Incremental.counted_against_old > 0
      then QCheck2.Test.fail_reportf "counted against old without a scan";
      if Level_stats.rows lstats = [] && Frequent.to_list old_frequent <> [] then
        QCheck2.Test.fail_reportf "no Level_stats rows surfaced";
      let got = frequent_str out.Incremental.frequent in
      let want = frequent_str reference in
      if got <> want then
        QCheck2.Test.fail_reportf "incremental mismatch:\n got %s\nwant %s" got
          want;
      true)

(* ------------------------------------------------------------------ *)
(* Source / Delta accounting *)

let source_seal_accounting () =
  let base = Array.init 8 (fun i -> Itemset.of_list [ i mod 3 ]) in
  let src = Cfq_live.Source.of_mem base in
  Alcotest.(check int) "epoch starts at 0" 0 (Cfq_live.Source.epoch src);
  let io = Io_stats.create () in
  Alcotest.(check bool) "nothing pending, no seal" true
    (Cfq_live.Source.seal src io = None);
  for _ = 1 to 5 do
    Cfq_live.Source.append_tx src (Itemset.of_list [ 0; 1 ])
  done;
  Alcotest.(check int) "pending counted" 5 (Cfq_live.Source.pending src);
  let d =
    match Cfq_live.Source.seal src io with
    | Some d -> d
    | None -> Alcotest.fail "seal with pending returned None"
  in
  Alcotest.(check int) "epoch minted" 1 d.Cfq_live.Delta.epoch;
  Alcotest.(check int) "source epoch follows" 1 (Cfq_live.Source.epoch src);
  Alcotest.(check int) "base recorded" 8 d.Cfq_live.Delta.base_txs;
  Alcotest.(check int) "delta size" 5 d.Cfq_live.Delta.delta_txs;
  Alcotest.(check int) "union" 13 (Cfq_live.Delta.union_txs d);
  Alcotest.(check int) "twin holds the delta" 5
    (Tx_db.size d.Cfq_live.Delta.twin);
  Alcotest.(check int) "database grew" 13
    (Tx_db.size (Cfq_live.Source.db src));
  Alcotest.(check bool) "extraction charged a scan" true (Io_stats.scans io >= 1);
  Alcotest.(check bool) "extraction charged delta pages" true
    (Io_stats.pages_read io >= d.Cfq_live.Delta.delta_pages);
  (* the delta pages are a strict subset of the grown database's pages *)
  Alcotest.(check bool) "delta-sized, not database-sized" true
    (d.Cfq_live.Delta.delta_pages
    <= Tx_db.pages (Cfq_live.Source.db src));
  Alcotest.(check int) "pending reset" 0 (Cfq_live.Source.pending src)

(* ------------------------------------------------------------------ *)
(* the headline property: k seals of maintenance == cold remine *)

(* a live Source over the matrix the suite runs under, plus its cleanup *)
let make_source base =
  if Helpers.test_shards > 1 && Helpers.store_backed then begin
    let path = Filename.temp_file "cfq_live_shard" ".cfqdb" in
    Cfq_shard.Sharded.build ~shards:Helpers.test_shards
      ~replicas:Helpers.test_replicas path base;
    let sh = Cfq_shard.Sharded.open_ ~cache_pages:4 path in
    ( Cfq_live.Source.of_sharded sh,
      fun () ->
        (try Cfq_shard.Sharded.close sh with _ -> ());
        (try Cfq_shard.Sharded.remove_files path with _ -> ()) )
  end
  else if Helpers.test_shards > 1 then
    ( Cfq_live.Source.of_mem
        ~rebuild:(Cfq_shard.Sharded.mem_db ~shards:Helpers.test_shards)
        base,
      fun () -> () )
  else if Helpers.store_backed then begin
    let path = Filename.temp_file "cfq_live_store" ".cfqdb" in
    Cfq_store.Store.build path base;
    let store = Cfq_store.Store.open_ ~cache_pages:4 path in
    ( Cfq_live.Source.of_store store,
      fun () ->
        (try Cfq_store.Store.close store with _ -> ());
        (try Sys.remove path with _ -> ());
        try Sys.remove (path ^ ".wal") with _ -> () )
  end
  else (Cfq_live.Source.of_mem base, fun () -> ())

let gen_live =
  QCheck2.Gen.(
    let* n = int_range 4 6 in
    let* txs = list_size (int_range 24 48) (Helpers.gen_tx n) in
    let* k = int_range 1 3 in
    let* q1 = Helpers.gen_query in
    let* q2 = Helpers.gen_query in
    return (n, txs, k, q1, q2))

let print_live (n, txs, k, q1, q2) =
  Printf.sprintf "n=%d k=%d #txs=%d q1=%s q2=%s" n k (List.length txs)
    (Query.to_string q1) (Query.to_string q2)

let maintenance_equals_cold_remine =
  Helpers.qtest ~count:35 "live: k seals of maintenance equal a cold remine"
    gen_live print_live (fun (n, txs, k, q1, q2) ->
      let sets = Array.of_list (List.map Itemset.of_list txs) in
      let total = Array.length sets in
      let base_len = total / 2 in
      let base = Array.sub sets 0 base_len in
      let rest = total - base_len in
      let chunk i =
        (* k roughly equal delta batches covering sets[base_len, total) *)
        let lo = base_len + (rest * i / k) and hi = base_len + (rest * (i + 1) / k) in
        Array.sub sets lo (hi - lo)
      in
      let info = Helpers.small_info n in
      let src, cleanup = make_source base in
      let service =
        Service.create
          ~config:{ Service.default_config with domains = 1 }
          (Cfq_core.Exec.context (Cfq_live.Source.db src) info)
      in
      Fun.protect ~finally:(fun () ->
          Service.shutdown service;
          cleanup ())
      @@ fun () ->
      Service.attach_source service src;
      let queries = [ q1; q2 ] in
      (* warm the caches at epoch 0 *)
      List.iter (fun q -> ignore (expect_ok (Service.run service q) : Service.answer)) queries;
      let ok = ref true in
      for i = 0 to k - 1 do
        let delta = chunk i in
        Array.iter (Service.ingest service) delta;
        (match Service.seal_live service with
        | Some live ->
            if live.Service.lv_epoch <> Cfq_live.Source.epoch src then begin
              QCheck2.Test.fail_reportf "seal %d minted epoch %d, source at %d" i
                live.Service.lv_epoch (Cfq_live.Source.epoch src)
            end
        | None ->
            if Array.length delta > 0 then
              QCheck2.Test.fail_reportf "seal %d ignored %d pending" i
                (Array.length delta));
        (* cold reference: a fresh service-free execution over the grown
           prefix, same backend matrix *)
        let prefix = Array.sub sets 0 (base_len + (rest * (i + 1) / k)) in
        let cold_ctx = Cfq_core.Exec.context (Helpers.db_of_sets prefix) info in
        List.iter
          (fun q ->
            let warm = expect_ok (Service.run service q) in
            let cold = Cfq_core.Exec.run ~collect_pairs:true cold_ctx q in
            let got = pair_str warm.Service.pairs in
            let want = pair_str cold.Cfq_core.Exec.pairs in
            if got <> want then begin
              ok := false;
              QCheck2.Test.fail_reportf
                "seal %d: warm answer diverged\n got %s\nwant %s" i got want
            end;
            (* the maintained cache answers without a full remine.  An
               unsatisfiable query is nominally "cold" (nothing was ever
               mined for it, so nothing was promoted) but pays no scans
               either — the scan charge is the real criterion *)
            if Array.length delta > 0 && warm.Service.scans > 0 then begin
              ok := false;
              QCheck2.Test.fail_reportf
                "seal %d: promoted query paid %d scans (%s)" i
                warm.Service.scans
                (Service.served_from_name warm.Service.served_from)
            end)
          queries
      done;
      let m = Service.metrics service in
      if k > 0 && m.Metrics.seals = 0 then
        QCheck2.Test.fail_reportf "metrics recorded no seals";
      !ok)

(* ------------------------------------------------------------------ *)
(* fault injection during maintenance: promote-or-evict, never stale *)

let fault_during_maintenance () =
  (* base makes {0},{1},{0,1} frequent; the delta batch makes {2} frequent
     inside the increment, so promotion must count it against the old
     database — which the injector fails deterministically *)
  let base = Array.init 12 (fun _ -> Itemset.of_list [ 0; 1 ]) in
  let info = Helpers.small_info 4 in
  let src = Cfq_live.Source.of_mem base in
  let old_db = Cfq_live.Source.db src in
  let service =
    Service.create
      ~config:{ Service.default_config with domains = 1 }
      (Cfq_core.Exec.context old_db info)
  in
  Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
  Service.attach_source service src;
  let q = Query.make ~s_minsup:0.5 ~t_minsup:0.5 () in
  let r1 = expect_ok (Service.run service q) in
  Alcotest.(check string) "warmed cold" "cold"
    (Service.served_from_name r1.Service.served_from);
  (* fail every read of the pre-seal snapshot from here on *)
  Tx_db.set_faults old_db
    (Some
       (Fault.create { Fault.default_config with Fault.fail_first = max_int }));
  for _ = 1 to 6 do
    Service.ingest service (Itemset.of_list [ 2 ])
  done;
  let live =
    match Service.seal_live service with
    | Some live -> live
    | None -> Alcotest.fail "seal with pending returned None"
  in
  Alcotest.(check int) "epoch minted" 1 live.Service.lv_epoch;
  Alcotest.(check int) "service follows" 1 (Service.epoch service);
  Alcotest.(check bool) "faulted promotion evicted the side" true
    (live.Service.lv_sides_evicted >= 1);
  Alcotest.(check int) "nothing promoted" 0 live.Service.lv_sides_promoted;
  Alcotest.(check bool) "uncovered answer evicted too" true
    (live.Service.lv_answers_evicted >= 1);
  let m = Service.metrics service in
  Alcotest.(check int) "no stale side entries survive" 0 m.Metrics.side_entries;
  Alcotest.(check int) "no stale answers survive" 0 m.Metrics.answer_entries;
  Alcotest.(check int) "epoch gauge" 1 m.Metrics.live_epoch;
  (* the service is unharmed: the same query re-mines against the grown
     database (the new snapshot carries no injector) and matches a cold
     reference exactly *)
  let union_sets =
    Array.append base (Array.init 6 (fun _ -> Itemset.of_list [ 2 ]))
  in
  let cold_ctx = Cfq_core.Exec.context (Tx_db.create union_sets) info in
  let r2 = expect_ok (Service.run service q) in
  Alcotest.(check string) "purged entry goes cold" "cold"
    (Service.served_from_name r2.Service.served_from);
  let cold = Cfq_core.Exec.run ~collect_pairs:true cold_ctx q in
  Alcotest.(check string) "answer matches cold remine"
    (pair_str cold.Cfq_core.Exec.pairs)
    (pair_str r2.Service.pairs)

(* a clean (fault-free) seal promotes in place: warm hits, delta-only cost *)
let clean_seal_promotes () =
  let base = Array.init 16 (fun i -> Itemset.of_list [ i mod 2; 2 ]) in
  let info = Helpers.small_info 4 in
  let src = Cfq_live.Source.of_mem base in
  let service =
    Service.create
      ~config:{ Service.default_config with domains = 1 }
      (Cfq_core.Exec.context (Cfq_live.Source.db src) info)
  in
  Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
  Service.attach_source service src;
  let q = Query.make ~s_minsup:0.4 ~t_minsup:0.4 () in
  ignore (expect_ok (Service.run service q) : Service.answer);
  for _ = 1 to 4 do
    Service.ingest service (Itemset.of_list [ 0; 2 ])
  done;
  let live =
    match Service.seal_live service with
    | Some live -> live
    | None -> Alcotest.fail "seal with pending returned None"
  in
  Alcotest.(check int) "sealed the batch" 4 live.Service.lv_sealed;
  Alcotest.(check bool) "sides promoted" true (live.Service.lv_sides_promoted >= 1);
  Alcotest.(check bool) "answer promoted" true
    (live.Service.lv_answers_promoted >= 1);
  Alcotest.(check int) "no evictions" 0
    (live.Service.lv_sides_evicted + live.Service.lv_answers_evicted);
  let r2 = expect_ok (Service.run service q) in
  Alcotest.(check string) "promoted answer serves verbatim" "answer-cache"
    (Service.served_from_name r2.Service.served_from);
  let cold_ctx =
    Cfq_core.Exec.context
      (Tx_db.create
         (Array.append base (Array.init 4 (fun _ -> Itemset.of_list [ 0; 2 ]))))
      info
  in
  let cold = Cfq_core.Exec.run ~collect_pairs:true cold_ctx q in
  Alcotest.(check string) "and byte-identically"
    (pair_str cold.Cfq_core.Exec.pairs)
    (pair_str r2.Service.pairs);
  (* maintenance cost is delta-sized: the pass never paid a full scan of
     the grown database per cached entry beyond the bounded FUP old scan *)
  Alcotest.(check bool) "maintenance charged pages" true (live.Service.lv_pages_read >= 1);
  Alcotest.(check bool) "bounded old scans" true
    (live.Service.lv_old_scans <= live.Service.lv_sides_promoted)

(* condensation across seals: a condensed service maintained over k seals
   answers byte-identically to a raw twin fed the same appends — the
   promote/re-close path must be invisible at every epoch *)
let condensed_twin_across_seals () =
  let base =
    Array.init 24 (fun i ->
        if i mod 3 = 0 then Itemset.of_list [ 0; 1; 2 ] else Itemset.of_list [ i mod 4 ])
  in
  let info = Helpers.small_info 5 in
  let mk condense =
    let src = Cfq_live.Source.of_mem base in
    let service =
      Service.create
        ~config:{ Service.default_config with domains = 1; condense }
        (Cfq_core.Exec.context (Cfq_live.Source.db src) info)
    in
    Service.attach_source service src;
    service
  in
  let raw = mk false and cond = mk true in
  Fun.protect ~finally:(fun () ->
      Service.shutdown raw;
      Service.shutdown cond)
  @@ fun () ->
  let queries =
    [
      Query.make ~s_minsup:0.2 ~t_minsup:0.2 ();
      Query.make ~s_minsup:0.3 ~t_minsup:0.25
        ~s_constraints:[ Cfq_constr.One_var.Card_cmp (Cfq_constr.Cmp.Le, 2) ]
        ();
    ]
  in
  let check_twins label =
    List.iteri
      (fun i q ->
        let ar = expect_ok (Service.run raw q) in
        let ac = expect_ok (Service.run cond q) in
        Alcotest.(check string)
          (Printf.sprintf "%s query %d: twins agree" label i)
          (pair_str ar.Service.pairs) (pair_str ac.Service.pairs))
      queries
  in
  check_twins "epoch 0";
  let deltas =
    [ [ [ 0; 1; 2 ]; [ 0; 1; 2 ]; [ 3 ] ]; [ [ 0; 1; 2 ]; [ 1; 2 ]; [ 2 ] ] ]
  in
  List.iteri
    (fun k delta ->
      List.iter
        (fun tx ->
          let s = Itemset.of_list tx in
          Service.ingest raw s;
          Service.ingest cond s)
        delta;
      let seal service name =
        match Service.seal_live service with
        | Some live -> live.Service.lv_epoch
        | None -> Alcotest.failf "%s: seal %d ignored pending appends" name k
      in
      let er = seal raw "raw" and ec = seal cond "condensed" in
      Alcotest.(check int) (Printf.sprintf "seal %d: same epoch" k) er ec;
      check_twins (Printf.sprintf "epoch %d" ec))
    deltas;
  let m = Service.metrics cond in
  Alcotest.(check bool) "condensed twin reconstructed across seals" true
    (m.Metrics.reconstructions > 0)

let suite =
  [
    Alcotest.test_case "promoted_minsup units" `Quick promoted_minsup_units;
    Alcotest.test_case "promoted_minsup covers all fractions" `Quick
      promoted_minsup_covers;
    update_abs_equals_union_mine;
    Alcotest.test_case "source seal accounting" `Quick source_seal_accounting;
    maintenance_equals_cold_remine;
    Alcotest.test_case "fault during maintenance" `Quick fault_during_maintenance;
    Alcotest.test_case "clean seal promotes in place" `Quick clean_seal_promotes;
    Alcotest.test_case "condensed twin across seals" `Quick condensed_twin_across_seals;
  ]
