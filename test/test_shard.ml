(* The sharded subsystem: manifest round-trips and corruption rejection,
   tid-range partitioning that reproduces the global page geometry
   byte-for-byte, count-distribution mining equivalence over a
   shards x kernels x domains grid (qcheck), deterministic fault twins
   with the injector pinned to one shard, per-shard circuit-breaker
   isolation in the service, orphan-free failed builds, and manifest
   self-healing after an out-of-band shard seal. *)

open Cfq_itembase
open Cfq_txdb
open Cfq_mining
open Cfq_core
open Cfq_service
open Cfq_shard

let unit name f = Alcotest.test_case name `Quick f

let tmp_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "cfq_shard_test_%s_%d.cfqdb" name (Unix.getpid ()))

let sets_of_lists ls = Array.of_list (List.map Itemset.of_list ls)

(* a tiny page: 14 items fill it exactly, so small databases span pages *)
let small_pm = Page_model.make ~page_size_bytes:64 ()

let all_txs db =
  List.init (Tx_db.size db) (fun i ->
      let tx = Tx_db.get db i in
      (tx.Transaction.tid, Itemset.to_list tx.Transaction.items))

(* an injector with no active failure modes drives the checksum walk *)
let verify_checksums db =
  Tx_db.set_faults db (Some (Fault.create Fault.default_config));
  let r = Tx_db.verify db in
  Tx_db.set_faults db None;
  r

let fixed_lists =
  List.init 40 (fun i ->
      List.init ((i mod 6) + 1) (fun j -> (i + (3 * j)) mod 9))

(* ------------------------------------------------------------------ *)
(* manifest *)

let manifest_roundtrip () =
  let path = tmp_path "manifest" in
  let m =
    {
      Manifest.generation = 3;
      partition = Manifest.Hash;
      universe = 10;
      n_txs = 7;
      n_pages = 2;
      replicas = 2;
      shards =
        [|
          {
            Manifest.s_txs = 4;
            s_pages = 1;
            s_generation = 2;
            s_replicas =
              [|
                { Manifest.r_generation = 2; r_health = Manifest.Healthy };
                { Manifest.r_generation = 1; r_health = Manifest.Stale };
              |];
          };
          {
            Manifest.s_txs = 3;
            s_pages = 1;
            s_generation = 5;
            s_replicas =
              [|
                { Manifest.r_generation = 5; r_health = Manifest.Healthy };
                { Manifest.r_generation = 5; r_health = Manifest.Quarantined };
              |];
          };
        |];
      checksums = [| 0xCAFE; 0xBEEF |];
    }
  in
  Fun.protect ~finally:(fun () -> Sharded.remove_files path) @@ fun () ->
  Manifest.write path m;
  Alcotest.(check bool) "probe accepts" true (Manifest.is_manifest path);
  Alcotest.(check bool) "round-trip" true (Manifest.read path = m);
  (* flip a payload byte: the CRC must reject *)
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  ignore (Unix.lseek fd 30 Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.of_string "\xFF") 0 1);
  Unix.close fd;
  match Manifest.read path with
  | _ -> Alcotest.fail "corrupt manifest accepted"
  | exception Manifest.Bad_manifest _ -> ()

let plain_segment_is_not_a_manifest () =
  let path = tmp_path "plain" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove path with _ -> ());
      try Sys.remove (path ^ ".wal") with _ -> ())
  @@ fun () ->
  Cfq_store.Store.build path (sets_of_lists [ [ 1; 2 ]; [ 3 ] ]);
  Alcotest.(check bool) "segment rejected" false (Manifest.is_manifest path);
  Alcotest.(check bool) "missing file rejected" false
    (Manifest.is_manifest (path ^ ".nothere"))

(* ------------------------------------------------------------------ *)
(* partitioner: tid-range shard boundaries sit on page-run starts, so
   the composite reproduces the unsharded page geometry exactly *)

let tid_range_is_io_identical () =
  let sets = sets_of_lists fixed_lists in
  let mono = Tx_db.create ~page_model:small_pm sets in
  List.iter
    (fun shards ->
      let db = Sharded.mem_db ~page_model:small_pm ~shards sets in
      let tag s = Printf.sprintf "%s (shards=%d)" s shards in
      Alcotest.(check int) (tag "size") (Tx_db.size mono) (Tx_db.size db);
      Alcotest.(check int) (tag "pages") (Tx_db.pages mono) (Tx_db.pages db);
      for i = 0 to Tx_db.size mono - 1 do
        Alcotest.(check int) (tag "page_of") (Tx_db.page_of_tx mono i)
          (Tx_db.page_of_tx db i)
      done;
      Alcotest.(check (list (pair int (list int)))) (tag "content")
        (all_txs mono) (all_txs db);
      (match verify_checksums db with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" (tag "verify") (Cfq_error.to_string e));
      (* logical scan charges agree too *)
      let scan db =
        let io = Io_stats.create () in
        Tx_db.begin_scan db io;
        (Io_stats.scans io, Io_stats.pages_read io)
      in
      Alcotest.(check (pair int int)) (tag "scan charge") (scan mono) (scan db))
    [ 1; 2; 3; 7; 40 ]

let hash_partition_same_answers () =
  let sets = sets_of_lists fixed_lists in
  let mono = Tx_db.create sets in
  let db = Sharded.mem_db ~partition:Manifest.Hash ~shards:3 sets in
  Alcotest.(check int) "size" (Tx_db.size mono) (Tx_db.size db);
  (* tid order differs but supports are additive over any partition *)
  let io = Io_stats.create () in
  List.iter
    (fun s ->
      let s = Itemset.of_list s in
      Alcotest.(check int)
        (Printf.sprintf "support %s" (Itemset.to_string s))
        (Tx_db.support mono io s) (Tx_db.support db io s))
    [ [ 0 ]; [ 1; 4 ]; [ 2; 5; 8 ]; [ 3 ]; [ 0; 6 ] ];
  match verify_checksums db with
  | Ok () -> ()
  | Error e -> Alcotest.failf "verify: %s" (Cfq_error.to_string e)

let chunk_runs_memoized () =
  let sets = sets_of_lists fixed_lists in
  let db = Tx_db.create ~page_model:small_pm sets in
  Alcotest.(check bool) "chunk runs bounded by pages" true
    (Tx_db.chunk_runs db <= Tx_db.pages db && Tx_db.chunk_runs db > 0);
  let c1 = Tx_db.scan_chunks db ~max_chunks:4 in
  let c2 = Tx_db.scan_chunks db ~max_chunks:4 in
  Alcotest.(check (list (pair int int))) "memoized chunks stable" c1 c2;
  (* chunks cover [0, size) without gaps *)
  let covered =
    List.fold_left
      (fun next (lo, hi) ->
        Alcotest.(check int) "contiguous" next lo;
        hi + 1)
      0 c1
  in
  Alcotest.(check int) "full cover" (Tx_db.size db) covered;
  let sharded = Sharded.mem_db ~page_model:small_pm ~shards:3 sets in
  Alcotest.(check int) "sharded composite exposes the same chunk runs"
    (Tx_db.chunk_runs db) (Tx_db.chunk_runs sharded)

(* ------------------------------------------------------------------ *)
(* count-distribution equivalence: answers, frequent sets with supports,
   and ccc identical for every shards x kernel x domains combination;
   for the trie kernel the composite I/O charges match too *)

let signature r =
  let pairs =
    Helpers.sorted_pairs
      (List.map
         (fun (s, t) -> (s.Frequent.set, t.Frequent.set))
         r.Exec.pairs)
  in
  let side (sr : Exec.side_report) =
    List.sort compare
      (Array.to_list
         (Array.map
            (fun e -> (Itemset.to_list e.Frequent.set, e.Frequent.support))
            sr.Exec.valid))
  in
  (pairs, side r.Exec.s, side r.Exec.t, Exec.total_counted r, Exec.total_checks r)

let grid_configs =
  [
    (None, 1);
    (None, 3);
    (Some Counting.Auto, 1);
    (Some Counting.Auto, 3);
    (Some Counting.Direct2, 1);
    (Some Counting.Vertical, 1);
  ]

let qcheck_count_distribution =
  let gen =
    QCheck2.Gen.(
      let* n = int_range 5 7 in
      let* txs = Helpers.gen_db_lists n in
      let* q = Helpers.gen_query in
      return (n, txs, q))
  in
  Helpers.qtest ~count:20 "sharded mining = single-store mining (grid)" gen
    (fun (n, txs, q) ->
      Printf.sprintf "n=%d txs=%d q=%s" n (List.length txs)
        (Query.to_string q))
    (fun (n, txs, q) ->
      let sets = sets_of_lists txs in
      let info = Helpers.small_info n in
      let run db kernel domains =
        let ctx = Exec.context db info in
        let par = Counting.par ~min_rows_per_domain:1 domains in
        match Exec.run_result ~collect_pairs:true ~par ?kernel ctx q with
        | Ok r ->
            let io =
              if kernel = None then
                (Io_stats.scans r.Exec.io, Io_stats.pages_read r.Exec.io)
              else (0, 0)
            in
            Ok (signature r, io)
        | Error e -> Error (Cfq_error.to_string e)
      in
      List.for_all
        (fun shards ->
          List.for_all
            (fun (kernel, domains) ->
              run (Tx_db.create sets) kernel domains
              = run (Sharded.mem_db ~shards sets) kernel domains)
            grid_configs)
        [ 2; 3; 7 ])

(* ------------------------------------------------------------------ *)
(* fault twins: the same injector pinned to the same shard of two
   identically built composites produces identical outcome sequences *)

let shard_pinned_fault_twin () =
  let sets = sets_of_lists fixed_lists in
  let config =
    { Fault.default_config with Fault.fail_first = 1; corrupt_p = 0.3; max_corrupt = 1 }
  in
  let twin () =
    let db = Sharded.mem_db ~page_model:small_pm ~shards:3 sets in
    let subs = Option.get (Tx_db.shards db) in
    Tx_db.set_faults subs.(1) (Some (Fault.create config));
    db
  in
  let replay db =
    let out = ref [] in
    for _ = 1 to 6 do
      let io = Io_stats.create () in
      let n = ref 0 in
      (match Tx_db.iter_scan db io (fun _ -> incr n) with
      | () -> out := Printf.sprintf "ok:%d" !n :: !out
      | exception Cfq_error.Error e -> out := Cfq_error.to_string e :: !out)
    done;
    List.rev !out
  in
  let a = replay (twin ()) and b = replay (twin ()) in
  Alcotest.(check (list string)) "identical replay" a b;
  (* error pages are in composite coordinates: within shard 1's range *)
  let db = twin () in
  let lo = Tx_db.shard_page_base db 1 and hi = Tx_db.shard_page_base db 2 in
  let rec first_error tries =
    if tries = 0 then None
    else
      let io = Io_stats.create () in
      match Tx_db.iter_scan db io (fun _ -> ()) with
      | () -> first_error (tries - 1)
      | exception
          Cfq_error.Error
            (Cfq_error.Transient_io { page } | Cfq_error.Corrupt_page { page })
        ->
          Some page
  in
  match first_error 8 with
  | None -> Alcotest.fail "pinned injector never fired"
  | Some page ->
      Alcotest.(check bool) "globalized error page in shard 1's range" true
        (page >= lo && page < hi);
      Alcotest.(check int) "page attributed to shard 1" 1
        (Tx_db.shard_of_page db page)

let shard_pinned_mining_twin () =
  let sets = sets_of_lists fixed_lists in
  let info = Helpers.small_info 9 in
  let q = Query.make ~s_minsup:0.1 ~t_minsup:0.1 () in
  let config = { Fault.default_config with Fault.transient_p = 0.05 } in
  let outcome () =
    let db = Sharded.mem_db ~page_model:small_pm ~shards:3 sets in
    let subs = Option.get (Tx_db.shards db) in
    Tx_db.set_faults subs.(2) (Some (Fault.create config));
    let par = Counting.par ~min_rows_per_domain:1 3 in
    match
      Exec.run_result ~collect_pairs:true ~par ~kernel:Counting.Auto
        (Exec.context db info) q
    with
    | Ok r -> Ok (signature r)
    | Error e -> Error (Cfq_error.to_string e)
  in
  (* faulted distributed passes run shards sequentially: domains=3 must
     still be deterministic *)
  Alcotest.(check bool) "same outcome across twin runs" true
    (outcome () = outcome ())

(* ------------------------------------------------------------------ *)
(* service: a fault pinned to one shard trips only that shard's breaker;
   other shards keep serving and the caches stay available *)

let breaker_isolation () =
  let sets = sets_of_lists fixed_lists in
  let db = Sharded.mem_db ~page_model:small_pm ~shards:3 sets in
  let subs = Option.get (Tx_db.shards db) in
  let info = Helpers.small_info 9 in
  let config =
    {
      Service.default_config with
      Service.domains = 1;
      retries = 0;
      breaker_threshold = 1;
      breaker_cooldown = 1;
      degrade = false;
    }
  in
  let service = Service.create ~config (Exec.context db info) in
  Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
  let q_narrow = Query.make ~s_minsup:0.3 ~t_minsup:0.3 () in
  let q_broad = Query.make ~s_minsup:0.1 ~t_minsup:0.1 () in
  (* prime the answer cache while healthy *)
  (match Service.run service q_narrow with
  | Ok a ->
      Alcotest.(check bool) "primed cold" true (a.Service.served_from = Service.Cold)
  | Error e -> Alcotest.failf "prime: %s" (Service.error_to_string e));
  (* shard 1 goes bad *)
  Tx_db.set_faults subs.(1)
    (Some (Fault.create { Fault.default_config with Fault.transient_p = 1.0 }));
  (match Service.run service q_broad with
  | Error (Service.Fault _) -> ()
  | Error e -> Alcotest.failf "expected a fault, got %s" (Service.error_to_string e)
  | Ok _ -> Alcotest.fail "expected a fault");
  let m = Service.metrics service in
  let row k = List.nth m.Metrics.shards k in
  Alcotest.(check int) "three shard rows" 3 (List.length m.Metrics.shards);
  Alcotest.(check string) "shard 1 breaker open" "open" (row 1).Metrics.shard_breaker;
  Alcotest.(check int) "shard 1 tripped" 1 (row 1).Metrics.shard_trips;
  Alcotest.(check int) "shard 1 failure attributed" 1 (row 1).Metrics.shard_failures;
  List.iter
    (fun k ->
      Alcotest.(check string)
        (Printf.sprintf "shard %d breaker stays closed" k)
        "closed" (row k).Metrics.shard_breaker;
      Alcotest.(check int)
        (Printf.sprintf "shard %d no failures" k)
        0 (row k).Metrics.shard_failures)
    [ 0; 2 ];
  (* the caches keep serving while breakers are open *)
  (match Service.run service q_narrow with
  | Ok a ->
      Alcotest.(check bool) "cache served during the outage" true
        (a.Service.served_from = Service.Answer_cache)
  | Error e -> Alcotest.failf "cached query: %s" (Service.error_to_string e));
  (* shard 1 recovers: an uncached query is shed once while the shard
     breaker cools down, then the probe closes it *)
  Tx_db.set_faults subs.(1) None;
  (match Service.run service q_broad with
  | Error Service.Overloaded -> ()
  | Error e -> Alcotest.failf "expected Overloaded, got %s" (Service.error_to_string e)
  | Ok _ -> Alcotest.fail "expected the shard cooldown to shed");
  (match Service.run service q_broad with
  | Ok a ->
      Alcotest.(check bool) "probe mined cold" true
        (a.Service.served_from = Service.Cold)
  | Error e -> Alcotest.failf "probe: %s" (Service.error_to_string e));
  let m = Service.metrics service in
  let row k = List.nth m.Metrics.shards k in
  List.iter
    (fun k ->
      Alcotest.(check string)
        (Printf.sprintf "shard %d closed after the cold success" k)
        "closed" (row k).Metrics.shard_breaker)
    [ 0; 1; 2 ];
  Alcotest.(check int) "the cooldown shed was charged to shard 1" 1
    (row 1).Metrics.shard_shed

(* a store-wide injector on the composite keeps shard breakers out of it:
   the failure is not attributable to any one shard *)
let composite_fault_is_store_wide () =
  let sets = sets_of_lists fixed_lists in
  let db = Sharded.mem_db ~page_model:small_pm ~shards:3 sets in
  let info = Helpers.small_info 9 in
  let config =
    {
      Service.default_config with
      Service.domains = 1;
      retries = 0;
      breaker_threshold = 1;
      degrade = false;
    }
  in
  let service = Service.create ~config (Exec.context db info) in
  Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
  Tx_db.set_faults db
    (Some (Fault.create { Fault.default_config with Fault.transient_p = 1.0 }));
  (match Service.run service (Query.make ~s_minsup:0.1 ~t_minsup:0.1 ()) with
  | Error (Service.Fault _) -> ()
  | _ -> Alcotest.fail "expected a fault");
  let m = Service.metrics service in
  Alcotest.(check int) "global breaker tripped" 1 m.Metrics.breaker_trips;
  List.iter
    (fun (row : Metrics.shard_row) ->
      Alcotest.(check string)
        (Printf.sprintf "shard %d breaker untouched" row.Metrics.shard)
        "closed" row.Metrics.shard_breaker;
      Alcotest.(check int) "no shard attribution" 0 row.Metrics.shard_failures)
    m.Metrics.shards;
  Tx_db.set_faults db None

(* ------------------------------------------------------------------ *)
(* durability: failed builds leave no orphans; out-of-band shard seals
   self-heal on open; sharded ingestion round-trips *)

let failed_build_leaves_no_orphans () =
  let path = tmp_path "orphans" in
  let sets = sets_of_lists fixed_lists in
  (match Sharded.build ~shards:3 ~on_shard_built:(fun k -> if k = 1 then failwith "boom") path sets with
  | () -> Alcotest.fail "build was supposed to fail"
  | exception Failure _ -> ());
  let leftovers =
    List.filter Sys.file_exists
      (path :: (path ^ ".tmp")
      :: List.concat_map
           (fun k -> [ Sharded.shard_path path k; Sharded.shard_path path k ^ ".wal" ])
           [ 0; 1; 2 ])
  in
  Alcotest.(check (list string)) "no files survive a failed build" [] leftovers

let open_self_heals_a_stale_manifest () =
  let path = tmp_path "heal" in
  let sets = sets_of_lists fixed_lists in
  Fun.protect ~finally:(fun () -> Sharded.remove_files path) @@ fun () ->
  Sharded.build ~page_model:small_pm ~shards:3 path sets;
  let gen0 = (Manifest.read path).Manifest.generation in
  (* seal shard 1 behind the manifest's back: the torn-seal window *)
  let st = Cfq_store.Store.open_ (Sharded.shard_path path 1) in
  Cfq_store.Store.append_tx st (Itemset.of_list [ 0; 7 ]);
  ignore (Cfq_store.Store.seal st);
  Cfq_store.Store.close st;
  let sh = Sharded.open_ ~cache_pages:4 path in
  Fun.protect ~finally:(fun () -> Sharded.close sh) @@ fun () ->
  Alcotest.(check int) "healed size includes the stray tx"
    (Array.length sets + 1) (Sharded.size sh);
  Alcotest.(check bool) "manifest generation bumped" true
    ((Sharded.manifest sh).Manifest.generation > gen0);
  (match verify_checksums (Sharded.db sh) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "healed verify: %s" (Cfq_error.to_string e));
  (* a second open finds the healed manifest consistent *)
  let sh2 = Sharded.open_ path in
  let gen_after = (Sharded.manifest sh2).Manifest.generation in
  Sharded.close sh2;
  Alcotest.(check int) "no further heal" (Sharded.manifest sh).Manifest.generation
    gen_after

let sharded_ingestion_roundtrip () =
  let path = tmp_path "ingest" in
  let sets = sets_of_lists fixed_lists in
  Fun.protect ~finally:(fun () -> Sharded.remove_files path) @@ fun () ->
  Sharded.build ~page_model:small_pm ~shards:3 path sets;
  let sh = Sharded.open_ ~cache_pages:4 path in
  Sharded.append_tx sh (Itemset.of_list [ 1; 2; 8 ]);
  Sharded.append_tx sh (Itemset.of_list [ 5 ]);
  Alcotest.(check int) "not visible before seal" (Array.length sets)
    (Sharded.size sh);
  Alcotest.(check int) "sealed" 2 (Sharded.seal sh);
  Alcotest.(check int) "visible" (Array.length sets + 2) (Sharded.size sh);
  (* tid-range appends land on the last shard: global order is the
     original batch followed by the appended txs *)
  let expected =
    List.map Itemset.to_list (Array.to_list sets) @ [ [ 1; 2; 8 ]; [ 5 ] ]
  in
  Alcotest.(check (list (list int))) "content order"
    expected
    (List.map snd (all_txs (Sharded.db sh)));
  Sharded.close sh;
  (* reopen: durable, consistent, verifiable *)
  let sh = Sharded.open_ path in
  Alcotest.(check int) "durable" (Array.length sets + 2) (Sharded.size sh);
  (match verify_checksums (Sharded.db sh) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "verify: %s" (Cfq_error.to_string e));
  Sharded.close sh

(* the on-disk sharded composite mines identically to the in-memory one *)
let disk_matches_memory () =
  let path = tmp_path "disk" in
  let sets = sets_of_lists fixed_lists in
  let info = Helpers.small_info 9 in
  let q = Query.make ~s_minsup:0.1 ~t_minsup:0.1 () in
  Fun.protect ~finally:(fun () -> Sharded.remove_files path) @@ fun () ->
  Sharded.build ~page_model:small_pm ~shards:3 path sets;
  let sh = Sharded.open_ ~cache_pages:4 path in
  Fun.protect ~finally:(fun () -> Sharded.close sh) @@ fun () ->
  let run db =
    let r = Exec.run ~collect_pairs:true (Exec.context db info) q in
    (signature r, (Io_stats.scans r.Exec.io, Io_stats.pages_read r.Exec.io))
  in
  let mem = run (Sharded.mem_db ~page_model:small_pm ~shards:3 sets) in
  let disk = run (Sharded.db sh) in
  Alcotest.(check bool) "identical answers, supports, ccc and I/O" true
    (mem = disk)

(* ------------------------------------------------------------------ *)
(* replication: failover identity, mirrored quorum writes, scrub/repair *)

let permanent_fault () =
  Some (Fault.create { Fault.default_config with Fault.transient_p = 1.0 })

let run_signature db info q =
  let r = Exec.run ~collect_pairs:true (Exec.context db info) q in
  (signature r, (Io_stats.scans r.Exec.io, Io_stats.pages_read r.Exec.io))

(* a permanently faulted replica is invisible: answers, ccc and logical
   page charges stay byte-identical to the unreplicated store, served by
   failover to the healthy sibling *)
let replica_failover_identity () =
  let path = tmp_path "replica_id" and ref_path = tmp_path "replica_ref" in
  let sets = sets_of_lists fixed_lists in
  let info = Helpers.small_info 9 in
  let q = Query.make ~s_minsup:0.1 ~t_minsup:0.1 () in
  Fun.protect ~finally:(fun () ->
      Sharded.remove_files path;
      Sharded.remove_files ref_path)
  @@ fun () ->
  Sharded.build ~page_model:small_pm ~shards:3 ref_path sets;
  Sharded.build ~page_model:small_pm ~shards:3 ~replicas:2 path sets;
  let reference =
    let sh = Sharded.open_ ~cache_pages:4 ref_path in
    Fun.protect ~finally:(fun () -> Sharded.close sh) @@ fun () ->
    run_signature (Sharded.db sh) info q
  in
  let sh = Sharded.open_ ~cache_pages:4 path in
  Fun.protect ~finally:(fun () -> Sharded.close sh) @@ fun () ->
  Alcotest.(check int) "two replicas recorded" 2 (Sharded.replicas sh);
  Alcotest.(check bool) "replicated healthy run identical" true
    (run_signature (Sharded.db sh) info q = reference);
  (* permanently fault each shard's preferred replica in turn *)
  for k = 0 to 2 do
    Sharded.set_replica_fault sh ~shard:k ~replica:0 (permanent_fault ());
    Alcotest.(check bool)
      (Printf.sprintf "faulted shard %d replica 0: identical" k)
      true
      (run_signature (Sharded.db sh) info q = reference);
    Sharded.set_replica_fault sh ~shard:k ~replica:0 None
  done;
  Alcotest.(check bool) "failovers counted" true (Sharded.failovers sh > 0)

let nth_health g j = Replica.health g ~replica:j

(* mirrored writes: a write-faulted replica goes stale, the quorum keeps
   accepting; losing the quorum raises; repair re-admits the laggard *)
let mirrored_quorum_and_repair () =
  let path = tmp_path "quorum" in
  let sets = sets_of_lists fixed_lists in
  Fun.protect ~finally:(fun () -> Sharded.remove_files path) @@ fun () ->
  Sharded.build ~page_model:small_pm ~shards:2 ~replicas:3 path sets;
  let sh = Sharded.open_ ~cache_pages:4 path in
  Fun.protect ~finally:(fun () -> Sharded.close sh) @@ fun () ->
  let last = Sharded.shard_count sh - 1 in
  let g = (Sharded.groups sh).(last) in
  (* replica 2 starts dropping writes: 2/3 is still a quorum *)
  Sharded.set_replica_write_fault sh ~shard:last ~replica:2 true;
  Sharded.append_tx sh (Itemset.of_list [ 1; 2; 8 ]);
  Alcotest.(check int) "sealed under quorum" 1 (Sharded.seal sh);
  Alcotest.(check bool) "laggard went stale" true
    (nth_health g 2 = Manifest.Stale);
  Alcotest.(check bool) "manifest records the stale replica" true
    ((Sharded.manifest sh).Manifest.shards.(last).Manifest.s_replicas.(2)
       .Manifest.r_health = Manifest.Stale);
  (* replica 1 drops writes too: 1/3 accepting loses the quorum *)
  Sharded.set_replica_write_fault sh ~shard:last ~replica:1 true;
  (match Sharded.append_tx sh (Itemset.of_list [ 5 ]) with
  | () -> Alcotest.fail "append below quorum was supposed to fail"
  | exception Cfq_error.Error (Cfq_error.Transient_io _) -> ());
  Sharded.set_replica_write_fault sh ~shard:last ~replica:1 false;
  Sharded.set_replica_write_fault sh ~shard:last ~replica:2 false;
  (* anti-entropy: both laggards rebuilt from the healthy survivor *)
  let report = Scrub.run sh in
  Alcotest.(check int) "two replicas repaired" 2 report.Scrub.repairs;
  Alcotest.(check int) "no repair failures" 0 report.Scrub.repair_failures;
  for j = 0 to 2 do
    Alcotest.(check bool)
      (Printf.sprintf "replica %d healthy after repair" j)
      true
      (nth_health g j = Manifest.Healthy)
  done;
  Alcotest.(check bool) "health report clean" true
    (Scrub.healthy_report (Scrub.health_report sh));
  (* every replica now byte-agrees: scrub with nothing to do *)
  let report = Scrub.run sh in
  Alcotest.(check int) "second scrub repairs nothing" 0 report.Scrub.repairs;
  Alcotest.(check int) "second scrub finds nothing" 0 report.Scrub.faults_found

(* on-disk rot on one replica: queries fail over silently; the scrubber
   finds the bad page, quarantines, rebuilds and re-admits the replica *)
let scrub_repairs_disk_rot () =
  let path = tmp_path "rot" in
  let sets = sets_of_lists fixed_lists in
  let info = Helpers.small_info 9 in
  let q = Query.make ~s_minsup:0.1 ~t_minsup:0.1 () in
  Fun.protect ~finally:(fun () -> Sharded.remove_files path) @@ fun () ->
  Sharded.build ~page_model:small_pm ~shards:3 ~replicas:2 path sets;
  let reference =
    let sh = Sharded.open_ ~cache_pages:4 path in
    Fun.protect ~finally:(fun () -> Sharded.close sh) @@ fun () ->
    run_signature (Sharded.db sh) info q
  in
  (* rot a byte in shard 0, replica 0's first data page (pages are 64 B) *)
  let victim = Replica.replica_path path ~shard:0 ~replica:0 in
  let fd = Unix.openfile victim [ Unix.O_RDWR ] 0 in
  ignore (Unix.lseek fd (64 + 7) Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.of_string "\xFF") 0 1);
  Unix.close fd;
  let sh = Sharded.open_ ~cache_pages:4 path in
  Fun.protect ~finally:(fun () -> Sharded.close sh) @@ fun () ->
  Alcotest.(check bool) "rotten replica: answers identical via failover" true
    (run_signature (Sharded.db sh) info q = reference);
  Alcotest.(check bool) "failover happened" true (Sharded.failovers sh > 0);
  let report = Scrub.run ~throttle_pages:4 ~throttle_sleep:0.0001 sh in
  Alcotest.(check bool) "scrub found the bad page" true
    (report.Scrub.faults_found >= 1);
  Alcotest.(check int) "scrub repaired the replica" 1 report.Scrub.repairs;
  Alcotest.(check int) "no repair failures" 0 report.Scrub.repair_failures;
  Alcotest.(check bool) "health report clean after repair" true
    (Scrub.healthy_report (Scrub.health_report sh));
  Alcotest.(check bool) "repaired store: answers identical" true
    (run_signature (Sharded.db sh) info q = reference);
  (* a reopen agrees with the repaired manifest: no further healing *)
  let gen = (Sharded.manifest sh).Manifest.generation in
  let sh2 = Sharded.open_ path in
  let gen2 = (Sharded.manifest sh2).Manifest.generation in
  Sharded.close sh2;
  Alcotest.(check int) "reopen does not re-heal" gen gen2

(* the service never sees a failed-over read: no breaker trips, no
   degraded answers, failovers surfaced in the metrics *)
let failover_is_invisible_to_breakers () =
  let path = tmp_path "svc_failover" in
  let sets = sets_of_lists fixed_lists in
  let info = Helpers.small_info 9 in
  Fun.protect ~finally:(fun () -> Sharded.remove_files path) @@ fun () ->
  Sharded.build ~page_model:small_pm ~shards:3 ~replicas:2 path sets;
  let sh = Sharded.open_ ~cache_pages:4 path in
  Fun.protect ~finally:(fun () -> Sharded.close sh) @@ fun () ->
  Sharded.set_replica_fault sh ~shard:1 ~replica:0 (permanent_fault ());
  let config =
    {
      Service.default_config with
      Service.domains = 1;
      retries = 0;
      breaker_threshold = 1;
      breaker_cooldown = 1;
      degrade = true;
    }
  in
  let service = Service.create ~config (Exec.context (Sharded.db sh) info) in
  Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
  List.iter
    (fun (s, t) ->
      match Service.run service (Query.make ~s_minsup:s ~t_minsup:t ()) with
      | Ok _ -> ()
      | Error e ->
          Alcotest.failf "query under failover: %s" (Service.error_to_string e))
    [ (0.1, 0.1); (0.15, 0.2); (0.25, 0.1) ];
  let m = Service.metrics service in
  Alcotest.(check int) "no breaker trips" 0 m.Metrics.breaker_trips;
  Alcotest.(check int) "no degraded answers" 0 m.Metrics.degraded;
  Alcotest.(check int) "no failures" 0 m.Metrics.failures;
  Alcotest.(check int) "no faults reached the service" 0
    (m.Metrics.fault_transient + m.Metrics.fault_corrupt + m.Metrics.fault_crash);
  Alcotest.(check bool) "failovers surfaced in metrics" true
    (m.Metrics.failovers > 0);
  List.iter
    (fun (row : Metrics.shard_row) ->
      Alcotest.(check string)
        (Printf.sprintf "shard %d breaker closed" row.Metrics.shard)
        "closed" row.Metrics.shard_breaker)
    m.Metrics.shards;
  (* shard 1's sink carries the failovers *)
  Alcotest.(check bool) "failovers attributed to shard 1" true
    ((List.nth m.Metrics.shards 1).Metrics.shard_failovers > 0)

(* exhausting every replica surfaces one typed, shard-attributed error *)
let all_replicas_down_is_a_shard_fault () =
  let path = tmp_path "all_down" in
  let sets = sets_of_lists fixed_lists in
  Fun.protect ~finally:(fun () -> Sharded.remove_files path) @@ fun () ->
  Sharded.build ~page_model:small_pm ~shards:3 ~replicas:2 path sets;
  let sh = Sharded.open_ ~cache_pages:4 path in
  Fun.protect ~finally:(fun () -> Sharded.close sh) @@ fun () ->
  Sharded.set_replica_fault sh ~shard:1 ~replica:0 (permanent_fault ());
  Sharded.set_replica_fault sh ~shard:1 ~replica:1 (permanent_fault ());
  let db = Sharded.db sh in
  let io = Io_stats.create () in
  match Tx_db.iter_scan db io (fun _ -> ()) with
  | () -> Alcotest.fail "scan with every replica down was supposed to fail"
  | exception Cfq_error.Error (Cfq_error.Transient_io { page }) ->
      Alcotest.(check int) "error page attributed to shard 1" 1
        (Tx_db.shard_of_page db page)

(* version-1 manifests (no replica section) read as single-replica *)
let manifest_v1_reads_as_single_replica () =
  let path = tmp_path "man_v1" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  (* hand-encode the v1 layout: 52-byte fixed part, 24-byte entries *)
  let ns = 2 and n_pages = 2 in
  let total = 52 + (ns * 24) + (n_pages * 8) + 4 in
  let b = Bytes.make total '\000' in
  Bytes.blit_string "CFQMAN01" 0 b 0 8;
  Bytes.set_int32_le b 8 1l; (* version *)
  Bytes.set_int32_le b 12 0l; (* tid-range *)
  Bytes.set_int32_le b 16 (Int32.of_int ns);
  Bytes.set_int64_le b 20 7L; (* generation *)
  Bytes.set_int64_le b 28 9L; (* n_txs *)
  Bytes.set_int64_le b 36 (Int64.of_int n_pages);
  Bytes.set_int64_le b 44 5L; (* universe *)
  List.iteri
    (fun k (txs, pages, gen) ->
      let off = 52 + (k * 24) in
      Bytes.set_int64_le b off (Int64.of_int txs);
      Bytes.set_int64_le b (off + 8) (Int64.of_int pages);
      Bytes.set_int64_le b (off + 16) (Int64.of_int gen))
    [ (4, 1, 7); (5, 1, 7) ];
  Bytes.set_int64_le b (52 + (ns * 24)) 0xAAL;
  Bytes.set_int64_le b (52 + (ns * 24) + 8) 0xBBL;
  Bytes.set_int32_le b (total - 4)
    (Int32.of_int (Cfq_store.Crc32.sub b 0 (total - 4)));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc;
  let m = Manifest.read path in
  Alcotest.(check int) "single replica" 1 m.Manifest.replicas;
  Alcotest.(check int) "two shards" 2 (Array.length m.Manifest.shards);
  Array.iter
    (fun e ->
      Alcotest.(check int) "one replica entry" 1
        (Array.length e.Manifest.s_replicas);
      Alcotest.(check bool) "healthy" true
        (e.Manifest.s_replicas.(0).Manifest.r_health = Manifest.Healthy);
      Alcotest.(check int) "replica generation mirrors the shard's"
        e.Manifest.s_generation
        e.Manifest.s_replicas.(0).Manifest.r_generation)
    m.Manifest.shards

(* fuzz: arbitrary bit-flips and truncations of the manifest must read
   back fine (untouched) or raise Bad_manifest — nothing else *)
let qcheck_manifest_fuzz =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"manifest fuzz: flips/truncations fail typed"
       ~count:80
       ~print:(fun (off, flip) -> Printf.sprintf "off=%d flip=%b" off flip)
       QCheck2.Gen.(pair (int_bound 4095) bool)
       (fun (off, flip) ->
         let path =
           Filename.temp_file "cfq_manifest_fuzz" ".cfqdb"
         in
         let m =
           {
             Manifest.generation = 1;
             partition = Manifest.Tid_range;
             universe = 9;
             n_txs = 6;
             n_pages = 2;
             replicas = 2;
             shards =
               [|
                 {
                   Manifest.s_txs = 6;
                   s_pages = 2;
                   s_generation = 1;
                   s_replicas =
                     Array.make 2
                       { Manifest.r_generation = 1; r_health = Manifest.Healthy };
                 };
               |];
             checksums = [| 123; 456 |];
           }
         in
         Manifest.write path m;
         let size = (Unix.stat path).Unix.st_size in
         if flip then begin
           let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
           let pos = off mod size in
           let buf = Bytes.create 1 in
           ignore (Unix.lseek fd pos Unix.SEEK_SET);
           ignore (Unix.read fd buf 0 1);
           Bytes.set buf 0 (Char.chr (Char.code (Bytes.get buf 0) lxor 0x10));
           ignore (Unix.lseek fd pos Unix.SEEK_SET);
           ignore (Unix.write fd buf 0 1);
           Unix.close fd
         end
         else Unix.truncate path (off mod size);
         (* the CRC covers every payload byte and any truncation breaks
            the size arithmetic: both mutations must be rejected typed *)
         let ok =
           match Manifest.read path with
           | _ -> false
           | exception Manifest.Bad_manifest _ -> true
         in
         Sys.remove path;
         ok))

(* ------------------------------------------------------------------ *)

let suite =
  [
    unit "manifest round-trip and CRC rejection" manifest_roundtrip;
    unit "manifest probe rejects plain segments" plain_segment_is_not_a_manifest;
    unit "tid-range composite is I/O-identical to unsharded" tid_range_is_io_identical;
    unit "hash partition preserves supports" hash_partition_same_answers;
    unit "scan chunks are memoized and exposed" chunk_runs_memoized;
    qcheck_count_distribution;
    unit "fault twin: shard-pinned injector is deterministic" shard_pinned_fault_twin;
    unit "fault twin: mining outcome deterministic at domains=3" shard_pinned_mining_twin;
    unit "service: breaker isolation per shard" breaker_isolation;
    unit "service: composite faults stay store-wide" composite_fault_is_store_wide;
    unit "failed build leaves no orphans" failed_build_leaves_no_orphans;
    unit "open self-heals a stale manifest" open_self_heals_a_stale_manifest;
    unit "sharded ingestion round-trip" sharded_ingestion_roundtrip;
    unit "disk sharded = memory sharded" disk_matches_memory;
    unit "replica failover keeps answers byte-identical" replica_failover_identity;
    unit "mirrored writes: quorum, stale laggards, repair" mirrored_quorum_and_repair;
    unit "scrub quarantines and repairs on-disk rot" scrub_repairs_disk_rot;
    unit "service: failover trips no breakers" failover_is_invisible_to_breakers;
    unit "all replicas down = typed shard fault" all_replicas_down_is_a_shard_fault;
    unit "v1 manifest reads as single-replica" manifest_v1_reads_as_single_replica;
    qcheck_manifest_fuzz;
  ]
