(* The fault-injection layer: seeded determinism, [fail_first] semantics,
   bounded page corruption caught by the per-page checksums, crash
   injection, and the untouched fast path when no injector is installed. *)

open Cfq_itembase
open Cfq_txdb

(* a store spanning several pages: a tiny page size packs ~3 transactions
   per page, so page-granular faults are observable *)
let small_db () =
  let txs =
    Array.init 32 (fun i ->
        Itemset.of_list [ i mod 5; (i + 1) mod 5; (i + 2) mod 5 ])
  in
  let page_model = Page_model.make ~page_size_bytes:64 () in
  Tx_db.create ~page_model txs

let scan_result db =
  let io = Io_stats.create () in
  let n = ref 0 in
  match Tx_db.iter_scan db io (fun _ -> incr n) with
  | () -> Ok !n
  | exception Cfq_error.Error e -> Error (Cfq_error.to_string e)

let install db config =
  let f = Fault.create config in
  Tx_db.set_faults db (Some f);
  f

(* ------------------------------------------------------------------ *)

let no_faults_scans_everything () =
  let db = small_db () in
  Alcotest.(check bool) "several pages" true (Tx_db.pages db > 3);
  Alcotest.(check (result int string)) "full scan" (Ok 32) (scan_result db);
  (match Tx_db.verify db with
  | Ok () -> ()
  | Error e -> Alcotest.failf "verify: %s" (Cfq_error.to_string e));
  Alcotest.(check bool) "default config inactive" false
    (Fault.is_active Fault.default_config);
  Alcotest.(check bool) "fail_first activates" true
    (Fault.is_active { Fault.default_config with Fault.fail_first = 1 })

let inactive_injector_is_transparent () =
  let db = small_db () in
  let f = install db Fault.default_config in
  Alcotest.(check (result int string)) "full scan" (Ok 32) (scan_result db);
  Alcotest.(check int) "tid 7 intact" 7 (Tx_db.get db 7).Transaction.tid;
  let s = Fault.stats f in
  Alcotest.(check int) "no transients" 0 s.Fault.transient;
  Alcotest.(check int) "no crashes" 0 s.Fault.crashes;
  Alcotest.(check int) "nothing tampered" 0 s.Fault.tampered

let fail_first_fails_exactly_n_reads () =
  let db = small_db () in
  let f = install db { Fault.default_config with Fault.fail_first = 2 } in
  (* each aborted scan consumes one unconditional failure on its first
     page read; the third scan goes clean *)
  Alcotest.(check (result int string))
    "scan 1 fails" (Error "transient I/O error reading page 0") (scan_result db);
  Alcotest.(check (result int string))
    "scan 2 fails" (Error "transient I/O error reading page 0") (scan_result db);
  Alcotest.(check (result int string)) "scan 3 clean" (Ok 32) (scan_result db);
  Alcotest.(check int) "two transients" 2 (Fault.stats f).Fault.transient;
  Alcotest.(check bool) "Transient_io is transient" true
    (Cfq_error.is_transient (Cfq_error.Transient_io { page = 0 }))

let same_seed_same_fault_sequence () =
  let trace () =
    let db = small_db () in
    let f =
      install db
        { Fault.default_config with Fault.seed = 0xFA17L; transient_p = 0.05 }
    in
    let outcomes = List.init 20 (fun _ -> scan_result db) in
    (outcomes, Fault.stats f)
  in
  let o1, s1 = trace () in
  let o2, s2 = trace () in
  Alcotest.(check (list (result int string))) "identical outcomes" o1 o2;
  Alcotest.(check int) "identical stats" s1.Fault.transient s2.Fault.transient;
  (* the trace actually mixes successes and failures *)
  Alcotest.(check bool) "some scans fail" true
    (List.exists (function Error _ -> true | Ok _ -> false) o1);
  Alcotest.(check bool) "some scans succeed" true
    (List.exists (function Ok 32 -> true | _ -> false) o1)

let corruption_is_bounded () =
  let f =
    Fault.create { Fault.default_config with Fault.corrupt_p = 1.0; max_corrupt = 2 }
  in
  (* every read wants to tamper, but only [max_corrupt] distinct pages ever do *)
  for page = 0 to 4 do
    Fault.on_page f ~page
  done;
  Alcotest.(check bool) "page 0 tampered" true (Fault.tampered f ~page:0);
  Alcotest.(check bool) "page 1 tampered" true (Fault.tampered f ~page:1);
  Alcotest.(check bool) "page 2 spared" false (Fault.tampered f ~page:2);
  Alcotest.(check int) "bound respected" 2 (Fault.stats f).Fault.tampered

let checksums_catch_corruption () =
  let db = small_db () in
  let f =
    install db { Fault.default_config with Fault.corrupt_p = 1.0; max_corrupt = 1 }
  in
  Alcotest.(check (result int string))
    "scan detects the tampered page"
    (Error "checksum mismatch on page 0") (scan_result db);
  (match Tx_db.verify db with
  | Error (Cfq_error.Corrupt_page { page = 0 }) -> ()
  | Error e -> Alcotest.failf "verify: unexpected %s" (Cfq_error.to_string e)
  | Ok () -> Alcotest.fail "verify missed the tampered page");
  Alcotest.(check bool) "detections counted" true
    ((Fault.stats f).Fault.checksum_failures >= 2);
  (* tampering is simulated at the read layer: removing the injector
     restores the intact store *)
  Tx_db.set_faults db None;
  (match Tx_db.verify db with
  | Ok () -> ()
  | Error e -> Alcotest.failf "clean verify: %s" (Cfq_error.to_string e));
  Alcotest.(check (result int string)) "data untouched" (Ok 32) (scan_result db)

let get_sees_tampered_pages () =
  let db = small_db () in
  let f =
    Fault.create { Fault.default_config with Fault.corrupt_p = 1.0; max_corrupt = 1 }
  in
  Fault.on_page f ~page:(Tx_db.page_of_tx db 0);
  Tx_db.set_faults db (Some f);
  (match Tx_db.get db 0 with
  | (_ : Transaction.t) -> Alcotest.fail "expected Corrupt_page"
  | exception Cfq_error.Error (Cfq_error.Corrupt_page _) -> ());
  (* a transaction on an untampered page still reads fine *)
  Alcotest.(check int) "tid 31 intact" 31 (Tx_db.get db 31).Transaction.tid

let crash_injection () =
  let db = small_db () in
  let f = install db { Fault.default_config with Fault.crash_p = 1.0 } in
  (match scan_result db with
  | Error msg ->
      Alcotest.(check bool) "crash error" true
        (String.length msg >= 5 && String.sub msg 0 5 = "query")
  | Ok _ -> Alcotest.fail "expected a crash");
  Alcotest.(check int) "crash counted" 1 (Fault.stats f).Fault.crashes;
  Alcotest.(check bool) "crashes are not transient" false
    (Cfq_error.is_transient (Cfq_error.Query_crash "x"))

let page_assignment_consistent () =
  let db = small_db () in
  let n_pages = Tx_db.pages db in
  let prev = ref 0 in
  for tid = 0 to Tx_db.size db - 1 do
    let p = Tx_db.page_of_tx db tid in
    if p < !prev || p >= n_pages then
      Alcotest.failf "tid %d on page %d (prev %d, %d pages)" tid p !prev n_pages;
    prev := p
  done

let suite =
  [
    Alcotest.test_case "no faults: everything scans" `Quick no_faults_scans_everything;
    Alcotest.test_case "inactive injector is transparent" `Quick
      inactive_injector_is_transparent;
    Alcotest.test_case "fail_first fails exactly n reads" `Quick
      fail_first_fails_exactly_n_reads;
    Alcotest.test_case "same seed, same fault sequence" `Quick
      same_seed_same_fault_sequence;
    Alcotest.test_case "corruption bounded by max_corrupt" `Quick corruption_is_bounded;
    Alcotest.test_case "checksums catch corruption" `Quick checksums_catch_corruption;
    Alcotest.test_case "get sees tampered pages" `Quick get_sees_tampered_pages;
    Alcotest.test_case "crash injection" `Quick crash_injection;
    Alcotest.test_case "page assignment consistent" `Quick page_assignment_consistent;
  ]
