open Cfq_core
open Cfq_shell

let unit name f = Alcotest.test_case name `Quick f

let contains = Astring_contains.contains

let session_with_db () =
  let db =
    Helpers.db_of_lists
      [ [ 0; 1 ]; [ 0; 1 ]; [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 0; 2 ] ]
  in
  Shell.create ~ctx:(Exec.context db (Helpers.small_info 4)) ()

let out t line = (Shell.eval t line).Shell.output

let suite =
  [
    unit "help lists the commands" (fun () ->
        let t = Shell.create () in
        let o = out t "help" in
        List.iter
          (fun cmd -> Alcotest.(check bool) cmd true (contains o cmd))
          [ "load"; "run"; "rules"; "advise"; "explain"; "set strategy" ]);
    unit "quit terminates" (fun () ->
        let t = Shell.create () in
        Alcotest.(check bool) "quit" true (Shell.eval t "quit").Shell.quit;
        Alcotest.(check bool) "exit" true (Shell.eval t "exit").Shell.quit;
        Alcotest.(check bool) "run does not" false (Shell.eval t "help").Shell.quit);
    unit "empty lines are ignored" (fun () ->
        let t = Shell.create () in
        Alcotest.(check string) "silent" "" (out t "   "));
    unit "commands needing data complain without a database" (fun () ->
        let t = Shell.create () in
        List.iter
          (fun line ->
            Alcotest.(check bool) line true (contains (out t line) "no database"))
          [ "run freq(S) >= 0.5"; "stats"; "advise freq(S) >= 0.5"; "explain S.Price >= 1" ]);
    unit "gen attaches a database" (fun () ->
        let t = Shell.create () in
        Alcotest.(check bool) "generated" true (contains (out t "gen 100 20") "100 transactions");
        Alcotest.(check bool) "stats work" true (contains (out t "stats") "transactions: 100"));
    unit "run executes and remembers the result" (fun () ->
        let t = session_with_db () in
        let o = out t "run freq(S) >= 0.3 & freq(T) >= 0.3" in
        Alcotest.(check bool) "pairs reported" true (contains o "pairs:");
        let p = out t "pairs 2" in
        Alcotest.(check bool) "pairs shown" true (contains p "=>"));
    unit "pairs before any run" (fun () ->
        let t = session_with_db () in
        Alcotest.(check bool) "complains" true (contains (out t "pairs 3") "no previous run"));
    unit "set strategy is respected and reported" (fun () ->
        let t = session_with_db () in
        Alcotest.(check bool) "set" true
          (contains (out t "set strategy apriori+") "apriori+");
        let o = out t "run freq(S) >= 0.3" in
        Alcotest.(check bool) "strategy in output" true (contains o "apriori+");
        Alcotest.(check bool) "unknown rejected" true
          (contains (out t "set strategy bogus") "unknown strategy"));
    unit "explain does not execute" (fun () ->
        let t = session_with_db () in
        let o = out t "explain max(S.Price) <= min(T.Price)" in
        Alcotest.(check bool) "mentions reduction" true (contains o "quasi-succinct");
        Alcotest.(check bool) "no pairs yet" true
          (contains (out t "pairs 1") "no previous run"));
    unit "advise answers" (fun () ->
        let t = session_with_db () in
        Alcotest.(check bool) "recommends" true
          (contains (out t "advise freq(S) >= 0.3 & S.Price <= 40") "recommended strategy"));
    unit "rules honour minconf" (fun () ->
        let t = session_with_db () in
        let _ = out t "set minconf 0.0" in
        let all = out t "rules freq(S) >= 0.3 & freq(T) >= 0.3" in
        let _ = out t "set minconf 1.0" in
        let strict = out t "rules freq(S) >= 0.3 & freq(T) >= 0.3" in
        Alcotest.(check bool) "loose has rules" true (contains all "conf=");
        Alcotest.(check bool) "reported thresholds differ" true (all <> strict));
    unit "parse and validation errors are reported, not raised" (fun () ->
        let t = session_with_db () in
        Alcotest.(check bool) "parse error" true
          (contains (out t "run freq(X) >= 1") "parse error");
        Alcotest.(check bool) "validation error" true
          (contains (out t "run sum(S.Nope) <= 3") "unknown attribute"));
    unit "load reports missing files gracefully" (fun () ->
        let t = Shell.create () in
        Alcotest.(check bool) "load failed" true
          (contains (out t "load /nonexistent/file.fimi") "load failed"));
    unit "export pairs and rules" (fun () ->
        let t = session_with_db () in
        let tmp = Filename.temp_file "cfq_shell" ".csv" in
        Fun.protect
          ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
          (fun () ->
            Alcotest.(check bool) "needs a run first" true
              (contains (out t ("export pairs " ^ tmp)) "no previous run");
            let _ = out t "run freq(S) >= 0.3 & freq(T) >= 0.3" in
            Alcotest.(check bool) "export ok" true
              (contains (out t ("export pairs " ^ tmp)) "wrote");
            let content = In_channel.with_open_text tmp In_channel.input_all in
            Alcotest.(check bool) "csv header" true (contains content "s_items");
            let _ = out t "set minconf 0.0" in
            let _ = out t "rules freq(S) >= 0.3 & freq(T) >= 0.3" in
            Alcotest.(check bool) "rules export ok" true
              (contains (out t ("export rules " ^ tmp)) "wrote")));
    unit "profile summarises the last run" (fun () ->
        let t = session_with_db () in
        Alcotest.(check bool) "needs a run" true
          (contains (out t "profile") "no previous run");
        let _ = out t "run freq(S) >= 0.3 & freq(T) >= 0.3" in
        let o = out t "profile" in
        Alcotest.(check bool) "mentions frequent sets" true
          (contains o "frequent sets"));
    unit "unknown commands point at help" (fun () ->
        let t = Shell.create () in
        Alcotest.(check bool) "hint" true (contains (out t "frobnicate") "help"));
    unit "save / open round-trips through a persistent store" (fun () ->
        let t = session_with_db () in
        let q = "run freq(S) >= 0.3 & freq(T) >= 0.3" in
        let before = out t q in
        let path = Filename.temp_file "cfq_shell_store" ".cfqdb" in
        Fun.protect
          ~finally:(fun () ->
            List.iter
              (fun p -> try Sys.remove p with Sys_error _ -> ())
              [ path; path ^ ".wal"; path ^ ".info.csv" ])
          (fun () ->
            Alcotest.(check bool) "saved" true (contains (out t ("save " ^ path)) "wrote");
            let t2 = Shell.create () in
            Alcotest.(check bool) "opened" true
              (contains (out t2 ("open " ^ path ^ " 2")) "6 transactions");
            (* identical answers from the disk backend *)
            Alcotest.(check string) "same run output" before (out t2 q);
            Alcotest.(check bool) "stats show the pool" true
              (contains (out t2 "stats") "store:");
            let _ = Shell.eval t2 "quit" in
            ()));
    unit "open rejects a non-store file" (fun () ->
        let t = Shell.create () in
        let tmp = Filename.temp_file "cfq_shell_bad" ".cfqdb" in
        Fun.protect
          ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
          (fun () ->
            Out_channel.with_open_text tmp (fun oc -> output_string oc "not a segment");
            Alcotest.(check bool) "refused" true
              (contains (out t ("open " ^ tmp)) "open failed")));
    unit "ingest appends and seals" (fun () ->
        let t = Shell.create () in
        let path = Filename.temp_file "cfq_shell_ing" ".cfqdb" in
        let fimi = Filename.temp_file "cfq_shell_ing" ".fimi" in
        Fun.protect
          ~finally:(fun () ->
            List.iter
              (fun p -> try Sys.remove p with Sys_error _ -> ())
              [ path; path ^ ".wal"; fimi ])
          (fun () ->
            Out_channel.with_open_text fimi (fun oc -> output_string oc "0 1 2\n1 3\n");
            let _ = out t "gen 10 5" in
            Alcotest.(check bool) "saved" true (contains (out t ("save " ^ path)) "wrote");
            Alcotest.(check bool) "ingested" true
              (contains (out t ("ingest " ^ path ^ " " ^ fimi)) "now 12 total");
            Alcotest.(check bool) "reopen sees them" true
              (contains (out t ("open " ^ path)) "12 transactions")));
    unit "live ingest maintains the running service" (fun () ->
        let t = Shell.create () in
        let path = Filename.temp_file "cfq_shell_live" ".cfqdb" in
        let fimi = Filename.temp_file "cfq_shell_live" ".fimi" in
        Fun.protect
          ~finally:(fun () ->
            List.iter
              (fun p -> try Sys.remove p with Sys_error _ -> ())
              [ path; path ^ ".wal"; path ^ ".info.csv"; fimi ])
          (fun () ->
            Out_channel.with_open_text fimi (fun oc ->
                output_string oc "0 1\n0 1\n2 3\n");
            let _ = out t "gen 10 5" in
            let _ = out t ("save " ^ path) in
            Alcotest.(check bool) "opened" true
              (contains (out t ("open " ^ path)) "10 transactions");
            Alcotest.(check bool) "live before any service" true
              (contains (out t "live") "no service");
            (* cachestats spins the service up over the attached store *)
            let _ = out t "cachestats" in
            let o = out t ("ingest " ^ path ^ " " ^ fimi) in
            Alcotest.(check bool) "appended" true (contains o "now 13 total");
            Alcotest.(check bool) "epoch reported" true (contains o "epoch 1");
            Alcotest.(check bool) "live shows the seal" true
              (contains (out t "live") "epoch 1");
            (* the service survived the seal and its gauge moved *)
            let stats = out t "cachestats" in
            Alcotest.(check bool) "epoch gauge" true (contains stats "live epoch");
            Alcotest.(check bool) "stats still served" true
              (contains (out t "stats") "transactions: 13")));
    unit "replicated shards: verify, failover, scrub repair" (fun () ->
        let t = session_with_db () in
        let q = "run freq(S) >= 0.3 & freq(T) >= 0.3" in
        let path = Filename.temp_file "cfq_shell_rep" ".cfqdb" in
        let m = path ^ ".sharded" in
        let shard_files =
          List.concat_map
            (fun s -> [ s; s ^ ".wal" ])
            [ m ^ ".shard0"; m ^ ".shard0.r1"; m ^ ".shard1"; m ^ ".shard1.r1" ]
        in
        Fun.protect
          ~finally:(fun () ->
            List.iter
              (fun p -> try Sys.remove p with Sys_error _ -> ())
              ([ path; path ^ ".wal"; path ^ ".info.csv"; m ] @ shard_files))
          (fun () ->
            Alcotest.(check bool) "saved" true (contains (out t ("save " ^ path)) "wrote");
            let t2 = Shell.create () in
            Alcotest.(check bool) "replicas set" true
              (contains (out t2 "set replicas 2") "2 replicas per shard");
            Alcotest.(check bool) "opened replicated" true
              (contains (out t2 ("open " ^ path ^ " shards=2")) "x 2 replicas");
            let before = out t2 q in
            Alcotest.(check bool) "verify clean" true
              (contains (out t2 "verify") "all replicas healthy");
            Alcotest.(check bool) "stats show replica health" true
              (contains (out t2 "stats") "replica 1: healthy");
            (* pin a permanent fault to one replica: reads fail over to its
               sibling and the answer text is byte-identical *)
            Alcotest.(check bool) "replica fault pinned" true
              (contains (out t2 "set fault 1 0 7 shard=0 replica=0")
                 "(shard 0, replica 0)");
            Alcotest.(check string) "failover answers identically" before (out t2 q);
            Alcotest.(check bool) "failover counted" true
              (contains (out t2 "stats") "failovers: ");
            Alcotest.(check bool) "fault cleared" true
              (contains (out t2 "set fault off shard=0 replica=0")
                 "(shard 0, replica 0)");
            (* rot a data page of shard 1's first replica on disk *)
            let victim = m ^ ".shard1" in
            let fd = Unix.openfile victim [ Unix.O_RDWR ] 0 in
            ignore (Unix.lseek fd 4101 Unix.SEEK_SET);
            let b = Bytes.create 1 in
            ignore (Unix.read fd b 0 1);
            Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x20));
            ignore (Unix.lseek fd 4101 Unix.SEEK_SET);
            ignore (Unix.write fd b 0 1);
            Unix.close fd;
            Alcotest.(check bool) "verify flags the rot" true
              (contains (out t2 "verify") "VERIFICATION FAILED");
            Alcotest.(check bool) "scrub rebuilds the replica" true
              (contains (out t2 "scrub") "1 replicas repaired");
            Alcotest.(check bool) "verify clean after repair" true
              (contains (out t2 "verify") "all replicas healthy");
            Alcotest.(check string) "post-repair answers identically" before
              (out t2 q);
            let _ = Shell.eval t2 "quit" in
            ()));
  ]
