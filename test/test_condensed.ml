(* The condensation layer: [Condensed.of_frequent |> to_frequent] must be
   the identity — levels, per-level order, supports and membership — for
   every collection the service caches: unconstrained Apriori output,
   CAP output under random 1-var constraints (where the raw fallback may
   fire), every kernel and domain count, and (via Helpers.db_of_sets) all
   five backend matrices.  On-demand support/membership and the maximal
   wire round-trip are checked against the raw collection. *)

open Cfq_itembase
open Cfq_txdb
open Cfq_constr
open Cfq_mining

let unit name f = Alcotest.test_case name `Quick f

(* strict identity: same levels, same per-level order, same supports *)
let frequent_identical a b =
  let level_eq k =
    let la = Frequent.level a k and lb = Frequent.level b k in
    Array.length la = Array.length lb
    && Array.for_all2
         (fun (e1 : Frequent.entry) (e2 : Frequent.entry) ->
           Itemset.equal e1.set e2.set && e1.support = e2.support)
         la lb
  in
  Frequent.max_level a = Frequent.max_level b
  && List.for_all level_eq (List.init (Frequent.max_level a) (fun k -> k + 1))

let frequent_str f =
  String.concat "; "
    (List.map
       (fun (e : Frequent.entry) ->
         Printf.sprintf "%s:%d" (Itemset.to_string e.set) e.support)
       (Frequent.to_list f))

let entries_str l =
  String.concat "; "
    (List.map
       (fun (e : Frequent.entry) ->
         Printf.sprintf "%s:%d" (Itemset.to_string e.set) e.support)
       l)

(* ------------------------------------------------------------------ *)
(* units *)

(* {0,1,2} always co-occur, so its 7 subsets share one support — a single
   closed set; the {3} filler is the second *)
let correlated_db () =
  Helpers.db_of_lists
    (List.init 20 (fun i -> if i < 12 then [ 0; 1; 2 ] else [ 3 ]))

let mine db ~minsup =
  let info = Helpers.small_info 5 in
  let io = Io_stats.create () in
  let out = Apriori.mine db info io ~minsup () in
  out.Apriori.frequent

let condensed_shrinks_correlated () =
  let freq = mine (correlated_db ()) ~minsup:5 in
  Alcotest.(check int) "8 frequent sets" 8 (Frequent.n_sets freq);
  let c = Condensed.of_frequent freq in
  Alcotest.(check bool) "condensed" true (Condensed.is_condensed c);
  Alcotest.(check int) "two closed sets" 2 (Condensed.n_closed c);
  Alcotest.(check int) "n_sets preserved" 8 (Condensed.n_sets c);
  Alcotest.(check bool) "strictly smaller" true
    (Condensed.bytes c < Condensed.raw_bytes c);
  let back = Condensed.to_frequent c in
  Alcotest.(check string) "round-trip identity" (frequent_str freq)
    (frequent_str back);
  Alcotest.(check bool) "structurally identical" true
    (frequent_identical freq back)

let entry set support = { Frequent.set = Itemset.of_list set; support }

let raw_fallback_on_closure_gap () =
  (* {0,1} present without {1}: not downward closed, must stay raw *)
  let freq =
    Frequent.of_levels [ [| entry [ 0 ] 5 |]; [| entry [ 0; 1 ] 5 |] ]
  in
  let c = Condensed.of_frequent ~force:true freq in
  Alcotest.(check bool) "not condensed" false (Condensed.is_condensed c);
  Alcotest.(check bool) "to_frequent is physically the input" true
    (Condensed.to_frequent c == freq)

let raw_fallback_on_support_violation () =
  (* support({1}) < support({0,1}) breaks anti-monotonicity: the closed
     reconstruction would inflate {1}, so condensation must refuse *)
  let freq =
    Frequent.of_levels
      [ [| entry [ 0 ] 5; entry [ 1 ] 3 |]; [| entry [ 0; 1 ] 5 |] ]
  in
  let c = Condensed.of_frequent ~force:true freq in
  Alcotest.(check bool) "not condensed" false (Condensed.is_condensed c)

let raw_weight_matches_model () =
  let freq = mine (correlated_db ()) ~minsup:5 in
  let r = Condensed.raw freq in
  Alcotest.(check bool) "raw stores nothing extra" false (Condensed.is_condensed r);
  Alcotest.(check int) "raw bytes = frequent_weight"
    (Condensed.frequent_weight freq) (Condensed.bytes r)

let wire_round_trip () =
  let freq = mine (correlated_db ()) ~minsup:5 in
  let c = Condensed.of_frequent ~force:true freq in
  let wire = Condensed.encode_maximal c in
  let back = Condensed.decode_maximal wire in
  Alcotest.(check string) "maximal round-trips"
    (entries_str (Condensed.maximal c))
    (entries_str back);
  (* the raw path serializes identically *)
  let wire_raw = Condensed.encode_maximal (Condensed.raw freq) in
  Alcotest.(check string) "condensed and raw wire forms agree" wire wire_raw;
  Alcotest.check_raises "bad magic rejected"
    (Invalid_argument "Condensed.decode_maximal: bad magic") (fun () ->
      ignore (Condensed.decode_maximal "XX1" : Frequent.entry list));
  Alcotest.check_raises "truncation rejected"
    (Invalid_argument "Condensed.decode_maximal: truncated") (fun () ->
      ignore
        (Condensed.decode_maximal (String.sub wire 0 (String.length wire - 1))
          : Frequent.entry list))

(* ------------------------------------------------------------------ *)
(* qcheck: identity round-trip across kernels × domains (× backends via
   CFQ_TEST_* on Helpers.db_of_sets) *)

let kernels = Counting.all_kernels
let domain_grid = [ 1; 3 ]

let gen_mined =
  QCheck2.Gen.(
    let* n, db = Helpers.gen_db in
    let* minsup = int_range 2 8 in
    let* kernel_i = int_range 0 (List.length kernels - 1) in
    let* domains = oneofl domain_grid in
    return (n, db, minsup, kernel_i, domains))

let print_mined (n, db, minsup, kernel_i, domains) =
  Printf.sprintf "minsup=%d kernel=%s domains=%d %s" minsup
    (fst (List.nth kernels kernel_i))
    domains
    (Helpers.print_db (n, db))

let mine_kernel db n ~minsup ~kernel ~domains =
  let info = Helpers.small_info n in
  let io = Io_stats.create () in
  let par = Counting.par ~min_rows_per_domain:1 domains in
  let session = Counting.create_session ~plan:(Counting.plan_of_kernel kernel) () in
  let out = Apriori.mine db info io ~par ~session ~minsup () in
  out.Apriori.frequent

let prop_round_trip (n, db, minsup, kernel_i, domains) =
  let kernel = snd (List.nth kernels kernel_i) in
  let freq = mine_kernel db n ~minsup ~kernel ~domains in
  let c = Condensed.of_frequent ~force:true freq in
  let back = Condensed.to_frequent c in
  if not (frequent_identical freq back) then
    QCheck2.Test.fail_reportf "round-trip mismatch: [%s] became [%s]"
      (frequent_str freq) (frequent_str back);
  (* Apriori output is exactly the frequent sets: always condensable *)
  if Frequent.n_sets freq > 0 && not (Condensed.is_condensed c) then
    QCheck2.Test.fail_reportf "unconstrained mine fell back to raw: [%s]"
      (frequent_str freq);
  (* on-demand support and membership agree with the raw collection on
     every subset of the universe *)
  List.for_all
    (fun s ->
      Condensed.support c s = Frequent.support freq s
      && Condensed.mem c s = Frequent.mem freq s)
    (Helpers.all_subsets n)

(* CAP under random 1-var constraints: the collection may not be downward
   closed (succinct non-anti-monotone atoms), so condensation may fall
   back to raw — but the round-trip must still be the identity, and the
   maximal projection must match the raw collection's *)
let gen_constrained =
  QCheck2.Gen.(
    let* n, db = Helpers.gen_db in
    let* minsup = int_range 2 8 in
    let* cs = list_size (int_range 0 2) Helpers.gen_one_var in
    return (n, db, minsup, cs))

let print_constrained (n, db, minsup, cs) =
  Printf.sprintf "minsup=%d cs=[%s] %s" minsup
    (String.concat "; " (List.map One_var.to_string cs))
    (Helpers.print_db (n, db))

let prop_constrained_round_trip (n, db, minsup, cs) =
  let info = Helpers.small_info n in
  let bundle = Bundle.compile ~nonneg:true info cs in
  let state = Cap.create db info ~minsup bundle in
  let io = Io_stats.create () in
  let freq = Cap.run state io in
  let c = Condensed.of_frequent ~force:true freq in
  let back = Condensed.to_frequent c in
  if not (frequent_identical freq back) then
    QCheck2.Test.fail_reportf "constrained round-trip mismatch: [%s] vs [%s]"
      (frequent_str freq) (frequent_str back);
  let max_str = entries_str (Frequent.maximal freq) in
  let cond_max_str = entries_str (Condensed.maximal c) in
  if max_str <> cond_max_str then
    QCheck2.Test.fail_reportf "maximal mismatch: [%s] vs [%s]" max_str
      cond_max_str;
  entries_str (Condensed.decode_maximal (Condensed.encode_maximal c))
  = max_str

let suite =
  [
    unit "correlated collection condenses to one closed set"
      condensed_shrinks_correlated;
    unit "closure gap falls back to raw" raw_fallback_on_closure_gap;
    unit "support violation falls back to raw" raw_fallback_on_support_violation;
    unit "raw weight matches the byte model" raw_weight_matches_model;
    unit "maximal wire format round-trips" wire_round_trip;
    Helpers.qtest ~count:120 "condensed: round-trip identity (kernels × domains)"
      gen_mined print_mined prop_round_trip;
    Helpers.qtest ~count:120 "condensed: identity under CAP constraints"
      gen_constrained print_constrained prop_constrained_round_trip;
  ]
