(* The parallel counting engine: count_shared under domains>1 must be
   indistinguishable from the sequential pass — same counts, same ccc and
   I/O charges, same fault behaviour — whether helpers are spawned or
   borrowed from a pool.  CFQ_TEST_DOMAINS adds an extra width to the
   property grid (CI runs the suite with CFQ_TEST_DOMAINS=3). *)

open Cfq_itembase
open Cfq_txdb
open Cfq_mining

let unit name f = Alcotest.test_case name `Quick f

let domain_grid =
  let base = [ 1; 2; 3; 7 ] in
  match Sys.getenv_opt "CFQ_TEST_DOMAINS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some d when d >= 1 && not (List.mem d base) -> base @ [ d ]
      | _ -> base)
  | None -> base

(* a page model small enough that a 20-60 tx database spans many pages, so
   scan_chunks has real page boundaries to align to *)
let tiny_pages = Page_model.make ~page_size_bytes:64 ()

let db_of_lists txs =
  Tx_db.create ~page_model:tiny_pages
    (Array.of_list (List.map Itemset.of_list txs))

let families_of (cands_s, cands_t) =
  [ (Counters.create (), cands_s); (Counters.create (), cands_t) ]

let run_shared ?par db families =
  let io = Io_stats.create () in
  let counts = Counting.count_shared ?par db io families in
  (counts, Io_stats.scans io, Io_stats.pages_read io)

(* property input: a database plus an S family and a T family *)
let gen_input =
  QCheck2.Gen.(
    let* n = Helpers.gen_universe_size in
    let* txs = Helpers.gen_db_lists n in
    let* cs = list_size (int_range 0 8) (Helpers.gen_itemset n) in
    let* ct = list_size (int_range 0 8) (Helpers.gen_itemset n) in
    return (n, txs, cs, ct))

let print_input (n, txs, cs, ct) =
  Printf.sprintf "n=%d txs=%d s_cands=%d t_cands=%d" n (List.length txs)
    (List.length cs) (List.length ct)

let cand_arrays (cs, ct) =
  ( Array.of_list (List.sort_uniq Itemset.compare cs),
    Array.of_list (List.sort_uniq Itemset.compare ct) )

let prop_parallel_equals_sequential pool (_, txs, cs, ct) =
  let db = db_of_lists txs in
  let cands = cand_arrays (cs, ct) in
  let seq = run_shared db (families_of cands) in
  List.for_all
    (fun domains ->
      let par = Counting.par ?pool ~min_rows_per_domain:1 domains in
      run_shared ~par db (families_of cands) = seq)
    domain_grid

let empty_families_skip_the_scan () =
  let db = db_of_lists [ [ 0; 1 ]; [ 1; 2 ]; [ 0 ] ] in
  let io = Io_stats.create () in
  let counts =
    Counting.count_shared db io [ (Counters.create (), [||]); (Counters.create (), [||]) ]
  in
  Alcotest.(check (list (array int))) "all counts empty" [ [||]; [||] ] counts;
  Alcotest.(check int) "no scan charged" 0 (Io_stats.scans io);
  Alcotest.(check int) "no pages charged" 0 (Io_stats.pages_read io);
  (* the parallel path takes the same fast path *)
  let counts =
    Counting.count_shared
      ~par:(Counting.par ~min_rows_per_domain:1 4)
      db io
      [ (Counters.create (), [||]) ]
  in
  Alcotest.(check (list (array int))) "parallel fast path" [ [||] ] counts;
  Alcotest.(check int) "still no scan" 0 (Io_stats.scans io);
  (* a non-empty family alongside an empty one still scans, once *)
  let _ =
    Counting.count_shared db io
      [ (Counters.create (), [||]); (Counters.create (), [| Itemset.of_list [ 0 ] |]) ]
  in
  Alcotest.(check int) "one scan for the non-empty family" 1 (Io_stats.scans io)

(* twin stores, twin injectors, same seed: the sequential and the parallel
   engine must draw the same fault stream — same raised error, same
   injector statistics, same I/O charges *)
let fault_outcome fault_cfg ~par txs cands =
  let db = db_of_lists txs in
  let fl = Fault.create fault_cfg in
  Tx_db.set_faults db (Some fl);
  let io = Io_stats.create () in
  let outcome =
    match
      Counting.count_shared ?par db io [ (Counters.create (), cands) ]
    with
    | counts -> Ok counts
    | exception Cfq_error.Error e -> Error e
  in
  (outcome, Fault.stats fl, Io_stats.scans io, Io_stats.pages_read io)

let parallel_scan_respects_the_fault_layer () =
  let txs = List.init 40 (fun i -> [ i mod 5; 5 + (i mod 3); 8 ]) in
  let cands = [| Itemset.of_list [ 8 ]; Itemset.of_list [ 0; 8 ] |] in
  let check name cfg =
    let seq = fault_outcome cfg ~par:None txs cands in
    let par =
      fault_outcome cfg ~par:(Some (Counting.par ~min_rows_per_domain:1 3)) txs cands
    in
    if seq <> par then
      Alcotest.failf "%s: parallel fault behaviour diverged from sequential" name
  in
  (* deterministic transient error on the first page read *)
  check "fail_first" { Fault.default_config with Fault.fail_first = 1 };
  (* probabilistic transients across the page walk *)
  check "transient_p"
    { Fault.default_config with Fault.transient_p = 0.3; seed = 0xFEEDL };
  (* bounded corruption caught by the checksums *)
  check "corrupt_p"
    { Fault.default_config with Fault.corrupt_p = 0.9; max_corrupt = 1; seed = 0xBADL };
  (* injected crash on scan admission *)
  check "crash_p" { Fault.default_config with Fault.crash_p = 1.0 };
  (* and with no drawn faults at all, both engines count identically *)
  check "quiet" { Fault.default_config with Fault.transient_p = 0.0 }

let chunks_cover_the_scan () =
  let txs = List.init 37 (fun i -> [ i mod 7; 7 + (i mod 4) ]) in
  let db = db_of_lists txs in
  List.iter
    (fun max_chunks ->
      let chunks = Tx_db.scan_chunks db ~max_chunks in
      (* disjoint, ascending, covering *)
      let expected = ref 0 in
      List.iter
        (fun (lo, hi) ->
          Alcotest.(check int) "contiguous" !expected lo;
          Alcotest.(check bool) "non-empty" true (hi >= lo);
          (* no page split across a boundary *)
          if lo > 0 then
            Alcotest.(check bool) "page-aligned" true
              (Tx_db.page_of_tx db (lo - 1) <> Tx_db.page_of_tx db lo);
          expected := hi + 1)
        chunks;
      Alcotest.(check int) "covers every transaction" (Tx_db.size db) !expected;
      Alcotest.(check bool) "bounded count" true (List.length chunks <= max 1 max_chunks))
    [ 1; 2; 3; 5; 16; 1000 ];
  Alcotest.(check (list (pair int int))) "empty db"
    []
    (Tx_db.scan_chunks (db_of_lists []) ~max_chunks:4)

let exec_run_parallel_equals_sequential () =
  let n = 8 in
  let txs =
    List.init 60 (fun i -> List.init (1 + (i mod 4)) (fun j -> (i + (3 * j)) mod n))
  in
  let db = db_of_lists txs in
  let info = Helpers.small_info n in
  let ctx = Cfq_core.Exec.context db info in
  let q =
    Cfq_core.Parser.parse
      "{(S,T) | freq(S) >= 0.1 & freq(T) >= 0.1 & max(S.Price) <= min(T.Price)}"
  in
  let run ?par () =
    let r = Cfq_core.Exec.run ~collect_pairs:true ?par ctx q in
    ( Helpers.sorted_pairs
        (List.map
           (fun (s, t) -> (s.Frequent.set, t.Frequent.set))
           r.Cfq_core.Exec.pairs),
      Cfq_core.Exec.total_counted r,
      Cfq_core.Exec.total_checks r,
      Io_stats.scans r.Cfq_core.Exec.io )
  in
  let seq = run () in
  List.iter
    (fun domains ->
      let par = run ~par:(Counting.par ~min_rows_per_domain:1 domains) () in
      if par <> seq then
        Alcotest.failf "Exec.run at %d domains diverged from sequential" domains)
    domain_grid

(* ------------------------------------------------------------------ *)
(* Fused grid: every kernel x every domain count mines identically      *)
(* ------------------------------------------------------------------ *)

(* The tentpole contract in one property: for each kernel (with a frozen
   calibration record, so Auto's plans are reproducible), the full mine is
   bit-identical — frequent sets, supports, ccc, logical scans AND page
   charges — at every domain count.  Page charges may differ between
   kernels (documented), never between domain counts of the same kernel. *)
let gen_grid =
  QCheck2.Gen.(
    let* n, db = Helpers.gen_db in
    let* minsup = int_range 2 8 in
    return (n, db, minsup))

let print_grid (n, db, minsup) =
  Printf.sprintf "minsup=%d %s" minsup (Helpers.print_db (n, db))

let frozen_session kernel =
  Counting.create_session
    ~plan:{ (Counting.plan_of_kernel kernel) with Counting.calibrate = false }
    ()

let mine_fingerprint ~kernel ~domains db n ~minsup =
  let info = Helpers.small_info n in
  let io = Io_stats.create () in
  let par = Counting.par ~min_rows_per_domain:1 domains in
  let out =
    Apriori.mine db info io ~par ~session:(frozen_session kernel) ~minsup ()
  in
  ( List.map
      (fun e -> (Itemset.to_string e.Frequent.set, e.Frequent.support))
      (Frequent.to_list out.Apriori.frequent),
    Counters.support_counted out.Apriori.counters,
    Counters.candidates_generated out.Apriori.counters,
    Io_stats.scans io,
    Io_stats.pages_read io )

let prop_fused_kernel_domain_grid (n, db, minsup) =
  List.for_all
    (fun (_, kernel) ->
      let base = mine_fingerprint ~kernel ~domains:1 db n ~minsup in
      List.for_all
        (fun domains -> mine_fingerprint ~kernel ~domains db n ~minsup = base)
        domain_grid)
    Counting.all_kernels

(* The default work floor only narrows the fan-out; it never changes the
   result.  On a tiny database [par 4] runs effectively sequential while
   [~min_rows_per_domain:1] forces the full fan-out — both must match the
   sequential run exactly, including I/O charges. *)
let default_work_floor_is_result_identical () =
  let n = 8 in
  let txs =
    List.init 60 (fun i -> List.init (1 + (i mod 4)) (fun j -> (i + (3 * j)) mod n))
  in
  let db = db_of_lists txs in
  let info = Helpers.small_info n in
  let ctx = Cfq_core.Exec.context db info in
  let q =
    Cfq_core.Parser.parse
      "{(S,T) | freq(S) >= 0.1 & freq(T) >= 0.1 & max(S.Price) <= min(T.Price)}"
  in
  let run ?par () =
    let r = Cfq_core.Exec.run ~collect_pairs:true ?par ctx q in
    ( Helpers.sorted_pairs
        (List.map
           (fun (s, t) -> (s.Frequent.set, t.Frequent.set))
           r.Cfq_core.Exec.pairs),
      Cfq_core.Exec.total_counted r,
      Cfq_core.Exec.total_checks r,
      Io_stats.scans r.Cfq_core.Exec.io,
      Io_stats.pages_read r.Cfq_core.Exec.io )
  in
  let seq = run () in
  let floored = run ~par:(Counting.par 4) () in
  let forced = run ~par:(Counting.par ~min_rows_per_domain:1 4) () in
  if floored <> seq then
    Alcotest.fail "default work floor diverged from sequential";
  if forced <> seq then
    Alcotest.fail "forced fan-out diverged from sequential"

let with_pool f =
  let pool = Cfq_service.Pool.create ~domains:2 ~queue_capacity:8 () in
  Fun.protect ~finally:(fun () -> Cfq_service.Pool.shutdown pool) (fun () -> f pool)

let borrowed_helpers_from_a_shut_down_pool () =
  (* borrowing from a dead or saturated pool must degrade to fewer
     participants, never fail the count *)
  let pool = Cfq_service.Pool.create ~domains:1 ~queue_capacity:1 () in
  Cfq_service.Pool.shutdown pool;
  let db = db_of_lists (List.init 20 (fun i -> [ i mod 4; 4 ])) in
  let cands = [| Itemset.of_list [ 4 ] |] in
  let io = Io_stats.create () in
  let counts =
    Counting.count_shared
      ~par:(Counting.par ~pool ~min_rows_per_domain:1 4)
      db io
      [ (Counters.create (), cands) ]
  in
  Alcotest.(check (list (array int))) "counted by the caller alone" [ [| 20 |] ] counts;
  Alcotest.(check int) "one scan" 1 (Io_stats.scans io)

let suite =
  [
    Helpers.qtest ~count:60 "count_shared parallel equals sequential (spawned)"
      gen_input print_input
      (prop_parallel_equals_sequential None);
    Helpers.qtest ~count:30 "count_shared parallel equals sequential (pool-borrowed)"
      gen_input print_input
      (fun input -> with_pool (fun pool -> prop_parallel_equals_sequential (Some pool) input));
    unit "empty candidate families skip the scan" empty_families_skip_the_scan;
    unit "parallel scan respects the fault layer" parallel_scan_respects_the_fault_layer;
    unit "scan chunks are page-aligned and cover the scan" chunks_cover_the_scan;
    Helpers.qtest ~count:30 "fused grid: every kernel x domain count mines identically"
      gen_grid print_grid prop_fused_kernel_domain_grid;
    unit "Exec.run parallel equals sequential" exec_run_parallel_equals_sequential;
    unit "default work floor is result-identical" default_work_floor_is_result_identical;
    unit "borrowing from a shut-down pool degrades gracefully"
      borrowed_helpers_from_a_shut_down_pool;
  ]
