(* Shared generators and brute-force reference implementations. *)

open Cfq_itembase
open Cfq_txdb
open Cfq_constr

let price = Cfq_quest.Item_gen.price_attr
let typ = Cfq_quest.Item_gen.type_attr

(* deterministic attribute tables for a small universe: prices 10*i mod 70,
   types i mod 4 — varied enough to exercise every constraint family *)
let small_info n =
  let prices = Array.init n (fun i -> float_of_int (10 * ((i * 3 mod 7) + 1))) in
  let types = Array.init n (fun i -> float_of_int (i mod 4)) in
  let info = Item_info.create ~universe_size:n in
  Item_info.add_column info price prices;
  Item_info.add_column info typ types;
  info

let itemset_of_mask n mask =
  let out = ref [] in
  for i = n - 1 downto 0 do
    if mask land (1 lsl i) <> 0 then out := i :: !out
  done;
  Itemset.of_list !out

(* every non-empty subset of [0, n) *)
let all_subsets n =
  List.init ((1 lsl n) - 1) (fun m -> itemset_of_mask n (m + 1))

(* With CFQ_TEST_STORE=1 every helper-built database is routed through a
   real on-disk store (build + reopen with a tiny buffer pool), so the
   whole suite exercises the persistent backend.  Each store is closed and
   its files removed by a finalizer on the returned database; an
   occasional [full_major] keeps the open-fd count bounded. *)
let store_backed =
  match Sys.getenv_opt "CFQ_TEST_STORE" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

(* With CFQ_TEST_SHARDS=N (N > 1) every helper-built database becomes an
   N-shard composite instead — in-memory shards by default, a full
   sharded on-disk store when CFQ_TEST_STORE=1 is also set — so the suite
   exercises count-distribution mining end to end.  Tid-range
   partitioning keeps answers, ccc and logical I/O identical to the
   unsharded backends. *)
let test_shards =
  match Sys.getenv_opt "CFQ_TEST_SHARDS" with
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some n when n > 1 -> n
      | _ -> 1)
  | None -> 1

(* With CFQ_TEST_REPLICAS=R (R > 1) the sharded on-disk route (both
   CFQ_TEST_STORE=1 and CFQ_TEST_SHARDS=N set) builds R replicas per
   shard.  Failover packs identical page geometry, so answers, ccc and
   logical I/O stay byte-identical to the single-replica route. *)
let test_replicas =
  match Sys.getenv_opt "CFQ_TEST_REPLICAS" with
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some n when n > 1 -> n
      | _ -> 1)
  | None -> 1

(* With CFQ_TEST_LIVE=1 every store-backed helper database (either
   persistent route) is built in two halves: the first half at build
   time, the second appended through the WAL and sealed — so the whole
   suite runs against databases that went through a live seal.  The
   segment packer appends the delta after the prefix it would have
   packed anyway, so page geometry (hence answers, ccc and logical I/O)
   is byte-identical to the one-shot build.  Memory routes are
   unchanged: they have no seal. *)
let live_reseal =
  match Sys.getenv_opt "CFQ_TEST_LIVE" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let split_for_reseal sets =
  let n = Array.length sets in
  let cut = n / 2 in
  (Array.sub sets 0 cut, Array.sub sets cut (n - cut))

let live_stores = ref 0

let db_of_sets sets =
  if test_shards > 1 then
    if not store_backed then Cfq_shard.Sharded.mem_db ~shards:test_shards sets
    else begin
      if !live_stores * test_shards * test_replicas > 128 then Gc.full_major ();
      let path = Filename.temp_file "cfq_test_shard" ".cfqdb" in
      let base, delta =
        if live_reseal then split_for_reseal sets else (sets, [||])
      in
      Cfq_shard.Sharded.build ~shards:test_shards ~replicas:test_replicas path
        base;
      let sh = Cfq_shard.Sharded.open_ ~cache_pages:4 path in
      if Array.length delta > 0 then begin
        Array.iter (Cfq_shard.Sharded.append_tx sh) delta;
        ignore (Cfq_shard.Sharded.seal sh : int)
      end;
      incr live_stores;
      let db = Cfq_shard.Sharded.db sh in
      (* capture the shard groups, not [sh]: Sharded.t holds the composite
         db, and a finaliser that (indirectly) holds its value never runs,
         which would leak every replica fd for the rest of the suite *)
      let groups = Cfq_shard.Sharded.groups sh in
      Gc.finalise
        (fun _db ->
          decr live_stores;
          Array.iter
            (fun g -> try Cfq_shard.Replica.close g with _ -> ())
            groups;
          try Cfq_shard.Sharded.remove_files path with _ -> ())
        db;
      db
    end
  else if not store_backed then Tx_db.create sets
  else begin
    if !live_stores > 128 then Gc.full_major ();
    let path = Filename.temp_file "cfq_test_store" ".cfqdb" in
    let base, delta =
      if live_reseal then split_for_reseal sets else (sets, [||])
    in
    Cfq_store.Store.build path base;
    let store = Cfq_store.Store.open_ ~cache_pages:4 path in
    if Array.length delta > 0 then begin
      Array.iter (Cfq_store.Store.append_tx store) delta;
      ignore (Cfq_store.Store.seal store : int)
    end;
    incr live_stores;
    (* a fresh view, not [Store.db]: the store retains [db]'s handle, so
       a finaliser whose closure holds [store] would keep its own value
       reachable and never run, leaking every fd for the rest of the
       suite (fatal under CFQ_TEST_LIVE, where the superseded pre-seal
       segment doubles each store's descriptors) *)
    let db = Cfq_store.Store.view store in
    Gc.finalise
      (fun _db ->
        decr live_stores;
        (try Cfq_store.Store.close store with _ -> ());
        (try Sys.remove path with _ -> ());
        try Sys.remove (path ^ ".wal") with _ -> ())
      db;
    db
  end

let db_of_lists txs = db_of_sets (Array.of_list (List.map Itemset.of_list txs))

let support_of db s =
  let io = Io_stats.create () in
  Tx_db.support db io s

(* all frequent sets by definition *)
let brute_frequent db ~n ~minsup =
  List.filter (fun s -> support_of db s >= minsup) (all_subsets n)

(* Definition 3: valid S-sets of a 2-var constraint (S-sets need not be
   frequent; the existential T must be) *)
let brute_valid_s db ~n ~minsup ~s_info ~t_info c =
  let frequent_t = brute_frequent db ~n ~minsup in
  List.filter
    (fun s -> List.exists (fun t -> Two_var.eval ~s_info ~t_info c s t) frequent_t)
    (all_subsets n)

let brute_valid_t db ~n ~minsup ~s_info ~t_info c =
  let frequent_s = brute_frequent db ~n ~minsup in
  List.filter
    (fun t -> List.exists (fun s -> Two_var.eval ~s_info ~t_info c s t) frequent_s)
    (all_subsets n)

(* reference answer of a full CFQ: all frequent valid pairs *)
let brute_answer db ~n ~s_info ~t_info (q : Cfq_core.Query.t) =
  let minsup_s = Tx_db.absolute_support db q.Cfq_core.Query.s_minsup in
  let minsup_t = Tx_db.absolute_support db q.Cfq_core.Query.t_minsup in
  let ok_one info cs s = List.for_all (fun c -> One_var.eval info c s) cs in
  let fs =
    List.filter
      (fun s -> ok_one s_info q.Cfq_core.Query.s_constraints s)
      (brute_frequent db ~n ~minsup:minsup_s)
  in
  let ft =
    List.filter
      (fun t -> ok_one t_info q.Cfq_core.Query.t_constraints t)
      (brute_frequent db ~n ~minsup:minsup_t)
  in
  List.concat_map
    (fun s ->
      List.filter_map
        (fun t ->
          if
            List.for_all
              (fun c -> Two_var.eval ~s_info ~t_info c s t)
              q.Cfq_core.Query.two_var
          then Some (s, t)
          else None)
        ft)
    fs

(* ------------------------------------------------------------------ *)
(* QCheck generators *)

let gen_universe_size = QCheck2.Gen.int_range 5 9

let gen_tx n =
  QCheck2.Gen.(
    let* len = int_range 1 (max 1 (n - 1)) in
    let* items = list_repeat len (int_range 0 (n - 1)) in
    return items)

let gen_db_lists n = QCheck2.Gen.(list_size (int_range 20 60) (gen_tx n))

(* a database plus its universe size *)
let gen_db =
  QCheck2.Gen.(
    let* n = gen_universe_size in
    let* txs = gen_db_lists n in
    return (n, db_of_lists txs))

let gen_cmp = QCheck2.Gen.oneofl [ Cmp.Le; Cmp.Lt; Cmp.Ge; Cmp.Gt; Cmp.Eq; Cmp.Ne ]
let gen_dir_cmp = QCheck2.Gen.oneofl [ Cmp.Le; Cmp.Lt; Cmp.Ge; Cmp.Gt ]
let gen_agg = QCheck2.Gen.oneofl [ Agg.Min; Agg.Max; Agg.Sum; Agg.Avg; Agg.Count ]
let gen_minmax = QCheck2.Gen.oneofl [ Agg.Min; Agg.Max ]

let gen_value_set =
  QCheck2.Gen.(
    let* vals = list_size (int_range 1 3) (oneofl [ 0.; 1.; 2.; 3. ]) in
    return (Value_set.of_list vals))

let gen_price_const = QCheck2.Gen.(map float_of_int (int_range 0 80))

let gen_one_var =
  QCheck2.Gen.(
    oneof
      [
        (let* vs = gen_value_set in
         oneofl
           [
             One_var.Dom_subset (typ, vs);
             One_var.Dom_superset (typ, vs);
             One_var.Dom_disjoint (typ, vs);
             One_var.Dom_intersect (typ, vs);
             One_var.Dom_not_superset (typ, vs);
           ]);
        (let* agg = gen_agg in
         let* op = gen_cmp in
         let* c = gen_price_const in
         return (One_var.Agg_cmp (agg, price, op, c)));
        (let* op = gen_cmp in
         let* k = int_range 1 4 in
         return (One_var.Card_cmp (op, k)));
      ])

let gen_setop =
  QCheck2.Gen.oneofl
    [
      Two_var.Disjoint;
      Two_var.Intersect;
      Two_var.Subset;
      Two_var.Not_subset;
      Two_var.Superset;
      Two_var.Not_superset;
      Two_var.Set_eq;
      Two_var.Set_ne;
    ]

let gen_two_var =
  QCheck2.Gen.(
    oneof
      [
        (let* op = gen_setop in
         return (Two_var.Set2 (typ, op, typ)));
        (let* agg1 = gen_agg in
         let* agg2 = gen_agg in
         let* op = gen_cmp in
         return (Two_var.Agg2 (agg1, price, op, agg2, price)));
      ])

let gen_two_var_minmax =
  QCheck2.Gen.(
    let* agg1 = gen_minmax in
    let* agg2 = gen_minmax in
    let* op = gen_dir_cmp in
    return (Two_var.Agg2 (agg1, price, op, agg2, price)))

(* random full query over the small universe *)
let gen_query =
  QCheck2.Gen.(
    let* s_cs = list_size (int_range 0 2) gen_one_var in
    let* t_cs = list_size (int_range 0 2) gen_one_var in
    let* two = list_size (int_range 0 2) gen_two_var in
    let* sup_s = int_range 5 25 in
    let* sup_t = int_range 5 25 in
    return
      (Cfq_core.Query.make
         ~s_minsup:(float_of_int sup_s /. 100.)
         ~t_minsup:(float_of_int sup_t /. 100.)
         ~s_constraints:s_cs ~t_constraints:t_cs ~two_var:two ()))

let gen_itemset n =
  QCheck2.Gen.(
    let* mask = int_range 1 ((1 lsl n) - 1) in
    return (itemset_of_mask n mask))

(* printers for counterexample reporting *)
let print_db (n, db) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "n=%d txs=[" n);
  for i = 0 to Tx_db.size db - 1 do
    Buffer.add_string buf (Itemset.to_string (Tx_db.get db i).Transaction.items)
  done;
  Buffer.add_string buf "]";
  Buffer.contents buf

let qtest ?(count = 200) name gen print prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count ~print gen prop)

let sorted_pairs l =
  List.sort
    (fun (a1, b1) (a2, b2) ->
      match Itemset.compare a1 a2 with 0 -> Itemset.compare b1 b2 | c -> c)
    l
