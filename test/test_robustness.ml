(* Serving under faults: retries, the circuit breaker lifecycle, graceful
   degradation from cached superset answers, the pool's queue-full and
   shutdown fallbacks, and a crash-consistency property for the caches. *)

open Cfq_txdb
open Cfq_constr
open Cfq_mining
open Cfq_core
open Cfq_service

let price = Helpers.price

(* a fixed small database; every query below is brute-force checkable *)
let fixed_txs =
  [
    [ 0; 1 ]; [ 0; 1; 2 ]; [ 1; 2 ]; [ 0; 2; 3 ]; [ 1; 3 ]; [ 0; 1; 3 ];
    [ 2; 3 ]; [ 0; 1; 2; 3 ]; [ 1; 2; 3 ]; [ 0; 3 ]; [ 0; 1; 2 ]; [ 1; 2 ];
    [ 0; 1 ]; [ 2; 3; 4 ]; [ 0; 4 ]; [ 1; 2; 4 ]; [ 0; 1; 4 ]; [ 3; 4 ];
    [ 0; 2; 4 ]; [ 1; 3; 4 ];
  ]

let n_items = 5

let mk_ctx () =
  let db = Helpers.db_of_lists fixed_txs in
  let info = Helpers.small_info n_items in
  (db, info, Cfq_core.Exec.context db info)

let q_broad = Query.make ~s_minsup:0.1 ~t_minsup:0.1 ()
let q_narrow = Query.make ~s_minsup:0.2 ~t_minsup:0.2 ()

let base_config =
  { Service.default_config with Service.domains = 1; queue_capacity = 4 }

let install db config = Tx_db.set_faults db (Some (Fault.create config))

let set_pairs (a : Service.answer) =
  Helpers.sorted_pairs
    (List.map
       (fun (s, t) -> (s.Frequent.set, t.Frequent.set))
       a.Service.pairs)

(* the reference scans the database directly, so lift any installed
   injector for its duration *)
let brute db info q =
  let injector = Tx_db.faults db in
  Tx_db.set_faults db None;
  Fun.protect ~finally:(fun () -> Tx_db.set_faults db injector) @@ fun () ->
  Helpers.sorted_pairs
    (Helpers.brute_answer db ~n:n_items ~s_info:info ~t_info:info q)

let check_answer label db info q = function
  | Error e -> Alcotest.failf "%s: %s" label (Service.error_to_string e)
  | Ok a ->
      Alcotest.(check bool)
        (label ^ ": equals brute force")
        true
        (set_pairs a = brute db info q);
      a

let with_service ?(config = base_config) ctx f =
  let service = Service.create ~config ctx in
  Fun.protect ~finally:(fun () -> Service.shutdown service) (fun () -> f service)

(* ------------------------------------------------------------------ *)
(* retries *)

let transient_fault_is_retried () =
  let db, info, ctx = mk_ctx () in
  with_service ~config:{ base_config with Service.retries = 2; degrade = false } ctx
  @@ fun service ->
  install db { Fault.default_config with Fault.fail_first = 1 };
  let a =
    check_answer "retried query" db info q_broad (Service.run service q_broad)
  in
  Alcotest.(check bool) "served cold" true (a.Service.served_from = Service.Cold);
  let m = Service.metrics service in
  Alcotest.(check int) "one retry" 1 m.Metrics.retries;
  Alcotest.(check int) "no failure surfaced" 0 m.Metrics.failures;
  Tx_db.set_faults db None

let exhausted_retries_surface_the_fault () =
  let db, _, ctx = mk_ctx () in
  with_service ~config:{ base_config with Service.retries = 1; degrade = false } ctx
  @@ fun service ->
  install db { Fault.default_config with Fault.transient_p = 1.0 };
  (match Service.run service q_broad with
  | Error (Service.Fault (Cfq_error.Transient_io _)) -> ()
  | Error e -> Alcotest.failf "unexpected error: %s" (Service.error_to_string e)
  | Ok _ -> Alcotest.fail "expected a fault");
  let m = Service.metrics service in
  Alcotest.(check int) "retry budget spent" 1 m.Metrics.retries;
  Alcotest.(check int) "failure counted" 1 m.Metrics.failures;
  Alcotest.(check int) "fault classified" 1 m.Metrics.fault_transient;
  Tx_db.set_faults db None

(* ------------------------------------------------------------------ *)
(* circuit breaker *)

let breaker_config =
  {
    base_config with
    Service.retries = 0;
    breaker_threshold = 2;
    breaker_cooldown = 2;
    degrade = false;
  }

let breaker_lifecycle () =
  let db, info, ctx = mk_ctx () in
  with_service ~config:breaker_config ctx @@ fun service ->
  install db { Fault.default_config with Fault.transient_p = 1.0 };
  let expect label r = function
    | `Fault -> (
        match r with
        | Error (Service.Fault _) -> ()
        | _ -> Alcotest.failf "%s: expected a fault" label)
    | `Shed -> (
        match r with
        | Error Service.Overloaded -> ()
        | _ -> Alcotest.failf "%s: expected Overloaded" label)
  in
  (* two consecutive failures trip the breaker *)
  expect "q1" (Service.run service q_broad) `Fault;
  expect "q2" (Service.run service q_broad) `Fault;
  (* open: two admissions shed (the cooldown), then a half-open probe *)
  expect "q3" (Service.run service q_broad) `Shed;
  expect "q4" (Service.run service q_broad) `Shed;
  (* the probe still fails, so the breaker re-trips for another cooldown *)
  expect "q5 (probe)" (Service.run service q_broad) `Fault;
  expect "q6" (Service.run service q_broad) `Shed;
  (* the store recovers while the breaker is still open *)
  Tx_db.set_faults db None;
  expect "q7" (Service.run service q_broad) `Shed;
  (* this probe succeeds and closes the breaker *)
  let a =
    check_answer "q8 (probe)" db info q_broad (Service.run service q_broad)
  in
  Alcotest.(check bool) "probe mined cold" true
    (a.Service.served_from = Service.Cold);
  let a2 =
    check_answer "q9 after close" db info q_broad (Service.run service q_broad)
  in
  Alcotest.(check bool) "closed breaker serves the cache" true
    (a2.Service.served_from = Service.Answer_cache);
  let m = Service.metrics service in
  Alcotest.(check int) "two trips" 2 m.Metrics.breaker_trips;
  Alcotest.(check int) "four shed" 4 m.Metrics.shed;
  Alcotest.(check int) "three raw failures" 3 m.Metrics.failures

let open_breaker_serves_the_answer_cache () =
  let db, info, ctx = mk_ctx () in
  with_service ~config:{ breaker_config with Service.degrade = true } ctx
  @@ fun service ->
  (* prime the cache while healthy *)
  let (_ : Service.answer) =
    check_answer "prime" db info q_narrow (Service.run service q_narrow)
  in
  install db { Fault.default_config with Fault.transient_p = 1.0 };
  (* q_broad asks for MORE than the cached q_narrow answer covers, so it
     cannot be served degraded: it fails twice and trips the breaker *)
  let fail label =
    match Service.run service q_broad with
    | Error (Service.Fault _) -> ()
    | _ -> Alcotest.failf "%s: expected a fault" label
  in
  fail "f1";
  fail "f2";
  (* breaker open: the cached query is still answered, without a scan *)
  let a =
    check_answer "cache hit while open" db info q_narrow
      (Service.run service q_narrow)
  in
  Alcotest.(check bool) "served from the answer cache" true
    (a.Service.served_from = Service.Answer_cache);
  Alcotest.(check int) "no counting" 0 a.Service.support_counted;
  (* the uncacheable query is shed *)
  (match Service.run service q_broad with
  | Error Service.Overloaded -> ()
  | _ -> Alcotest.fail "expected Overloaded");
  Alcotest.(check int) "one shed" 1 (Service.metrics service).Metrics.shed;
  Tx_db.set_faults db None

(* ------------------------------------------------------------------ *)
(* graceful degradation *)

let degraded_answer_is_exact () =
  let db, info, ctx = mk_ctx () in
  with_service
    ~config:
      {
        base_config with
        Service.retries = 0;
        breaker_threshold = 0;
        degrade = true;
      }
    ctx
  @@ fun service ->
  let (_ : Service.answer) =
    check_answer "prime" db info q_broad (Service.run service q_broad)
  in
  (* drop the mined collections so any refinement must rescan — then the
     store starts failing hard *)
  Service.cache_drop_sides service;
  install db { Fault.default_config with Fault.transient_p = 1.0 };
  let q2 =
    Query.make ~s_minsup:0.2 ~t_minsup:0.2
      ~s_constraints:[ One_var.Agg_cmp (Agg.Max, price, Cmp.Ge, 10.) ]
      ()
  in
  let a = check_answer "degraded refinement" db info q2 (Service.run service q2) in
  Alcotest.(check bool) "flagged degraded" true
    (a.Service.served_from = Service.Degraded);
  Alcotest.(check int) "no counting" 0 a.Service.support_counted;
  (* the primed query itself is still an exact answer-cache hit *)
  let a2 =
    check_answer "exact hit under faults" db info q_broad
      (Service.run service q_broad)
  in
  Alcotest.(check bool) "answer cache" true
    (a2.Service.served_from = Service.Answer_cache);
  let m = Service.metrics service in
  Alcotest.(check int) "one degraded answer" 1 m.Metrics.degraded;
  Tx_db.set_faults db None

(* ------------------------------------------------------------------ *)
(* pool fallbacks *)

let pool_queue_full_falls_back_inline () =
  let pool = Pool.create ~domains:1 ~queue_capacity:1 () in
  let release = Atomic.make false in
  let blocker =
    match Pool.submit pool (fun () ->
        while not (Atomic.get release) do Domain.cpu_relax () done;
        0)
    with
    | Some p -> p
    | None -> Alcotest.fail "blocker refused"
  in
  (* wait until the worker has picked the blocker up, then fill the queue *)
  while Pool.queue_depth pool > 0 do Domain.cpu_relax () done;
  let filler =
    match Pool.submit pool (fun () -> 1) with
    | Some p -> p
    | None -> Alcotest.fail "filler refused"
  in
  Alcotest.(check (option int)) "queue full" None
    (Option.map (fun _ -> 0) (Pool.submit pool (fun () -> 2)));
  let fell_back = ref false in
  let r = Pool.run ~on_fallback:(fun () -> fell_back := true) pool (fun () -> 2) in
  Alcotest.(check int) "inline result" 2 r;
  Alcotest.(check bool) "fallback signalled" true !fell_back;
  Atomic.set release true;
  Alcotest.(check int) "blocker result" 0 (Pool.await blocker);
  Alcotest.(check int) "filler result" 1 (Pool.await filler);
  Pool.shutdown pool

let pool_shutdown_semantics () =
  let pool = Pool.create ~domains:1 ~queue_capacity:4 () in
  Pool.shutdown pool;
  Pool.shutdown pool (* documented no-op *);
  Alcotest.(check bool) "stopped" true (Pool.is_stopped pool);
  (match Pool.submit pool (fun () -> 0) with
  | _ -> Alcotest.fail "expected a typed Overload"
  | exception Cfq_error.Error Cfq_error.Overload -> ());
  let fell_back = ref false in
  let r = Pool.run ~on_fallback:(fun () -> fell_back := true) pool (fun () -> 7) in
  Alcotest.(check int) "run still yields inline" 7 r;
  Alcotest.(check bool) "fallback signalled" true !fell_back

(* ------------------------------------------------------------------ *)
(* fan_out: the work-sharing primitive under the parallel counting engine *)

let fan_out_degrades_to_sequential () =
  (* domains=1 never spawns or borrows: one accumulator, indices in order *)
  let seen = ref [] in
  let accs =
    Pool.fan_out ~domains:1 ~n_tasks:5
      ~init:(fun () -> ref 0)
      ~work:(fun acc i ->
        seen := i :: !seen;
        acc := !acc + i)
      ()
  in
  Alcotest.(check (list int)) "indices in order" [ 0; 1; 2; 3; 4 ] (List.rev !seen);
  (match accs with
  | [ acc ] -> Alcotest.(check int) "single accumulator" 10 !acc
  | _ -> Alcotest.failf "expected 1 accumulator, got %d" (List.length accs))

let fan_out_covers_every_task_once () =
  let n_tasks = 1000 in
  let accs =
    Pool.fan_out ~domains:3 ~n_tasks
      ~init:(fun () -> Array.make n_tasks 0)
      ~work:(fun acc i -> acc.(i) <- acc.(i) + 1)
      ()
  in
  Alcotest.(check bool) "at most 3 participants" true (List.length accs <= 3);
  let total = Array.make n_tasks 0 in
  List.iter (Array.iteri (fun i c -> total.(i) <- total.(i) + c)) accs;
  Array.iteri
    (fun i c -> if c <> 1 then Alcotest.failf "task %d ran %d times" i c)
    total

let fan_out_borrows_without_blocking_on_a_busy_pool () =
  (* one worker, kept busy: helpers either never start or are withdrawn;
     the caller still finishes all tasks and the pool stays usable *)
  let pool = Pool.create ~domains:1 ~queue_capacity:2 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let release = Atomic.make false in
  let blocker =
    match Pool.submit pool (fun () ->
        while not (Atomic.get release) do Domain.cpu_relax () done;
        42)
    with
    | Some p -> p
    | None -> Alcotest.fail "blocker refused"
  in
  while Pool.queue_depth pool > 0 do Domain.cpu_relax () done;
  let accs =
    Pool.fan_out ~pool ~domains:4 ~n_tasks:100
      ~init:(fun () -> ref 0)
      ~work:(fun acc i -> acc := !acc + i)
      ()
  in
  let total = List.fold_left (fun s acc -> s + !acc) 0 accs in
  Alcotest.(check int) "all tasks counted" (100 * 99 / 2) total;
  Atomic.set release true;
  Alcotest.(check int) "blocker unaffected" 42 (Pool.await blocker);
  (* withdrawn helpers are skipped (not run) once the worker drains them;
     the pool then serves new work as usual *)
  while Pool.queue_depth pool > 0 do Domain.cpu_relax () done;
  match Pool.submit pool (fun () -> 7) with
  | Some p -> Alcotest.(check int) "pool usable after fan_out" 7 (Pool.await p)
  | None -> Alcotest.fail "pool refused after fan_out"

exception Boom

let fan_out_propagates_failure () =
  (match
     Pool.fan_out ~domains:3 ~n_tasks:50
       ~init:(fun () -> ())
       ~work:(fun () i -> if i = 17 then raise Boom)
       ()
   with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom -> ());
  (* spawned helpers must all be joined even on failure: a fresh fan_out
     right after still works *)
  let accs =
    Pool.fan_out ~domains:3 ~n_tasks:10 ~init:(fun () -> ref 0)
      ~work:(fun acc _ -> incr acc) ()
  in
  Alcotest.(check int) "clean after failure" 10
    (List.fold_left (fun s acc -> s + !acc) 0 accs)

let service_outlives_its_pool () =
  let db, info, ctx = mk_ctx () in
  let config =
    { base_config with Service.retries = 0; breaker_threshold = 0; degrade = false }
  in
  let service = Service.create ~config ctx in
  Service.shutdown service;
  (* a shut-down service still answers, inline in the caller *)
  let (_ : Service.answer) =
    check_answer "inline after shutdown" db info q_broad
      (Service.run service q_broad)
  in
  let m = Service.metrics service in
  Alcotest.(check int) "inline run counted" 1 m.Metrics.inline_runs;
  Alcotest.(check int) "rejection counted" 1 m.Metrics.rejected;
  (* the inline fallback still honours the admission-time deadline *)
  (match Service.run service ~deadline:(-1.) q_narrow with
  | Error Service.Deadline_exceeded -> ()
  | Error e -> Alcotest.failf "unexpected: %s" (Service.error_to_string e)
  | Ok _ -> Alcotest.fail "expected Deadline_exceeded");
  let m = Service.metrics service in
  Alcotest.(check int) "second inline run" 2 m.Metrics.inline_runs;
  Alcotest.(check int) "deadline expiry counted" 1 m.Metrics.deadline_expired

(* ------------------------------------------------------------------ *)
(* qcheck: a crashing query never leaves a partially-inserted cache entry —
   after the faults clear, every answer equals brute force *)

let gen_crash =
  QCheck2.Gen.(
    let* n_db = Helpers.gen_db in
    let* q1 = Helpers.gen_query in
    let* extra = Helpers.gen_one_var in
    let* bump = int_range 0 10 in
    let* seed = int_range 0 10_000 in
    return (n_db, q1, extra, bump, seed))

let print_crash ((n, db), q1, extra, bump, seed) =
  Printf.sprintf "%s q1=%s extra=%s bump=%d seed=%d" (Helpers.print_db (n, db))
    (Query.to_string q1) (One_var.to_string extra) bump seed

let prop_crash_consistency ((n, db), q1, extra, bump, seed) =
  let info = Helpers.small_info n in
  let ctx = Cfq_core.Exec.context db info in
  let q2 =
    {
      q1 with
      Query.s_minsup = min 1. (q1.Query.s_minsup +. (float_of_int bump /. 100.));
      s_constraints = extra :: q1.Query.s_constraints;
    }
  in
  let config =
    { base_config with Service.retries = 0; breaker_threshold = 0; degrade = false }
  in
  let service = Service.create ~config ctx in
  Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
  let check_one label q =
    let expected =
      Helpers.sorted_pairs
        (Helpers.brute_answer db ~n ~s_info:info ~t_info:info q)
    in
    match Service.run service q with
    | Error e -> QCheck2.Test.fail_reportf "%s: %s" label (Service.error_to_string e)
    | Ok a ->
        if set_pairs a <> expected then
          QCheck2.Test.fail_reportf "%s served %s: wrong pairs" label
            (Service.served_from_name a.Service.served_from);
        true
  in
  (* healthy run; the reference for q2 is also computed now, since the
     brute-force scan cannot run against a faulted store *)
  let expected2 =
    Helpers.sorted_pairs (Helpers.brute_answer db ~n ~s_info:info ~t_info:info q2)
  in
  let ok1 = check_one "q1 healthy" q1 in
  (* drop the sides so the refinement must rescan while the store crashes
     and drops reads *)
  Service.cache_drop_sides service;
  Tx_db.set_faults db
    (Some
       (Fault.create
          {
            Fault.default_config with
            Fault.seed = Int64.of_int seed;
            crash_p = 0.5;
            transient_p = 0.2;
            fail_first = 1;
          }));
  (* under faults the query may fail — but if it answers, it answers right *)
  let under_faults =
    Fun.protect ~finally:(fun () -> Tx_db.set_faults db None) @@ fun () ->
    match Service.run service q2 with
    | Error _ -> true
    | Ok a -> set_pairs a = expected2
  in
  (* whatever the crashed attempts left in the caches must not poison
     post-recovery answers *)
  ok1 && under_faults && check_one "q2 recovered" q2 && check_one "q1 recovered" q1

(* ------------------------------------------------------------------ *)
(* retry backoff jitter is a pure function of (seed, query, attempt) *)

let backoff_jitter_is_deterministic () =
  let _, _, ctx = mk_ctx () in
  let config = { base_config with Service.backoff_base = 0.01 } in
  with_service ~config ctx @@ fun s1 ->
  with_service ~config ctx @@ fun s2 ->
  let delays svc q = List.init 4 (Service.retry_delay svc q) in
  (* two services with the same config agree on every delay *)
  Alcotest.(check (list (float 0.)))
    "same config, same schedule" (delays s1 q_broad) (delays s2 q_broad);
  (* draw order is irrelevant: interleaving other queries' draws does not
     shift the schedule (a shared random stream would fail this) *)
  let before = Service.retry_delay s1 q_broad 2 in
  List.iter (fun a -> ignore (Service.retry_delay s1 q_narrow a)) [ 0; 1; 2; 3 ];
  Alcotest.(check (float 0.))
    "order-independent" before
    (Service.retry_delay s1 q_broad 2);
  (* delays stay inside the documented envelope base·2ᵃ·[0.5, 1.5) *)
  List.iteri
    (fun a d ->
      let lo = 0.01 *. (2. ** float_of_int a) *. 0.5 in
      Alcotest.(check bool)
        (Printf.sprintf "attempt %d in envelope" a)
        true
        (d >= lo && d < 3. *. lo))
    (delays s1 q_broad);
  (* distinct queries and a distinct seed give distinct jitter *)
  Alcotest.(check bool)
    "query-dependent" true
    (Service.retry_delay s1 q_broad 0 <> Service.retry_delay s1 q_narrow 0);
  let reseeded = { config with Service.jitter_seed = 0x5151_5151L } in
  with_service ~config:reseeded ctx @@ fun s3 ->
  Alcotest.(check bool)
    "seed-dependent" true
    (Service.retry_delay s1 q_broad 0 <> Service.retry_delay s3 q_broad 0)

let suite =
  [
    Alcotest.test_case "transient fault is retried" `Quick transient_fault_is_retried;
    Alcotest.test_case "exhausted retries surface the fault" `Quick
      exhausted_retries_surface_the_fault;
    Alcotest.test_case "breaker lifecycle" `Quick breaker_lifecycle;
    Alcotest.test_case "open breaker serves the answer cache" `Quick
      open_breaker_serves_the_answer_cache;
    Alcotest.test_case "degraded answer is exact" `Quick degraded_answer_is_exact;
    Alcotest.test_case "pool: queue-full falls back inline" `Quick
      pool_queue_full_falls_back_inline;
    Alcotest.test_case "pool: shutdown semantics" `Quick pool_shutdown_semantics;
    Alcotest.test_case "fan_out: domains=1 degrades to sequential" `Quick
      fan_out_degrades_to_sequential;
    Alcotest.test_case "fan_out: every task runs exactly once" `Quick
      fan_out_covers_every_task_once;
    Alcotest.test_case "fan_out: borrows without blocking on a busy pool" `Quick
      fan_out_borrows_without_blocking_on_a_busy_pool;
    Alcotest.test_case "fan_out: propagates the first failure" `Quick
      fan_out_propagates_failure;
    Alcotest.test_case "service outlives its pool" `Quick service_outlives_its_pool;
    Alcotest.test_case "backoff jitter is deterministic" `Quick
      backoff_jitter_is_deterministic;
    Helpers.qtest ~count:40 "crash-consistency: caches never poisoned" gen_crash
      print_crash prop_crash_consistency;
  ]
