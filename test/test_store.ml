(* The persistent store: page-codec round-trips (qcheck), torn-tail WAL
   recovery, buffer-pool eviction/pinning, fault injection on the disk
   backend, and end-to-end backend equivalence of answers and counters. *)

open Cfq_itembase
open Cfq_txdb
open Cfq_store

let unit name f = Alcotest.test_case name `Quick f

let tmp () = Filename.temp_file "cfq_store_test" ".cfqdb"

(* a tiny page: 14 items fill it exactly (8 + 14*4 = 64), 15+ are oversized *)
let small_pm = Page_model.make ~page_size_bytes:64 ()

let sets_of_lists ls = Array.of_list (List.map Itemset.of_list ls)

let db_pair ?page_model lists =
  let sets = sets_of_lists lists in
  let path = tmp () in
  Store.build ?page_model path sets;
  let store = Store.open_ ~cache_pages:2 path in
  (Tx_db.create ?page_model sets, store)

let all_txs db =
  List.init (Tx_db.size db) (fun i ->
      let tx = Tx_db.get db i in
      (tx.Transaction.tid, Itemset.to_list tx.Transaction.items))

(* an injector with no active failure modes still drives the checksum
   verification walk, so [verify] really recomputes page checksums *)
let verify_checksums db =
  Tx_db.set_faults db (Some (Fault.create Fault.default_config));
  let r = Tx_db.verify db in
  Tx_db.set_faults db None;
  r

let check_equivalent ?page_model lists =
  let mem, store = db_pair ?page_model lists in
  let disk = Store.db store in
  Alcotest.(check int) "size" (Tx_db.size mem) (Tx_db.size disk);
  Alcotest.(check int) "pages" (Tx_db.pages mem) (Tx_db.pages disk);
  for i = 0 to Tx_db.size mem - 1 do
    Alcotest.(check int) "page_of" (Tx_db.page_of_tx mem i) (Tx_db.page_of_tx disk i)
  done;
  Alcotest.(check (list (pair int (list int)))) "transactions" (all_txs mem)
    (all_txs disk);
  Alcotest.(check (float 1e-9)) "avg_tx_len" (Tx_db.avg_tx_len mem)
    (Tx_db.avg_tx_len disk);
  (match verify_checksums disk with
  | Ok () -> ()
  | Error e -> Alcotest.failf "verify: %s" (Cfq_error.to_string e));
  Store.close store

(* ------------------------------------------------------------------ *)
(* qcheck: encode -> decode is identity, including empty itemsets,
   max-width pages (a tx exactly filling a page) and oversized txs *)

let gen_store_db =
  QCheck2.Gen.(
    let tx =
      oneof
        [
          return [];  (* empty itemset *)
          list_size (int_range 1 10) (int_range 0 99);
          (* exactly page-filling under small_pm: 14 distinct items *)
          return (List.init 14 (fun i -> i * 3));
          (* oversized: spans dedicated pages *)
          list_size (int_range 20 40) (int_range 0 99);
        ]
    in
    list_size (int_range 0 30) tx)

let qcheck_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"store round-trip = identity (small pages)" ~count:60
       ~print:(fun ls ->
         String.concat ";"
           (List.map (fun l -> Itemset.to_string (Itemset.of_list l)) ls))
       gen_store_db
       (fun lists ->
         let sets = sets_of_lists lists in
         let path = tmp () in
         Store.build ~page_model:small_pm path sets;
         let store = Store.open_ ~cache_pages:3 path in
         let disk = Store.db store in
         let mem = Tx_db.create ~page_model:small_pm sets in
         let ok =
           all_txs mem = all_txs disk
           && Tx_db.pages mem = Tx_db.pages disk
           && verify_checksums disk = Ok ()
         in
         Store.close store;
         Sys.remove path;
         ok))

(* ------------------------------------------------------------------ *)
(* page-level verify seam (the scrubber substrate) *)

let read_file path =
  let ic = open_in_bin path in
  let b = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Bytes.of_string b

let write_file path b =
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let flip_byte path off =
  let b = read_file path in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0xFF));
  write_file path b

let fault_names fs =
  List.map
    (fun f -> (f.Store.pf_page, Store.page_fault_kind_name f.Store.pf_kind))
    fs

let verify_sets =
  [ [ 1; 2; 3 ]; [ 4; 5 ]; List.init 14 (fun i -> i); [ 6 ]; [ 7; 8 ] ]

let verify_pages_finds_bad_crc () =
  let path = tmp () in
  Store.build ~page_model:small_pm path (sets_of_lists verify_sets);
  let store = Store.open_ ~cache_pages:2 path in
  Alcotest.(check (list (pair int string))) "clean store verifies clean" []
    (fault_names (Store.verify_pages store));
  let throttled = ref 0 in
  ignore (Store.verify_pages ~throttle:(fun ~page:_ -> incr throttled) store);
  Alcotest.(check int) "throttle sees every data page" (Store.pages store)
    !throttled;
  (* rot a byte inside data page 1 (pages are 64 bytes; page 0 of data
     starts one page in) — the raw CRC must catch it *)
  flip_byte path (64 + 64 + 5);
  Alcotest.(check (list (pair int string))) "bad crc pinned to page 1"
    [ (1, "bad-crc") ]
    (fault_names (Store.verify_pages store));
  Store.close store

(* corrupt a page but re-patch its footer CRC: the raw layer is fooled,
   the logical checksum is not *)
let verify_pages_finds_bad_checksum () =
  let path = tmp () in
  Store.build ~page_model:small_pm path (sets_of_lists verify_sets);
  let ps = 64 in
  (* geometry probe: open_ loads the footer tables into memory, so the
     tampering below must happen before the verifying handle opens *)
  let n, n_pages =
    let st = Store.open_ ~cache_pages:1 path in
    let g = (Store.size st, Store.pages st) in
    Store.close st;
    g
  in
  let b = read_file path in
  (* tamper a tid byte of page 0 *)
  let poff = ps in
  Bytes.set b poff (Char.chr (Char.code (Bytes.get b poff) lxor 0x01));
  (* fix up footer: crcs[0], then the footer's own CRC *)
  let footer_off = ps + (n_pages * ps) in
  let o1 = 4 * n in
  let o3 = o1 + (4 * n_pages) + (8 * n_pages) in
  Bytes.set_int32_le b
    (footer_off + o1)
    (Int32.of_int (Crc32.sub b poff ps));
  let footer = Bytes.sub b footer_off (o3 + 4) in
  Bytes.set_int32_le b (footer_off + o3) (Int32.of_int (Crc32.sub footer 0 o3));
  write_file path b;
  let store = Store.open_ ~cache_pages:2 path in
  Alcotest.(check (list (pair int string))) "bad checksum pinned to page 0"
    [ (0, "bad-checksum") ]
    (fault_names (Store.verify_pages store));
  Store.close store

(* ------------------------------------------------------------------ *)
(* fuzz: arbitrary truncations and bit-flips over the WAL must yield a
   successful recovery of a record prefix — never an exception and never
   a store that fails verification *)

let wal_fuzz_sets = List.init 12 (fun i -> [ i mod 9; (i + 2) mod 9 ])

let build_wal_victim path =
  let store = Store.create ~page_model:small_pm path in
  Store.append_tx store (Itemset.of_list [ 0; 3 ]);
  ignore (Store.seal store);
  List.iter (fun l -> Store.append_tx store (Itemset.of_list l)) wal_fuzz_sets;
  Store.flush store;
  Store.close store (* crash before seal: records live only in the WAL *)

let wal_fuzz_outcome mutate =
  let path = tmp () in
  build_wal_victim path;
  mutate (path ^ ".wal");
  let outcome =
    match Store.open_ path with
    | store ->
        let size = Store.size store in
        let ok =
          size >= 1
          && size <= 1 + List.length wal_fuzz_sets
          && verify_checksums (Store.db store) = Ok ()
        in
        Store.close store;
        if ok then Ok size else Error "inconsistent recovered store"
    | exception Cfq_error.Error e -> Error (Cfq_error.to_string e)
    | exception Segment.Bad_segment m -> Error ("bad segment: " ^ m)
  in
  Sys.remove path;
  (try Sys.remove (path ^ ".wal") with Sys_error _ -> ());
  outcome

let qcheck_wal_fuzz =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"WAL fuzz: truncation/bit-flip recovers typed"
       ~count:60
       ~print:(fun (frac, bit) -> Printf.sprintf "frac=%f bit=%d" frac bit)
       QCheck2.Gen.(pair (float_bound_inclusive 1.) (int_bound 4095))
       (fun (frac, bit) ->
         let outcome =
           wal_fuzz_outcome (fun wal ->
               let size = (Unix.stat wal).Unix.st_size in
               let cut = int_of_float (frac *. float_of_int size) in
               if bit mod 2 = 0 then Unix.truncate wal (min cut size)
               else if size > 0 then flip_byte wal (bit * 97 mod size))
         in
         (* the WAL is the recovery domain: damage there must never make
            open_ raise — the typed-error escape hatch is for the segment *)
         match outcome with
         | Ok _ -> true
         | Error m -> QCheck2.Test.fail_reportf "WAL fuzz outcome: %s" m))

(* ------------------------------------------------------------------ *)

let suite =
  [
    unit "round-trip, default page model" (fun () ->
        check_equivalent [ [ 0; 1; 2 ]; [ 1; 2 ]; []; [ 2 ]; [ 0; 1; 2; 3 ] ]);
    unit "round-trip, multi-page and oversized" (fun () ->
        check_equivalent ~page_model:small_pm
          [
            List.init 14 (fun i -> i);  (* max-width page *)
            [ 3; 5 ];
            List.init 30 (fun i -> 2 * i);  (* oversized: 128 bytes *)
            [];
            List.init 7 (fun i -> i + 50);
            [ 9 ];
          ]);
    qcheck_roundtrip;
    unit "empty store" (fun () ->
        let path = tmp () in
        let store = Store.create path in
        Alcotest.(check int) "size" 0 (Store.size store);
        Alcotest.(check int) "pages" 0 (Store.pages store);
        Alcotest.(check (list (pair int (list int)))) "txs" [] (all_txs (Store.db store));
        Store.close store);
    unit "append + seal makes transactions durable" (fun () ->
        let path = tmp () in
        let store = Store.create ~page_model:small_pm path in
        Store.append_tx store (Itemset.of_list [ 1; 2; 3 ]);
        Store.append_tx store Itemset.empty;
        Store.append_tx store (Itemset.of_list [ 7 ]);
        Alcotest.(check int) "not yet visible" 0 (Store.size store);
        Alcotest.(check int) "sealed" 3 (Store.seal store);
        Alcotest.(check int) "visible" 3 (Store.size store);
        Alcotest.(check (list (pair int (list int)))) "content"
          [ (0, [ 1; 2; 3 ]); (1, []); (2, [ 7 ]) ]
          (all_txs (Store.db store));
        Store.close store;
        (* reopen: still there, nothing to recover *)
        let store = Store.open_ path in
        Alcotest.(check int) "after reopen" 3 (Store.size store);
        Alcotest.(check int) "replayed" 0 (Store.last_recovery store).Store.replayed;
        Store.close store);
    unit "recovery replays unsealed WAL records" (fun () ->
        let path = tmp () in
        let store = Store.create ~page_model:small_pm path in
        Store.append_tx store (Itemset.of_list [ 1; 2 ]);
        Store.append_tx store (Itemset.of_list [ 4 ]);
        Store.flush store;
        (* no seal: simulate a crash by just dropping the handle's state *)
        Store.close store;
        let store = Store.open_ path in
        Alcotest.(check int) "replayed" 2 (Store.last_recovery store).Store.replayed;
        Alcotest.(check int) "size" 2 (Store.size store);
        Alcotest.(check (list (pair int (list int)))) "content"
          [ (0, [ 1; 2 ]); (1, [ 4 ]) ]
          (all_txs (Store.db store));
        Store.close store);
    unit "recovery truncates a torn WAL tail" (fun () ->
        let path = tmp () in
        let store = Store.create ~page_model:small_pm path in
        Store.append_tx store (Itemset.of_list [ 1; 2 ]);
        Store.append_tx store (Itemset.of_list [ 4; 5 ]);
        Store.append_tx store (Itemset.of_list [ 6; 7; 8 ]);
        Store.close store;
        (* tear mid-record: chop the last 3 bytes of the log *)
        let wal = path ^ ".wal" in
        let size = (Unix.stat wal).Unix.st_size in
        Unix.truncate wal (size - 3);
        let store = Store.open_ path in
        let r = Store.last_recovery store in
        Alcotest.(check int) "replayed" 2 r.Store.replayed;
        Alcotest.(check bool) "truncated" true (r.Store.truncated_bytes > 0);
        Alcotest.(check (list (pair int (list int)))) "prefix survives"
          [ (0, [ 1; 2 ]); (1, [ 4; 5 ]) ]
          (all_txs (Store.db store));
        (match verify_checksums (Store.db store) with
        | Ok () -> ()
        | Error e -> Alcotest.failf "verify: %s" (Cfq_error.to_string e));
        Store.close store);
    unit "recovery drops a CRC-corrupt WAL record" (fun () ->
        let path = tmp () in
        let store = Store.create ~page_model:small_pm path in
        Store.append_tx store (Itemset.of_list [ 1 ]);
        Store.append_tx store (Itemset.of_list [ 2 ]);
        Store.close store;
        (* flip one payload byte of the last record *)
        let wal = path ^ ".wal" in
        let size = (Unix.stat wal).Unix.st_size in
        let fd = Unix.openfile wal [ Unix.O_WRONLY ] 0 in
        ignore (Unix.lseek fd (size - 5) Unix.SEEK_SET);
        ignore (Unix.write fd (Bytes.of_string "\xFF") 0 1);
        Unix.close fd;
        let store = Store.open_ path in
        Alcotest.(check int) "replayed" 1 (Store.last_recovery store).Store.replayed;
        Alcotest.(check bool) "torn bytes counted" true
          ((Store.last_recovery store).Store.truncated_bytes > 0);
        Store.close store);
    unit "recovery is idempotent: a stale-generation WAL is not replayed" (fun () ->
        (* simulate the worst crash window: the fold's rename became
           durable but the WAL reset did not.  After recovery we put the
           pre-recovery WAL bytes back verbatim; its header generation
           now trails the segment's, so reopening must NOT duplicate. *)
        let path = tmp () in
        let store = Store.create ~page_model:small_pm path in
        Store.append_tx store (Itemset.of_list [ 1; 2 ]);
        Store.append_tx store (Itemset.of_list [ 4 ]);
        Store.flush store;
        Store.close store;
        let wal = path ^ ".wal" in
        let old_wal =
          let ic = open_in_bin wal in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        let store = Store.open_ path in
        Alcotest.(check int) "first recovery replays" 2
          (Store.last_recovery store).Store.replayed;
        Store.close store;
        let oc = open_out_bin wal in
        output_string oc old_wal;
        close_out oc;
        let store = Store.open_ path in
        Alcotest.(check int) "second recovery replays nothing" 0
          (Store.last_recovery store).Store.replayed;
        Alcotest.(check int) "no duplicated transactions" 2 (Store.size store);
        Alcotest.(check (list (pair int (list int)))) "content intact"
          [ (0, [ 1; 2 ]); (1, [ 4 ]) ]
          (all_txs (Store.db store));
        Store.close store);
    unit "seal bumps the segment generation and re-stamps the WAL" (fun () ->
        let path = tmp () in
        let store = Store.create ~page_model:small_pm path in
        Store.append_tx store (Itemset.of_list [ 1 ]);
        ignore (Store.seal store);
        Store.append_tx store (Itemset.of_list [ 2 ]);
        ignore (Store.seal store);
        Store.close store;
        let seg = Segment.open_ path in
        Alcotest.(check int) "two seals = generation 2" 2 seg.Segment.generation;
        Segment.close seg;
        let s = Wal.scan (path ^ ".wal") in
        Alcotest.(check (option int)) "WAL stamped with the live generation"
          (Some 2) s.Wal.generation;
        Alcotest.(check int) "WAL emptied" 0 (List.length s.Wal.records));
    unit "a db handle from before a seal stays readable" (fun () ->
        let path = tmp () in
        let store = Store.create ~page_model:small_pm path in
        Store.append_tx store (Itemset.of_list [ 1; 2 ]);
        ignore (Store.seal store);
        let before = Store.db store in
        (* warm nothing: force the pre-seal pool to do a physical read
           strictly AFTER the seal has replaced segment and pool *)
        Store.append_tx store (Itemset.of_list [ 7; 8 ]);
        ignore (Store.seal store);
        Alcotest.(check (list (pair int (list int)))) "old snapshot served"
          [ (0, [ 1; 2 ]) ]
          (List.init (Tx_db.size before) (fun i ->
               let tx = Tx_db.get before i in
               (tx.Transaction.tid, Itemset.to_list tx.Transaction.items)));
        Alcotest.(check (list (pair int (list int)))) "new handle sees the seal"
          [ (0, [ 1; 2 ]); (1, [ 7; 8 ]) ]
          (all_txs (Store.db store));
        Store.close store);
    unit "group commit batches fsyncs" (fun () ->
        let path = tmp () in
        let store = Store.create ~page_model:small_pm ~group_commit:8 path in
        for i = 0 to 19 do
          Store.append_tx store (Itemset.of_list [ i ])
        done;
        Store.flush store;
        let appended, fsyncs = Store.wal_counters store in
        Alcotest.(check int) "appended" 20 appended;
        Alcotest.(check int) "fsyncs: 2 full groups + 1 flush" 3 fsyncs;
        Store.close store);
    unit "buffer pool: clock eviction and hit accounting" (fun () ->
        let path = tmp () in
        (* 6 txs of 14 items: one full page each *)
        Store.build ~page_model:small_pm path
          (Array.init 6 (fun t -> Itemset.of_list (List.init 14 (fun i -> (14 * t) + i))));
        let store = Store.open_ ~cache_pages:2 path in
        let db = Store.db store in
        Alcotest.(check int) "pages" 6 (Tx_db.pages db);
        let io = Io_stats.create () in
        let n = ref 0 in
        Tx_db.iter_scan db io (fun _ -> incr n);
        Alcotest.(check int) "cold scan tuples" 6 !n;
        Alcotest.(check int) "cold misses = pages" 6 (Io_stats.pool_misses (Store.io store));
        Alcotest.(check bool) "evictions under pressure" true
          (Io_stats.pool_evictions (Store.io store) > 0);
        Tx_db.iter_scan db io (fun _ -> ());
        Alcotest.(check bool) "second scan still misses (cache < pages)" true
          (Io_stats.pool_misses (Store.io store) > 6);
        Store.close store;
        (* a pool large enough: second scan is all hits *)
        let store = Store.open_ ~cache_pages:8 path in
        let db = Store.db store in
        Tx_db.iter_scan db io (fun _ -> ());
        let cold_misses = Io_stats.pool_misses (Store.io store) in
        Tx_db.iter_scan db io (fun _ -> ());
        Alcotest.(check int) "warm scan adds no misses" cold_misses
          (Io_stats.pool_misses (Store.io store));
        Alcotest.(check bool) "warm hits" true (Io_stats.pool_hits (Store.io store) >= 6);
        Store.close store);
    unit "buffer pool: pinned frames survive, bypass serves readers" (fun () ->
        let path = tmp () in
        Store.build ~page_model:small_pm path
          (Array.init 4 (fun t -> Itemset.of_list (List.init 14 (fun i -> (14 * t) + i))));
        let seg = Segment.open_ path in
        let stats = Io_stats.create () in
        let pool =
          Buffer_pool.create ~path ~page_size:64
            ~n_pages:seg.Segment.layout.Page_codec.pages
            ~data_off:(Segment.data_off seg) ~crcs:seg.Segment.crcs ~capacity:1
            ~stats ()
        in
        let snap b = Bytes.to_string b in
        let p0 = ref "" and p1 = ref "" and p0_again = ref "" in
        Buffer_pool.with_page pool 0 (fun b0 ->
            p0 := snap b0;
            (* the only frame is pinned: this read must bypass, not evict *)
            Buffer_pool.with_page pool 1 (fun b1 -> p1 := snap b1);
            p0_again := snap b0);
        Alcotest.(check bool) "pinned page intact" true (!p0 = !p0_again);
        Alcotest.(check bool) "pages differ" true (!p0 <> !p1);
        Alcotest.(check int) "no eviction of a pinned frame" 0
          (Io_stats.pool_evictions stats);
        Alcotest.(check int) "both reads were misses" 2 (Io_stats.pool_misses stats);
        Alcotest.(check int) "page 0 stayed resident" 1 (Buffer_pool.resident pool);
        (* after unpin the frame is reusable *)
        Buffer_pool.with_page pool 1 (fun _ -> ());
        Alcotest.(check int) "now evicted" 1 (Io_stats.pool_evictions stats);
        Buffer_pool.close pool;
        Segment.close seg);
    unit "physical corruption is caught by the page CRC" (fun () ->
        let path = tmp () in
        Store.build ~page_model:small_pm path
          (Array.init 3 (fun t -> Itemset.of_list (List.init 14 (fun i -> (14 * t) + i))));
        (* flip a byte inside data page 1 (file offset: header page + page) *)
        let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
        ignore (Unix.lseek fd (64 + 64 + 10) Unix.SEEK_SET);
        ignore (Unix.write fd (Bytes.of_string "\xA5") 0 1);
        Unix.close fd;
        let store = Store.open_ ~cache_pages:2 path in
        let db = Store.db store in
        let io = Io_stats.create () in
        (match Tx_db.iter_scan db io (fun _ -> ()) with
        | () -> Alcotest.fail "corrupt page went undetected"
        | exception Cfq_error.Error (Cfq_error.Corrupt_page { page }) ->
            Alcotest.(check int) "page" 1 page);
        Store.close store);
    unit "a damaged segment header is rejected" (fun () ->
        let path = tmp () in
        Store.build path [| Itemset.of_list [ 1 ] |];
        let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
        ignore (Unix.write fd (Bytes.of_string "XXXX") 0 4);
        Unix.close fd;
        (match Store.open_ path with
        | _ -> Alcotest.fail "bad magic accepted"
        | exception Segment.Bad_segment _ -> ()));
    unit "fault injection behaves identically on the disk backend" (fun () ->
        let lists =
          List.init 32 (fun i -> [ i mod 5; (i + 1) mod 5; (i + 2) mod 5 ])
        in
        let mem, store = db_pair ~page_model:small_pm lists in
        let disk = Store.db store in
        let config =
          { Fault.default_config with Fault.fail_first = 1; corrupt_p = 0.4; max_corrupt = 1 }
        in
        let replay db =
          Tx_db.set_faults db (Some (Fault.create config));
          let out = ref [] in
          for _ = 1 to 6 do
            let io = Io_stats.create () in
            let n = ref 0 in
            (match Tx_db.iter_scan db io (fun _ -> incr n) with
            | () -> out := Printf.sprintf "ok:%d" !n :: !out
            | exception Cfq_error.Error e -> out := Cfq_error.to_string e :: !out)
          done;
          let v =
            match Tx_db.verify db with
            | Ok () -> "verify-ok"
            | Error e -> Cfq_error.to_string e
          in
          Tx_db.set_faults db None;
          List.rev (v :: !out)
        in
        Alcotest.(check (list string)) "same fault replay" (replay mem) (replay disk);
        Store.close store);
    unit "chunked parallel scan from two domains" (fun () ->
        let lists = List.init 40 (fun i -> List.init ((i mod 6) + 1) (fun j -> i + j)) in
        let mem, store = db_pair ~page_model:small_pm lists in
        let disk = Store.db store in
        let total db =
          let io = Io_stats.create () in
          Tx_db.begin_scan db io;
          match Tx_db.scan_chunks db ~max_chunks:2 with
          | [ (lo1, hi1); (lo2, hi2) ] ->
              let count lo hi () =
                let n = ref 0 in
                Tx_db.iter_range db ~lo ~hi (fun tx ->
                    n := !n + Transaction.cardinal tx);
                !n
              in
              let d = Domain.spawn (count lo2 hi2) in
              let a = count lo1 hi1 () in
              a + Domain.join d
          | chunks ->
              List.fold_left
                (fun acc (lo, hi) ->
                  let n = ref 0 in
                  Tx_db.iter_range db ~lo ~hi (fun tx ->
                      n := !n + Transaction.cardinal tx);
                  acc + !n)
                0 chunks
        in
        Alcotest.(check int) "item totals agree" (total mem) (total disk);
        Store.close store);
    unit "save_db round-trips an existing database" (fun () ->
        let sets = sets_of_lists [ [ 1; 2 ]; [ 0 ]; [ 2; 3; 4 ] ] in
        let mem = Tx_db.create sets in
        let path = tmp () in
        Store.save_db path mem;
        let store = Store.open_ path in
        Alcotest.(check (list (pair int (list int)))) "content" (all_txs mem)
          (all_txs (Store.db store));
        Alcotest.(check int) "universe" 5 (Store.universe_size store);
        Store.close store);
    unit "verify_pages: clean pass, throttle, bad crc" verify_pages_finds_bad_crc;
    unit "verify_pages: crc-consistent logical corruption" verify_pages_finds_bad_checksum;
    qcheck_wal_fuzz;
  ]
