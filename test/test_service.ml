(* The query service: LRU cache mechanics, constraint entailment,
   fingerprint canonicalisation, and the three serving paths (cold,
   answer-cache, subsumption) against brute-force and Exec references. *)

open Cfq_itembase
open Cfq_constr
open Cfq_mining
open Cfq_core
open Cfq_service

let price = Helpers.price
let typ = Helpers.typ

(* ------------------------------------------------------------------ *)
(* Lru *)

let lru_evicts_at_budget () =
  let c = Lru.create ~budget:10 in
  Alcotest.(check bool) "a fits" true (Lru.insert c "a" ~weight:4 1);
  Alcotest.(check bool) "b fits" true (Lru.insert c "b" ~weight:4 2);
  Alcotest.(check bool) "c fits, evicting" true (Lru.insert c "c" ~weight:4 3);
  Alcotest.(check int) "two entries survive" 2 (Lru.length c);
  Alcotest.(check int) "weight back under budget" 8 (Lru.weight c);
  Alcotest.(check bool) "oldest gone" false (Lru.mem c "a");
  Alcotest.(check bool) "newest present" true (Lru.mem c "c");
  Alcotest.(check int) "one eviction" 1 (Lru.evictions c)

let lru_find_bumps_recency () =
  let c = Lru.create ~budget:10 in
  ignore (Lru.insert c "a" ~weight:4 1 : bool);
  ignore (Lru.insert c "b" ~weight:4 2 : bool);
  Alcotest.(check (option int)) "find a" (Some 1) (Lru.find c "a");
  ignore (Lru.insert c "c" ~weight:4 3 : bool);
  (* "a" was touched after "b", so "b" is the LRU victim *)
  Alcotest.(check bool) "bumped entry survives" true (Lru.mem c "a");
  Alcotest.(check bool) "stale entry evicted" false (Lru.mem c "b")

let lru_oversized_refused () =
  let c = Lru.create ~budget:10 in
  Alcotest.(check bool) "refused" false (Lru.insert c "x" ~weight:11 1);
  Alcotest.(check int) "nothing stored" 0 (Lru.length c);
  ignore (Lru.insert c "a" ~weight:4 1 : bool);
  (* re-binding a live key to an oversized value drops the stale binding *)
  Alcotest.(check bool) "refused again" false (Lru.insert c "a" ~weight:11 2);
  Alcotest.(check bool) "stale binding dropped" false (Lru.mem c "a");
  Alcotest.(check int) "empty" 0 (Lru.weight c)

let lru_replace_updates_weight () =
  let c = Lru.create ~budget:10 in
  ignore (Lru.insert c "a" ~weight:4 1 : bool);
  ignore (Lru.insert c "a" ~weight:6 2 : bool);
  Alcotest.(check int) "one entry" 1 (Lru.length c);
  Alcotest.(check int) "new weight" 6 (Lru.weight c);
  Alcotest.(check (option int)) "new value" (Some 2) (Lru.find c "a")

let lru_fold_mru_first () =
  let c = Lru.create ~budget:100 in
  List.iter (fun k -> ignore (Lru.insert c k ~weight:1 0 : bool)) [ "a"; "b"; "c" ];
  let keys () = List.rev (Lru.fold (fun acc ~key ~value:_ -> key :: acc) [] c) in
  Alcotest.(check (list string)) "insertion recency" [ "c"; "b"; "a" ] (keys ());
  ignore (Lru.find c "a" : int option);
  Alcotest.(check (list string)) "after bump" [ "a"; "c"; "b" ] (keys ())

(* qcheck: the budget invariant [Lru.weight <= budget] holds after every
   operation of any insert/find/remove sequence, and the tracked weight is
   exactly the sum of the live entries' weights *)

type lru_op = Op_insert of int * int | Op_find of int | Op_remove of int

let gen_lru_ops =
  QCheck2.Gen.(
    let* budget = int_range 0 64 in
    let* ops =
      list_size (int_range 1 60)
        (oneof
           [
             (let* k = int_range 0 7 in
              let* w = int_range 0 20 in
              return (Op_insert (k, w)));
             (let* k = int_range 0 7 in
              return (Op_find k));
             (let* k = int_range 0 7 in
              return (Op_remove k));
           ])
    in
    return (budget, ops))

let print_lru_ops (budget, ops) =
  Printf.sprintf "budget=%d [%s]" budget
    (String.concat "; "
       (List.map
          (function
            | Op_insert (k, w) -> Printf.sprintf "ins k%d w%d" k w
            | Op_find k -> Printf.sprintf "find k%d" k
            | Op_remove k -> Printf.sprintf "rm k%d" k)
          ops))

let prop_lru_budget_invariant (budget, ops) =
  let c = Lru.create ~budget in
  let model = Hashtbl.create 8 in
  List.for_all
    (fun op ->
      (match op with
      | Op_insert (k, w) ->
          let key = string_of_int k in
          Hashtbl.remove model key;
          if Lru.insert c key ~weight:w w then Hashtbl.replace model key w
      | Op_find k -> ignore (Lru.find c (string_of_int k) : int option)
      | Op_remove k ->
          let key = string_of_int k in
          Lru.remove c key;
          Hashtbl.remove model key);
      (* evictions drop from the model whatever the cache dropped *)
      Hashtbl.iter
        (fun key _ -> if not (Lru.mem c key) then Hashtbl.remove model key)
        (Hashtbl.copy model);
      let live = Hashtbl.fold (fun _ w acc -> acc + w) model 0 in
      if Lru.weight c > Lru.budget c then
        QCheck2.Test.fail_reportf "over budget after %s: %d > %d"
          (print_lru_ops (budget, [ op ]))
          (Lru.weight c) (Lru.budget c);
      Lru.weight c = live && Lru.length c = Hashtbl.length model)
    ops

(* ------------------------------------------------------------------ *)
(* Entail *)

let check_implies msg expected c1 c2 =
  Alcotest.(check bool) msg expected (Entail.implies c1 c2)

let entail_bounds () =
  let minp op k = One_var.Agg_cmp (Agg.Min, price, op, k) in
  let sump op k = One_var.Agg_cmp (Agg.Sum, price, op, k) in
  check_implies "min >= 50 -> min >= 40" true (minp Cmp.Ge 50.) (minp Cmp.Ge 40.);
  check_implies "min >= 40 -/-> min >= 50" false (minp Cmp.Ge 40.) (minp Cmp.Ge 50.);
  check_implies "sum <= 30 -> sum <= 50" true (sump Cmp.Le 30.) (sump Cmp.Le 50.);
  check_implies "sum <= 50 -/-> sum <= 30" false (sump Cmp.Le 50.) (sump Cmp.Le 30.);
  check_implies "eq -> le" true (minp Cmp.Eq 40.) (minp Cmp.Le 40.);
  check_implies "gt -> ge" true (minp Cmp.Gt 40.) (minp Cmp.Ge 40.);
  check_implies "min bound says nothing about max" false (minp Cmp.Ge 50.)
    (One_var.Agg_cmp (Agg.Max, price, Cmp.Ge, 40.));
  check_implies "card <= 2 -> card <= 3" true
    (One_var.Card_cmp (Cmp.Le, 2))
    (One_var.Card_cmp (Cmp.Le, 3))

let entail_value_sets () =
  let vs l = Value_set.of_list l in
  check_implies "subset of smaller -> subset of larger" true
    (One_var.Dom_subset (typ, vs [ 1. ]))
    (One_var.Dom_subset (typ, vs [ 1.; 2. ]));
  check_implies "subset of larger -/-> subset of smaller" false
    (One_var.Dom_subset (typ, vs [ 1.; 2. ]))
    (One_var.Dom_subset (typ, vs [ 1. ]));
  check_implies "superset of larger -> superset of smaller" true
    (One_var.Dom_superset (typ, vs [ 1.; 2. ]))
    (One_var.Dom_superset (typ, vs [ 2. ]));
  check_implies "disjoint from larger -> disjoint from smaller" true
    (One_var.Dom_disjoint (typ, vs [ 1.; 2. ]))
    (One_var.Dom_disjoint (typ, vs [ 1. ]))

let entail_conjunction () =
  let minp k = One_var.Agg_cmp (Agg.Min, price, Cmp.Ge, k) in
  Alcotest.(check bool) "conjunction entails a weaker atom" true
    (Entail.conj_implies [ minp 50.; One_var.Card_cmp (Cmp.Le, 3) ] (minp 40.));
  Alcotest.(check bool) "nonempty is trivially entailed" true
    (Entail.conj_implies [] One_var.Nonempty);
  Alcotest.(check bool) "tightened request reuses broad cache" true
    (Entail.subsumes ~cached:[ minp 40. ]
       ~requested:[ minp 50.; One_var.Card_cmp (Cmp.Le, 3) ]);
  Alcotest.(check bool) "broadened request cannot" false
    (Entail.subsumes ~cached:[ minp 50. ] ~requested:[ minp 40. ])

(* ------------------------------------------------------------------ *)
(* Fingerprint *)

let fixture () =
  let txs = List.init 40 (fun i -> [ i mod 6; ((i * 2) + 1) mod 6; ((i * 3) + 2) mod 6 ]) in
  let db = Helpers.db_of_lists txs in
  let info = Helpers.small_info 6 in
  Exec.context db info

let fingerprint_canonical () =
  let ctx = fixture () in
  let c1 = One_var.Agg_cmp (Agg.Min, price, Cmp.Ge, 20.) in
  let c2 = One_var.Card_cmp (Cmp.Le, 3) in
  let q cs = Query.make ~s_minsup:0.1 ~t_minsup:0.1 ~s_constraints:cs () in
  Alcotest.(check string) "conjunction order is irrelevant"
    (Fingerprint.query_key ctx (q [ c1; c2 ]))
    (Fingerprint.query_key ctx (q [ c2; c1 ]));
  Alcotest.(check bool) "threshold is part of the key" true
    (Fingerprint.query_key ctx (Query.make ~s_minsup:0.1 ())
    <> Fingerprint.query_key ctx (Query.make ~s_minsup:0.2 ()))

let fingerprint_physical_identity () =
  let db1 = Helpers.db_of_lists [ [ 0; 1 ]; [ 1; 2 ] ] in
  let db2 = Helpers.db_of_lists [ [ 0; 1 ]; [ 1; 2 ] ] in
  Alcotest.(check int) "same value, same id" (Fingerprint.db_id db1)
    (Fingerprint.db_id db1);
  Alcotest.(check bool) "distinct loads never alias" true
    (Fingerprint.db_id db1 <> Fingerprint.db_id db2)

(* ------------------------------------------------------------------ *)
(* Service paths *)

let set_pairs answer_pairs =
  Helpers.sorted_pairs
    (List.map (fun (s, t) -> (s.Frequent.set, t.Frequent.set)) answer_pairs)

let pairs_str l =
  String.concat "; "
    (List.map (fun (s, t) -> Itemset.to_string s ^ "," ^ Itemset.to_string t) l)

let expect_ok = function
  | Ok a -> a
  | Error e -> Alcotest.failf "service error: %s" (Service.error_to_string e)

let check_against_exec ctx service msg q =
  let cold = Exec.run ~collect_pairs:true ctx q in
  let a = expect_ok (Service.run service q) in
  Alcotest.(check string) msg
    (pairs_str (Helpers.sorted_pairs (List.map (fun (s, t) -> (s.Frequent.set, t.Frequent.set)) cold.Exec.pairs)))
    (pairs_str (set_pairs a.Service.pairs));
  a

let broad_query =
  Query.make ~s_minsup:0.1 ~t_minsup:0.1
    ~s_constraints:[ One_var.Agg_cmp (Agg.Min, price, Cmp.Ge, 20.) ]
    ~t_constraints:[ One_var.Agg_cmp (Agg.Max, price, Cmp.Le, 60.) ]
    ~two_var:[ Two_var.Set2 (typ, Two_var.Intersect, typ) ]
    ()

let service_answer_cache_hit () =
  let ctx = fixture () in
  let service = Service.create ~config:{ Service.default_config with domains = 1 } ctx in
  Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
  let r1 = check_against_exec ctx service "cold run matches Exec" broad_query in
  Alcotest.(check string) "first run is cold" "cold"
    (Service.served_from_name r1.Service.served_from);
  let r2 = expect_ok (Service.run service broad_query) in
  Alcotest.(check string) "second run hits the answer cache" "answer-cache"
    (Service.served_from_name r2.Service.served_from);
  Alcotest.(check string) "verbatim pairs"
    (pairs_str (set_pairs r1.Service.pairs))
    (pairs_str (set_pairs r2.Service.pairs));
  Alcotest.(check int) "no counting on a hit" 0 r2.Service.support_counted;
  Alcotest.(check int) "no checking on a hit" 0 r2.Service.constraint_checks;
  let m = Service.metrics service in
  Alcotest.(check int) "metrics: one hit" 1 m.Metrics.answer_hits;
  Alcotest.(check int) "metrics: both queries served" 2 m.Metrics.queries

let service_subsumption_reuse () =
  let ctx = fixture () in
  let service = Service.create ~config:{ Service.default_config with domains = 1 } ctx in
  Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
  ignore (check_against_exec ctx service "broad query matches Exec" broad_query : Service.answer);
  (* the analyst tightens: higher thresholds, strictly stronger constraints *)
  let tightened =
    Query.make ~s_minsup:0.15 ~t_minsup:0.2
      ~s_constraints:
        [ One_var.Agg_cmp (Agg.Min, price, Cmp.Ge, 30.); One_var.Card_cmp (Cmp.Le, 3) ]
      ~t_constraints:[ One_var.Agg_cmp (Agg.Max, price, Cmp.Le, 50.) ]
      ~two_var:[ Two_var.Set2 (typ, Two_var.Intersect, typ) ]
      ()
  in
  let r = check_against_exec ctx service "tightened query matches Exec" tightened in
  Alcotest.(check string) "served by filtering cached collections" "subsumed"
    (Service.served_from_name r.Service.served_from);
  Alcotest.(check int) "no mining on a subsumed query" 0 r.Service.support_counted;
  Alcotest.(check int) "no scans either" 0 r.Service.scans;
  let m = Service.metrics service in
  Alcotest.(check bool) "metrics saw subsumption hits" true (m.Metrics.subsumption_hits > 0)

let service_deadline_clean_error () =
  let ctx = fixture () in
  let service = Service.create ~config:{ Service.default_config with domains = 1 } ctx in
  Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
  (match Service.run service ~deadline:(-1.) broad_query with
  | Error Service.Deadline_exceeded -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Service.error_to_string e)
  | Ok _ -> Alcotest.fail "expired query produced an answer");
  let m = Service.metrics service in
  Alcotest.(check int) "metrics: one expiry" 1 m.Metrics.deadline_expired;
  Alcotest.(check int) "expired query cached nothing" 0 m.Metrics.answer_entries;
  (* the service is unharmed: the same query without a deadline succeeds *)
  ignore (check_against_exec ctx service "after expiry, still correct" broad_query : Service.answer)

let service_eviction_at_budget () =
  let ctx = fixture () in
  (* depth-1 collections are a few hundred bytes each; a ~2 KiB budget holds
     only a couple, so a descending-threshold sweep (no reuse possible: every
     cached collection sits above the requested threshold) must evict *)
  let config = { Service.default_config with domains = 1; cache_budget = 2048 } in
  let service = Service.create ~config ctx in
  Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
  let thresholds = [ 0.9; 0.7; 0.5; 0.3; 0.2; 0.15; 0.1; 0.05 ] in
  List.iter
    (fun minsup ->
      let q = Query.make ~s_minsup:minsup ~t_minsup:minsup ~max_level:1 () in
      ignore
        (check_against_exec ctx service
           (Printf.sprintf "correct under eviction at minsup %g" minsup)
           q
          : Service.answer))
    thresholds;
  let m = Service.metrics service in
  let side_budget = config.Service.cache_budget - (config.Service.cache_budget / 4) in
  Alcotest.(check bool) "evictions happened" true (m.Metrics.evictions > 0);
  Alcotest.(check bool) "side cache within budget" true (m.Metrics.side_bytes <= side_budget);
  Alcotest.(check bool) "answer cache within budget" true
    (m.Metrics.answer_bytes <= config.Service.cache_budget / 4)

let service_condensed_matches_raw () =
  (* twin services over one context, condensation on vs off: every answer
     — cold, answer-cache hit, subsumed, under eviction pressure — must be
     identical pair-for-pair, in order *)
  let ctx = fixture () in
  let mk condense =
    Service.create
      ~config:{ Service.default_config with domains = 1; cache_budget = 4096; condense }
      ctx
  in
  let raw = mk false and cond = mk true in
  Fun.protect ~finally:(fun () ->
      Service.shutdown raw;
      Service.shutdown cond)
  @@ fun () ->
  let tightened =
    Query.make ~s_minsup:0.15 ~t_minsup:0.2
      ~s_constraints:
        [ One_var.Agg_cmp (Agg.Min, price, Cmp.Ge, 30.); One_var.Card_cmp (Cmp.Le, 3) ]
      ~t_constraints:[ One_var.Agg_cmp (Agg.Max, price, Cmp.Le, 50.) ]
      ~two_var:[ Two_var.Set2 (typ, Two_var.Intersect, typ) ]
      ()
  in
  let sweep =
    List.map
      (fun minsup -> Query.make ~s_minsup:minsup ~t_minsup:minsup ~max_level:1 ())
      [ 0.9; 0.5; 0.2; 0.1 ]
  in
  let queries =
    [ broad_query; broad_query; tightened ] @ sweep @ [ broad_query; tightened ]
  in
  let exact_pairs a =
    (* order-sensitive: condensation must not even permute the pairs *)
    pairs_str
      (List.map (fun (s, t) -> (s.Frequent.set, t.Frequent.set)) a.Service.pairs)
  in
  let supports a =
    String.concat ";"
      (List.map
         (fun (s, t) -> Printf.sprintf "%d,%d" s.Frequent.support t.Frequent.support)
         a.Service.pairs)
  in
  List.iteri
    (fun i q ->
      let ar = expect_ok (Service.run raw q) in
      let ac = expect_ok (Service.run cond q) in
      Alcotest.(check string)
        (Printf.sprintf "query %d: identical pairs" i)
        (exact_pairs ar) (exact_pairs ac);
      Alcotest.(check string)
        (Printf.sprintf "query %d: identical supports" i)
        (supports ar) (supports ac))
    queries;
  let m = Service.metrics cond in
  Alcotest.(check bool) "condensed twin priced its inserts" true
    (m.Metrics.cond_raw_bytes > 0);
  Alcotest.(check bool) "stored bytes never exceed raw" true
    (m.Metrics.cond_bytes <= m.Metrics.cond_raw_bytes);
  Alcotest.(check bool) "lookups reconstructed" true (m.Metrics.reconstructions > 0)

(* ------------------------------------------------------------------ *)
(* qcheck: a (possibly cache-served) refinement returns exactly the
   brute-force answer *)

let gen_refinement =
  QCheck2.Gen.(
    let* n_db = Helpers.gen_db in
    let* q1 = Helpers.gen_query in
    let* extra = Helpers.gen_one_var in
    let* bump = int_range 0 10 in
    return (n_db, q1, extra, bump))

let print_refinement ((n, db), q1, extra, bump) =
  Printf.sprintf "%s q1=%s extra=%s bump=%d" (Helpers.print_db (n, db))
    (Query.to_string q1) (One_var.to_string extra) bump

let prop_refinement ((n, db), q1, extra, bump) =
  let info = Helpers.small_info n in
  let ctx = Exec.context db info in
  (* q2 refines q1: threshold no lower, one more S-side atom — the shape
     subsumption reuse targets, though reuse itself is never assumed *)
  let q2 =
    {
      q1 with
      Query.s_minsup = min 1. (q1.Query.s_minsup +. (float_of_int bump /. 100.));
      s_constraints = extra :: q1.Query.s_constraints;
    }
  in
  let service = Service.create ~config:{ Service.default_config with domains = 1 } ctx in
  Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
  let check_one label q =
    let expected =
      Helpers.sorted_pairs (Helpers.brute_answer db ~n ~s_info:info ~t_info:info q)
    in
    match Service.run service q with
    | Error e -> QCheck2.Test.fail_reportf "%s: %s" label (Service.error_to_string e)
    | Ok a ->
        let got = set_pairs a.Service.pairs in
        if got <> expected then
          QCheck2.Test.fail_reportf "%s served %s: got [%s], brute [%s]" label
            (Service.served_from_name a.Service.served_from)
            (pairs_str got) (pairs_str expected);
        (* a query served purely from cache must not have counted anything *)
        (match a.Service.served_from with
        | Service.Answer_cache | Service.Subsumed | Service.Degraded ->
            if a.Service.support_counted <> 0 then
              QCheck2.Test.fail_reportf "%s: cache-served but counted %d" label
                a.Service.support_counted
        | Service.Cold -> ());
        true
  in
  check_one "q1" q1 && check_one "q2 (refinement)" q2

let suite =
  [
    Alcotest.test_case "lru: evicts at budget" `Quick lru_evicts_at_budget;
    Alcotest.test_case "lru: find bumps recency" `Quick lru_find_bumps_recency;
    Alcotest.test_case "lru: oversized entry refused" `Quick lru_oversized_refused;
    Alcotest.test_case "lru: replace updates weight" `Quick lru_replace_updates_weight;
    Alcotest.test_case "lru: fold is mru-first" `Quick lru_fold_mru_first;
    Alcotest.test_case "entail: aggregate and card bounds" `Quick entail_bounds;
    Alcotest.test_case "entail: value-set monotonicity" `Quick entail_value_sets;
    Alcotest.test_case "entail: conjunction subsumption" `Quick entail_conjunction;
    Alcotest.test_case "fingerprint: canonical constraint order" `Quick fingerprint_canonical;
    Alcotest.test_case "fingerprint: physical identity" `Quick fingerprint_physical_identity;
    Alcotest.test_case "service: answer-cache hit" `Quick service_answer_cache_hit;
    Alcotest.test_case "service: subsumption reuse" `Quick service_subsumption_reuse;
    Alcotest.test_case "service: deadline is a clean error" `Quick service_deadline_clean_error;
    Alcotest.test_case "service: eviction at the memory budget" `Quick service_eviction_at_budget;
    Alcotest.test_case "service: condensed cache answers match raw" `Quick
      service_condensed_matches_raw;
    Helpers.qtest ~count:200 "lru: weight stays within budget" gen_lru_ops print_lru_ops
      prop_lru_budget_invariant;
    Helpers.qtest ~count:60 "service: refinement equals brute force" gen_refinement
      print_refinement prop_refinement;
  ]
