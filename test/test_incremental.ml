(* FUP incremental maintenance and parallel counting. *)

open Cfq_itembase
open Cfq_txdb
open Cfq_mining

let unit name f = Alcotest.test_case name `Quick f

let frequent_equal a b =
  Frequent.n_sets a = Frequent.n_sets b
  && Frequent.fold
       (fun acc e -> acc && Frequent.support b e.Frequent.set = Some e.Frequent.support)
       true a

let union_db a b =
  let txs = ref [] in
  for i = Tx_db.size b - 1 downto 0 do
    txs := (Tx_db.get b i).Transaction.items :: !txs
  done;
  for i = Tx_db.size a - 1 downto 0 do
    txs := (Tx_db.get a i).Transaction.items :: !txs
  done;
  Tx_db.create (Array.of_list !txs)

let mine db n frac =
  let io = Io_stats.create () in
  let minsup = Tx_db.absolute_support db frac in
  (Apriori.mine db (Helpers.small_info n) io ~minsup ()).Apriori.frequent

let gen_two_dbs =
  QCheck2.Gen.(
    let* n = Helpers.gen_universe_size in
    let* txs1 = Helpers.gen_db_lists n in
    let* txs2 = list_size (int_range 1 25) (Helpers.gen_tx n) in
    return (n, Helpers.db_of_lists txs1, Helpers.db_of_lists txs2))

let print_two (n, a, b) =
  Printf.sprintf "%s + delta(%d txs)" (Helpers.print_db (n, a)) (Tx_db.size b)

let suite =
  [
    Helpers.qtest ~count:150 "FUP update equals re-mining the union" gen_two_dbs
      print_two (fun (n, old_db, delta) ->
        let frac = 0.2 in
        let old_frequent = mine old_db n frac in
        let io = Io_stats.create () in
        let outcome =
          Incremental.update ~old_db ~old_frequent ~delta io ~minsup_frac:frac
            ~universe_size:n
        in
        frequent_equal outcome.Incremental.frequent (mine (union_db old_db delta) n frac));
    Helpers.qtest ~count:80 "FUP scans the old database at most once" gen_two_dbs
      print_two (fun (n, old_db, delta) ->
        let frac = 0.25 in
        let old_frequent = mine old_db n frac in
        let io = Io_stats.create () in
        let outcome =
          Incremental.update ~old_db ~old_frequent ~delta io ~minsup_frac:frac
            ~universe_size:n
        in
        outcome.Incremental.old_scans <= 1);
    unit "a delta that changes nothing touches only the increment" (fun () ->
        let old_db = Helpers.db_of_lists [ [ 0; 1 ]; [ 0; 1 ]; [ 0; 1 ]; [ 2 ] ] in
        (* the delta repeats an existing frequent pattern: no new candidates *)
        let delta = Helpers.db_of_lists [ [ 0; 1 ] ] in
        let old_frequent = mine old_db 3 0.5 in
        let io = Io_stats.create () in
        let outcome =
          Incremental.update ~old_db ~old_frequent ~delta io ~minsup_frac:0.5
            ~universe_size:3
        in
        Alcotest.(check int) "no old scans" 0 outcome.Incremental.old_scans;
        Alcotest.(check int) "nothing counted against old" 0
          outcome.Incremental.counted_against_old;
        Alcotest.(check (option int)) "updated support" (Some 4)
          (Frequent.support outcome.Incremental.frequent (Itemset.of_list [ 0; 1 ])));
    unit "a delta can promote a new set" (fun () ->
        let old_db = Helpers.db_of_lists [ [ 0 ]; [ 0 ]; [ 1; 2 ]; [ 0 ] ] in
        let delta = Helpers.db_of_lists [ [ 1; 2 ]; [ 1; 2 ]; [ 1; 2 ]; [ 1; 2 ] ] in
        let old_frequent = mine old_db 3 0.5 in
        Alcotest.(check bool) "{1,2} not old-frequent" false
          (Frequent.mem old_frequent (Itemset.of_list [ 1; 2 ]));
        let io = Io_stats.create () in
        let outcome =
          Incremental.update ~old_db ~old_frequent ~delta io ~minsup_frac:0.5
            ~universe_size:3
        in
        Alcotest.(check (option int)) "{1,2} promoted with exact support" (Some 5)
          (Frequent.support outcome.Incremental.frequent (Itemset.of_list [ 1; 2 ])));
    Helpers.qtest ~count:80 "parallel counting equals sequential counting"
      (QCheck2.Gen.pair Helpers.gen_db
         (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 8) (Helpers.gen_itemset 7)))
      (fun ((n, db), cands) ->
        Helpers.print_db (n, db) ^ Printf.sprintf " (%d cands)" (List.length cands))
      (fun ((_, db), cands) ->
        let cands = Array.of_list (List.sort_uniq Itemset.compare cands) in
        let io = Io_stats.create () in
        let seq = Counting.count_level db io (Counters.create ()) cands in
        let par =
          Counting.count_level
            ~par:(Counting.par ~min_rows_per_domain:1 3)
            db io (Counters.create ()) cands
        in
        seq = par);
    unit "parallel counting charges one scan" (fun () ->
        let db = Helpers.db_of_lists [ [ 0; 1 ]; [ 1 ]; [ 0 ] ] in
        let io = Io_stats.create () in
        let _ =
          Counting.count_level
            ~par:(Counting.par ~min_rows_per_domain:1 4)
            db io (Counters.create ())
            [| Itemset.of_list [ 0 ] |]
        in
        Alcotest.(check int) "one scan" 1 (Io_stats.scans io));
  ]
