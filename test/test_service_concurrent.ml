(* Concurrent serving: batches over the worker pool and submissions from
   multiple client domains must produce exactly the sequential answers, and
   the per-query counters must aggregate consistently (each query observes
   its own cost, not a global accumulator). *)

open Cfq_itembase
open Cfq_constr
open Cfq_mining
open Cfq_core
open Cfq_service

let price = Helpers.price
let typ = Helpers.typ

let fixture () =
  let txs =
    List.init 120 (fun i ->
        [ i mod 8; ((i * 3) + 1) mod 8; ((i * 5) + 2) mod 8; ((i * 7) + 3) mod 8 ])
  in
  Exec.context (Helpers.db_of_lists txs) (Helpers.small_info 8)

(* a small session: overlapping refinements plus exact repeats, so the
   concurrent run exercises cold, subsumed and answer-cache paths at once *)
let queries =
  let q ?(s_cs = []) ?(t_cs = []) ?(two = []) s_minsup t_minsup =
    Query.make ~s_minsup ~t_minsup ~s_constraints:s_cs ~t_constraints:t_cs ~two_var:two ()
  in
  let minp k = One_var.Agg_cmp (Agg.Min, price, Cmp.Ge, k) in
  let maxp k = One_var.Agg_cmp (Agg.Max, price, Cmp.Le, k) in
  let join = Two_var.Set2 (typ, Two_var.Intersect, typ) in
  let base =
    [
      q 0.05 0.05;
      q 0.05 0.05 ~s_cs:[ minp 20. ] ~two:[ join ];
      q 0.08 0.05 ~s_cs:[ minp 30. ] ~two:[ join ];
      q 0.08 0.08 ~s_cs:[ minp 30. ] ~t_cs:[ maxp 60. ] ~two:[ join ];
      q 0.1 0.1 ~s_cs:[ minp 40.; One_var.Card_cmp (Cmp.Le, 3) ] ~t_cs:[ maxp 50. ];
      q 0.12 0.12 ~t_cs:[ maxp 40. ] ~two:[ Two_var.Set2 (typ, Two_var.Disjoint, typ) ];
    ]
  in
  base @ base (* exact repeats *)

let set_pairs answer_pairs =
  Helpers.sorted_pairs
    (List.map (fun (s, t) -> (s.Frequent.set, t.Frequent.set)) answer_pairs)

let pairs_str l =
  String.concat "; "
    (List.map (fun (s, t) -> Itemset.to_string s ^ "," ^ Itemset.to_string t) l)

let sequential_reference ctx =
  List.map
    (fun q ->
      let r = Exec.run ~collect_pairs:true ctx q in
      Helpers.sorted_pairs
        (List.map (fun (s, t) -> (s.Frequent.set, t.Frequent.set)) r.Exec.pairs))
    queries

let check_answers label expected results =
  List.iteri
    (fun i (want, got) ->
      match got with
      | Error e ->
          Alcotest.failf "%s: query %d errored: %s" label i (Service.error_to_string e)
      | Ok a ->
          Alcotest.(check string)
            (Printf.sprintf "%s: query %d answers match" label i)
            (pairs_str want)
            (pairs_str (set_pairs a.Service.pairs)))
    (List.combine expected results)

let batch_matches_sequential () =
  let ctx = fixture () in
  let expected = sequential_reference ctx in
  let service = Service.create ~config:{ Service.default_config with domains = 4 } ctx in
  Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
  let results = Service.run_many service queries in
  check_answers "run_many" expected results;
  let m = Service.metrics service in
  Alcotest.(check int) "every query accounted for" (List.length queries) m.Metrics.queries

let counters_are_per_query () =
  let ctx = fixture () in
  let service = Service.create ~config:{ Service.default_config with domains = 4 } ctx in
  Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
  let results = Service.run_many service queries in
  let answers = List.filter_map Result.to_option results in
  Alcotest.(check int) "no errors" (List.length queries) (List.length answers);
  (* the service totals must be exactly the sum of what each answer reports:
     a worker bleeding its cost into another query's counters (or into a
     global) breaks this identity *)
  let sum f = List.fold_left (fun acc a -> acc + f a) 0 answers in
  let m = Service.metrics service in
  Alcotest.(check int) "support counts aggregate"
    (sum (fun a -> a.Service.support_counted))
    m.Metrics.support_counted;
  Alcotest.(check int) "constraint checks aggregate"
    (sum (fun a -> a.Service.constraint_checks))
    m.Metrics.constraint_checks;
  Alcotest.(check int) "scans aggregate" (sum (fun a -> a.Service.scans)) m.Metrics.scans

let multi_domain_submitters () =
  let ctx = fixture () in
  let expected = sequential_reference ctx in
  let service = Service.create ~config:{ Service.default_config with domains = 2 } ctx in
  Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
  let indexed = List.mapi (fun i q -> (i, q)) queries in
  (* three client domains share one service, each submitting a slice *)
  let slice r = List.filter (fun (i, _) -> i mod 3 = r) indexed in
  let workers =
    List.init 3 (fun r ->
        Domain.spawn (fun () ->
            List.map (fun (i, q) -> (i, Service.run service q)) (slice r)))
  in
  let results =
    List.concat_map Domain.join workers
    |> List.sort (fun (i, _) (j, _) -> compare i j)
    |> List.map snd
  in
  check_answers "multi-domain clients" expected results;
  let m = Service.metrics service in
  Alcotest.(check int) "every query accounted for" (List.length queries) m.Metrics.queries;
  Alcotest.(check int) "nothing failed" 0 m.Metrics.failures

let suite =
  [
    Alcotest.test_case "batch equals sequential execution" `Quick batch_matches_sequential;
    Alcotest.test_case "per-query counters aggregate exactly" `Quick counters_are_per_query;
    Alcotest.test_case "submitters from multiple domains" `Quick multi_domain_submitters;
  ]
