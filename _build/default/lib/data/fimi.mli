(** FIMI-format transaction files.

    The standard interchange format of the frequent-itemset-mining
    repository: one transaction per line, items as whitespace-separated
    decimal ids.  Blank lines are ignored; items are deduplicated and
    sorted on read. *)

open Cfq_itembase
open Cfq_txdb

exception Bad_format of string
(** Raised with a ["<file>:<line>: <reason>"] message. *)

(** [read path] loads a transaction database. *)
val read : string -> Tx_db.t

(** [read_string data] parses in-memory content (for tests). *)
val read_string : ?name:string -> string -> Tx_db.t

(** [write path db] writes the database in FIMI format. *)
val write : string -> Tx_db.t -> unit

(** [max_item db] is the largest item id (useful to size an
    {!Item_info.t}); [None] on an empty database. *)
val max_item : Tx_db.t -> Item.t option
