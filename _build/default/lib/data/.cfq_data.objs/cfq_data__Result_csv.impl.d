lib/data/result_csv.ml: Cfq_itembase Cfq_mining Cfq_rules Frequent Itemset List Printf String
