lib/data/fimi.ml: Array Cfq_itembase Cfq_txdb Format Itemset List Printf String Transaction Tx_db
