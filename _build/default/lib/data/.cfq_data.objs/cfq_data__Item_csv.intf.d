lib/data/item_csv.mli: Cfq_itembase Item_info
