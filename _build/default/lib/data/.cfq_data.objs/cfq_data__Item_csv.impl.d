lib/data/item_csv.ml: Array Attr Cfq_itembase Format Item_info List Printf String
