lib/data/fimi.mli: Cfq_itembase Cfq_txdb Item Tx_db
