lib/data/result_csv.mli: Cfq_mining Cfq_rules Frequent
