open Cfq_itembase
open Cfq_txdb

exception Bad_format of string

let fail name line fmt =
  Format.kasprintf (fun s -> raise (Bad_format (Printf.sprintf "%s:%d: %s" name line s))) fmt

let parse_line name lineno line =
  let fields =
    String.split_on_char ' ' line
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun s -> s <> "")
  in
  let items =
    List.map
      (fun tok ->
        match int_of_string_opt tok with
        | Some i when i >= 0 -> i
        | Some _ -> fail name lineno "negative item id %S" tok
        | None -> fail name lineno "not an item id: %S" tok)
      fields
  in
  Itemset.of_list items

let read_lines name lines =
  let txs = ref [] in
  List.iteri
    (fun i line ->
      let line = String.trim line in
      if line <> "" then txs := parse_line name (i + 1) line :: !txs)
    lines;
  Tx_db.create (Array.of_list (List.rev !txs))

let read_string ?(name = "<string>") data = read_lines name (String.split_on_char '\n' data)

let read path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     let rec loop () =
       lines := input_line ic :: !lines;
       loop ()
     in
     loop ()
   with End_of_file -> close_in ic);
  read_lines path (List.rev !lines)

let write path db =
  let oc = open_out path in
  (try
     for tid = 0 to Tx_db.size db - 1 do
       let items = (Tx_db.get db tid).Transaction.items in
       let first = ref true in
       Itemset.iter
         (fun i ->
           if !first then first := false else output_char oc ' ';
           output_string oc (string_of_int i))
         items;
       output_char oc '\n'
     done
   with e ->
     close_out oc;
     raise e);
  close_out oc

let max_item db =
  let best = ref None in
  for tid = 0 to Tx_db.size db - 1 do
    match Itemset.max_item (Tx_db.get db tid).Transaction.items with
    | Some m -> (
        match !best with
        | Some b when b >= m -> ()
        | Some _ | None -> best := Some m)
    | None -> ()
  done;
  !best
