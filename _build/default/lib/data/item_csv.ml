open Cfq_itembase

exception Bad_format of string

let fail name line fmt =
  Format.kasprintf (fun s -> raise (Bad_format (Printf.sprintf "%s:%d: %s" name line s))) fmt

let split_csv line = String.split_on_char ',' line |> List.map String.trim

let attr_of_header h =
  match String.index_opt h ':' with
  | Some i when String.sub h (i + 1) (String.length h - i - 1) = "cat" ->
      Attr.make (String.sub h 0 i) Attr.Categorical
  | Some _ | None -> Attr.make h Attr.Numeric

let read_lines name lines ~universe_size =
  match List.filter (fun l -> String.trim l <> "") lines with
  | [] -> raise (Bad_format (name ^ ":1: empty file"))
  | header :: rows ->
      let attrs =
        match split_csv header with
        | _item :: rest when rest <> [] -> List.map attr_of_header rest
        | _ -> fail name 1 "header must be: item,<attr>[,<attr>...]"
      in
      let columns = List.map (fun _ -> Array.make universe_size 0.) attrs in
      List.iteri
        (fun i row ->
          let lineno = i + 2 in
          match split_csv row with
          | item :: values -> (
              match int_of_string_opt item with
              | Some id when id >= 0 && id < universe_size ->
                  if List.length values <> List.length attrs then
                    fail name lineno "expected %d values" (List.length attrs);
                  List.iter2
                    (fun col v ->
                      match float_of_string_opt v with
                      | Some f -> col.(id) <- f
                      | None -> fail name lineno "not a number: %S" v)
                    columns values
              | Some id -> fail name lineno "item %d outside universe [0,%d)" id universe_size
              | None -> fail name lineno "not an item id: %S" item)
          | [] -> ())
        rows;
      let info = Item_info.create ~universe_size in
      List.iter2 (fun attr col -> Item_info.add_column info attr col) attrs columns;
      info

let read_string ?(name = "<string>") data ~universe_size =
  read_lines name (String.split_on_char '\n' data) ~universe_size

let read path ~universe_size =
  let ic = open_in path in
  let lines = ref [] in
  (try
     let rec loop () =
       lines := input_line ic :: !lines;
       loop ()
     in
     loop ()
   with End_of_file -> close_in ic);
  read_lines path (List.rev !lines) ~universe_size

let write path info =
  let attrs = Item_info.attrs info in
  let oc = open_out path in
  (try
     output_string oc "item";
     List.iter
       (fun a ->
         output_char oc ',';
         output_string oc a.Attr.name;
         if a.Attr.kind = Attr.Categorical then output_string oc ":cat")
       attrs;
     output_char oc '\n';
     for i = 0 to Item_info.universe_size info - 1 do
       output_string oc (string_of_int i);
       List.iter
         (fun a -> Printf.fprintf oc ",%g" (Item_info.value info a i))
         attrs;
       output_char oc '\n'
     done
   with e ->
     close_out oc;
     raise e);
  close_out oc
