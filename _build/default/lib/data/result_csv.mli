(** CSV export of mining results: frequent sets, answer pairs, rules. *)

open Cfq_mining

(** [write_frequent path f] — columns [size,support,items], items as a
    ['|']-separated id list. *)
val write_frequent : string -> Frequent.t -> unit

(** [write_pairs path pairs] — columns [s_items,s_support,t_items,t_support]. *)
val write_pairs : string -> (Frequent.entry * Frequent.entry) list -> unit

(** [write_rules path rules] — columns
    [antecedent,consequent,support,confidence,lift,leverage,conviction]. *)
val write_rules : string -> Cfq_rules.Rule.t list -> unit
