open Cfq_itembase
open Cfq_mining

let items_cell set =
  String.concat "|" (List.map string_of_int (Itemset.to_list set))

let with_out path f =
  let oc = open_out path in
  (try f oc
   with e ->
     close_out oc;
     raise e);
  close_out oc

let write_frequent path frequent =
  with_out path (fun oc ->
      output_string oc "size,support,items\n";
      Frequent.iter
        (fun e ->
          Printf.fprintf oc "%d,%d,%s\n" (Itemset.cardinal e.Frequent.set)
            e.Frequent.support (items_cell e.Frequent.set))
        frequent)

let write_pairs path pairs =
  with_out path (fun oc ->
      output_string oc "s_items,s_support,t_items,t_support\n";
      List.iter
        (fun (s, t) ->
          Printf.fprintf oc "%s,%d,%s,%d\n" (items_cell s.Frequent.set)
            s.Frequent.support (items_cell t.Frequent.set) t.Frequent.support)
        pairs)

let write_rules path rules =
  with_out path (fun oc ->
      output_string oc "antecedent,consequent,support,confidence,lift,leverage,conviction\n";
      List.iter
        (fun r ->
          let m = r.Cfq_rules.Rule.metric in
          Printf.fprintf oc "%s,%s,%g,%g,%g,%g,%g\n"
            (items_cell r.Cfq_rules.Rule.antecedent)
            (items_cell r.Cfq_rules.Rule.consequent)
            m.Cfq_rules.Metric.support m.Cfq_rules.Metric.confidence
            m.Cfq_rules.Metric.lift m.Cfq_rules.Metric.leverage
            m.Cfq_rules.Metric.conviction)
        rules)
