(** CSV-backed [itemInfo] tables.

    Format: a header line naming the columns, first column the item id,
    remaining columns attributes.  A column is categorical if its header
    ends in [":cat"], numeric otherwise:

    {v
    item,Price,Type:cat
    0,12.5,3
    1,99,1
    v}

    Missing items default to value 0 for every attribute. *)

open Cfq_itembase

exception Bad_format of string

(** [read path ~universe_size] loads the table. *)
val read : string -> universe_size:int -> Item_info.t

val read_string : ?name:string -> string -> universe_size:int -> Item_info.t

(** [write path info] dumps all registered attributes. *)
val write : string -> Item_info.t -> unit
