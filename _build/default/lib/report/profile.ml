open Cfq_mining

type t = {
  n_sets : int;
  max_size : int;
  per_level : (int * int) list;
  support_min : int;
  support_median : int;
  support_max : int;
  n_maximal : int;
  n_closed : int;
}

let of_frequent f =
  let n_sets = Frequent.n_sets f in
  if n_sets = 0 then
    {
      n_sets = 0;
      max_size = 0;
      per_level = [];
      support_min = 0;
      support_median = 0;
      support_max = 0;
      n_maximal = 0;
      n_closed = 0;
    }
  else begin
    let max_size = Frequent.max_level f in
    let per_level =
      List.init max_size (fun i -> (i + 1, Array.length (Frequent.level f (i + 1))))
      |> List.filter (fun (_, n) -> n > 0)
    in
    let supports =
      Frequent.fold (fun acc e -> e.Frequent.support :: acc) [] f
      |> List.sort Int.compare |> Array.of_list
    in
    {
      n_sets;
      max_size;
      per_level;
      support_min = supports.(0);
      support_median = supports.(Array.length supports / 2);
      support_max = supports.(Array.length supports - 1);
      n_maximal = List.length (Frequent.maximal f);
      n_closed = List.length (Frequent.closed f);
    }
  end

let pp ppf t =
  Format.fprintf ppf "@[<v>%d frequent sets, largest of size %d" t.n_sets t.max_size;
  if t.per_level <> [] then begin
    Format.fprintf ppf "@,per level:";
    List.iter (fun (k, n) -> Format.fprintf ppf " L%d=%d" k n) t.per_level
  end;
  if t.n_sets > 0 then begin
    Format.fprintf ppf "@,support min/median/max: %d/%d/%d" t.support_min
      t.support_median t.support_max;
    Format.fprintf ppf "@,maximal: %d, closed: %d" t.n_maximal t.n_closed
  end;
  Format.fprintf ppf "@]"
