lib/report/cost_model.ml: Cfq_core Cfq_txdb Io_stats
