lib/report/profile.ml: Array Cfq_mining Format Frequent Int List
