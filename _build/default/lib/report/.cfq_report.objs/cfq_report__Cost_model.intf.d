lib/report/cost_model.mli: Cfq_core Cfq_txdb Io_stats
