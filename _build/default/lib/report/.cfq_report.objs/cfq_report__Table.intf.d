lib/report/table.mli:
