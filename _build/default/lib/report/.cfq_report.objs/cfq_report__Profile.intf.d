lib/report/profile.mli: Cfq_mining Format Frequent
