(** The paper's cost metric: total CPU + I/O time.

    CPU is measured; I/O is simulated from the paged store's scan counts
    (the experiments ran on a SPARC-10 against a disk, so I/O was real
    there; here the database is in memory and the page model supplies the
    would-be I/O volume). *)

open Cfq_txdb

type t = {
  seconds_per_page : float;
      (** simulated sequential-read cost per 4 KB page (default 100 µs,
          ~40 MB/s — a late-90s disk) *)
}

val default : t

val make : ?seconds_per_page:float -> unit -> t

(** [io_seconds t io] is the simulated I/O time of the recorded scans. *)
val io_seconds : t -> Io_stats.t -> float

(** [total t ~cpu io] = cpu + simulated I/O. *)
val total : t -> cpu:float -> Io_stats.t -> float

(** [cost_of_result t r] applies {!total} to an execution result (mining
    and pair phases). *)
val cost_of_result : t -> Cfq_core.Exec.result -> float

(** [mining_cost t r] is the step-1 cost only — lattice computation CPU plus
    I/O.  This is what the paper's speedups measure (Section 6.2: "we only
    focus on the performance of the first step"). *)
val mining_cost : t -> Cfq_core.Exec.result -> float

(** [speedup t ~baseline ~optimized] is the cost ratio
    [cost baseline / cost optimized]. *)
val speedup : t -> baseline:Cfq_core.Exec.result -> optimized:Cfq_core.Exec.result -> float
