(** Minimal ASCII table rendering for the benchmark harness. *)

type t

(** [create headers] starts a table. *)
val create : string list -> t

val add_row : t -> string list -> unit

(** Render with column widths fitted to content. *)
val render : t -> string

val print : t -> unit

(** Convenience cell formatters. *)
val fcell : float -> string

val speedup_cell : float -> string
