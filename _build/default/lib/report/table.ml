type t = {
  headers : string list;
  mutable rows : string list list;  (* reversed *)
}

let create headers = { headers; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then invalid_arg "Table.add_row: arity";
  t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let n = List.length t.headers in
  let widths = Array.make n 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let buf = Buffer.create 256 in
  let line ch =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) ch);
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let row cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i cell ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' ');
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  line '-';
  row t.headers;
  line '=';
  List.iter row rows;
  line '-';
  Buffer.contents buf

let print t = print_string (render t)

let fcell f = Printf.sprintf "%.2f" f
let speedup_cell f = Printf.sprintf "%.2fx" f
