(** Summaries of a mined frequent-set collection, for reports and the
    interactive shell. *)

open Cfq_mining

type t = {
  n_sets : int;
  max_size : int;
  per_level : (int * int) list;  (** (size, count) for each non-empty level *)
  support_min : int;
  support_median : int;
  support_max : int;
  n_maximal : int;
  n_closed : int;
}

(** [of_frequent f]; all-zero profile for an empty collection. *)
val of_frequent : Frequent.t -> t

val pp : Format.formatter -> t -> unit
