open Cfq_txdb

type t = { seconds_per_page : float }

let make ?(seconds_per_page = 1e-4) () =
  if seconds_per_page < 0. then invalid_arg "Cost_model.make";
  { seconds_per_page }

let default = make ()

let io_seconds t io = t.seconds_per_page *. float_of_int (Io_stats.pages_read io)
let total t ~cpu io = cpu +. io_seconds t io

let cost_of_result t (r : Cfq_core.Exec.result) =
  total t ~cpu:(r.Cfq_core.Exec.mining_seconds +. r.Cfq_core.Exec.pair_seconds)
    r.Cfq_core.Exec.io

let mining_cost t (r : Cfq_core.Exec.result) =
  total t ~cpu:r.Cfq_core.Exec.mining_seconds r.Cfq_core.Exec.io

let speedup t ~baseline ~optimized =
  let b = cost_of_result t baseline in
  let o = cost_of_result t optimized in
  if o <= 0. then infinity else b /. o
