open Cfq_itembase
open Cfq_constr

exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Lexer *)

type token =
  | IDENT of string
  | NUMBER of float
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | DOT
  | COMMA
  | AMP
  | BAR
  | CMP of Cmp.t

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let is_digit c = c >= '0' && c <= '9'

let lex text =
  let n = String.length text in
  let tokens = ref [] in
  let push t = tokens := t :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = text.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '(' then (push LPAREN; incr i)
    else if c = ')' then (push RPAREN; incr i)
    else if c = '{' then (push LBRACE; incr i)
    else if c = '}' then (push RBRACE; incr i)
    else if c = '.' && not (!i + 1 < n && is_digit text.[!i + 1]) then (push DOT; incr i)
    else if c = ',' then (push COMMA; incr i)
    else if c = '&' then (push AMP; incr i)
    else if c = '|' then (push BAR; incr i)
    else if c = '<' || c = '>' || c = '=' || c = '!' then begin
      let two = if !i + 1 < n then String.sub text !i 2 else "" in
      match Cmp.of_string two with
      | Some op ->
          push (CMP op);
          i := !i + 2
      | None -> (
          match Cmp.of_string (String.make 1 c) with
          | Some op ->
              push (CMP op);
              incr i
          | None -> fail "unexpected character %C" c)
    end
    else if is_digit c || c = '-' || (c = '.' && !i + 1 < n && is_digit text.[!i + 1])
    then begin
      let start = !i in
      if text.[!i] = '-' then incr i;
      while !i < n && (is_digit text.[!i] || text.[!i] = '.') do
        incr i
      done;
      let s = String.sub text start (!i - start) in
      match float_of_string_opt s with
      | Some f -> push (NUMBER f)
      | None -> fail "bad number %S" s
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char text.[!i] do
        incr i
      done;
      push (IDENT (String.sub text start (!i - start)))
    end
    else fail "unexpected character %C" c
  done;
  Array.of_list (List.rev !tokens)

(* ------------------------------------------------------------------ *)
(* Parser state *)

type state = {
  toks : token array;
  mutable pos : int;
}

let peek st = if st.pos < Array.length st.toks then Some st.toks.(st.pos) else None
let advance st = st.pos <- st.pos + 1

let expect st tok what =
  match peek st with
  | Some t when t = tok -> advance st
  | _ -> fail "expected %s" what

let ident st =
  match peek st with
  | Some (IDENT s) ->
      advance st;
      s
  | _ -> fail "expected identifier"

let number st =
  match peek st with
  | Some (NUMBER f) ->
      advance st;
      f
  | _ -> fail "expected number"

let cmp st =
  match peek st with
  | Some (CMP op) ->
      advance st;
      op
  | _ -> fail "expected comparison operator"

type var = S | T

let var_of_string = function
  | "S" | "s" -> Some S
  | "T" | "t" -> Some T
  | _ -> None

let attr name = Attr.make name Attr.Numeric

(* parsed atoms accumulate here *)
type acc = {
  mutable s_minsup : float;
  mutable t_minsup : float;
  mutable s_cs : One_var.t list;
  mutable t_cs : One_var.t list;
  mutable two : Two_var.t list;
}

let add_one acc v c =
  match v with
  | S -> acc.s_cs <- c :: acc.s_cs
  | T -> acc.t_cs <- c :: acc.t_cs

let add_two acc v c =
  (* normalise to S on the left *)
  acc.two <- (match v with S -> c | T -> Two_var.swap c) :: acc.two

let setop_of_keyword = function
  | "subset" -> Some Two_var.Subset
  | "superset" -> Some Two_var.Superset
  | "not_subset" -> Some Two_var.Not_subset
  | "not_superset" -> Some Two_var.Not_superset
  | "disjoint" -> Some Two_var.Disjoint
  | "intersects" -> Some Two_var.Intersect
  | _ -> None

let setop_of_cmp = function
  | Cmp.Eq -> Some Two_var.Set_eq
  | Cmp.Ne -> Some Two_var.Set_ne
  | Cmp.Le | Cmp.Lt | Cmp.Ge | Cmp.Gt -> None

let one_var_of_setop a op vs =
  match op with
  | Two_var.Subset -> One_var.Dom_subset (a, vs)
  | Two_var.Superset -> One_var.Dom_superset (a, vs)
  | Two_var.Disjoint -> One_var.Dom_disjoint (a, vs)
  | Two_var.Intersect -> One_var.Dom_intersect (a, vs)
  | Two_var.Set_eq -> One_var.Dom_subset (a, vs)  (* = handled by caller as ⊆ ∧ ⊇ *)
  | Two_var.Not_subset | Two_var.Not_superset | Two_var.Set_ne ->
      fail "negated set comparison with a constant set is not supported"

let value_set st =
  expect st LBRACE "'{'";
  let rec loop acc =
    let v = number st in
    match peek st with
    | Some COMMA ->
        advance st;
        loop (v :: acc)
    | Some RBRACE ->
        advance st;
        v :: acc
    | _ -> fail "expected ',' or '}' in value set"
  in
  Value_set.of_list (loop [])

(* [V.A] already consumed up to the variable; parse ".Attr" *)
let dotted_attr st =
  expect st DOT "'.'";
  attr (ident st)

(* agg '(' V '.' A ')' *)
let agg_operand st agg_name =
  match Agg.of_string agg_name with
  | None -> fail "unknown aggregate %S" agg_name
  | Some agg ->
      expect st LPAREN "'('";
      let v =
        match var_of_string (ident st) with
        | Some v -> v
        | None -> fail "expected S or T inside %s(...)" agg_name
      in
      let a = dotted_attr st in
      expect st RPAREN "')'";
      (agg, v, a)

let freq_atom st acc =
  expect st LPAREN "'('";
  let v =
    match var_of_string (ident st) with
    | Some v -> v
    | None -> fail "expected S or T inside freq(...)"
  in
  expect st RPAREN "')'";
  match peek st with
  | Some (CMP (Cmp.Ge | Cmp.Gt)) ->
      advance st;
      let f = number st in
      (match v with S -> acc.s_minsup <- f | T -> acc.t_minsup <- f)
  | _ -> ()

let card_atom st acc =
  (* '|' V '|' cmp n *)
  let v =
    match var_of_string (ident st) with
    | Some v -> v
    | None -> fail "expected S or T inside |...|"
  in
  expect st BAR "'|'";
  let op = cmp st in
  let n = number st in
  add_one acc v (One_var.Card_cmp (op, int_of_float n))

let agg_atom st acc agg_name =
  let agg1, v1, a1 = agg_operand st agg_name in
  let op = cmp st in
  match peek st with
  | Some (NUMBER _) -> add_one acc v1 (One_var.Agg_cmp (agg1, a1, op, number st))
  | Some (IDENT agg2_name) when Agg.of_string agg2_name <> None ->
      advance st;
      let agg2, v2, a2 = agg_operand st agg2_name in
      if v1 = v2 then fail "aggregate comparison with twice the same variable"
      else add_two acc v1 (Two_var.Agg2 (agg1, a1, op, agg2, a2))
  | _ -> fail "expected number or aggregate after comparison"

let dom_atom st acc v1 =
  let a1 = dotted_attr st in
  let continue_with_setop op =
    match peek st with
    | Some LBRACE ->
        (* constant value set *)
        let vs = value_set st in
        if op = Two_var.Set_eq then begin
          add_one acc v1 (One_var.Dom_subset (a1, vs));
          add_one acc v1 (One_var.Dom_superset (a1, vs))
        end
        else add_one acc v1 (one_var_of_setop a1 op vs)
    | Some (IDENT name) when var_of_string name <> None -> (
        advance st;
        match var_of_string name with
        | Some v2 when v2 <> v1 ->
            let a2 = dotted_attr st in
            add_two acc v1 (Two_var.Set2 (a1, op, a2))
        | Some _ -> fail "set comparison with twice the same variable"
        | None -> assert false)
    | _ -> fail "expected '{' or variable after set operator"
  in
  match peek st with
  | Some (IDENT kw) when setop_of_keyword kw <> None ->
      advance st;
      continue_with_setop (Option.get (setop_of_keyword kw))
  | Some (CMP op) -> (
      advance st;
      match peek st with
      | Some (NUMBER _) -> (
          let c = number st in
          (* domain shorthand *)
          match op with
          | Cmp.Ge | Cmp.Gt -> add_one acc v1 (One_var.Agg_cmp (Agg.Min, a1, op, c))
          | Cmp.Le | Cmp.Lt -> add_one acc v1 (One_var.Agg_cmp (Agg.Max, a1, op, c))
          | Cmp.Eq ->
              let vs = Value_set.singleton c in
              add_one acc v1 (One_var.Dom_subset (a1, vs));
              add_one acc v1 (One_var.Dom_superset (a1, vs))
          | Cmp.Ne -> add_one acc v1 (One_var.Dom_disjoint (a1, Value_set.singleton c)))
      | _ -> (
          match setop_of_cmp op with
          | Some setop -> continue_with_setop setop
          | None -> fail "ordering comparison between value sets is not supported"))
  | _ -> fail "expected set operator or comparison after %s.%s"
           (match v1 with S -> "S" | T -> "T")
           a1.Attr.name

(* [v in S.A]: value membership, i.e. Dom_superset with a singleton *)
let membership_atom st acc v =
  match peek st with
  | Some (IDENT "in") -> (
      advance st;
      match peek st with
      | Some (IDENT name) when var_of_string name <> None ->
          advance st;
          let var = Option.get (var_of_string name) in
          let a = dotted_attr st in
          add_one acc var (One_var.Dom_superset (a, Value_set.singleton v))
      | _ -> fail "expected S or T after 'in'")
  | _ -> fail "expected 'in' after a leading value"

let atom st acc =
  match peek st with
  | Some BAR ->
      advance st;
      card_atom st acc
  | Some (NUMBER v) ->
      advance st;
      membership_atom st acc v
  | Some (IDENT "freq") ->
      advance st;
      freq_atom st acc
  | Some (IDENT name) when Agg.of_string name <> None ->
      advance st;
      agg_atom st acc name
  | Some (IDENT name) -> (
      advance st;
      match var_of_string name with
      | Some v -> dom_atom st acc v
      | None -> fail "unknown atom starting with %S" name)
  | _ -> fail "expected an atom"

let parse ?(defaults = Query.make ()) text =
  let st = { toks = lex text; pos = 0 } in
  let acc =
    {
      s_minsup = defaults.Query.s_minsup;
      t_minsup = defaults.Query.t_minsup;
      s_cs = List.rev defaults.Query.s_constraints;
      t_cs = List.rev defaults.Query.t_constraints;
      two = List.rev defaults.Query.two_var;
    }
  in
  (* optional {(S,T) | ...} wrapper *)
  (match (peek st, st.pos + 6 <= Array.length st.toks) with
  | Some LBRACE, true -> begin
      match
        ( st.toks.(st.pos + 1),
          st.toks.(st.pos + 2),
          st.toks.(st.pos + 3),
          st.toks.(st.pos + 4),
          st.toks.(st.pos + 5) )
      with
      | LPAREN, IDENT sv, COMMA, IDENT tv, RPAREN
        when var_of_string sv = Some S && var_of_string tv = Some T ->
          st.pos <- st.pos + 6;
          expect st BAR "'|'"
      | _ -> ()
    end
  | _ -> ());
  let rec atoms () =
    atom st acc;
    match peek st with
    | Some AMP ->
        advance st;
        atoms ()
    | _ -> ()
  in
  atoms ();
  (match peek st with
  | Some RBRACE -> advance st
  | _ -> ());
  (match peek st with
  | None -> ()
  | Some _ -> fail "trailing input after query");
  Query.make ~s_minsup:acc.s_minsup ~t_minsup:acc.t_minsup
    ~s_constraints:(List.rev acc.s_cs) ~t_constraints:(List.rev acc.t_cs)
    ~two_var:(List.rev acc.two)
    ?max_level:defaults.Query.max_level ()

let parse_result ?defaults text =
  match parse ?defaults text with
  | q -> Ok q
  | exception Parse_error msg -> Error msg
