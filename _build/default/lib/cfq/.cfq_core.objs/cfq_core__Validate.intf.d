lib/cfq/validate.mli: Cfq_itembase Format Item_info Query
