lib/cfq/parser.mli: Query
