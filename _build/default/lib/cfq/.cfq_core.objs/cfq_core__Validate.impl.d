lib/cfq/validate.ml: Agg Attr Cfq_constr Cfq_itembase Format Item_info List One_var Printf Query Two_var
