lib/cfq/query.ml: Cfq_constr Format List One_var Two_var
