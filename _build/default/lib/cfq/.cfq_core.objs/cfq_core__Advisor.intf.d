lib/cfq/advisor.mli: Cfq_txdb Exec Format Io_stats Plan Query
