lib/cfq/exec.mli: Cfq_itembase Cfq_mining Cfq_txdb Counters Frequent Io_stats Item_info Level_stats Pairs Plan Query Tx_db
