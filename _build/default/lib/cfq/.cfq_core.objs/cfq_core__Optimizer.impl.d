lib/cfq/optimizer.ml: Agg Cfq_constr Classify Cmp Induce List One_var Plan Query Two_var
