lib/cfq/plan.mli: Cfq_constr Format Two_var
