lib/cfq/plan.ml: Cfq_constr Format List Two_var
