lib/cfq/explain.ml: Array Cfq_mining Cfq_txdb Counters Exec Format Frequent Io_stats Level_stats List Pairs Plan Query
