lib/cfq/explain.mli: Exec Format Plan Query
