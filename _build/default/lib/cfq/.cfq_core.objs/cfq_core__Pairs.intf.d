lib/cfq/pairs.mli: Cfq_constr Cfq_itembase Cfq_mining Frequent Item_info Two_var
