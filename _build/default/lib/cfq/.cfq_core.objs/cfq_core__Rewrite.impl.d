lib/cfq/rewrite.ml: Agg Attr Cfq_constr Cfq_itembase Cmp Format List One_var Printf Query Value_set
