lib/cfq/rewrite.mli: Query
