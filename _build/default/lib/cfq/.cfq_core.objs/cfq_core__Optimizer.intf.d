lib/cfq/optimizer.mli: Plan Query
