lib/cfq/query.mli: Cfq_constr Format One_var Two_var
