lib/cfq/advisor.ml: Array Bundle Cfq_constr Cfq_itembase Cfq_txdb Exec Format Io_stats Item_info Itemset List Optimizer Option Plan Printf Query Reduce Tx_db
