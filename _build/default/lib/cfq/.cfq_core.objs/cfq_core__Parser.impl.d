lib/cfq/parser.ml: Agg Array Attr Cfq_constr Cfq_itembase Cmp Format List One_var Option Query String Two_var Value_set
