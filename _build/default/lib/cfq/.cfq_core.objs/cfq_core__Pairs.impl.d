lib/cfq/pairs.ml: Agg Array Cfq_constr Cfq_itembase Cfq_mining Cmp Float Frequent Hashtbl List Option Printf Seq String Two_var
