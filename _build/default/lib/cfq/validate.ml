open Cfq_itembase
open Cfq_constr

type error = {
  where : string;
  reason : string;
}

let pp_error ppf e = Format.fprintf ppf "%s: %s" e.where e.reason

let resolve info attr =
  if Attr.is_self attr then Some Attr.self else Item_info.find_attr info attr.Attr.name

let check_attr info ~where ~numeric attr errors =
  match resolve info attr with
  | None ->
      { where; reason = Printf.sprintf "unknown attribute %S" attr.Attr.name } :: errors
  | Some resolved ->
      (* item ids are ordered integers: aggregating the Item pseudo-attribute
         is meaningful even though it is nominally categorical *)
      if numeric && resolved.Attr.kind <> Attr.Numeric && not (Attr.is_self resolved) then
        {
          where;
          reason =
            Printf.sprintf "attribute %S is categorical; min/max/sum/avg need a numeric attribute"
              attr.Attr.name;
        }
        :: errors
      else errors

let numeric_agg = function
  | Agg.Min | Agg.Max | Agg.Sum | Agg.Avg -> true
  | Agg.Count -> false

let check_one_var info var c errors =
  let where = Format.asprintf "%a" (One_var.pp_with_var var) c in
  match c with
  | One_var.Dom_subset (a, _)
  | One_var.Dom_superset (a, _)
  | One_var.Dom_disjoint (a, _)
  | One_var.Dom_intersect (a, _)
  | One_var.Dom_not_superset (a, _) ->
      check_attr info ~where ~numeric:false a errors
  | One_var.Agg_cmp (agg, a, _, _) ->
      check_attr info ~where ~numeric:(numeric_agg agg) a errors
  | One_var.Card_cmp _ | One_var.Nonempty -> errors

let kind_of info attr =
  match resolve info attr with
  | Some a -> Some a.Attr.kind
  | None -> None

let check_two_var s_info t_info c errors =
  let where = Two_var.to_string c in
  match c with
  | Two_var.Set2 (a, _, b) -> (
      let errors = check_attr s_info ~where ~numeric:false a errors in
      let errors = check_attr t_info ~where ~numeric:false b errors in
      match (kind_of s_info a, kind_of t_info b) with
      | Some ka, Some kb when ka <> kb ->
          {
            where;
            reason =
              Printf.sprintf "attributes %S and %S have different kinds" a.Attr.name
                b.Attr.name;
          }
          :: errors
      | Some _, Some _ | None, _ | _, None -> errors)
  | Two_var.Agg2 (agg1, a, _, agg2, b) ->
      errors
      |> check_attr s_info ~where ~numeric:(numeric_agg agg1) a
      |> check_attr t_info ~where ~numeric:(numeric_agg agg2) b

let check ~s_info ~t_info (q : Query.t) =
  let errors = [] in
  let errors =
    List.fold_left (fun acc c -> check_one_var s_info "S" c acc) errors q.Query.s_constraints
  in
  let errors =
    List.fold_left (fun acc c -> check_one_var t_info "T" c acc) errors q.Query.t_constraints
  in
  let errors =
    List.fold_left (fun acc c -> check_two_var s_info t_info c acc) errors q.Query.two_var
  in
  match errors with [] -> Ok () | es -> Error (List.rev es)
