(** Textual syntax for CFQs.

    Example queries:

    {v
    {(S, T) | freq(S) >= 0.01 & freq(T) >= 0.01 &
              sum(S.Price) <= 100 & avg(T.Price) >= 200}
    {(S, T) | max(S.Price) <= min(T.Price)}
    {(S, T) | S.Type = {2} & T.Type = {5} & S.Type disjoint T.Type}
    {(S, T) | count(S.Type) = 1 & S.Type != T.Type}
    v}

    Grammar (informally): a query is an optional [{(S,T) | ... }] wrapper
    around a ['&']-separated conjunction of atoms.  Atoms are:

    {ul
    {- [freq(S) >= f] / [freq(T) >= f] — support thresholds;}
    {- [agg(V.A) cmp x] with [agg ∈ min,max,sum,avg,count] and [x] a number
       or another [agg(V'.A')] (2-var when [V' ≠ V]);}
    {- [V.A cmp c] — domain shorthand: [S.Price >= 400] abbreviates
       [min(S.Price) >= 400], [S.Price <= 400] abbreviates
       [max(S.Price) <= 400], and [S.A = c] abbreviates [S.A = {c}];}
    {- [V.A setop {v1, ...}] with [setop ∈ subset, superset, disjoint,
       intersects, =, !=] — 1-var domain constraints;}
    {- [V.A setop V'.A'] — 2-var domain constraints;}
    {- [|V| cmp n] — cardinality.}}

    All 2-var atoms are normalised so that [S] appears on the left. *)

exception Parse_error of string

(** [parse ?defaults text] parses a query, starting from [defaults]
    (default thresholds 1%) and adding every parsed atom. *)
val parse : ?defaults:Query.t -> string -> Query.t

(** [parse_result] is [parse] wrapped in a [result]. *)
val parse_result : ?defaults:Query.t -> string -> (Query.t, string) result
