(** Constrained frequent set queries.

    A CFQ is a query [{(S, T) | C}] over two set variables: its answer is
    the set of pairs of frequent itemsets [(S0, T0)] jointly satisfying the
    constraint conjunction [C] (Section 1 of the paper).  [C] splits into
    per-variable frequency thresholds, 1-var constraints on each side, and
    2-var constraints binding the sides together. *)

open Cfq_constr

type t = {
  s_minsup : float;  (** relative support threshold for [S], in [0, 1] *)
  t_minsup : float;
  s_constraints : One_var.t list;
  t_constraints : One_var.t list;
  two_var : Two_var.t list;
  max_level : int option;  (** optional lattice depth cap *)
}

(** [make ()] with defaults: both thresholds 1%, no constraints. *)
val make :
  ?s_minsup:float ->
  ?t_minsup:float ->
  ?s_constraints:One_var.t list ->
  ?t_constraints:One_var.t list ->
  ?two_var:Two_var.t list ->
  ?max_level:int ->
  unit ->
  t

(** Number of constraints of each kind, for reporting. *)
val n_constraints : t -> int * int * int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
