(** Static validation of a CFQ against the attribute schema.

    Executed before mining so that a typo'd attribute or a meaningless
    aggregation fails with a message instead of an exception mid-run:

    {ul
    {- every referenced attribute must exist in the corresponding side's
       {!Cfq_itembase.Item_info} (or be the [Item] pseudo-attribute);}
    {- [min]/[max]/[sum]/[avg] require numeric attributes; [count] and
       domain (set) constraints accept either kind;}
    {- 2-var set comparisons require both attributes to have the same
       kind.}} *)

open Cfq_itembase

type error = {
  where : string;  (** e.g. ["S constraint sum(S.Price) <= 100"] *)
  reason : string;
}

val pp_error : Format.formatter -> error -> unit

(** [check ~s_info ~t_info q] is [Ok ()] or the list of all problems. *)
val check : s_info:Item_info.t -> t_info:Item_info.t -> Query.t -> (unit, error list) result
