open Cfq_constr
open Cfq_mining

type join_method =
  | Nested_loop
  | Sort_join
  | Hash_join

type stats = {
  n_pairs : int;
  n_paired_s : int;
  n_paired_t : int;
  checks : int;
  join : join_method;
}

let join_method_name = function
  | Nested_loop -> "nested-loop"
  | Sort_join -> "sort-join"
  | Hash_join -> "hash-join"

(* pick the constraint that can drive an index-based join; return it and the
   residual conjunction *)
let rec pick_driver acc = function
  | [] -> (None, List.rev acc)
  | (Two_var.Agg2 (_, _, _, _, _) as c) :: rest -> (Some (`Agg c), List.rev_append acc rest)
  | (Two_var.Set2 (_, Two_var.Set_eq, _) as c) :: rest ->
      (Some (`Eq c), List.rev_append acc rest)
  | c :: rest -> pick_driver (c :: acc) rest

type emitter = {
  mutable n_pairs : int;
  mutable checks : int;
  paired_s : bool array;
  paired_t : bool array;
  on_pair : Frequent.entry -> Frequent.entry -> unit;
}

let emit em ~s_info ~t_info ~residual valid_s valid_t i j =
  let es = valid_s.(i) and et = valid_t.(j) in
  let ok =
    List.for_all
      (fun c ->
        em.checks <- em.checks + 1;
        Two_var.eval ~s_info ~t_info c es.Frequent.set et.Frequent.set)
      residual
  in
  if ok then begin
    em.n_pairs <- em.n_pairs + 1;
    em.paired_s.(i) <- true;
    em.paired_t.(j) <- true;
    em.on_pair es et
  end

let finish em join =
  let count = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 in
  {
    n_pairs = em.n_pairs;
    n_paired_s = count em.paired_s;
    n_paired_t = count em.paired_t;
    checks = em.checks;
    join;
  }

let nested_loop em ~s_info ~t_info ~two_var valid_s valid_t =
  Array.iteri
    (fun i _ ->
      Array.iteri
        (fun j _ -> emit em ~s_info ~t_info ~residual:two_var valid_s valid_t i j)
        valid_t)
    valid_s;
  finish em Nested_loop

(* binary search: first index with key >= x (or > x with [strict]) *)
let lower_bound keys ~strict x =
  let n = Array.length keys in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let k = fst keys.(mid) in
    let before = if strict then k <= x else k < x in
    if before then lo := mid + 1 else hi := mid
  done;
  !lo

let sort_join em ~s_info ~t_info ~residual valid_s valid_t agg1 a op agg2 b =
  let key_s i =
    match Agg.apply agg1 s_info a valid_s.(i).Frequent.set with
    | Some v -> v
    | None -> nan
  in
  let sorted_t =
    Array.to_seq valid_t
    |> Seq.mapi (fun j e -> (Agg.apply agg2 t_info b e.Frequent.set, j))
    |> Seq.filter_map (function Some v, j -> Some (v, j) | None, _ -> None)
    |> Array.of_seq
  in
  Array.sort (fun (x, _) (y, _) -> Float.compare x y) sorted_t;
  let n = Array.length sorted_t in
  let visit i lo hi =
    for r = lo to hi - 1 do
      emit em ~s_info ~t_info ~residual valid_s valid_t i (snd sorted_t.(r))
    done
  in
  Array.iteri
    (fun i _ ->
      let ks = key_s i in
      if Float.is_nan ks then ()
      else
        match op with
        | Cmp.Le -> visit i (lower_bound sorted_t ~strict:false ks) n
        | Cmp.Lt -> visit i (lower_bound sorted_t ~strict:true ks) n
        | Cmp.Ge -> visit i 0 (lower_bound sorted_t ~strict:true ks)
        | Cmp.Gt -> visit i 0 (lower_bound sorted_t ~strict:false ks)
        | Cmp.Eq ->
            visit i (lower_bound sorted_t ~strict:false ks)
              (lower_bound sorted_t ~strict:true ks)
        | Cmp.Ne ->
            visit i 0 (lower_bound sorted_t ~strict:false ks);
            visit i (lower_bound sorted_t ~strict:true ks) n)
    valid_s;
  finish em Sort_join

let hash_join em ~s_info ~t_info ~residual valid_s valid_t a b =
  let canon info attr set =
    String.concat ";"
      (List.map
         (fun v -> Printf.sprintf "%h" v)
         (Cfq_itembase.Value_set.to_list (Cfq_itembase.Item_info.project info attr set)))
  in
  let buckets = Hashtbl.create (2 * Array.length valid_t) in
  Array.iteri
    (fun j e ->
      let key = canon t_info b e.Frequent.set in
      Hashtbl.replace buckets key (j :: Option.value ~default:[] (Hashtbl.find_opt buckets key)))
    valid_t;
  Array.iteri
    (fun i e ->
      let key = canon s_info a e.Frequent.set in
      List.iter
        (fun j -> emit em ~s_info ~t_info ~residual valid_s valid_t i j)
        (Option.value ~default:[] (Hashtbl.find_opt buckets key)))
    valid_s;
  finish em Hash_join

let form ~s_info ~t_info ~valid_s ~valid_t ~two_var ?(on_pair = fun _ _ -> ()) () =
  let em =
    {
      n_pairs = 0;
      checks = 0;
      paired_s = Array.make (Array.length valid_s) false;
      paired_t = Array.make (Array.length valid_t) false;
      on_pair;
    }
  in
  match pick_driver [] two_var with
  | Some (`Agg (Two_var.Agg2 (agg1, a, op, agg2, b))), residual ->
      sort_join em ~s_info ~t_info ~residual valid_s valid_t agg1 a op agg2 b
  | Some (`Eq (Two_var.Set2 (a, Two_var.Set_eq, b))), residual ->
      hash_join em ~s_info ~t_info ~residual valid_s valid_t a b
  | Some _, _ | None, _ -> nested_loop em ~s_info ~t_info ~two_var valid_s valid_t
