open Cfq_itembase
open Cfq_txdb
open Cfq_constr

type estimate = {
  strategy : Plan.strategy;
  s_l1 : int;
  t_l1 : int;
  s_after : int;
  t_after : int;
  l2_baseline : int;
  l2_optimized : int;
  reasons : string list;
}

let pp ppf e =
  Format.fprintf ppf
    "@[<v>recommended strategy: %s@,\
     frequent items: S %d -> %d after reduction, T %d -> %d@,\
     level-2 candidates: baseline %d vs optimized %d"
    (Plan.strategy_name e.strategy) e.s_l1 e.s_after e.t_l1 e.t_after e.l2_baseline
    e.l2_optimized;
  List.iter (fun r -> Format.fprintf ppf "@,- %s" r) e.reasons;
  Format.fprintf ppf "@]"

let pairs n = n * (n - 1) / 2

let advise ?io ctx (q : Query.t) =
  let io = Option.value ~default:(Io_stats.create ()) io in
  let universe_s = Item_info.universe_size ctx.Exec.s_info in
  let universe_t = Item_info.universe_size ctx.Exec.t_info in
  (* one probe scan: global item frequencies (both sides share the db) *)
  let freqs =
    Tx_db.item_frequencies ctx.Exec.db io ~universe_size:(max universe_s universe_t)
  in
  let minsup_s = Tx_db.absolute_support ctx.Exec.db q.Query.s_minsup in
  let minsup_t = Tx_db.absolute_support ctx.Exec.db q.Query.t_minsup in
  let side info cs minsup universe =
    let bundle = Bundle.compile ~nonneg:ctx.Exec.nonneg info cs in
    let l1 = ref [] in
    for i = universe - 1 downto 0 do
      if freqs.(i) >= minsup && Bundle.permits_item bundle i then l1 := i :: !l1
    done;
    (bundle, Itemset.of_list !l1)
  in
  let s_bundle, l1_s = side ctx.Exec.s_info q.Query.s_constraints minsup_s universe_s in
  let t_bundle, l1_t = side ctx.Exec.t_info q.Query.t_constraints minsup_t universe_t in
  (* simulate the reduction and re-filter both item pools *)
  let reductions =
    List.map
      (fun c -> Reduce.reduce ~s_info:ctx.Exec.s_info ~t_info:ctx.Exec.t_info ~l1_s ~l1_t c)
      q.Query.two_var
  in
  let after bundle l1 conds_of =
    let bundle =
      List.fold_left
        (fun b red -> Bundle.add ~nonneg:ctx.Exec.nonneg b (conds_of red))
        bundle reductions
    in
    Itemset.count (fun i -> Bundle.permits_item bundle i) l1
  in
  let s_after = after s_bundle l1_s (fun r -> r.Reduce.s_conds) in
  let t_after = after t_bundle l1_t (fun r -> r.Reduce.t_conds) in
  (* the unconstrained baseline mines one lattice over all frequent items *)
  let baseline_l1 =
    let minsup = min minsup_s minsup_t in
    let n = ref 0 in
    Array.iter (fun f -> if f >= minsup then incr n) freqs;
    !n
  in
  let l2_baseline = pairs baseline_l1 in
  let l2_optimized = pairs s_after + pairs t_after in
  let n_constraints =
    List.length q.Query.s_constraints + List.length q.Query.t_constraints
    + List.length q.Query.two_var
  in
  let plan = Optimizer.plan ~nonneg:ctx.Exec.nonneg q in
  let has_jmax_s = List.exists (fun h -> h.Plan.jmax_on_s) plan.Plan.handlings in
  let has_jmax_t = List.exists (fun h -> h.Plan.jmax_on_t) plan.Plan.handlings in
  let strategy, reasons =
    if n_constraints = 0 then
      ( Plan.Apriori_plus,
        [ "no constraints: both variables share one lattice; mine it once" ] )
    else if has_jmax_s && t_after * 2 <= s_after then
      ( Plan.Sequential_t_first,
        [
          "iterative sum pruning filters the S lattice";
          Printf.sprintf
            "the bounding T lattice is much smaller (%d vs %d items): completing it \
             first buys the exact bound cheaply"
            t_after s_after;
        ] )
    else if l2_optimized >= l2_baseline then
      ( Plan.Apriori_plus,
        [
          Printf.sprintf
            "constraints prune too little (level-2: %d constrained vs %d shared): the \
             single baseline lattice is cheaper, with 2-var constraints checked at \
             pair formation"
            l2_optimized l2_baseline;
        ] )
    else
      ( Plan.Optimized,
        [
          Printf.sprintf "reduction shrinks level 2 to %d candidates (baseline %d)"
            l2_optimized l2_baseline;
          "dovetailing shares every scan between the two lattices";
        ] )
  in
  let reasons =
    if has_jmax_t && strategy = Plan.Optimized then
      reasons @ [ "a sum constraint also filters the T lattice; dovetailing feeds it" ]
    else reasons
  in
  {
    strategy;
    s_l1 = Itemset.cardinal l1_s;
    t_l1 = Itemset.cardinal l1_t;
    s_after;
    t_after;
    l2_baseline;
    l2_optimized;
    reasons;
  }
