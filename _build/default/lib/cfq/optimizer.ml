open Cfq_constr

(* Is an anti-monotone iterative filter [agg(X.attr) ≤ V^k] available on the
   side whose aggregate must stay small?  This needs (i) the bound to come
   from a [sum] on the other side, so the V^k series actually tightens, and
   (ii) the filtered aggregate to make [agg ≤ c] anti-monotone. *)
let jmax_filterable ~nonneg small_agg large_agg =
  nonneg && Agg.equal large_agg Agg.Sum
  && (match small_agg with
     | Agg.Sum | Agg.Max | Agg.Count -> true
     | Agg.Min | Agg.Avg -> false)

let handle_two_var ~nonneg c =
  let quasi_succinct = Classify.quasi_succinct c in
  let induced = Induce.weaken ~nonneg c in
  let jmax_on_s, jmax_on_t =
    match c with
    | Two_var.Agg2 (agg1, _, op, agg2, _) -> (
        match Cmp.direction op with
        | `Upper -> (jmax_filterable ~nonneg agg1 agg2, false)
        | `Lower -> (false, jmax_filterable ~nonneg agg2 agg1)
        | `Equal ->
            (jmax_filterable ~nonneg agg1 agg2, jmax_filterable ~nonneg agg2 agg1)
        | `Distinct -> (false, false))
    | Two_var.Set2 _ -> (false, false)
  in
  { Plan.constr = c; quasi_succinct; induced; jmax_on_s; jmax_on_t }

let plan ?(strategy = Plan.Optimized) ~nonneg q =
  let handlings =
    match strategy with
    | Plan.Apriori_plus | Plan.Cap_one_var | Plan.Full_materialize -> []
    | Plan.Optimized | Plan.Sequential_t_first ->
        List.map (handle_two_var ~nonneg) q.Query.two_var
  in
  let one_var_succinct =
    List.for_all One_var.is_succinct (q.Query.s_constraints @ q.Query.t_constraints)
  in
  let two_var_qs = List.for_all Classify.quasi_succinct q.Query.two_var in
  let ccc_optimal =
    match strategy with
    | Plan.Optimized -> one_var_succinct && two_var_qs
    | Plan.Cap_one_var -> one_var_succinct && q.Query.two_var = []
    | Plan.Apriori_plus | Plan.Full_materialize -> false
    | Plan.Sequential_t_first ->
        (* same counting/checking profile as Optimized; the trade-off is in
           scans, which ccc-optimality does not measure *)
        one_var_succinct && two_var_qs
  in
  let notes =
    List.concat_map
      (fun h ->
        match (h.Plan.constr, h.Plan.quasi_succinct) with
        | Two_var.Agg2 (Agg.Avg, _, (Cmp.Le | Cmp.Lt), Agg.Sum, _), false ->
            [
              "avg-vs-sum: the V^k series exists but [avg <= V] is not \
               anti-monotone, so no iterative candidate filter is installed";
            ]
        | _ -> [])
      handlings
  in
  { Plan.strategy; handlings; ccc_optimal; notes }
