(** The CFQ query optimizer (Section 6, Figure 7).

    Given a CFQ, the optimizer separates 1-var from 2-var constraints,
    splits the 2-var constraints into quasi-succinct and
    non-quasi-succinct, decides how each is pushed (tight reduction, sound
    bound reduction subsuming the Figure 4 induction, iterative [Jmax]/[V^k]
    filtering), and certifies ccc-optimality for the class of 1-var
    succinct + 2-var quasi-succinct constraints (Theorem 4, Corollary 2). *)

(** [plan ?strategy ~nonneg q] produces the computation plan.  [strategy]
    defaults to {!Plan.Optimized}; [nonneg] states that all aggregated
    attribute values are non-negative (required by the [sum] rules). *)
val plan : ?strategy:Plan.strategy -> nonneg:bool -> Query.t -> Plan.t
