open Cfq_txdb
open Cfq_mining

let plan ppf q p =
  Format.fprintf ppf "@[<v>query: %a@,%a@]" Query.pp q Plan.pp p

let side ppf name (r : Exec.side_report) =
  Format.fprintf ppf "%s lattice:@," name;
  List.iter
    (fun row ->
      Format.fprintf ppf "  L%d: %d candidates, %d frequent@," row.Level_stats.level
        row.Level_stats.candidates row.Level_stats.frequent)
    r.Exec.levels;
  Format.fprintf ppf "  frequent sets: %d; valid: %d@," (Frequent.n_sets r.Exec.frequent)
    (Array.length r.Exec.valid);
  Format.fprintf ppf "  ccc: %a@," Counters.pp r.Exec.counters

let result ppf (r : Exec.result) =
  Format.fprintf ppf "@[<v>%a@," Plan.pp r.Exec.plan;
  side ppf "S" r.Exec.s;
  side ppf "T" r.Exec.t;
  Format.fprintf ppf "io: %a@," Io_stats.pp r.Exec.io;
  Format.fprintf ppf "pairs: %d (from %d S-sets x %d T-sets; %s, %d residual checks)@,"
    r.Exec.pair_stats.Pairs.n_pairs r.Exec.pair_stats.Pairs.n_paired_s
    r.Exec.pair_stats.Pairs.n_paired_t
    (Pairs.join_method_name r.Exec.pair_stats.Pairs.join)
    r.Exec.pair_stats.Pairs.checks;
  List.iter (fun n -> Format.fprintf ppf "note: %s@," n) r.Exec.notes;
  Format.fprintf ppf "time: mining %.3fs, pairs %.3fs@]" r.Exec.mining_seconds
    r.Exec.pair_seconds

let plan_to_string q p = Format.asprintf "%a" (fun ppf () -> plan ppf q p) ()
let result_to_string r = Format.asprintf "%a" result r
