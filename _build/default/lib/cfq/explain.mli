(** Human-readable EXPLAIN output for plans and execution results. *)

(** [plan ppf q p] prints the query and the optimizer's decisions. *)
val plan : Format.formatter -> Query.t -> Plan.t -> unit

(** [result ppf r] prints a full execution report: per-side level profile,
    ccc counters, I/O, pair statistics, timings. *)
val result : Format.formatter -> Exec.result -> unit

val plan_to_string : Query.t -> Plan.t -> string
val result_to_string : Exec.result -> string
