(** Constraint normalisation ahead of planning.

    A CFQ arrives as a raw conjunction; this pass merges redundant atoms,
    drops trivial ones, and detects contradictions, so the optimizer plans
    over a minimal constraint set and provably empty queries never touch
    the database:

    {ul
    {- aggregate bounds over the same (aggregate, attribute) merge to the
       tightest constant, and opposite bounds that cross mark the side
       unsatisfiable;}
    {- [S.A ⊆ V] atoms intersect their value sets ([⊆ ∅] on a non-empty
       set is unsatisfiable), [V ⊆ S.A] and disjointness atoms union
       theirs;}
    {- [V ⊆ S.A] clashing with [S.A ⊆ W] ([V ⊄ W]) or with
       [S.A ∩ W = ∅] ([V ∩ W ≠ ∅]) is unsatisfiable;}
    {- trivial atoms ([S ≠ ∅], [|S| ≥ 0/1]) are dropped; duplicate 2-var
       constraints are deduplicated.}} *)

type outcome = {
  query : Query.t;  (** the simplified query *)
  s_unsat : bool;  (** the S side admits no non-empty set *)
  t_unsat : bool;
  notes : string list;  (** human-readable log of applied rewrites *)
}

val simplify : Query.t -> outcome
