open Cfq_constr

type strategy =
  | Apriori_plus
  | Cap_one_var
  | Optimized
  | Sequential_t_first
  | Full_materialize

type two_var_handling = {
  constr : Two_var.t;
  quasi_succinct : bool;
  induced : Two_var.t option;
  jmax_on_s : bool;
  jmax_on_t : bool;
}

type t = {
  strategy : strategy;
  handlings : two_var_handling list;
  ccc_optimal : bool;
  notes : string list;
}

let strategy_name = function
  | Apriori_plus -> "apriori+"
  | Cap_one_var -> "cap-1var"
  | Optimized -> "optimized"
  | Sequential_t_first -> "sequential-t-first"
  | Full_materialize -> "full-materialize"

let pp ppf t =
  Format.fprintf ppf "@[<v>strategy: %s" (strategy_name t.strategy);
  List.iter
    (fun h ->
      Format.fprintf ppf "@,2-var %a: %s" Two_var.pp h.constr
        (if h.quasi_succinct then "quasi-succinct reduction"
         else "sound bound reduction");
      (match h.induced with
      | Some c -> Format.fprintf ppf "; induces %a" Two_var.pp c
      | None -> ());
      if h.jmax_on_s then Format.fprintf ppf "; Jmax/V^k filter on S";
      if h.jmax_on_t then Format.fprintf ppf "; Jmax/V^k filter on T")
    t.handlings;
  if t.ccc_optimal then Format.fprintf ppf "@,ccc-optimal: yes"
  else Format.fprintf ppf "@,ccc-optimal: not guaranteed";
  List.iter (fun n -> Format.fprintf ppf "@,note: %s" n) t.notes;
  Format.fprintf ppf "@]"
