open Cfq_constr

type t = {
  s_minsup : float;
  t_minsup : float;
  s_constraints : One_var.t list;
  t_constraints : One_var.t list;
  two_var : Two_var.t list;
  max_level : int option;
}

let make ?(s_minsup = 0.01) ?(t_minsup = 0.01) ?(s_constraints = [])
    ?(t_constraints = []) ?(two_var = []) ?max_level () =
  if s_minsup < 0. || s_minsup > 1. || t_minsup < 0. || t_minsup > 1. then
    invalid_arg "Query.make: support thresholds must be in [0, 1]";
  { s_minsup; t_minsup; s_constraints; t_constraints; two_var; max_level }

let n_constraints t =
  (List.length t.s_constraints, List.length t.t_constraints, List.length t.two_var)

let pp ppf t =
  Format.fprintf ppf "{(S,T) | freq(S) >= %g & freq(T) >= %g" t.s_minsup t.t_minsup;
  List.iter (fun c -> Format.fprintf ppf " & %a" (One_var.pp_with_var "S") c) t.s_constraints;
  List.iter (fun c -> Format.fprintf ppf " & %a" (One_var.pp_with_var "T") c) t.t_constraints;
  List.iter (fun c -> Format.fprintf ppf " & %a" Two_var.pp c) t.two_var;
  Format.fprintf ppf "}"

let to_string t = Format.asprintf "%a" pp t
