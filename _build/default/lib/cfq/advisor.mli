(** A first cost model for choosing between computation strategies — the
    paper's open problem (2) ("developing more detailed cost models for
    CFQs, as well as optimizers incorporating such models").

    The advisor pays one probe scan to learn the level-1 frequency profile,
    simulates the quasi-succinct reduction on it, and estimates the level-2
    candidate volume of each strategy (levelwise computations are typically
    dominated by level 2).  Selection rules:

    {ul
    {- no constraints at all: the two lattices coincide, so the baseline's
       single shared lattice wins ([Apriori_plus], cf. the Section 6.2
       remark on when Apriori+ is ccc-optimal);}
    {- an iterative-sum constraint whose bounding side is much cheaper than
       the filtered side: complete the bounding lattice first
       ([Sequential_t_first], the Section 5.2 "global maximum M" strategy);}
    {- otherwise: dovetailed [Optimized].}} *)

open Cfq_txdb

type estimate = {
  strategy : Plan.strategy;  (** the recommendation *)
  s_l1 : int;  (** frequent S items before reduction *)
  t_l1 : int;
  s_after : int;  (** ... after applying the reduced universe conditions *)
  t_after : int;
  l2_baseline : int;  (** level-2 candidates of the shared baseline lattice *)
  l2_optimized : int;  (** level-2 candidates of the two reduced lattices *)
  reasons : string list;
}

val pp : Format.formatter -> estimate -> unit

(** [advise ctx q] probes the database (one scan, charged to [io]) and
    recommends a strategy. *)
val advise : ?io:Io_stats.t -> Exec.ctx -> Query.t -> estimate
