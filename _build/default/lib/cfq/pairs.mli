(** Final pair formation — the last box of Figure 7.

    From the frequent, valid [S]- and [T]-sets, form the pairs satisfying
    every 2-var constraint of the query.  When reductions were non-tight
    (or induced), this step also discards the surviving invalid sets
    (footnote 4 of the paper).

    The join is planned per constraint shape:

    {ul
    {- a single aggregate comparison [agg1(S.A) θ agg2(T.B)] becomes a
       {e sort join}: the [T] side is sorted by its aggregate key and each
       [S]-set only visits its matching range — O((|S|+|T|) log |T| +
       output);}
    {- a single [S.A = T.B] becomes a {e hash join} on the canonical
       projected value set;}
    {- anything else (or a conjunction) drives off the best joinable
       constraint and verifies the residual constraints per candidate pair,
       falling back to a nested loop when nothing is joinable.}}

    All methods produce identical pairs; they differ in how many 2-var
    evaluations ([checks]) they spend. *)

open Cfq_itembase
open Cfq_constr
open Cfq_mining

type join_method =
  | Nested_loop
  | Sort_join  (** driven by an aggregate comparison *)
  | Hash_join  (** driven by a value-set equality *)

type stats = {
  n_pairs : int;
  n_paired_s : int;  (** S-sets appearing in at least one valid pair *)
  n_paired_t : int;
  checks : int;  (** 2-var constraint evaluations performed *)
  join : join_method;
}

val join_method_name : join_method -> string

(** [form ~s_info ~t_info ~valid_s ~valid_t ~two_var ()] enumerates the
    valid pairs, invoking [on_pair] on each (in unspecified order). *)
val form :
  s_info:Item_info.t ->
  t_info:Item_info.t ->
  valid_s:Frequent.entry array ->
  valid_t:Frequent.entry array ->
  two_var:Two_var.t list ->
  ?on_pair:(Frequent.entry -> Frequent.entry -> unit) ->
  unit ->
  stats
