open Cfq_itembase
open Cfq_constr

type outcome = {
  query : Query.t;
  s_unsat : bool;
  t_unsat : bool;
  notes : string list;
}

(* key for mergeable aggregate atoms: aggregate, attribute, bound direction *)
type agg_key = {
  agg : Agg.t;
  attr_name : string;
  upper : bool;
}

type side_state = {
  mutable uppers : (agg_key * (Cmp.t * float)) list;  (* tightest upper per key *)
  mutable lowers : (agg_key * (Cmp.t * float)) list;
  mutable subsets : (string * Attr.t * Value_set.t) list;  (* intersected *)
  mutable supersets : (string * Attr.t * Value_set.t) list;  (* unioned *)
  mutable disjoints : (string * Attr.t * Value_set.t) list;  (* unioned *)
  mutable others : One_var.t list;  (* kept verbatim *)
  mutable unsat : bool;
  mutable notes : string list;
}

let new_state () =
  {
    uppers = [];
    lowers = [];
    subsets = [];
    supersets = [];
    disjoints = [];
    others = [];
    unsat = false;
    notes = [];
  }

let note st fmt = Format.kasprintf (fun s -> st.notes <- s :: st.notes) fmt

(* (op1, c1) tighter-or-equal than (op2, c2) as an upper bound *)
let tighter_upper (op1, c1) (op2, c2) =
  c1 < c2 || (c1 = c2 && (op1 = Cmp.Lt || op2 = Cmp.Le))

let tighter_lower (op1, c1) (op2, c2) =
  c1 > c2 || (c1 = c2 && (op1 = Cmp.Gt || op2 = Cmp.Ge))

let merge_assoc st key bound current ~tighter ~what =
  match List.assoc_opt key current with
  | None -> (key, bound) :: current
  | Some existing ->
      if tighter bound existing then begin
        note st "tightened %s bound on %s(%s)" what (Agg.to_string key.agg) key.attr_name;
        (key, bound) :: List.remove_assoc key current
      end
      else begin
        note st "dropped redundant %s bound on %s(%s)" what (Agg.to_string key.agg)
          key.attr_name;
        current
      end

let merge_valueset st var kind combine l (name, attr, vs) =
  match List.find_opt (fun (n, _, _) -> n = name) l with
  | None -> (name, attr, vs) :: l
  | Some (_, _, existing) ->
      note st "merged %s constraints on %s.%s" kind var name;
      (name, attr, combine existing vs)
      :: List.filter (fun (n, _, _) -> n <> name) l

let add_atom st var (c : One_var.t) =
  match c with
  | One_var.Nonempty ->
      note st "dropped trivial |%s| >= 1" var
  | One_var.Card_cmp ((Cmp.Ge | Cmp.Gt), k) when k <= 0 ->
      note st "dropped trivial cardinality bound on %s" var
  | One_var.Card_cmp (Cmp.Ge, 1) -> note st "dropped trivial |%s| >= 1" var
  | One_var.Card_cmp ((Cmp.Le | Cmp.Lt), k) when k <= 0 ->
      st.unsat <- true;
      note st "%s requires at most %d items: unsatisfiable for non-empty sets" var k
  | One_var.Agg_cmp (agg, a, ((Cmp.Le | Cmp.Lt) as op), cst) ->
      let key = { agg; attr_name = a.Attr.name; upper = true } in
      st.uppers <- merge_assoc st key (op, cst) st.uppers ~tighter:tighter_upper ~what:"upper"
  | One_var.Agg_cmp (agg, a, ((Cmp.Ge | Cmp.Gt) as op), cst) ->
      let key = { agg; attr_name = a.Attr.name; upper = false } in
      st.lowers <- merge_assoc st key (op, cst) st.lowers ~tighter:tighter_lower ~what:"lower"
  | One_var.Dom_subset (a, vs) ->
      st.subsets <- merge_valueset st var "subset" Value_set.inter st.subsets (a.Attr.name, a, vs)
  | One_var.Dom_superset (a, vs) ->
      st.supersets <-
        merge_valueset st var "superset" Value_set.union st.supersets (a.Attr.name, a, vs)
  | One_var.Dom_disjoint (a, vs) ->
      st.disjoints <-
        merge_valueset st var "disjoint" Value_set.union st.disjoints (a.Attr.name, a, vs)
  | One_var.Agg_cmp _ | One_var.Dom_intersect _ | One_var.Dom_not_superset _
  | One_var.Card_cmp _ ->
      st.others <- c :: st.others

let check_contradictions st var =
  (* crossing aggregate bounds on the same key *)
  List.iter
    (fun (key, (op_u, c_u)) ->
      match List.assoc_opt { key with upper = false } st.lowers with
      | Some (op_l, c_l) ->
          let crossing =
            c_l > c_u
            || (c_l = c_u && (op_u = Cmp.Lt || op_l = Cmp.Gt))
          in
          if crossing then begin
            st.unsat <- true;
            note st "%s: %s(%s) bounded %s %g and %s %g simultaneously" var
              (Agg.to_string key.agg) key.attr_name (Cmp.to_string op_u) c_u
              (Cmp.to_string op_l) c_l
          end
      | None -> ())
    st.uppers;
  (* subset of the empty set *)
  List.iter
    (fun (name, _, vs) ->
      if Value_set.is_empty vs then begin
        st.unsat <- true;
        note st "%s.%s must be a subset of the empty set" var name
      end)
    st.subsets;
  (* superset vs subset / disjoint *)
  List.iter
    (fun (name, _, required) ->
      (match List.find_opt (fun (n, _, _) -> n = name) st.subsets with
      | Some (_, _, allowed) when not (Value_set.subset required allowed) ->
          st.unsat <- true;
          note st "%s.%s must contain values outside its allowed set" var name
      | Some _ | None -> ());
      match List.find_opt (fun (n, _, _) -> n = name) st.disjoints with
      | Some (_, _, banned) when not (Value_set.disjoint required banned) ->
          st.unsat <- true;
          note st "%s.%s must contain a banned value" var name
      | Some _ | None -> ())
    st.supersets

let atoms_of st =
  List.rev st.others
  @ List.rev_map (fun (key, (op, c)) ->
        One_var.Agg_cmp (key.agg, Attr.make key.attr_name Attr.Numeric, op, c))
      (st.uppers @ st.lowers)
  @ List.rev_map (fun (_, a, vs) -> One_var.Dom_subset (a, vs)) st.subsets
  @ List.rev_map (fun (_, a, vs) -> One_var.Dom_superset (a, vs)) st.supersets
  @ List.rev_map (fun (_, a, vs) -> One_var.Dom_disjoint (a, vs)) st.disjoints

let simplify (q : Query.t) =
  let side var atoms =
    let st = new_state () in
    List.iter (add_atom st var) atoms;
    check_contradictions st var;
    st
  in
  let s = side "S" q.Query.s_constraints in
  let t = side "T" q.Query.t_constraints in
  let two_var, dropped =
    List.fold_left
      (fun (kept, dropped) c ->
        if List.mem c kept then (kept, dropped + 1) else (kept @ [ c ], dropped))
      ([], 0) q.Query.two_var
  in
  let dup_note =
    if dropped > 0 then [ Printf.sprintf "dropped %d duplicate 2-var constraints" dropped ]
    else []
  in
  {
    query =
      {
        q with
        Query.s_constraints = atoms_of s;
        t_constraints = atoms_of t;
        two_var;
      };
    s_unsat = s.unsat;
    t_unsat = t.unsat;
    notes = List.rev s.notes @ List.rev t.notes @ dup_note;
  }
