(** Computation plans produced by the CFQ query optimizer (Figure 7). *)

open Cfq_constr

type strategy =
  | Apriori_plus  (** mine all frequent sets, then filter (the baseline) *)
  | Cap_one_var  (** push 1-var constraints only (the CAP algorithm of [15]) *)
  | Optimized  (** 1-var + quasi-succinct reduction + Jmax pruning, dovetailed *)
  | Sequential_t_first
      (** the "global maximum M" alternative of Section 5.2: compute the
          whole [T] lattice first, then prune the [S] lattice against exact
          bounds instead of the [V^k] series — better pruning, no scan
          sharing *)
  | Full_materialize
      (** the FM counterexample of Section 6.2: constraint-check the whole
          powerset first, count only valid sets — minimal counting, absurd
          checking; small universes only *)

(** How a 2-var constraint is handled by the [Optimized] strategy. *)
type two_var_handling = {
  constr : Two_var.t;
  quasi_succinct : bool;  (** reduced tightly (Section 4) vs via sound bounds *)
  induced : Two_var.t option;  (** Figure 4 weaker constraint, when one exists *)
  jmax_on_s : bool;  (** iterative [V^k] filter installed on the S lattice *)
  jmax_on_t : bool;
}

type t = {
  strategy : strategy;
  handlings : two_var_handling list;
  ccc_optimal : bool;
      (** the optimizer certifies ccc-optimality (Theorem 4 / Corollary 2):
          all 1-var constraints succinct and all 2-var quasi-succinct *)
  notes : string list;
}

val strategy_name : strategy -> string
val pp : Format.formatter -> t -> unit
