let anti_monotone_s = function
  | Two_var.Set2 (_, Two_var.Disjoint, _) -> true
  | Two_var.Set2 _ -> false
  | Two_var.Agg2 (Agg.Max, _, (Cmp.Le | Cmp.Lt), Agg.Min, _) -> true
  | Two_var.Agg2 (Agg.Min, _, (Cmp.Ge | Cmp.Gt), Agg.Max, _) -> true
  | Two_var.Agg2 _ -> false

let anti_monotone_t c = anti_monotone_s (Two_var.swap c)
let anti_monotone c = anti_monotone_s c && anti_monotone_t c

let quasi_succinct = function
  | Two_var.Set2 _ -> true
  | Two_var.Agg2 ((Agg.Min | Agg.Max), _, _, (Agg.Min | Agg.Max), _) -> true
  | Two_var.Agg2 _ -> false
