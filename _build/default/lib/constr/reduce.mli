(** Quasi-succinct reduction of 2-var constraints (Section 4 of the paper).

    A 2-var constraint [C(S,T)] is reduced to 1-var pruning conditions
    [C1(S)] and [C2(T)] whose constants come from the level-1 frequent sets
    of the {e other} side — Figures 2 (domain constraints) and 3 (min/max
    aggregates) of the paper, generalised here to both comparison
    directions, equality, and to [sum]/[avg]/[count] aggregates.

    For quasi-succinct constraints the conditions are {e sound} (never prune
    a valid set, Definition 5); the produced [One_var.t]s are succinct.  For
    non-quasi-succinct constraints ([sum]/[avg]) we reduce the original
    constraint directly against achievable aggregate bounds, which is sound
    and subsumes the paper's Figure 4 induced-weaker-constraint conditions:
    e.g. [sum(S.A) ≤ max(T.B)] reduces to [sum(CS.A) ≤ max(L1T.B)], which is
    anti-monotone, and {!One_var.induce_weaker} then recovers the succinct
    Figure 4 condition [max(CS.A) ≤ max(L1T.B)] from it.  Tightness flags
    are set conservatively (only when a frequent-singleton witness argument
    proves the converse direction, as in Lemma 3). *)

open Cfq_itembase

type t = {
  s_conds : One_var.t list;  (** conjunction; [[]] = no pruning *)
  t_conds : One_var.t list;
  s_tight : bool;  (** every S-set passing [s_conds] is a valid S-set *)
  t_tight : bool;
}

(** [reduce ~s_info ~t_info ~l1_s ~l1_t c] decouples [c] given the frequent
    singletons of both sides.  If a side's L1 is empty there are no frequent
    sets on that side at all, and the other side's condition is the
    unsatisfiable [Card_cmp (Lt, 0)]. *)
val reduce :
  s_info:Item_info.t ->
  t_info:Item_info.t ->
  l1_s:Itemset.t ->
  l1_t:Itemset.t ->
  Two_var.t ->
  t

(** A reduction that prunes nothing (used before L1 is known). *)
val no_pruning : t

val pp : Format.formatter -> t -> unit
