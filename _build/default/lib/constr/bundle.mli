(** Compilation of a conjunction of 1-var constraints into the four
    execution classes of the CAP algorithm [15]:

    {ol
    {- succinct constraints become part of a single combined MGF (universe
       filter + required witness groups) and operate generate-only;}
    {- anti-monotone, non-succinct constraints ([sum ≤ c], cardinality,
       [S.A ⊉ V]) become candidate-generation checks;}
    {- constraints that are neither contribute any induced weaker succinct /
       anti-monotone forms ({!One_var.induce_weaker}) to classes 1–2 and are
       themselves deferred;}
    {- deferred originals are re-checked on the frequent sets at the end
       ([post_checks]).}} *)

open Cfq_itembase

type t = {
  info : Item_info.t;
  originals : One_var.t list;  (** the constraints as given *)
  mgf : Mgf.t;  (** combined MGF of the succinct parts (and induced ones) *)
  am_checks : One_var.t list;  (** anti-monotone checks for candidate generation *)
  post_checks : One_var.t list;  (** deferred: checked on frequent sets *)
}

(** [compile ~nonneg info cs] classifies and compiles the conjunction. *)
val compile : nonneg:bool -> Item_info.t -> One_var.t list -> t

(** No constraints: plain frequency mining. *)
val unconstrained : Item_info.t -> t

(** [add ~nonneg t cs] compiles additional constraints into [t] (used when
    the quasi-succinct reduction adds conditions after level 1). *)
val add : nonneg:bool -> t -> One_var.t list -> t

(** Universe filter on a single item. *)
val permits_item : t -> Item.t -> bool

(** All anti-monotone checks. *)
val am_ok : t -> Itemset.t -> bool

(** All deferred checks. *)
val post_ok : t -> Itemset.t -> bool

(** Witness requirement of the combined MGF. *)
val requires_witness : t -> Itemset.t -> bool

(** Required witness groups (empty for class-1-only bundles). *)
val requires : t -> Sel.t list

(** [eval_originals t s] evaluates the uncompiled conjunction — the
    reference semantics. *)
val eval_originals : t -> Itemset.t -> bool

val pp : Format.formatter -> t -> unit
