(** Member generating functions for succinct constraints.

    A succinct constraint's solution space can be produced by a generating
    function rather than tested set-by-set (Definition 2 of the paper; the
    MGF machinery of the CAP paper [15]).  We normalise MGFs to the form

    {ul
    {- a {e universe filter}: every member item must satisfy all of
       [universe] (e.g. [max(S.A) ≤ c] restricts members to items with
       [A ≤ c]);}
    {- {e required groups}: for each predicate in [requires], the set must
       contain at least one witness item satisfying it (e.g.
       [min(S.A) ≤ c] requires one item with [A ≤ c]).}}

    This form is closed under conjunction and covers all domain constraints
    and all min/max aggregation constraints of the language with the two
    exceptions noted in DESIGN.md ([S.A ⊉ V]-shaped conditions, which the
    engine applies as anti-monotone filters instead, and [Ne]
    comparisons). *)

open Cfq_itembase

type t = {
  universe : Sel.t;
  requires : Sel.t list;
}

val trivial : t
val is_trivial : t -> bool

(** [of_one_var c] is the MGF of [c] if [c] is succinct and expressible in
    the normalised form; [None] otherwise. *)
val of_one_var : One_var.t -> t option

(** Conjunction of two MGFs: intersect universes, concatenate requirements. *)
val combine : t -> t -> t

val combine_all : t list -> t

(** [permits_item info t e] tests the universe filter on one item. *)
val permits_item : Item_info.t -> t -> Item.t -> bool

(** [requires_witness info t s] checks that [s] holds a witness for every
    required group. *)
val requires_witness : Item_info.t -> t -> Itemset.t -> bool

(** [satisfied info t s] = universe on every item + all witnesses present;
    for a constraint with an exact MGF this coincides with
    [One_var.eval]. *)
val satisfied : Item_info.t -> t -> Itemset.t -> bool

val pp : Format.formatter -> t -> unit
