open Cfq_itembase

type t =
  | True
  | Cmp of Attr.t * Cmp.t * float
  | In of Attr.t * Value_set.t
  | Not_in of Attr.t * Value_set.t
  | And of t * t

let rec eval info t item =
  match t with
  | True -> true
  | Cmp (attr, op, c) -> Cmp.eval op (Item_info.value info attr item) c
  | In (attr, vs) -> Value_set.mem (Item_info.value info attr item) vs
  | Not_in (attr, vs) -> not (Value_set.mem (Item_info.value info attr item) vs)
  | And (a, b) -> eval info a item && eval info b item

let conj sels =
  List.fold_left
    (fun acc s ->
      match (acc, s) with
      | acc, True -> acc
      | True, s -> s
      | acc, s -> And (acc, s))
    True sels

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | Cmp (attr, op, c) -> Format.fprintf ppf "%a %a %g" Attr.pp attr Cmp.pp op c
  | In (attr, vs) -> Format.fprintf ppf "%a in %a" Attr.pp attr Value_set.pp vs
  | Not_in (attr, vs) -> Format.fprintf ppf "%a not in %a" Attr.pp attr Value_set.pp vs
  | And (a, b) -> Format.fprintf ppf "%a & %a" pp a pp b
