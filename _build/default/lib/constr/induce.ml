(* Replace the aggregate on the side that must be small (the lower side of
   the comparison) by an aggregate it dominates. *)
let lower_side ~nonneg = function
  | Agg.Avg -> Some Agg.Min (* min ≤ avg *)
  | Agg.Sum -> if nonneg then Some Agg.Max (* max ≤ sum *) else None
  | Agg.Min | Agg.Max | Agg.Count -> None

(* ... and on the side that must be large, by an aggregate dominating it. *)
let upper_side = function
  | Agg.Avg -> Some Agg.Max (* avg ≤ max *)
  | Agg.Sum | Agg.Min | Agg.Max | Agg.Count -> None

let weaken ~nonneg c =
  match c with
  | Two_var.Set2 _ -> None
  | Two_var.Agg2 (agg1, a, op, agg2, b) -> (
      if Classify.quasi_succinct c then None
      else
        let rewrite small large =
          (* [small] must end up ≤ [large]; each side keeps its aggregate
             when already min/max *)
          let small' =
            match small with
            | Agg.Min | Agg.Max -> Some small
            | Agg.Avg | Agg.Sum | Agg.Count -> lower_side ~nonneg small
          in
          let large' =
            match large with
            | Agg.Min | Agg.Max -> Some large
            | Agg.Avg | Agg.Sum | Agg.Count -> upper_side large
          in
          match (small', large') with
          | Some x, Some y -> Some (x, y)
          | _ -> None
        in
        match Cmp.direction op with
        | `Upper -> (
            match rewrite agg1 agg2 with
            | Some (agg1', agg2') -> Some (Two_var.Agg2 (agg1', a, op, agg2', b))
            | None -> None)
        | `Lower -> (
            match rewrite agg2 agg1 with
            | Some (agg2', agg1') -> Some (Two_var.Agg2 (agg1', a, op, agg2', b))
            | None -> None)
        | `Equal -> (
            (* agg1 = agg2 implies both ≤ and ≥; weaken each and keep the
               conjunction only if both directions survive — we return the ≤
               direction when available, which is where the pruning power
               lies *)
            match rewrite agg1 agg2 with
            | Some (agg1', agg2') -> Some (Two_var.Agg2 (agg1', a, Cmp.Le, agg2', b))
            | None -> None)
        | `Distinct -> None)
