(** Item selection predicates [σ_p(Item)].

    These are the building blocks of succinct sets (Definition 2 of the
    paper): a succinct set is expressible as [σ_p(Item)] for a selection
    predicate [p] over single items.  Member generating functions are built
    from these. *)

open Cfq_itembase

type t =
  | True
  | Cmp of Attr.t * Cmp.t * float  (** item.A θ c *)
  | In of Attr.t * Value_set.t  (** item.A ∈ V *)
  | Not_in of Attr.t * Value_set.t  (** item.A ∉ V *)
  | And of t * t

val eval : Item_info.t -> t -> Item.t -> bool

(** [conj sels] folds a conjunction, dropping [True]s. *)
val conj : t list -> t

val pp : Format.formatter -> t -> unit
