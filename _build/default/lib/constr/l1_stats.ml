open Cfq_itembase

type t = {
  attr : Attr.t;
  values : Value_set.t;
  vmin : float option;
  vmax : float option;
  sum_pos : float;
  sum_neg : float;
}

let make info attr l1 =
  let values = Item_info.project info attr l1 in
  let sum_pos, sum_neg =
    Itemset.fold
      (fun (p, n) e ->
        let v = Item_info.value info attr e in
        if v > 0. then (p +. v, n) else (p, n +. v))
      (0., 0.) l1
  in
  { attr; values; vmin = Value_set.min_value values; vmax = Value_set.max_value values; sum_pos; sum_neg }

let achievable_ub agg t =
  match agg with
  | Agg.Min | Agg.Max | Agg.Avg -> t.vmax
  | Agg.Sum -> (
      match t.vmax with
      | None -> None
      | Some vmax -> Some (if t.sum_pos > 0. then t.sum_pos else vmax))
  | Agg.Count ->
      if Value_set.is_empty t.values then None
      else Some (float_of_int (Value_set.cardinal t.values))

let achievable_lb agg t =
  match agg with
  | Agg.Min | Agg.Max | Agg.Avg -> t.vmin
  | Agg.Sum -> (
      match t.vmin with
      | None -> None
      | Some vmin -> Some (if t.sum_neg < 0. then t.sum_neg else vmin))
  | Agg.Count -> if Value_set.is_empty t.values then None else Some 1.
