(** Comparison operators of the constraint language. *)

type t =
  | Le
  | Lt
  | Ge
  | Gt
  | Eq
  | Ne

val eval : t -> float -> float -> bool

(** [flip t] swaps the operand roles: [a t b <=> b (flip t) a]. *)
val flip : t -> t

(** [negate t] is the complement: [a t b <=> not (a (negate t) b)]. *)
val negate : t -> t

(** Direction of an ordering comparison, if any. *)
val direction : t -> [ `Upper | `Lower | `Equal | `Distinct ]

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val of_string : string -> t option
