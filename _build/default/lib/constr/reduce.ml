open Cfq_itembase

type t = {
  s_conds : One_var.t list;
  t_conds : One_var.t list;
  s_tight : bool;
  t_tight : bool;
}

let no_pruning = { s_conds = []; t_conds = []; s_tight = false; t_tight = false }

(* |S| < 0: unsatisfiable, used when the opposite side has no frequent set *)
let absurd = One_var.Card_cmp (Cmp.Lt, 0)

let reduce ~s_info ~t_info ~l1_s ~l1_t c =
  if Itemset.is_empty l1_s || Itemset.is_empty l1_t then
    { s_conds = [ absurd ]; t_conds = [ absurd ]; s_tight = true; t_tight = true }
  else
    match c with
    | Two_var.Set2 (a, op, b) -> (
        let vs = (L1_stats.make s_info a l1_s).L1_stats.values in
        let vt = (L1_stats.make t_info b l1_t).L1_stats.values in
        match op with
        | Two_var.Disjoint ->
            (* Lemmas 2, 3 and Corollary 1 *)
            {
              s_conds = [ One_var.Dom_not_superset (a, vt) ];
              t_conds = [ One_var.Dom_not_superset (b, vs) ];
              s_tight = true;
              t_tight = true;
            }
        | Two_var.Intersect ->
            {
              s_conds = [ One_var.Dom_intersect (a, vt) ];
              t_conds = [ One_var.Dom_intersect (b, vs) ];
              s_tight = true;
              t_tight = true;
            }
        | Two_var.Subset ->
            {
              s_conds = [ One_var.Dom_subset (a, vt) ];
              t_conds = [ One_var.Dom_intersect (b, vs) ];
              (* C1 needs one frequent T covering all of CS.A — not certified
                 by L1 alone, so conservatively non-tight *)
              s_tight = false;
              t_tight = true;
            }
        | Two_var.Not_subset ->
            {
              s_conds = [ One_var.Nonempty ];
              t_conds = [ One_var.Dom_not_superset (b, vs) ];
              s_tight = false;
              t_tight = true;
            }
        | Two_var.Superset ->
            {
              s_conds = [ One_var.Dom_intersect (a, vt) ];
              t_conds = [ One_var.Dom_subset (b, vs) ];
              s_tight = true;
              t_tight = false;
            }
        | Two_var.Not_superset ->
            {
              s_conds = [ One_var.Dom_not_superset (a, vt) ];
              t_conds = [ One_var.Nonempty ];
              s_tight = true;
              t_tight = false;
            }
        | Two_var.Set_eq ->
            {
              s_conds = [ One_var.Dom_subset (a, vt) ];
              t_conds = [ One_var.Dom_subset (b, vs) ];
              s_tight = false;
              t_tight = false;
            }
        | Two_var.Set_ne -> no_pruning)
    | Two_var.Agg2 (agg1, a, op, agg2, b) -> (
        let stats_s = L1_stats.make s_info a l1_s in
        let stats_t = L1_stats.make t_info b l1_t in
        let tight =
          (* min/max bounds are attained by frequent singletons; sum/avg/count
             bounds are not certified attainable *)
          match (agg1, agg2) with
          | (Agg.Min | Agg.Max), (Agg.Min | Agg.Max) -> true
          | _ -> false
        in
        let directional op =
          let ub_t = Option.get (L1_stats.achievable_ub agg2 stats_t) in
          let lb_t = Option.get (L1_stats.achievable_lb agg2 stats_t) in
          let ub_s = Option.get (L1_stats.achievable_ub agg1 stats_s) in
          let lb_s = Option.get (L1_stats.achievable_lb agg1 stats_s) in
          match Cmp.direction op with
          | `Upper ->
              (* agg1(S.A) ≤ agg2(T.B): S bounded above by the best T can
                 offer, T bounded below by the least S can need *)
              ( [ One_var.Agg_cmp (agg1, a, op, ub_t) ],
                [ One_var.Agg_cmp (agg2, b, Cmp.flip op, lb_s) ] )
          | `Lower ->
              ( [ One_var.Agg_cmp (agg1, a, op, lb_t) ],
                [ One_var.Agg_cmp (agg2, b, Cmp.flip op, ub_s) ] )
          | `Equal | `Distinct -> assert false
        in
        match Cmp.direction op with
        | `Upper | `Lower ->
            let s_conds, t_conds = directional op in
            { s_conds; t_conds; s_tight = tight; t_tight = tight }
        | `Equal ->
            let s_le, t_ge = directional Cmp.Le in
            let s_ge, t_le = directional Cmp.Ge in
            {
              s_conds = s_le @ s_ge;
              t_conds = t_ge @ t_le;
              s_tight = false;
              t_tight = false;
            }
        | `Distinct ->
            (* valid unless the other side can only ever produce one value;
               with ≥ 2 achievable values every non-empty set is valid *)
            let distinct_t = Value_set.cardinal stats_t.L1_stats.values >= 2 in
            let distinct_s = Value_set.cardinal stats_s.L1_stats.values >= 2 in
            {
              s_conds = [];
              t_conds = [];
              s_tight = tight && distinct_t;
              t_tight = tight && distinct_s;
            })

let pp ppf t =
  let pp_conds ppf conds =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " & ")
      One_var.pp ppf conds
  in
  Format.fprintf ppf "C1(S): %a%s; C2(T): %a%s"
    pp_conds t.s_conds
    (if t.s_tight then " (tight)" else "")
    pp_conds t.t_conds
    (if t.t_tight then " (tight)" else "")
