(** Classification of 2-var constraints (Figure 1 of the paper).

    Anti-monotonicity (Definition 4) and quasi-succinctness (Definition 5)
    for the constraint family of {!Two_var}.  The headline results: among
    domain constraints only [S.A ∩ T.B = ∅] is anti-monotone, among the
    min/max aggregate comparisons only [max(S.A) ≤ min(T.B)] (and its mirror
    [min(S.A) ≥ max(T.B)]) — whereas {e all} domain constraints and {e all}
    min/max aggregate comparisons are quasi-succinct, and nothing involving
    [sum]/[avg] is. *)

(** [anti_monotone_s c]: if an [S]-set fails against every frequent
    singleton [T], every superset fails against every frequent [T]
    (Definition 4 w.r.t. S). *)
val anti_monotone_s : Two_var.t -> bool

val anti_monotone_t : Two_var.t -> bool

(** Anti-monotone w.r.t. both variables — the Figure 1 column. *)
val anti_monotone : Two_var.t -> bool

(** Quasi-succinct (Definition 5): reducible to two succinct, sound and
    tight 1-var pruning conditions. *)
val quasi_succinct : Two_var.t -> bool
