open Cfq_itembase

type t = {
  universe : Sel.t;
  requires : Sel.t list;
}

let trivial = { universe = Sel.True; requires = [] }
let is_trivial t = t.universe = Sel.True && t.requires = []

let of_one_var (c : One_var.t) =
  match c with
  | One_var.Dom_subset (a, v) -> Some { universe = Sel.In (a, v); requires = [] }
  | One_var.Dom_disjoint (a, v) -> Some { universe = Sel.Not_in (a, v); requires = [] }
  | One_var.Dom_intersect (a, v) -> Some { universe = Sel.True; requires = [ Sel.In (a, v) ] }
  | One_var.Dom_superset (a, v) ->
      (* one witness per required value *)
      let requires =
        Value_set.fold (fun acc value -> Sel.Cmp (a, Cmp.Eq, value) :: acc) [] v
      in
      Some { universe = Sel.True; requires }
  | One_var.Dom_not_superset _ ->
      (* succinct per the paper, but the normalised universe/requires form
         cannot express "misses at least one of V"; handled as an
         anti-monotone filter by the engine. *)
      None
  | One_var.Agg_cmp (Agg.Min, a, ((Cmp.Ge | Cmp.Gt) as op), c) ->
      Some { universe = Sel.Cmp (a, op, c); requires = [] }
  | One_var.Agg_cmp (Agg.Min, a, ((Cmp.Le | Cmp.Lt) as op), c) ->
      Some { universe = Sel.True; requires = [ Sel.Cmp (a, op, c) ] }
  | One_var.Agg_cmp (Agg.Min, a, Cmp.Eq, c) ->
      Some { universe = Sel.Cmp (a, Cmp.Ge, c); requires = [ Sel.Cmp (a, Cmp.Eq, c) ] }
  | One_var.Agg_cmp (Agg.Max, a, ((Cmp.Le | Cmp.Lt) as op), c) ->
      Some { universe = Sel.Cmp (a, op, c); requires = [] }
  | One_var.Agg_cmp (Agg.Max, a, ((Cmp.Ge | Cmp.Gt) as op), c) ->
      Some { universe = Sel.True; requires = [ Sel.Cmp (a, op, c) ] }
  | One_var.Agg_cmp (Agg.Max, a, Cmp.Eq, c) ->
      Some { universe = Sel.Cmp (a, Cmp.Le, c); requires = [ Sel.Cmp (a, Cmp.Eq, c) ] }
  | One_var.Agg_cmp (_, _, Cmp.Ne, _) -> None
  | One_var.Agg_cmp ((Agg.Sum | Agg.Avg | Agg.Count), _, _, _) -> None
  | One_var.Card_cmp _ -> None
  | One_var.Nonempty -> Some trivial

let combine a b =
  { universe = Sel.conj [ a.universe; b.universe ]; requires = a.requires @ b.requires }

let combine_all l = List.fold_left combine trivial l

let permits_item info t e = Sel.eval info t.universe e

let requires_witness info t s =
  List.for_all (fun sel -> Itemset.exists (fun e -> Sel.eval info sel e) s) t.requires

let satisfied info t s =
  Itemset.for_all (fun e -> permits_item info t e) s && requires_witness info t s

let pp ppf t =
  Format.fprintf ppf "universe: %a; requires: [%a]" Sel.pp t.universe
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") Sel.pp)
    t.requires
