(** Summaries of the level-1 frequent sets used by the quasi-succinct
    reduction.

    The reduction constants of Figures 2–4 are all functions of [L1.A] — the
    attribute values of the frequent singletons.  These are computed anyway
    during the first counting iteration, which is why decoupling a 2-var
    constraint "requires little extra cost" (Section 4.1). *)

open Cfq_itembase

type t = {
  attr : Attr.t;
  values : Value_set.t;  (** the distinct values [L1.A] *)
  vmin : float option;  (** [min(L1.A)], [None] when L1 is empty *)
  vmax : float option;
  sum_pos : float;  (** sum of the positive per-item values (multiset) *)
  sum_neg : float;  (** sum of the negative per-item values (multiset) *)
}

(** [make info attr l1] summarises the frequent items [l1]. *)
val make : Item_info.t -> Attr.t -> Itemset.t -> t

(** [achievable_ub agg t] is an upper bound on [agg(T.B)] over non-empty
    frequent [T]-sets, given that every element of such a [T] is in [L1]:
    [vmax] for min/max/avg, the positive-value sum for [sum], the number of
    distinct values for [count].  [None] when L1 is empty. *)
val achievable_ub : Agg.t -> t -> float option

(** Lower-bound counterpart. *)
val achievable_lb : Agg.t -> t -> float option
