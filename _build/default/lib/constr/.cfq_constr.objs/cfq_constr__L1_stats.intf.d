lib/constr/l1_stats.mli: Agg Attr Cfq_itembase Item_info Itemset Value_set
