lib/constr/agg.mli: Attr Cfq_itembase Format Item_info Itemset
