lib/constr/one_var.ml: Agg Attr Cfq_itembase Cmp Format Item_info Itemset Value_set
