lib/constr/agg.ml: Cfq_itembase Format Item_info Itemset
