lib/constr/cmp.ml: Format
