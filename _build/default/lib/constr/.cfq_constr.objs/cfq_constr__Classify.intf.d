lib/constr/classify.mli: Two_var
