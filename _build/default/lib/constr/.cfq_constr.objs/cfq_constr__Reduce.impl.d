lib/constr/reduce.ml: Agg Cfq_itembase Cmp Format Itemset L1_stats One_var Option Two_var Value_set
