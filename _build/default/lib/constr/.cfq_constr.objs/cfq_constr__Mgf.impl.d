lib/constr/mgf.ml: Agg Cfq_itembase Cmp Format Itemset List One_var Sel Value_set
