lib/constr/two_var.mli: Agg Attr Cfq_itembase Cmp Format Item_info Itemset
