lib/constr/sel.mli: Attr Cfq_itembase Cmp Format Item Item_info Value_set
