lib/constr/classify.ml: Agg Cmp Two_var
