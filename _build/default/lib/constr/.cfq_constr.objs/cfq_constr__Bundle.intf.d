lib/constr/bundle.mli: Cfq_itembase Format Item Item_info Itemset Mgf One_var Sel
