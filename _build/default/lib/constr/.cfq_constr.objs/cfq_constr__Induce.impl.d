lib/constr/induce.ml: Agg Classify Cmp Two_var
