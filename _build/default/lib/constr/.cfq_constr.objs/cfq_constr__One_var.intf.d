lib/constr/one_var.mli: Agg Attr Cfq_itembase Cmp Format Item_info Itemset Value_set
