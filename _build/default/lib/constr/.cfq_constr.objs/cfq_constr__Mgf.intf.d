lib/constr/mgf.mli: Cfq_itembase Format Item Item_info Itemset One_var Sel
