lib/constr/sel.ml: Attr Cfq_itembase Cmp Format Item_info List Value_set
