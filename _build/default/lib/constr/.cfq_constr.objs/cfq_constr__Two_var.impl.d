lib/constr/two_var.ml: Agg Attr Cfq_itembase Cmp Format Item_info Value_set
