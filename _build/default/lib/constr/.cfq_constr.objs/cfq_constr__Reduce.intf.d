lib/constr/reduce.mli: Cfq_itembase Format Item_info Itemset One_var Two_var
