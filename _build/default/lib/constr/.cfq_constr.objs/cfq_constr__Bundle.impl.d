lib/constr/bundle.ml: Cfq_itembase Format Item_info List Mgf One_var Sel
