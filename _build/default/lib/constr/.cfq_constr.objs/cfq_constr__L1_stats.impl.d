lib/constr/l1_stats.ml: Agg Attr Cfq_itembase Item_info Itemset Value_set
