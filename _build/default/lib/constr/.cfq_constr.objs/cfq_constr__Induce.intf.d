lib/constr/induce.mli: Two_var
