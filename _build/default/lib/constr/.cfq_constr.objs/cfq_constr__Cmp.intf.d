lib/constr/cmp.mli: Format
