type t =
  | Le
  | Lt
  | Ge
  | Gt
  | Eq
  | Ne

let eval t a b =
  match t with
  | Le -> a <= b
  | Lt -> a < b
  | Ge -> a >= b
  | Gt -> a > b
  | Eq -> a = b
  | Ne -> a <> b

let flip = function
  | Le -> Ge
  | Lt -> Gt
  | Ge -> Le
  | Gt -> Lt
  | Eq -> Eq
  | Ne -> Ne

let negate = function
  | Le -> Gt
  | Lt -> Ge
  | Ge -> Lt
  | Gt -> Le
  | Eq -> Ne
  | Ne -> Eq

let direction = function
  | Le | Lt -> `Upper
  | Ge | Gt -> `Lower
  | Eq -> `Equal
  | Ne -> `Distinct

let to_string = function
  | Le -> "<="
  | Lt -> "<"
  | Ge -> ">="
  | Gt -> ">"
  | Eq -> "="
  | Ne -> "!="

let of_string = function
  | "<=" -> Some Le
  | "<" -> Some Lt
  | ">=" -> Some Ge
  | ">" -> Some Gt
  | "=" | "==" -> Some Eq
  | "!=" | "<>" -> Some Ne
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)
