(** Induced weaker 2-var constraints (Section 5.1, Figure 4).

    A non-quasi-succinct constraint (one involving [sum] or [avg]) implies a
    weaker quasi-succinct constraint obtained by replacing, on the side that
    must be {e small}, [avg] by [min] and [sum] by [max] (assuming
    non-negative values), and on the side that must be {e large}, [avg] by
    [max].  [sum] on the large side admits no such replacement; those
    constraints are handled by the iterative [Jmax]/[V^k] pruning of
    Section 5.2 instead (and by the direct bound reduction of {!Reduce}). *)

(** [weaken ~nonneg c] is [Some c'] where [c'] is a quasi-succinct
    constraint implied by [c], when the Figure 4 rules produce one; [None]
    if [c] is already quasi-succinct or no rule applies. *)
val weaken : nonneg:bool -> Two_var.t -> Two_var.t option
