open Cfq_itembase

type t =
  | Min
  | Max
  | Sum
  | Avg
  | Count

let equal a b = a = b

let to_string = function
  | Min -> "min"
  | Max -> "max"
  | Sum -> "sum"
  | Avg -> "avg"
  | Count -> "count"

let of_string = function
  | "min" -> Some Min
  | "max" -> Some Max
  | "sum" -> Some Sum
  | "avg" -> Some Avg
  | "count" -> Some Count
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)

let apply t info attr s =
  if Itemset.is_empty s then None
  else
    match t with
    | Min -> Item_info.min_of info attr s
    | Max -> Item_info.max_of info attr s
    | Sum -> Some (Item_info.sum_of info attr s)
    | Avg -> Item_info.avg_of info attr s
    | Count -> Some (float_of_int (Item_info.count_distinct info attr s))
