open Cfq_itembase

type setop =
  | Disjoint
  | Intersect
  | Subset
  | Not_subset
  | Superset
  | Not_superset
  | Set_eq
  | Set_ne

type t =
  | Set2 of Attr.t * setop * Attr.t
  | Agg2 of Agg.t * Attr.t * Cmp.t * Agg.t * Attr.t

let setop_to_string = function
  | Disjoint -> "disjoint"
  | Intersect -> "intersects"
  | Subset -> "subset"
  | Not_subset -> "not_subset"
  | Superset -> "superset"
  | Not_superset -> "not_superset"
  | Set_eq -> "="
  | Set_ne -> "!="

let pp ppf = function
  | Set2 (a, op, b) ->
      Format.fprintf ppf "S.%a %s T.%a" Attr.pp a (setop_to_string op) Attr.pp b
  | Agg2 (agg1, a, op, agg2, b) ->
      Format.fprintf ppf "%a(S.%a) %a %a(T.%a)" Agg.pp agg1 Attr.pp a Cmp.pp op Agg.pp
        agg2 Attr.pp b

let to_string c = Format.asprintf "%a" pp c

let eval ~s_info ~t_info c s t =
  match c with
  | Set2 (a, op, b) -> (
      let sa = Item_info.project s_info a s in
      let tb = Item_info.project t_info b t in
      match op with
      | Disjoint -> Value_set.disjoint sa tb
      | Intersect -> not (Value_set.disjoint sa tb)
      | Subset -> Value_set.subset sa tb
      | Not_subset -> not (Value_set.subset sa tb)
      | Superset -> Value_set.subset tb sa
      | Not_superset -> not (Value_set.subset tb sa)
      | Set_eq -> Value_set.equal sa tb
      | Set_ne -> not (Value_set.equal sa tb))
  | Agg2 (agg1, a, op, agg2, b) -> (
      match (Agg.apply agg1 s_info a s, Agg.apply agg2 t_info b t) with
      | Some x, Some y -> Cmp.eval op x y
      | None, _ | _, None -> op = Cmp.Ne)

let swap_setop = function
  | Disjoint -> Disjoint
  | Intersect -> Intersect
  | Subset -> Superset
  | Not_subset -> Not_superset
  | Superset -> Subset
  | Not_superset -> Not_subset
  | Set_eq -> Set_eq
  | Set_ne -> Set_ne

let swap = function
  | Set2 (a, op, b) -> Set2 (b, swap_setop op, a)
  | Agg2 (agg1, a, op, agg2, b) -> Agg2 (agg2, b, Cmp.flip op, agg1, a)

let figure1_rows =
  let a = Attr.make "Price" Attr.Numeric in
  [
    (Set2 (a, Disjoint, a), true, true);
    (Set2 (a, Intersect, a), false, true);
    (Set2 (a, Subset, a), false, true);
    (Set2 (a, Not_subset, a), false, true);
    (Set2 (a, Set_eq, a), false, true);
    (Agg2 (Agg.Max, a, Cmp.Le, Agg.Min, a), true, true);
    (Agg2 (Agg.Min, a, Cmp.Le, Agg.Min, a), false, true);
    (Agg2 (Agg.Max, a, Cmp.Le, Agg.Max, a), false, true);
    (Agg2 (Agg.Min, a, Cmp.Le, Agg.Max, a), false, true);
    (Agg2 (Agg.Sum, a, Cmp.Le, Agg.Max, a), false, false);
    (Agg2 (Agg.Sum, a, Cmp.Le, Agg.Sum, a), false, false);
    (Agg2 (Agg.Avg, a, Cmp.Le, Agg.Avg, a), false, false);
  ]
