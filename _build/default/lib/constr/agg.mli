(** SQL-style aggregation functions of the CFQ constraint language.

    [Count] is the number of distinct attribute values, as in the paper's
    [count(S.Type) = 1]; the other four aggregate the multiset of attribute
    values of the items in the set. *)

open Cfq_itembase

type t =
  | Min
  | Max
  | Sum
  | Avg
  | Count

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val of_string : string -> t option

(** [apply agg info attr s] evaluates the aggregate over a non-empty set;
    [None] on the empty set (SQL NULL). *)
val apply : t -> Item_info.t -> Attr.t -> Itemset.t -> float option
