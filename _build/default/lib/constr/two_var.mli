(** 2-variable constraints [C(S, T)] of the CFQ language.

    A 2-var constraint relates the two set variables of a CFQ jointly: a
    domain (set-comparison) constraint between the value sets [S.A] and
    [T.B], or an aggregation comparison [agg1(S.A) θ agg2(T.B)].  This is
    the constraint family of Figure 1 of the paper. *)

open Cfq_itembase

type setop =
  | Disjoint  (** [S.A ∩ T.B = ∅] *)
  | Intersect  (** [S.A ∩ T.B ≠ ∅] *)
  | Subset  (** [S.A ⊆ T.B] *)
  | Not_subset  (** [S.A ⊄ T.B] *)
  | Superset  (** [S.A ⊇ T.B] *)
  | Not_superset  (** [S.A ⊉ T.B] *)
  | Set_eq  (** [S.A = T.B] *)
  | Set_ne  (** [S.A ≠ T.B] *)

type t =
  | Set2 of Attr.t * setop * Attr.t
  | Agg2 of Agg.t * Attr.t * Cmp.t * Agg.t * Attr.t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [eval ~s_info ~t_info c s t] decides whether the pair [(s, t)] satisfies
    [c]; [s] draws attributes from [s_info] and [t] from [t_info] (the two
    variables may range over different domains, cf. Section 3 of the
    paper). *)
val eval : s_info:Item_info.t -> t_info:Item_info.t -> t -> Itemset.t -> Itemset.t -> bool

(** [swap c] is the same constraint with the roles of [S] and [T]
    exchanged, i.e. [eval (swap c) t s = eval c s t]. *)
val swap : t -> t

(** The 12 rows of Figure 1, in paper order, for table-driven tests and
    documentation. *)
val figure1_rows : (t * bool * bool) list
(** [(constraint, anti_monotone, quasi_succinct)] with [A = B = "Price"]. *)
