open Cfq_itembase

type t =
  | Dom_subset of Attr.t * Value_set.t
  | Dom_superset of Attr.t * Value_set.t
  | Dom_disjoint of Attr.t * Value_set.t
  | Dom_intersect of Attr.t * Value_set.t
  | Dom_not_superset of Attr.t * Value_set.t
  | Agg_cmp of Agg.t * Attr.t * Cmp.t * float
  | Card_cmp of Cmp.t * int
  | Nonempty

let pp ppf = function
  | Dom_subset (a, v) -> Format.fprintf ppf "%a subset %a" Attr.pp a Value_set.pp v
  | Dom_superset (a, v) -> Format.fprintf ppf "%a superset %a" Attr.pp a Value_set.pp v
  | Dom_disjoint (a, v) -> Format.fprintf ppf "%a disjoint %a" Attr.pp a Value_set.pp v
  | Dom_intersect (a, v) -> Format.fprintf ppf "%a intersects %a" Attr.pp a Value_set.pp v
  | Dom_not_superset (a, v) ->
      Format.fprintf ppf "%a not-superset %a" Attr.pp a Value_set.pp v
  | Agg_cmp (agg, a, op, c) ->
      Format.fprintf ppf "%a(%a) %a %g" Agg.pp agg Attr.pp a Cmp.pp op c
  | Card_cmp (op, n) -> Format.fprintf ppf "card %a %d" Cmp.pp op n
  | Nonempty -> Format.pp_print_string ppf "nonempty"

let to_string c = Format.asprintf "%a" pp c

let pp_with_var var ppf = function
  | Dom_subset (a, v) -> Format.fprintf ppf "%s.%a subset %a" var Attr.pp a Value_set.pp v
  | Dom_superset (a, v) ->
      Format.fprintf ppf "%s.%a superset %a" var Attr.pp a Value_set.pp v
  | Dom_disjoint (a, v) ->
      Format.fprintf ppf "%s.%a disjoint %a" var Attr.pp a Value_set.pp v
  | Dom_intersect (a, v) ->
      Format.fprintf ppf "%s.%a intersects %a" var Attr.pp a Value_set.pp v
  | Dom_not_superset (a, v) ->
      (* no user-level syntax: produced only by the reduction *)
      Format.fprintf ppf "%s.%a not-superset %a" var Attr.pp a Value_set.pp v
  | Agg_cmp (agg, a, op, c) ->
      Format.fprintf ppf "%a(%s.%a) %a %g" Agg.pp agg var Attr.pp a Cmp.pp op c
  | Card_cmp (op, n) -> Format.fprintf ppf "|%s| %a %d" var Cmp.pp op n
  | Nonempty -> Format.fprintf ppf "|%s| >= 1" var

let eval info c s =
  match c with
  | Dom_subset (a, v) -> Value_set.subset (Item_info.project info a s) v
  | Dom_superset (a, v) -> Value_set.subset v (Item_info.project info a s)
  | Dom_disjoint (a, v) -> Value_set.disjoint (Item_info.project info a s) v
  | Dom_intersect (a, v) -> not (Value_set.disjoint (Item_info.project info a s) v)
  | Dom_not_superset (a, v) -> not (Value_set.subset v (Item_info.project info a s))
  | Agg_cmp (agg, a, op, c) -> (
      match Agg.apply agg info a s with
      | Some x -> Cmp.eval op x c
      | None -> op = Cmp.Ne)
  | Card_cmp (op, n) -> Cmp.eval op (float_of_int (Itemset.cardinal s)) (float_of_int n)
  | Nonempty -> not (Itemset.is_empty s)

(* Classification, following the tables of the CAP paper [15]. *)

let is_anti_monotone ~nonneg = function
  | Dom_subset _ | Dom_disjoint _ | Dom_not_superset _ -> true
  | Dom_superset _ | Dom_intersect _ | Nonempty -> false
  | Agg_cmp (Agg.Min, _, (Cmp.Ge | Cmp.Gt), _) -> true
  | Agg_cmp (Agg.Max, _, (Cmp.Le | Cmp.Lt), _) -> true
  | Agg_cmp (Agg.Sum, _, (Cmp.Le | Cmp.Lt), _) -> nonneg
  | Agg_cmp (Agg.Count, _, (Cmp.Le | Cmp.Lt), _) -> true
  | Agg_cmp _ -> false
  | Card_cmp ((Cmp.Le | Cmp.Lt), _) -> true
  | Card_cmp _ -> false

let is_monotone ~nonneg = function
  | Dom_superset _ | Dom_intersect _ | Nonempty -> true
  | Dom_subset _ | Dom_disjoint _ | Dom_not_superset _ -> false
  | Agg_cmp (Agg.Min, _, (Cmp.Le | Cmp.Lt), _) -> true
  | Agg_cmp (Agg.Max, _, (Cmp.Ge | Cmp.Gt), _) -> true
  | Agg_cmp (Agg.Sum, _, (Cmp.Ge | Cmp.Gt), _) -> nonneg
  | Agg_cmp (Agg.Count, _, (Cmp.Ge | Cmp.Gt), _) -> true
  | Agg_cmp _ -> false
  | Card_cmp ((Cmp.Ge | Cmp.Gt), _) -> true
  | Card_cmp _ -> false

let is_succinct = function
  | Dom_subset _ | Dom_superset _ | Dom_disjoint _ | Dom_intersect _ | Dom_not_superset _
  | Nonempty ->
      true
  | Agg_cmp ((Agg.Min | Agg.Max), _, _, _) -> true
  | Agg_cmp ((Agg.Sum | Agg.Avg | Agg.Count), _, _, _) -> false
  | Card_cmp _ -> false

let induce_weaker ~nonneg = function
  | Agg_cmp (Agg.Sum, a, ((Cmp.Le | Cmp.Lt) as op), c) when nonneg ->
      (* each value is at most the sum *)
      [ Agg_cmp (Agg.Max, a, op, c) ]
  | Agg_cmp (Agg.Sum, a, Cmp.Eq, c) when nonneg ->
      [ Agg_cmp (Agg.Max, a, Cmp.Le, c); Agg_cmp (Agg.Sum, a, Cmp.Le, c) ]
  | Agg_cmp (Agg.Avg, a, ((Cmp.Le | Cmp.Lt) as op), c) ->
      (* min ≤ avg *)
      [ Agg_cmp (Agg.Min, a, op, c) ]
  | Agg_cmp (Agg.Avg, a, ((Cmp.Ge | Cmp.Gt) as op), c) ->
      (* max ≥ avg *)
      [ Agg_cmp (Agg.Max, a, op, c) ]
  | Agg_cmp (Agg.Avg, a, Cmp.Eq, c) ->
      [ Agg_cmp (Agg.Min, a, Cmp.Le, c); Agg_cmp (Agg.Max, a, Cmp.Ge, c) ]
  | Dom_subset _ | Dom_superset _ | Dom_disjoint _ | Dom_intersect _ | Dom_not_superset _
  | Agg_cmp _ | Card_cmp _ | Nonempty ->
      []
