open Cfq_itembase

type t = {
  info : Item_info.t;
  originals : One_var.t list;
  mgf : Mgf.t;
  am_checks : One_var.t list;
  post_checks : One_var.t list;
}

let classify_one ~nonneg t c =
  match Mgf.of_one_var c with
  | Some m -> { t with mgf = Mgf.combine t.mgf m }
  | None ->
      let t =
        (* fold in whatever weaker succinct/anti-monotone forms are implied *)
        List.fold_left
          (fun t w ->
            match Mgf.of_one_var w with
            | Some m -> { t with mgf = Mgf.combine t.mgf m }
            | None ->
                if One_var.is_anti_monotone ~nonneg w then
                  { t with am_checks = w :: t.am_checks }
                else t)
          t
          (One_var.induce_weaker ~nonneg c)
      in
      if One_var.is_anti_monotone ~nonneg c then { t with am_checks = c :: t.am_checks }
      else { t with post_checks = c :: t.post_checks }

let unconstrained info =
  { info; originals = []; mgf = Mgf.trivial; am_checks = []; post_checks = [] }

let add ~nonneg t cs =
  let t = List.fold_left (classify_one ~nonneg) t cs in
  { t with originals = t.originals @ cs }

let compile ~nonneg info cs = add ~nonneg (unconstrained info) cs

let permits_item t e = Sel.eval t.info t.mgf.Mgf.universe e
let am_ok t s = List.for_all (fun c -> One_var.eval t.info c s) t.am_checks
let post_ok t s = List.for_all (fun c -> One_var.eval t.info c s) t.post_checks
let requires_witness t s = Mgf.requires_witness t.info t.mgf s
let requires t = t.mgf.Mgf.requires
let eval_originals t s = List.for_all (fun c -> One_var.eval t.info c s) t.originals

let pp ppf t =
  let pp_list ppf l =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " & ")
      One_var.pp ppf l
  in
  Format.fprintf ppf "@[<v>mgf: %a@,am: %a@,post: %a@]" Mgf.pp t.mgf pp_list t.am_checks
    pp_list t.post_checks
