(** 1-variable constraints [C(S)] of the CFQ language.

    These are the constraint forms of the companion paper [15] (Ng,
    Lakshmanan, Han & Pang, SIGMOD'98): domain/class constraints relating the
    value set [S.A] to a constant set, and aggregation constraints
    [agg(S.A) θ c].  Their two key properties — {e anti-monotonicity}
    (Definition 1) and {e succinctness} (Definition 2 / Lemma 1) — drive the
    CAP algorithm; this module provides evaluation and the published
    classification. *)

open Cfq_itembase

type t =
  | Dom_subset of Attr.t * Value_set.t  (** [S.A ⊆ V] *)
  | Dom_superset of Attr.t * Value_set.t  (** [V ⊆ S.A] *)
  | Dom_disjoint of Attr.t * Value_set.t  (** [S.A ∩ V = ∅] *)
  | Dom_intersect of Attr.t * Value_set.t  (** [S.A ∩ V ≠ ∅] *)
  | Dom_not_superset of Attr.t * Value_set.t  (** [S.A ⊉ V] *)
  | Agg_cmp of Agg.t * Attr.t * Cmp.t * float  (** [agg(S.A) θ c] *)
  | Card_cmp of Cmp.t * int  (** [|S| θ n] *)
  | Nonempty  (** the trivial [S ≠ ∅] *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [pp_with_var "S" ppf c] prints in the concrete query syntax, e.g.
    ["min(S.Price) >= 400"] or ["S.Type subset {1, 2}"]. *)
val pp_with_var : string -> Format.formatter -> t -> unit

(** [eval info c s] decides whether the (non-empty) set [s] satisfies [c].
    Aggregates over the empty set are false except under [Ne]. *)
val eval : Item_info.t -> t -> Itemset.t -> bool

(** {1 Classification (CAP, SIGMOD'98)}

    The [sum] rules assume non-negative attribute values, as the paper does
    for its induced-constraint results (Section 5.1); pass
    [~nonneg:false] when the attribute may be negative and the affected
    entries degrade to "no". *)

(** [is_anti_monotone ~nonneg c]: violation is inherited by all supersets. *)
val is_anti_monotone : nonneg:bool -> t -> bool

(** [is_monotone ~nonneg c]: satisfaction is inherited by all supersets. *)
val is_monotone : nonneg:bool -> t -> bool

(** [is_succinct c]: the solution space is a succinct powerset (Lemma 1:
    domain/class and min/max aggregation constraints are; sum/avg are not). *)
val is_succinct : t -> bool

(** {1 Induced weaker constraints}

    [induce_weaker ~nonneg c] is a list of constraints implied by [c] that
    are succinct and/or anti-monotone and hence exploitable for pruning when
    [c] itself is not (e.g. [sum(S.A) ≤ c] induces the succinct
    [max(S.A) ≤ c] when values are non-negative; [avg(S.A) ≤ c] induces
    [min(S.A) ≤ c]).  Returns [[]] when nothing useful is implied. *)
val induce_weaker : nonneg:bool -> t -> t list
