lib/rules/metric.mli: Format
