lib/rules/rule.ml: Array Candidate Cfq_core Cfq_itembase Cfq_mining Cfq_txdb Float Format Frequent Itemset List Metric Transaction Trie Tx_db
