lib/rules/rule.mli: Cfq_core Cfq_itembase Cfq_mining Cfq_txdb Format Frequent Io_stats Itemset Metric Tx_db
