lib/rules/metric.ml: Float Format
