(** Phase 2 of the architecture: forming rules [S ⇒ T] from the constrained
    frequent pairs.

    The pair phase guarantees [S] and [T] are individually frequent and
    jointly satisfy the constraints; rule metrics additionally need the
    support of [S ∪ T], which this module counts in a single extra scan
    over all distinct unions. *)

open Cfq_itembase
open Cfq_txdb
open Cfq_mining

type t = {
  antecedent : Itemset.t;
  consequent : Itemset.t;
  metric : Metric.t;
}

val pp : Format.formatter -> t -> unit

(** [of_pairs db io pairs] computes one rule per pair, in one scan.
    [min_confidence] / [min_lift] filter the output (defaults 0 — keep
    everything). Rules are returned sorted by descending confidence, then
    lift. *)
val of_pairs :
  Tx_db.t ->
  Io_stats.t ->
  ?min_confidence:float ->
  ?min_lift:float ->
  (Frequent.entry * Frequent.entry) list ->
  t list

(** [of_frequent frequent ~n ~min_confidence] is the classical single-set
    rule generation (Agrawal–Srikant's ap-genrules): for every frequent set
    [Z] and partition [Z = X ∪ Y], emit [X ⇒ Y] when confident.  All
    supports come from the mined collection — no database access.  Uses the
    confidence-monotonicity pruning: if [X ⇒ Z∖X] fails, no rule with a
    consequent ⊇ [Z∖X] from [Z] can pass. *)
val of_frequent : Frequent.t -> n:int -> min_confidence:float -> t list

(** [mine ctx query] runs the CFQ (optimized strategy) and forms the rules:
    the full two-phase pipeline. Returns the rules and the underlying
    execution result. *)
val mine :
  ?strategy:Cfq_core.Plan.strategy ->
  ?min_confidence:float ->
  ?min_lift:float ->
  Cfq_core.Exec.ctx ->
  Cfq_core.Query.t ->
  t list * Cfq_core.Exec.result
