(** Rule quality metrics.

    The paper's two-phase architecture computes constrained frequent pairs
    first and forms rules [S ⇒ T] second, because "frequent sets represent a
    common denominator for many kinds of rules" (Section 1).  This module
    provides the standard metrics computed from the three supports
    [n(S)], [n(T)], [n(S ∪ T)] over a database of [n] transactions. *)

type t = {
  support : float;  (** relative support of [S ∪ T] *)
  confidence : float;  (** [n(S∪T) / n(S)] *)
  lift : float;  (** [conf / P(T)]; 1 = independence *)
  leverage : float;  (** [P(S∪T) - P(S)P(T)] *)
  conviction : float;  (** [(1 - P(T)) / (1 - conf)]; [infinity] at conf 1 *)
}

(** [compute ~n ~n_s ~n_t ~n_st] from absolute counts.
    Raises [Invalid_argument] if counts are inconsistent
    ([n_st > min n_s n_t], zero database, ...). *)
val compute : n:int -> n_s:int -> n_t:int -> n_st:int -> t

val pp : Format.formatter -> t -> unit
