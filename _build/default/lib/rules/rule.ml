open Cfq_itembase
open Cfq_txdb
open Cfq_mining

type t = {
  antecedent : Itemset.t;
  consequent : Itemset.t;
  metric : Metric.t;
}

let pp ppf t =
  Format.fprintf ppf "%a => %a [%a]" Itemset.pp t.antecedent Itemset.pp t.consequent
    Metric.pp t.metric

let of_pairs db io ?(min_confidence = 0.) ?(min_lift = 0.) pairs =
  let n = Tx_db.size db in
  (* count all distinct unions in one scan *)
  let union_index = Itemset.Hashtbl.create (2 * List.length pairs) in
  let unions = ref [] in
  List.iter
    (fun (s, t) ->
      let u = Itemset.union s.Frequent.set t.Frequent.set in
      if not (Itemset.Hashtbl.mem union_index u) then begin
        Itemset.Hashtbl.replace union_index u (List.length !unions);
        unions := u :: !unions
      end)
    pairs;
  let unions = Array.of_list (List.rev !unions) in
  let trie = Trie.build unions in
  if Array.length unions > 0 then
    Tx_db.iter_scan db io (fun tx ->
        Trie.count_tx trie (Itemset.unsafe_to_array tx.Transaction.items));
  let counts = Trie.counts trie in
  let rules =
    List.filter_map
      (fun (s, t) ->
        let u = Itemset.union s.Frequent.set t.Frequent.set in
        let n_st = counts.(Itemset.Hashtbl.find union_index u) in
        let metric =
          Metric.compute ~n ~n_s:s.Frequent.support ~n_t:t.Frequent.support ~n_st
        in
        if metric.Metric.confidence >= min_confidence && metric.Metric.lift >= min_lift
        then Some { antecedent = s.Frequent.set; consequent = t.Frequent.set; metric }
        else None)
      pairs
  in
  List.sort
    (fun a b ->
      match Float.compare b.metric.Metric.confidence a.metric.Metric.confidence with
      | 0 -> Float.compare b.metric.Metric.lift a.metric.Metric.lift
      | c -> c)
    rules

let of_frequent frequent ~n ~min_confidence =
  let rules = ref [] in
  let try_rule z n_z consequent =
    (* consequent ⊂ z; antecedent = z \ consequent *)
    let antecedent = Itemset.diff z consequent in
    if Itemset.is_empty antecedent then None
    else
      match (Frequent.support frequent antecedent, Frequent.support frequent consequent) with
      | Some n_s, Some n_t ->
          let metric = Metric.compute ~n ~n_s ~n_t ~n_st:n_z in
          if metric.Metric.confidence >= min_confidence then begin
            rules := { antecedent; consequent; metric } :: !rules;
            Some consequent
          end
          else None
      | None, _ | _, None -> None
  in
  Frequent.iter
    (fun e ->
      let z = e.Frequent.set in
      if Itemset.cardinal z >= 2 then begin
        (* level-wise over consequent size; only extend consequents that
           passed (conf is antitone in the consequent: moving items out of
           the antecedent can only shrink its support... i.e. larger
           consequent => smaller antecedent => conf can only drop) *)
        let ok1 = ref [] in
        Itemset.iter
          (fun i ->
            match try_rule z e.Frequent.support (Itemset.singleton i) with
            | Some c -> ok1 := c :: !ok1
            | None -> ())
          z;
        let rec levels prev =
          match prev with
          | [] | [ _ ] -> ()
          | _ ->
              let tbl = Itemset.Hashtbl.create 16 in
              List.iter (fun c -> Itemset.Hashtbl.replace tbl c ()) prev;
              let next =
                Candidate.apriori_gen ~prev:(Array.of_list prev)
                  ~prev_mem:(Itemset.Hashtbl.mem tbl)
                |> Array.to_list
                |> List.filter (fun c -> Itemset.cardinal c < Itemset.cardinal z)
                |> List.filter_map (fun c -> try_rule z e.Frequent.support c)
              in
              levels next
        in
        levels !ok1
      end)
    frequent;
  List.sort
    (fun a b ->
      match Float.compare b.metric.Metric.confidence a.metric.Metric.confidence with
      | 0 -> Float.compare b.metric.Metric.lift a.metric.Metric.lift
      | c -> c)
    !rules

let mine ?strategy ?min_confidence ?min_lift ctx query =
  let r = Cfq_core.Exec.run ?strategy ~collect_pairs:true ctx query in
  let rules =
    of_pairs ctx.Cfq_core.Exec.db r.Cfq_core.Exec.io ?min_confidence ?min_lift
      r.Cfq_core.Exec.pairs
  in
  (rules, r)
