type t = {
  support : float;
  confidence : float;
  lift : float;
  leverage : float;
  conviction : float;
}

let compute ~n ~n_s ~n_t ~n_st =
  if n <= 0 then invalid_arg "Metric.compute: empty database";
  if n_s <= 0 || n_t <= 0 then invalid_arg "Metric.compute: unsupported sides";
  if n_st > min n_s n_t || n_st < 0 then invalid_arg "Metric.compute: inconsistent counts";
  let f = float_of_int in
  let p_s = f n_s /. f n and p_t = f n_t /. f n in
  let support = f n_st /. f n in
  let confidence = f n_st /. f n_s in
  let lift = if p_t = 0. then infinity else confidence /. p_t in
  let leverage = support -. (p_s *. p_t) in
  let conviction =
    if confidence >= 1. then infinity else (1. -. p_t) /. (1. -. confidence)
  in
  { support; confidence; lift; leverage; conviction }

let pp ppf t =
  Format.fprintf ppf "sup=%.4f conf=%.3f lift=%.2f lev=%.4f conv=%.2f" t.support
    t.confidence t.lift t.leverage
    (if Float.is_finite t.conviction then t.conviction else 99.99)
