lib/txdb/transaction.ml: Cfq_itembase Format Itemset
