lib/txdb/page_model.mli:
