lib/txdb/tx_db.ml: Array Cfq_itembase Io_stats Itemset Page_model Transaction
