lib/txdb/io_stats.mli: Format
