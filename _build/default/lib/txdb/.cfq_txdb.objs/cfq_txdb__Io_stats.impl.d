lib/txdb/io_stats.ml: Format
