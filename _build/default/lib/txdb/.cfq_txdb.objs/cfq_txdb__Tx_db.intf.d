lib/txdb/tx_db.mli: Cfq_itembase Io_stats Itemset Page_model Transaction
