lib/txdb/transaction.mli: Cfq_itembase Format Itemset
