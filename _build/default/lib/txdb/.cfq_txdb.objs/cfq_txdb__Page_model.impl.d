lib/txdb/page_model.ml: Array
