open Cfq_itembase

type t = {
  txs : Transaction.t array;
  page_model : Page_model.t;
  pages : int;
}

let create ?(page_model = Page_model.default) itemsets =
  let txs = Array.mapi (fun tid items -> Transaction.make ~tid ~items) itemsets in
  let sizes = Array.map Itemset.cardinal itemsets in
  { txs; page_model; pages = Page_model.pages_for page_model sizes }

let size t = Array.length t.txs
let pages t = t.pages
let page_model t = t.page_model
let get t tid = t.txs.(tid)

let iter_scan t stats f =
  Io_stats.record_scan stats ~pages:t.pages ~tuples:(Array.length t.txs);
  Array.iter f t.txs

let absolute_support t frac =
  if frac < 0. || frac > 1. then invalid_arg "Tx_db.absolute_support";
  max 1 (int_of_float (ceil (frac *. float_of_int (Array.length t.txs))))

let support t stats s =
  let n = ref 0 in
  iter_scan t stats (fun tx -> if Itemset.subset s tx.Transaction.items then incr n);
  !n

let item_frequencies t stats ~universe_size =
  let freq = Array.make universe_size 0 in
  iter_scan t stats (fun tx ->
      Itemset.iter (fun i -> freq.(i) <- freq.(i) + 1) tx.Transaction.items);
  freq

let avg_tx_len t =
  let n = Array.length t.txs in
  if n = 0 then 0.
  else
    let total = Array.fold_left (fun acc tx -> acc + Transaction.cardinal tx) 0 t.txs in
    float_of_int total /. float_of_int n
