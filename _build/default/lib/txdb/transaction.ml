open Cfq_itembase

type t = {
  tid : int;
  items : Itemset.t;
}

let make ~tid ~items = { tid; items }
let cardinal t = Itemset.cardinal t.items
let pp ppf t = Format.fprintf ppf "#%d:%a" t.tid Itemset.pp t.items
