(** The transaction database [trans(TID, Itemset)].

    An immutable, in-memory store of transactions with a {!Page_model}
    attached for I/O cost accounting.  Scans go through {!iter_scan} so that
    every pass over the data is charged to the given {!Io_stats}. *)

open Cfq_itembase

type t

(** [create ?page_model txs] stores the given itemsets as transactions with
    TIDs [0, 1, ...]. *)
val create : ?page_model:Page_model.t -> Itemset.t array -> t

val size : t -> int

(** Number of pages a full sequential scan touches. *)
val pages : t -> int

val page_model : t -> Page_model.t

(** [get t tid] is transaction [tid]. *)
val get : t -> int -> Transaction.t

(** [iter_scan t stats f] runs [f] over every transaction and charges one
    full scan to [stats]. *)
val iter_scan : t -> Io_stats.t -> (Transaction.t -> unit) -> unit

(** [absolute_support t frac] converts a relative support threshold in
    [0, 1] to an absolute count (at least 1). *)
val absolute_support : t -> float -> int

(** [support t stats s] counts the transactions containing [s] (one scan). *)
val support : t -> Io_stats.t -> Itemset.t -> int

(** [item_frequencies t stats ~universe_size] is one scan computing, for
    every item, the number of transactions containing it. *)
val item_frequencies : t -> Io_stats.t -> universe_size:int -> int array

(** Average transaction length, for reporting. *)
val avg_tx_len : t -> float
