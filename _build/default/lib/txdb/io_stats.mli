(** I/O accounting for the transaction store.

    Every full scan of the database records the number of pages it touched;
    mining strategies that share a scan between the [S] and [T] lattices
    (dovetailing, Section 5.2 of the paper) therefore pay for it once. *)

type t

val create : unit -> t
val reset : t -> unit

val record_scan : t -> pages:int -> tuples:int -> unit

val scans : t -> int
val pages_read : t -> int
val tuples_read : t -> int

(** [add dst src] accumulates [src] into [dst]. *)
val add : t -> t -> unit

val pp : Format.formatter -> t -> unit
