type t = {
  mutable scans : int;
  mutable pages_read : int;
  mutable tuples_read : int;
}

let create () = { scans = 0; pages_read = 0; tuples_read = 0 }

let reset t =
  t.scans <- 0;
  t.pages_read <- 0;
  t.tuples_read <- 0

let record_scan t ~pages ~tuples =
  t.scans <- t.scans + 1;
  t.pages_read <- t.pages_read + pages;
  t.tuples_read <- t.tuples_read + tuples

let scans t = t.scans
let pages_read t = t.pages_read
let tuples_read t = t.tuples_read

let add dst src =
  dst.scans <- dst.scans + src.scans;
  dst.pages_read <- dst.pages_read + src.pages_read;
  dst.tuples_read <- dst.tuples_read + src.tuples_read

let pp ppf t =
  Format.fprintf ppf "scans=%d pages=%d tuples=%d" t.scans t.pages_read t.tuples_read
