(** A single market-basket transaction of the relation [trans(TID, Itemset)]. *)

open Cfq_itembase

type t = {
  tid : int;
  items : Itemset.t;
}

val make : tid:int -> items:Itemset.t -> t
val cardinal : t -> int
val pp : Format.formatter -> t -> unit
