(** Sampling from the distributions used by the Quest generator and by the
    paper's workloads. *)

val uniform : Splitmix.t -> lo:float -> hi:float -> float

(** Standard normal via Box–Muller. *)
val std_normal : Splitmix.t -> float

(** [normal rng ~mean ~stddev] *)
val normal : Splitmix.t -> mean:float -> stddev:float -> float

(** [normal_clamped] additionally clamps into [[lo, hi]]. *)
val normal_clamped : Splitmix.t -> mean:float -> stddev:float -> lo:float -> hi:float -> float

(** [poisson rng ~mean] (Knuth's method; [mean] must be modest, < ~700). *)
val poisson : Splitmix.t -> mean:float -> int

(** [exponential rng ~mean] *)
val exponential : Splitmix.t -> mean:float -> float

(** [geometric rng ~p] is the number of failures before the first success. *)
val geometric : Splitmix.t -> p:float -> int

(** [pick_weighted rng cumulative] draws an index according to a cumulative
    weight array ([cumulative.(last)] is the total mass). *)
val pick_weighted : Splitmix.t -> float array -> int

(** [sample_without_replacement rng ~n ~k] draws [k] distinct ints from
    [0, n), sorted increasing. *)
val sample_without_replacement : Splitmix.t -> n:int -> k:int -> int array

(** [shuffle rng a] permutes [a] in place (Fisher–Yates). *)
val shuffle : Splitmix.t -> 'a array -> unit
